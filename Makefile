# Targets mirror the CI jobs in .github/workflows/ci.yml — `make ci`
# runs the same gate locally.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-multidev bench-timeline \
	faults bench-faults bench-cluster bench-clusterscale bench-rdma \
	bench-capability bench-serving bench-adaptive churn-gauntlet scale-gate cover \
	golden-check lint ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt rewrites; fmt-check fails (like CI) when anything needs formatting.
fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Compile and run every benchmark exactly once so they cannot bit-rot;
# use `go test -bench=. -benchmem ./...` for real measurements.
bench:
	$(GO) test -run=NoTests -bench=. -benchtime=1x ./...

# The figures CI publishes as artifacts.
bench-multidev:
	$(GO) run ./cmd/fsbench -fig multidev -quick -json > BENCH_multidevice.json

bench-timeline:
	$(GO) run ./cmd/fsbench -fig timeline -quick -json > BENCH_timeline.json

bench-faults:
	$(GO) run ./cmd/fsbench -fig faults -quick -json > BENCH_faults.json

bench-cluster:
	$(GO) run ./cmd/fsbench -fig cluster -quick -json > BENCH_cluster.json

bench-clusterscale:
	$(GO) run ./cmd/fsbench -fig clusterscale -quick -json > BENCH_clusterscale.json

bench-rdma:
	$(GO) run ./cmd/fsbench -fig rdma -quick -json > BENCH_rdma.json

bench-capability:
	$(GO) run ./cmd/fsbench -fig capability -quick -json > BENCH_capability.json

bench-serving:
	$(GO) run ./cmd/fsbench -fig serving -quick -json > BENCH_serving.json

bench-adaptive:
	$(GO) run ./cmd/fsbench -fig adaptive -quick -json > BENCH_adaptive.json

# The CI cluster-scale gate: asserts the sharded engine's >= 1.5x
# wall-clock speedup at 4 shards / 64 hosts. Needs >= 4 idle cores; the
# test skips itself otherwise.
scale-gate:
	CLUSTER_SCALE_GATE=1 $(GO) test -run TestClusterScaleSpeedup -v ./internal/host

# The fault-campaign gate: safety figure plus the replay-determinism and
# safety-property sweeps. FAULT_SEEDS widens the sweep (CI uses 64, the
# nightly schedule 1024; default 8 keeps local runs quick).
faults: bench-faults
	$(GO) test -run 'TestReplayDeterminism|TestStrictSafetyModesNeverServeStale|TestStrawmanCaughtWithinOneWindow|TestCapabilityFamilySafetyOrdering' ./internal/fault

# The serving-gauntlet CI job: serving figure, cohort-vs-exact
# equivalence under the race detector, and the churn fault campaign
# (strict/fns/cap at churn 0.3, zero stale-served DMAs). FAULT_SEEDS
# widens the campaign exactly like `faults`.
churn-gauntlet: bench-serving
	$(GO) test -race -run 'TestCohortExactEquivalence|TestServingDeterminismAndReplay|TestGroupingInvariance|TestDeterministicReplay' ./internal/host ./internal/cohort
	$(GO) test -run TestServingChurnFaultCampaign ./internal/host

# Coverage with the CI ratchet: fails when total statement coverage falls
# below ci/coverage_floor.txt. Bump the floor when coverage rises.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	floor=$$(cat ci/coverage_floor.txt); \
	echo "total coverage: $${total}% (floor: $${floor}%)"; \
	if awk -v t="$$total" -v f="$$floor" 'BEGIN { exit !(t < f) }'; then \
		echo "coverage $${total}% fell below the floor $${floor}%" >&2; exit 1; \
	fi
	$(GO) tool cover -html=coverage.out -o coverage.html

# Regenerate every golden file and fail if any drift from the committed
# ones — catches accidentally-committed stale goldens.
golden-check:
	UPDATE_GOLDEN=1 $(GO) test -run Golden ./internal/experiments ./internal/host
	git diff --exit-code

# Mirrors the CI lint job. Each analyzer is skipped with a notice when
# its binary is not on PATH (install with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest ).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping" >&2; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping" >&2; \
	fi

ci: build vet fmt-check lint test race bench faults churn-gauntlet cover golden-check
