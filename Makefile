# Targets mirror the CI jobs in .github/workflows/ci.yml — `make ci`
# runs the same gate locally.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt rewrites; fmt-check fails (like CI) when anything needs formatting.
fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile and run every benchmark exactly once so they cannot bit-rot;
# use `go test -bench=. -benchmem ./...` for real measurements.
bench:
	$(GO) test -run=NoTests -bench=. -benchtime=1x ./...

ci: build vet fmt-check test race bench
