# Targets mirror the CI jobs in .github/workflows/ci.yml — `make ci`
# runs the same gate locally.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-multidev bench-timeline lint ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt rewrites; fmt-check fails (like CI) when anything needs formatting.
fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Compile and run every benchmark exactly once so they cannot bit-rot;
# use `go test -bench=. -benchmem ./...` for real measurements.
bench:
	$(GO) test -run=NoTests -bench=. -benchtime=1x ./...

# The figures CI publishes as artifacts.
bench-multidev:
	$(GO) run ./cmd/fsbench -fig multidev -quick -json > BENCH_multidevice.json

bench-timeline:
	$(GO) run ./cmd/fsbench -fig timeline -quick -json > BENCH_timeline.json

# Mirrors the CI lint job. Each analyzer is skipped with a notice when
# its binary is not on PATH (install with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest ).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping" >&2; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping" >&2; \
	fi

ci: build vet fmt-check lint test race bench
