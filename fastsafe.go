// Public API: a stable, dependency-free facade over the simulator for
// embedding in other tools. The full-fidelity interfaces live in the
// internal packages (see README); this surface covers the common case —
// "simulate this configuration, give me the paper's metrics".
package fastsafe

import (
	"context"
	"fmt"

	"fastsafe/internal/core"
	"fastsafe/internal/fabric"
	"fastsafe/internal/fault"
	"fastsafe/internal/host"
	"fastsafe/internal/modespec"
	"fastsafe/internal/runner"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// Mode names a memory-protection datapath.
type Mode string

// The implemented protection modes.
const (
	// Off disables the IOMMU (no protection).
	Off Mode = "off"
	// Strict is Linux's strict mode: per-page unmap + full invalidation.
	Strict Mode = "strict"
	// Deferred is Linux's lazy mode: batched global flushes, unsafe window.
	Deferred Mode = "deferred"
	// StrictPreserve is ablation A: strict + preserved page-table caches.
	StrictPreserve Mode = "strict+preserve"
	// StrictContig is ablation B: contiguous IOVAs + batched invalidations.
	StrictContig Mode = "strict+contig"
	// FNS is the paper's Fast & Safe design (A + B).
	FNS Mode = "fns"
	// Persistent never unmaps (DAMN-style weak-safety baseline).
	Persistent Mode = "persistent"
	// FNSHuge is F&S over 2MB hugepage-backed descriptors (§5 future work).
	FNSHuge Mode = "fns+huge"
	// DeferNoShootdown is a deliberately unsafe strawman: F&S's deferred
	// frees without the IOTLB shootdowns. It exists so fault-injection
	// audits (Options.Faults) have a mode that provably serves stale
	// translations; it is excluded from Modes().
	DeferNoShootdown Mode = "defer-noshootdown"
	// Cap is the CAPIO-style capability family: DMA validates against a
	// per-domain capability table (no page-table walk, no IOTLB), and
	// unmap revokes the grant synchronously — strict-equivalent safety
	// with O(1) checks. Excluded from Modes() sweeps.
	Cap Mode = "cap"
	// CapLazyRevoke batches capability revocations like deferred mode
	// batches IOTLB flushes, trading a bounded stale-capability window
	// for cheaper unmaps. Excluded from Modes() sweeps.
	CapLazyRevoke Mode = "cap-lazyrevoke"
)

// Modes lists every implemented protection mode.
func Modes() []Mode {
	var out []Mode
	for _, m := range core.Modes() {
		out = append(out, Mode(m.String()))
	}
	return out
}

// Options configures one simulation. Zero values take the paper's §2.2
// testbed defaults (100Gbps NIC, 128Gbps PCIe, 4KB MTU, ring 256, five
// cores, five bulk flows).
type Options struct {
	Mode        Mode
	Flows       int     // bulk Rx flows (default 5)
	TxFlows     int     // bulk Tx flows, one extra core each
	Cores       int     // cores serving Rx flows (default 5)
	RingPackets int     // Rx ring size per core (default 256)
	MTU         int     // bytes (default 4096)
	Seed        int64   // deterministic seed (default 1)
	MemHogGBps  float64 // co-tenant memory-bandwidth antagonist
	// MemHogStartMS delays the antagonist's onset to a virtual time in
	// milliseconds (0 = active from the start), so a sampled run can
	// watch the transition into memory contention.
	MemHogStartMS int
	WarmupMS      int // default 10
	MeasureMS     int // default 30

	// SampleUS enables the telemetry sampler: every SampleUS microseconds
	// of virtual time the per-interval series land in Report.Timeline.
	// 0 disables sampling (the default); sampling never changes the
	// simulation's results, only observes them.
	SampleUS int

	// Devices attaches co-tenant DMA devices sharing the host's IOMMU
	// with the primary NIC. Their interference shows up both in the
	// top-level (primary NIC) metrics and in Report.Devices.
	Devices []DeviceOptions

	// Faults enables deterministic fault injection. A bare number is a
	// canonical-campaign intensity ("1" ≈ the paper-grade adversarial
	// run); otherwise a comma-separated key=value spec, e.g.
	// "invdrop=0.02,straydma=0.05,linkflap=3ms" (see internal/fault.Parse
	// for the full key list). Empty disables injection and leaves every
	// simulation byte-identical to a build without the fault layer.
	Faults string
	// FaultSeed seeds the injector's private RNG stream independently of
	// Seed; 0 inherits Seed. Same Options + same FaultSeed replays the
	// identical fault sequence.
	FaultSeed int64
	// Audit cross-checks every completed device translation against the
	// live page table and reports the tally in Report.Safety. Implied by
	// Faults; on its own it audits a fault-free run (zero overhead on
	// simulated time — the auditor is an observer).
	Audit bool

	// Control installs the adaptive protection control plane: a
	// deterministic rule engine on the virtual clock that watches the
	// telemetry registry and switches each NIC domain's protection mode
	// through a safe transition protocol. The spec is ';'-separated
	// rule segments plus an optional evaluation period, e.g.
	//
	//	"every=500us;guard,metric=audit.blocked,high=1,low=0,safe=strict,fast=fns,cooldown=2ms"
	//
	// A guard rule escalates to its safe mode while the watched
	// counter's per-tick delta crosses high and relaxes at low; a
	// pressure rule watches a level the same way toward its fast mode.
	// Empty disables the control plane and leaves every simulation
	// byte-identical to a build without it. Decisions land in
	// Report.ModeSwitches.
	Control string

	// ATSEntries sizes each device's ATS translation cache (the device
	// TLB) in 4KB entries. 0, the default, attaches no device cache:
	// every DMA translates at the IOMMU and results are byte-identical
	// to builds without ATS. Positive values let devices cache
	// translations locally — hits skip the IOMMU, misses pay an ATS
	// request, faults fall back to PRI, and every unmap additionally
	// shoots the device cache down through the invalidation queue.
	ATSEntries int

	// Serve enables the serving-fleet churn scenario: an open-loop fleet
	// of heavy-tailed request/response connections replaces the bulk
	// iperf flows (unless Flows is set explicitly). nil disables it.
	Serve *ServeOptions
}

// ServeOptions configures the serving-fleet churn workload: open-loop
// Poisson arrivals, bounded-Pareto request/response sizes, and
// connection churn — each connection dies with probability Churn per
// request and is reborn with a fresh DMA buffer, so IOVA alloc/free and
// (un)map rates scale with the churn rate.
type ServeOptions struct {
	// Conns is the number of open-loop connections (>= 1).
	Conns int
	// Churn is the per-request connection death probability, in (0, 1].
	Churn float64
	// Cohort aggregates that many identical connections into one
	// flow-aggregate sharing a simulated latency model; 1 (or 0, the
	// default) simulates every connection exactly. Aggregation never
	// changes counters or goodput — only latency attribution.
	Cohort int
}

// DeviceOptions describes one co-tenant DMA device.
type DeviceOptions struct {
	// Kind selects the device model: "storage" (NVMe-style block reads,
	// the default) or "nic" (a second full network datapath).
	Kind string
	// Mode is the device's protection mode; empty inherits Options.Mode.
	Mode Mode
	// RateGBps is the storage read bandwidth in decimal GB/s (storage
	// only; default 8).
	RateGBps float64
}

// validate rejects nonsense before it panics deep inside host.New.
func (o Options) validate() error {
	if o.Mode != "" {
		if _, err := modespec.Host(string(o.Mode)); err != nil {
			return fmt.Errorf("fastsafe: %w", err)
		}
	}
	switch {
	case o.Flows < 0:
		return fmt.Errorf("fastsafe: Flows must be >= 0, got %d", o.Flows)
	case o.TxFlows < 0:
		return fmt.Errorf("fastsafe: TxFlows must be >= 0, got %d", o.TxFlows)
	case o.Cores < 0:
		return fmt.Errorf("fastsafe: Cores must be >= 0, got %d", o.Cores)
	case o.RingPackets < 0:
		return fmt.Errorf("fastsafe: RingPackets must be >= 0, got %d", o.RingPackets)
	case o.MTU < 0:
		return fmt.Errorf("fastsafe: MTU must be >= 0, got %d", o.MTU)
	case o.MTU > 0 && o.MTU < 64:
		return fmt.Errorf("fastsafe: MTU must be at least 64 bytes, got %d", o.MTU)
	case o.Seed < 0:
		return fmt.Errorf("fastsafe: Seed must be >= 0, got %d", o.Seed)
	case o.MemHogGBps < 0:
		return fmt.Errorf("fastsafe: MemHogGBps must be >= 0, got %g", o.MemHogGBps)
	case o.MemHogStartMS < 0:
		return fmt.Errorf("fastsafe: MemHogStartMS must be >= 0, got %d", o.MemHogStartMS)
	case o.SampleUS < 0:
		return fmt.Errorf("fastsafe: SampleUS must be >= 0, got %d", o.SampleUS)
	case o.WarmupMS < 0:
		return fmt.Errorf("fastsafe: WarmupMS must be >= 0, got %d", o.WarmupMS)
	case o.MeasureMS < 0:
		return fmt.Errorf("fastsafe: MeasureMS must be >= 0, got %d", o.MeasureMS)
	case o.FaultSeed < 0:
		return fmt.Errorf("fastsafe: FaultSeed must be >= 0, got %d", o.FaultSeed)
	case o.ATSEntries < 0:
		return fmt.Errorf("fastsafe: ATSEntries must be >= 0, got %d (0 disables the device TLB)", o.ATSEntries)
	}
	if o.Faults != "" {
		if _, err := fault.Parse(o.Faults); err != nil {
			return fmt.Errorf("fastsafe: %w", err)
		}
	}
	if o.Control != "" {
		if _, err := modespec.Control(o.Control); err != nil {
			return fmt.Errorf("fastsafe: %w", err)
		}
	}
	if s := o.Serve; s != nil {
		switch {
		case s.Conns < 1:
			return fmt.Errorf("fastsafe: Serve.Conns must be >= 1, got %d", s.Conns)
		case s.Churn <= 0 || s.Churn > 1:
			return fmt.Errorf("fastsafe: Serve.Churn must be in (0, 1], got %g (the per-request connection death probability)", s.Churn)
		case s.Cohort < 0:
			return fmt.Errorf("fastsafe: Serve.Cohort must be >= 0, got %d (0 and 1 simulate every connection exactly)", s.Cohort)
		case s.Cohort > s.Conns:
			return fmt.Errorf("fastsafe: Serve.Cohort must be <= Serve.Conns, got %d > %d", s.Cohort, s.Conns)
		}
	}
	for i, d := range o.Devices {
		switch d.Kind {
		case "", "storage":
			if d.RateGBps < 0 {
				return fmt.Errorf("fastsafe: Devices[%d].RateGBps must be >= 0, got %g", i, d.RateGBps)
			}
		case "nic":
			// No rate knob: a NIC co-tenant runs full bulk flows.
		default:
			return fmt.Errorf("fastsafe: Devices[%d].Kind must be \"storage\" or \"nic\", got %q", i, d.Kind)
		}
		if _, err := modespec.Device(string(d.Mode)); err != nil {
			return fmt.Errorf("fastsafe: Devices[%d]: %w", i, err)
		}
	}
	return nil
}

// Report is the simulation outcome, in the units the paper plots.
type Report struct {
	Mode Mode

	RxGbps   float64 // application-level receive goodput
	TxGbps   float64 // transmit goodput (bidirectional runs)
	DropRate float64 // NIC tail drops / arrivals

	IOTLBMissesPerPage float64
	PTcacheL1PerPage   float64
	PTcacheL2PerPage   float64
	PTcacheL3PerPage   float64
	MemReadsPerPage    float64
	AcksPerPage        float64

	MaxCPUUtilization float64
	MemUtilization    float64

	// Safety accounting: both must be zero for every strict-safety mode.
	StaleIOTLBUses int64
	StalePTUses    int64

	// ModeSwitches is the control plane's applied-decision log over the
	// whole run, in virtual-time order; empty unless Options.Control
	// installed a controller.
	ModeSwitches []ModeSwitch

	// FaultsInjected counts the faults the injector fired inside the
	// measurement window (zero without Options.Faults).
	FaultsInjected int64
	// Safety is the translation audit over the measurement window; nil
	// unless Options.Audit or Options.Faults enabled the auditor.
	Safety *SafetyReport

	// RxDMALatency and TxDMALatency summarise the primary NIC's PCIe DMA
	// completion latencies over the measurement window.
	RxDMALatency LatencyReport
	TxDMALatency LatencyReport

	// Serving-fleet outputs; all zero unless Options.Serve was set.
	ServeCompleted int64         // requests answered in the window
	ServeGbps      float64       // request+response goodput
	ServeDeaths    int64         // connection deaths (churn events)
	ServeExpired   int64         // requests abandoned after drops
	ServeLatency   LatencyReport // end-to-end request latency

	// Timeline holds the sampled per-interval series over the measurement
	// window; empty unless Options.SampleUS was set.
	Timeline []Series

	// Devices is the per-device breakdown (primary NIC first, then the
	// co-tenants in Options.Devices order).
	Devices []DeviceReport
}

// ModeSwitch is one applied control-plane decision: at AtNS of virtual
// time, the rule watching Metric (whose observed delta or level was
// Value) moved Device's protection mode From -> To.
type ModeSwitch struct {
	AtNS   int64
	Device string
	Rule   string
	Metric string
	Value  float64
	From   Mode
	To     Mode
}

// Series is one sampled telemetry metric: Values[i] was recorded at
// TimesNS[i] nanoseconds of virtual time.
type Series struct {
	Name    string
	TimesNS []int64
	Values  []float64
}

// SafetyReport tallies the translation audit: every completed device DMA
// cross-checked against the live page table. StaleUnmapped and
// StaleRemapped are safety violations — Blocked and Retries are the
// protection working as designed.
type SafetyReport struct {
	Checked         int64 // translations audited
	Blocked         int64 // DMAs the IOMMU rejected (no live mapping)
	StaleUnmapped   int64 // DMAs served from a stale cache after unmap
	StaleRemapped   int64 // DMAs served to the wrong page after IOVA reuse
	StaleATS        int64 // DMAs served from a stale device-TLB (ATS) entry
	StaleCapability int64 // DMAs served by a grant that outlived its mapping (cap-lazyrevoke window)
	Retries         int64 // benign driver retries caused by injected faults
}

// Violations is the count of stale-served DMAs — the number the paper's
// safety claim requires to be zero for strict and F&S, and this
// codebase additionally requires to be zero for the eager cap mode.
func (s SafetyReport) Violations() int64 {
	return s.StaleUnmapped + s.StaleRemapped + s.StaleATS + s.StaleCapability
}

// LatencyReport summarises one latency distribution in microseconds.
type LatencyReport struct {
	Count                  int64
	P50us, P99us, P99_99us float64
}

// DeviceReport is one DMA device's share of the measurement window.
type DeviceReport struct {
	Name string
	Kind string
	Mode Mode

	GoodputGbps   float64 // payload the device moved
	MissesPerPage float64 // shared-IOTLB misses per 4KB page of that payload
	WalkReads     int64   // page-table memory reads its translations caused
	Invalidations int64   // invalidation requests its domain submitted

	// Device-TLB (ATS) accounting; all zero when Options.ATSEntries is 0.
	ATSLookups       int64   // translations that consulted the device TLB
	ATSHitRate       float64 // fraction of lookups served locally
	ATCInvalidations int64   // device-TLB entries shot down by host unmaps

	// Capability-table accounting; all zero outside cap/cap-lazyrevoke.
	CapChecks      int64 // DMAs validated against the capability table
	CapRevocations int64 // grants killed (revokes and overwriting re-grants)
	CapDenied      int64 // DMAs blocked for want of a live grant
}

// latencyReport summarises a latency histogram; a nil or empty histogram
// yields the zero report.
func latencyReport(h *stats.Histogram) LatencyReport {
	if h == nil || h.Count() == 0 {
		return LatencyReport{}
	}
	us := func(q float64) float64 { return float64(h.Quantile(q)) / 1000 }
	return LatencyReport{Count: h.Count(), P50us: us(0.50), P99us: us(0.99), P99_99us: us(0.9999)}
}

// hostConfig converts validated Options into the host.Config both
// Simulate and SimulateCluster build on.
func hostConfig(o Options) (host.Config, error) {
	m, err := modespec.Host(string(o.Mode))
	if err != nil {
		return host.Config{}, fmt.Errorf("fastsafe: %w", err)
	}
	var topo host.Topology
	for _, d := range o.Devices {
		devMode, err := modespec.Device(string(d.Mode))
		if err != nil {
			return host.Config{}, fmt.Errorf("fastsafe: %w", err)
		}
		switch d.Kind {
		case "", "storage":
			rate := d.RateGBps
			if rate == 0 {
				rate = 8
			}
			topo.Storage = append(topo.Storage, host.StorageSpec{
				ReadGBps: rate,
				Mode:     devMode,
			})
		case "nic":
			topo.NICs = append(topo.NICs, host.NICSpec{Mode: devMode})
		}
	}
	var plan fault.Plan
	if o.Faults != "" {
		plan, err = fault.Parse(o.Faults)
		if err != nil {
			return host.Config{}, fmt.Errorf("fastsafe: %w", err)
		}
	}
	ctl, err := modespec.Control(o.Control)
	if err != nil {
		return host.Config{}, fmt.Errorf("fastsafe: %w", err)
	}
	var serve *host.ServeConfig
	flows := o.Flows
	if o.Serve != nil {
		cohortSize := o.Serve.Cohort
		if cohortSize == 0 {
			cohortSize = 1
		}
		serve = &host.ServeConfig{Conns: o.Serve.Conns, Churn: o.Serve.Churn, Cohort: cohortSize}
		if flows == 0 {
			flows = -1 // the fleet is the workload; no bulk flows unless asked
		}
	}
	return host.Config{
		Mode:        m,
		RxFlows:     flows,
		TxFlows:     o.TxFlows,
		Cores:       o.Cores,
		RingPackets: o.RingPackets,
		MTU:         o.MTU,
		Seed:        o.Seed,
		MemHogGBps:  o.MemHogGBps,
		MemHogStart: sim.Duration(o.MemHogStartMS) * sim.Millisecond,
		Topology:    topo,
		Serve:       serve,
		Control:     ctl,
		Faults:      plan,
		FaultSeed:   o.FaultSeed,
		Audit:       o.Audit,
		ATSEntries:  o.ATSEntries,
		Telemetry: host.TelemetryConfig{
			SampleEvery: sim.Duration(o.SampleUS) * sim.Microsecond,
		},
	}, nil
}

// windows returns the warmup and measurement durations for Options.
func (o Options) windows() (warm, meas sim.Duration) {
	w, m := o.WarmupMS, o.MeasureMS
	if w <= 0 {
		w = 10
	}
	if m <= 0 {
		m = 30
	}
	return sim.Duration(w) * sim.Millisecond, sim.Duration(m) * sim.Millisecond
}

// Simulate runs one experiment and returns its report.
func Simulate(o Options) (Report, error) {
	if o.Mode == "" {
		o.Mode = Strict
	}
	if err := o.validate(); err != nil {
		return Report{}, err
	}
	cfg, err := hostConfig(o)
	if err != nil {
		return Report{}, err
	}
	h, err := host.New(cfg)
	if err != nil {
		return Report{}, fmt.Errorf("fastsafe: %w", err)
	}
	warm, meas := o.windows()
	return reportFrom(h.Run(warm, meas)), nil
}

// reportFrom converts host-level Results into the facade's Report.
func reportFrom(r host.Results) Report {
	rep := Report{
		Mode:               Mode(r.Mode.String()),
		RxGbps:             r.RxGbps,
		TxGbps:             r.TxGbps,
		DropRate:           r.DropRate,
		IOTLBMissesPerPage: r.IOTLBPerPage,
		PTcacheL1PerPage:   r.L1PerPage,
		PTcacheL2PerPage:   r.L2PerPage,
		PTcacheL3PerPage:   r.L3PerPage,
		MemReadsPerPage:    r.ReadsPerPage,
		AcksPerPage:        r.AcksPerPage,
		MaxCPUUtilization:  r.MaxCPUUtil,
		MemUtilization:     r.MemUtil,
		StaleIOTLBUses:     r.StaleIOTLB,
		StalePTUses:        r.StalePT,
		FaultsInjected:     r.FaultsInjected,
		RxDMALatency:       latencyReport(r.Latencies.RxDMA),
		TxDMALatency:       latencyReport(r.Latencies.TxDMA),
		ServeCompleted:     r.ServeCompleted,
		ServeGbps:          r.ServeGbps,
		ServeDeaths:        r.ServeDeaths,
		ServeExpired:       r.ServeExpired,
		ServeLatency:       latencyReport(r.ServeLatency),
	}
	for _, d := range r.Control {
		rep.ModeSwitches = append(rep.ModeSwitches, ModeSwitch{
			AtNS:   int64(d.At),
			Device: d.Domain,
			Rule:   d.Rule,
			Metric: d.Metric,
			Value:  d.Value,
			From:   Mode(d.From.String()),
			To:     Mode(d.To.String()),
		})
	}
	if r.Safety != nil {
		rep.Safety = &SafetyReport{
			Checked:         r.Safety.Checked,
			Blocked:         r.Safety.Blocked,
			StaleUnmapped:   r.Safety.StaleUnmapped,
			StaleRemapped:   r.Safety.StaleRemapped,
			StaleATS:        r.Safety.StaleATS,
			StaleCapability: r.Safety.StaleCapability,
			Retries:         r.Safety.Retries,
		}
	}
	for _, s := range r.Timeline {
		out := Series{Name: s.Name, Values: append([]float64(nil), s.Values...)}
		for _, at := range s.Times {
			out.TimesNS = append(out.TimesNS, int64(at))
		}
		rep.Timeline = append(rep.Timeline, out)
	}
	for _, d := range r.Devices {
		rep.Devices = append(rep.Devices, DeviceReport{
			Name:             d.Name,
			Kind:             d.Kind,
			Mode:             Mode(d.Mode.String()),
			GoodputGbps:      d.GoodputGbps,
			MissesPerPage:    d.MissesPerPage,
			WalkReads:        d.WalkReads,
			Invalidations:    d.Invalidations,
			ATSLookups:       d.ATSLookups,
			ATSHitRate:       d.ATSHitRate,
			ATCInvalidations: d.ATCInvalidations,
			CapChecks:        d.CapChecks,
			CapRevocations:   d.CapRevocations,
			CapDenied:        d.CapDenied,
		})
	}
	return rep
}

// ClusterOptions configures an N-host simulation on a switched fabric.
type ClusterOptions struct {
	// Hosts is the cluster size (>= 2).
	Hosts int
	// Traffic is the flow pattern: "incast" (all hosts send to host 0,
	// the default), "alltoall" (every ordered pair), or "pairs" (host 2k
	// sends to host 2k+1).
	Traffic string
	// FlowsPerPair is the DCTCP flows per (src, dst) pair (default 1).
	FlowsPerPair int
	// FabricGbps is the per-port fabric line rate; 0 inherits the host
	// NIC line rate (100Gbps).
	FabricGbps float64
	// Oversub is the fabric core oversubscription factor: the shared
	// core runs at hosts*FabricGbps/Oversub. 0 keeps it non-blocking.
	Oversub float64
	// RDMA selects the verb every peer flow uses: "" or "sendrecv"
	// keeps the two-sided shape (remote CPU posts buffers and runs the
	// stack per packet); "read" or "write" switches to one-sided RDMA —
	// the initiator streams against a registered memory window that the
	// remote NIC resolves itself, through its device-side ATS cache
	// when Host.ATSEntries is set, with no remote core on the data
	// path.
	RDMA string
	// Shards splits the simulation across that many conservative-
	// parallel engine shards (hosts are assigned contiguously), letting
	// large clusters use multiple OS cores. 0 or 1 runs everything on
	// one engine — the default, and byte-identical to releases without
	// sharding. Values above Hosts clamp to one host per shard. Results
	// are deterministic for a given configuration regardless of Shards
	// or GOMAXPROCS.
	Shards int

	// Host configures every host identically. Flows and TxFlows are
	// ignored — cluster hosts run the pattern's peer flows instead of
	// flows to an abstract remote.
	Host Options
}

func (o ClusterOptions) validate() error {
	switch {
	case o.Hosts < 2:
		return fmt.Errorf("fastsafe: Hosts must be >= 2, got %d", o.Hosts)
	case o.FlowsPerPair < 0:
		return fmt.Errorf("fastsafe: FlowsPerPair must be >= 0, got %d", o.FlowsPerPair)
	case o.FabricGbps < 0:
		return fmt.Errorf("fastsafe: FabricGbps must be >= 0, got %g", o.FabricGbps)
	case o.Oversub < 0:
		return fmt.Errorf("fastsafe: Oversub must be >= 0, got %g", o.Oversub)
	case o.Shards < 0:
		return fmt.Errorf("fastsafe: Shards must be >= 0, got %d", o.Shards)
	}
	if o.Traffic != "" {
		if _, err := host.ParseTraffic(o.Traffic); err != nil {
			return fmt.Errorf("fastsafe: %w", err)
		}
	}
	if _, err := modespec.RDMA(o.RDMA); err != nil {
		return fmt.Errorf("fastsafe: %w", err)
	}
	return o.Host.validate()
}

// ClusterReport is the outcome of an N-host simulation: one Report per
// host (index = host ID) plus cluster-wide aggregates.
type ClusterReport struct {
	Mode  Mode
	Hosts []Report

	AggRxGbps float64 // summed per-host receive goodput
	AggTxGbps float64 // summed per-host transmit goodput
	// StaleServedDMAs sums every host's audited safety violations; the
	// paper's claim is zero for strict and F&S at any cluster size.
	StaleServedDMAs int64
}

// SimulateCluster runs an N-host experiment on a switched fabric: every
// host is the same detailed machine Simulate measures (own IOMMU, PCIe,
// cores), connected through per-port switch queues, paying protection
// costs at both ends of every flow.
func SimulateCluster(o ClusterOptions) (ClusterReport, error) {
	if o.Host.Mode == "" {
		o.Host.Mode = Strict
	}
	if err := o.validate(); err != nil {
		return ClusterReport{}, err
	}
	cfg, err := hostConfig(o.Host)
	if err != nil {
		return ClusterReport{}, err
	}
	op, err := modespec.RDMA(o.RDMA)
	if err != nil {
		return ClusterReport{}, fmt.Errorf("fastsafe: %w", err)
	}
	c, err := host.NewCluster(host.ClusterConfig{
		Hosts:        o.Hosts,
		Traffic:      host.TrafficPattern(o.Traffic),
		FlowsPerPair: o.FlowsPerPair,
		Shards:       o.Shards,
		Op:           op,
		Host:         cfg,
		Fabric: fabric.Config{
			PortGbps: o.FabricGbps,
			Oversub:  o.Oversub,
		},
	})
	if err != nil {
		return ClusterReport{}, fmt.Errorf("fastsafe: %w", err)
	}
	warm, meas := o.Host.windows()
	r := c.Run(warm, meas)
	rep := ClusterReport{
		Mode:            o.Host.Mode,
		AggRxGbps:       r.AggRxGbps,
		AggTxGbps:       r.AggTxGbps,
		StaleServedDMAs: r.Violations(),
	}
	for _, hr := range r.Hosts {
		rep.Hosts = append(rep.Hosts, reportFrom(hr))
	}
	return rep, nil
}

// Compare runs the same configuration under several modes, concurrently.
// Reports are returned in the order the modes were given. With no modes it
// compares Off, Strict and FNS.
func Compare(o Options, modes ...Mode) ([]Report, error) {
	return CompareContext(context.Background(), 0, o, modes...)
}

// CompareContext is Compare with cancellation and an explicit parallelism
// bound (parallel <= 0 means GOMAXPROCS).
func CompareContext(ctx context.Context, parallel int, o Options, modes ...Mode) ([]Report, error) {
	if len(modes) == 0 {
		modes = []Mode{Off, Strict, FNS}
	}
	return SweepContext(ctx, parallel, o, func(i int) Options {
		v := o
		v.Mode = modes[i]
		return v
	}, len(modes))
}

// Sweep runs n simulations concurrently across GOMAXPROCS workers and
// returns their reports in job order (reports[i] is the run configured by
// vary(i), independent of completion order). vary receives the job index
// and returns that job's Options — typically a closure over base:
//
//	reports, err := fastsafe.Sweep(base, func(i int) fastsafe.Options {
//		v := base
//		v.Flows = flows[i]
//		return v
//	}, len(flows))
//
// A nil vary runs base n times unchanged (useful only with per-job edits
// baked into base, e.g. seed studies via SweepContext wrappers). Every
// simulation is deterministic and self-contained, so a parallel sweep
// produces byte-identical Reports to running the same configurations
// sequentially. The first failing job cancels the jobs not yet started
// and its error is returned.
func Sweep(base Options, vary func(i int) Options, n int) ([]Report, error) {
	return SweepContext(context.Background(), 0, base, vary, n)
}

// SweepContext is Sweep with cancellation and an explicit parallelism
// bound (parallel <= 0 means GOMAXPROCS). A job that panics fails the
// sweep with a *runner.PanicError instead of crashing the process.
func SweepContext(ctx context.Context, parallel int, base Options, vary func(i int) Options, n int) ([]Report, error) {
	jobs := make([]runner.Job[Report], n)
	for i := 0; i < n; i++ {
		o := base
		if vary != nil {
			o = vary(i)
		}
		jobs[i] = func(context.Context) (Report, error) { return Simulate(o) }
	}
	return runner.Collect(ctx, runner.Config{Workers: parallel}, jobs)
}
