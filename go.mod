module fastsafe

go 1.22
