// Key-value store example (the paper's Figure 11a scenario): a Redis-like
// server receives SET requests with bulk values and answers with small
// replies, one server instance per core, clients pipelining 32 requests.
// The reply-per-request Tx traffic is exactly the interference that makes
// small values hurt under default protection (§4.4).
//
// Run with: go run ./examples/keyvalue
package main

import (
	"fmt"
	"log"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
	"fastsafe/internal/workload"
)

func main() {
	fmt.Println("Redis-like SET workload, 8 cores, 9K MTU, pipelining 32")
	fmt.Println()
	fmt.Printf("%-10s %10s %10s %11s %12s\n", "mode", "value", "set_gbps", "iotlb/page", "reads/page")

	for _, mode := range []core.Mode{core.Off, core.Strict, core.FNS} {
		for _, value := range []int{4 << 10, 64 << 10, 128 << 10} {
			s := workload.Redis(mode, value)
			s.Warmup = 10 * sim.Millisecond
			s.Measure = 30 * sim.Millisecond
			r, err := s.Run()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %9dK %10.1f %11.2f %12.2f\n",
				mode, value>>10, r.MsgGbps, r.IOTLBPerPage, r.ReadsPerPage)
		}
	}
	fmt.Println()
	fmt.Println("Smaller values mean more replies per byte received — more Tx")
	fmt.Println("translations contending for the IOTLB (the §4.4 residual gap).")
}
