// Quickstart: the paper's headline result through the public API — five
// bulk DCTCP flows into a 100Gbps receiver under three protection modes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fastsafe"
)

func main() {
	fmt.Println("Fast & Safe IO memory protection — quickstart")
	fmt.Println("five iperf flows into a 100Gbps receiver, 30ms measured window")
	fmt.Println()
	fmt.Printf("%-10s %9s %9s %11s %12s %11s\n",
		"mode", "rx_gbps", "drops", "iotlb/page", "reads/page", "reads/miss")

	reports, err := fastsafe.Compare(fastsafe.Options{},
		fastsafe.Off, fastsafe.Strict, fastsafe.FNS, fastsafe.FNSHuge)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		perMiss := 0.0
		if r.IOTLBMissesPerPage > 0 {
			perMiss = r.MemReadsPerPage / r.IOTLBMissesPerPage
		}
		fmt.Printf("%-10s %9.1f %8.2f%% %11.2f %12.2f %11.2f\n",
			r.Mode, r.RxGbps, r.DropRate*100, r.IOTLBMissesPerPage,
			r.MemReadsPerPage, perMiss)
	}

	fmt.Println()
	fmt.Println("F&S keeps the unavoidable one IOTLB miss per page (strict safety)")
	fmt.Println("but drives the cost of each miss to ~1 memory read, so throughput")
	fmt.Println("matches the IOMMU-off baseline — the paper's headline result.")
	fmt.Println("fns+huge (the paper's §5 future work) also removes most of the")
	fmt.Println("misses themselves, at 2MB revocation granularity.")
}
