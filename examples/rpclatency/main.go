// RPC latency example (the paper's Figure 9 scenario): a latency-sensitive
// request/response application shares the host with five throughput-bound
// iperf flows. Memory protection inflates the RPC tail when every DMA pays
// a multi-read page-table walk; F&S restores it.
//
// Run with: go run ./examples/rpclatency
package main

import (
	"fmt"
	"log"

	"fastsafe/internal/core"
	"fastsafe/internal/host"
	"fastsafe/internal/sim"
)

func main() {
	fmt.Println("4KB RPCs colocated with 5 iperf flows (dedicated RPC core)")
	fmt.Println()
	fmt.Printf("%-10s %9s %9s %9s %10s %8s\n", "mode", "p50_us", "p99_us", "p99.9_us", "p99.99_us", "rpcs")

	for _, mode := range []core.Mode{core.Off, core.Strict, core.FNS} {
		h, err := host.New(host.Config{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		h.InstallMessages(host.MsgConfig{
			Pattern:   host.LocalServes,
			Streams:   1,
			Depth:     1,
			ReqBytes:  4096,
			RespBytes: 4096,
			AppCPU:    2 * sim.Microsecond,
			Cores:     1,
			CoreBase:  5,
		})
		r := h.Run(10*sim.Millisecond, 100*sim.Millisecond)
		p := r.Percentiles()
		us := func(ns int64) float64 { return float64(ns) / 1000 }
		fmt.Printf("%-10s %9.1f %9.1f %9.1f %10.1f %8d\n",
			mode, us(p[0]), us(p[1]), us(p[2]), us(p[3]), r.Completed)
	}
}
