// Co-tenancy example: the receiver shares its host with an NVMe-style
// storage device (same IOMMU, separate protection domain) and a
// memory-bandwidth antagonist. Under Linux strict the co-tenants inflate
// the network datapath's translation costs; F&S's one-read walks shrug
// them off.
//
// Run with: go run ./examples/cotenant
package main

import (
	"fmt"
	"log"

	"fastsafe/internal/core"
	"fastsafe/internal/host"
	"fastsafe/internal/sim"
)

func main() {
	fmt.Println("five iperf flows + 8GB/s storage reads + 8GB/s memory hog")
	fmt.Println()
	fmt.Printf("%-8s %-10s %9s %12s %9s %9s\n",
		"mode", "cotenants", "rx_gbps", "reads/page", "mem_util", "blocks")

	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		for _, loaded := range []bool{false, true} {
			cfg := host.Config{Mode: mode}
			if loaded {
				cfg.MemHogGBps = 8
			}
			h, err := host.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			var blocks int64
			var dev interface{ Blocks() int64 }
			if loaded {
				dev = h.InstallStorage(host.StorageConfig{ReadGBps: 8})
			}
			r := h.Run(10*sim.Millisecond, 30*sim.Millisecond)
			if dev != nil {
				blocks = dev.Blocks()
			}
			label := "none"
			if loaded {
				label = "disk+hog"
			}
			fmt.Printf("%-8s %-10s %9.1f %12.2f %8.0f%% %9d\n",
				mode, label, r.RxGbps, r.ReadsPerPage, r.MemUtil*100, blocks)
		}
	}
	fmt.Println()
	fmt.Println("Domain-tagged IOMMU caches keep the devices isolated (no device")
	fmt.Println("can use another's translations) while still contending for")
	fmt.Println("capacity and walker bandwidth — the production multi-tenancy")
	fmt.Println("problem that motivates the paper.")
}
