// Ablation example (the paper's Figure 12): which of the F&S ideas does
// the work? A = preserving page-table caches across invalidations;
// B = contiguous descriptor-sized IOVAs plus batched invalidations.
// Neither alone reaches F&S: A still suffers locality misses, B still
// loses its caches to invalidations.
//
// Run with: go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
	"fastsafe/internal/workload"
)

func main() {
	fmt.Println("F&S ablation on the Redis 8KB-value workload")
	fmt.Println()
	fmt.Printf("%-30s %9s %11s %11s %12s %10s\n",
		"configuration", "gbps", "ptL1/page", "ptL3/page", "reads/page", "inv_reqs")

	labels := map[core.Mode]string{
		core.Strict:         "Linux strict",
		core.StrictPreserve: "Linux + A (preserve caches)",
		core.StrictContig:   "Linux + B (contig + batch)",
		core.FNS:            "F&S (A + B)",
	}
	for _, mode := range []core.Mode{core.Strict, core.StrictPreserve, core.StrictContig, core.FNS} {
		s := workload.RedisAblation(mode)
		s.Warmup = 10 * sim.Millisecond
		s.Measure = 30 * sim.Millisecond
		r, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %9.1f %11.3f %11.3f %12.2f %10d\n",
			labels[mode], r.MsgGbps, r.L1PerPage, r.L3PerPage, r.ReadsPerPage, r.InvRequests)
	}
}
