// Package fastsafe is a full-system simulation study of "Fast & Safe IO
// Memory Protection" (Rubin, Agarwal, Cai, Agarwal — SOSP 2024).
//
// The paper's contribution — reducing the cost of each IOTLB miss by
// allocating contiguous descriptor-sized IOVAs, preserving the IOMMU's
// page-table caches across invalidations, and batching invalidation-queue
// requests — is implemented in internal/core over a faithful simulation of
// every substrate it touches: the 4-level IO page table (internal/ptable),
// the IOTLB and page-table caches with their walker and invalidation queue
// (internal/iommu), the Linux red-black-tree + per-CPU-magazine IOVA
// allocator (internal/iova), the PCIe path and its translation latency
// model (internal/pcie), a multi-page-descriptor NIC (internal/nic), a
// DCTCP-style transport (internal/transport), and the host wiring with
// per-core CPU accounting (internal/host).
//
// cmd/fsbench regenerates every figure in the paper's evaluation;
// EXPERIMENTS.md records the paper-vs-simulated comparison. Start with
// examples/quickstart.
//
// Simulations are deterministic and self-contained, so sweeps are
// embarrassingly parallel: Simulate runs one configuration, Compare runs
// one configuration under several modes concurrently, and Sweep fans any
// configuration series across GOMAXPROCS workers (internal/runner) while
// returning reports in job order.
package fastsafe
