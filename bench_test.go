package fastsafe

// One benchmark per table/figure in the paper's evaluation. Each iteration
// regenerates the figure with shortened (Quick) measurement windows; run
// the cmd/fsbench binary for full-length windows and printed tables.

import (
	"testing"

	"fastsafe/internal/experiments"
)

func benchFig(b *testing.B, id string) {
	b.Helper()
	o := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ByID(id, o); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 2: Linux strict vs IOMMU off across flow counts (§2.2).
func BenchmarkFig2(b *testing.B) { benchFig(b, "fig2") }

// Figure 2e: PTcache-L3 locality trace under Linux strict.
func BenchmarkFig2e(b *testing.B) { benchFig(b, "fig2e") }

// Figure 3: ring-buffer-size sweep (§2.2).
func BenchmarkFig3(b *testing.B) { benchFig(b, "fig3") }

// Figure 3e: locality trace across ring sizes.
func BenchmarkFig3e(b *testing.B) { benchFig(b, "fig3e") }

// Figure 7: F&S vs strict vs off across flow counts (§4.1).
func BenchmarkFig7(b *testing.B) { benchFig(b, "fig7") }

// Figure 7e: locality trace under F&S.
func BenchmarkFig7e(b *testing.B) { benchFig(b, "fig7e") }

// Figure 8: F&S across ring sizes (§4.1).
func BenchmarkFig8(b *testing.B) { benchFig(b, "fig8") }

// Figure 8e: F&S locality trace across ring sizes.
func BenchmarkFig8e(b *testing.B) { benchFig(b, "fig8e") }

// Figure 9: RPC tail latency colocated with iperf (§4.1).
func BenchmarkFig9(b *testing.B) { benchFig(b, "fig9") }

// Figure 10: concurrent Rx/Tx interference (§4.1).
func BenchmarkFig10(b *testing.B) { benchFig(b, "fig10") }

// Figure 11a: Redis SET throughput vs value size (§4.2).
func BenchmarkFig11Redis(b *testing.B) { benchFig(b, "fig11a") }

// Figure 11b: Nginx throughput vs page size (§4.2).
func BenchmarkFig11Nginx(b *testing.B) { benchFig(b, "fig11b") }

// Figure 11c: SPDK read throughput vs block size (§4.2).
func BenchmarkFig11SPDK(b *testing.B) { benchFig(b, "fig11c") }

// Figure 12: per-idea ablation on Redis 8KB values (§4.3).
func BenchmarkFig12(b *testing.B) { benchFig(b, "fig12") }

// §2.2 analytic model validation and (l0, lm) re-fit.
func BenchmarkModel(b *testing.B) { benchFig(b, "model") }

// Extension: all eight protection modes side by side.
func BenchmarkAllModes(b *testing.B) { benchFig(b, "modes") }

// Extension: descriptor-size generality study (§3).
func BenchmarkDescriptorSizes(b *testing.B) { benchFig(b, "descsize") }

// Extension: PTcache-L3 size sensitivity (footnote 3).
func BenchmarkPTCacheSizes(b *testing.B) { benchFig(b, "ptcache") }

// Extension: F&S + hugepages (§5 future work).
func BenchmarkHugepages(b *testing.B) { benchFig(b, "huge") }

// Extension: memory-latency sensitivity (§2.2 contention).
func BenchmarkMemoryLatency(b *testing.B) { benchFig(b, "memlat") }

// Extension: memory-bandwidth antagonist (§2.2 contention, emergent).
func BenchmarkMemoryHog(b *testing.B) { benchFig(b, "memhog") }

// Extension: co-tenant storage device sharing the IOMMU.
func BenchmarkStorage(b *testing.B) { benchFig(b, "storage") }

// Extension: protection CPU cost per GB (cf. [39, 42]).
func BenchmarkCPUCost(b *testing.B) { benchFig(b, "cpucost") }

// Extension: seed variance.
func BenchmarkSeeds(b *testing.B) { benchFig(b, "seeds") }
