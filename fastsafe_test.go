package fastsafe

import (
	"context"
	"errors"
	"testing"
)

func TestSimulateDefaults(t *testing.T) {
	r, err := Simulate(Options{Mode: FNS, MeasureMS: 10, WarmupMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != FNS {
		t.Fatalf("Mode = %q", r.Mode)
	}
	if r.RxGbps < 90 {
		t.Fatalf("RxGbps = %.1f", r.RxGbps)
	}
	if r.IOTLBMissesPerPage < 1 {
		t.Fatalf("IOTLB/page = %.2f, want >= 1 (strict safety floor)", r.IOTLBMissesPerPage)
	}
	if r.StaleIOTLBUses != 0 || r.StalePTUses != 0 {
		t.Fatal("stale uses nonzero")
	}
}

func TestSimulateEmptyModeDefaultsToStrict(t *testing.T) {
	r, err := Simulate(Options{MeasureMS: 5, WarmupMS: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != Strict {
		t.Fatalf("default mode = %q, want strict", r.Mode)
	}
}

func TestSimulateRejectsJunkMode(t *testing.T) {
	if _, err := Simulate(Options{Mode: "bogus"}); err == nil {
		t.Fatal("junk mode accepted")
	}
}

func TestCompareOrdering(t *testing.T) {
	rs, err := Compare(Options{MeasureMS: 10, WarmupMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("reports = %d", len(rs))
	}
	off, strict, fns := rs[0], rs[1], rs[2]
	if !(off.RxGbps >= strict.RxGbps && fns.RxGbps > strict.RxGbps) {
		t.Fatalf("ordering broken: off=%.1f strict=%.1f fns=%.1f",
			off.RxGbps, strict.RxGbps, fns.RxGbps)
	}
	if fns.PTcacheL1PerPage != 0 || fns.PTcacheL2PerPage != 0 {
		t.Fatal("FNS PTcache-L1/L2 misses nonzero")
	}
}

// TestSweepParallelMatchesSequential runs all 8 modes concurrently and
// asserts each Report is identical to its sequentially-computed baseline:
// the simulations are deterministic and self-contained, so parallelism
// must not change a single field. Run under -race this is also the
// shared-mutable-state audit for everything host.New touches.
func TestSweepParallelMatchesSequential(t *testing.T) {
	base := Options{MeasureMS: 5, WarmupMS: 3, Seed: 1}
	modes := Modes()
	vary := func(i int) Options {
		v := base
		v.Mode = modes[i]
		return v
	}
	want := make([]Report, len(modes))
	for i := range modes {
		r, err := Simulate(vary(i))
		if err != nil {
			t.Fatalf("sequential %s: %v", modes[i], err)
		}
		want[i] = r
	}
	got, err := SweepContext(context.Background(), len(modes), base, vary, len(modes))
	if err != nil {
		t.Fatal(err)
	}
	for i := range modes {
		if got[i] != want[i] {
			t.Fatalf("mode %s: parallel report diverges from sequential:\n got %+v\nwant %+v",
				modes[i], got[i], want[i])
		}
	}
}

func TestSweepPropagatesJobError(t *testing.T) {
	base := Options{MeasureMS: 3, WarmupMS: 2}
	_, err := Sweep(base, func(i int) Options {
		v := base
		if i == 1 {
			v.Mode = "bogus"
		}
		return v
	}, 3)
	if err == nil {
		t.Fatal("bad job did not fail the sweep")
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SweepContext(ctx, 1, Options{MeasureMS: 3, WarmupMS: 2}, nil, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestModesComplete(t *testing.T) {
	ms := Modes()
	if len(ms) != 8 {
		t.Fatalf("Modes() = %v", ms)
	}
	for _, m := range ms {
		if _, err := Simulate(Options{Mode: m, MeasureMS: 3, WarmupMS: 2}); err != nil {
			t.Fatalf("mode %q failed: %v", m, err)
		}
	}
}
