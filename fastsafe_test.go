package fastsafe

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestSimulateDefaults(t *testing.T) {
	r, err := Simulate(Options{Mode: FNS, MeasureMS: 10, WarmupMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != FNS {
		t.Fatalf("Mode = %q", r.Mode)
	}
	if r.RxGbps < 90 {
		t.Fatalf("RxGbps = %.1f", r.RxGbps)
	}
	if r.IOTLBMissesPerPage < 1 {
		t.Fatalf("IOTLB/page = %.2f, want >= 1 (strict safety floor)", r.IOTLBMissesPerPage)
	}
	if r.StaleIOTLBUses != 0 || r.StalePTUses != 0 {
		t.Fatal("stale uses nonzero")
	}
}

func TestSimulateEmptyModeDefaultsToStrict(t *testing.T) {
	r, err := Simulate(Options{MeasureMS: 5, WarmupMS: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != Strict {
		t.Fatalf("default mode = %q, want strict", r.Mode)
	}
}

func TestSimulateRejectsJunkMode(t *testing.T) {
	if _, err := Simulate(Options{Mode: "bogus"}); err == nil {
		t.Fatal("junk mode accepted")
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string // substring the error must carry
	}{
		{"negative flows", Options{Flows: -1}, "Flows"},
		{"negative tx flows", Options{TxFlows: -3}, "TxFlows"},
		{"negative cores", Options{Cores: -2}, "Cores"},
		{"negative ring", Options{RingPackets: -256}, "RingPackets"},
		{"negative mtu", Options{MTU: -1}, "MTU"},
		{"tiny mtu", Options{MTU: 32}, "at least 64"},
		{"negative seed", Options{Seed: -7}, "Seed"},
		{"negative hog", Options{MemHogGBps: -1.5}, "MemHogGBps"},
		{"negative warmup", Options{WarmupMS: -10}, "WarmupMS"},
		{"negative measure", Options{MeasureMS: -10}, "MeasureMS"},
		{"junk device kind", Options{Devices: []DeviceOptions{{Kind: "gpu"}}}, "Devices[0].Kind"},
		{"negative device rate", Options{Devices: []DeviceOptions{{Kind: "storage", RateGBps: -4}}}, "Devices[0].RateGBps"},
		{"junk device mode", Options{Devices: []DeviceOptions{{Mode: "bogus"}}}, "Devices[0]"},
		{"zero serve conns", Options{Serve: &ServeOptions{Conns: 0, Churn: 0.2}}, "Serve.Conns must be >= 1, got 0"},
		{"negative serve conns", Options{Serve: &ServeOptions{Conns: -8, Churn: 0.2}}, "Serve.Conns must be >= 1, got -8"},
		{"zero churn", Options{Serve: &ServeOptions{Conns: 8, Churn: 0}}, "Serve.Churn must be in (0, 1], got 0"},
		{"negative churn", Options{Serve: &ServeOptions{Conns: 8, Churn: -0.3}}, "Serve.Churn must be in (0, 1], got -0.3"},
		{"over-unity churn", Options{Serve: &ServeOptions{Conns: 8, Churn: 1.5}}, "Serve.Churn must be in (0, 1], got 1.5"},
		{"negative cohort", Options{Serve: &ServeOptions{Conns: 8, Churn: 0.2, Cohort: -2}}, "Serve.Cohort must be >= 0, got -2"},
		{"cohort above conns", Options{Serve: &ServeOptions{Conns: 8, Churn: 0.2, Cohort: 9}}, "Serve.Cohort must be <= Serve.Conns"},
		{"junk control kind", Options{Control: "governor,metric=mem.util"}, `unknown rule kind "governor"`},
		{"control missing metric", Options{Control: "guard,high=1,low=0,safe=strict,fast=fns"}, "metric must not be empty"},
		{"control junk mode", Options{Control: "guard,metric=x,high=1,low=0,safe=turbo,fast=fns"}, `safe="turbo"`},
		{"control inverted thresholds", Options{Control: "guard,metric=x,high=1,low=5,safe=strict,fast=fns"}, "high threshold 1 below low 5"},
		{"control unswitchable pair", Options{Control: "guard,metric=x,high=1,low=0,safe=strict,fast=persistent"}, "persistent"},
		{"control junk cooldown", Options{Control: "guard,metric=x,high=1,low=0,safe=strict,fast=fns,cooldown=soon"}, `cooldown="soon"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Simulate(c.o)
			if err == nil {
				t.Fatalf("%+v accepted", c.o)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name the bad field (want %q)", err, c.want)
			}
			if !strings.HasPrefix(err.Error(), "fastsafe:") {
				t.Fatalf("error %q not namespaced", err)
			}
		})
	}
}

func TestSimulateWithDevices(t *testing.T) {
	r, err := Simulate(Options{
		Mode:      FNS,
		WarmupMS:  2,
		MeasureMS: 6,
		Devices: []DeviceOptions{
			{}, // default: storage, inherit mode, 8GB/s
			{Kind: "storage", Mode: Strict, RateGBps: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Devices) != 3 {
		t.Fatalf("Devices = %d rows, want 3 (NIC + 2 storage)", len(r.Devices))
	}
	if r.Devices[0].Kind != "nic" || r.Devices[0].Mode != FNS {
		t.Fatalf("primary row = %+v", r.Devices[0])
	}
	if r.Devices[1].Mode != FNS {
		t.Fatalf("inherited device mode = %q, want fns", r.Devices[1].Mode)
	}
	if r.Devices[2].Mode != Strict {
		t.Fatalf("explicit device mode = %q, want strict", r.Devices[2].Mode)
	}
	for _, d := range r.Devices {
		if d.GoodputGbps <= 0 {
			t.Fatalf("device %s moved no bytes: %+v", d.Name, d)
		}
	}
}

func TestSimulateServing(t *testing.T) {
	r, err := Simulate(Options{
		Mode:      FNS,
		WarmupMS:  1,
		MeasureMS: 2,
		Audit:     true,
		Serve:     &ServeOptions{Conns: 24, Churn: 0.3, Cohort: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ServeCompleted == 0 || r.ServeDeaths == 0 {
		t.Fatalf("vacuous serving window: %+v", r)
	}
	if r.ServeGbps <= 0 {
		t.Fatalf("serving goodput = %g", r.ServeGbps)
	}
	if r.ServeLatency.Count == 0 || r.ServeLatency.P99us <= 0 {
		t.Fatalf("serving latency report = %+v", r.ServeLatency)
	}
	if r.Safety == nil || r.Safety.Violations() != 0 {
		t.Fatalf("serving safety = %+v", r.Safety)
	}
	// Cohort 0 defaults to the exact per-flow model and must reproduce
	// Cohort 1 exactly.
	zero, err := Simulate(Options{
		Mode: FNS, WarmupMS: 1, MeasureMS: 2, Audit: true,
		Serve: &ServeOptions{Conns: 24, Churn: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Simulate(Options{
		Mode: FNS, WarmupMS: 1, MeasureMS: 2, Audit: true,
		Serve: &ServeOptions{Conns: 24, Churn: 0.3, Cohort: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if zero.ServeCompleted != one.ServeCompleted || zero.ServeGbps != one.ServeGbps ||
		zero.ServeLatency != one.ServeLatency {
		t.Fatalf("Cohort 0 diverged from Cohort 1:\n%+v\n%+v", zero, one)
	}
}

func TestCompareOrdering(t *testing.T) {
	rs, err := Compare(Options{MeasureMS: 10, WarmupMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("reports = %d", len(rs))
	}
	off, strict, fns := rs[0], rs[1], rs[2]
	if !(off.RxGbps >= strict.RxGbps && fns.RxGbps > strict.RxGbps) {
		t.Fatalf("ordering broken: off=%.1f strict=%.1f fns=%.1f",
			off.RxGbps, strict.RxGbps, fns.RxGbps)
	}
	if fns.PTcacheL1PerPage != 0 || fns.PTcacheL2PerPage != 0 {
		t.Fatal("FNS PTcache-L1/L2 misses nonzero")
	}
}

// TestSweepParallelMatchesSequential runs all 8 modes concurrently and
// asserts each Report is identical to its sequentially-computed baseline:
// the simulations are deterministic and self-contained, so parallelism
// must not change a single field. Run under -race this is also the
// shared-mutable-state audit for everything host.New touches.
func TestSweepParallelMatchesSequential(t *testing.T) {
	base := Options{MeasureMS: 5, WarmupMS: 3, Seed: 1}
	modes := Modes()
	vary := func(i int) Options {
		v := base
		v.Mode = modes[i]
		return v
	}
	want := make([]Report, len(modes))
	for i := range modes {
		r, err := Simulate(vary(i))
		if err != nil {
			t.Fatalf("sequential %s: %v", modes[i], err)
		}
		want[i] = r
	}
	got, err := SweepContext(context.Background(), len(modes), base, vary, len(modes))
	if err != nil {
		t.Fatal(err)
	}
	for i := range modes {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("mode %s: parallel report diverges from sequential:\n got %+v\nwant %+v",
				modes[i], got[i], want[i])
		}
	}
}

func TestSweepPropagatesJobError(t *testing.T) {
	base := Options{MeasureMS: 3, WarmupMS: 2}
	_, err := Sweep(base, func(i int) Options {
		v := base
		if i == 1 {
			v.Mode = "bogus"
		}
		return v
	}, 3)
	if err == nil {
		t.Fatal("bad job did not fail the sweep")
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SweepContext(ctx, 1, Options{MeasureMS: 3, WarmupMS: 2}, nil, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestModesComplete(t *testing.T) {
	ms := Modes()
	if len(ms) != 8 {
		t.Fatalf("Modes() = %v", ms)
	}
	for _, m := range ms {
		if _, err := Simulate(Options{Mode: m, MeasureMS: 3, WarmupMS: 2}); err != nil {
			t.Fatalf("mode %q failed: %v", m, err)
		}
	}
}

func TestSimulateTimeline(t *testing.T) {
	base := Options{Mode: Strict, WarmupMS: 3, MeasureMS: 6}
	sampled := base
	sampled.SampleUS = 500
	sampled.MemHogGBps = 12
	sampled.MemHogStartMS = 6 // mid-measure

	r, err := Simulate(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) == 0 {
		t.Fatal("SampleUS set but Timeline empty")
	}
	for _, s := range r.Timeline {
		if len(s.TimesNS) != 12 { // 6ms window / 500us
			t.Fatalf("series %q has %d samples, want 12", s.Name, len(s.TimesNS))
		}
	}
	if r.RxDMALatency.Count == 0 || r.RxDMALatency.P50us <= 0 {
		t.Fatalf("RxDMALatency not populated: %+v", r.RxDMALatency)
	}
	if r.RxDMALatency.P99us < r.RxDMALatency.P50us {
		t.Fatal("latency quantiles not monotone")
	}

	// Sampling is observation-only: the unsampled run reports the same
	// simulation outcome.
	plain, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Simulate(Options{Mode: Strict, WarmupMS: 3, MeasureMS: 6, SampleUS: 500})
	if err != nil {
		t.Fatal(err)
	}
	ref.Timeline = nil
	plainCmp, refCmp := plain, ref
	if !reflect.DeepEqual(plainCmp, refCmp) {
		t.Fatalf("sampling changed the report:\nplain:   %+v\nsampled: %+v", plainCmp, refCmp)
	}
}

// TestSimulateControl drives the adaptive control plane end to end
// through the facade: a windowed burst of device misbehaviour under the
// audit layer must drop the domain from F&S to strict and recover after
// the window closes, with the decision log surfaced as ModeSwitches and
// zero stale-served DMAs across both transitions.
func TestSimulateControl(t *testing.T) {
	r, err := Simulate(Options{
		Mode: FNS, WarmupMS: 2, MeasureMS: 8, Audit: true,
		Faults:  "campaign=1,straydma=0.05,wilddma=0.03,start=4ms,for=3ms",
		Control: "guard,metric=audit.blocked,high=1,low=0,safe=strict,fast=fns,cooldown=1ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ModeSwitches) < 2 {
		t.Fatalf("ModeSwitches = %d, want >= 2: %+v", len(r.ModeSwitches), r.ModeSwitches)
	}
	first, last := r.ModeSwitches[0], r.ModeSwitches[len(r.ModeSwitches)-1]
	if first.From != FNS || first.To != Strict {
		t.Fatalf("first switch %+v, want fns->strict", first)
	}
	if last.From != Strict || last.To != FNS {
		t.Fatalf("last switch %+v, want strict->fns", last)
	}
	if first.AtNS < 4e6 || first.AtNS > 7e6 {
		t.Fatalf("fallback at %dns, want inside the 4-7ms burst", first.AtNS)
	}
	if last.AtNS < 7e6 {
		t.Fatalf("recovery at %dns, want after the burst closes at 7ms", last.AtNS)
	}
	for _, s := range r.ModeSwitches {
		if s.Device == "" || s.Rule != "guard" || s.Metric != "audit.blocked" {
			t.Fatalf("switch missing attribution: %+v", s)
		}
	}
	if r.StaleIOTLBUses != 0 || r.StalePTUses != 0 {
		t.Fatal("stale uses nonzero across mode switches")
	}
	if r.Safety == nil || r.Safety.Violations() != 0 {
		t.Fatalf("safety report %+v, want zero stale-served", r.Safety)
	}
}

func TestOptionsValidationTelemetry(t *testing.T) {
	if _, err := Simulate(Options{SampleUS: -1}); err == nil {
		t.Fatal("negative SampleUS accepted")
	}
	if _, err := Simulate(Options{MemHogStartMS: -1}); err == nil {
		t.Fatal("negative MemHogStartMS accepted")
	}
}

func TestSimulateClusterDegenerate(t *testing.T) {
	r, err := SimulateCluster(ClusterOptions{
		Hosts: 2,
		Host:  Options{Mode: FNS, WarmupMS: 1, MeasureMS: 3, Audit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != FNS || len(r.Hosts) != 2 {
		t.Fatalf("Mode=%q hosts=%d", r.Mode, len(r.Hosts))
	}
	if r.Hosts[0].RxGbps <= 1 || r.Hosts[1].TxGbps <= 1 {
		t.Fatalf("degenerate incast idle: rx=%v tx=%v", r.Hosts[0].RxGbps, r.Hosts[1].TxGbps)
	}
	if r.AggRxGbps != r.AggTxGbps {
		t.Fatalf("agg rx %v != agg tx %v", r.AggRxGbps, r.AggTxGbps)
	}
	if r.StaleServedDMAs != 0 {
		t.Fatalf("stale-served DMAs: %d", r.StaleServedDMAs)
	}
}

// TestSimulateClusterSharded: the facade's Shards knob reproduces the
// single-engine run for a balanced pattern — sharding picks where the
// simulation executes, never what it computes.
func TestSimulateClusterSharded(t *testing.T) {
	opts := func(shards int) ClusterOptions {
		return ClusterOptions{
			Hosts:   4,
			Traffic: "pairs",
			Shards:  shards,
			Host:    Options{Mode: FNS, WarmupMS: 1, MeasureMS: 2, Audit: true},
		}
	}
	base, err := SimulateCluster(opts(0))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := SimulateCluster(opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if sharded.AggRxGbps != base.AggRxGbps || sharded.AggTxGbps != base.AggTxGbps {
		t.Fatalf("sharded aggregates (%v, %v) != single-engine (%v, %v)",
			sharded.AggRxGbps, sharded.AggTxGbps, base.AggRxGbps, base.AggTxGbps)
	}
	if sharded.StaleServedDMAs != 0 {
		t.Fatalf("stale-served DMAs: %d", sharded.StaleServedDMAs)
	}
	for i := range sharded.Hosts {
		if sharded.Hosts[i].RxGbps != base.Hosts[i].RxGbps {
			t.Fatalf("host%d goodput %v != %v", i, sharded.Hosts[i].RxGbps, base.Hosts[i].RxGbps)
		}
	}
}

func TestSimulateClusterDefaultsToStrict(t *testing.T) {
	r, err := SimulateCluster(ClusterOptions{
		Hosts: 2,
		Host:  Options{WarmupMS: 1, MeasureMS: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != Strict {
		t.Fatalf("default cluster mode = %q, want strict", r.Mode)
	}
}

func TestClusterOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		o    ClusterOptions
		want string
	}{
		{"one host", ClusterOptions{Hosts: 1}, "Hosts"},
		{"bad traffic", ClusterOptions{Hosts: 4, Traffic: "mesh"}, "traffic pattern"},
		{"negative fabric", ClusterOptions{Hosts: 2, FabricGbps: -1}, "FabricGbps"},
		{"negative oversub", ClusterOptions{Hosts: 2, Oversub: -2}, "Oversub"},
		{"negative fpp", ClusterOptions{Hosts: 2, FlowsPerPair: -1}, "FlowsPerPair"},
		{"bad host mode", ClusterOptions{Hosts: 2, Host: Options{Mode: "bogus"}}, "bogus"},
		{"negative shards", ClusterOptions{Hosts: 2, Shards: -1}, "Shards"},
	}
	for _, c := range cases {
		if _, err := SimulateCluster(c.o); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}
