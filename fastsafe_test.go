package fastsafe

import "testing"

func TestSimulateDefaults(t *testing.T) {
	r, err := Simulate(Options{Mode: FNS, MeasureMS: 10, WarmupMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != FNS {
		t.Fatalf("Mode = %q", r.Mode)
	}
	if r.RxGbps < 90 {
		t.Fatalf("RxGbps = %.1f", r.RxGbps)
	}
	if r.IOTLBMissesPerPage < 1 {
		t.Fatalf("IOTLB/page = %.2f, want >= 1 (strict safety floor)", r.IOTLBMissesPerPage)
	}
	if r.StaleIOTLBUses != 0 || r.StalePTUses != 0 {
		t.Fatal("stale uses nonzero")
	}
}

func TestSimulateEmptyModeDefaultsToStrict(t *testing.T) {
	r, err := Simulate(Options{MeasureMS: 5, WarmupMS: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != Strict {
		t.Fatalf("default mode = %q, want strict", r.Mode)
	}
}

func TestSimulateRejectsJunkMode(t *testing.T) {
	if _, err := Simulate(Options{Mode: "bogus"}); err == nil {
		t.Fatal("junk mode accepted")
	}
}

func TestCompareOrdering(t *testing.T) {
	rs, err := Compare(Options{MeasureMS: 10, WarmupMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("reports = %d", len(rs))
	}
	off, strict, fns := rs[0], rs[1], rs[2]
	if !(off.RxGbps >= strict.RxGbps && fns.RxGbps > strict.RxGbps) {
		t.Fatalf("ordering broken: off=%.1f strict=%.1f fns=%.1f",
			off.RxGbps, strict.RxGbps, fns.RxGbps)
	}
	if fns.PTcacheL1PerPage != 0 || fns.PTcacheL2PerPage != 0 {
		t.Fatal("FNS PTcache-L1/L2 misses nonzero")
	}
}

func TestModesComplete(t *testing.T) {
	ms := Modes()
	if len(ms) != 8 {
		t.Fatalf("Modes() = %v", ms)
	}
	for _, m := range ms {
		if _, err := Simulate(Options{Mode: m, MeasureMS: 3, WarmupMS: 2}); err != nil {
			t.Fatalf("mode %q failed: %v", m, err)
		}
	}
}
