// Command fstrace exports raw simulation traces as CSV for plotting —
// the per-allocation PTcache-L3 reuse distances behind Figures 2e/3e/7e/8e
// and the RPC latency distribution behind Figure 9.
//
// Examples:
//
//	fstrace -kind locality -mode strict -flows 40 > locality.csv
//	fstrace -kind latency -mode fns -rpc 4096 > latency.csv
//	fstrace -kind locality -seed 7 > locality-seed7.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"fastsafe/internal/core"
	"fastsafe/internal/host"
	"fastsafe/internal/sim"
)

const csvDoc = `
Output columns:

  -kind locality
    alloc_index        sequential IOVA-allocation number within the window
    l3_stack_distance  LRU stack distance of the PTcache-L3 slot reused by
                       this allocation; -1 marks a cold (first-touch) access

  -kind latency
    quantile           cumulative probability (0.01 .. 0.9999)
    latency_us         request/response exchange latency at that quantile,
                       microseconds
`

func main() {
	kind := flag.String("kind", "locality", "trace kind: locality | latency")
	mode := flag.String("mode", "strict", "protection mode")
	flows := flag.Int("flows", 5, "bulk Rx flows")
	ring := flag.Int("ring", 256, "ring size in packets")
	rpc := flag.Int("rpc", 4096, "RPC size for latency traces")
	ms := flag.Int("ms", 40, "measurement window, milliseconds")
	limit := flag.Int("limit", 100000, "max locality trace points")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), csvDoc)
	}
	flag.Parse()

	m, err := core.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch *kind {
	case "locality":
		h, err := host.New(host.Config{
			Mode: m, RxFlows: *flows, RingPackets: *ring, Seed: *seed,
			Telemetry: host.TelemetryConfig{TraceL3: true, TraceLimit: *limit},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		h.Run(10*sim.Millisecond, sim.Duration(*ms)*sim.Millisecond)
		fmt.Println("alloc_index,l3_stack_distance")
		for i, d := range h.Telemetry().ReuseTrace().Dists {
			fmt.Printf("%d,%d\n", i, d)
		}

	case "latency":
		h, err := host.New(host.Config{Mode: m, RxFlows: *flows, RingPackets: *ring, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		h.InstallMessages(host.MsgConfig{
			Pattern: host.LocalServes, Streams: 1, Depth: 1,
			ReqBytes: *rpc, RespBytes: *rpc,
			AppCPU: 2 * sim.Microsecond, Cores: 1, CoreBase: 5,
		})
		h.Run(10*sim.Millisecond, sim.Duration(*ms)*sim.Millisecond)
		// The registry adopted the workload's own histogram when messages
		// were installed, so reading it back through the telemetry layer
		// reproduces the pre-refactor quantiles exactly.
		lat := h.Telemetry().Histogram("rpc.latency_ns")
		fmt.Println("quantile,latency_us")
		for _, q := range []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90,
			0.95, 0.99, 0.995, 0.999, 0.9999} {
			fmt.Printf("%g,%.2f\n", q, float64(lat.Quantile(q))/1000)
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown -kind %q\n", *kind)
		os.Exit(2)
	}
}
