// Command fssim runs ad-hoc host simulations and prints their measured
// results, for exploring configurations outside the paper's sweeps.
//
// Example:
//
//	fssim -mode fns -flows 20 -ring 512 -mtu 4096 -cores 5 -ms 40
//	fssim -mode strict -seeds 8 -parallel 4   # seed study, 4 workers
//	fssim -mode strict -storage 2 -storagedevs 4   # 4 co-tenant devices
//	fssim -mode fns -nics 1 -devmode strict   # second NIC, strict domain
//	fssim -mode strict -memhog 12 -timeline   # per-interval series as CSV
//	fssim -mode fns -faults 1 -faultseed 7    # canonical fault campaign
//	fssim -hosts 8 -mode fns -traffic incast  # 8-host cluster, 7:1 incast
//	fssim -hosts 4 -traffic alltoall -oversub 2   # oversubscribed core
//	fssim -hosts 64 -shards 4 -traffic pairs  # conservative-parallel engine
//	fssim -hosts 8 -traffic pairs -rdma write -atsentries 1024   # one-sided
//	fssim -mode fns -serve -churn 0.3 -conns 48      # serving-fleet churn
//	fssim -mode strict -serve -churn 0.5 -cohort 8 -audit   # aggregated cohorts
//
// -serve replaces the bulk iperf flows with the serving-fleet churn
// scenario: -conns open-loop connections with Poisson arrivals and
// bounded-Pareto request/response sizes, each dying with probability
// -churn per request and reborn with a fresh DMA buffer (so map/unmap
// and IOVA alloc/free rates scale with churn). -cohort K aggregates K
// connections per simulated flow-aggregate — counters and goodput stay
// identical to the exact per-flow model; only latency attribution is
// shared. -flows still attaches bulk flows next to the fleet when set
// explicitly. The serving line (requests served, goodput, latency
// tails, deaths, expiries) prints after the host line.
//
// -shards N splits a cluster run across N engine shards executed with
// conservative parallel DES (results stay deterministic and independent
// of the shard count; wall-clock drops on multi-core machines for
// balanced traffic patterns).
//
// -hosts N (N >= 2) switches to cluster mode: N full hosts — each with
// its own IOMMU, page tables, cores and devices — exchange traffic over
// a switched fabric instead of the abstract remote peer. -traffic picks
// the pattern (incast: everyone sends to host 0; alltoall; pairs),
// -flowsperpair scales the flow count, -fabricgbps and -oversub shape
// the fabric. Output is the aggregate line plus one indented line per
// host; -audit prints each host's safety tally.
//
// -rdma picks the cluster peer-flow verb: the default sendrecv posts
// receives on the remote CPU, while read and write are one-sided — the
// initiator's NIC addresses a registered window on the peer directly and
// the peer's cores never touch the data path. -atsentries N gives every
// device an N-entry translation cache (PCIe ATS): translations hit the
// device TLB, unmaps send ATC-invalidate messages, and the per-device
// breakdown reports hit rate, invalidations and (for unsafe modes) stale
// translations served.
//
// -faults enables deterministic fault injection and the translation
// auditor: a bare number is a canonical-campaign intensity, otherwise a
// comma-separated key=value spec like "invdrop=0.02,linkflap=3ms" (see
// internal/fault). The safety tally prints after the result line; -audit
// runs the auditor alone on a fault-free simulation.
//
// -timeline samples the telemetry series every -sampleus microseconds of
// virtual time and, after the result line, prints them as wide CSV (one
// row per sampling instant, one column per series) for plotting.
//
// With -seeds N > 1 the same configuration is run under N consecutive
// seeds (starting at -seed), fanned across -parallel workers; results
// print in seed order.
//
// Co-tenant DMA devices share the host's IOMMU with the primary NIC,
// each in its own protection domain: -storagedevs attaches that many
// storage controllers reading at -storage GB/s apiece, -nics attaches
// extra full network datapaths, and -devmode overrides their protection
// mode (default: the host's -mode). When devices are attached the
// per-device breakdown prints after the host line.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"fastsafe/internal/fabric"
	"fastsafe/internal/fault"
	"fastsafe/internal/host"
	"fastsafe/internal/modespec"
	"fastsafe/internal/runner"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
	"fastsafe/internal/transport"
)

func main() {
	mode := flag.String("mode", "strict", "protection mode: off|strict|deferred|strict+preserve|strict+contig|fns|persistent|fns+huge|defer-noshootdown")
	flows := flag.Int("flows", 5, "bulk Rx flows")
	txflows := flag.Int("txflows", 0, "bulk Tx flows (each on its own extra core)")
	cores := flag.Int("cores", 5, "cores serving Rx flows")
	ring := flag.Int("ring", 256, "Rx ring size in packets per core")
	mtu := flag.Int("mtu", 4096, "MTU in bytes")
	descPages := flag.Int("desc", 64, "pages per Rx descriptor")
	ms := flag.Int("ms", 30, "measurement window, milliseconds")
	warmup := flag.Int("warmup", 10, "warmup window, milliseconds")
	seed := flag.Int64("seed", 1, "simulation seed (first seed with -seeds)")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to run")
	parallel := flag.Int("parallel", runtime.NumCPU(), "simulations to run concurrently")
	trace := flag.Bool("trace", false, "summarise the PTcache-L3 locality trace")
	timeline := flag.Bool("timeline", false, "sample per-interval series and print them as CSV")
	sampleus := flag.Int("sampleus", 500, "sampling interval for -timeline, microseconds")
	memhog := flag.Float64("memhog", 0, "co-tenant memory antagonist, GB/s")
	storage := flag.Float64("storage", 0, "co-tenant storage device read rate, GB/s each")
	storagedevs := flag.Int("storagedevs", 0, "co-tenant storage devices (default 1 when -storage is set)")
	nics := flag.Int("nics", 0, "extra co-tenant NIC datapaths")
	devmode := flag.String("devmode", "", "co-tenant device protection mode (default: -mode)")
	controlSpec := flag.String("control", "", "adaptive control plane: ';'-separated rules like \"guard,metric=audit.blocked,high=1,low=0,safe=strict,fast=fns,cooldown=2ms\" plus optional every=<dur>")
	faults := flag.String("faults", "", "fault plan: campaign intensity or key=value spec (implies -audit)")
	faultseed := flag.Int64("faultseed", 0, "fault-injector seed (0: inherit -seed)")
	audit := flag.Bool("audit", false, "cross-check every DMA translation against the live page table")
	hosts := flag.Int("hosts", 0, "cluster size: simulate N full hosts on a switched fabric (0: single host)")
	traffic := flag.String("traffic", "incast", "cluster traffic pattern: incast|alltoall|pairs")
	fabricgbps := flag.Float64("fabricgbps", 0, "fabric port line rate, Gbps (0: NIC line rate)")
	oversub := flag.Float64("oversub", 0, "fabric core oversubscription factor (0: non-blocking)")
	flowsperpair := flag.Int("flowsperpair", 1, "cluster flows per (src,dst) host pair")
	shards := flag.Int("shards", 1, "cluster engine shards for conservative-parallel execution (1: single engine)")
	rdma := flag.String("rdma", "", "cluster peer-flow verb: sendrecv|read|write (default sendrecv; read/write are one-sided)")
	atsentries := flag.String("atsentries", "", "device-TLB (ATS cache) entries per device; 0 or empty disables the device cache")
	serve := flag.Bool("serve", false, "run the serving-fleet churn scenario instead of bulk flows")
	churn := flag.String("churn", "0.2", "serving-fleet per-request connection death probability, in (0, 1]")
	conns := flag.String("conns", "48", "serving-fleet connection count")
	cohortSize := flag.String("cohort", "1", "connections per aggregated flow cohort (1: exact per-flow model)")
	flag.Parse()

	m, err := modespec.Host(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fssim:", err)
		os.Exit(2)
	}
	op, err := modespec.RDMA(*rdma)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fssim:", err)
		os.Exit(2)
	}
	if op.OneSided() && *hosts == 0 {
		fmt.Fprintln(os.Stderr, "fssim: -rdma needs cluster mode (-hosts >= 2): one-sided verbs run between full hosts")
		os.Exit(2)
	}
	ats, err := modespec.ATSEntries(*atsentries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fssim:", err)
		os.Exit(2)
	}
	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "fssim: -seeds must be >= 1")
		os.Exit(2)
	}
	var plan fault.Plan
	if *faults != "" {
		if plan, err = fault.Parse(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "fssim:", err)
			os.Exit(2)
		}
	}
	ctl, err := modespec.Control(*controlSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fssim:", err)
		os.Exit(2)
	}

	devMode, err := modespec.Device(*devmode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fssim:", err)
		os.Exit(2)
	}
	nStorage := *storagedevs
	if nStorage == 0 && *storage > 0 {
		nStorage = 1
	}
	if nStorage > 0 && *storage <= 0 {
		fmt.Fprintln(os.Stderr, "fssim: -storagedevs needs a positive -storage rate")
		os.Exit(2)
	}
	var topo host.Topology
	for i := 0; i < nStorage; i++ {
		topo.Storage = append(topo.Storage, host.StorageSpec{ReadGBps: *storage, Mode: devMode})
	}
	for i := 0; i < *nics; i++ {
		topo.NICs = append(topo.NICs, host.NICSpec{Mode: devMode})
	}
	multidev := nStorage+*nics > 0

	var serveCfg *host.ServeConfig
	if *serve {
		ch, err := modespec.Churn(*churn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fssim:", err)
			os.Exit(2)
		}
		nc, err := modespec.Conns(*conns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fssim:", err)
			os.Exit(2)
		}
		k, err := modespec.CohortSize(*cohortSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fssim:", err)
			os.Exit(2)
		}
		serveCfg = &host.ServeConfig{Conns: nc, Churn: ch, Cohort: k}
		// The fleet is the workload: drop the default bulk flows unless
		// the user asked for them explicitly.
		flowsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "flows" {
				flowsSet = true
			}
		})
		if !flowsSet {
			*flows = -1
		}
	} else {
		for name, val := range map[string]string{"churn": *churn, "conns": *conns, "cohort": *cohortSize} {
			set := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == name {
					set = true
				}
			})
			if set {
				fmt.Fprintf(os.Stderr, "fssim: -%s %s needs -serve (the serving-fleet churn scenario)\n", name, val)
				os.Exit(2)
			}
		}
	}

	var sampleEvery sim.Duration
	if *timeline {
		if *sampleus <= 0 {
			fmt.Fprintln(os.Stderr, "fssim: -sampleus must be positive")
			os.Exit(2)
		}
		sampleEvery = sim.Duration(*sampleus) * sim.Microsecond
	}

	hostCfg := func(s int64) host.Config {
		return host.Config{
			Mode:            m,
			Cores:           *cores,
			RxFlows:         *flows,
			TxFlows:         *txflows,
			RingPackets:     *ring,
			MTU:             *mtu,
			DescriptorPages: *descPages,
			Seed:            s,
			MemHogGBps:      *memhog,
			Topology:        topo,
			Serve:           serveCfg,
			Control:         ctl,
			Faults:          plan,
			FaultSeed:       *faultseed,
			Audit:           *audit,
			ATSEntries:      ats,
			Telemetry: host.TelemetryConfig{
				SampleEvery: sampleEvery,
				TraceL3:     *trace,
				TraceLimit:  200000,
			},
		}
	}

	if *hosts > 0 {
		runCluster(*hosts, *traffic, *flowsperpair, *fabricgbps, *oversub, *shards, op,
			hostCfg, *seed, *seeds, *parallel,
			sim.Duration(*warmup)*sim.Millisecond, sim.Duration(*ms)*sim.Millisecond)
		return
	}

	runSeed := func(s int64) (host.Results, error) {
		h, err := host.New(hostCfg(s))
		if err != nil {
			return host.Results{}, err
		}
		return h.Run(sim.Duration(*warmup)*sim.Millisecond, sim.Duration(*ms)*sim.Millisecond), nil
	}

	jobs := make([]runner.Job[host.Results], *seeds)
	for i := 0; i < *seeds; i++ {
		s := *seed + int64(i)
		jobs[i] = func(context.Context) (host.Results, error) { return runSeed(s) }
	}
	results, err := runner.Collect(context.Background(), runner.Config{Workers: *parallel}, jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for i, r := range results {
		if *seeds > 1 {
			fmt.Printf("seed %d:\n", *seed+int64(i))
		}
		fmt.Println(r)
		fmt.Printf("per-core CPU utilisation: ")
		for _, u := range r.CPUUtil {
			fmt.Printf("%3.0f%% ", u*100)
		}
		fmt.Println()
		if r.ServeLatency != nil {
			printServing("serving", r)
		}
		if r.Safety != nil {
			fmt.Printf("safety: %s (%d faults injected)\n", r.Safety, r.FaultsInjected)
		}
		if len(r.Control) > 0 {
			fmt.Printf("control: %d mode switches\n", len(r.Control))
			for _, d := range r.Control {
				fmt.Printf("  %s\n", d)
			}
		}
		if multidev {
			fmt.Println(r.DeviceTable())
		}
		if r.Trace != nil {
			fmt.Printf("L3 locality: %d allocs, frac>=32 %.3f, frac>=64 %.3f, frac>=128 %.3f\n",
				len(r.Trace.Dists), r.Trace.FractionAbove(32), r.Trace.FractionAbove(64), r.Trace.FractionAbove(128))
		}
		if len(r.Timeline) > 0 {
			printTimeline(r.Timeline)
		}
	}
}

// runCluster simulates N full hosts on a switched fabric and prints the
// aggregate plus per-host results (and per-host safety when auditing).
func runCluster(hosts int, traffic string, flowsPerPair int, fabricGbps, oversub float64,
	shards int, op transport.Op, hostCfg func(int64) host.Config, seed int64, seeds, parallel int,
	warmup, measure sim.Duration) {
	tp, err := host.ParseTraffic(traffic)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fssim:", err)
		os.Exit(2)
	}
	runSeed := func(s int64) (host.ClusterResults, error) {
		c, err := host.NewCluster(host.ClusterConfig{
			Hosts:        hosts,
			Traffic:      tp,
			FlowsPerPair: flowsPerPair,
			Shards:       shards,
			Op:           op,
			Host:         hostCfg(s),
			Fabric:       fabric.Config{PortGbps: fabricGbps, Oversub: oversub},
		})
		if err != nil {
			return host.ClusterResults{}, err
		}
		return c.Run(warmup, measure), nil
	}
	jobs := make([]runner.Job[host.ClusterResults], seeds)
	for i := 0; i < seeds; i++ {
		s := seed + int64(i)
		jobs[i] = func(context.Context) (host.ClusterResults, error) { return runSeed(s) }
	}
	results, err := runner.Collect(context.Background(), runner.Config{Workers: parallel}, jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, r := range results {
		if seeds > 1 {
			fmt.Printf("seed %d:\n", seed+int64(i))
		}
		fmt.Println(r)
		for j, hr := range r.Hosts {
			if hr.ServeLatency != nil {
				printServing(fmt.Sprintf("host%d serving", j), hr)
			}
			if hr.Safety != nil {
				fmt.Printf("host%d safety: %s\n", j, hr.Safety)
			}
		}
	}
}

// printServing renders one host's serving-fleet line: completions,
// goodput, latency tails and churn accounting.
func printServing(label string, r host.Results) {
	us := func(q float64) float64 { return float64(r.ServeLatency.Quantile(q)) / 1e3 }
	fmt.Printf("%s: served=%d goodput=%.1fGbps p50=%.1fus p99=%.1fus p999=%.1fus deaths=%d expired=%d\n",
		label, r.ServeCompleted, r.ServeGbps, us(0.50), us(0.99), us(0.999), r.ServeDeaths, r.ServeExpired)
}

// printTimeline renders the sampled series as wide CSV: one row per
// sampling instant, one column per series (they share the sampler's
// clock, so the times line up by construction).
func printTimeline(series []stats.Series) {
	fmt.Print("t_us")
	for _, s := range series {
		fmt.Printf(",%s", s.Name)
	}
	fmt.Println()
	for i := range series[0].Times {
		fmt.Printf("%.0f", float64(series[0].Times[i])/1e3)
		for _, s := range series {
			fmt.Printf(",%g", s.Values[i])
		}
		fmt.Println()
	}
}
