// Command fssim runs one ad-hoc host simulation and prints its measured
// results, for exploring configurations outside the paper's sweeps.
//
// Example:
//
//	fssim -mode fns -flows 20 -ring 512 -mtu 4096 -cores 5 -ms 40
package main

import (
	"flag"
	"fmt"
	"os"

	"fastsafe/internal/core"
	"fastsafe/internal/host"
	"fastsafe/internal/sim"
)

func main() {
	mode := flag.String("mode", "strict", "protection mode: off|strict|deferred|strict+preserve|strict+contig|fns|persistent")
	flows := flag.Int("flows", 5, "bulk Rx flows")
	txflows := flag.Int("txflows", 0, "bulk Tx flows (each on its own extra core)")
	cores := flag.Int("cores", 5, "cores serving Rx flows")
	ring := flag.Int("ring", 256, "Rx ring size in packets per core")
	mtu := flag.Int("mtu", 4096, "MTU in bytes")
	descPages := flag.Int("desc", 64, "pages per Rx descriptor")
	ms := flag.Int("ms", 30, "measurement window, milliseconds")
	warmup := flag.Int("warmup", 10, "warmup window, milliseconds")
	seed := flag.Int64("seed", 1, "simulation seed")
	trace := flag.Bool("trace", false, "summarise the PTcache-L3 locality trace")
	memhog := flag.Float64("memhog", 0, "co-tenant memory antagonist, GB/s")
	storage := flag.Float64("storage", 0, "co-tenant storage device read rate, GB/s")
	flag.Parse()

	m, err := core.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h, err := host.New(host.Config{
		Mode:            m,
		Cores:           *cores,
		RxFlows:         *flows,
		TxFlows:         *txflows,
		RingPackets:     *ring,
		MTU:             *mtu,
		DescriptorPages: *descPages,
		Seed:            *seed,
		MemHogGBps:      *memhog,
		TraceL3:         *trace,
		TraceLimit:      200000,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *storage > 0 {
		h.InstallStorage(host.StorageConfig{ReadGBps: *storage})
	}
	r := h.Run(sim.Duration(*warmup)*sim.Millisecond, sim.Duration(*ms)*sim.Millisecond)
	fmt.Println(r)
	fmt.Printf("per-core CPU utilisation: ")
	for _, u := range r.CPUUtil {
		fmt.Printf("%3.0f%% ", u*100)
	}
	fmt.Println()
	if r.Trace != nil {
		fmt.Printf("L3 locality: %d allocs, frac>=32 %.3f, frac>=64 %.3f, frac>=128 %.3f\n",
			len(r.Trace.Dists), r.Trace.FractionAbove(32), r.Trace.FractionAbove(64), r.Trace.FractionAbove(128))
	}
}
