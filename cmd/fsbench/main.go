// Command fsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fsbench -list            # list available figure ids
//	fsbench -fig fig7        # regenerate one figure
//	fsbench -fig all         # regenerate everything (a few minutes)
//	fsbench -fig fig2 -quick # shorter windows, noisier numbers
//	fsbench -fig all -parallel 4   # bound the worker pool
//	fsbench -fig multidev -quick -json > BENCH_multidevice.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"fastsafe/internal/experiments"
	"fastsafe/internal/runner"
)

func main() {
	fig := flag.String("fig", "all", "figure id to regenerate, or 'all'")
	quick := flag.Bool("quick", false, "use short measurement windows")
	list := flag.Bool("list", false, "list available figure ids")
	parallel := flag.Int("parallel", runtime.NumCPU(), "simulations to run concurrently")
	flag.IntVar(parallel, "j", runtime.NumCPU(), "alias for -parallel")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit JSON instead of aligned tables (for CI artifacts)")
	progress := flag.Bool("progress", true, "report per-figure progress on stderr (with -fig all)")
	flag.Parse()

	render := func(t experiments.Table) string {
		switch {
		case *jsonOut:
			return t.JSON()
		case *csv:
			return fmt.Sprintf("# %s: %s\n%s", t.ID, t.Title, t.CSV())
		}
		return t.String()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Parallel = *parallel

	if *fig == "all" {
		// Each figure is an independent deterministic computation; fan the
		// figures themselves across the pool (each additionally fans out
		// its own simulation cells) and print in presentation order.
		ids := experiments.IDs()
		jobs := make([]runner.Job[experiments.Table], len(ids))
		for i, id := range ids {
			id := id
			jobs[i] = func(context.Context) (experiments.Table, error) {
				return experiments.ByID(id, opts)
			}
		}
		cfg := runner.Config{Workers: *parallel}
		if *progress {
			cfg.OnProgress = func(p runner.Progress) {
				fmt.Fprintf(os.Stderr, "fsbench: %s done (%d/%d)\n", ids[p.Index], p.Done, p.Total)
			}
		}
		tables := runner.All(context.Background(), cfg, jobs)
		for i, r := range tables {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "fsbench: %s: %v\n", ids[i], r.Err)
				os.Exit(1)
			}
			fmt.Println(render(r.Value))
		}
		return
	}
	t, err := experiments.ByID(*fig, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(render(t))
}
