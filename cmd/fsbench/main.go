// Command fsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fsbench -list            # list available figure ids
//	fsbench -fig fig7        # regenerate one figure
//	fsbench -fig all         # regenerate everything (a few minutes)
//	fsbench -fig fig2 -quick # shorter windows, noisier numbers
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"fastsafe/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure id to regenerate, or 'all'")
	quick := flag.Bool("quick", false, "use short measurement windows")
	list := flag.Bool("list", false, "list available figure ids")
	jobs := flag.Int("j", runtime.NumCPU(), "figures to regenerate concurrently (with -fig all)")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	flag.Parse()

	render := func(t experiments.Table) string {
		if *csv {
			return fmt.Sprintf("# %s: %s\n%s", t.ID, t.Title, t.CSV())
		}
		return t.String()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}

	if *fig == "all" {
		// Each figure is an independent deterministic simulation; run them
		// concurrently and print in order.
		ids := experiments.IDs()
		tables := make([]experiments.Table, len(ids))
		errs := make([]error, len(ids))
		sem := make(chan struct{}, max(1, *jobs))
		var wg sync.WaitGroup
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				tables[i], errs[i] = experiments.ByID(id, opts)
			}(i, id)
		}
		wg.Wait()
		for i := range ids {
			if errs[i] != nil {
				fmt.Fprintln(os.Stderr, errs[i])
				os.Exit(1)
			}
			fmt.Println(render(tables[i]))
		}
		return
	}
	t, err := experiments.ByID(*fig, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(render(t))
}
