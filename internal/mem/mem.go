// Package mem models the host memory system as a shared-bandwidth bus.
//
// The paper's testbed has two DDR4 channels (46.9GB/s theoretical, §2.2)
// and runs with DDIO disabled, so every DMA write, every application copy
// and every IOMMU page-table read contends for the same bandwidth. §2.2
// lists memory contention among the factors that increase protection
// overheads, and cites the DRAM literature [12, 13, 30] for
// latency-under-load inflation.
//
// The bus tracks consumed bytes over a sliding window and exposes a
// latency factor for page-table reads: the paper's fitted l_m = 197ns
// already includes the baseline traffic of a saturated 100Gbps receiver
// (≈80% bus utilisation with DDIO off), so the factor is normalised to 1
// at that calibration point and grows as an M/M/1-style queueing term as
// additional consumers (co-tenant memory hogs, storage DMA) push the bus
// toward saturation.
package mem

import (
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// Config sizes the bus. Zero fields take the paper's testbed values.
type Config struct {
	CapacityGBps float64      // theoretical bandwidth (default 46.9, §2.2)
	Window       sim.Duration // utilisation averaging window (default 100µs)
	// CalibrationUtil is the utilisation at which the latency factor is 1
	// (default 0.8: a saturated 100Gbps receiver with DDIO off).
	CalibrationUtil float64
	// MaxFactor caps the latency inflation (default 4).
	MaxFactor float64
}

func (c Config) withDefaults() Config {
	if c.CapacityGBps == 0 {
		c.CapacityGBps = 46.9
	}
	if c.Window == 0 {
		c.Window = 100 * sim.Microsecond
	}
	if c.CalibrationUtil == 0 {
		c.CalibrationUtil = 0.8
	}
	if c.MaxFactor == 0 {
		c.MaxFactor = 4
	}
	return c
}

// Bus is the shared memory-bandwidth model.
type Bus struct {
	eng *sim.Engine
	cfg Config

	windowBytes int64
	windowStart sim.Time
	util        float64 // EWMA of per-window utilisation
	totalBytes  int64
}

// New returns a bus attached to the engine.
func New(eng *sim.Engine, cfg Config) *Bus {
	return &Bus{eng: eng, cfg: cfg.withDefaults()}
}

// Consume records bytes of memory traffic (DMA writes/reads, copies,
// page-table reads).
func (b *Bus) Consume(bytes int) {
	b.roll()
	b.windowBytes += int64(bytes)
	b.totalBytes += int64(bytes)
}

// roll folds completed windows into the utilisation EWMA.
func (b *Bus) roll() {
	now := b.eng.Now()
	for now-b.windowStart >= b.cfg.Window {
		// Bandwidth over the window in GB/s: bytes / ns == GB/s.
		bw := float64(b.windowBytes) / float64(b.cfg.Window)
		u := bw / b.cfg.CapacityGBps
		if u > 1 {
			u = 1
		}
		b.util = 0.7*b.util + 0.3*u
		b.windowBytes = 0
		b.windowStart += b.cfg.Window
		if now-b.windowStart > 100*b.cfg.Window {
			// Long idle gap: jump the window forward.
			b.windowStart = now
			b.util *= 0.1
		}
	}
}

// Utilization returns the smoothed bus utilisation in [0, 1].
func (b *Bus) Utilization() float64 {
	b.roll()
	return b.util
}

// LatencyFactor returns the multiplier applied to memory-read latency,
// normalised to 1 at the calibration utilisation:
//
//	factor = (1 - u0) / (1 - u), clamped to [1, MaxFactor].
func (b *Bus) LatencyFactor() float64 {
	u := b.Utilization()
	u0 := b.cfg.CalibrationUtil
	if u <= u0 {
		return 1
	}
	denom := 1 - u
	if denom < 1e-3 {
		denom = 1e-3
	}
	f := (1 - u0) / denom
	if f < 1 {
		f = 1
	}
	if f > b.cfg.MaxFactor {
		f = b.cfg.MaxFactor
	}
	return f
}

// TotalBytes returns cumulative consumed traffic.
func (b *Bus) TotalBytes() int64 { return b.totalBytes }

// PeekUtilization returns the utilisation EWMA as last folded, without
// rolling the window. Unlike Utilization it never mutates the bus, so the
// telemetry sampler can read it without perturbing the (deterministic)
// roll schedule; on a busy bus Consume rolls constantly, keeping the
// peeked value at most one window stale.
func (b *Bus) PeekUtilization() float64 { return b.util }

// RegisterProbes exposes the bus through the registry under prefix
// (e.g. "mem."). All probes are read-only: utilisation is peeked, not
// rolled, so sampling cannot disturb the simulation.
func (b *Bus) RegisterProbes(r *stats.Registry, prefix string) {
	r.GaugeFunc(prefix+"util", b.PeekUtilization)
	r.GaugeFunc(prefix+"bytes", func() float64 { return float64(b.totalBytes) })
}

// Hog is a synthetic co-tenant consuming fixed bandwidth (an antagonist
// application, e.g. a streaming analytics job).
type Hog struct {
	bus      *Bus
	gbps     float64
	chunk    int
	interval sim.Duration
}

// NewHog starts a hog consuming gbps (decimal GB/s) in 64KB chunks.
func NewHog(bus *Bus, gbps float64) *Hog {
	h := &Hog{bus: bus, gbps: gbps, chunk: 64 << 10}
	h.interval = sim.Duration(float64(h.chunk) / gbps) // bytes per (B/ns)
	bus.eng.After(h.interval, h.tick)
	return h
}

func (h *Hog) tick() {
	h.bus.Consume(h.chunk)
	h.bus.eng.After(h.interval, h.tick)
}
