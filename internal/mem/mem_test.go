package mem

import (
	"testing"

	"fastsafe/internal/sim"
)

func TestIdleBusFactorOne(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{})
	if f := b.LatencyFactor(); f != 1 {
		t.Fatalf("idle factor = %v, want 1", f)
	}
	if b.Utilization() != 0 {
		t.Fatalf("idle utilisation = %v", b.Utilization())
	}
}

func TestUtilizationTracksConsumption(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{CapacityGBps: 10, Window: 1000})
	// Consume 5 bytes/ns = 5GB/s = 50% for many windows.
	for w := 0; w < 100; w++ {
		e.At(sim.Time(w*1000), func() { b.Consume(5000) })
	}
	e.RunAll()
	e.At(100_000, func() {})
	e.RunAll()
	u := b.Utilization()
	if u < 0.35 || u > 0.6 {
		t.Fatalf("utilisation = %v, want ~0.5", u)
	}
}

func TestFactorGrowsPastCalibration(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{CapacityGBps: 10, Window: 1000, CalibrationUtil: 0.5})
	// 9GB/s = 90% utilisation: factor = 0.5/0.1 = 5, capped at 4.
	for w := 0; w < 200; w++ {
		e.At(sim.Time(w*1000), func() { b.Consume(9000) })
	}
	e.RunAll()
	f := b.LatencyFactor()
	if f < 2 {
		t.Fatalf("factor = %v, want inflated past calibration", f)
	}
	if f > 4 {
		t.Fatalf("factor = %v, want capped at 4", f)
	}
}

func TestFactorClampedBelowCalibration(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{CapacityGBps: 100, Window: 1000, CalibrationUtil: 0.8})
	for w := 0; w < 50; w++ {
		e.At(sim.Time(w*1000), func() { b.Consume(1000) }) // 1%
	}
	e.RunAll()
	if f := b.LatencyFactor(); f != 1 {
		t.Fatalf("underloaded factor = %v, want 1", f)
	}
}

func TestIdleGapDecaysUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{CapacityGBps: 10, Window: 1000})
	for w := 0; w < 50; w++ {
		e.At(sim.Time(w*1000), func() { b.Consume(9000) })
	}
	e.RunAll()
	hot := b.Utilization()
	// A long quiet period must decay the estimate.
	e.At(e.Now()+1_000_000, func() {})
	e.RunAll()
	if cold := b.Utilization(); cold >= hot/2 {
		t.Fatalf("utilisation did not decay: %v -> %v", hot, cold)
	}
}

func TestHogConsumesTargetBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{CapacityGBps: 40})
	NewHog(b, 8) // 8GB/s
	e.Run(10 * sim.Millisecond)
	// 8GB/s for 10ms = 80MB.
	got := b.TotalBytes()
	want := int64(80 << 20)
	if got < want*9/10 || got > want*11/10 {
		t.Fatalf("hog consumed %d bytes, want ~%d", got, want)
	}
}
