// Package cohort is the flow-aggregate abstraction behind the
// serving-fleet workload (ROADMAP item 3): an open-loop fleet of
// connections with Poisson arrivals, heavy-tailed (bounded-Pareto)
// request/response sizes, and connection churn — each connection serves
// a geometric number of requests and then dies, so IOVA allocation and
// (un)map pressure scales with the churn rate rather than throughput.
//
// Millions of users will not fit as millions of simulated flows, so the
// fleet groups K identical connections into a cohort sharing one
// modeled state (an EWMA latency model and aggregate completion
// accounting). The grouping is *samplewise invariant* by construction:
// every connection draws from its own counter-based RNG stream keyed by
// (seed, connection, incarnation), with a fixed draw order per arrival,
// and all connections schedule through one global (time, connection)
// min-heap. Changing the cohort size K therefore changes nothing about
// which events happen when — protection costs (IOMMU walks, IOVA
// allocator traffic, map/unmap work) and safety audits are *exactly*
// equal across groupings, and only the per-request latency attribution
// switches from exact measurement (K == 1) to the cohort's shared model
// (K > 1). The equivalence test in internal/host holds the package to
// that contract.
package cohort

import (
	"fmt"
	"math"

	"fastsafe/internal/sim"
)

// Config describes a serving fleet. The zero value is not runnable;
// Validate reports descriptive errors for the knobs front ends expose.
type Config struct {
	Conns int // fleet population; dead connections are reborn, so it is constant
	// Cohort is the number of connections sharing one modeled state.
	// 1 simulates every connection exactly; K > 1 approximates only the
	// recorded latency, never the event stream.
	Cohort int
	// Churn is the per-request probability that a connection dies after
	// the response completes, in (0, 1]: connection lifetimes are
	// geometric with mean 1/Churn requests.
	Churn float64

	MeanGap sim.Duration // mean per-connection inter-arrival time (default 40us)

	ReqMin, ReqMax   int     // bounded-Pareto request payload (default 256..64KB)
	RespMin, RespMax int     // bounded-Pareto response payload (default 64..4KB)
	Alpha            float64 // Pareto tail index for both (default 1.3)

	Seed int64
}

// Validate checks the externally exposed knobs, with the same
// descriptive-rejection contract as the modespec parsers.
func (c Config) Validate() error {
	switch {
	case c.Conns < 1:
		return fmt.Errorf("cohort: conns must be >= 1, got %d", c.Conns)
	case c.Cohort < 1:
		return fmt.Errorf("cohort: cohort size must be >= 1, got %d (1 simulates every connection exactly)", c.Cohort)
	case c.Churn <= 0 || c.Churn > 1:
		return fmt.Errorf("cohort: churn rate must be in (0, 1], got %g (the per-request connection death probability)", c.Churn)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MeanGap <= 0 {
		c.MeanGap = 40 * sim.Microsecond
	}
	if c.ReqMin <= 0 {
		c.ReqMin = 256
	}
	if c.ReqMax <= 0 {
		c.ReqMax = 64 << 10
	}
	if c.RespMin <= 0 {
		c.RespMin = 64
	}
	if c.RespMax <= 0 {
		c.RespMax = 4 << 10
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.3
	}
	return c
}

// rng is a splitmix64 stream. Each (connection, incarnation) gets its
// own stream so draws never depend on the interleaving of other
// connections — the property that makes cohort grouping samplewise
// invariant.
type rng struct{ s uint64 }

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func connRNG(seed int64, conn int, gen int64) rng {
	s := mix64(uint64(seed) + 0x9E3779B97F4A7C15)
	s = mix64(s ^ uint64(conn))
	s = mix64(s ^ uint64(gen)*0xD1342543DE82EF95)
	return rng{s: s}
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	return mix64(r.s)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// expGap draws an exponential inter-arrival gap with the configured
// mean, clamped to >= 1ns so virtual time strictly advances.
func (c Config) expGap(r *rng) sim.Duration {
	d := sim.Duration(-float64(c.MeanGap) * math.Log(1-r.float64()))
	if d < 1 {
		d = 1
	}
	return d
}

// pareto draws a bounded-Pareto size in [lo, hi] by inverse CDF.
func (c Config) pareto(r *rng, lo, hi int) int {
	if lo >= hi {
		return lo
	}
	u := r.float64()
	l, h, a := float64(lo), float64(hi), c.Alpha
	ratio := math.Pow(l/h, a)
	x := l / math.Pow(1-u*(1-ratio), 1/a)
	n := int(x)
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// Arrival is one request event popped from the fleet.
type Arrival struct {
	Conn  int   // global connection index
	Group int   // cohort index: Conn / Cohort
	ID    int64 // globally unique request id
	Req   int   // request payload bytes
	Resp  int   // response payload bytes
	// Last marks the connection's final request: after its response
	// completes (or it is abandoned), the connection dies and a fresh
	// incarnation is born in its slot.
	Last bool
}

// Group is the shared modeled state of one cohort of connections.
// Counters are exact aggregates of member events; the EWMA latency is
// the modeled quantity that replaces per-connection measurement at
// cohort sizes above 1.
type Group struct {
	Members     int
	InFlight    int     // member requests currently outstanding
	Completions int64   // member requests completed
	Bytes       int64   // request+response payload of completed requests
	EWMALatNs   float64 // shared latency model (exp. weighted, gain 1/8)
}

// conn is one connection slot's live state.
type conn struct {
	rng    rng
	gen    int64 // incarnation (bumped at each rebirth)
	nextAt sim.Time
	inHeap bool
}

// Fleet is the open-loop generator: a constant population of
// connections whose next arrivals sit in one global (time, connection)
// min-heap, so scheduling order is independent of cohort grouping.
type Fleet struct {
	cfg    Config
	conns  []conn
	groups []Group
	heap   []int // connection indices ordered by (nextAt, index)
	nextID int64
	births int64
	deaths int64
}

// New builds a fleet; every connection's first arrival is drawn from
// its own incarnation-0 stream.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	f := &Fleet{cfg: cfg}
	f.conns = make([]conn, cfg.Conns)
	nGroups := (cfg.Conns + cfg.Cohort - 1) / cfg.Cohort
	f.groups = make([]Group, nGroups)
	for g := range f.groups {
		members := cfg.Cohort
		if rem := cfg.Conns - g*cfg.Cohort; rem < members {
			members = rem
		}
		f.groups[g].Members = members
	}
	for i := range f.conns {
		f.birth(i, 0)
	}
	return f, nil
}

// birth starts connection slot i's next incarnation at time now.
func (f *Fleet) birth(i int, now sim.Time) {
	c := &f.conns[i]
	c.rng = connRNG(f.cfg.Seed, i, c.gen)
	c.nextAt = now + sim.Time(f.cfg.expGap(&c.rng))
	f.births++
	f.push(i)
}

// Peek returns the earliest pending arrival time (ok=false only if the
// whole fleet is between death and rebirth, which cannot happen: dead
// slots rebirth synchronously on completion or abandonment).
func (f *Fleet) Peek() (sim.Time, bool) {
	if len(f.heap) == 0 {
		return 0, false
	}
	return f.conns[f.heap[0]].nextAt, true
}

// Next pops the earliest arrival if it is due at or before now. The
// draw order per arrival is fixed — request size, response size, death
// — followed by the next gap for surviving connections, so the stream
// each connection produces is independent of everything else.
func (f *Fleet) Next(now sim.Time) (Arrival, bool) {
	if len(f.heap) == 0 || f.conns[f.heap[0]].nextAt > now {
		return Arrival{}, false
	}
	i := f.pop()
	c := &f.conns[i]
	a := Arrival{
		Conn:  i,
		Group: i / f.cfg.Cohort,
		ID:    f.nextID,
		Req:   f.cfg.pareto(&c.rng, f.cfg.ReqMin, f.cfg.ReqMax),
		Resp:  f.cfg.pareto(&c.rng, f.cfg.RespMin, f.cfg.RespMax),
	}
	f.nextID++
	a.Last = c.rng.float64() < f.cfg.Churn
	if !a.Last {
		c.nextAt += sim.Time(f.cfg.expGap(&c.rng))
		f.push(i)
	}
	f.groups[a.Group].InFlight++
	return a, true
}

// Complete finishes a request: the cohort's aggregates absorb the
// member event exactly, and the returned latency is what the caller
// should record — the measured value at cohort size 1, the cohort's
// updated EWMA model otherwise. A Last arrival triggers the
// connection's death and immediate rebirth (reborn=true): the caller
// owns remapping the connection's buffers.
func (f *Fleet) Complete(a Arrival, now sim.Time, measuredNs int64) (recordNs int64, reborn bool) {
	g := &f.groups[a.Group]
	g.InFlight--
	g.Completions++
	g.Bytes += int64(a.Req + a.Resp)
	g.EWMALatNs += (float64(measuredNs) - g.EWMALatNs) / 8
	recordNs = measuredNs
	if f.cfg.Cohort > 1 {
		recordNs = int64(g.EWMALatNs)
	}
	if a.Last {
		f.die(a.Conn, now)
		reborn = true
	}
	return recordNs, reborn
}

// Abandon gives up on a request whose segments were dropped (the open
// loop never retries). No latency is recorded; a Last arrival still
// dies and rebirths so connection slots never leak.
func (f *Fleet) Abandon(a Arrival, now sim.Time) (reborn bool) {
	f.groups[a.Group].InFlight--
	if a.Last {
		f.die(a.Conn, now)
		return true
	}
	return false
}

func (f *Fleet) die(i int, now sim.Time) {
	f.deaths++
	f.conns[i].gen++
	f.birth(i, now)
}

// Births returns total connection incarnations (including the initial
// population).
func (f *Fleet) Births() int64 { return f.births }

// Deaths returns total connection deaths (the churn event count).
func (f *Fleet) Deaths() int64 { return f.deaths }

// Groups returns the live cohort states (index = Arrival.Group).
func (f *Fleet) Groups() []Group { return f.groups }

// Cohort returns the configured cohort size.
func (f *Fleet) Cohort() int { return f.cfg.Cohort }

// heap operations: a plain binary min-heap over connection indices
// ordered by (nextAt, index) — the index tie-break keeps same-instant
// arrivals in a grouping-independent order.

func (f *Fleet) less(a, b int) bool {
	ca, cb := &f.conns[a], &f.conns[b]
	if ca.nextAt != cb.nextAt {
		return ca.nextAt < cb.nextAt
	}
	return a < b
}

func (f *Fleet) push(i int) {
	if f.conns[i].inHeap {
		panic(fmt.Sprintf("cohort: conn %d pushed twice", i))
	}
	f.conns[i].inHeap = true
	f.heap = append(f.heap, i)
	j := len(f.heap) - 1
	for j > 0 {
		p := (j - 1) / 2
		if !f.less(f.heap[j], f.heap[p]) {
			break
		}
		f.heap[j], f.heap[p] = f.heap[p], f.heap[j]
		j = p
	}
}

func (f *Fleet) pop() int {
	top := f.heap[0]
	f.conns[top].inHeap = false
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap = f.heap[:last]
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		min := j
		if l < last && f.less(f.heap[l], f.heap[min]) {
			min = l
		}
		if r < last && f.less(f.heap[r], f.heap[min]) {
			min = r
		}
		if min == j {
			break
		}
		f.heap[j], f.heap[min] = f.heap[min], f.heap[j]
		j = min
	}
	return top
}
