package cohort

import (
	"strings"
	"testing"

	"fastsafe/internal/sim"
)

// drain pops n arrivals from the fleet, completing each immediately
// with a synthetic latency (completion feeds the death/rebirth path but
// never alters arrival draws, mirroring the invariance contract).
func drain(t *testing.T, f *Fleet, n int) []Arrival {
	t.Helper()
	var out []Arrival
	for len(out) < n {
		at, ok := f.Peek()
		if !ok {
			t.Fatal("fleet ran dry: every slot should rebirth synchronously")
		}
		a, ok := f.Next(at)
		if !ok {
			t.Fatalf("Peek said %d but Next refused", at)
		}
		out = append(out, a)
		f.Complete(a, at, int64(1000+a.Req))
	}
	return out
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Conns: 0, Cohort: 1, Churn: 0.2}, "conns must be >= 1"},
		{Config{Conns: -3, Cohort: 1, Churn: 0.2}, "conns must be >= 1"},
		{Config{Conns: 4, Cohort: 0, Churn: 0.2}, "cohort size must be >= 1"},
		{Config{Conns: 4, Cohort: -1, Churn: 0.2}, "cohort size must be >= 1"},
		{Config{Conns: 4, Cohort: 1, Churn: 0}, "churn rate must be in (0, 1]"},
		{Config{Conns: 4, Cohort: 1, Churn: -0.5}, "churn rate must be in (0, 1]"},
		{Config{Conns: 4, Cohort: 1, Churn: 1.5}, "churn rate must be in (0, 1]"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) accepted an invalid config", c.cfg)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %q, want substring %q", c.cfg, err, c.want)
		}
	}
	if err := (Config{Conns: 4, Cohort: 1, Churn: 1}).Validate(); err != nil {
		t.Errorf("churn 1.0 must be accepted (every request kills its connection): %v", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{Conns: 16, Cohort: 1, Churn: 0.3, Seed: 7}
	f1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a1 := drain(t, f1, 5000)
	a2 := drain(t, f2, 5000)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d diverged across identical fleets: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	if f1.Deaths() != f2.Deaths() || f1.Births() != f2.Births() {
		t.Fatalf("churn accounting diverged: %d/%d deaths, %d/%d births",
			f1.Deaths(), f2.Deaths(), f1.Births(), f2.Births())
	}
	if f1.Deaths() == 0 {
		t.Fatal("no deaths in 5000 requests at churn 0.3: the churn path is vacuous")
	}
}

// TestGroupingInvariance is the core cohort contract: the event stream
// — which connection issues which request of which size at which time —
// is bitwise identical whether connections are simulated exactly
// (cohort 1) or aggregated (cohort K). Only latency attribution may
// differ.
func TestGroupingInvariance(t *testing.T) {
	base := Config{Conns: 12, Churn: 0.25, Seed: 3}
	streams := map[int][]Arrival{}
	for _, k := range []int{1, 3, 12} {
		cfg := base
		cfg.Cohort = k
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		streams[k] = drain(t, f, 4000)
	}
	for _, k := range []int{3, 12} {
		for i := range streams[1] {
			a, b := streams[1][i], streams[k][i]
			// Group differs by construction; everything else must match.
			b.Group = a.Group
			if a != b {
				t.Fatalf("cohort %d: arrival %d diverged from exact model: %+v vs %+v", k, i, streams[1][i], streams[k][i])
			}
		}
	}
}

func TestLatencyAttributionExactAtOne(t *testing.T) {
	f, err := New(Config{Conns: 4, Cohort: 1, Churn: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	at, _ := f.Peek()
	a, _ := f.Next(at)
	if rec, _ := f.Complete(a, at, 12345); rec != 12345 {
		t.Fatalf("cohort 1 must record the measured latency exactly, got %d", rec)
	}

	fk, err := New(Config{Conns: 4, Cohort: 2, Churn: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	at, _ = fk.Peek()
	a, _ = fk.Next(at)
	rec, _ := fk.Complete(a, at, 8000)
	// First EWMA step from zero with gain 1/8: 1000.
	if rec != 1000 {
		t.Fatalf("cohort > 1 must record the group model (EWMA), got %d", rec)
	}
}

func TestDistributionShape(t *testing.T) {
	cfg := Config{Conns: 8, Cohort: 1, Churn: 0.05, Seed: 11}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(t, f, 20000)
	full := cfg.withDefaults()
	var sumReq, sumResp float64
	var tailReq int
	for _, a := range arr {
		if a.Req < full.ReqMin || a.Req > full.ReqMax {
			t.Fatalf("request size %d outside [%d, %d]", a.Req, full.ReqMin, full.ReqMax)
		}
		if a.Resp < full.RespMin || a.Resp > full.RespMax {
			t.Fatalf("response size %d outside [%d, %d]", a.Resp, full.RespMin, full.RespMax)
		}
		sumReq += float64(a.Req)
		sumResp += float64(a.Resp)
		if a.Req > 16<<10 {
			tailReq++
		}
	}
	meanReq := sumReq / float64(len(arr))
	// Bounded Pareto (alpha 1.3, 256..64KB) has mean ~900B; accept a wide
	// band — the point is heavy-tailedness, not the exact constant.
	if meanReq < 500 || meanReq > 1500 {
		t.Errorf("request mean %.0fB outside the plausible bounded-Pareto band", meanReq)
	}
	if tailReq == 0 {
		t.Error("no request above 16KB in 20000 draws: the tail is missing")
	}
	// Mean inter-arrival across the fleet ~ MeanGap/Conns.
	var f2 *Fleet
	f2, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	for i := 0; i < 20000; i++ {
		at, _ := f2.Peek()
		a, _ := f2.Next(at)
		f2.Complete(a, at, 1000)
		last = at
	}
	meanGap := float64(last) / 20000
	want := float64(full.MeanGap) / float64(cfg.Conns)
	if meanGap < want*0.8 || meanGap > want*1.2 {
		t.Errorf("aggregate mean gap %.0fns, want ~%.0fns (Poisson superposition)", meanGap, want)
	}
}

func TestGroupAggregates(t *testing.T) {
	f, err := New(Config{Conns: 10, Cohort: 4, Churn: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gs := f.Groups()
	if len(gs) != 3 || gs[0].Members != 4 || gs[2].Members != 2 {
		t.Fatalf("group layout wrong: %+v", gs)
	}
	arr := drain(t, f, 1000)
	var want [3]int64
	for _, a := range arr {
		want[a.Group] += int64(a.Req + a.Resp)
	}
	for g, w := range want {
		if got := f.Groups()[g].Bytes; got != w {
			t.Errorf("group %d bytes = %d, want exact member sum %d", g, got, w)
		}
		if f.Groups()[g].InFlight != 0 {
			t.Errorf("group %d leaked in-flight accounting: %d", g, f.Groups()[g].InFlight)
		}
	}
}

// Abandon must keep churn accounting consistent: a Last arrival still
// dies and rebirths (slots never leak), a non-Last one records nothing.
func TestAbandonChurnAccounting(t *testing.T) {
	// Churn 1: every request is its connection's last.
	f, err := New(Config{Conns: 1, Cohort: 1, Churn: 1})
	if err != nil {
		t.Fatal(err)
	}
	at, ok := f.Peek()
	if !ok {
		t.Fatal("fresh fleet has no pending arrival")
	}
	a, ok := f.Next(sim.Time(at))
	if !ok {
		t.Fatal("due arrival not popped")
	}
	if !a.Last {
		t.Fatal("churn 1 must mark every arrival Last")
	}
	// The sole connection is between death and rebirth only while its
	// Last arrival is in flight — the one window Peek can come up empty.
	if _, ok := f.Peek(); ok {
		t.Fatal("conn awaiting its Last response should not be in the heap")
	}
	if !f.Abandon(a, sim.Time(at)) {
		t.Fatal("abandoning a Last arrival must rebirth the connection")
	}
	if f.Deaths() != 1 || f.Births() != 2 {
		t.Fatalf("deaths=%d births=%d, want 1 and 2", f.Deaths(), f.Births())
	}
	if _, ok := f.Peek(); !ok {
		t.Fatal("rebirth must reschedule the slot")
	}
	if g := f.Groups()[0]; g.InFlight != 0 {
		t.Fatalf("InFlight = %d after abandon, want 0", g.InFlight)
	}
	if f.Cohort() != 1 {
		t.Fatalf("Cohort() = %d, want 1", f.Cohort())
	}

	// Churn ~0: arrivals are never Last, so Abandon does not rebirth.
	f2, err := New(Config{Conns: 1, Cohort: 1, Churn: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	at2, _ := f2.Peek()
	a2, _ := f2.Next(sim.Time(at2))
	if a2.Last {
		t.Fatal("churn 1e-12 marked an arrival Last")
	}
	if f2.Abandon(a2, sim.Time(at2)) {
		t.Fatal("abandoning a non-Last arrival must not rebirth")
	}
	if f2.Deaths() != 0 {
		t.Fatalf("deaths = %d, want 0", f2.Deaths())
	}
}

// A degenerate Pareto range (lo == hi) pins every draw to that size.
func TestDegeneratePayloadRange(t *testing.T) {
	f, err := New(Config{Conns: 1, Cohort: 1, Churn: 0.5,
		ReqMin: 512, ReqMax: 512, RespMin: 64, RespMax: 64})
	if err != nil {
		t.Fatal(err)
	}
	at, _ := f.Peek()
	a, _ := f.Next(sim.Time(at))
	if a.Req != 512 || a.Resp != 64 {
		t.Fatalf("degenerate range drew req=%d resp=%d, want 512 and 64", a.Req, a.Resp)
	}
}
