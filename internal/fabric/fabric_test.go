package fabric

import (
	"testing"

	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// A link serialises back-to-back packets at its line rate: the second
// delivery waits for the first's serialisation slot.
func TestLinkSerialises(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 100, 2*sim.Microsecond) // 100Gbps, 2us prop
	var at []sim.Time
	for i := 0; i < 3; i++ {
		l.Send(4096, func(bool) { at = append(at, eng.Now()) })
	}
	eng.Run(sim.Time(1) * sim.Millisecond)
	if len(at) != 3 {
		t.Fatalf("expected 3 deliveries, got %d", len(at))
	}
	ser := sim.Duration(4096 * 8 / 100) // ns per packet at 100Gbps
	for i, want := range []sim.Time{
		sim.Time(ser) + 2000,
		sim.Time(2*ser) + 2000,
		sim.Time(3*ser) + 2000,
	} {
		if at[i] != want {
			t.Fatalf("delivery %d at %d, want %d", i, at[i], want)
		}
	}
	if l.Packets() != 3 || l.Bytes() != 3*4096 {
		t.Fatalf("counters: packets=%d bytes=%d", l.Packets(), l.Bytes())
	}
}

// A standing queue above the averaged threshold marks ECN; an idle link
// never marks.
func TestLinkECNMarksStandingQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 1, 0) // 1Gbps: 4KB takes ~32.8us to serialise
	l.SetECN(8 << 10)
	marked := false
	for i := 0; i < 64; i++ {
		i := i
		eng.At(sim.Time(i)*sim.Microsecond, func() {
			l.Send(4096, func(ecn bool) { marked = marked || ecn })
		})
	}
	eng.Run(sim.Time(10) * sim.Millisecond)
	if !marked {
		t.Fatal("standing queue above threshold never marked ECN")
	}

	idle := NewLink(eng, 100, 0)
	idle.SetECN(8 << 10)
	idle.Send(4096, func(ecn bool) {
		if ecn {
			t.Fatal("idle link marked ECN")
		}
	})
	eng.Run(eng.Now() + sim.Time(1)*sim.Millisecond)
	if idle.Marked() != 0 {
		t.Fatalf("idle link marked %d packets", idle.Marked())
	}
}

func TestSwitchValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := NewSwitch(eng, 1, Config{}); err == nil {
		t.Fatal("1-port switch accepted")
	}
	if _, err := NewSwitch(eng, 4, Config{Oversub: -1}); err == nil {
		t.Fatal("negative oversubscription accepted")
	}
	sw, err := NewSwitch(eng, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Ports() != 4 {
		t.Fatalf("Ports() = %d, want 4", sw.Ports())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	sw.Port(0).Send(0, 4096, func(bool) {})
}

// The end-to-end propagation budget is preserved across the switch: a
// packet on an unloaded 2-hop fabric arrives exactly one serialisation
// per hop plus the configured propagation later.
func TestSwitchPropagationBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, err := NewSwitch(eng, 2, Config{PortGbps: 100, Prop: 2 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Time
	sw.Port(0).Send(1, 4096, func(bool) { got = eng.Now() })
	eng.Run(sim.Time(1) * sim.Millisecond)
	ser := sim.Time(4096 * 8 / 100)
	want := 2*ser + 2000 // two serialisations + the full 2us budget
	if got != want {
		t.Fatalf("delivery at %d, want %d", got, want)
	}
}

// Incast congestion lands at the destination's downlink: many sources
// sending to one port mark ECN there while the sources' uplinks stay
// clean.
func TestSwitchIncastMarksAtDownlink(t *testing.T) {
	eng := sim.NewEngine(1)
	sw, err := NewSwitch(eng, 8, Config{PortGbps: 100, Prop: 2 * sim.Microsecond, ECNK: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	marks := 0
	for src := 1; src < 8; src++ {
		src := src
		for i := 0; i < 64; i++ {
			i := i
			eng.At(sim.Time(i)*sim.Microsecond/3, func() {
				sw.Port(src).Send(0, 4096, func(ecn bool) {
					if ecn {
						marks++
					}
				})
			})
		}
	}
	eng.Run(sim.Time(10) * sim.Millisecond)
	if marks == 0 {
		t.Fatal("incast produced no ECN marks at the destination downlink")
	}
	for src := 1; src < 8; src++ {
		if m := sw.Port(src).up.Marked(); m != 0 {
			t.Fatalf("uplink %d marked %d packets; incast congestion must mark at the downlink", src, m)
		}
	}
	if sw.Port(0).down.Marked() == 0 {
		t.Fatal("destination downlink recorded no marks")
	}
}

// An oversubscribed core throttles cross-fabric aggregate bandwidth and
// shows up in the probe registry.
func TestSwitchOversubscribedCore(t *testing.T) {
	run := func(oversub float64) (last sim.Time) {
		eng := sim.NewEngine(1)
		sw, err := NewSwitch(eng, 4, Config{PortGbps: 100, Oversub: oversub})
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < 4; src++ {
			src := src
			for i := 0; i < 256; i++ {
				eng.At(0, func() {
					sw.Port(src).Send((src+1)%4, 4096, func(bool) { last = eng.Now() })
				})
			}
		}
		eng.Run(sim.Time(100) * sim.Millisecond)
		return last
	}
	nonBlocking := run(0)
	throttled := run(4) // core at 1/4 aggregate
	if throttled <= nonBlocking {
		t.Fatalf("4:1 oversubscription did not slow the fabric: %d <= %d", throttled, nonBlocking)
	}

	eng := sim.NewEngine(1)
	sw, _ := NewSwitch(eng, 2, Config{Oversub: 2})
	reg := stats.NewRegistry()
	sw.RegisterProbes(reg, "fabric.")
	for _, name := range []string{"fabric.port0.up.bytes", "fabric.port1.down.backlog", "fabric.core.packets"} {
		if _, ok := reg.Value(name); !ok {
			t.Fatalf("probe %s not registered", name)
		}
	}
}

// PerHopProp splits the end-to-end budget over 2 hops on a crossbar and
// 3 when an oversubscribed core adds a shared stage.
func TestPerHopProp(t *testing.T) {
	if got := (Config{}).PerHopProp(); got != sim.Microsecond {
		t.Fatalf("non-blocking PerHopProp = %v, want 1us", got)
	}
	// 2us over 3 hops, truncated to whole nanoseconds.
	if got := (Config{Oversub: 4}).PerHopProp(); got != 666 {
		t.Fatalf("oversubscribed PerHopProp = %v, want 666ns", got)
	}
}

// directRouter posts every cross-shard hop onto one shared engine — the
// degenerate single-shard topology, enough to drive the sharded Send
// path end to end.
type directRouter struct{ eng *sim.Engine }

func (r directRouter) PostPort(src, dst int, gen, at sim.Time, fn func()) { r.eng.At(at, fn) }
func (r directRouter) PostCore(src int, gen, at sim.Time, fn func())      { r.eng.At(at, fn) }

func TestShardedSwitchRoutesHops(t *testing.T) {
	if _, err := NewShardedSwitch(2, Config{}, nil, nil, nil); err == nil {
		t.Fatal("nil router accepted")
	}

	for _, oversub := range []float64{0, 2} {
		eng := sim.NewEngine(1)
		sw, err := NewShardedSwitch(4, Config{Oversub: oversub},
			func(int) *sim.Engine { return eng }, eng, directRouter{eng})
		if err != nil {
			t.Fatal(err)
		}
		if oversub > 0 && sw.Core() == nil {
			t.Fatal("oversubscribed switch has no core link")
		}
		if oversub == 0 && sw.Core() != nil {
			t.Fatal("non-blocking switch grew a core link")
		}
		p := sw.Port(1)
		if p.ID() != 1 || p.Uplink() == nil || p.Downlink() == nil {
			t.Fatalf("port accessors: id=%d up=%v down=%v", p.ID(), p.Uplink(), p.Downlink())
		}
		delivered := false
		p.Send(3, 4096, func(bool) { delivered = true })
		eng.Run(sim.Time(1) * sim.Millisecond)
		if !delivered {
			t.Fatalf("oversub %g: packet never delivered through the sharded path", oversub)
		}
		if sw.Port(3).Downlink().Packets() != 1 {
			t.Fatalf("oversub %g: destination downlink saw %d packets, want 1",
				oversub, sw.Port(3).Downlink().Packets())
		}
	}
}
