// Package fabric models the cluster network: point-to-point links and a
// switched fabric connecting N hosts through per-port queues.
//
// Link is the building block — a single-server serialisation queue (a
// NIC egress or a switch port) followed by a fixed propagation delay,
// with EWMA-averaged ECN marking the way the paper's DCTCP-enabled
// switches mark. A Link on its own is the degenerate two-node fabric:
// the single-host experiments' "wire" to the abstract remote host is
// exactly one Link per direction.
//
// Switch composes Links into a switched network: every host owns a Port
// with an uplink Link into the switch and a downlink Link out of it, and
// an optional shared core Link models oversubscription. Congestion under
// incast lands where it does on real hardware — the receiver's output
// (downlink) port FIFO — and that queue is where ECN marks.
//
// Everything here is engine-confined and deterministic: no goroutines,
// no wall-clock time, no shared mutable state between fabrics.
package fabric

import (
	"fmt"

	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// Link models one direction of a network path: a single-server
// serialisation queue (the sender NIC egress / switch port) followed by
// a fixed propagation delay. The egress queue marks ECN above a
// threshold, as the DCTCP-enabled switch in the paper's testbed does —
// when the receiver's PCIe is not the bottleneck, this is where the
// standing queue lives.
type Link struct {
	eng       *sim.Engine
	gbps      float64
	prop      sim.Duration
	ecnK      int // marking threshold in averaged queued bytes (0 = never mark)
	busyUntil sim.Time
	bytes     int64
	packets   int64
	marked    int64

	// Marking uses an exponentially-weighted moving average of the
	// backlog (time constant ecnTau) so transient ACK-clocked bursts pass
	// unmarked while standing queues mark — switches average similarly,
	// and without this the simulation marks on every burst and DCTCP
	// shadows bottlenecks it cannot actually see.
	avgBacklog float64
	lastSample sim.Time
}

// ecnTau is the backlog-averaging time constant.
const ecnTau = 20 * sim.Microsecond

// NewLink returns a link with the given line rate and one-way
// propagation delay.
func NewLink(eng *sim.Engine, gbps float64, prop sim.Duration) *Link {
	return &Link{eng: eng, gbps: gbps, prop: prop}
}

// SetECN enables ECN marking when the egress backlog exceeds k bytes.
func (w *Link) SetECN(k int) { w.ecnK = k }

// Backlog returns the bytes currently queued for serialisation.
func (w *Link) Backlog() int {
	now := w.eng.Now()
	if w.busyUntil <= now {
		return 0
	}
	return int(float64(w.busyUntil-now) * w.gbps / 8)
}

// SendAt serialises a packet onto the link and returns the virtual time
// it reaches the far end together with its ECN mark, without scheduling
// the delivery. The returned time is always at least the link's
// propagation delay in the future, which is what lets a sharded fabric
// turn the delivery into a cross-shard message with positive lookahead.
// Callers must run on the link's owning engine.
func (w *Link) SendAt(bytes int) (at sim.Time, ecn bool) {
	now := w.eng.Now()
	if dt := now - w.lastSample; dt > 0 {
		// Discrete-time EWMA: decay toward the instantaneous backlog.
		alpha := float64(dt) / float64(dt+ecnTau)
		w.avgBacklog += (float64(w.Backlog()) - w.avgBacklog) * alpha
		w.lastSample = now
	}
	ecn = w.ecnK > 0 && w.avgBacklog > float64(w.ecnK)
	if ecn {
		w.marked++
	}
	start := now
	if w.busyUntil > start {
		start = w.busyUntil
	}
	ser := sim.Duration(float64(bytes) * 8 / w.gbps)
	w.busyUntil = start + ser
	w.bytes += int64(bytes)
	w.packets++
	return w.busyUntil + w.prop, ecn
}

// Send serialises a packet onto the link; deliver fires at the far end
// with the packet's ECN mark.
func (w *Link) Send(bytes int, deliver func(ecn bool)) {
	at, ecn := w.SendAt(bytes)
	w.eng.At(at, func() { deliver(ecn) })
}

// Bytes returns the total bytes sent.
func (w *Link) Bytes() int64 { return w.bytes }

// Packets returns the total packets sent.
func (w *Link) Packets() int64 { return w.packets }

// Marked returns the number of ECN-marked packets.
func (w *Link) Marked() int64 { return w.marked }

// RegisterProbes exposes the link's counters and queue state through the
// registry under prefix. Read-only over live state.
func (w *Link) RegisterProbes(r *stats.Registry, prefix string) {
	r.GaugeFunc(prefix+"bytes", func() float64 { return float64(w.bytes) })
	r.GaugeFunc(prefix+"packets", func() float64 { return float64(w.packets) })
	r.GaugeFunc(prefix+"marked", func() float64 { return float64(w.marked) })
	r.GaugeFunc(prefix+"backlog", func() float64 { return float64(w.Backlog()) })
}

// Config describes a switched fabric. Zero fields take the defaults of
// the paper's testbed scaled to a cluster: 100Gbps ports, 2us end-to-end
// propagation, the 150KB DCTCP marking threshold, and a non-blocking
// core.
type Config struct {
	PortGbps float64      // per-port line rate (default 100)
	Prop     sim.Duration // end-to-end propagation, split across hops (default 2us)
	ECNK     int          // output-port ECN marking threshold, bytes (default 150KB)
	// Oversub is the core oversubscription factor: the shared core link
	// runs at ports*PortGbps/Oversub. 0 (or 1 with no explicit request)
	// leaves the core non-blocking — packets pass straight from uplink
	// to downlink with no shared hop, a crossbar.
	Oversub float64
}

func (c Config) withDefaults() Config {
	if c.PortGbps == 0 {
		c.PortGbps = 100
	}
	if c.Prop == 0 {
		c.Prop = 2 * sim.Microsecond
	}
	if c.ECNK == 0 {
		c.ECNK = 150 << 10
	}
	return c
}

// hops returns the number of store-and-forward hops a packet takes:
// uplink + downlink, plus the shared core when oversubscribed.
func (c Config) hops() sim.Duration {
	if c.Oversub > 0 {
		return 3
	}
	return 2
}

// PerHopProp returns the per-hop propagation delay the switch splits its
// end-to-end budget into. Every packet that leaves a port spends at least
// this long in flight before it can touch another port's state, so it is
// the conservative lower bound on cross-shard event causality — the
// lookahead a sharded cluster hands to sim.NewShards.
func (c Config) PerHopProp() sim.Duration {
	c = c.withDefaults()
	return c.Prop / c.hops()
}

// Router posts cross-shard packet hops when the switch's ports live on
// different engine shards. gen is the virtual time the hop was generated
// at and at its delivery time; implementations must schedule fn at time
// at on the engine owning the destination (sim.Shards.Post has exactly
// this contract). The switch guarantees at >= gen + PerHopProp() for
// every hop it routes.
type Router interface {
	// PostPort schedules fn in the shard owning port dst. src is the port
	// whose shard generated the hop, or CorePort when the hop leaves the
	// shared core link.
	PostPort(src, dst int, gen, at sim.Time, fn func())
	// PostCore schedules fn in the shard owning the core link.
	PostCore(src int, gen, at sim.Time, fn func())
}

// CorePort is the pseudo port id routers see as the source of hops that
// leave the shared core link.
const CorePort = -1

// Switch is an N-port switched fabric. Ports are created up front so the
// core link (when oversubscribed) can be sized to the port count.
//
// A switch is either engine-confined (NewSwitch: every link on one shared
// engine, hops chained as ordinary local events) or sharded
// (NewShardedSwitch: each port's links on its owner host's engine, hops
// between ports posted through a Router as conservative cross-shard
// messages).
type Switch struct {
	eng    *sim.Engine
	cfg    Config
	ports  []*Port
	core   *Link  // shared core hop, nil when non-blocking
	router Router // nil for the engine-confined (unsharded) fabric
}

// Port is one host's attachment point: an uplink into the switch and a
// downlink out of it. The downlink is the congestion point under incast,
// so it carries the ECN marker; the uplink cannot queue beyond its own
// host's egress and stays unmarked.
type Port struct {
	sw   *Switch
	id   int
	up   *Link // host -> switch
	down *Link // switch -> host
}

// NewSwitch builds an engine-confined fabric with n ports.
func NewSwitch(eng *sim.Engine, n int, cfg Config) (*Switch, error) {
	return newSwitch(n, cfg, func(int) *sim.Engine { return eng }, eng, nil)
}

// NewShardedSwitch builds a fabric whose ports live on per-shard engines:
// port i's uplink and downlink are driven by engOf(i), the core link
// (when oversubscribed) by coreEng, and hops between ports owned by
// different engines cross through r. The per-hop propagation delay
// (Config.PerHopProp) guarantees every routed hop a positive lookahead.
func NewShardedSwitch(n int, cfg Config, engOf func(port int) *sim.Engine, coreEng *sim.Engine, r Router) (*Switch, error) {
	if r == nil {
		return nil, fmt.Errorf("fabric: a sharded switch needs a router")
	}
	if cfg.withDefaults().PerHopProp() <= 0 {
		return nil, fmt.Errorf("fabric: sharded switch needs a positive per-hop propagation, got %v", cfg.withDefaults().PerHopProp())
	}
	return newSwitch(n, cfg, engOf, coreEng, r)
}

func newSwitch(n int, cfg Config, engOf func(port int) *sim.Engine, coreEng *sim.Engine, r Router) (*Switch, error) {
	if n < 2 {
		return nil, fmt.Errorf("fabric: a switch needs at least 2 ports, got %d", n)
	}
	cfg = cfg.withDefaults()
	if cfg.Oversub < 0 {
		return nil, fmt.Errorf("fabric: Oversub must be >= 0, got %g", cfg.Oversub)
	}
	s := &Switch{eng: coreEng, cfg: cfg, router: r}
	// The end-to-end propagation budget is split across the hops a packet
	// takes, so a 2-port fabric matches a direct 2us link.
	hops := cfg.hops()
	prop := cfg.Prop / hops
	for i := 0; i < n; i++ {
		eng := engOf(i)
		p := &Port{
			sw:   s,
			id:   i,
			up:   NewLink(eng, cfg.PortGbps, prop),
			down: NewLink(eng, cfg.PortGbps, cfg.Prop-prop*(hops-1)),
		}
		p.down.SetECN(cfg.ECNK)
		s.ports = append(s.ports, p)
	}
	if cfg.Oversub > 0 {
		core := NewLink(coreEng, float64(n)*cfg.PortGbps/cfg.Oversub, prop)
		core.SetECN(cfg.ECNK)
		s.core = core
	}
	return s, nil
}

// Ports returns the number of ports.
func (s *Switch) Ports() int { return len(s.ports) }

// Port returns port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// ID returns the port's index.
func (p *Port) ID() int { return p.id }

// Uplink returns the host -> switch link.
func (p *Port) Uplink() *Link { return p.up }

// Downlink returns the switch -> host link.
func (p *Port) Downlink() *Link { return p.down }

// Core returns the shared core link, or nil for a non-blocking fabric.
func (s *Switch) Core() *Link { return s.core }

// Send carries a packet from this port's host to dst's host: serialise
// on the uplink, cross the (possibly oversubscribed) core, queue at the
// destination's downlink port FIFO, then deliver with the OR of every
// hop's ECN mark — switches propagate CE marks, they never clear them.
func (p *Port) Send(dst int, bytes int, deliver func(ecn bool)) {
	if dst < 0 || dst >= len(p.sw.ports) || dst == p.id {
		panic(fmt.Sprintf("fabric: port %d sending to invalid port %d", p.id, dst))
	}
	out := p.sw.ports[dst]
	if r := p.sw.router; r != nil {
		// Sharded path: the uplink's serialisation outcome is computed
		// synchronously (SendAt), so the hop into the next stage leaves as
		// a timestamped message at least one per-hop propagation in the
		// future — the router's lookahead guarantee. Each subsequent stage
		// runs on the engine owning its link.
		gen := p.up.eng.Now()
		upAt, ecnUp := p.up.SendAt(bytes)
		if p.sw.core != nil {
			r.PostCore(p.id, gen, upAt, func() {
				coreAt, ecnCore := p.sw.core.SendAt(bytes)
				r.PostPort(CorePort, dst, upAt, coreAt, func() {
					out.down.Send(bytes, func(ecnDown bool) {
						deliver(ecnUp || ecnCore || ecnDown)
					})
				})
			})
			return
		}
		r.PostPort(p.id, dst, gen, upAt, func() {
			out.down.Send(bytes, func(ecnDown bool) {
				deliver(ecnUp || ecnDown)
			})
		})
		return
	}
	p.up.Send(bytes, func(ecnUp bool) {
		if core := p.sw.core; core != nil {
			core.Send(bytes, func(ecnCore bool) {
				out.down.Send(bytes, func(ecnDown bool) {
					deliver(ecnUp || ecnCore || ecnDown)
				})
			})
			return
		}
		out.down.Send(bytes, func(ecnDown bool) {
			deliver(ecnUp || ecnDown)
		})
	})
}

// RegisterProbes exposes every port's uplink/downlink counters (and the
// core link's, when oversubscribed) under prefix, e.g.
// "fabric.port0.up.bytes".
func (s *Switch) RegisterProbes(r *stats.Registry, prefix string) {
	for _, p := range s.ports {
		s.RegisterPortProbes(r, prefix, p.id)
	}
	s.RegisterCoreProbes(r, prefix)
}

// RegisterPortProbes exposes port i's uplink/downlink counters under
// prefix. Sharded clusters register each port's probes into the registry
// owned by the port's shard, so probe reads stay engine-confined.
func (s *Switch) RegisterPortProbes(r *stats.Registry, prefix string, i int) {
	p := s.ports[i]
	p.up.RegisterProbes(r, fmt.Sprintf("%sport%d.up.", prefix, p.id))
	p.down.RegisterProbes(r, fmt.Sprintf("%sport%d.down.", prefix, p.id))
}

// RegisterCoreProbes exposes the shared core link's counters under
// prefix (a no-op for non-blocking fabrics). Sharded clusters call this
// against the core-owning shard's registry.
func (s *Switch) RegisterCoreProbes(r *stats.Registry, prefix string) {
	if s.core != nil {
		s.core.RegisterProbes(r, prefix+"core.")
	}
}
