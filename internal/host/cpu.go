package host

import "fastsafe/internal/sim"

// Core models one CPU core as a serialised work queue: driver and network
// stack work items execute FIFO, each consuming the CPU time its work
// function reports. Per-core utilisation feeds the CPU-bottleneck analysis
// of §4.4 (Figure 8a's F&S gap at large ring sizes).
type Core struct {
	eng     *sim.Engine
	queue   []coreItem
	running bool
	busy    sim.Duration // accumulated busy time
}

type coreItem struct {
	work func() sim.Duration
	done func()
}

// NewCore returns an idle core.
func NewCore(eng *sim.Engine) *Core { return &Core{eng: eng} }

// Do enqueues work. work runs when the core reaches it and returns the CPU
// time consumed; done (optional) fires after that time has elapsed.
func (c *Core) Do(work func() sim.Duration, done func()) {
	c.queue = append(c.queue, coreItem{work, done})
	if !c.running {
		c.running = true
		c.eng.After(0, c.drain)
	}
}

func (c *Core) drain() {
	if len(c.queue) == 0 {
		c.running = false
		return
	}
	item := c.queue[0]
	c.queue = c.queue[1:]
	cost := item.work()
	if cost < 0 {
		cost = 0
	}
	c.busy += cost
	c.eng.After(cost, func() {
		if item.done != nil {
			item.done()
		}
		c.drain()
	})
}

// BusyTime returns the total CPU time consumed so far.
func (c *Core) BusyTime() sim.Duration { return c.busy }

// QueueLen returns the number of pending work items.
func (c *Core) QueueLen() int { return len(c.queue) }

// Busy reports whether the core is currently executing work.
func (c *Core) Busy() bool { return c.running }

// Wire models one direction of the 100Gbps network path between the two
// hosts: a single-server serialisation queue (the sender NIC egress /
// switch port) followed by a fixed propagation delay. The egress queue
// marks ECN above a threshold, as the DCTCP-enabled switch in the paper's
// testbed does — when the receiver's PCIe is not the bottleneck, this is
// where the standing queue lives.
type Wire struct {
	eng       *sim.Engine
	gbps      float64
	prop      sim.Duration
	ecnK      int // marking threshold in averaged queued bytes (0 = never mark)
	busyUntil sim.Time
	bytes     int64
	packets   int64
	marked    int64

	// Marking uses an exponentially-weighted moving average of the
	// backlog (time constant ecnTau) so transient ACK-clocked bursts pass
	// unmarked while standing queues mark — switches average similarly,
	// and without this the simulation marks on every burst and DCTCP
	// shadows bottlenecks it cannot actually see.
	avgBacklog float64
	lastSample sim.Time
}

// ecnTau is the backlog-averaging time constant.
const ecnTau = 20 * sim.Microsecond

// NewWire returns a wire with the given line rate and one-way propagation.
func NewWire(eng *sim.Engine, gbps float64, prop sim.Duration) *Wire {
	return &Wire{eng: eng, gbps: gbps, prop: prop}
}

// SetECN enables ECN marking when the egress backlog exceeds k bytes.
func (w *Wire) SetECN(k int) { w.ecnK = k }

// Backlog returns the bytes currently queued for serialisation.
func (w *Wire) Backlog() int {
	now := w.eng.Now()
	if w.busyUntil <= now {
		return 0
	}
	return int(float64(w.busyUntil-now) * w.gbps / 8)
}

// Send serialises a packet onto the wire; deliver fires at the far end
// with the packet's ECN mark.
func (w *Wire) Send(bytes int, deliver func(ecn bool)) {
	now := w.eng.Now()
	if dt := now - w.lastSample; dt > 0 {
		// Discrete-time EWMA: decay toward the instantaneous backlog.
		alpha := float64(dt) / float64(dt+ecnTau)
		w.avgBacklog += (float64(w.Backlog()) - w.avgBacklog) * alpha
		w.lastSample = now
	}
	ecn := w.ecnK > 0 && w.avgBacklog > float64(w.ecnK)
	if ecn {
		w.marked++
	}
	start := w.eng.Now()
	if w.busyUntil > start {
		start = w.busyUntil
	}
	ser := sim.Duration(float64(bytes) * 8 / w.gbps)
	w.busyUntil = start + ser
	w.bytes += int64(bytes)
	w.packets++
	w.eng.At(w.busyUntil+w.prop, func() { deliver(ecn) })
}

// Bytes returns the total bytes sent.
func (w *Wire) Bytes() int64 { return w.bytes }

// Marked returns the number of ECN-marked packets.
func (w *Wire) Marked() int64 { return w.marked }
