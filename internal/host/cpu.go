package host

import (
	"fastsafe/internal/fabric"
	"fastsafe/internal/sim"
)

// Core models one CPU core as a serialised work queue: driver and network
// stack work items execute FIFO, each consuming the CPU time its work
// function reports. Per-core utilisation feeds the CPU-bottleneck analysis
// of §4.4 (Figure 8a's F&S gap at large ring sizes).
type Core struct {
	eng     *sim.Engine
	queue   []coreItem
	running bool
	busy    sim.Duration // accumulated busy time
}

type coreItem struct {
	work func() sim.Duration
	done func()
}

// NewCore returns an idle core.
func NewCore(eng *sim.Engine) *Core { return &Core{eng: eng} }

// Do enqueues work. work runs when the core reaches it and returns the CPU
// time consumed; done (optional) fires after that time has elapsed.
func (c *Core) Do(work func() sim.Duration, done func()) {
	c.queue = append(c.queue, coreItem{work, done})
	if !c.running {
		c.running = true
		c.eng.After(0, c.drain)
	}
}

func (c *Core) drain() {
	if len(c.queue) == 0 {
		c.running = false
		return
	}
	item := c.queue[0]
	c.queue = c.queue[1:]
	cost := item.work()
	if cost < 0 {
		cost = 0
	}
	c.busy += cost
	c.eng.After(cost, func() {
		if item.done != nil {
			item.done()
		}
		c.drain()
	})
}

// BusyTime returns the total CPU time consumed so far.
func (c *Core) BusyTime() sim.Duration { return c.busy }

// QueueLen returns the number of pending work items.
func (c *Core) QueueLen() int { return len(c.queue) }

// Busy reports whether the core is currently executing work.
func (c *Core) Busy() bool { return c.running }

// Wire is one direction of the network path between two hosts — a
// fabric.Link used point-to-point. The single-host experiments connect
// the detailed local host to its abstract remote through one Wire per
// direction (the degenerate two-node fabric); clusters route the same
// packets through fabric.Switch ports instead.
type Wire = fabric.Link

// NewWire returns a wire with the given line rate and one-way propagation.
func NewWire(eng *sim.Engine, gbps float64, prop sim.Duration) *Wire {
	return fabric.NewLink(eng, gbps, prop)
}
