package host

import (
	"fmt"

	"fastsafe/internal/core"
	"fastsafe/internal/fabric"
	"fastsafe/internal/nic"
	"fastsafe/internal/sim"
	"fastsafe/internal/transport"
)

// Peer-to-peer bulk flows between two detailed hosts on a fabric. Unlike
// the legacy rxFlow/txFlow pairs — whose far end is the abstract remote
// host with an infinitely fast CPU and no IOMMU — a peerFlow's endpoints
// are both full hosts: the sender pays stack CPU, Tx map/unmap and Tx
// DMA translation on its own IOMMU; the receiver pays Rx DMA translation,
// stack CPU and ACK-generation costs on its own. Every packet (data and
// ACKs alike) crosses the switched fabric through the hosts' ports.

// peerFlow couples a DCTCP sender on one host with a receiver on another.
type peerFlow struct {
	id  int // cluster-wide flow index
	mtu int

	src, dst         *netDev
	srcCPU, dstCPU   int // device-local core indices
	srcPort, dstPort *fabric.Port

	snd *transport.Sender   // runs on src
	rcv *transport.Receiver // runs on dst

	start sim.Time // staggered first pump

	// sendQueued bounds the CPU-queue work outstanding for this flow.
	sendQueued int
	flushArmed bool // delayed-ACK timer pending at dst
}

// Payload types carried in nic.Packet.Payload across the fabric.
type peerData struct { // bulk data, src -> dst
	flow *peerFlow
	seq  int64
}
type peerAck struct { // ACK, dst -> src
	flow *peerFlow
	ack  transport.Ack
}

// ConnectPeer wires a bulk flow from this host to dst through the given
// fabric ports. Call before Start; the Cluster does this for every
// (src, dst) pair its traffic pattern names. srcCPU/dstCPU are
// device-local core indices on the primary NICs of the two hosts.
func (h *Host) ConnectPeer(dst *Host, srcPort, dstPort *fabric.Port, id, srcCPU, dstCPU int, start sim.Time) *peerFlow {
	f := &peerFlow{
		id:      id,
		mtu:     h.net.spec.MTU,
		src:     h.net,
		dst:     dst.net,
		srcCPU:  srcCPU,
		dstCPU:  dstCPU,
		srcPort: srcPort,
		dstPort: dstPort,
		snd:     transport.NewSender(h.cfg.Transport),
		rcv:     transport.NewReceiver(h.cfg.Transport),
		start:   start,
	}
	f.snd.Bind(transport.Endpoint{Host: h.cfg.HostID, Peer: dst.cfg.HostID})
	f.rcv.Bind(transport.Endpoint{Host: dst.cfg.HostID, Peer: h.cfg.HostID})
	h.net.peerTx = append(h.net.peerTx, f)
	dst.net.peerRx = append(dst.net.peerRx, f)
	if h.tele != nil {
		f.snd.RegisterProbes(h.tele.reg, h.tele.name(fmt.Sprintf("%s.peerflow%d.", h.net.name, id)))
	}
	return f
}

// pumpPeerFlow lets the local sender of flow f enqueue packets while its
// window allows: each transmission costs stack CPU plus the Tx mapping,
// then a NIC Tx DMA, then the fabric. Runs on f.src's host.
func (n *netDev) pumpPeerFlow(f *peerFlow) {
	for f.snd.CanSend() && f.sendQueued < 64 {
		seq, _ := f.snd.NextSend()
		f.snd.OnSent(seq, n.h.eng.Now())
		f.sendQueued++
		seg := peerData{flow: f, seq: seq}
		var m *core.TxMapping
		n.h.core(n.cpuBase+f.srcCPU).Do(func() sim.Duration {
			var cost sim.Duration = n.h.cfg.StackCost
			tm, mc, err := n.dom.MapTx(f.srcCPU, n.mtuPages())
			if err != nil {
				panic(fmt.Sprintf("host: MapTx(peer): %v", err))
			}
			m = tm
			return cost + mc
		}, func() {
			f.sendQueued--
			n.dev.SendTx(nic.Packet{CPU: f.srcCPU, Bytes: f.mtu, Payload: seg}, m)
		})
	}
}

// sendPeerAck emits an ACK for peer flow f from the receiving host: CPU
// work to build and map it, a NIC Tx DMA, then the fabric back to the
// sender. Runs on f.dst's host.
func (n *netDev) sendPeerAck(f *peerFlow, ack transport.Ack) {
	var m *core.TxMapping
	n.h.core(n.cpuBase+f.dstCPU).Do(func() sim.Duration {
		tm, mc, err := n.dom.MapTx(f.dstCPU, 1)
		if err != nil {
			panic(fmt.Sprintf("host: MapTx(peer ack): %v", err))
		}
		m = tm
		n.c.acksSent++
		return n.h.cfg.AckTxCost + mc
	}, func() {
		n.dev.SendTx(nic.Packet{CPU: f.dstCPU, Bytes: 64, Payload: peerAck{f, ack}}, m)
	})
}

// armPeerFlush schedules a delayed-ACK flush at the receiving host.
func (n *netDev) armPeerFlush(f *peerFlow) {
	if f.flushArmed {
		return
	}
	f.flushArmed = true
	n.h.eng.After(n.h.cfg.DelAck, func() {
		f.flushArmed = false
		if ack := f.rcv.FlushAck(); ack != nil {
			n.sendPeerAck(f, *ack)
		}
	})
}

// peerDataDelivered handles a bulk segment whose Rx DMA into the
// receiving host's memory completed.
func (n *netDev) peerDataDelivered(pkt nic.Packet, p peerData) {
	f := p.flow
	h := n.h
	irq := h.irqCost(n.cpuBase + f.dstCPU)
	var pendingAck *transport.Ack
	h.core(n.cpuBase+f.dstCPU).Do(func() sim.Duration {
		cost := irq + n.stackCost()
		delivered, ack := f.rcv.OnData(p.seq, pkt.ECN)
		bytes := delivered * int64(f.mtu)
		// Goodput lands at the receiver; the sender's Tx accounting
		// mirrors it (delivery is what the paper's goodput counts).
		n.c.rxDeliveredBytes += bytes
		n.creditPeerTx(f.src, bytes)
		pendingAck = ack
		return cost
	}, func() {
		if pendingAck != nil {
			n.sendPeerAck(f, *pendingAck)
		} else {
			n.armPeerFlush(f)
		}
	})
}

// creditPeerTx mirrors delivered peer-flow bytes into the sending host's
// Tx accounting. Same-engine clusters apply it inline — exactly the
// legacy behaviour. Sharded clusters post it to the sender's shard, where
// it lands at the next synchronization barrier: the increment is
// commutative bookkeeping whose timing only mid-window sampler reads can
// observe, never simulated behaviour, and every post is drained before a
// window's clocks align, so Results are unchanged.
func (n *netDev) creditPeerTx(src *netDev, bytes int64) {
	if bytes == 0 {
		return
	}
	if post := n.h.shardPost; post != nil {
		post(src.h, func() { src.c.txDeliveredBytes += bytes })
		return
	}
	src.c.txDeliveredBytes += bytes
}

// peerAckDelivered handles an ACK whose Rx DMA into the sending host's
// memory completed.
func (n *netDev) peerAckDelivered(p peerAck) {
	f := p.flow
	h := n.h
	h.core(n.cpuBase+f.srcCPU).Do(func() sim.Duration {
		f.snd.OnAck(p.ack, h.eng.Now())
		return h.cfg.AckRxCost
	}, func() {
		n.pumpPeerFlow(f)
	})
}

// peerTxDone routes a transmitted bulk segment onto the fabric toward
// the receiving host (the Tx DMA on the sending host just completed).
func (n *netDev) peerTxDone(pkt nic.Packet, p peerData) {
	f := p.flow
	f.srcPort.Send(f.dstPort.ID(), pkt.Bytes, func(ecn bool) {
		f.dst.dev.Arrive(nic.Packet{CPU: f.dstCPU, Bytes: pkt.Bytes, ECN: ecn, Payload: p})
	})
}

// peerAckTxDone routes a transmitted ACK onto the fabric back toward the
// sending host.
func (n *netDev) peerAckTxDone(pkt nic.Packet, p peerAck) {
	f := p.flow
	f.dstPort.Send(f.srcPort.ID(), pkt.Bytes, func(ecn bool) {
		f.src.dev.Arrive(nic.Packet{CPU: f.srcCPU, Bytes: pkt.Bytes, ECN: ecn, Payload: p})
	})
}
