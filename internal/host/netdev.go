package host

import (
	"fmt"

	"fastsafe/internal/ats"
	"fastsafe/internal/core"
	"fastsafe/internal/device"
	"fastsafe/internal/nic"
	"fastsafe/internal/pcie"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
	"fastsafe/internal/transport"
)

// The NIC reference implementation of device.Device: the full §2.1
// network datapath — rings, Rx/Tx PCIe links, wire pair to an abstract
// remote host, DCTCP bulk flows — packaged so a Topology can attach any
// number of them to one host, each with its own protection domain over
// the shared IOMMU.

// NICSpec configures one NIC device in a Topology. Zero fields inherit
// the host Config's corresponding value; Mode is a pointer so that an
// explicit Off (a bypass device) is distinguishable from "inherit".
type NICSpec struct {
	Mode        *core.Mode // protection mode (nil = host Config.Mode)
	Cores       int        // cores serving bulk Rx flows
	RxFlows     int        // bulk flows in (-1 = none, 0 = Cores)
	TxFlows     int        // bulk flows out, one extra core each
	MTU         int        // data packet payload
	RingPackets int        // Rx ring strides per core
	LinkGbps    float64    // line rate of this NIC's wire pair
	// PeerSlots provisions extra Tx cores (and per-CPU IOVA magazines) for
	// cluster peer flows originating at this NIC. 0 — the single-host
	// default — changes nothing: core counts and cache layouts stay
	// bit-for-bit identical to the pre-fabric host.
	PeerSlots int
}

// resolve fills zero fields from the host config.
func (s NICSpec) resolve(cfg Config) NICSpec {
	if s.Cores <= 0 {
		s.Cores = cfg.Cores
	}
	if s.RxFlows < 0 {
		s.RxFlows = 0
	} else if s.RxFlows == 0 {
		s.RxFlows = s.Cores
	}
	if s.TxFlows < 0 {
		s.TxFlows = 0
	}
	if s.MTU <= 0 {
		s.MTU = cfg.MTU
	}
	if s.RingPackets <= 0 {
		s.RingPackets = cfg.RingPackets
	}
	if s.LinkGbps <= 0 {
		s.LinkGbps = cfg.LinkGbps
	}
	if s.PeerSlots < 0 {
		s.PeerSlots = 0
	}
	return s
}

// rxFlow couples a remote DCTCP sender with a local receiver.
type rxFlow struct {
	id         int
	cpu        int                 // device-local core index
	snd        *transport.Sender   // remote end
	rcv        *transport.Receiver // local end
	flushArmed bool                // delayed-ACK timer pending
}

// txFlow couples a local DCTCP sender with a remote receiver.
type txFlow struct {
	id  int
	cpu int                 // device-local core index
	snd *transport.Sender   // local end
	rcv *transport.Receiver // remote end
	// sendQueued bounds the CPU-queue work outstanding for this flow.
	sendQueued int
	flushArmed bool // delayed-ACK timer pending at the remote receiver
}

// Payload types carried in nic.Packet.Payload.
type dataSeg struct { // remote -> local bulk data
	flow int
	seq  int64
}
type ackOut struct { // local ACK leaving for the remote sender
	flow int
	ack  transport.Ack
}
type txData struct { // local bulk data leaving for the remote receiver
	flow int
	seq  int64
}
type txAckIn struct { // remote ACK arriving for a local sender
	flow int
	ack  transport.Ack
}

// counters that the snapshot mechanism diffs across the warmup boundary.
type hostCounters struct {
	rxDeliveredBytes int64 // in-order transport deliveries into the local host
	txDeliveredBytes int64 // local bulk data delivered in-order at the remote
	acksSent         int64 // ACK packets generated locally
}

// netDev is one NIC attached to the host. Flow cpu indices are
// device-local (0-based); cpuBase maps them onto host cores, so the
// primary NIC (cpuBase 0) keeps the legacy core layout and additional
// NICs land on their own core range.
type netDev struct {
	h       *Host
	name    string
	spec    NICSpec
	mode    core.Mode
	cpuBase int
	seedOff int64
	primary bool

	dom    *core.Domain
	rx, tx *pcie.Link
	dev    *nic.NIC

	toLocal  *Wire // remote -> local
	toRemote *Wire // local -> remote

	rxFlows []*rxFlow
	txFlows []*txFlow

	// Cluster peer flows (see peer.go): peerTx holds flows whose sender
	// lives on this host, peerRx flows whose receiver does. Both empty in
	// single-host runs.
	peerTx []*peerFlow
	peerRx []*peerFlow

	// One-sided RDMA flows (see rdma.go): rdmaTx holds flows whose data
	// source is this host, rdmaRx flows whose sink window is.
	rdmaTx []*rdmaFlow
	rdmaRx []*rdmaFlow

	lastDeferredFlush sim.Time

	c hostCounters
}

// netExec lets the NIC schedule driver work on host cores, offsetting
// the device-local ring index by the device's core base.
type netExec struct{ n *netDev }

func (e netExec) Do(cpu int, work func() sim.Duration, done func()) {
	e.n.h.core(e.n.cpuBase+cpu).Do(work, done)
}

// Name implements device.Device.
func (n *netDev) Name() string { return n.name }

// Kind implements device.Device.
func (n *netDev) Kind() string { return "nic" }

// Domain implements device.Device.
func (n *netDev) Domain() *core.Domain { return n.dom }

// Stats implements device.Device: bulk payload delivered in order on
// either side of this NIC's wire pair.
func (n *netDev) Stats() device.Stats {
	st := n.dev.Stats()
	return device.Stats{
		Ops:   st.RxDMAs + st.TxDMAs,
		Bytes: n.c.rxDeliveredBytes + n.c.txDeliveredBytes,
	}
}

// Attach implements device.Device. The NIC datapath needs the concrete
// host (cores, config, message dispatch), not just the device.Host
// surface.
func (n *netDev) Attach(dh device.Host) error {
	h, ok := dh.(*Host)
	if !ok {
		return fmt.Errorf("host: netDev must attach to *host.Host, got %T", dh)
	}
	n.h = h
	cfg := h.cfg
	dom, err := h.NewDomain(core.Config{
		Mode:            n.mode,
		NumCPUs:         n.spec.Cores + n.spec.TxFlows + n.spec.PeerSlots + 8, // slack for app cores
		DescriptorPages: cfg.DescriptorPages,
		Costs:           cfg.Costs,
		TxFreeCPUShift:  1,    // Tx-completion IRQ lands on a neighbouring core
		FreePoolSize:    8192, // app threads release buffers out of order
		// The primary NIC takes the IOMMU's default domain 0, keeping the
		// legacy single-NIC cache indexing bit-for-bit.
		DefaultDomain: n.primary,
		TraceL3:       cfg.Telemetry.TraceL3 && n.primary,
		TraceLimit:    cfg.Telemetry.TraceLimit,
		ATS:           ats.Config{Entries: cfg.ATSEntries},
	}, n.seedOff)
	if err != nil {
		return fmt.Errorf("host: %w", err)
	}
	n.dom = dom
	// The auditor re-walks device-cached translations too (nil-safe on
	// both sides: no auditor, or no ATC attached).
	h.aud.AttachATC(n.dom.ID(), n.dom.ATC())
	n.rx = h.NewLink()
	n.tx = h.NewLink()
	n.toLocal = NewWire(h.eng, n.spec.LinkGbps, cfg.PropDelay)
	n.toLocal.SetECN(cfg.ECNKBytes)
	n.toRemote = NewWire(h.eng, n.spec.LinkGbps, cfg.PropDelay)
	n.toRemote.SetECN(cfg.ECNKBytes)

	dev, err := nic.New(h.eng, nic.Config{
		Cores:       n.spec.Cores + n.spec.TxFlows + n.spec.PeerSlots + 8,
		MTU:         n.spec.MTU,
		RingPackets: n.spec.RingPackets,
		BufferBytes: cfg.NICBufferBytes,
		ECNKBytes:   -1, // ECN marks come from the switch, not the NIC
		// One-sided DMA terminates at the device, so its buffer is the
		// congestion point — mark there (the CNP analog) at the DCTCP K.
		DirectECNKBytes: cfg.ECNKBytes,
		Faults:          h.Faults().Device(n.dom),
	}, n.dom, n.rx, n.tx, netExec{n})
	if err != nil {
		return fmt.Errorf("host: %w", err)
	}
	n.dev = dev
	dev.OnDeliver = n.onDeliver
	dev.OnTxDone = n.onTxDone

	// Legacy bulk flows terminate at the abstract remote host: the local
	// state machine binds (host, AbstractPeer), its far end the mirror.
	local := transport.Endpoint{Host: h.cfg.HostID, Peer: transport.AbstractPeer}
	remote := transport.Endpoint{Host: transport.AbstractPeer, Peer: h.cfg.HostID}
	for i := 0; i < n.spec.RxFlows; i++ {
		f := &rxFlow{
			id:  i,
			cpu: i % n.spec.Cores,
			snd: transport.NewSender(cfg.Transport),
			rcv: transport.NewReceiver(cfg.Transport),
		}
		f.snd.Bind(remote)
		f.rcv.Bind(local)
		n.rxFlows = append(n.rxFlows, f)
	}
	for j := 0; j < n.spec.TxFlows; j++ {
		f := &txFlow{
			id:  j,
			cpu: n.spec.Cores + j,
			snd: transport.NewSender(cfg.Transport),
			rcv: transport.NewReceiver(cfg.Transport),
		}
		f.snd.Bind(local)
		f.rcv.Bind(remote)
		n.txFlows = append(n.txFlows, f)
	}
	return nil
}

// Start implements device.Device: launch the configured bulk flows.
func (n *netDev) Start() {
	for i, f := range n.rxFlows {
		f := f
		n.h.eng.At(sim.Time(i)*sim.Microsecond, func() { n.pumpRxFlow(f) })
	}
	for j, f := range n.txFlows {
		f := f
		n.h.eng.At(sim.Time(j)*sim.Microsecond, func() { n.pumpTxFlow(f) })
	}
	for _, f := range n.peerTx {
		f := f
		n.h.eng.At(f.start, func() { n.pumpPeerFlow(f) })
	}
	// WRITE streams from the source at start; READ first posts the work
	// request from the initiating sink, which kicks the source remotely.
	for _, f := range n.rdmaTx {
		f := f
		if f.op != transport.Read {
			n.h.eng.At(f.start, func() { n.pumpRdmaFlow(f) })
		}
	}
	for _, f := range n.rdmaRx {
		f := f
		if f.op == transport.Read {
			n.h.eng.At(f.start, func() { n.postRdmaRead(f) })
		}
	}
}

// mtuPages returns pages per MTU stride of this NIC.
func (n *netDev) mtuPages() int { return (n.spec.MTU + ptable.PageSize - 1) / ptable.PageSize }

// stackCost returns the per-packet network-stack CPU cost, inflated for
// large rings (prefetcher inefficiency, §4.4).
func (n *netDev) stackCost() sim.Duration {
	c := float64(n.h.cfg.StackCost)
	ring := float64(n.spec.RingPackets)
	for r := 256.0; r < ring; r *= 2 {
		c += float64(n.h.cfg.StackCost) * n.h.cfg.RingCPUFactor
	}
	return sim.Duration(c)
}

// flowHousekeeping fires RTO checks and delayed-ACK flushes for this
// NIC's flows.
func (n *netDev) flowHousekeeping(now sim.Time) {
	for _, f := range n.rxFlows {
		if f.snd.MaybeTimeout(now) {
			n.pumpRxFlow(f)
		}
		if ack := f.rcv.FlushAck(); ack != nil {
			n.sendLocalAck(f.cpu, f.id, *ack)
		}
	}
	for _, f := range n.txFlows {
		if f.snd.MaybeTimeout(now) {
			n.pumpTxFlow(f)
		}
		if ack := f.rcv.FlushAck(); ack != nil {
			n.remoteAckToLocal(f, *ack)
		}
	}
	for _, f := range n.peerTx {
		if f.snd.MaybeTimeout(now) {
			n.pumpPeerFlow(f)
		}
	}
	for _, f := range n.peerRx {
		if ack := f.rcv.FlushAck(); ack != nil {
			n.sendPeerAck(f, *ack)
		}
	}
	for _, f := range n.rdmaTx {
		if f.snd.MaybeTimeout(now) {
			n.pumpRdmaFlow(f)
		}
	}
	for _, f := range n.rdmaRx {
		if ack := f.rcv.FlushAck(); ack != nil {
			n.sendRdmaAck(f, *ack)
		}
	}
}

// deferredFlush is the deferred-mode timer flush of this NIC's domain.
// Linux lazy mode also flushes on a timer, not just the 256-entry
// threshold (10ms in the kernel); the period is a runtime knob.
func (n *netDev) deferredFlush(now sim.Time) {
	if now-n.lastDeferredFlush >= n.dom.Knobs().FlushInterval {
		n.lastDeferredFlush = now
		if cost := n.dom.FlushDeferred(); cost > 0 {
			n.h.core(n.cpuBase).Do(func() sim.Duration { return cost }, nil)
		}
	}
}

// pumpRxFlow lets the remote sender of flow f transmit while its window
// allows. The remote host's CPU is not modelled (it is never the
// bottleneck in the paper's receive-side experiments).
func (n *netDev) pumpRxFlow(f *rxFlow) {
	for f.snd.CanSend() {
		seq, _ := f.snd.NextSend()
		f.snd.OnSent(seq, n.h.eng.Now())
		seg := dataSeg{flow: f.id, seq: seq}
		n.toLocal.Send(n.spec.MTU, func(ecn bool) {
			n.dev.Arrive(nic.Packet{CPU: f.cpu, Bytes: n.spec.MTU, ECN: ecn, Payload: seg})
		})
	}
}

// pumpTxFlow lets a local sender enqueue packets: each transmission costs
// CPU (stack + Tx mapping) and then a NIC Tx DMA.
func (n *netDev) pumpTxFlow(f *txFlow) {
	for f.snd.CanSend() && f.sendQueued < 64 {
		seq, _ := f.snd.NextSend()
		f.snd.OnSent(seq, n.h.eng.Now())
		f.sendQueued++
		seg := txData{flow: f.id, seq: seq}
		var m *core.TxMapping
		n.h.core(n.cpuBase+f.cpu).Do(func() sim.Duration {
			var cost sim.Duration = n.h.cfg.StackCost
			tm, mc, err := n.dom.MapTx(f.cpu, n.mtuPages())
			if err != nil {
				panic(fmt.Sprintf("host: MapTx: %v", err))
			}
			m = tm
			return cost + mc
		}, func() {
			f.sendQueued--
			n.dev.SendTx(nic.Packet{CPU: f.cpu, Bytes: n.spec.MTU, Payload: seg}, m)
		})
	}
}

// armRxFlush schedules a delayed-ACK flush for a local receiver, modelling
// the ACK a real stack emits at the end of a NAPI batch.
func (n *netDev) armRxFlush(f *rxFlow) {
	if f.flushArmed {
		return
	}
	f.flushArmed = true
	n.h.eng.After(n.h.cfg.DelAck, func() {
		f.flushArmed = false
		if ack := f.rcv.FlushAck(); ack != nil {
			n.sendLocalAck(f.cpu, f.id, *ack)
		}
	})
}

// armTxFlush is armRxFlush's counterpart at the abstract remote receiver.
func (n *netDev) armTxFlush(f *txFlow) {
	if f.flushArmed {
		return
	}
	f.flushArmed = true
	n.h.eng.After(n.h.cfg.DelAck, func() {
		f.flushArmed = false
		if ack := f.rcv.FlushAck(); ack != nil {
			n.remoteAckToLocal(f, *ack)
		}
	})
}

// sendLocalAck emits an ACK for rx flow id from the device-local core
// cpu: CPU work to build and map it, then a NIC Tx DMA.
func (n *netDev) sendLocalAck(cpu, flow int, ack transport.Ack) {
	var m *core.TxMapping
	n.h.core(n.cpuBase+cpu).Do(func() sim.Duration {
		tm, mc, err := n.dom.MapTx(cpu, 1)
		if err != nil {
			panic(fmt.Sprintf("host: MapTx(ack): %v", err))
		}
		m = tm
		n.c.acksSent++
		return n.h.cfg.AckTxCost + mc
	}, func() {
		n.dev.SendTx(nic.Packet{CPU: cpu, Bytes: 64, Payload: ackOut{flow, ack}}, m)
	})
}

// remoteAckToLocal carries a remote receiver's ACK back into the local
// host, where it arrives like any other packet (through the Rx datapath).
func (n *netDev) remoteAckToLocal(f *txFlow, ack transport.Ack) {
	n.toLocal.Send(64, func(bool) {
		n.dev.Arrive(nic.Packet{CPU: f.cpu, Bytes: 64, Payload: txAckIn{f.id, ack}})
	})
}

// onDeliver handles a packet whose DMA into local memory completed.
func (n *netDev) onDeliver(pkt nic.Packet) {
	h := n.h
	// Memory traffic: the DMA write (unless DDIO lands it in LLC) plus the
	// stack/application copying the payload in and out.
	if !h.cfg.DDIO {
		h.bus.Consume(pkt.Bytes)
	}
	// One-sided writes land in application memory with no stack or
	// application copy; everything else pays the copy in and out.
	if _, oneSided := pkt.Payload.(rdmaData); !oneSided {
		h.bus.Consume(2 * pkt.Bytes)
	}
	switch p := pkt.Payload.(type) {
	case dataSeg:
		f := n.rxFlows[p.flow]
		irq := h.irqCost(n.cpuBase + f.cpu)
		var pendingAck *transport.Ack
		h.core(n.cpuBase+f.cpu).Do(func() sim.Duration {
			cost := irq + n.stackCost()
			delivered, ack := f.rcv.OnData(p.seq, pkt.ECN)
			n.c.rxDeliveredBytes += delivered * int64(n.spec.MTU)
			pendingAck = ack
			return cost
		}, func() {
			if pendingAck != nil {
				n.sendLocalAck(f.cpu, f.id, *pendingAck)
			} else {
				n.armRxFlush(f)
			}
		})

	case txAckIn:
		f := n.txFlows[p.flow]
		h.core(n.cpuBase+f.cpu).Do(func() sim.Duration {
			f.snd.OnAck(p.ack, h.eng.Now())
			return h.cfg.AckRxCost
		}, func() {
			n.pumpTxFlow(f)
		})

	case peerData:
		n.peerDataDelivered(pkt, p)

	case peerAck:
		n.peerAckDelivered(p)

	case rdmaData:
		n.rdmaDataDelivered(pkt, p)

	case msgSeg:
		h.msgs.onDeliver(pkt, p)

	case serveSeg:
		h.serve.onDeliver(pkt, p)

	default:
		panic(fmt.Sprintf("host: unknown Rx payload %T", pkt.Payload))
	}
}

// onTxDone handles completion of a local Tx DMA: the driver unmaps the
// buffer (strict safety) and the packet goes onto the wire.
func (n *netDev) onTxDone(pkt nic.Packet, m *core.TxMapping) {
	h := n.h
	if !h.cfg.DDIO {
		h.bus.Consume(pkt.Bytes) // the DMA read
	}
	if m != nil {
		h.core(n.cpuBase+pkt.CPU).Do(func() sim.Duration {
			cost, err := n.dom.UnmapTx(m)
			if err != nil {
				panic(fmt.Sprintf("host: UnmapTx: %v", err))
			}
			return cost
		}, nil)
	}
	switch p := pkt.Payload.(type) {
	case ackOut:
		f := n.rxFlows[p.flow]
		n.toRemote.Send(pkt.Bytes, func(bool) {
			f.snd.OnAck(p.ack, h.eng.Now())
			n.pumpRxFlow(f)
		})

	case txData:
		f := n.txFlows[p.flow]
		n.toRemote.Send(pkt.Bytes, func(ecn bool) {
			delivered, ack := f.rcv.OnData(p.seq, ecn)
			n.c.txDeliveredBytes += delivered * int64(n.spec.MTU)
			if ack != nil {
				n.remoteAckToLocal(f, *ack)
			} else {
				n.armTxFlush(f)
			}
		})

	case peerData:
		n.peerTxDone(pkt, p)

	case peerAck:
		n.peerAckTxDone(pkt, p)

	case rdmaData:
		n.rdmaTxDone(pkt, p)

	case msgSeg:
		h.msgs.onTxDone(pkt, p)

	case serveSeg:
		h.serve.onTxDone(pkt, p)

	default:
		panic(fmt.Sprintf("host: unknown Tx payload %T", pkt.Payload))
	}
}
