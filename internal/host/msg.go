package host

import (
	"fmt"

	"fastsafe/internal/core"
	"fastsafe/internal/nic"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// Request/response machinery used by the latency-sensitive RPC experiment
// (Figure 9) and the real-application models (Figure 11: Redis, Nginx,
// SPDK). Messages are segmented into MTU-sized packets, reassembled at the
// far side, and re-sent wholesale on a timeout — the message layer has no
// congestion window (the apps are depth-limited closed loops).

// MsgPattern selects which side holds the bulk payload.
type MsgPattern int

const (
	// LocalServes: the remote client sends the request payload *into* the
	// local host (Rx-heavy there) and the local host answers with a small
	// response. Models a Redis SET server or an RPC server.
	LocalServes MsgPattern = iota
	// LocalClient: the local host sends a small request and receives the
	// bulk response (Rx-heavy locally). Models an Nginx/wrk or SPDK
	// client.
	LocalClient
)

// MsgConfig configures the request/response workload.
type MsgConfig struct {
	Pattern   MsgPattern
	Streams   int          // concurrent connections
	Depth     int          // outstanding requests per stream (pipelining)
	ReqBytes  int          // request payload
	RespBytes int          // response payload
	AppCPU    sim.Duration // local per-request application CPU
	Timeout   sim.Duration // lost-message resend timeout (default 5ms)
	Cores     int          // local cores the streams spread over (default host Cores)
	CoreBase  int          // first core index (default 0)
}

func (c MsgConfig) withDefaults(h *Host) MsgConfig {
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.Depth <= 0 {
		c.Depth = 1
	}
	if c.ReqBytes <= 0 {
		c.ReqBytes = 64
	}
	if c.RespBytes <= 0 {
		c.RespBytes = 64
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * sim.Millisecond
	}
	if c.Cores <= 0 {
		c.Cores = h.cfg.Cores
	}
	return c
}

// msgSeg is one segment of a message on the wire.
type msgSeg struct {
	stream int
	msg    int64
	idx    int
	count  int
	bytes  int
	req    bool // request vs response segment
}

// slotState tracks one outstanding request from the initiator's side.
type slotState struct {
	msg     int64
	start   sim.Time // first send (latency reference)
	lastTx  sim.Time // last (re)send, for the timeout
	retries int
}

type msgStream struct {
	id      int
	cpu     int
	nextMsg int64
	slots   map[int64]*slotState

	// Reassembly state, keyed by message id, on whichever side receives.
	localSeen  map[int64]map[int]bool
	remoteSeen map[int64]map[int]bool
	answered   map[int64]bool // LocalServes: requests already responded to
}

type msgApp struct {
	h   *Host
	cfg MsgConfig

	streams []*msgStream
	latency stats.Histogram

	completed      int64
	completedBytes int64
	inPayloadBytes int64 // payload bytes landed at the local host
	retries        int64
}

// InstallMessages attaches a request/response workload. Call before Start.
func (h *Host) InstallMessages(cfg MsgConfig) *msgApp {
	cfg = cfg.withDefaults(h)
	app := &msgApp{h: h, cfg: cfg}
	for s := 0; s < cfg.Streams; s++ {
		app.streams = append(app.streams, &msgStream{
			id:         s,
			cpu:        cfg.CoreBase + s%cfg.Cores,
			slots:      make(map[int64]*slotState),
			localSeen:  make(map[int64]map[int]bool),
			remoteSeen: make(map[int64]map[int]bool),
			answered:   make(map[int64]bool),
		})
	}
	h.msgs = app
	if h.tele != nil {
		// The workload owns the latency histogram; the registry shares the
		// same object so telemetry readers see identical quantiles.
		h.tele.reg.AddHistogram(h.tele.name("rpc.latency_ns"), &app.latency)
		h.tele.reg.GaugeFunc(h.tele.name("rpc.completed"), func() float64 { return float64(app.completed) })
		h.tele.reg.GaugeFunc(h.tele.name("rpc.retries"), func() float64 { return float64(app.retries) })
	}
	return app
}

// Latency returns the completion-latency histogram (ns), measured at the
// initiator.
func (a *msgApp) Latency() *stats.Histogram { return &a.latency }

// Completed returns the number of finished exchanges.
func (a *msgApp) Completed() int64 { return a.completed }

// start kicks off Depth outstanding requests on every stream.
func (a *msgApp) start() {
	for i, s := range a.streams {
		s := s
		a.h.eng.At(sim.Time(i)*sim.Microsecond, func() {
			for d := 0; d < a.cfg.Depth; d++ {
				a.initiate(s)
			}
		})
	}
}

func segCount(bytes, mtu int) int {
	n := (bytes + mtu - 1) / mtu
	if n < 1 {
		n = 1
	}
	return n
}

func segBytes(total, mtu, idx int) int {
	rem := total - idx*mtu
	if rem > mtu {
		return mtu
	}
	if rem < 64 {
		return 64 // minimum wire frame
	}
	return rem
}

// initiate opens a new request slot on stream s and sends the request.
func (a *msgApp) initiate(s *msgStream) {
	m := s.nextMsg
	s.nextMsg++
	now := a.h.eng.Now()
	s.slots[m] = &slotState{msg: m, start: now, lastTx: now}
	a.sendRequest(s, m)
}

// sendRequest transmits (or retransmits) the request segments of msg m.
func (a *msgApp) sendRequest(s *msgStream, m int64) {
	n := segCount(a.cfg.ReqBytes, a.h.cfg.MTU)
	switch a.cfg.Pattern {
	case LocalServes:
		// Remote client -> local server over the wire.
		for i := 0; i < n; i++ {
			seg := msgSeg{stream: s.id, msg: m, idx: i, count: n,
				bytes: segBytes(a.cfg.ReqBytes, a.h.cfg.MTU, i), req: true}
			a.h.net.toLocal.Send(seg.bytes, func(ecn bool) {
				a.h.net.dev.Arrive(nic.Packet{CPU: s.cpu, Bytes: seg.bytes, ECN: ecn, Payload: seg})
			})
		}
	case LocalClient:
		// Local client -> remote server: each segment costs CPU + Tx DMA.
		for i := 0; i < n; i++ {
			seg := msgSeg{stream: s.id, msg: m, idx: i, count: n,
				bytes: segBytes(a.cfg.ReqBytes, a.h.cfg.MTU, i), req: true}
			a.sendLocalSeg(s, seg)
		}
	}
}

// sendLocalSeg maps and transmits one locally-originated segment.
func (a *msgApp) sendLocalSeg(s *msgStream, seg msgSeg) {
	pages := (seg.bytes + 4095) / 4096
	var m *core.TxMapping
	a.h.core(s.cpu).Do(func() sim.Duration {
		tm, mc, err := a.h.net.dom.MapTx(s.cpu, pages)
		if err != nil {
			panic(fmt.Sprintf("host: MapTx(msg): %v", err))
		}
		m = tm
		return a.h.cfg.AckTxCost + mc
	}, func() {
		a.h.net.dev.SendTx(nic.Packet{CPU: s.cpu, Bytes: seg.bytes, Payload: seg}, m)
	})
}

// onDeliver handles a message segment DMA'd into local memory.
func (a *msgApp) onDeliver(pkt nic.Packet, seg msgSeg) {
	s := a.streams[seg.stream]
	a.h.core(s.cpu).Do(func() sim.Duration {
		cost := a.h.net.stackCost()
		switch a.cfg.Pattern {
		case LocalServes:
			if !seg.req {
				panic("host: response segment delivered to serving host")
			}
			if s.answered[seg.msg] {
				// Duplicate of an already-served request: re-answer once
				// the tail segment shows up (the response may be lost).
				if seg.idx == seg.count-1 {
					cost += a.respond(s, seg.msg)
				}
				return cost
			}
			if a.assemble(s.localSeen, seg) {
				s.answered[seg.msg] = true
				a.inPayloadBytes += int64(a.cfg.ReqBytes)
				cost += a.cfg.AppCPU
				cost += a.respond(s, seg.msg)
			}
		case LocalClient:
			if seg.req {
				panic("host: request segment delivered to requesting host")
			}
			slot, ok := s.slots[seg.msg]
			if !ok {
				return cost // stale segment of a completed exchange
			}
			if a.assemble(s.localSeen, seg) {
				a.inPayloadBytes += int64(a.cfg.RespBytes)
				cost += a.cfg.AppCPU
				a.complete(s, slot, int64(a.cfg.RespBytes))
			}
		}
		return cost
	}, nil)
}

// assemble records a segment, reporting true when the message is complete.
// Completed messages are pruned so duplicates don't re-trigger.
func (a *msgApp) assemble(seen map[int64]map[int]bool, seg msgSeg) bool {
	set := seen[seg.msg]
	if set == nil {
		set = make(map[int]bool)
		seen[seg.msg] = set
	}
	set[seg.idx] = true
	if len(set) == seg.count {
		delete(seen, seg.msg)
		return true
	}
	return false
}

// respond sends the response for msg m from the local host (LocalServes).
// Returns the CPU cost of queueing (mapping costs are charged per segment
// by sendLocalSeg).
func (a *msgApp) respond(s *msgStream, m int64) sim.Duration {
	n := segCount(a.cfg.RespBytes, a.h.cfg.MTU)
	for i := 0; i < n; i++ {
		seg := msgSeg{stream: s.id, msg: m, idx: i, count: n,
			bytes: segBytes(a.cfg.RespBytes, a.h.cfg.MTU, i), req: false}
		a.sendLocalSeg(s, seg)
	}
	return 0
}

// onTxDone routes a locally-sent segment onto the wire toward the remote.
func (a *msgApp) onTxDone(pkt nic.Packet, seg msgSeg) {
	s := a.streams[seg.stream]
	a.h.net.toRemote.Send(pkt.Bytes, func(bool) {
		a.remoteReceive(s, seg)
	})
}

// remoteReceive is the abstract remote host's side: it assembles segments
// instantly, answers requests (LocalClient) or completes exchanges
// (LocalServes).
func (a *msgApp) remoteReceive(s *msgStream, seg msgSeg) {
	switch a.cfg.Pattern {
	case LocalServes:
		if seg.req {
			panic("host: request segment arrived back at remote client")
		}
		slot, ok := s.slots[seg.msg]
		if !ok {
			return // stale response for a completed exchange
		}
		if a.assemble(s.remoteSeen, seg) {
			a.complete(s, slot, int64(a.cfg.ReqBytes))
		}
	case LocalClient:
		if !seg.req {
			panic("host: response segment arrived at remote server")
		}
		if a.assemble(s.remoteSeen, seg) {
			// Remote server answers instantly with the bulk response.
			n := segCount(a.cfg.RespBytes, a.h.cfg.MTU)
			for i := 0; i < n; i++ {
				rseg := msgSeg{stream: s.id, msg: seg.msg, idx: i, count: n,
					bytes: segBytes(a.cfg.RespBytes, a.h.cfg.MTU, i), req: false}
				a.h.net.toLocal.Send(rseg.bytes, func(ecn bool) {
					a.h.net.dev.Arrive(nic.Packet{CPU: s.cpu, Bytes: rseg.bytes, ECN: ecn, Payload: rseg})
				})
			}
		}
	}
}

// complete finishes one exchange: record latency, free the slot, start the
// next request.
func (a *msgApp) complete(s *msgStream, slot *slotState, payload int64) {
	a.latency.Observe(int64(a.h.eng.Now() - slot.start))
	a.completed++
	a.completedBytes += payload
	delete(s.slots, slot.msg)
	delete(s.answered, slot.msg)
	a.initiate(s)
}

// housekeeping retries requests whose exchange has stalled past the
// timeout (a segment was tail-dropped at the NIC).
func (a *msgApp) housekeeping(now sim.Time) {
	for _, s := range a.streams {
		for _, slot := range s.slots {
			if now-slot.lastTx >= a.cfg.Timeout {
				slot.lastTx = now
				slot.retries++
				a.retries++
				// Clear partial reassembly so the resend starts clean.
				delete(s.localSeen, slot.msg)
				delete(s.remoteSeen, slot.msg)
				delete(s.answered, slot.msg)
				a.sendRequest(s, slot.msg)
			}
		}
	}
}

// InboundPayload returns cumulative message payload bytes landed at the
// local host (requests under LocalServes, responses under LocalClient).
func (a *msgApp) InboundPayload() int64 { return a.inPayloadBytes }
