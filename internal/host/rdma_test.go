package host

import (
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
	"fastsafe/internal/transport"
)

func rdmaClusterConfig(mode core.Mode, op transport.Op, atsEntries int) ClusterConfig {
	return ClusterConfig{
		Hosts:   2,
		Traffic: Pairs,
		Op:      op,
		Host: Config{
			Mode:       mode,
			Seed:       7,
			Audit:      true,
			ATSEntries: atsEntries,
		},
	}
}

func runRdmaCluster(t *testing.T, cfg ClusterConfig) ClusterResults {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c.Run(sim.Millisecond, 2*sim.Millisecond)
}

// TestRDMAWriteDelivers drives a one-sided WRITE through the full
// datapath: source NIC streaming from its registered window, fabric,
// direct DMA into the sink window through the sink's ATC, hardware
// ACKs, and window-chunk recycling under the protection mode.
func TestRDMAWriteDelivers(t *testing.T) {
	r := runRdmaCluster(t, rdmaClusterConfig(core.FNS, transport.Write, 1024))
	sink := r.Hosts[1]
	if sink.RxGbps <= 0 {
		t.Fatalf("no goodput at the sink: %+v", sink.RxGbps)
	}
	if r.Hosts[0].TxGbps <= 0 {
		t.Fatal("source Tx accounting not mirrored")
	}
	if v := r.Violations(); v != 0 {
		t.Fatalf("FNS one-sided flow audited %d violations", v)
	}
	// The sink NIC translated through its device cache.
	nic0 := sink.Devices[0]
	if nic0.ATSLookups <= 0 {
		t.Fatalf("sink ATC never consulted: %+v", nic0)
	}
	if nic0.ATSHitRate <= 0.5 {
		t.Fatalf("sink ATC hit rate %v, want > 0.5 for a streaming window", nic0.ATSHitRate)
	}
	// Window recycling shot the ATC down through the invalidation queue.
	if nic0.ATCInvalidations <= 0 {
		t.Fatalf("window recycling never invalidated the ATC: %+v", nic0)
	}
}

// TestRDMAReadDelivers checks the READ shape: the sink posts one work
// request and the remote NIC streams with no remote-CPU involvement.
func TestRDMAReadDelivers(t *testing.T) {
	r := runRdmaCluster(t, rdmaClusterConfig(core.Strict, transport.Read, 256))
	if r.Hosts[1].RxGbps <= 0 {
		t.Fatal("READ stream never delivered")
	}
	if v := r.Violations(); v != 0 {
		t.Fatalf("strict one-sided READ audited %d violations", v)
	}
}

// TestRDMAWithoutATCStillWorks runs one-sided flows with no device
// cache at all: every direct DMA translates at the IOMMU.
func TestRDMAWithoutATCStillWorks(t *testing.T) {
	r := runRdmaCluster(t, rdmaClusterConfig(core.FNS, transport.Write, 0))
	if r.Hosts[1].RxGbps <= 0 {
		t.Fatal("no goodput without an ATC")
	}
	if lk := r.Hosts[1].Devices[0].ATSLookups; lk != 0 {
		t.Fatalf("ATSLookups = %d with no ATC attached", lk)
	}
	if v := r.Violations(); v != 0 {
		t.Fatalf("audited %d violations", v)
	}
}

// TestRDMAStrawmanServesStaleATS is the safety half of the paper's
// argument: defer-noshootdown recycles window chunks without any ATC
// invalidate, so the device TLB keeps serving translations the host
// revoked — the auditor must see StaleATS, and the strict modes must
// not.
func TestRDMAStrawmanServesStaleATS(t *testing.T) {
	straw := runRdmaCluster(t, rdmaClusterConfig(core.DeferNoShootdown, transport.Write, 1024))
	var stale int64
	for _, h := range straw.Hosts {
		if h.Safety != nil {
			stale += h.Safety.StaleATS
		}
	}
	if stale == 0 {
		t.Fatal("defer-noshootdown never served a stale ATC entry")
	}
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		r := runRdmaCluster(t, rdmaClusterConfig(mode, transport.Write, 1024))
		for i, h := range r.Hosts {
			if h.Safety == nil {
				t.Fatalf("%v host %d: auditor missing", mode, i)
			}
			if h.Safety.StaleATS != 0 || h.Safety.Violations() != 0 {
				t.Fatalf("%v host %d: %s", mode, i, h.Safety)
			}
		}
	}
}
