package host

import (
	"fmt"
	"strings"

	"fastsafe/internal/fabric"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
	"fastsafe/internal/transport"
)

// Cluster builds N full hosts and routes their bulk flows through a
// switched fabric. Every host is the same detailed machine the
// single-host experiments measure — own IOMMU, IOVA allocators, page
// tables, PCIe links, per-core CPU queues — so protection costs are paid
// at both ends of every flow, and congestion forms where it does in a
// real rack: at the receiver's switch port under incast.
//
// With Shards == 1 (the default) the whole cluster shares one event
// engine and a Cluster is single-goroutine like a Host. With Shards > 1
// the hosts are partitioned across engine shards run as a conservative
// parallel DES (sim.Shards): each shard's event loop runs on its own
// goroutine inside synchronized lookahead windows, cross-host packets
// travel as timestamped cross-shard messages, and results remain
// bit-deterministic for a given seed at any GOMAXPROCS. Distinct
// Clusters still share no state, so internal/runner can execute many
// concurrently either way.

// TrafficPattern names how cluster hosts pair up for bulk flows.
type TrafficPattern string

const (
	// Incast points every other host's flows at host 0 — the paper's
	// many-to-one congestion scenario, deepest queue at one port.
	Incast TrafficPattern = "incast"
	// AllToAll runs a flow for every ordered host pair.
	AllToAll TrafficPattern = "alltoall"
	// Pairs runs disjoint one-way flows host 2k -> host 2k+1.
	Pairs TrafficPattern = "pairs"
)

// ParseTraffic converts a string to a TrafficPattern with a descriptive
// error listing the valid names.
func ParseTraffic(s string) (TrafficPattern, error) {
	switch TrafficPattern(s) {
	case Incast, AllToAll, Pairs:
		return TrafficPattern(s), nil
	}
	return "", fmt.Errorf("host: unknown traffic pattern %q (valid: incast, alltoall, pairs)", s)
}

// ClusterConfig describes an N-host simulation.
type ClusterConfig struct {
	Hosts        int            // number of hosts (>= 2)
	Traffic      TrafficPattern // flow pattern (default Incast)
	FlowsPerPair int            // DCTCP flows per (src, dst) pair (default 1)

	// Op selects the verb every flow uses: SendRecv (the zero value)
	// runs the two-sided peer flows; Read/Write run one-sided RDMA flows
	// through the remote NIC's registered memory window instead — the
	// remote CPU leaves the per-packet path entirely (see rdma.go).
	Op transport.Op

	// Shards partitions the hosts across that many engine shards run
	// under conservative parallel DES (sim.Shards), with lookahead equal
	// to the fabric's per-hop propagation delay. 0 or 1 — the default —
	// keeps every host on one shared engine, the exact legacy code path.
	// Values above Hosts are clamped to Hosts (one host per shard).
	// Results are deterministic for a given seed at any shard count and
	// independent of GOMAXPROCS.
	Shards int

	// Host configures every host identically (flow counts are overridden:
	// cluster hosts run peer flows instead of abstract-remote bulk flows).
	Host Config

	// Fabric configures the switch; Fabric.PortGbps 0 inherits the host
	// NIC line rate.
	Fabric fabric.Config
}

// clusterSeedStride separates per-host seed spaces: far larger than any
// per-device seed offset a single host hands out.
const clusterSeedStride = 1 << 20

// maxPeerSlots caps the Tx cores provisioned per host for peer flows;
// beyond this, flows share slots round-robin like Rx flows share cores.
const maxPeerSlots = 8

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Traffic == "" {
		c.Traffic = Incast
	}
	if c.FlowsPerPair <= 0 {
		c.FlowsPerPair = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Shards > c.Hosts {
		c.Shards = c.Hosts
	}
	return c
}

// pairs expands the traffic pattern into ordered (src, dst) host pairs.
func (c ClusterConfig) pairs() [][2]int {
	var ps [][2]int
	switch c.Traffic {
	case AllToAll:
		for i := 0; i < c.Hosts; i++ {
			for j := 0; j < c.Hosts; j++ {
				if i != j {
					ps = append(ps, [2]int{i, j})
				}
			}
		}
	case Pairs:
		for i := 0; i+1 < c.Hosts; i += 2 {
			ps = append(ps, [2]int{i, i + 1})
		}
	default: // Incast
		for i := 1; i < c.Hosts; i++ {
			ps = append(ps, [2]int{i, 0})
		}
	}
	return ps
}

// Cluster is the N-host simulation.
type Cluster struct {
	cfg   ClusterConfig
	eng   *sim.Engine // shared engine (Shards==1) or shard 0's engine
	sw    *fabric.Switch
	hosts []*Host
	reg   *stats.Registry

	// Sharded-mode state, nil/empty when Shards == 1.
	shards  *sim.Shards
	shardOf []int // host ID -> owning shard
}

// clusterRouter carries cross-shard fabric hops: port i belongs to host
// i's shard, the core link to shard 0.
type clusterRouter struct{ c *Cluster }

func (r clusterRouter) shardOfPort(p int) int {
	if p == fabric.CorePort {
		return 0
	}
	return r.c.shardOf[p]
}

func (r clusterRouter) PostPort(src, dst int, gen, at sim.Time, fn func()) {
	r.c.shards.Post(r.shardOfPort(src), r.c.shardOf[dst], gen, at, fn)
}

func (r clusterRouter) PostCore(src int, gen, at sim.Time, fn func()) {
	r.c.shards.Post(r.shardOfPort(src), 0, gen, at, fn)
}

// NewCluster builds the hosts, the switch, and the peer flows the
// traffic pattern calls for.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("host: a cluster needs at least 2 hosts, got %d", cfg.Hosts)
	}
	if _, err := ParseTraffic(string(cfg.Traffic)); err != nil {
		return nil, err
	}
	base := cfg.Host.withDefaults()
	c := &Cluster{cfg: cfg}

	pairs := cfg.pairs()
	outgoing := make([]int, cfg.Hosts) // peer flows originating per host
	for _, p := range pairs {
		outgoing[p[0]] += cfg.FlowsPerPair
	}

	fc := cfg.Fabric
	if fc.PortGbps == 0 {
		fc.PortGbps = base.LinkGbps
	}
	if fc.ECNK == 0 {
		fc.ECNK = base.ECNKBytes
	}
	if fc.Prop == 0 {
		fc.Prop = base.PropDelay
	}

	// Engine + registry wiring: one of each shared by everything at
	// Shards==1 (the legacy path, byte-identical behaviour), or one per
	// shard with hosts assigned contiguously and registries merged at the
	// end. Per-shard registries keep every instrument engine-confined
	// during parallel rounds; names are disjoint (hostN.*, fabric.portN.*,
	// fabric.core.*) so the merge is a pure adoption.
	var (
		regs  []*stats.Registry
		engOf func(i int) *sim.Engine
	)
	if cfg.Shards == 1 {
		eng := sim.NewEngine(base.Seed)
		reg := stats.NewRegistry()
		c.eng, c.reg = eng, reg
		regs = []*stats.Registry{reg}
		engOf = func(int) *sim.Engine { return eng }
		sw, err := fabric.NewSwitch(eng, cfg.Hosts, fc)
		if err != nil {
			return nil, err
		}
		c.sw = sw
	} else {
		la := fc.PerHopProp()
		if la <= 0 {
			return nil, fmt.Errorf("host: sharded cluster needs positive fabric propagation, got per-hop %v", la)
		}
		c.shards = sim.NewShards(cfg.Shards, base.Seed, la)
		c.eng = c.shards.Engine(0)
		c.shardOf = make([]int, cfg.Hosts)
		for i := range c.shardOf {
			c.shardOf[i] = i * cfg.Shards / cfg.Hosts
		}
		regs = make([]*stats.Registry, cfg.Shards)
		for i := range regs {
			regs[i] = stats.NewRegistry()
		}
		engOf = func(i int) *sim.Engine { return c.shards.Engine(c.shardOf[i]) }
		sw, err := fabric.NewShardedSwitch(cfg.Hosts, fc,
			func(port int) *sim.Engine { return engOf(port) },
			c.shards.Engine(0), clusterRouter{c})
		if err != nil {
			return nil, err
		}
		c.sw = sw
	}
	sw := c.sw

	for i := 0; i < cfg.Hosts; i++ {
		hc := base
		hc.Engine = engOf(i)
		hc.HostID = i
		hc.Seed = base.Seed + int64(i)*clusterSeedStride
		// Cluster hosts run peer flows only: no abstract-remote bulk flows.
		hc.RxFlows = -1
		hc.TxFlows = 0
		hc.PeerSlots = outgoing[i]
		if hc.PeerSlots > maxPeerSlots {
			hc.PeerSlots = maxPeerSlots
		}
		hc.Telemetry.Registry = regs[c.shardIdx(i)]
		hc.Telemetry.Prefix = fmt.Sprintf("host%d.", i)
		h, err := New(hc)
		if err != nil {
			return nil, fmt.Errorf("host: cluster host %d: %w", i, err)
		}
		if c.shards != nil {
			id := i
			h.shardPost = func(dst *Host, fn func()) {
				s, d := c.shardOf[id], c.shardOf[dst.cfg.HostID]
				if s == d {
					fn()
					return
				}
				now := c.shards.Engine(s).Now()
				c.shards.Post(s, d, now, now, fn)
			}
		}
		c.hosts = append(c.hosts, h)
	}

	out := make([]int, cfg.Hosts) // outgoing flows placed so far
	in := make([]int, cfg.Hosts)  // incoming flows placed so far
	flowID := 0
	for _, p := range pairs {
		src, dst := c.hosts[p[0]], c.hosts[p[1]]
		for k := 0; k < cfg.FlowsPerPair; k++ {
			srcCPU := src.cfg.Cores + src.cfg.TxFlows + out[p[0]]%src.cfg.PeerSlots
			dstCPU := in[p[1]] % dst.cfg.Cores
			if cfg.Op.OneSided() {
				src.ConnectRDMA(dst, sw.Port(p[0]), sw.Port(p[1]), cfg.Op,
					flowID, srcCPU, dstCPU, sim.Time(flowID)*sim.Microsecond)
			} else {
				src.ConnectPeer(dst, sw.Port(p[0]), sw.Port(p[1]),
					flowID, srcCPU, dstCPU, sim.Time(flowID)*sim.Microsecond)
			}
			out[p[0]]++
			in[p[1]]++
			flowID++
		}
	}
	if cfg.Shards == 1 {
		sw.RegisterProbes(c.reg, "fabric.")
	} else {
		for i := 0; i < cfg.Hosts; i++ {
			sw.RegisterPortProbes(regs[c.shardIdx(i)], "fabric.", i)
		}
		sw.RegisterCoreProbes(regs[0], "fabric.")
		// Merged read-only view across all shards; safe to read at
		// barriers (between Run windows) and after the run.
		c.reg = stats.NewRegistry()
		for _, r := range regs {
			c.reg.Adopt(r)
		}
	}
	return c, nil
}

// shardIdx returns the shard owning host i (0 when unsharded).
func (c *Cluster) shardIdx(i int) int {
	if c.shardOf == nil {
		return 0
	}
	return c.shardOf[i]
}

// Shards returns the number of engine shards the cluster runs on.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// Rounds returns the synchronization rounds the shard coordinator has
// executed (0 when unsharded).
func (c *Cluster) Rounds() uint64 {
	if c.shards == nil {
		return 0
	}
	return c.shards.Rounds()
}

// Engine returns the shared event engine (shard 0's when sharded).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Hosts returns the cluster's hosts in ID order.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// Switch returns the fabric.
func (c *Cluster) Switch() *fabric.Switch { return c.sw }

// Registry returns the shared registry: every host's instruments under
// its "hostN." prefix plus the fabric's under "fabric.".
func (c *Cluster) Registry() *stats.Registry { return c.reg }

// ClusterResults is the measurement of one cluster window: per-host
// Results (index = host ID) plus cluster-wide aggregates.
type ClusterResults struct {
	Mode    string
	Hosts   []Results
	Measure sim.Duration

	AggRxGbps float64 // summed per-host Rx goodput
	AggTxGbps float64 // summed per-host Tx goodput
}

// Violations sums every host's audited translation-safety violations
// (stale-window uses + post-unmap reads); 0 when no host audited.
func (r ClusterResults) Violations() int64 {
	var n int64
	for _, h := range r.Hosts {
		if h.Safety != nil {
			n += h.Safety.Violations()
		}
	}
	return n
}

func (r ClusterResults) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s hosts=%d agg_rx=%7.1fGbps agg_tx=%7.1fGbps stale=%d",
		r.Mode, len(r.Hosts), r.AggRxGbps, r.AggTxGbps, r.Violations())
	for i, h := range r.Hosts {
		fmt.Fprintf(&b, "\n  host%d %s", i, h.String())
	}
	return b.String()
}

// Start launches every host (idempotent; Run calls it internally).
// Hosts start in ID order so same-timestamp events interleave
// deterministically.
func (c *Cluster) Start() {
	for _, h := range c.hosts {
		h.Start()
	}
}

// run advances the whole cluster to deadline: the shared engine when
// unsharded, the conservative shard coordinator otherwise. Either way all
// clocks align to deadline on return, so the snapshots Run takes observe
// every shard at the same virtual instant.
func (c *Cluster) run(deadline sim.Duration) {
	if c.shards != nil {
		c.shards.Run(deadline)
		return
	}
	c.eng.Run(deadline)
}

// Run starts the workloads, runs a warmup window, then measures for the
// given duration and returns per-host and aggregate results.
func (c *Cluster) Run(warmup, measure sim.Duration) ClusterResults {
	c.Start()
	c.run(warmup)
	befores := make([]snapshot, len(c.hosts))
	for i, h := range c.hosts {
		h.net.rx.Latency().Reset()
		h.net.tx.Latency().Reset()
		if h.serve != nil {
			h.serve.latency.Reset()
		}
		befores[i] = h.snap()
	}
	c.run(warmup + measure)
	r := ClusterResults{Mode: c.cfg.Host.Mode.String(), Measure: measure}
	for i, h := range c.hosts {
		hr := h.results(befores[i], h.snap())
		r.Hosts = append(r.Hosts, hr)
		r.AggRxGbps += hr.RxGbps
		r.AggTxGbps += hr.TxGbps
	}
	return r
}
