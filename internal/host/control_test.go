package host

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"fastsafe/internal/control"
	"fastsafe/internal/core"
	"fastsafe/internal/fault"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// controlScenario is the shared adaptive scenario: F&S under a windowed
// burst of audited device misbehaviour, sampled so the timeline CSV can
// be compared byte-for-byte.
func controlScenario(ctl *control.Config) Config {
	plan := fault.Campaign(1)
	plan.StrayDMA, plan.WildDMA = 0.05, 0.03
	plan.Start, plan.For = 2*sim.Millisecond, 2*sim.Millisecond
	cfg := Config{Mode: core.FNS, Audit: true, Faults: plan, FaultSeed: 1, Control: ctl}
	cfg.Telemetry.SampleEvery = 500 * sim.Microsecond
	return cfg
}

func guardConfig() *control.Config {
	return &control.Config{
		Every: 250 * sim.Microsecond,
		Rules: []control.Rule{{
			Kind: control.Guard, Metric: "audit.blocked",
			High: 1, Low: 0,
			Safe: core.Strict, Fast: core.FNS,
			Cooldown: sim.Millisecond,
		}},
	}
}

func runControlScenario(t *testing.T, cfg Config) Results {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h.Run(1*sim.Millisecond, 5*sim.Millisecond)
}

// timelineCSV renders sampled series the way cmd/fssim's -timeline flag
// does (one row per instant, one column per series), so equality here is
// equality of the CSV the CLI would print.
func timelineCSV(series []stats.Series) string {
	var b strings.Builder
	b.WriteString("t_us")
	for _, s := range series {
		b.WriteString("," + s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i, t := range series[0].Times {
		fmt.Fprintf(&b, "%.1f", float64(t)/1e3)
		for _, s := range series {
			fmt.Fprintf(&b, ",%g", s.Values[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestControllerDisabledByteIdentical is the no-op proof for the control
// plane: an attached controller that never fires a rule — because its
// metric is not registered, or because its threshold is unreachable —
// must leave every simulation result and the timeline CSV byte-identical
// to a run with no controller at all. Together with the golden tests
// (which lock the nil-Config path against the pre-refactor outputs) this
// pins "no controller, no change".
func TestControllerDisabledByteIdentical(t *testing.T) {
	base := runControlScenario(t, controlScenario(nil))
	variants := map[string]*control.Config{
		"unregistered metric": {Rules: []control.Rule{{
			Kind: control.Guard, Metric: "no.such.metric",
			High: 1, Safe: core.Strict, Fast: core.FNS,
		}}},
		"unreachable threshold": {Rules: []control.Rule{{
			Kind: control.Guard, Metric: "audit.blocked",
			High: 1e18, Low: -1, Safe: core.Strict, Fast: core.FNS,
		}}},
	}
	for name, ctl := range variants {
		t.Run(name, func(t *testing.T) {
			got := runControlScenario(t, controlScenario(ctl))
			if len(got.Control) != 0 {
				t.Fatalf("inert controller made %d decisions: %v", len(got.Control), got.Control)
			}
			if a, b := timelineCSV(base.Timeline), timelineCSV(got.Timeline); a != b {
				t.Fatalf("timeline CSV diverged:\n%s\nvs\n%s", b, a)
			}
			got.Control = nil
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("inert controller changed results:\nbase: %+v\ngot:  %+v", base, got)
			}
		})
	}
}

// TestControllerDecisionsReplayable locks the determinism contract: the
// same configuration replays the same decision log — timestamps, metric
// values, directions — run after run and regardless of GOMAXPROCS.
func TestControllerDecisionsReplayable(t *testing.T) {
	ref := runControlScenario(t, controlScenario(guardConfig()))
	if len(ref.Control) < 2 {
		t.Fatalf("scenario produced %d decisions, want >= 2 (burst must force a round trip)", len(ref.Control))
	}
	for i := 0; i < 2; i++ {
		got := runControlScenario(t, controlScenario(guardConfig()))
		if !reflect.DeepEqual(ref.Control, got.Control) {
			t.Fatalf("decision log not replayable:\nref: %v\ngot: %v", ref.Control, got.Control)
		}
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	got := runControlScenario(t, controlScenario(guardConfig()))
	if !reflect.DeepEqual(ref.Control, got.Control) {
		t.Fatalf("decision log depends on GOMAXPROCS:\nref: %v\ngot: %v", ref.Control, got.Control)
	}
}
