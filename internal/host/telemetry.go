package host

import (
	"fmt"

	"fastsafe/internal/device"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// TelemetryConfig configures the host's observation layer. Everything it
// enables is strictly read-only over simulation state: probes never
// schedule work, mutate layers, or consume engine randomness, so any
// telemetry setting produces byte-identical simulation results to running
// without it (the golden tests lock this down).
type TelemetryConfig struct {
	// SampleEvery, when positive, runs the virtual-time sampler at this
	// interval, recording the per-interval time series behind
	// Results.Timeline (goodput, miss rates, walk reads, cwnd, core
	// utilisation, invalidation-queue depth, memory-bus utilisation).
	SampleEvery sim.Duration
	// TraceL3 records the primary NIC domain's PTcache-L3 reuse-distance
	// trace (the paper's locality figures).
	TraceL3 bool
	// TraceLimit caps the trace points kept (0 = unlimited).
	TraceLimit int

	// Registry, when non-nil, is the registry this host registers its
	// probe points into — a Cluster shares one registry across all its
	// hosts. nil (the default) gives the host a private registry.
	Registry *stats.Registry
	// Prefix is prepended to every instrument name the host registers
	// ("host3." in a cluster); empty for single-host runs.
	Prefix string
}

// Telemetry is the host's metrics spine: one Registry every simulator
// layer registers its typed probe points into, plus (when configured) the
// virtual-time Sampler recording time series across the run.
//
// Layer namespaces in the registry:
//
//	engine.*            event-loop progress (fired, pending)
//	iommu.*             shared translation hardware: counters + occupancy
//	mem.*               memory-bus utilisation and traffic
//	walker.*            shared page-table walker reads
//	<dev>.*             per-device domain counters (dev = nic0, storage0, ...)
//	<dev>.iommu.*       the device's attributed slice of the shared IOMMU
//	<dev>.iova.*        the device domain's IOVA-allocator work
//	<dev>.ptable.*      the device domain's IO page-table size
//	<dev>.pcie.rx.*     the NIC's Rx PCIe link (incl. latency_ns histogram)
//	<dev>.pcie.tx.*     likewise for Tx
//	<dev>.ats.*         the NIC's device-side ATS cache (only with an ATC)
//	<dev>.flow<i>.*     per-flow congestion state (NICs only)
//	rpc.*               request/response workload (latency_ns histogram)
//	fault.*             injected-fault tallies (only with a fault plan)
//	audit.*             translation safety audit (only when auditing)
type Telemetry struct {
	h       *Host
	reg     *stats.Registry
	prefix  string
	sampler *stats.Sampler
}

// name applies the host's instrument-name prefix (empty outside clusters).
func (t *Telemetry) name(s string) string { return t.prefix + s }

// newTelemetry wires the registry over every layer already attached and,
// when sampling is configured, registers the timeline probes.
func newTelemetry(h *Host) *Telemetry {
	reg := h.cfg.Telemetry.Registry
	if reg == nil {
		reg = stats.NewRegistry()
	}
	t := &Telemetry{h: h, reg: reg, prefix: h.cfg.Telemetry.Prefix}
	r := t.reg
	r.GaugeFunc(t.name("engine.fired"), func() float64 { return float64(h.eng.Fired()) })
	r.GaugeFunc(t.name("engine.pending"), func() float64 { return float64(h.eng.Pending()) })
	h.mmu.RegisterProbes(r, t.name("iommu."))
	h.bus.RegisterProbes(r, t.name("mem."))
	h.walker.RegisterProbes(r, t.name("walker."))
	h.inj.RegisterProbes(r, t.name("fault.")) // nil-safe: absent without a plan
	h.aud.RegisterProbes(r, t.name("audit.")) // nil-safe: absent unless auditing
	for _, d := range h.devices {
		t.addDevice(d)
	}
	if every := h.cfg.Telemetry.SampleEvery; every > 0 {
		t.sampler = stats.NewSampler(h.eng, every)
		t.addSamplerProbes()
	}
	return t
}

// addDevice registers one attached device's probe points: its protection
// domain (with allocator, page table, and attributed IOMMU counters), its
// device.Stats view, and — for NICs — the datapath, PCIe links and
// per-flow congestion state.
func (t *Telemetry) addDevice(d device.Device) {
	name := t.name(d.Name())
	d.Domain().RegisterProbes(t.reg, name+".")
	t.reg.GaugeFunc(name+".ops", func() float64 { return float64(d.Stats().Ops) })
	t.reg.GaugeFunc(name+".bytes", func() float64 { return float64(d.Stats().Bytes) })
	n, ok := d.(*netDev)
	if !ok {
		return
	}
	n.dev.RegisterProbes(t.reg, name+".")
	n.rx.RegisterProbes(t.reg, name+".pcie.rx.")
	n.tx.RegisterProbes(t.reg, name+".pcie.tx.")
	if atc := n.dom.ATC(); atc != nil {
		atc.RegisterProbes(t.reg, name+".ats.")
	}
	for _, f := range n.rxFlows {
		f.snd.RegisterProbes(t.reg, fmt.Sprintf("%s.flow%d.", name, f.id))
	}
	for _, f := range n.txFlows {
		f.snd.RegisterProbes(t.reg, fmt.Sprintf("%s.txflow%d.", name, f.id))
	}
}

// addSamplerProbes registers the timeline series. Probe order fixes the
// Series() order, so it is part of the output format.
func (t *Telemetry) addSamplerProbes() {
	h, s := t.h, t.sampler
	// Goodput accounting matches Results.RxGbps: primary-NIC bulk
	// deliveries, plus message payload when the local host is the client
	// (bulk inbound responses).
	goodput := func() int64 {
		b := h.net.c.rxDeliveredBytes
		if h.msgs != nil && h.msgs.cfg.Pattern == LocalClient {
			b += h.msgs.completedBytes
		}
		return b
	}
	// The miss-rate normaliser matches Results.PagesRxed: all payload
	// moved in the interval, in 4KB pages.
	allBytes := func() int64 {
		b := h.net.c.rxDeliveredBytes + h.net.c.txDeliveredBytes
		if h.msgs != nil {
			b += h.msgs.completedBytes
		}
		return b
	}
	s.Probe("rx_gbps", stats.GbpsProbe(goodput))
	s.Probe("tx_gbps", stats.GbpsProbe(func() int64 { return h.net.c.txDeliveredBytes }))
	s.Probe("iotlb_miss_per_pg", stats.PerPageProbe(
		func() int64 { return h.mmu.Counters().IOTLBMisses }, allBytes))
	s.Probe("ptcache_miss_per_pg", stats.PerPageProbe(
		func() int64 {
			c := h.mmu.Counters()
			return c.L1Misses + c.L2Misses + c.L3Misses
		}, allBytes))
	s.Probe("walk_reads", stats.DeltaProbe(func() int64 { return h.mmu.Counters().MemReads }))
	s.Probe("inv_reqs", stats.DeltaProbe(func() int64 { return h.mmu.Counters().InvRequests }))
	s.GaugeProbe("cwnd_mean", func() float64 {
		cwnd, _, _, _, _ := h.DebugFlows()
		return cwnd
	})
	var prevBusy []sim.Duration
	s.Probe("core_util_max", func(dt sim.Duration) float64 {
		var peak float64
		for i, c := range h.cores {
			var prev sim.Duration
			if i < len(prevBusy) {
				prev = prevBusy[i]
			}
			if u := float64(c.BusyTime()-prev) / float64(dt); u > peak {
				peak = u
			}
		}
		prevBusy = prevBusy[:0]
		for _, c := range h.cores {
			prevBusy = append(prevBusy, c.BusyTime())
		}
		return peak
	})
	s.GaugeProbe("invq_depth", func() float64 {
		var n int
		for _, d := range h.devices {
			n += d.Domain().PendingDeferred()
		}
		return float64(n)
	})
	s.GaugeProbe("mem_util", h.bus.PeekUtilization)
}

// Telemetry returns the host's metrics spine.
func (h *Host) Telemetry() *Telemetry { return h.tele }

// Registry returns the instrument registry.
func (t *Telemetry) Registry() *stats.Registry { return t.reg }

// Sampler returns the virtual-time sampler, nil unless SampleEvery was
// configured.
func (t *Telemetry) Sampler() *stats.Sampler { return t.sampler }

// Series returns every sampled time series over the whole run (warmup
// included); nil without sampling. Results.Timeline carries the same
// series restricted to the measurement window.
func (t *Telemetry) Series() []stats.Series {
	if t.sampler == nil {
		return nil
	}
	return t.sampler.Series()
}

// Histogram returns a registered histogram by host-local name (e.g.
// "rpc.latency_ns", "nic0.pcie.rx.latency_ns"), or nil when absent. In a
// cluster the host's prefix is applied before lookup.
func (t *Telemetry) Histogram(name string) *stats.Histogram {
	return t.reg.LookupHistogram(t.name(name))
}

// ReuseTrace returns the primary NIC domain's PTcache-L3 reuse-distance
// trace, nil unless TelemetryConfig.TraceL3 was set.
func (t *Telemetry) ReuseTrace() *stats.ReuseTrace { return t.h.net.dom.Trace() }
