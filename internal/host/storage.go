package host

import (
	"fmt"

	"fastsafe/internal/core"
	"fastsafe/internal/pcie"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// Storage-device co-tenancy. A second DMA device (an NVMe-style storage
// controller) shares the host's IOMMU with the NIC: same IOTLB, same
// page-table caches, same walkers, same IOVA allocator. Its block DMAs
// are mapped and unmapped through the same protection mode as the NIC's
// traffic, so under strict mode its per-block invalidations pollute the
// caches the network datapath depends on — the cross-device interference
// production deployments observe (the "violation of isolation guarantees"
// motivation in §1). Under F&S the storage traffic uses contiguous chunks
// and IOTLB-only invalidations, so the pollution collapses.

// storageDev issues blockBytes-sized read DMAs at a fixed rate through
// its own PCIe link, with translations through the shared IOMMU.
type storageDev struct {
	h          *Host
	dom        *core.Domain // own protection domain, shared IOMMU
	link       *pcie.Link
	cpu        int
	blockBytes int
	interval   sim.Duration
	blocks     int64
	bytes      int64
}

// StorageConfig attaches a storage device to the host.
type StorageConfig struct {
	ReadGBps   float64 // target block-read bandwidth (decimal GB/s)
	BlockBytes int     // per-DMA block size (default 128KB)
}

// InstallStorage attaches a storage device sharing the IOMMU. Call before
// Start.
func (h *Host) InstallStorage(cfg StorageConfig) *storageDev {
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 128 << 10
	}
	link := pcie.New(h.eng, h.cfg.L0, h.cfg.Lm, h.cfg.PCIeGbps)
	link.AttachWalker(h.walker)
	dom := core.NewDomain(core.Config{
		Mode:        h.cfg.Mode,
		NumCPUs:     1,
		SharedIOMMU: h.dom.IOMMU(),
		Seed:        h.cfg.Seed + 1000,
	})
	interval := sim.Duration(float64(cfg.BlockBytes) / cfg.ReadGBps)
	s := &storageDev{
		h:          h,
		dom:        dom,
		link:       link,
		cpu:        h.cfg.Cores + h.cfg.TxFlows + 1, // own core
		blockBytes: cfg.BlockBytes,
		interval:   interval,
	}
	h.storage = s
	return s
}

// Blocks returns completed block DMAs.
func (s *storageDev) Blocks() int64 { return s.blocks }

// start begins the periodic block stream.
func (s *storageDev) start() {
	s.h.eng.After(s.interval, s.issue)
}

// issue maps one block, translates and DMAs it, and unmaps on completion —
// the storage driver's strict-safety datapath, sharing every IOMMU
// structure with the NIC.
func (s *storageDev) issue() {
	pages := (s.blockBytes + 4095) / 4096
	var m *core.TxMapping
	s.h.core(s.cpu).Do(func() sim.Duration {
		tm, mc, err := s.dom.MapTx(0, pages)
		if err != nil {
			panic(fmt.Sprintf("host: storage MapTx: %v", err))
		}
		m = tm
		return mc
	}, func() {
		reads := 0
		if s.dom.Mode().Translated() {
			for off := 0; off < s.blockBytes; off += 512 {
				page := off / 4096
				v := m.IOVAs[page] + ptable.IOVA(off%4096)
				tr := s.dom.Translate(v)
				reads += tr.MemReads
			}
		}
		s.link.Submit(s.blockBytes, reads, func() {
			s.blocks++
			s.bytes += int64(s.blockBytes)
			s.h.core(s.cpu).Do(func() sim.Duration {
				cost, err := s.dom.UnmapTx(m)
				if err != nil {
					panic(fmt.Sprintf("host: storage UnmapTx: %v", err))
				}
				return cost
			}, nil)
		})
	})
	s.h.eng.After(s.interval, s.issue)
}
