package host

import (
	"fmt"

	"fastsafe/internal/device"
)

// Storage-device co-tenancy. The NVMe-style controller itself lives in
// internal/device (it is the second reference implementation of
// device.Device); this file is the host-side attachment glue: core and
// seed slot assignment, mode inheritance, and the pre-device-layer
// InstallStorage entry point.

// StorageConfig attaches a storage device to the host; it is the same
// shape a Topology carries.
type StorageConfig = StorageSpec

// InstallStorage attaches a storage device sharing the IOMMU. Call
// before Start. Devices the Topology config declares are installed by
// New; this entry point adds more afterwards. Panics on a nonsensical
// config (non-positive ReadGBps) — the facade validates before it gets
// here.
func (h *Host) InstallStorage(cfg StorageConfig) *device.Storage {
	s, err := h.addStorage(cfg)
	if err != nil {
		panic(fmt.Sprintf("host: InstallStorage: %v", err))
	}
	return s
}

// addStorage assigns the next storage core/seed slot and attaches the
// device. Storage device i runs its driver on core Cores+TxFlows+1+i
// with domain seed offset 1000+i — slot 0 matches the pre-device-layer
// layout bit-for-bit.
func (h *Host) addStorage(spec StorageSpec) (*device.Storage, error) {
	mode := h.cfg.Mode
	if spec.Mode != nil {
		mode = *spec.Mode
	}
	i := h.storageCount
	s := device.NewStorage(device.StorageConfig{
		Name:       fmt.Sprintf("storage%d", i),
		ReadGBps:   spec.ReadGBps,
		BlockBytes: spec.BlockBytes,
		Mode:       mode,
		CPU:        h.cfg.Cores + h.cfg.TxFlows + 1 + i,
		SeedOffset: 1000 + int64(i),
	})
	if err := h.AttachDevice(s); err != nil {
		return nil, err
	}
	h.storageCount++
	return s, nil
}
