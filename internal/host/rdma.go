package host

import (
	"fmt"

	"fastsafe/internal/core"
	"fastsafe/internal/fabric"
	"fastsafe/internal/nic"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
	"fastsafe/internal/transport"
)

// One-sided RDMA flows between two detailed hosts on a fabric. Where a
// peerFlow pays remote CPU on every packet — ring descriptor posting,
// IRQ + stack on delivery, CPU-built ACKs — a one-sided READ/WRITE
// resolves the remote buffer in the remote *NIC*: the initiator streams
// into (or out of) a registered memory window, the target NIC
// translates each frame through its device-side ATS cache, and
// acknowledgements are hardware-generated. The remote CPU shows up only
// at memory-registration boundaries, when the window's chunks are
// recycled (unmap + fresh map under the host's protection mode) — which
// is exactly where the safety question lives: a mode that skips the ATC
// shoot-down on unmap leaves the device TLB serving stale translations.

// rdmaWindowChunks sizes each registered window: chunks × descriptor
// pages. 16 chunks of 64 pages (256 KB each at 4 KB pages) comfortably
// exceed the transport's maximum window, so the sender can never lap a
// chunk that is still being recycled.
const rdmaWindowChunks = 16

// rdmaFlow couples a DCTCP sender on the data-source host with
// hardware receive state on the data-sink host. For WRITE the source is
// the initiator; for READ the sink posts a one-time work request to the
// source NIC and the data path is then identical.
type rdmaFlow struct {
	id  int // cluster-wide flow index
	op  transport.Op
	mtu int

	src, dst         *netDev // src = data source, dst = data sink
	srcCPU, dstCPU   int     // device-local core indices
	srcPort, dstPort *fabric.Port

	snd *transport.Sender   // paces the stream; lives on src
	rcv *transport.Receiver // cumulative-ACK state in the sink NIC

	srcMR *mrWindow // streamed from; registered once, never recycled
	dstMR *mrWindow // landed into; chunks recycle behind the ack point

	start      sim.Time // staggered first pump (or READ request post)
	flushArmed bool     // delayed hardware-ACK timer pending at dst
}

// rdmaData is the bulk payload carried in nic.Packet.Payload across the
// fabric; one-sided ACKs are NIC-generated and never enter a datapath,
// so they need no payload type.
type rdmaData struct {
	flow *rdmaFlow
	seq  int64
}

// mrWindow is a registered memory region the one-sided verbs target: a
// ring of descriptor chunks addressed by absolute frame sequence
// number, packed at the same stride the Rx rings use.
type mrWindow struct {
	chunks    []*core.Descriptor
	stride    int   // frame slot stride in bytes
	framesPer int   // frame slots per chunk
	recycled  int64 // chunk ordinals recycled so far (sink side only)
}

// frame maps an absolute sequence number to the window pages and byte
// offset its DMA targets.
func (w *mrWindow) frame(seq int64) (iovas []ptable.IOVA, start int) {
	slot := int((seq / int64(w.framesPer)) % int64(len(w.chunks)))
	return w.chunks[slot].IOVAs, int(seq%int64(w.framesPer)) * w.stride
}

// newMRWindow registers a window on this device's domain: the mapping
// happens at connection setup, before the clock runs, so it costs
// nothing — exactly like ring and descriptor pre-population.
func (n *netDev) newMRWindow(cpu, mtu int) *mrWindow {
	w := &mrWindow{stride: n.dev.FrameStride(mtu)}
	for i := 0; i < rdmaWindowChunks; i++ {
		desc, _, err := n.dom.MapRxDescriptor(cpu)
		if err != nil {
			panic(fmt.Sprintf("host: MapRx(rdma window): %v", err))
		}
		w.chunks = append(w.chunks, desc)
	}
	w.framesPer = len(w.chunks[0].IOVAs) * ptable.PageSize / w.stride
	return w
}

// ConnectRDMA wires a one-sided flow whose data flows from this host to
// dst through the given fabric ports. Call before Start; the Cluster
// does this for every (src, dst) pair when its Op is one-sided.
// srcCPU/dstCPU are device-local core indices on the primary NICs —
// touched only at registration boundaries and ACK completions, never
// per packet.
func (h *Host) ConnectRDMA(dst *Host, srcPort, dstPort *fabric.Port, op transport.Op, id, srcCPU, dstCPU int, start sim.Time) *rdmaFlow {
	if !op.OneSided() {
		panic(fmt.Sprintf("host: ConnectRDMA needs a one-sided op, got %v", op))
	}
	// The remote end of a one-sided flow is a device buffer, not a CPU
	// ring: bound the outstanding payload to half the sink's input
	// buffer (RDMA NICs cap outstanding WQE data the same way) so a
	// slow translation path surfaces as ECN marks instead of tail
	// drops, and floor the retransmission timer at device scale — NIC
	// timers run far below the stack's 5ms, which would outlast a run.
	p := h.cfg.Transport
	stride := dst.net.dev.FrameStride(h.net.spec.MTU)
	if max := float64(dst.cfg.NICBufferBytes) / float64(2*stride); p.MaxCwnd == 0 || p.MaxCwnd > max {
		p.MaxCwnd = max
	}
	if p.RTOMin == 0 || p.RTOMin > sim.Millisecond {
		p.RTOMin = sim.Millisecond
	}
	f := &rdmaFlow{
		id:      id,
		op:      op,
		mtu:     h.net.spec.MTU,
		src:     h.net,
		dst:     dst.net,
		srcCPU:  srcCPU,
		dstCPU:  dstCPU,
		srcPort: srcPort,
		dstPort: dstPort,
		snd:     transport.NewSender(p),
		rcv:     transport.NewReceiver(p),
		start:   start,
	}
	f.snd.Bind(transport.Endpoint{Host: h.cfg.HostID, Peer: dst.cfg.HostID})
	f.rcv.Bind(transport.Endpoint{Host: dst.cfg.HostID, Peer: h.cfg.HostID})
	f.srcMR = h.net.newMRWindow(srcCPU, f.mtu)
	f.dstMR = dst.net.newMRWindow(dstCPU, f.mtu)
	h.net.rdmaTx = append(h.net.rdmaTx, f)
	dst.net.rdmaRx = append(dst.net.rdmaRx, f)
	if h.tele != nil {
		f.snd.RegisterProbes(h.tele.reg, h.tele.name(fmt.Sprintf("%s.rdmaflow%d.", h.net.name, id)))
	}
	return f
}

// pumpRdmaFlow streams frames from the source window while the
// congestion window allows. No CPU work per frame: the NIC reads the
// registered buffer directly (translating through its ATC when one is
// attached) and the frame goes onto the fabric from Tx completion.
// Runs on f.src's host.
func (n *netDev) pumpRdmaFlow(f *rdmaFlow) {
	for f.snd.CanSend() {
		seq, _ := f.snd.NextSend()
		f.snd.OnSent(seq, n.h.eng.Now())
		iovas, start := f.srcMR.frame(seq)
		n.dev.SendTxDirect(nic.Packet{CPU: f.srcCPU, Bytes: f.mtu, Payload: rdmaData{flow: f, seq: seq}}, iovas, start)
	}
}

// postRdmaRead posts the one-time READ work request from the initiator
// (the data sink): one stack invocation, a 64-byte request across the
// fabric, and the source NIC starts streaming — its CPU never sees the
// request. Runs on f.dst's host.
func (n *netDev) postRdmaRead(f *rdmaFlow) {
	n.h.core(n.cpuBase+f.dstCPU).Do(func() sim.Duration {
		return n.h.cfg.StackCost
	}, func() {
		f.dstPort.Send(f.srcPort.ID(), 64, func(bool) {
			f.src.pumpRdmaFlow(f)
		})
	})
}

// rdmaTxDone routes a streamed frame onto the fabric toward the sink,
// where it lands as a direct DMA into the target window — no ring, no
// descriptor recycling, no per-packet remote CPU.
func (n *netDev) rdmaTxDone(pkt nic.Packet, p rdmaData) {
	f := p.flow
	f.srcPort.Send(f.dstPort.ID(), pkt.Bytes, func(ecn bool) {
		iovas, start := f.dstMR.frame(p.seq)
		f.dst.dev.DirectRx(nic.Packet{CPU: f.dstCPU, Bytes: pkt.Bytes, ECN: ecn, Payload: p}, iovas, start)
	})
}

// rdmaDataDelivered handles a frame whose direct DMA into the sink
// window completed. Everything here is NIC-side: transport state,
// goodput accounting and the hardware ACK cost no sink CPU cycles.
func (n *netDev) rdmaDataDelivered(pkt nic.Packet, p rdmaData) {
	f := p.flow
	delivered, ack := f.rcv.OnData(p.seq, pkt.ECN)
	bytes := delivered * int64(f.mtu)
	n.c.rxDeliveredBytes += bytes
	n.creditPeerTx(f.src, bytes)
	if delivered > 0 {
		n.maybeRecycleMR(f)
	}
	if ack != nil {
		n.sendRdmaAck(f, *ack)
	} else {
		n.armRdmaFlush(f)
	}
}

// sendRdmaAck emits a hardware-generated ACK from the sink NIC: a
// 64-byte frame straight onto the fabric, no CPU, no Tx mapping.
func (n *netDev) sendRdmaAck(f *rdmaFlow, ack transport.Ack) {
	n.c.acksSent++
	f.dstPort.Send(f.srcPort.ID(), 64, func(bool) {
		f.src.rdmaAckDelivered(f, ack)
	})
}

// armRdmaFlush schedules a delayed hardware ACK at the sink, the NIC
// equivalent of the stack's delayed-ACK timer.
func (n *netDev) armRdmaFlush(f *rdmaFlow) {
	if f.flushArmed {
		return
	}
	f.flushArmed = true
	n.h.eng.After(n.h.cfg.DelAck, func() {
		f.flushArmed = false
		if ack := f.rcv.FlushAck(); ack != nil {
			n.sendRdmaAck(f, *ack)
		}
	})
}

// rdmaAckDelivered lands a hardware ACK at the source: the completion
// surfaces to the initiating core (CQE poll), which re-arms the stream.
// Runs on f.src's host.
func (n *netDev) rdmaAckDelivered(f *rdmaFlow, ack transport.Ack) {
	n.h.core(n.cpuBase+f.srcCPU).Do(func() sim.Duration {
		f.snd.OnAck(ack, n.h.eng.Now())
		return n.h.cfg.AckRxCost
	}, func() {
		n.pumpRdmaFlow(f)
	})
}

// maybeRecycleMR rotates sink window chunks the cumulative ack point
// has fully passed: the driver re-points the chunk's fixed IOVAs at
// fresh application buffers under the host's protection mode, paying
// that mode's invalidation costs — including the ATC shoot-down when
// the device caches translations. This is the one place a one-sided
// flow touches the remote CPU, and the place an unsafe mode leaves the
// device TLB serving translations to memory the window no longer owns.
// Runs on f.dst's host.
func (n *netDev) maybeRecycleMR(f *rdmaFlow) {
	w := f.dstMR
	for f.rcv.RcvNxt() >= (w.recycled+1)*int64(w.framesPer) {
		ord := w.recycled
		w.recycled++
		slot := int(ord % int64(len(w.chunks)))
		n.h.core(n.cpuBase+f.dstCPU).Do(func() sim.Duration {
			cost, err := n.dom.RemapRxDescriptor(w.chunks[slot])
			if err != nil {
				panic(fmt.Sprintf("host: RemapRx(rdma window): %v", err))
			}
			return cost
		}, nil)
	}
}
