// Package host wires the full NIC-to-memory datapath of §2.1 into one
// simulated server pair: a detailed local host (NIC rings, IOMMU +
// protection domain, PCIe links, per-core CPU queues, DCTCP transport
// endpoints) and an abstract remote host (infinitely fast CPU, no IOMMU).
// All of the paper's experiments run through this package.
package host

import (
	"fmt"

	"fastsafe/internal/core"
	"fastsafe/internal/iommu"
	"fastsafe/internal/mem"
	"fastsafe/internal/nic"
	"fastsafe/internal/pcie"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
	"fastsafe/internal/transport"
)

// Config describes one experiment's host setup. Zero fields take the
// defaults of the paper's testbed (§2.2): 100Gbps NIC, 128Gbps PCIe 3.0,
// 4KB MTU, 256-packet rings, 64-page descriptors, five cores.
type Config struct {
	Mode            core.Mode
	Cores           int // cores serving bulk Rx flows (default 5)
	RxFlows         int // bulk flows into the local host (default = Cores)
	TxFlows         int // bulk flows out of the local host, one extra core each
	MTU             int // data packet payload (default 4096)
	RingPackets     int // Rx ring strides per core (default 256)
	DescriptorPages int // pages per descriptor (default 64)

	LinkGbps  float64      // NIC line rate (default 100)
	PCIeGbps  float64      // PCIe serialisation cap (default 128)
	L0        sim.Duration // fitted DMA base latency (default 65ns)
	Lm        sim.Duration // fitted page-table read latency (default 197ns)
	PropDelay sim.Duration // one-way propagation (default 2us)

	NICBufferBytes int // NIC input buffer (default 2MB)
	ECNKBytes      int // DCTCP marking threshold (default 100KB)

	StackCost sim.Duration // per-data-packet network-stack CPU (default 600ns)
	IRQCost   sim.Duration // per-interrupt CPU cost charged when a delivery
	// finds its core idle (NAPI batching amortises it under load; default 2us)
	DelAck sim.Duration // delayed-ACK flush timeout (default 30us); without
	// it, flows whose window is smaller than the ACK coalescing factor
	// stall until the next housekeeping tick
	AckTxCost     sim.Duration // CPU to build+send an ACK (default 250ns)
	AckRxCost     sim.Duration // CPU to process a received ACK (default 150ns)
	RingCPUFactor float64      // stack-cost inflation per log2(ring/256), modelling
	// the prefetcher-efficiency loss at large rings (§4.4; default 0.55)

	// Memory system (§2.2: two DDR4 channels, 46.9GB/s, DDIO disabled).
	MemHogGBps float64 // co-tenant memory bandwidth antagonist (0 = none)
	DDIO       bool    // DMA lands in LLC instead of DRAM (paper default: off)

	Transport transport.Params
	IOMMU     iommu.Config
	Costs     core.CostModel

	TraceL3    bool
	TraceLimit int
	Seed       int64
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 5
	}
	if c.RxFlows < 0 {
		c.RxFlows = 0
	} else if c.RxFlows == 0 {
		c.RxFlows = c.Cores
	}
	if c.MTU <= 0 {
		c.MTU = 4096
	}
	if c.RingPackets <= 0 {
		c.RingPackets = 256
	}
	if c.DescriptorPages <= 0 {
		c.DescriptorPages = 64
	}
	if c.LinkGbps == 0 {
		c.LinkGbps = 100
	}
	if c.PCIeGbps == 0 {
		c.PCIeGbps = 128
	}
	if c.L0 == 0 {
		c.L0 = 65
	}
	if c.Lm == 0 {
		c.Lm = 197
	}
	if c.PropDelay == 0 {
		c.PropDelay = 2 * sim.Microsecond
	}
	if c.NICBufferBytes == 0 {
		c.NICBufferBytes = 1 << 20
	}
	if c.ECNKBytes == 0 {
		c.ECNKBytes = 150 << 10
	}
	if c.StackCost == 0 {
		c.StackCost = 600
	}
	if c.DelAck == 0 {
		c.DelAck = 30 * sim.Microsecond
	}
	if c.IRQCost == 0 {
		c.IRQCost = 2 * sim.Microsecond
	}
	if c.AckTxCost == 0 {
		c.AckTxCost = 250
	}
	if c.AckRxCost == 0 {
		c.AckRxCost = 150
	}
	if c.RingCPUFactor == 0 {
		c.RingCPUFactor = 0.55
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// mtuPages returns pages per MTU stride.
func (c Config) mtuPages() int { return (c.MTU + ptable.PageSize - 1) / ptable.PageSize }

// rxFlow couples a remote DCTCP sender with a local receiver.
type rxFlow struct {
	id         int
	cpu        int
	snd        *transport.Sender   // remote end
	rcv        *transport.Receiver // local end
	flushArmed bool                // delayed-ACK timer pending
}

// txFlow couples a local DCTCP sender with a remote receiver.
type txFlow struct {
	id  int
	cpu int
	snd *transport.Sender   // local end
	rcv *transport.Receiver // remote end
	// sendQueued bounds the CPU-queue work outstanding for this flow.
	sendQueued int
	flushArmed bool // delayed-ACK timer pending at the remote receiver
}

// Payload types carried in nic.Packet.Payload.
type dataSeg struct { // remote -> local bulk data
	flow int
	seq  int64
}
type ackOut struct { // local ACK leaving for the remote sender
	flow int
	ack  transport.Ack
}
type txData struct { // local bulk data leaving for the remote receiver
	flow int
	seq  int64
}
type txAckIn struct { // remote ACK arriving for a local sender
	flow int
	ack  transport.Ack
}

// counters that the snapshot mechanism diffs across the warmup boundary.
type hostCounters struct {
	rxDeliveredBytes int64 // in-order transport deliveries into the local host
	txDeliveredBytes int64 // local bulk data delivered in-order at the remote
	acksSent         int64 // ACK packets generated locally
}

// Host is the simulated server pair.
//
// A Host is single-goroutine: construction and Run must happen on one
// goroutine, and everything it owns (engine, domain, wires, cores,
// counters, RNGs) is reachable only through it. Distinct Hosts share no
// mutable state — New takes no globals and registers nothing anywhere —
// which is what lets internal/runner execute many simulations
// concurrently with byte-identical results to a sequential run.
type Host struct {
	cfg Config
	eng *sim.Engine

	dom    *core.Domain
	rx, tx *pcie.Link
	dev    *nic.NIC

	toLocal  *Wire // remote -> local
	toRemote *Wire // local -> remote

	cores []*Core

	rxFlows []*rxFlow
	txFlows []*txFlow

	msgs    *msgApp     // request/response machinery (nil unless installed)
	storage *storageDev // co-tenant storage device (nil unless installed)
	walker  *pcie.Walker
	bus     *mem.Bus

	lastDeferredFlush sim.Time
	started           bool

	c hostCounters
}

// execAdapter lets the NIC schedule driver work on host cores.
type execAdapter struct{ h *Host }

func (e execAdapter) Do(cpu int, work func() sim.Duration, done func()) {
	e.h.core(cpu).Do(work, done)
}

// New builds the host per cfg. Additional cores are created on demand for
// Tx flows and message streams.
func New(cfg Config) (*Host, error) {
	cfg = cfg.withDefaults()
	h := &Host{cfg: cfg, eng: sim.NewEngine(cfg.Seed)}
	h.dom = core.NewDomain(core.Config{
		Mode:            cfg.Mode,
		NumCPUs:         cfg.Cores + cfg.TxFlows + 8, // slack for app cores
		DescriptorPages: cfg.DescriptorPages,
		Costs:           cfg.Costs,
		IOMMU:           cfg.IOMMU,
		TxFreeCPUShift:  1,    // Tx-completion IRQ lands on a neighbouring core
		FreePoolSize:    8192, // app threads release buffers out of order
		Seed:            cfg.Seed,
		TraceL3:         cfg.TraceL3,
		TraceLimit:      cfg.TraceLimit,
	})
	h.rx = pcie.New(h.eng, cfg.L0, cfg.Lm, cfg.PCIeGbps)
	h.tx = pcie.New(h.eng, cfg.L0, cfg.Lm, cfg.PCIeGbps)
	h.walker = pcie.NewWalker(h.eng, cfg.Lm)
	h.rx.AttachWalker(h.walker)
	h.tx.AttachWalker(h.walker)
	h.bus = mem.New(h.eng, mem.Config{})
	h.walker.SetLatencyFactor(h.bus.LatencyFactor)
	if cfg.MemHogGBps > 0 {
		mem.NewHog(h.bus, cfg.MemHogGBps)
	}
	h.toLocal = NewWire(h.eng, cfg.LinkGbps, cfg.PropDelay)
	h.toLocal.SetECN(cfg.ECNKBytes)
	h.toRemote = NewWire(h.eng, cfg.LinkGbps, cfg.PropDelay)
	h.toRemote.SetECN(cfg.ECNKBytes)

	dev, err := nic.New(h.eng, nic.Config{
		Cores:       cfg.Cores + cfg.TxFlows + 8,
		MTU:         cfg.MTU,
		RingPackets: cfg.RingPackets,
		BufferBytes: cfg.NICBufferBytes,
		ECNKBytes:   -1, // ECN marks come from the switch, not the NIC

	}, h.dom, h.rx, h.tx, execAdapter{h})
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	h.dev = dev
	dev.OnDeliver = h.onDeliver
	dev.OnTxDone = h.onTxDone

	for i := 0; i < cfg.RxFlows; i++ {
		h.rxFlows = append(h.rxFlows, &rxFlow{
			id:  i,
			cpu: i % cfg.Cores,
			snd: transport.NewSender(cfg.Transport),
			rcv: transport.NewReceiver(cfg.Transport),
		})
	}
	for j := 0; j < cfg.TxFlows; j++ {
		h.txFlows = append(h.txFlows, &txFlow{
			id:  j,
			cpu: cfg.Cores + j,
			snd: transport.NewSender(cfg.Transport),
			rcv: transport.NewReceiver(cfg.Transport),
		})
	}
	return h, nil
}

// Engine exposes the event engine (examples drive it directly).
func (h *Host) Engine() *sim.Engine { return h.eng }

// Domain exposes the protection domain.
func (h *Host) Domain() *core.Domain { return h.dom }

// NIC exposes the device model.
func (h *Host) NIC() *nic.NIC { return h.dev }

func (h *Host) core(cpu int) *Core {
	for len(h.cores) <= cpu {
		h.cores = append(h.cores, NewCore(h.eng))
	}
	return h.cores[cpu]
}

// irqCost returns the interrupt cost for a delivery on cpu: charged only
// when the core is idle (a NAPI poll cycle starts); deliveries landing on
// a busy core ride the existing poll batch.
func (h *Host) irqCost(cpu int) sim.Duration {
	if h.core(cpu).QueueLen() == 0 && !h.core(cpu).Busy() {
		return h.cfg.IRQCost
	}
	return 0
}

// stackCost returns the per-packet network-stack CPU cost, inflated for
// large rings (prefetcher inefficiency, §4.4).
func (h *Host) stackCost() sim.Duration {
	c := float64(h.cfg.StackCost)
	ring := float64(h.cfg.RingPackets)
	for r := 256.0; r < ring; r *= 2 {
		c += float64(h.cfg.StackCost) * h.cfg.RingCPUFactor
	}
	return sim.Duration(c)
}

// Start launches the configured bulk flows and the housekeeping timers.
// Idempotent: only the first call has effect (Run calls it internally).
func (h *Host) Start() {
	if h.started {
		return
	}
	h.started = true
	for i, f := range h.rxFlows {
		f := f
		h.eng.At(sim.Time(i)*sim.Microsecond, func() { h.pumpRxFlow(f) })
	}
	for j, f := range h.txFlows {
		f := f
		h.eng.At(sim.Time(j)*sim.Microsecond, func() { h.pumpTxFlow(f) })
	}
	if h.msgs != nil {
		h.msgs.start()
	}
	if h.storage != nil {
		h.storage.start()
	}
	h.eng.After(200*sim.Microsecond, h.housekeeping)
}

// housekeeping fires RTO checks and delayed-ACK flushes.
func (h *Host) housekeeping() {
	now := h.eng.Now()
	for _, f := range h.rxFlows {
		if f.snd.MaybeTimeout(now) {
			h.pumpRxFlow(f)
		}
		if ack := f.rcv.FlushAck(); ack != nil {
			h.sendLocalAck(f.cpu, f.id, *ack)
		}
	}
	for _, f := range h.txFlows {
		if f.snd.MaybeTimeout(now) {
			h.pumpTxFlow(f)
		}
		if ack := f.rcv.FlushAck(); ack != nil {
			h.remoteAckToLocal(f, *ack)
		}
	}
	if h.msgs != nil {
		h.msgs.housekeeping(now)
	}
	// Linux lazy mode also flushes on a timer, not just the 256-entry
	// threshold (10ms in the kernel).
	if now-h.lastDeferredFlush >= 10*sim.Millisecond {
		h.lastDeferredFlush = now
		if cost := h.dom.FlushDeferred(); cost > 0 {
			h.core(0).Do(func() sim.Duration { return cost }, nil)
		}
	}
	h.eng.After(200*sim.Microsecond, h.housekeeping)
}

// pumpRxFlow lets the remote sender of flow f transmit while its window
// allows. The remote host's CPU is not modelled (it is never the
// bottleneck in the paper's receive-side experiments).
func (h *Host) pumpRxFlow(f *rxFlow) {
	for f.snd.CanSend() {
		seq, _ := f.snd.NextSend()
		f.snd.OnSent(seq, h.eng.Now())
		seg := dataSeg{flow: f.id, seq: seq}
		h.toLocal.Send(h.cfg.MTU, func(ecn bool) {
			h.dev.Arrive(nic.Packet{CPU: f.cpu, Bytes: h.cfg.MTU, ECN: ecn, Payload: seg})
		})
	}
}

// pumpTxFlow lets a local sender enqueue packets: each transmission costs
// CPU (stack + Tx mapping) and then a NIC Tx DMA.
func (h *Host) pumpTxFlow(f *txFlow) {
	for f.snd.CanSend() && f.sendQueued < 64 {
		seq, _ := f.snd.NextSend()
		f.snd.OnSent(seq, h.eng.Now())
		f.sendQueued++
		seg := txData{flow: f.id, seq: seq}
		var m *core.TxMapping
		h.core(f.cpu).Do(func() sim.Duration {
			var cost sim.Duration = h.cfg.StackCost
			tm, mc, err := h.dom.MapTx(f.cpu, h.cfg.mtuPages())
			if err != nil {
				panic(fmt.Sprintf("host: MapTx: %v", err))
			}
			m = tm
			return cost + mc
		}, func() {
			f.sendQueued--
			h.dev.SendTx(nic.Packet{CPU: f.cpu, Bytes: h.cfg.MTU, Payload: seg}, m)
		})
	}
}

// armRxFlush schedules a delayed-ACK flush for a local receiver, modelling
// the ACK a real stack emits at the end of a NAPI batch.
func (h *Host) armRxFlush(f *rxFlow) {
	if f.flushArmed {
		return
	}
	f.flushArmed = true
	h.eng.After(h.cfg.DelAck, func() {
		f.flushArmed = false
		if ack := f.rcv.FlushAck(); ack != nil {
			h.sendLocalAck(f.cpu, f.id, *ack)
		}
	})
}

// armTxFlush is armRxFlush's counterpart at the abstract remote receiver.
func (h *Host) armTxFlush(f *txFlow) {
	if f.flushArmed {
		return
	}
	f.flushArmed = true
	h.eng.After(h.cfg.DelAck, func() {
		f.flushArmed = false
		if ack := f.rcv.FlushAck(); ack != nil {
			h.remoteAckToLocal(f, *ack)
		}
	})
}

// sendLocalAck emits an ACK for rx flow id from cpu: CPU work to build and
// map it, then a NIC Tx DMA.
func (h *Host) sendLocalAck(cpu, flow int, ack transport.Ack) {
	var m *core.TxMapping
	h.core(cpu).Do(func() sim.Duration {
		tm, mc, err := h.dom.MapTx(cpu, 1)
		if err != nil {
			panic(fmt.Sprintf("host: MapTx(ack): %v", err))
		}
		m = tm
		h.c.acksSent++
		return h.cfg.AckTxCost + mc
	}, func() {
		h.dev.SendTx(nic.Packet{CPU: cpu, Bytes: 64, Payload: ackOut{flow, ack}}, m)
	})
}

// remoteAckToLocal carries a remote receiver's ACK back into the local
// host, where it arrives like any other packet (through the Rx datapath).
func (h *Host) remoteAckToLocal(f *txFlow, ack transport.Ack) {
	h.toLocal.Send(64, func(bool) {
		h.dev.Arrive(nic.Packet{CPU: f.cpu, Bytes: 64, Payload: txAckIn{f.id, ack}})
	})
}

// onDeliver handles a packet whose DMA into local memory completed.
func (h *Host) onDeliver(pkt nic.Packet) {
	// Memory traffic: the DMA write (unless DDIO lands it in LLC) plus the
	// stack/application copying the payload in and out.
	if !h.cfg.DDIO {
		h.bus.Consume(pkt.Bytes)
	}
	h.bus.Consume(2 * pkt.Bytes)
	switch p := pkt.Payload.(type) {
	case dataSeg:
		f := h.rxFlows[p.flow]
		irq := h.irqCost(f.cpu)
		var pendingAck *transport.Ack
		h.core(f.cpu).Do(func() sim.Duration {
			cost := irq + h.stackCost()
			delivered, ack := f.rcv.OnData(p.seq, pkt.ECN)
			h.c.rxDeliveredBytes += delivered * int64(h.cfg.MTU)
			pendingAck = ack
			return cost
		}, func() {
			if pendingAck != nil {
				h.sendLocalAck(f.cpu, f.id, *pendingAck)
			} else {
				h.armRxFlush(f)
			}
		})

	case txAckIn:
		f := h.txFlows[p.flow]
		h.core(f.cpu).Do(func() sim.Duration {
			f.snd.OnAck(p.ack, h.eng.Now())
			return h.cfg.AckRxCost
		}, func() {
			h.pumpTxFlow(f)
		})

	case msgSeg:
		h.msgs.onDeliver(pkt, p)

	default:
		panic(fmt.Sprintf("host: unknown Rx payload %T", pkt.Payload))
	}
}

// onTxDone handles completion of a local Tx DMA: the driver unmaps the
// buffer (strict safety) and the packet goes onto the wire.
func (h *Host) onTxDone(pkt nic.Packet, m *core.TxMapping) {
	if !h.cfg.DDIO {
		h.bus.Consume(pkt.Bytes) // the DMA read
	}
	if m != nil {
		h.core(pkt.CPU).Do(func() sim.Duration {
			cost, err := h.dom.UnmapTx(m)
			if err != nil {
				panic(fmt.Sprintf("host: UnmapTx: %v", err))
			}
			return cost
		}, nil)
	}
	switch p := pkt.Payload.(type) {
	case ackOut:
		f := h.rxFlows[p.flow]
		h.toRemote.Send(pkt.Bytes, func(bool) {
			f.snd.OnAck(p.ack, h.eng.Now())
			h.pumpRxFlow(f)
		})

	case txData:
		f := h.txFlows[p.flow]
		h.toRemote.Send(pkt.Bytes, func(ecn bool) {
			delivered, ack := f.rcv.OnData(p.seq, ecn)
			h.c.txDeliveredBytes += delivered * int64(h.cfg.MTU)
			if ack != nil {
				h.remoteAckToLocal(f, *ack)
			} else {
				h.armTxFlush(f)
			}
		})

	case msgSeg:
		h.msgs.onTxDone(pkt, p)

	default:
		panic(fmt.Sprintf("host: unknown Tx payload %T", pkt.Payload))
	}
}

// DebugFlows reports mean cwnd, mean alpha, mean inflight and total
// timeouts/retransmits across the bulk Rx flows (diagnostics).
func (h *Host) DebugFlows() (cwnd, alpha, inflight float64, timeouts, rtx int64) {
	n := float64(len(h.rxFlows))
	if n == 0 {
		return
	}
	for _, f := range h.rxFlows {
		cwnd += f.snd.Cwnd()
		alpha += f.snd.Alpha()
		inflight += float64(f.snd.Inflight())
		timeouts += f.snd.Stats().Timeouts
		rtx += f.snd.Stats().Retransmits
	}
	return cwnd / n, alpha / n, inflight / n, timeouts, rtx
}
