// Package host wires the full NIC-to-memory datapath of §2.1 into
// simulated servers: each Host is a detailed machine — NIC rings, its
// own IOMMU with protection domains, PCIe links, per-core CPU queues,
// DCTCP transport endpoints — and hosts compose into clusters over the
// switched network in internal/fabric. All of the paper's experiments
// run through this package.
//
// Two topologies are supported. The single-host experiments pair one
// detailed Host with an abstract remote end (infinitely fast CPU, no
// IOMMU) over a point-to-point wire — the degenerate two-node fabric. A
// Cluster (cluster.go) instead builds N full Hosts on one shared event
// engine, every one paying its own CPU, IOMMU and PCIe costs, and
// routes their peer flows through fabric.Switch ports.
//
// Each host owns its own IOMMU; DMA devices (the NIC datapath in
// netdev.go, device.Storage, anything else implementing device.Device)
// attach to it through AttachDevice or the Topology config, each with
// its own protection domain over that host's translation hardware.
package host

import (
	"fmt"

	"fastsafe/internal/control"
	"fastsafe/internal/core"
	"fastsafe/internal/device"
	"fastsafe/internal/fault"
	"fastsafe/internal/iommu"
	"fastsafe/internal/mem"
	"fastsafe/internal/nic"
	"fastsafe/internal/pcie"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
	"fastsafe/internal/transport"
)

// Config describes one experiment's host setup. Zero fields take the
// defaults of the paper's testbed (§2.2): 100Gbps NIC, 128Gbps PCIe 3.0,
// 4KB MTU, 256-packet rings, 64-page descriptors, five cores.
type Config struct {
	Mode            core.Mode
	Cores           int // cores serving bulk Rx flows (default 5)
	RxFlows         int // bulk flows into the local host (default = Cores)
	TxFlows         int // bulk flows out of the local host, one extra core each
	MTU             int // data packet payload (default 4096)
	RingPackets     int // Rx ring strides per core (default 256)
	DescriptorPages int // pages per descriptor (64 on CX-5)

	// ATSEntries sizes the device-side ATS translation cache (ATC) on
	// every NIC datapath domain. 0 — the default — attaches no ATC: the
	// device sends every translation to the IOMMU, byte-identical to the
	// pre-ATS simulator. When positive, NIC DMAs first consult the
	// device-local cache; misses become ATS translation requests, faults
	// fall back to PRI, and host-side unmaps shoot the ATC down through
	// the invalidation queue (at CostModel.ATCInvRequest extra per
	// request).
	ATSEntries int

	LinkGbps  float64      // NIC line rate (default 100)
	PCIeGbps  float64      // PCIe serialisation cap (default 128)
	L0        sim.Duration // fitted DMA base latency (default 65ns)
	Lm        sim.Duration // fitted page-table read latency (default 197ns)
	PropDelay sim.Duration // one-way propagation (default 2us)

	NICBufferBytes int // NIC input buffer (default 1MB)
	ECNKBytes      int // DCTCP marking threshold (default 150KB)

	StackCost sim.Duration // per-data-packet network-stack CPU (default 600ns)
	IRQCost   sim.Duration // per-interrupt CPU cost charged when a delivery
	// finds its core idle (NAPI batching amortises it under load; default 2us)
	DelAck sim.Duration // delayed-ACK flush timeout (default 30us); without
	// it, flows whose window is smaller than the ACK coalescing factor
	// stall until the next housekeeping tick
	AckTxCost     sim.Duration // CPU to build+send an ACK (default 250ns)
	AckRxCost     sim.Duration // CPU to process a received ACK (default 150ns)
	RingCPUFactor float64      // stack-cost inflation per log2(ring/256), modelling
	// the prefetcher-efficiency loss at large rings (§4.4; default 0.55)

	// Memory system (§2.2: two DDR4 channels, 46.9GB/s, DDIO disabled).
	MemHogGBps float64 // co-tenant memory bandwidth antagonist (0 = none)
	// MemHogStart delays the antagonist's onset to a virtual time (0 =
	// from construction), letting timeline experiments watch the
	// transition into contention mid-run.
	MemHogStart sim.Duration
	DDIO        bool // DMA lands in LLC instead of DRAM (paper default: off)

	// Topology attaches co-tenant DMA devices beyond the primary NIC,
	// all sharing the host's IOMMU.
	Topology Topology

	// Serve, when non-nil, installs the open-loop serving-fleet workload
	// (serving.go): Poisson arrivals, heavy-tailed request/response
	// sizes, connection churn, and cohort aggregation. In a cluster every
	// host runs its own fleet (seeded per host), colocated with whatever
	// peer traffic the cluster pattern generates.
	Serve *ServeConfig

	Transport transport.Params
	IOMMU     iommu.Config
	Costs     core.CostModel

	// Telemetry configures the observation layer: the virtual-time
	// sampler and the PTcache-L3 locality trace. All of it is strictly
	// read-only over simulation state, so enabling it never changes
	// simulated behaviour.
	Telemetry TelemetryConfig

	// Control, when non-nil, installs the adaptive protection control
	// plane (internal/control): a deterministic rule engine ticking on
	// the virtual clock that watches the telemetry registry and retunes
	// each NIC domain's runtime knobs through the SetKnobs transition
	// protocol. nil — the default — builds no controller, schedules no
	// events and reads no metrics, so runs are byte-identical to a
	// build without the package (the property tests lock this down).
	Control *control.Config

	// Faults is the adversarial fault plan (see internal/fault). The
	// zero plan is provably inert: no injector is built, no randomness
	// consumed, no events scheduled — runs are byte-identical to a build
	// without the fault layer.
	Faults fault.Plan
	// FaultSeed seeds the injector's private RNG; 0 uses Seed. Campaigns
	// vary FaultSeed while holding Seed to replay one workload under
	// many fault schedules.
	FaultSeed int64
	// Audit enables the translation safety auditor even with a zero
	// plan (it is always on when Faults is enabled). The audit is a pure
	// page-table read per translation — observation only.
	Audit bool

	Seed int64

	// Engine, when non-nil, attaches the host to a shared discrete-event
	// engine instead of creating a private one — this is how a Cluster
	// gives N hosts one clock. nil (the default) keeps the host fully
	// self-contained, byte-identical to the pre-fabric behaviour.
	Engine *sim.Engine
	// HostID names this host within a cluster; transport endpoints bind
	// to it. 0 (the default) for single-host runs.
	HostID int
	// PeerSlots provisions Tx cores on the primary NIC for cluster peer
	// flows (see NICSpec.PeerSlots). 0 for single-host runs.
	PeerSlots int
}

// Topology describes the DMA devices attached to the host beyond the
// primary NIC (which the flat Config fields configure). Every device
// gets its own protection domain over the one shared IOMMU.
type Topology struct {
	NICs    []NICSpec     // additional NIC datapaths, each with its own wire pair
	Storage []StorageSpec // NVMe-style storage controllers
}

// StorageSpec configures one storage device in a Topology.
type StorageSpec struct {
	ReadGBps   float64    // target block-read bandwidth (decimal GB/s)
	BlockBytes int        // per-DMA block size (default 128KB)
	Mode       *core.Mode // protection mode (nil = host Config.Mode)
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 5
	}
	if c.RxFlows < 0 {
		c.RxFlows = 0
	} else if c.RxFlows == 0 {
		c.RxFlows = c.Cores
	}
	if c.MTU <= 0 {
		c.MTU = 4096
	}
	if c.RingPackets <= 0 {
		c.RingPackets = 256
	}
	if c.DescriptorPages <= 0 {
		c.DescriptorPages = 64
	}
	if c.ATSEntries < 0 {
		c.ATSEntries = 0
	}
	if c.LinkGbps == 0 {
		c.LinkGbps = 100
	}
	if c.PCIeGbps == 0 {
		c.PCIeGbps = 128
	}
	if c.L0 == 0 {
		c.L0 = 65
	}
	if c.Lm == 0 {
		c.Lm = 197
	}
	if c.PropDelay == 0 {
		c.PropDelay = 2 * sim.Microsecond
	}
	if c.NICBufferBytes == 0 {
		c.NICBufferBytes = 1 << 20
	}
	if c.ECNKBytes == 0 {
		c.ECNKBytes = 150 << 10
	}
	if c.StackCost == 0 {
		c.StackCost = 600
	}
	if c.DelAck == 0 {
		c.DelAck = 30 * sim.Microsecond
	}
	if c.IRQCost == 0 {
		c.IRQCost = 2 * sim.Microsecond
	}
	if c.AckTxCost == 0 {
		c.AckTxCost = 250
	}
	if c.AckRxCost == 0 {
		c.AckRxCost = 150
	}
	if c.RingCPUFactor == 0 {
		c.RingCPUFactor = 0.55
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// mtuPages returns pages per MTU stride.
func (c Config) mtuPages() int { return (c.MTU + ptable.PageSize - 1) / ptable.PageSize }

// Host is one simulated server (plus, in single-host runs, its abstract
// remote end).
//
// A Host is single-goroutine: construction and Run must happen on one
// goroutine, and everything it owns (engine, domains, wires, cores,
// counters, RNGs) is reachable only through it. Distinct Hosts share no
// mutable state — New takes no globals and registers nothing anywhere —
// which is what lets internal/runner execute many simulations
// concurrently with byte-identical results to a sequential run. Hosts in
// a Cluster deliberately share the cluster's engine, registry and
// fabric, and the cluster as a whole stays single-goroutine.
type Host struct {
	cfg Config
	eng *sim.Engine

	mmu *iommu.IOMMU // the one shared IOMMU every device translates through

	net     *netDev         // primary NIC (the measured datapath)
	nets    []*netDev       // every NIC, primary first
	devices []device.Device // all attached devices in attach order

	cores []*Core

	msgs   *msgApp     // request/response machinery (nil unless installed)
	serve  *servingApp // open-loop serving fleet (nil unless Config.Serve)
	walker *pcie.Walker
	bus    *mem.Bus
	tele   *Telemetry
	ctl    *control.Controller // nil unless cfg.Control is set
	inj    *fault.Injector     // nil unless cfg.Faults is enabled
	aud    *fault.Auditor      // nil unless auditing

	storageCount int // storage devices attached so far (cpu/seed slots)
	started      bool

	// shardPost, when set by a sharded Cluster, routes a mutation of
	// another host's state to that host's engine shard (running it inline
	// when both hosts share a shard). Nil for standalone hosts and
	// single-shard clusters, where cross-host writes are ordinary
	// same-engine calls.
	shardPost func(dst *Host, fn func())
}

// New builds the host per cfg. Additional cores are created on demand for
// Tx flows, app streams and co-tenant devices.
func New(cfg Config) (*Host, error) {
	cfg = cfg.withDefaults()
	eng := cfg.Engine
	if eng == nil {
		eng = sim.NewEngine(cfg.Seed)
	}
	h := &Host{cfg: cfg, eng: eng}
	h.mmu = iommu.New(cfg.IOMMU)
	h.walker = pcie.NewWalker(h.eng, cfg.Lm)
	h.bus = mem.New(h.eng, mem.Config{})
	h.walker.SetLatencyFactor(h.bus.LatencyFactor)
	// Fault layer before any device attaches, so every domain and link
	// created below is wired into it.
	if cfg.Audit || cfg.Faults.Enabled() {
		h.aud = fault.NewAuditor(h.mmu)
	}
	if cfg.Faults.Enabled() {
		fseed := cfg.FaultSeed
		if fseed == 0 {
			fseed = cfg.Seed
		}
		h.inj = fault.NewInjector(h.eng, cfg.Faults, fseed)
		h.inj.SetAuditor(h.aud)
		h.inj.AttachBus(h.bus)
	}
	if cfg.MemHogGBps > 0 {
		if cfg.MemHogStart > 0 {
			h.eng.At(cfg.MemHogStart, func() { mem.NewHog(h.bus, cfg.MemHogGBps) })
		} else {
			mem.NewHog(h.bus, cfg.MemHogGBps)
		}
	}

	// The primary NIC: built from the flat Config fields, attached first
	// so its domain is the IOMMU's default domain 0.
	primary := &netDev{
		name: "nic0",
		spec: NICSpec{
			Cores:       cfg.Cores,
			RxFlows:     cfg.RxFlows,
			TxFlows:     cfg.TxFlows,
			MTU:         cfg.MTU,
			RingPackets: cfg.RingPackets,
			LinkGbps:    cfg.LinkGbps,
			PeerSlots:   cfg.PeerSlots,
		},
		mode:    cfg.Mode,
		primary: true,
	}
	if err := h.AttachDevice(primary); err != nil {
		return nil, err
	}

	// Additional NICs land on their own core ranges, above the slots the
	// primary datapath, app streams and storage devices use.
	cpuBase := cfg.Cores + cfg.TxFlows + 8 + len(cfg.Topology.Storage)
	for i, spec := range cfg.Topology.NICs {
		spec := spec.resolve(cfg)
		mode := cfg.Mode
		if spec.Mode != nil {
			mode = *spec.Mode
		}
		n := &netDev{
			name:    fmt.Sprintf("nic%d", i+1),
			spec:    spec,
			mode:    mode,
			cpuBase: cpuBase,
			seedOff: 10000 + 1000*int64(i),
		}
		if err := h.AttachDevice(n); err != nil {
			return nil, err
		}
		cpuBase += spec.Cores + spec.TxFlows + 8
	}
	for _, spec := range cfg.Topology.Storage {
		if _, err := h.addStorage(spec); err != nil {
			return nil, err
		}
	}
	h.tele = newTelemetry(h)
	// The control plane watches the telemetry spine just built, so it
	// constructs after it. Controllable targets are the NIC datapath
	// domains; each target's transition cost is charged to the core
	// owning that NIC's driver work, so a switch contends with the
	// traffic it reacts to.
	if cfg.Control != nil {
		targets := make([]control.Target, 0, len(h.nets))
		for _, n := range h.nets {
			n := n
			targets = append(targets, control.Target{
				Name:   n.name,
				Domain: n.dom,
				Exec: func(cost sim.Duration) {
					h.core(n.cpuBase).Do(func() sim.Duration { return cost }, nil)
				},
			})
		}
		ctl, err := control.New(h.eng, h.tele.reg, h.cfg.Telemetry.Prefix, *cfg.Control, targets)
		if err != nil {
			return nil, err
		}
		h.ctl = ctl
	}
	if cfg.Serve != nil {
		if _, err := h.InstallServing(*cfg.Serve); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// AttachDevice attaches a DMA device sharing the host's IOMMU. Call
// before Start; devices appear in per-device results in attach order.
func (h *Host) AttachDevice(d device.Device) error {
	if h.started {
		return fmt.Errorf("host: AttachDevice(%s) after Start", d.Name())
	}
	if err := d.Attach(h); err != nil {
		return err
	}
	h.devices = append(h.devices, d)
	if n, ok := d.(*netDev); ok {
		if h.net == nil {
			h.net = n
		}
		h.nets = append(h.nets, n)
	}
	// Devices attached during New are registered when the telemetry spine
	// is built; later attachments (InstallStorage, direct AttachDevice)
	// register here.
	if h.tele != nil {
		h.tele.addDevice(d)
	}
	return nil
}

// Devices returns the attached devices in attach order (primary NIC
// first).
func (h *Host) Devices() []device.Device { return h.devices }

// Engine implements device.Host (examples also drive it directly).
func (h *Host) Engine() *sim.Engine { return h.eng }

// SharedIOMMU implements device.Host.
func (h *Host) SharedIOMMU() *iommu.IOMMU { return h.mmu }

// NewLink implements device.Host: a PCIe link with the host's fitted
// latencies, attached to the shared walkers.
func (h *Host) NewLink() *pcie.Link {
	l := pcie.New(h.eng, h.cfg.L0, h.cfg.Lm, h.cfg.PCIeGbps)
	l.AttachWalker(h.walker)
	h.inj.AttachLink(l) // nil-safe: flap target when a plan is active
	return l
}

// NewDomain implements device.Host: a protection domain over the shared
// IOMMU, seeded deterministically per device.
func (h *Host) NewDomain(cfg core.Config, seedOffset int64) (*core.Domain, error) {
	cfg.SharedIOMMU = h.mmu
	cfg.Seed = h.cfg.Seed + seedOffset
	cfg.Faults = h.inj
	return core.NewDomain(cfg)
}

// Faults implements device.Host: the host's injector, nil without a
// plan. Safety auditing is exposed through Results.Safety.
func (h *Host) Faults() *fault.Injector { return h.inj }

// Auditor exposes the safety auditor (nil unless auditing).
func (h *Host) Auditor() *fault.Auditor { return h.aud }

// Exec implements device.Host: schedule driver work on host core cpu.
func (h *Host) Exec(cpu int, work func() sim.Duration, done func()) {
	h.core(cpu).Do(work, done)
}

// Domain exposes the primary NIC's protection domain.
func (h *Host) Domain() *core.Domain { return h.net.dom }

// NIC exposes the primary NIC's device model.
func (h *Host) NIC() *nic.NIC { return h.net.dev }

func (h *Host) core(cpu int) *Core {
	for len(h.cores) <= cpu {
		h.cores = append(h.cores, NewCore(h.eng))
	}
	return h.cores[cpu]
}

// irqCost returns the interrupt cost for a delivery on cpu: charged only
// when the core is idle (a NAPI poll cycle starts); deliveries landing on
// a busy core ride the existing poll batch.
func (h *Host) irqCost(cpu int) sim.Duration {
	if h.core(cpu).QueueLen() == 0 && !h.core(cpu).Busy() {
		return h.cfg.IRQCost
	}
	return 0
}

// Start launches the configured workloads and the housekeeping timers.
// Idempotent: only the first call has effect (Run calls it internally).
// Ordering is load-bearing for reproducibility: NIC flows (primary
// first), then the message app, then the non-NIC devices — the exact
// sequence the pre-device-layer host used.
func (h *Host) Start() {
	if h.started {
		return
	}
	h.started = true
	for _, n := range h.nets {
		n.Start()
	}
	if h.msgs != nil {
		h.msgs.start()
	}
	if h.serve != nil {
		h.serve.start()
	}
	for _, d := range h.devices {
		if _, ok := d.(*netDev); ok {
			continue
		}
		d.Start()
	}
	// Periodic fault disturbances start after the workloads so their
	// events interleave behind same-timestamp workload events.
	h.inj.Start()
	// The controller ticks after the fault layer so its first
	// evaluation sees whatever the injector's same-timestamp
	// disturbances already did.
	if h.ctl != nil {
		h.ctl.Start()
	}
	h.eng.After(200*sim.Microsecond, h.housekeeping)
	// The sampler starts last: its read-only ticks interleave after the
	// workload events already scheduled at each timestamp.
	if h.tele != nil && h.tele.sampler != nil {
		h.tele.sampler.Start()
	}
}

// housekeeping fires RTO checks and delayed-ACK flushes.
func (h *Host) housekeeping() {
	now := h.eng.Now()
	for _, n := range h.nets {
		n.flowHousekeeping(now)
	}
	if h.msgs != nil {
		h.msgs.housekeeping(now)
	}
	if h.serve != nil {
		h.serve.housekeeping(now)
	}
	for _, n := range h.nets {
		n.deferredFlush(now)
	}
	h.eng.After(200*sim.Microsecond, h.housekeeping)
}

// DebugFlows reports mean cwnd, mean alpha, mean inflight and total
// timeouts/retransmits across the primary NIC's bulk Rx flows
// (diagnostics).
func (h *Host) DebugFlows() (cwnd, alpha, inflight float64, timeouts, rtx int64) {
	n := float64(len(h.net.rxFlows))
	if n == 0 {
		return
	}
	for _, f := range h.net.rxFlows {
		cwnd += f.snd.Cwnd()
		alpha += f.snd.Alpha()
		inflight += float64(f.snd.Inflight())
		timeouts += f.snd.Stats().Timeouts
		rtx += f.snd.Stats().Retransmits
	}
	return cwnd / n, alpha / n, inflight / n, timeouts, rtx
}
