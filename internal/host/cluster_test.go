package host

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/fabric"
	"fastsafe/internal/runner"
	"fastsafe/internal/sim"
	"fastsafe/internal/transport"
)

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Hosts: 1}); err == nil {
		t.Fatal("1-host cluster accepted")
	}
	_, err := NewCluster(ClusterConfig{Hosts: 4, Traffic: "mesh"})
	if err == nil {
		t.Fatal("unknown traffic pattern accepted")
	}
	if want := `unknown traffic pattern "mesh"`; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
	if _, err := ParseTraffic("incast"); err != nil {
		t.Fatal(err)
	}
}

// The 2-host incast cluster is the degenerate case: one sender, one
// receiver, both full hosts. Data flows 1 -> 0 and both ends move the
// same bytes.
func TestClusterDegenerateTwoHosts(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Hosts: 2, Host: Config{Mode: core.FNS, Audit: true}})
	if err != nil {
		t.Fatal(err)
	}
	r := c.Run(1*sim.Millisecond, 3*sim.Millisecond)
	if len(r.Hosts) != 2 {
		t.Fatalf("got %d host results", len(r.Hosts))
	}
	if r.Hosts[0].RxGbps <= 1 {
		t.Fatalf("receiver goodput %v, want > 1Gbps", r.Hosts[0].RxGbps)
	}
	if r.Hosts[1].TxGbps <= 1 {
		t.Fatalf("sender goodput %v, want > 1Gbps", r.Hosts[1].TxGbps)
	}
	if r.Hosts[0].TxGbps != 0 || r.Hosts[1].RxGbps != 0 {
		t.Fatalf("incast must be one-way: host0 tx=%v host1 rx=%v",
			r.Hosts[0].TxGbps, r.Hosts[1].RxGbps)
	}
	// Delivery is accounted at both ends in the same event, so the
	// cluster-wide totals agree exactly.
	if r.AggRxGbps != r.AggTxGbps {
		t.Fatalf("agg rx %v != agg tx %v", r.AggRxGbps, r.AggTxGbps)
	}
	if v := r.Violations(); v != 0 {
		t.Fatalf("stale-served DMAs on a healthy cluster: %d", v)
	}
}

func TestClusterTrafficPatterns(t *testing.T) {
	run := func(p TrafficPattern) ClusterResults {
		c, err := NewCluster(ClusterConfig{Hosts: 4, Traffic: p, Host: Config{Mode: core.FNS}})
		if err != nil {
			t.Fatal(err)
		}
		return c.Run(1*sim.Millisecond, 2*sim.Millisecond)
	}

	r := run(Pairs)
	for _, i := range []int{0, 2} {
		if r.Hosts[i].TxGbps <= 0 || r.Hosts[i].RxGbps != 0 {
			t.Fatalf("pairs: host%d tx=%v rx=%v, want sender only", i, r.Hosts[i].TxGbps, r.Hosts[i].RxGbps)
		}
	}
	for _, i := range []int{1, 3} {
		if r.Hosts[i].RxGbps <= 0 || r.Hosts[i].TxGbps != 0 {
			t.Fatalf("pairs: host%d tx=%v rx=%v, want receiver only", i, r.Hosts[i].TxGbps, r.Hosts[i].RxGbps)
		}
	}

	r = run(AllToAll)
	for i, h := range r.Hosts {
		if h.RxGbps <= 0 || h.TxGbps <= 0 {
			t.Fatalf("alltoall: host%d rx=%v tx=%v, want both directions", i, h.RxGbps, h.TxGbps)
		}
	}

	r = run(Incast)
	if r.Hosts[0].RxGbps <= 0 {
		t.Fatal("incast: host0 received nothing")
	}
	for i := 1; i < 4; i++ {
		if r.Hosts[i].RxGbps != 0 {
			t.Fatalf("incast: host%d rx=%v, want 0", i, r.Hosts[i].RxGbps)
		}
	}
}

// Clusters are deterministic like hosts: identical configs produce
// byte-identical rendered results.
func TestClusterDeterminism(t *testing.T) {
	run := func() string {
		c, err := NewCluster(ClusterConfig{
			Hosts: 4, FlowsPerPair: 2,
			Host:   Config{Mode: core.Strict, Audit: true},
			Fabric: fabric.Config{Oversub: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Run(1*sim.Millisecond, 2*sim.Millisecond).String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("cluster runs diverged:\n%s\n---\n%s", a, b)
	}
}

// Per-host registry counters must reproduce each host's global totals
// exactly, read through the shared cluster registry under "hostN."
// prefixes — the cluster-scale mirror of the per-domain attribution
// property. Clusters run concurrently through the runner pool, so the
// race detector also checks that parallel cluster simulations share no
// state.
func TestClusterRegistrySumsPerHost(t *testing.T) {
	iommuCounters := []string{
		"translations", "iotlb_hits", "iotlb_misses", "walks", "mem_reads",
		"l3_misses", "l2_misses", "l1_misses", "faults",
		"stale_iotlb_uses", "stale_pt_uses", "inv_requests",
		"iotlb_invalidated", "pt_invalidated",
		"ats_requests", "atc_inv_requests", "atc_invalidated",
	}
	type job struct {
		mode   core.Mode
		hosts  int
		shards int
		op     transport.Op
		ats    int
	}
	var jobs []runner.Job[string]
	for _, j := range []job{
		{mode: core.Strict, hosts: 2}, {mode: core.Strict, hosts: 4},
		{mode: core.FNS, hosts: 4}, {mode: core.Deferred, hosts: 3},
		// One-sided flows with a device TLB on a sharded engine: the ATS
		// counters must attribute across shard boundaries exactly like
		// the walk counters do on the shared engine.
		{mode: core.FNS, hosts: 8, shards: 4, op: transport.Write, ats: 256},
	} {
		j := j
		jobs = append(jobs, func(context.Context) (string, error) {
			cfg := ClusterConfig{
				Hosts:   j.hosts,
				Traffic: AllToAll,
				Shards:  j.shards,
				Op:      j.op,
				Host:    Config{Mode: j.mode, Audit: true, ATSEntries: j.ats},
			}
			// A storage co-tenant per host so every host has more than one
			// domain contributing to its totals.
			cfg.Host.Topology.Storage = []StorageSpec{{ReadGBps: 4}}
			c, err := NewCluster(cfg)
			if err != nil {
				return "", err
			}
			c.Run(1*sim.Millisecond, 2*sim.Millisecond)
			reg := c.Registry()
			for i, h := range c.Hosts() {
				for _, name := range iommuCounters {
					global, ok := reg.Value(fmt.Sprintf("host%d.iommu.%s", i, name))
					if !ok {
						return "", fmt.Errorf("host%d.iommu.%s not registered", i, name)
					}
					var sum float64
					for _, d := range h.Devices() {
						v, ok := reg.Value(fmt.Sprintf("host%d.%s.iommu.%s", i, d.Name(), name))
						if !ok {
							return "", fmt.Errorf("host%d.%s.iommu.%s not registered", i, d.Name(), name)
						}
						sum += v
					}
					if sum != global {
						return "", fmt.Errorf("%v hosts=%d host%d.iommu.%s: device sum %v != global %v",
							j.mode, j.hosts, i, name, sum, global)
					}
				}
			}
			return fmt.Sprintf("%v/%d ok", j.mode, j.hosts), nil
		})
	}
	if _, err := runner.Collect(context.Background(), runner.Config{}, jobs); err != nil {
		t.Fatal(err)
	}
}

// The shared registry also carries the fabric's probes, and hosts in a
// cluster keep fully separate IOMMUs.
func TestClusterRegistryAndIsolation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Hosts: 3, Host: Config{Mode: core.Strict}})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(1*sim.Millisecond, 1*sim.Millisecond)
	reg := c.Registry()
	if _, ok := reg.Value("fabric.port0.down.bytes"); !ok {
		t.Fatal("fabric probes not in the cluster registry")
	}
	if _, ok := reg.Value("host2.nic0.iommu.translations"); !ok {
		t.Fatal("per-host device probes not in the cluster registry")
	}
	seen := map[*Host]bool{}
	for i, h := range c.Hosts() {
		if seen[h] {
			t.Fatalf("host %d duplicated", i)
		}
		seen[h] = true
		for j, o := range c.Hosts() {
			if i != j && h.SharedIOMMU() == o.SharedIOMMU() {
				t.Fatalf("hosts %d and %d share an IOMMU", i, j)
			}
		}
		if h.Engine() != c.Engine() {
			t.Fatalf("host %d not on the cluster engine", i)
		}
	}
}
