package host

import (
	"math"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/iommu"
	"fastsafe/internal/sim"
)

// runTopology builds a host with n storage co-tenants attached through
// Topology and runs a short window. 1.5GB/s per device matches the
// multidev experiment figure: enough aggregate DMA to collapse strict
// mode at four co-tenants, below the regime where raw memory-bus and
// shared-IOTLB capacity pressure drags F&S down too (that effect is
// mode-independent).
func runTopology(t *testing.T, mode core.Mode, storageDevs int) Results {
	t.Helper()
	var topo Topology
	for i := 0; i < storageDevs; i++ {
		topo.Storage = append(topo.Storage, StorageSpec{ReadGBps: 1.5})
	}
	h, err := New(Config{Mode: mode, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	return h.Run(5*sim.Millisecond, 15*sim.Millisecond)
}

// The refactor's acceptance experiment: adding storage co-tenants through
// Topology degrades the strict-mode NIC's goodput monotonically, while
// F&S stays within 5% of its single-co-tenant value — the paper's thesis
// (§1: one IOMMU serves every DMA device, so protection cost scales with
// co-tenant pressure; F&S removes the pressure) extended to multi-device
// hosts.
func TestMultiDeviceInterference(t *testing.T) {
	counts := []int{0, 1, 2, 4}
	strict := make([]Results, len(counts))
	fns := make([]Results, len(counts))
	for i, n := range counts {
		strict[i] = runTopology(t, core.Strict, n)
		fns[i] = runTopology(t, core.FNS, n)
	}

	// Strict degrades monotonically once co-tenants exist, and the full
	// sweep costs it several Gbps end to end. (0 -> 1 is excluded from
	// the monotonic check: a single light device perturbs timing within
	// noise before invalidation pressure dominates.)
	for i := 2; i < len(counts); i++ {
		if strict[i].RxGbps >= strict[i-1].RxGbps {
			t.Errorf("strict NIC goodput did not degrade from %d to %d co-tenants: %.1f -> %.1f Gbps",
				counts[i-1], counts[i], strict[i-1].RxGbps, strict[i].RxGbps)
		}
	}
	if strict[len(counts)-1].RxGbps >= strict[0].RxGbps-5 {
		t.Errorf("strict NIC goodput with %d co-tenants (%.1f) not clearly below baseline (%.1f)",
			counts[len(counts)-1], strict[len(counts)-1].RxGbps, strict[0].RxGbps)
	}
	for i := 1; i < len(counts); i++ {
		if rel := math.Abs(fns[i].RxGbps-fns[1].RxGbps) / fns[1].RxGbps; rel > 0.05 {
			t.Errorf("FNS NIC goodput with %d co-tenants (%.1f) deviates %.1f%% from single-device value (%.1f)",
				counts[i], fns[i].RxGbps, rel*100, fns[1].RxGbps)
		}
	}

	// The per-device breakdown reflects the topology: primary NIC first,
	// then each storage device, each moving bytes in the window.
	r := strict[len(counts)-1]
	if want := 1 + counts[len(counts)-1]; len(r.Devices) != want {
		t.Fatalf("Devices rows = %d, want %d", len(r.Devices), want)
	}
	if r.Devices[0].Kind != "nic" || r.Devices[0].GoodputGbps <= 0 {
		t.Fatalf("primary NIC row malformed: %+v", r.Devices[0])
	}
	for _, d := range r.Devices[1:] {
		if d.Kind != "storage" {
			t.Fatalf("co-tenant row kind = %q, want storage", d.Kind)
		}
		if d.GoodputGbps <= 0 {
			t.Fatalf("storage device %s moved no bytes", d.Name)
		}
		if d.Invalidations == 0 {
			t.Fatalf("strict storage device %s submitted no invalidations", d.Name)
		}
	}
}

// Per-device attribution must be exact at host scale too: summing each
// domain's CountersOf over the shared IOMMU's Domains reproduces the
// global counters field-for-field after a full multi-device run.
func TestPerDeviceCountersSumToGlobal(t *testing.T) {
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		var topo Topology
		topo.Storage = append(topo.Storage, StorageSpec{ReadGBps: 4}, StorageSpec{ReadGBps: 4})
		h, err := New(Config{Mode: mode, Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		h.Run(2*sim.Millisecond, 6*sim.Millisecond)

		mmu := h.SharedIOMMU()
		doms := mmu.Domains()
		if len(doms) < 3 {
			t.Fatalf("%v: expected >= 3 domains (NIC + 2 storage), got %v", mode, doms)
		}
		var sum iommu.Counters
		for _, d := range doms {
			c := mmu.CountersOf(d)
			sum.Translations += c.Translations
			sum.IOTLBHits += c.IOTLBHits
			sum.IOTLBMisses += c.IOTLBMisses
			sum.Walks += c.Walks
			sum.MemReads += c.MemReads
			sum.L3Misses += c.L3Misses
			sum.L2Misses += c.L2Misses
			sum.L1Misses += c.L1Misses
			sum.Faults += c.Faults
			sum.StaleIOTLBUses += c.StaleIOTLBUses
			sum.StalePTUses += c.StalePTUses
			sum.InvRequests += c.InvRequests
			sum.IOTLBInvalidated += c.IOTLBInvalidated
			sum.PTInvalidated += c.PTInvalidated
		}
		if global := mmu.Counters(); sum != global {
			t.Fatalf("%v: per-domain counters don't sum to global:\n  sum:    %+v\n  global: %+v", mode, sum, global)
		}

		// Every attached device owns a distinct domain.
		seen := map[iommu.DomainID]string{}
		for _, d := range h.Devices() {
			id := d.Domain().ID()
			if prev, dup := seen[id]; dup {
				t.Fatalf("%v: devices %s and %s share domain %d", mode, prev, d.Name(), id)
			}
			seen[id] = d.Name()
		}
	}
}

// A second NIC attached through Topology runs a full independent
// datapath: its own domain, its own wire pair, real goodput — and the
// primary's top-level metrics remain the primary's alone.
func TestTopologyExtraNIC(t *testing.T) {
	h, err := New(Config{
		Mode:     core.FNS,
		Topology: Topology{NICs: []NICSpec{{}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := h.Run(5*sim.Millisecond, 15*sim.Millisecond)

	if len(r.Devices) != 2 {
		t.Fatalf("Devices rows = %d, want 2", len(r.Devices))
	}
	primary, second := r.Devices[0], r.Devices[1]
	if primary.Kind != "nic" || second.Kind != "nic" {
		t.Fatalf("kinds = %q/%q, want nic/nic", primary.Kind, second.Kind)
	}
	if second.GoodputGbps <= 0 {
		t.Fatalf("second NIC moved no bytes: %+v", second)
	}
	devs := h.Devices()
	if devs[0].Domain().ID() == devs[1].Domain().ID() {
		t.Fatal("both NICs attached to the same protection domain")
	}
	// Top-level RxGbps is the primary's share, not the host total.
	if r.RxGbps > primary.GoodputGbps+1 {
		t.Fatalf("top-level RxGbps (%.1f) includes the second NIC (primary %.1f)",
			r.RxGbps, primary.GoodputGbps)
	}
	if table := r.DeviceTable(); table == "" {
		t.Fatal("DeviceTable rendered empty")
	}
}
