package host

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
)

// goldenRun renders one configuration the way cmd/fssim prints it: the
// Results summary line plus the per-core utilisation row. The golden
// files lock these bytes across refactors of the construction path.
func goldenRun(t *testing.T, cfg Config, storageGBps float64) string {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if storageGBps > 0 {
		h.InstallStorage(StorageConfig{ReadGBps: storageGBps})
	}
	r := h.Run(2*sim.Millisecond, 6*sim.Millisecond)
	var b strings.Builder
	fmt.Fprintln(&b, r)
	fmt.Fprintf(&b, "per-core CPU utilisation: ")
	for _, u := range r.CPUUtil {
		fmt.Fprintf(&b, "%3.0f%% ", u*100)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// TestGoldenHostRunsByteIdentical locks the fssim-style output of the
// seed configurations: default strict and FNS, a ring sweep point, and
// the storage co-tenant path. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/host -run Golden.
func TestGoldenHostRunsByteIdentical(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	cases := []struct {
		name    string
		cfg     Config
		storage float64
	}{
		{"strict_default", Config{Mode: core.Strict}, 0},
		{"fns_default", Config{Mode: core.FNS}, 0},
		{"strict_ring1024", Config{Mode: core.Strict, RingPackets: 1024}, 0},
		{"strict_storage8", Config{Mode: core.Strict}, 8},
		{"fns_storage8", Config{Mode: core.FNS}, 8},
		{"deferred_seed3", Config{Mode: core.Deferred, Seed: 3}, 0},
	}
	for _, c := range cases {
		got := goldenRun(t, c.cfg, c.storage)
		path := filepath.Join("testdata", "golden", c.name+".txt")
		if update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with UPDATE_GOLDEN=1)", c.name, err)
		}
		if got != string(want) {
			t.Errorf("%s diverged from golden file:\ngot:\n%s\nwant:\n%s",
				c.name, got, string(want))
		}
	}
}
