package host

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/fault"
	"fastsafe/internal/sim"
	"fastsafe/internal/transport"
)

// clusterFaultSeeds is the cluster campaign's sweep width. It reuses the
// FAULT_SEEDS knob the single-host gauntlet reads (CI 64, nightly 1024)
// but divides it by 16: every cluster seed costs three 8-host runs, so
// the nightly 1024-seed directive becomes a 64-seed cluster sweep.
func clusterFaultSeeds(t *testing.T) int {
	n := 64 // local default -> 4 seeds
	if v := os.Getenv("FAULT_SEEDS"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i < 1 {
			t.Fatalf("FAULT_SEEDS=%q: want a positive integer", v)
		}
		n = i
	}
	if n = n / 16; n < 4 {
		n = 4
	}
	return n
}

// TestClusterFaultCampaign runs the adversarial fault campaign against
// sharded clusters: 8 hosts, incast, campaign intensity 0.3, with the
// translation auditor on every host. Per seed it checks the two
// properties the nightly sweep exists for — a sharded faulted run
// replays byte-identically under the same (seed, fault seed), and no
// host ever serves a stale DMA, sharded or not. Fault injection must be
// non-vacuous on both engine paths.
func TestClusterFaultCampaign(t *testing.T) {
	const (
		hosts   = 8
		shards  = 2
		warmup  = 1 * sim.Millisecond
		measure = 2 * sim.Millisecond
	)
	plan := fault.Campaign(0.3)
	run := func(t *testing.T, seed int64, nShards int, op transport.Op, ats int) (string, ClusterResults) {
		c, err := NewCluster(ClusterConfig{
			Hosts:   hosts,
			Traffic: Incast,
			Shards:  nShards,
			Op:      op,
			Host: Config{
				Mode:       core.FNS,
				Seed:       seed,
				Faults:     plan,
				FaultSeed:  seed,
				Audit:      true,
				ATSEntries: ats,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := c.Run(warmup, measure)
		return clusterKey(r), r
	}
	for i := 0; i < clusterFaultSeeds(t); i++ {
		seed := int64(i + 1)
		// Alternate the peer-flow verb by seed so the sweep covers the
		// one-sided RDMA datapath (device ATC + faults) at the same cost:
		// odd seeds run two-sided send/recv, even seeds one-sided WRITE
		// through a 256-entry device TLB.
		op, ats := transport.SendRecv, 0
		if seed%2 == 0 {
			op, ats = transport.Write, 256
		}
		t.Run(fmt.Sprintf("seed%d_%s", seed, op), func(t *testing.T) {
			t.Parallel()
			key1, r1 := run(t, seed, shards, op, ats)
			key2, _ := run(t, seed, shards, op, ats)
			if key1 != key2 {
				t.Fatalf("sharded faulted replay diverged for seed %d", seed)
			}
			_, unsharded := run(t, seed, 1, op, ats)
			for _, r := range []ClusterResults{r1, unsharded} {
				if v := r.Violations(); v != 0 {
					t.Fatalf("fns cluster served %d stale DMAs (seed %d)", v, seed)
				}
				var injected, checked int64
				for _, h := range r.Hosts {
					injected += h.FaultsInjected
					if h.Safety != nil {
						checked += h.Safety.Checked
					}
				}
				if injected == 0 {
					t.Fatalf("campaign injected nothing (seed %d) — the sweep is vacuous", seed)
				}
				if checked == 0 {
					t.Fatalf("auditor checked nothing (seed %d) — the sweep is vacuous", seed)
				}
			}
		})
	}
}
