package host

import (
	"os"
	"runtime"
	"testing"
	"time"

	"fastsafe/internal/core"
	"fastsafe/internal/race"
	"fastsafe/internal/sim"
)

// TestClusterScaleSpeedup is the CI scaling gate: on a multi-core runner
// the sharded engine must cut a 64-host cluster's wall-clock by at least
// 1.5x at four shards. It is opt-in (CLUSTER_SCALE_GATE=1) because the
// measurement needs >= 4 otherwise-idle cores — the default test jobs
// share runners with other work and a loaded box would flake.
//
// Two workloads run. The balanced pairs pattern carries the assertion:
// its events spread almost evenly across shards, so it measures what the
// engine can deliver. The paper's incast is measured and logged but not
// asserted: it concentrates roughly two thirds of all events on the
// receiver's shard, and no conservative-parallel schedule can beat that
// serial fraction (the hot-LP bound) — gating on it would test Amdahl's
// law, not this engine.
func TestClusterScaleSpeedup(t *testing.T) {
	if os.Getenv("CLUSTER_SCALE_GATE") == "" {
		t.Skip("set CLUSTER_SCALE_GATE=1 to run the wall-clock scaling gate (needs >= 4 idle cores)")
	}
	if race.Enabled {
		t.Skip("wall-clock scaling is meaningless under the race detector")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("scaling gate needs >= 4 cores, have %d", n)
	}
	const (
		hosts   = 64
		warmup  = 1 * sim.Millisecond
		measure = 4 * sim.Millisecond
		minGain = 1.5
	)
	wall := func(traffic TrafficPattern, shards int) time.Duration {
		var best time.Duration
		for rep := 0; rep < 2; rep++ { // best-of-2 shields against scheduler noise
			c, err := NewCluster(ClusterConfig{
				Hosts:   hosts,
				Traffic: traffic,
				Shards:  shards,
				Host:    Config{Mode: core.FNS, Audit: true},
			})
			if err != nil {
				t.Fatalf("%s/%d shards: %v", traffic, shards, err)
			}
			start := time.Now()
			c.Run(warmup, measure)
			if elapsed := time.Since(start); best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best
	}
	for _, shards := range []int{1, 2, 4} {
		t.Logf("incast hosts=%d shards=%d wall=%v (informational: hot-LP bound)",
			hosts, shards, wall(Incast, shards))
	}
	base := wall(Pairs, 1)
	sharded := wall(Pairs, 4)
	speedup := float64(base) / float64(sharded)
	t.Logf("pairs hosts=%d: shards=1 %v, shards=4 %v, speedup %.2fx", hosts, base, sharded, speedup)
	if speedup < minGain {
		t.Errorf("4-shard speedup %.2fx below the %.1fx gate (base %v, sharded %v)",
			speedup, minGain, base, sharded)
	}
}
