package host

import (
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/device"
	"fastsafe/internal/sim"
)

// run executes a short iperf-style experiment and returns results. Windows
// are kept small so the full test suite stays fast; shape assertions use
// generous margins.
func run(t *testing.T, cfg Config) Results {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h.Run(5*sim.Millisecond, 15*sim.Millisecond)
}

func TestOffSaturatesLink(t *testing.T) {
	r := run(t, Config{Mode: core.Off})
	if r.RxGbps < 95 {
		t.Fatalf("off throughput = %.1f Gbps, want ~100", r.RxGbps)
	}
	if r.DropRate != 0 {
		t.Fatalf("off drop rate = %v, want 0", r.DropRate)
	}
	if r.ReadsPerPage != 0 {
		t.Fatal("off mode performed page-table reads")
	}
}

func TestStrictDegradesThroughput(t *testing.T) {
	off := run(t, Config{Mode: core.Off})
	strict := run(t, Config{Mode: core.Strict})
	if strict.RxGbps >= off.RxGbps-2 {
		t.Fatalf("strict (%.1f) not below off (%.1f)", strict.RxGbps, off.RxGbps)
	}
	// The unavoidable one-IOTLB-miss-per-page floor (§2.2).
	if strict.IOTLBPerPage < 1.0 {
		t.Fatalf("strict IOTLB misses/page = %.2f, want >= 1", strict.IOTLBPerPage)
	}
	if strict.ReadsPerPage < 1.3 {
		t.Fatalf("strict reads/page = %.2f, want > 1.3", strict.ReadsPerPage)
	}
}

func TestFNSMatchesOff(t *testing.T) {
	off := run(t, Config{Mode: core.Off})
	fns := run(t, Config{Mode: core.FNS})
	if fns.RxGbps < off.RxGbps*0.97 {
		t.Fatalf("FNS (%.1f) below off (%.1f)", fns.RxGbps, off.RxGbps)
	}
	// Figure 7d: zero PTcache-L1/L2 misses, near-zero L3.
	if fns.L1PerPage != 0 || fns.L2PerPage != 0 {
		t.Fatalf("FNS L1/L2 misses per page = %v/%v, want 0", fns.L1PerPage, fns.L2PerPage)
	}
	if fns.L3PerPage > 0.054 {
		t.Fatalf("FNS L3 misses/page = %.3f, want <= 0.054 (§1)", fns.L3PerPage)
	}
	// Still at least one IOTLB miss per page: strict safety is intact.
	if fns.IOTLBPerPage < 1.0 {
		t.Fatalf("FNS IOTLB misses/page = %.2f, want >= 1", fns.IOTLBPerPage)
	}
	if fns.StaleIOTLB != 0 || fns.StalePT != 0 {
		t.Fatal("FNS used stale entries")
	}
}

func TestFNSReducesCostPerMiss(t *testing.T) {
	strict := run(t, Config{Mode: core.Strict})
	fns := run(t, Config{Mode: core.FNS})
	strictCost := strict.ReadsPerPage / strict.IOTLBPerPage
	fnsCost := fns.ReadsPerPage / fns.IOTLBPerPage
	if fnsCost > 1.05 {
		t.Fatalf("FNS reads per miss = %.2f, want ~1", fnsCost)
	}
	if strictCost < 1.25 {
		t.Fatalf("strict reads per miss = %.2f, want inflated", strictCost)
	}
}

func TestStrictDropsGrowWithFlows(t *testing.T) {
	// Figure 2b/2c: drop and ACK rates grow with flow count. The simulated
	// transport regime-shifts at very high flow counts (ECN throttling
	// takes over from drops — see EXPERIMENTS.md), so the monotone range
	// 5 -> 20 is asserted.
	r5 := run(t, Config{Mode: core.Strict, RxFlows: 5})
	r20 := run(t, Config{Mode: core.Strict, RxFlows: 20})
	if r20.DropRate <= r5.DropRate {
		t.Fatalf("drops at 20 flows (%.4f) not above 5 flows (%.4f)", r20.DropRate, r5.DropRate)
	}
	if r20.AcksPerPage <= r5.AcksPerPage {
		t.Fatalf("ACK rate at 20 flows (%.3f) not above 5 flows (%.3f)", r20.AcksPerPage, r5.AcksPerPage)
	}
}

func TestBatchedInvalidationsReduceRequests(t *testing.T) {
	strict := run(t, Config{Mode: core.Strict})
	fns := run(t, Config{Mode: core.FNS})
	// F&S: one ranged request per descriptor vs one per page (Figure 6).
	// Per-ACK invalidations remain in both modes, so the aggregate factor
	// is below the per-descriptor 64x.
	if fns.InvRequests*5 > strict.InvRequests {
		t.Fatalf("FNS InvRequests = %d vs strict %d, want >= 5x fewer", fns.InvRequests, strict.InvRequests)
	}
}

func TestAblationOrdering(t *testing.T) {
	// Figure 12: Linux <= Linux+A, Linux+B < F&S in reads per page
	// (inverted: F&S has the fewest reads).
	strict := run(t, Config{Mode: core.Strict})
	a := run(t, Config{Mode: core.StrictPreserve})
	b := run(t, Config{Mode: core.StrictContig})
	fns := run(t, Config{Mode: core.FNS})
	// F&S is at least as good as either ablation alone (on this iperf
	// microbenchmark ablation A alone can tie; Figure 12's Redis workload
	// separates them further).
	if fns.ReadsPerPage > a.ReadsPerPage+0.02 || fns.ReadsPerPage > b.ReadsPerPage+0.02 {
		t.Fatalf("F&S reads (%.2f) above an ablation (A=%.2f, B=%.2f)",
			fns.ReadsPerPage, a.ReadsPerPage, b.ReadsPerPage)
	}
	if !(a.ReadsPerPage < strict.ReadsPerPage) {
		t.Fatalf("ablation A reads (%.2f) not below strict (%.2f)", a.ReadsPerPage, strict.ReadsPerPage)
	}
	if !(b.ReadsPerPage < strict.ReadsPerPage) {
		t.Fatalf("ablation B reads (%.2f) not below strict (%.2f)", b.ReadsPerPage, strict.ReadsPerPage)
	}
}

func TestDeferredFasterButUnsafeWindowExists(t *testing.T) {
	r := run(t, Config{Mode: core.Deferred})
	if r.RxGbps < 80 {
		t.Fatalf("deferred throughput = %.1f, want high", r.RxGbps)
	}
}

func TestPersistentNoInvalidations(t *testing.T) {
	r := run(t, Config{Mode: core.Persistent})
	if r.InvRequests != 0 {
		t.Fatalf("persistent mode issued %d invalidations", r.InvRequests)
	}
	if r.RxGbps < 90 {
		t.Fatalf("persistent throughput = %.1f", r.RxGbps)
	}
}

func TestSafetyCountersZeroInStrictModes(t *testing.T) {
	for _, m := range []core.Mode{core.Strict, core.StrictPreserve, core.StrictContig, core.FNS} {
		r := run(t, Config{Mode: m})
		if r.StaleIOTLB != 0 || r.StalePT != 0 {
			t.Fatalf("mode %v: stale uses IOTLB=%d PT=%d", m, r.StaleIOTLB, r.StalePT)
		}
	}
}

func TestRingSizeDegradesStrictThroughput(t *testing.T) {
	// Figure 3a: strict throughput falls as ring size grows, and the gap
	// to IOMMU-off widens. (The paper additionally attributes part of this
	// to rising PTcache-L3 misses; in this simulator the allocator's
	// tree-recycling sorts addresses at large rings, so the throughput
	// trend is carried by the CPU-cost term — see EXPERIMENTS.md.)
	smallOff := run(t, Config{Mode: core.Off, RingPackets: 256})
	bigOff := run(t, Config{Mode: core.Off, RingPackets: 2048})
	small := run(t, Config{Mode: core.Strict, RingPackets: 256})
	big := run(t, Config{Mode: core.Strict, RingPackets: 2048})
	if big.RxGbps >= small.RxGbps {
		t.Fatalf("strict at ring 2048 (%.1f) not below ring 256 (%.1f)", big.RxGbps, small.RxGbps)
	}
	gapSmall := smallOff.RxGbps - small.RxGbps
	gapBig := bigOff.RxGbps - big.RxGbps
	if gapBig <= gapSmall {
		t.Fatalf("strict-vs-off gap did not widen with ring size: %.1f -> %.1f", gapSmall, gapBig)
	}
}

func TestFNSCPUGapAtLargeRings(t *testing.T) {
	// §4.4 / Figure 8a: at ring 2048 F&S becomes CPU-bound and trails
	// IOMMU-off slightly, while still beating strict.
	off := run(t, Config{Mode: core.Off, RingPackets: 2048})
	fns := run(t, Config{Mode: core.FNS, RingPackets: 2048})
	strict := run(t, Config{Mode: core.Strict, RingPackets: 2048})
	if fns.RxGbps >= off.RxGbps {
		t.Fatalf("FNS at ring 2048 (%.1f) not below off (%.1f)", fns.RxGbps, off.RxGbps)
	}
	if fns.RxGbps <= strict.RxGbps {
		t.Fatalf("FNS at ring 2048 (%.1f) not above strict (%.1f)", fns.RxGbps, strict.RxGbps)
	}
	if fns.MaxCPUUtil < 0.9 {
		t.Fatalf("FNS at ring 2048 CPU util = %.2f, want near saturation", fns.MaxCPUUtil)
	}
}

func TestFNSL3IndependentOfRingSize(t *testing.T) {
	small := run(t, Config{Mode: core.FNS, RingPackets: 256})
	big := run(t, Config{Mode: core.FNS, RingPackets: 2048})
	if big.L3PerPage > 0.054 || small.L3PerPage > 0.054 {
		t.Fatalf("FNS L3 misses/page = %.3f / %.3f, want <= 0.054 at any ring size",
			small.L3PerPage, big.L3PerPage)
	}
}

func TestBidirectionalInterference(t *testing.T) {
	cfg := Config{Cores: 4, RxFlows: 4, TxFlows: 4}
	cfg.Mode = core.Off
	off, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ro := off.Run(5*sim.Millisecond, 15*sim.Millisecond)
	cfg.Mode = core.Strict
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := st.Run(5*sim.Millisecond, 15*sim.Millisecond)
	cfg.Mode = core.FNS
	fh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rf := fh.Run(5*sim.Millisecond, 15*sim.Millisecond)

	if ro.RxGbps < 90 || ro.TxGbps < 90 {
		t.Fatalf("off bidirectional = %.1f/%.1f, want ~100/100", ro.RxGbps, ro.TxGbps)
	}
	// Figure 10: strict Rx suffers badly under Rx/Tx interference.
	if rs.RxGbps > ro.RxGbps*0.8 {
		t.Fatalf("strict bidirectional Rx = %.1f, want far below off (%.1f)", rs.RxGbps, ro.RxGbps)
	}
	// F&S substantially recovers.
	if rf.RxGbps < rs.RxGbps*1.2 {
		t.Fatalf("FNS bidirectional Rx = %.1f, want well above strict (%.1f)", rf.RxGbps, rs.RxGbps)
	}
}

func TestRPCLatencyOrdering(t *testing.T) {
	runRPC := func(mode core.Mode) Results {
		h, err := New(Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		h.InstallMessages(MsgConfig{Pattern: LocalServes, Streams: 1, Depth: 1,
			ReqBytes: 4096, RespBytes: 4096, AppCPU: 2000, Cores: 1, CoreBase: 5})
		return h.Run(5*sim.Millisecond, 20*sim.Millisecond)
	}
	off := runRPC(core.Off)
	strict := runRPC(core.Strict)
	fns := runRPC(core.FNS)
	if off.Completed == 0 || strict.Completed == 0 || fns.Completed == 0 {
		t.Fatalf("RPCs completed: off=%d strict=%d fns=%d", off.Completed, strict.Completed, fns.Completed)
	}
	offP := off.Percentiles()
	strictP := strict.Percentiles()
	fnsP := fns.Percentiles()
	// Figure 9 shape: strict P99 well above off; F&S within ~1.5x of off.
	if strictP[2] <= offP[2] {
		t.Fatalf("strict P99 (%d) not above off (%d)", strictP[2], offP[2])
	}
	if float64(fnsP[2]) > float64(offP[2])*2.0 {
		t.Fatalf("FNS P99 (%d) more than 2x off (%d)", fnsP[2], offP[2])
	}
}

func TestMessagesLocalClientPattern(t *testing.T) {
	h, err := New(Config{Mode: core.FNS, Cores: 4, RxFlows: -1})
	if err != nil {
		t.Fatal(err)
	}
	h.InstallMessages(MsgConfig{Pattern: LocalClient, Streams: 8, Depth: 8,
		ReqBytes: 200, RespBytes: 128 << 10, AppCPU: 1000})
	r := h.Run(5*sim.Millisecond, 15*sim.Millisecond)
	if r.Completed == 0 {
		t.Fatal("no exchanges completed")
	}
	if r.MsgGbps < 50 {
		t.Fatalf("bulk-inbound message rate = %.1f Gbps, want high", r.MsgGbps)
	}
}

func TestMessagesSurviveDropsViaRetry(t *testing.T) {
	// Force heavy drops with a tiny NIC buffer; exchanges must still
	// complete through retries.
	h, err := New(Config{Mode: core.Strict, Cores: 2, RxFlows: -1, NICBufferBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	h.InstallMessages(MsgConfig{Pattern: LocalServes, Streams: 16, Depth: 32,
		ReqBytes: 64 << 10, RespBytes: 64, AppCPU: 500})
	r := h.Run(5*sim.Millisecond, 30*sim.Millisecond)
	if r.Completed == 0 {
		t.Fatal("no exchanges completed under drops")
	}
	if r.MsgRetries == 0 {
		t.Fatal("expected message retries under a tiny buffer")
	}
}

func TestTraceEnabled(t *testing.T) {
	h, err := New(Config{Mode: core.Strict, Telemetry: TelemetryConfig{TraceL3: true, TraceLimit: 5000}})
	if err != nil {
		t.Fatal(err)
	}
	r := h.Run(2*sim.Millisecond, 5*sim.Millisecond)
	if r.Trace == nil || len(r.Trace.Dists) == 0 {
		t.Fatal("trace not recorded")
	}
}

func TestCPUUtilisationReported(t *testing.T) {
	r := run(t, Config{Mode: core.Strict})
	if r.MaxCPUUtil <= 0 || r.MaxCPUUtil > 1.5 {
		t.Fatalf("MaxCPUUtil = %v", r.MaxCPUUtil)
	}
	if len(r.CPUUtil) == 0 {
		t.Fatal("no per-core utilisation")
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, Config{Mode: core.Strict, Seed: 7})
	b := run(t, Config{Mode: core.Strict, Seed: 7})
	if a.RxGbps != b.RxGbps || a.ReadsPerPage != b.ReadsPerPage || a.DropRate != b.DropRate {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestCoreQueueSerialises(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCore(eng)
	var order []int
	c.Do(func() sim.Duration { order = append(order, 1); return 100 }, func() { order = append(order, 2) })
	c.Do(func() sim.Duration { order = append(order, 3); return 50 }, nil)
	eng.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.BusyTime() != 150 {
		t.Fatalf("BusyTime = %v, want 150", c.BusyTime())
	}
	if eng.Now() != 150 {
		t.Fatalf("clock = %v, want 150", eng.Now())
	}
}

func TestWireSerialisationAndECN(t *testing.T) {
	eng := sim.NewEngine(1)
	w := NewWire(eng, 1, 1000) // 1 Gbps: 4KB takes ~32.8us to serialise
	w.SetECN(4096)
	var marks []bool
	// Offer 2x the line rate for a while: a standing queue builds and the
	// averaged backlog must start marking; transient bursts must not.
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 16 * sim.Microsecond
		eng.At(at, func() {
			w.Send(4096, func(ecn bool) { marks = append(marks, ecn) })
		})
	}
	eng.RunAll()
	if marks[0] {
		t.Fatal("first packet marked on an empty wire")
	}
	marked := 0
	for _, m := range marks {
		if m {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no ECN marks despite a standing queue above K")
	}
	if w.Marked() != int64(marked) {
		t.Fatal("mark counter mismatch")
	}
	if w.Bytes() != 100*4096 {
		t.Fatalf("Bytes = %d", w.Bytes())
	}
}

func TestAnalyticModelTracksSimulation(t *testing.T) {
	// §2.2: T = p/(l0 + M*lm) tracks measured throughput within ~10% when
	// PCIe is the bottleneck. Verified on the strict configuration, which
	// is PCIe-bound.
	r := run(t, Config{Mode: core.Strict, RxFlows: 5})
	frame := 4096.0 + 66
	ser := frame * 8 / 128
	svc := 65 + r.RxReadsPerDMA*197
	if ser > svc {
		svc = ser
	}
	est := 4096 * 8 / svc // payload Gbps
	if est > 100 {
		est = 100
	}
	// Allow headroom for drop-loss and queueing effects the closed-form
	// model ignores; the paper reports ~10%.
	rel := est/r.RxGbps - 1
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.20 {
		t.Fatalf("model estimate %.1f vs simulated %.1f: %.0f%% off", est, r.RxGbps, rel*100)
	}
}

func TestFNSHugeCutsIOTLBMisses(t *testing.T) {
	// §5 extension: hugepage-backed descriptors reduce the miss *count*
	// below the strict one-per-page floor, at 2MB revocation granularity.
	fns := run(t, Config{Mode: core.FNS})
	huge := run(t, Config{Mode: core.FNSHuge})
	if huge.RxGbps < 95 {
		t.Fatalf("fns+huge throughput = %.1f", huge.RxGbps)
	}
	if huge.IOTLBPerPage > fns.IOTLBPerPage/3 {
		t.Fatalf("fns+huge IOTLB/page = %.3f, want far below fns (%.3f)",
			huge.IOTLBPerPage, fns.IOTLBPerPage)
	}
	if huge.StaleIOTLB != 0 || huge.StalePT != 0 {
		t.Fatal("fns+huge used stale entries")
	}
	if huge.L1PerPage != 0 || huge.L2PerPage != 0 {
		t.Fatal("fns+huge PTcache-L1/L2 misses should be zero")
	}
}

func TestStorageCoTenantPollutesStrictNotFNS(t *testing.T) {
	// A storage device sharing the IOMMU inflates the network datapath's
	// translation cost under strict mode far more than under F&S.
	runWith := func(mode core.Mode, gbps float64) Results {
		h, err := New(Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		var dev *device.Storage
		if gbps > 0 {
			dev = h.InstallStorage(StorageConfig{ReadGBps: gbps})
		}
		r := h.Run(5*sim.Millisecond, 15*sim.Millisecond)
		if dev != nil && dev.Blocks() == 0 {
			t.Fatal("storage device issued no blocks")
		}
		return r
	}
	strictBase := runWith(core.Strict, 0)
	strictLoaded := runWith(core.Strict, 8)
	fnsBase := runWith(core.FNS, 0)
	fnsLoaded := runWith(core.FNS, 8)
	if strictLoaded.ReadsPerPage <= strictBase.ReadsPerPage {
		t.Fatalf("storage load did not inflate strict reads: %.2f vs %.2f",
			strictLoaded.ReadsPerPage, strictBase.ReadsPerPage)
	}
	// Strict loses network throughput to the co-tenant; F&S does not.
	if strictLoaded.RxGbps >= strictBase.RxGbps-2 {
		t.Fatalf("strict under storage load (%.1f) not below baseline (%.1f)",
			strictLoaded.RxGbps, strictBase.RxGbps)
	}
	if fnsLoaded.RxGbps < fnsBase.RxGbps*0.98 {
		t.Fatalf("FNS under storage load (%.1f) fell below baseline (%.1f)",
			fnsLoaded.RxGbps, fnsBase.RxGbps)
	}
	// And strict's read inflation exceeds F&S's (same normaliser).
	if strictLoaded.ReadsPerPage-strictBase.ReadsPerPage <=
		fnsLoaded.ReadsPerPage-fnsBase.ReadsPerPage {
		t.Fatalf("strict read inflation (%.2f) not above FNS's (%.2f)",
			strictLoaded.ReadsPerPage-strictBase.ReadsPerPage,
			fnsLoaded.ReadsPerPage-fnsBase.ReadsPerPage)
	}
}

func TestPacketConservation(t *testing.T) {
	// Every packet that arrives at the NIC is either dropped or eventually
	// delivered; none are lost by the plumbing. Run the flows, then stop
	// the senders (drain) and compare.
	h, err := New(Config{Mode: core.Strict, RxFlows: 10})
	if err != nil {
		t.Fatal(err)
	}
	h.Run(5*sim.Millisecond, 15*sim.Millisecond)
	// Drain: no new sends (senders are window-limited and we stop pumping
	// by running only the existing queue until empty or quiescent).
	st := h.NIC().Stats()
	inFlight := h.NIC().BufferOccupancy()
	delivered := st.RxDMAs // every Rx DMA completion is a delivery
	if delivered+st.Dropped > st.Arrived {
		t.Fatalf("delivered(%d)+dropped(%d) > arrived(%d)", delivered, st.Dropped, st.Arrived)
	}
	// Whatever is missing must still be buffered or in flight on the link.
	missing := st.Arrived - delivered - st.Dropped
	if missing < 0 || (missing > 0 && inFlight == 0 && missing > 16) {
		t.Fatalf("%d packets unaccounted for (buffer %dB)", missing, inFlight)
	}
}

func TestBufferNeverNegative(t *testing.T) {
	h, err := New(Config{Mode: core.FNS, RxFlows: 8, NICBufferBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	for tick := sim.Duration(1); tick <= 20; tick++ {
		h.Engine().Run(tick * sim.Millisecond)
		if h.NIC().BufferOccupancy() < 0 {
			t.Fatalf("negative buffer occupancy at %v", tick)
		}
	}
}

func TestSingleCoreSingleFlow(t *testing.T) {
	r := run(t, Config{Mode: core.FNS, Cores: 1, RxFlows: 1})
	if r.RxGbps < 20 {
		t.Fatalf("single flow throughput = %.1f, want window-limited but alive", r.RxGbps)
	}
	if r.StaleIOTLB != 0 || r.StalePT != 0 {
		t.Fatal("stale uses in single-flow config")
	}
}

func TestJumboMTUEndToEnd(t *testing.T) {
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		r := run(t, Config{Mode: mode, MTU: 9000, Cores: 8, RxFlows: 8})
		if r.RxGbps < 50 {
			t.Fatalf("mode %v: 9K-MTU throughput = %.1f", mode, r.RxGbps)
		}
		if r.StaleIOTLB != 0 || r.StalePT != 0 {
			t.Fatalf("mode %v: stale uses at 9K MTU", mode)
		}
	}
}

func TestMemoryHogHurtsStrictMost(t *testing.T) {
	// §2.2: memory contention inflates walk latency; strict's multi-read
	// walks expose it to more of that inflation than F&S's one-read walks.
	withHog := func(mode core.Mode, hog float64) Results {
		return run(t, Config{Mode: mode, MemHogGBps: hog})
	}
	offLoaded := withHog(core.Off, 12)
	strictBase := withHog(core.Strict, 0)
	strictLoaded := withHog(core.Strict, 12)
	fnsLoaded := withHog(core.FNS, 12)

	// The hog only hurts via page-table reads: untranslated DMA is immune.
	if offLoaded.RxGbps < 95 {
		t.Fatalf("off under hog = %.1f: the hog must not touch untranslated DMA", offLoaded.RxGbps)
	}
	if strictLoaded.RxGbps >= strictBase.RxGbps-2 {
		t.Fatalf("strict under hog (%.1f) not below baseline (%.1f)",
			strictLoaded.RxGbps, strictBase.RxGbps)
	}
	// F&S still beats strict under contention (fewer reads exposed).
	if fnsLoaded.RxGbps < strictLoaded.RxGbps {
		t.Fatalf("FNS under hog (%.1f) below strict (%.1f)",
			fnsLoaded.RxGbps, strictLoaded.RxGbps)
	}
	if strictLoaded.MemUtil <= strictBase.MemUtil {
		t.Fatal("hog did not raise memory utilisation")
	}
}

func TestDDIOReducesMemoryPressure(t *testing.T) {
	// §4.1: enabling DDIO has negligible impact on IOMMU cache behaviour;
	// it lowers memory-bus pressure (DMA lands in LLC).
	base := run(t, Config{Mode: core.FNS})
	ddio := run(t, Config{Mode: core.FNS, DDIO: true})
	if ddio.MemUtil >= base.MemUtil {
		t.Fatalf("DDIO mem util (%.2f) not below DDIO-off (%.2f)", ddio.MemUtil, base.MemUtil)
	}
	if ddio.RxGbps < base.RxGbps*0.98 {
		t.Fatalf("DDIO throughput regressed: %.1f vs %.1f", ddio.RxGbps, base.RxGbps)
	}
	if d := ddio.ReadsPerPage - base.ReadsPerPage; d > 0.1 || d < -0.1 {
		t.Fatalf("DDIO changed IOMMU behaviour: reads/pg %.2f vs %.2f", ddio.ReadsPerPage, base.ReadsPerPage)
	}
}
