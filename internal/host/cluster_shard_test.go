package host

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/runner"
	"fastsafe/internal/sim"
	"fastsafe/internal/transport"
)

// shardTestConfig returns a small cluster config exercising every
// cross-shard path: oversubscribed core (three fabric hops), audit on,
// timeline sampling on.
func shardTestConfig(hosts, shards int, traffic TrafficPattern) ClusterConfig {
	cfg := ClusterConfig{
		Hosts:   hosts,
		Traffic: traffic,
		Shards:  shards,
		Host: Config{
			Mode:      core.FNS,
			Audit:     true,
			Telemetry: TelemetryConfig{SampleEvery: 200 * sim.Microsecond},
		},
	}
	cfg.Fabric.Oversub = 2
	return cfg
}

// resultsKey renders every deterministic scalar of a Results to full
// float precision — the exact comparison key the determinism tests use.
// Timeline series are excluded: a sharded run's mid-window sampler can
// observe the sender-side Tx mirror credit a barrier later than the
// shared-engine run does (see netDev.creditPeerTx) — timeline determinism
// across GOMAXPROCS is asserted separately.
func resultsKey(h Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rx=%v tx=%v drop=%v mark=%v pages=%v", h.RxGbps, h.TxGbps, h.DropRate, h.MarkRate, h.PagesRxed)
	fmt.Fprintf(&b, " iotlb=%v l1=%v l2=%v l3=%v reads=%v acks=%v rpd=%v",
		h.IOTLBPerPage, h.L1PerPage, h.L2PerPage, h.L3PerPage, h.ReadsPerPage, h.AcksPerPage, h.RxReadsPerDMA)
	fmt.Fprintf(&b, " cpu=%v maxcpu=%v pcie=%v mem=%v", h.CPUUtil, h.MaxCPUUtil, h.PCIeRxUtil, h.MemUtil)
	fmt.Fprintf(&b, " staletlb=%d stalept=%d inv=%d to=%d rtx=%d faults=%d",
		h.StaleIOTLB, h.StalePT, h.InvRequests, h.Timeouts, h.Retransmits, h.FaultsInjected)
	if h.Safety != nil {
		fmt.Fprintf(&b, " violations=%d", h.Safety.Violations())
	}
	return b.String()
}

func clusterKey(r ClusterResults) string {
	var b strings.Builder
	fmt.Fprintf(&b, "agg_rx=%v agg_tx=%v stale=%d\n", r.AggRxGbps, r.AggTxGbps, r.Violations())
	for i, h := range r.Hosts {
		fmt.Fprintf(&b, "host%d %s\n", i, resultsKey(h))
	}
	return b.String()
}

// floatTol is the relative tolerance for smoothed float gauges in the
// strict sharded-vs-unsharded comparison: EWMA utilisation gauges
// integrate sub-nanosecond scheduling perturbations as ~1e-8 relative
// noise even when every discrete counter matches exactly.
const floatTol = 1e-6

// relaxedTol bounds aggregate throughput for the congested comparisons.
// When two packets from different shards reach the saturated core link in
// the same nanosecond with the same generation time, the coordinator
// arbitrates them by its canonical (timestamp, generation, shard, order)
// rule while the sequential engine replays its own global scheduling
// history — an ordering no shard can observe. Each swap shifts the queue
// chain by one serialization time (~81ns) and under sustained congestion
// the swaps reshuffle ECN marks and timeouts, so congested configs are
// compared statistically: aggregates within relaxedTol, safety verdicts
// exact, and the sharded schedule itself pinned by decomposition
// invariance (identical bytes for 2, 4 and 8 shards).
const relaxedTol = 1e-2

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb < 0 {
		bb = -bb
		if bb > m {
			m = bb
		}
	} else if b > m {
		m = b
	}
	return d <= floatTol*m
}

// compareResults asserts the sharded host results match the unsharded
// ones: integer outcomes exactly, float metrics within floatTol.
func compareResults(t *testing.T, label string, got, want Results) {
	t.Helper()
	ints := [][2]int64{
		{got.StaleIOTLB, want.StaleIOTLB}, {got.StalePT, want.StalePT},
		{got.InvRequests, want.InvRequests}, {got.Timeouts, want.Timeouts},
		{got.Retransmits, want.Retransmits}, {got.FaultsInjected, want.FaultsInjected},
	}
	if (got.Safety != nil) != (want.Safety != nil) {
		t.Errorf("%s: Safety presence mismatch", label)
	} else if got.Safety != nil {
		ints = append(ints, [2]int64{got.Safety.Violations(), want.Safety.Violations()})
	}
	for i, p := range ints {
		if p[0] != p[1] {
			t.Errorf("%s: integer metric %d: got %d, want %d", label, i, p[0], p[1])
		}
	}
	floats := [][2]float64{
		{got.RxGbps, want.RxGbps}, {got.TxGbps, want.TxGbps},
		{got.DropRate, want.DropRate}, {got.MarkRate, want.MarkRate},
		{got.PagesRxed, want.PagesRxed}, {got.IOTLBPerPage, want.IOTLBPerPage},
		{got.L1PerPage, want.L1PerPage}, {got.L2PerPage, want.L2PerPage},
		{got.L3PerPage, want.L3PerPage}, {got.ReadsPerPage, want.ReadsPerPage},
		{got.AcksPerPage, want.AcksPerPage}, {got.RxReadsPerDMA, want.RxReadsPerDMA},
		{got.MaxCPUUtil, want.MaxCPUUtil}, {got.PCIeRxUtil, want.PCIeRxUtil},
		{got.MemUtil, want.MemUtil},
	}
	for i, p := range floats {
		if !closeEnough(p[0], p[1]) {
			t.Errorf("%s: float metric %d: got %v, want %v", label, i, p[0], p[1])
		}
	}
	if len(got.CPUUtil) != len(want.CPUUtil) {
		t.Errorf("%s: CPUUtil length %d vs %d", label, len(got.CPUUtil), len(want.CPUUtil))
		return
	}
	for i := range got.CPUUtil {
		if !closeEnough(got.CPUUtil[i], want.CPUUtil[i]) {
			t.Errorf("%s: CPUUtil[%d]: got %v, want %v", label, i, got.CPUUtil[i], want.CPUUtil[i])
		}
	}
}

// withinRel reports |got-want| <= tol*max(|got|,|want|).
func withinRel(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	m := got
	if m < 0 {
		m = -m
	}
	w := want
	if w < 0 {
		w = -w
	}
	if w > m {
		m = w
	}
	return d <= tol*m
}

// TestShardedUnshardedEquivalence is the tentpole property: for every
// traffic pattern and shard count, a sharded cluster reproduces the
// shared-engine cluster's behaviour. Configurations without sustained
// same-nanosecond contention on the shared core link are compared
// strictly — per-host Results with discrete outcomes exact and smoothed
// gauges within floatTol — which is where the protocol-correctness
// burden sits. Congested configurations (incast and all-to-all at
// scale) inevitably hit exact (timestamp, generation-time) ties whose
// sequential arbitration no shard can reproduce (see relaxedTol); there
// the test asserts aggregates within relaxedTol, safety verdicts exact,
// and decomposition invariance: every shard count >= 2 must produce a
// byte-identical full result key, proving the divergence is one fixed
// canonical tie order rather than schedule-dependent drift. CI runs
// this under -race in its own matrix cell, which also exercises the
// parallel rounds for data races.
func TestShardedUnshardedEquivalence(t *testing.T) {
	const (
		warmup  = 1 * sim.Millisecond
		measure = 2 * sim.Millisecond
	)
	type testcase struct {
		traffic TrafficPattern
		hosts   int
		strict  bool
		op      transport.Op // zero value = sendrecv
		ats     int          // device-TLB entries (0 = no ATC)
		// noInvariance skips the cross-shard-count key check: one-sided
		// incast congests at the sink NIC's input buffer, which lives
		// inside the sink's shard, so senders co-sharded with the sink
		// bypass coordinator arbitration entirely and the per-source
		// goodput split shuffles as the decomposition changes. The
		// aggregate and the safety verdict stay pinned (asserted below);
		// only the tie split among saturating senders moves.
		noInvariance bool
	}
	cases := []testcase{
		{traffic: Pairs, hosts: 2, strict: true}, {traffic: Pairs, hosts: 4, strict: true}, {traffic: Pairs, hosts: 8, strict: true},
		{traffic: Incast, hosts: 2, strict: true}, {traffic: Incast, hosts: 4, strict: true}, {traffic: Incast, hosts: 8},
		{traffic: AllToAll, hosts: 2, strict: true}, {traffic: AllToAll, hosts: 4}, {traffic: AllToAll, hosts: 8},
		// One-sided incast through the device ATC exercises the RDMA
		// datapath — remote translate, ATS miss traffic, window-recycle
		// ATC invalidations — on both engine paths.
		{traffic: Incast, hosts: 4, op: transport.Write, ats: 256, noInvariance: true},
	}
	for _, tc := range cases {
		var base *ClusterResults
		shardedKey := ""
		for _, shards := range []int{1, 2, 4, 8} {
			if shards > tc.hosts {
				continue
			}
			label := fmt.Sprintf("%s/%s/%d hosts/%d shards", tc.traffic, tc.op, tc.hosts, shards)
			cfg := shardTestConfig(tc.hosts, shards, tc.traffic)
			cfg.Op = tc.op
			cfg.Host.ATSEntries = tc.ats
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if got := c.Shards(); got != shards {
				t.Fatalf("%s: Shards() = %d, want %d", label, got, shards)
			}
			r := c.Run(warmup, measure)
			if shards == 1 {
				base = &r
				continue
			}
			if c.Rounds() == 0 {
				t.Errorf("%s: coordinator ran zero rounds", label)
			}
			if key := clusterKey(r); tc.noInvariance {
				// No cross-count key: pin the aggregate instead — the
				// saturated sink delivers the same total no matter how
				// the senders tie-break.
			} else if shardedKey == "" {
				shardedKey = key
			} else if key != shardedKey {
				t.Errorf("%s: result key differs from other shard counts of the same config", label)
			}
			if r.Violations() != base.Violations() {
				t.Errorf("%s: violations %d vs %d", label, r.Violations(), base.Violations())
			}
			if tc.strict {
				if !closeEnough(r.AggRxGbps, base.AggRxGbps) || !closeEnough(r.AggTxGbps, base.AggTxGbps) {
					t.Errorf("%s: aggregates (%v, %v) diverged from (%v, %v)",
						label, r.AggRxGbps, r.AggTxGbps, base.AggRxGbps, base.AggTxGbps)
				}
				for i := range r.Hosts {
					compareResults(t, fmt.Sprintf("%s/host%d", label, i), r.Hosts[i], base.Hosts[i])
				}
				continue
			}
			if !withinRel(r.AggRxGbps, base.AggRxGbps, relaxedTol) || !withinRel(r.AggTxGbps, base.AggTxGbps, relaxedTol) {
				t.Errorf("%s: aggregates (%v, %v) outside %v of (%v, %v)",
					label, r.AggRxGbps, r.AggTxGbps, relaxedTol, base.AggRxGbps, base.AggTxGbps)
			}
			var gotFaults, wantFaults int64
			for i := range r.Hosts {
				gotFaults += r.Hosts[i].FaultsInjected
				wantFaults += base.Hosts[i].FaultsInjected
			}
			if gotFaults != wantFaults {
				t.Errorf("%s: faults injected %d vs %d", label, gotFaults, wantFaults)
			}
		}
	}
}

// TestShardedRegistryDeterminism is the registry-merge property test:
// the dumped stats.Registry of a sharded run — every hostN.* and
// fabric.* instrument — is byte-identical across GOMAXPROCS=1/2/8 and
// across repeated runs of the same seed. The dump includes per-port
// fabric counters from every shard's registry, so it proves both the
// merge and the barrier protocol are schedule-independent.
func TestShardedRegistryDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	run := func() (string, string) {
		c, err := NewCluster(shardTestConfig(8, 4, Incast))
		if err != nil {
			t.Fatal(err)
		}
		r := c.Run(1*sim.Millisecond, 2*sim.Millisecond)
		var tl strings.Builder
		for i, h := range r.Hosts {
			for _, s := range h.Timeline {
				fmt.Fprintf(&tl, "host%d.%s %v %v\n", i, s.Name, s.Times, s.Values)
			}
		}
		return c.Registry().String(), tl.String()
	}
	wantReg, wantTL := "", ""
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 2; rep++ {
			reg, tl := run()
			if wantReg == "" {
				wantReg, wantTL = reg, tl
				continue
			}
			if reg != wantReg {
				t.Fatalf("GOMAXPROCS=%d rep=%d: registry dump diverged (len %d vs %d)", procs, rep, len(reg), len(wantReg))
			}
			if tl != wantTL {
				t.Fatalf("GOMAXPROCS=%d rep=%d: sampled timeline diverged", procs, rep)
			}
		}
	}
	if wantReg == "" || !strings.Contains(wantReg, "host7.") || !strings.Contains(wantReg, "fabric.port7.") || !strings.Contains(wantReg, "fabric.core.") {
		t.Fatalf("merged registry dump is missing expected instruments")
	}
}

// TestShardedClusterParallelRunners checks that sharded clusters still
// compose with the runner pool (shard goroutines inside runner worker
// goroutines), and that shard counts above Hosts clamp.
func TestShardedClusterParallelRunners(t *testing.T) {
	jobs := make([]runner.Job[string], 3)
	for i := range jobs {
		jobs[i] = func(context.Context) (string, error) {
			cfg := shardTestConfig(4, 16, Pairs) // 16 clamps to 4 (one host per shard)
			c, err := NewCluster(cfg)
			if err != nil {
				return "", err
			}
			if c.Shards() != 4 {
				return "", fmt.Errorf("Shards() = %d, want clamp to 4", c.Shards())
			}
			return clusterKey(c.Run(500*sim.Microsecond, 1*sim.Millisecond)), nil
		}
	}
	keys, err := runner.Collect(context.Background(), runner.Config{Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if k != keys[0] {
			t.Fatalf("runner %d produced a different sharded result", i)
		}
	}
}
