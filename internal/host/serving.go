package host

import (
	"fmt"

	"fastsafe/internal/cohort"
	"fastsafe/internal/core"
	"fastsafe/internal/nic"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// The serving-fleet workload (ROADMAP item 3): an open-loop population
// of connections driven by internal/cohort — Poisson arrivals,
// bounded-Pareto request/response sizes, and connection churn. Unlike
// the closed-loop message app (msg.go), nothing here waits for
// completions before sending more: requests arrive at the configured
// rate no matter how far behind the host falls, which is what makes
// protection cost visible as tail latency instead of lost goodput.
//
// Churn is the load-bearing part. Every connection owns a buffer of
// ConnPages mapped at birth and unmapped at death, and every response
// rides a freshly mapped short-lived Tx buffer — so the IOVA
// allocator and (un)map rates scale with churn x request rate, the
// regime that decides whether the rcache magazines absorb the storm or
// fall into the flush-to-tree overflow path.

// ServeConfig configures the serving-fleet workload on a host. Conns,
// Churn and Cohort are the externally exposed knobs (validated through
// cohort.Config); the rest shape the traffic and default to a
// production-ish profile that loads five cores to ~50% before
// protection costs.
type ServeConfig struct {
	Conns  int     // fleet population (constant; dead connections are reborn)
	Churn  float64 // per-request connection death probability, in (0, 1]
	Cohort int     // connections per aggregated cohort (1 = exact per-flow model)

	RatePerConn float64      // mean requests/s per connection (default 25000)
	ReqBytes    int          // bounded-Pareto request payload cap (default 64KB)
	RespBytes   int          // bounded-Pareto response payload cap (default 4KB)
	ConnPages   int          // per-connection buffer pages mapped at birth (default 8)
	AppCPU      sim.Duration // per-request application CPU (default 1us)
	Cores       int          // cores the connections spread over (default host Cores)
	CoreBase    int          // first core index (default 0)
}

func (c ServeConfig) withDefaults(h *Host) ServeConfig {
	if c.RatePerConn <= 0 {
		c.RatePerConn = 25000
	}
	if c.ReqBytes <= 0 {
		c.ReqBytes = 64 << 10
	}
	if c.RespBytes <= 0 {
		c.RespBytes = 4 << 10
	}
	if c.ConnPages <= 0 {
		c.ConnPages = 8
	}
	if c.AppCPU == 0 {
		c.AppCPU = 1 * sim.Microsecond
	}
	if c.Cores <= 0 {
		c.Cores = h.cfg.Cores
	}
	return c
}

// servingGCTimeout is how long an unanswered request may sit before the
// open loop abandons it (its segments were tail-dropped at the NIC; the
// generator never retries).
const servingGCTimeout = 5 * sim.Millisecond

// serveSeg is one serving segment on the wire.
type serveSeg struct {
	id    int64
	conn  int
	idx   int
	count int
	bytes int
	resp  bool // response vs request segment
}

// servReq tracks one in-flight request at the serving host.
type servReq struct {
	arr      cohort.Arrival
	start    sim.Time
	got      int  // request segments assembled
	respGot  int  // response segments delivered at the client
	answered bool // response sent; completion is inevitable (Tx never drops)
}

type servingApp struct {
	h     *Host
	cfg   ServeConfig
	fleet *cohort.Fleet

	timerSet bool
	timerAt  sim.Time
	timer    sim.EventID

	pending  map[int64]*servReq
	gcq      []int64           // request ids in arrival order (FIFO expiry scan)
	connMaps []*core.TxMapping // per-connection buffer, remapped at rebirth
	latency  stats.Histogram

	completed      int64
	completedBytes int64 // request+response payload of completed requests
	expired        int64 // requests abandoned after drops
}

// InstallServing attaches the serving-fleet workload. Called by New
// when Config.Serve is set; call before Start.
func (h *Host) InstallServing(cfg ServeConfig) (*servingApp, error) {
	cfg = cfg.withDefaults(h)
	gap := sim.Duration(1e9 / cfg.RatePerConn)
	fleet, err := cohort.New(cohort.Config{
		Conns:   cfg.Conns,
		Cohort:  cfg.Cohort,
		Churn:   cfg.Churn,
		MeanGap: gap,
		ReqMax:  cfg.ReqBytes,
		RespMax: cfg.RespBytes,
		Seed:    h.cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("host: serving: %w", err)
	}
	app := &servingApp{
		h:        h,
		cfg:      cfg,
		fleet:    fleet,
		pending:  make(map[int64]*servReq),
		connMaps: make([]*core.TxMapping, cfg.Conns),
	}
	h.serve = app
	if h.tele != nil {
		h.tele.reg.AddHistogram(h.tele.name("serve.latency_ns"), &app.latency)
		h.tele.reg.GaugeFunc(h.tele.name("serve.completed"), func() float64 { return float64(app.completed) })
		h.tele.reg.GaugeFunc(h.tele.name("serve.deaths"), func() float64 { return float64(fleet.Deaths()) })
		h.tele.reg.GaugeFunc(h.tele.name("serve.expired"), func() float64 { return float64(app.expired) })
	}
	return app, nil
}

// Latency returns the request-latency histogram (ns), measured at the
// abstract client from arrival to last response segment.
func (a *servingApp) Latency() *stats.Histogram { return &a.latency }

// Fleet exposes the generator (tests read its churn accounting).
func (a *servingApp) Fleet() *cohort.Fleet { return a.fleet }

func (a *servingApp) cpu(conn int) int { return a.cfg.CoreBase + conn%a.cfg.Cores }

// start maps every connection's buffer (in connection order) and arms
// the arrival timer.
func (a *servingApp) start() {
	for c := 0; c < a.cfg.Conns; c++ {
		a.mapConn(c)
	}
	a.armTimer()
}

// mapConn maps connection c's buffer on its core, paying the mode's
// mapping cost there.
func (a *servingApp) mapConn(c int) {
	cpu := a.cpu(c)
	a.h.core(cpu).Do(func() sim.Duration {
		tm, mc, err := a.h.net.dom.MapTx(cpu, a.cfg.ConnPages)
		if err != nil {
			panic(fmt.Sprintf("host: MapTx(conn): %v", err))
		}
		a.connMaps[c] = tm
		return mc
	}, nil)
}

// recycleConn retires a dead connection's buffer and maps the fresh
// incarnation's — the churn cost the figure is built to expose.
func (a *servingApp) recycleConn(c int) {
	cpu := a.cpu(c)
	a.h.core(cpu).Do(func() sim.Duration {
		var cost sim.Duration
		if m := a.connMaps[c]; m != nil {
			uc, err := a.h.net.dom.UnmapTx(m)
			if err != nil {
				panic(fmt.Sprintf("host: UnmapTx(conn): %v", err))
			}
			cost += uc
		}
		tm, mc, err := a.h.net.dom.MapTx(cpu, a.cfg.ConnPages)
		if err != nil {
			panic(fmt.Sprintf("host: MapTx(conn): %v", err))
		}
		a.connMaps[c] = tm
		return cost + mc
	}, nil)
}

// armTimer keeps exactly one engine timer pending, at the fleet's
// earliest arrival.
func (a *servingApp) armTimer() {
	at, ok := a.fleet.Peek()
	if !ok {
		if a.timerSet {
			a.h.eng.Cancel(a.timer)
			a.timerSet = false
		}
		return
	}
	if a.timerSet && a.timerAt == at {
		return
	}
	if a.timerSet {
		a.h.eng.Cancel(a.timer)
	}
	a.timerSet = true
	a.timerAt = at
	a.timer = a.h.eng.At(at, a.onTimer)
}

// onTimer pops every arrival due now and re-arms for the next.
func (a *servingApp) onTimer() {
	a.timerSet = false
	now := a.h.eng.Now()
	for {
		arr, ok := a.fleet.Next(now)
		if !ok {
			break
		}
		a.sendRequest(arr, now)
	}
	a.armTimer()
}

// sendRequest puts one request on the wire from the abstract client:
// segments arrive at the NIC like any remote traffic and may be
// tail-dropped under pressure.
func (a *servingApp) sendRequest(arr cohort.Arrival, now sim.Time) {
	r := &servReq{arr: arr, start: now}
	a.pending[arr.ID] = r
	a.gcq = append(a.gcq, arr.ID)
	n := segCount(arr.Req, a.h.cfg.MTU)
	cpu := a.cpu(arr.Conn)
	for i := 0; i < n; i++ {
		seg := serveSeg{id: arr.ID, conn: arr.Conn, idx: i, count: n,
			bytes: segBytes(arr.Req, a.h.cfg.MTU, i)}
		a.h.net.toLocal.Send(seg.bytes, func(ecn bool) {
			a.h.net.dev.Arrive(nic.Packet{CPU: cpu, Bytes: seg.bytes, ECN: ecn, Payload: seg})
		})
	}
}

// onDeliver handles a request segment DMA'd into local memory.
func (a *servingApp) onDeliver(pkt nic.Packet, seg serveSeg) {
	if seg.resp {
		panic("host: response segment delivered to serving host")
	}
	cpu := a.cpu(seg.conn)
	irq := a.h.irqCost(cpu)
	a.h.core(cpu).Do(func() sim.Duration {
		cost := irq + a.h.net.stackCost()
		r, ok := a.pending[seg.id]
		if !ok || r.answered {
			return cost // late segment of an expired or answered request
		}
		r.got++
		if r.got == seg.count {
			cost += a.cfg.AppCPU
			a.respond(r)
		}
		return cost
	}, nil)
}

// respond sends the response: each segment is mapped into a fresh
// short-lived Tx buffer (the per-request map/unmap the paper's Tx-path
// costs model) and handed to the NIC.
func (a *servingApp) respond(r *servReq) {
	r.answered = true
	n := segCount(r.arr.Resp, a.h.cfg.MTU)
	cpu := a.cpu(r.arr.Conn)
	for i := 0; i < n; i++ {
		seg := serveSeg{id: r.arr.ID, conn: r.arr.Conn, idx: i, count: n,
			bytes: segBytes(r.arr.Resp, a.h.cfg.MTU, i), resp: true}
		pages := (seg.bytes + 4095) / 4096
		var m *core.TxMapping
		a.h.core(cpu).Do(func() sim.Duration {
			tm, mc, err := a.h.net.dom.MapTx(cpu, pages)
			if err != nil {
				panic(fmt.Sprintf("host: MapTx(serve): %v", err))
			}
			m = tm
			return a.h.cfg.AckTxCost + mc
		}, func() {
			a.h.net.dev.SendTx(nic.Packet{CPU: cpu, Bytes: seg.bytes, Payload: seg}, m)
		})
	}
}

// onTxDone routes a sent response segment onto the wire toward the
// abstract client (the Tx buffer was already unmapped by the generic
// netDev completion path).
func (a *servingApp) onTxDone(pkt nic.Packet, seg serveSeg) {
	a.h.net.toRemote.Send(pkt.Bytes, func(bool) {
		a.clientReceive(seg)
	})
}

// clientReceive is the abstract client's side: the last response
// segment completes the request.
func (a *servingApp) clientReceive(seg serveSeg) {
	r, ok := a.pending[seg.id]
	if !ok {
		return
	}
	r.respGot++
	if r.respGot < seg.count {
		return
	}
	delete(a.pending, seg.id)
	now := a.h.eng.Now()
	rec, reborn := a.fleet.Complete(r.arr, now, int64(now-r.start))
	a.latency.Observe(rec)
	a.completed++
	a.completedBytes += int64(r.arr.Req + r.arr.Resp)
	if reborn {
		a.recycleConn(r.arr.Conn)
	}
	a.armTimer()
}

// housekeeping expires unanswered requests whose segments were dropped.
// The gc queue is in arrival order, so the scan stops at the first
// entry still inside the timeout.
func (a *servingApp) housekeeping(now sim.Time) {
	changed := false
	for len(a.gcq) > 0 {
		id := a.gcq[0]
		r, ok := a.pending[id]
		if !ok {
			a.gcq = a.gcq[1:]
			continue
		}
		if now-r.start < servingGCTimeout || r.answered {
			break
		}
		a.gcq = a.gcq[1:]
		delete(a.pending, id)
		a.expired++
		if a.fleet.Abandon(r.arr, now) {
			a.recycleConn(r.arr.Conn)
		}
		changed = true
	}
	if changed {
		a.armTimer()
	}
}
