package host

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/fault"
	"fastsafe/internal/runner"
	"fastsafe/internal/sim"
)

func servingConfig(mode core.Mode, churn float64, cohortSize int, seed int64) Config {
	return Config{
		Mode:    mode,
		RxFlows: -1, // the open-loop fleet is the workload; no bulk flows
		Audit:   true,
		Seed:    seed,
		Serve:   &ServeConfig{Conns: 24, Churn: churn, Cohort: cohortSize},
	}
}

func runServing(t *testing.T, cfg Config, warmup, measure sim.Duration) Results {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h.Run(warmup, measure)
}

// servingKey folds every deterministic output of a serving run into one
// comparable string (latency percentiles included: replay must
// reproduce the histogram exactly).
func servingKey(r Results) string {
	return fmt.Sprintf("served=%d gbps=%.9g deaths=%d expired=%d iova=%+v safety=%+v pct=%v drop=%.9g cpu=%.9g",
		r.ServeCompleted, r.ServeGbps, r.ServeDeaths, r.ServeExpired,
		r.IOVA, *r.Safety, r.Percentiles(), r.DropRate, r.MaxCPUUtil)
}

// TestCohortExactEquivalence is the cohort abstraction's acceptance
// gate: aggregating K connections per cohort must leave the simulated
// event stream untouched — exact equality on the domain's protection
// counters, the shared IOMMU's counters, the IOVA allocator's work, the
// safety audit, and completion accounting (so aggregate goodput is not
// merely within 1%, it is identical). Only latency attribution may
// differ: at K > 1 the recorded value is the cohort's shared model.
func TestCohortExactEquivalence(t *testing.T) {
	const (
		warmup  = 1 * sim.Millisecond
		measure = 2 * sim.Millisecond
	)
	for _, mode := range []core.Mode{core.Strict, core.FNS, core.Cap} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			type run struct {
				r   Results
				dom core.Counters
				mmu int64 // translations (the whole struct is compared below)
				h   *Host
			}
			runs := map[int]run{}
			for _, k := range []int{1, 4} {
				h, err := New(servingConfig(mode, 0.3, k, 7))
				if err != nil {
					t.Fatal(err)
				}
				r := h.Run(warmup, measure)
				runs[k] = run{r: r, dom: h.Domain().Counters(), h: h}
			}
			exact, agg := runs[1], runs[4]

			if exact.dom != agg.dom {
				t.Errorf("domain counters diverged:\nexact %+v\ncohort %+v", exact.dom, agg.dom)
			}
			if a, b := exact.h.SharedIOMMU().Counters(), agg.h.SharedIOMMU().Counters(); a != b {
				t.Errorf("IOMMU counters diverged:\nexact %+v\ncohort %+v", a, b)
			}
			if exact.r.IOVA != agg.r.IOVA {
				t.Errorf("IOVA allocator work diverged:\nexact %+v\ncohort %+v", exact.r.IOVA, agg.r.IOVA)
			}
			if *exact.r.Safety != *agg.r.Safety {
				t.Errorf("safety audit diverged:\nexact %+v\ncohort %+v", *exact.r.Safety, *agg.r.Safety)
			}
			if exact.r.ServeCompleted != agg.r.ServeCompleted || exact.r.ServeDeaths != agg.r.ServeDeaths ||
				exact.r.ServeExpired != agg.r.ServeExpired {
				t.Errorf("completion accounting diverged: exact %d/%d/%d, cohort %d/%d/%d",
					exact.r.ServeCompleted, exact.r.ServeDeaths, exact.r.ServeExpired,
					agg.r.ServeCompleted, agg.r.ServeDeaths, agg.r.ServeExpired)
			}
			// The acceptance bound is <= 1% goodput delta; the construction
			// delivers exact equality.
			if exact.r.ServeGbps != agg.r.ServeGbps {
				t.Errorf("goodput diverged: exact %.9g, cohort %.9g", exact.r.ServeGbps, agg.r.ServeGbps)
			}
			// Non-vacuousness: the window must exercise churn and serving.
			if exact.r.ServeCompleted == 0 || exact.r.ServeDeaths == 0 {
				t.Fatalf("vacuous window: served=%d deaths=%d", exact.r.ServeCompleted, exact.r.ServeDeaths)
			}
			if exact.r.Safety.Checked == 0 {
				t.Fatal("auditor checked nothing")
			}
			// Latency counts match (same completions observed), even though
			// the recorded values differ at K > 1.
			if exact.r.Latency.Count() != agg.r.Latency.Count() {
				t.Errorf("latency observation counts diverged: %d vs %d",
					exact.r.Latency.Count(), agg.r.Latency.Count())
			}
		})
	}
}

// TestServingDeterminismAndReplay is the open-loop generator's
// determinism contract (the PR 4 fault-plan shape): identical Results
// across repeated runs, across the runner pool, and across GOMAXPROCS.
func TestServingDeterminismAndReplay(t *testing.T) {
	const (
		warmup  = 1 * sim.Millisecond
		measure = 2 * sim.Millisecond
	)
	cfg := servingConfig(core.FNS, 0.4, 3, 11)
	want := servingKey(runServing(t, cfg, warmup, measure))

	// Repeated direct runs.
	for i := 0; i < 2; i++ {
		if got := servingKey(runServing(t, cfg, warmup, measure)); got != want {
			t.Fatalf("direct rerun %d diverged:\n got %s\nwant %s", i, got, want)
		}
	}

	// Across the runner pool: concurrent identical simulations.
	jobs := make([]runner.Job[Results], 4)
	for i := range jobs {
		jobs[i] = func(context.Context) (Results, error) {
			h, err := New(cfg)
			if err != nil {
				return Results{}, err
			}
			return h.Run(warmup, measure), nil
		}
	}
	rs, err := runner.Collect(context.Background(), runner.Config{Workers: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if got := servingKey(r); got != want {
			t.Fatalf("pooled run %d diverged:\n got %s\nwant %s", i, got, want)
		}
	}

	// Across GOMAXPROCS.
	old := runtime.GOMAXPROCS(1)
	got := servingKey(runServing(t, cfg, warmup, measure))
	runtime.GOMAXPROCS(old)
	if got != want {
		t.Fatalf("GOMAXPROCS=1 run diverged:\n got %s\nwant %s", got, want)
	}
}

// servingFaultSeeds mirrors clusterFaultSeeds: the churn gauntlet reads
// the FAULT_SEEDS knob and divides by 16 (each seed runs three audited
// modes under churn), so the nightly 1024 becomes 64 serving seeds.
func servingFaultSeeds(t *testing.T) int {
	return clusterFaultSeeds(t)
}

// TestServingChurnFaultCampaign is the churn-rate fault campaign: the
// adversarial plan at intensity 0.3 against the serving fleet at churn
// 0.3, for every strict-safety mode. The churn path is exactly where a
// dropped or delayed invalidation would let a recycled connection
// buffer be read through a stale translation — zero tolerance, and the
// injection must be non-vacuous.
func TestServingChurnFaultCampaign(t *testing.T) {
	const (
		warmup  = 1 * sim.Millisecond
		measure = 2 * sim.Millisecond
	)
	plan := fault.Campaign(0.3)
	seeds := servingFaultSeeds(t)
	for i := 0; i < seeds; i++ {
		seed := int64(1 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			for _, mode := range []core.Mode{core.Strict, core.FNS, core.Cap} {
				cfg := servingConfig(mode, 0.3, 1, seed)
				cfg.Faults = plan
				cfg.FaultSeed = seed
				r := runServing(t, cfg, warmup, measure)
				if r.FaultsInjected == 0 {
					t.Fatalf("%s seed %d: no faults injected (vacuous campaign)", mode, seed)
				}
				if r.Safety.Checked == 0 {
					t.Fatalf("%s seed %d: auditor checked nothing", mode, seed)
				}
				if v := r.Safety.Violations(); v != 0 {
					t.Errorf("%s seed %d: %d stale DMAs served under churn (%+v)", mode, seed, v, *r.Safety)
				}
				if r.ServeCompleted == 0 || r.ServeDeaths == 0 {
					t.Fatalf("%s seed %d: vacuous serving window (served=%d deaths=%d)",
						mode, seed, r.ServeCompleted, r.ServeDeaths)
				}
				// Replay determinism under faults.
				if a, b := servingKey(r), servingKey(runServing(t, cfg, warmup, measure)); a != b {
					t.Errorf("%s seed %d: faulted replay diverged:\n%s\n%s", mode, seed, a, b)
				}
			}
		})
	}
}

// TestServingConfigRejections: invalid serving knobs must fail at host
// construction with the cohort package's descriptive errors.
func TestServingConfigRejections(t *testing.T) {
	bad := []ServeConfig{
		{Conns: 0, Churn: 0.2, Cohort: 1},
		{Conns: 8, Churn: 0, Cohort: 1},
		{Conns: 8, Churn: 1.2, Cohort: 1},
		{Conns: 8, Churn: 0.2, Cohort: -2},
	}
	for _, sc := range bad {
		sc := sc
		if _, err := New(Config{Serve: &sc}); err == nil {
			t.Errorf("New accepted invalid serving config %+v", sc)
		}
	}
}

// TestServingClusterChurn: the serving fleet composes with cluster mode
// — every host runs its own fleet next to the pattern's peer traffic,
// audited, with zero stale-served DMAs and per-host churn progress.
func TestServingClusterChurn(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:   4,
		Traffic: Pairs,
		Host: Config{
			Mode:  core.FNS,
			Audit: true,
			Seed:  5,
			Serve: &ServeConfig{Conns: 12, Churn: 0.3, Cohort: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := c.Run(1*sim.Millisecond, 2*sim.Millisecond)
	if v := r.Violations(); v != 0 {
		t.Fatalf("cluster serving: %d stale DMAs served", v)
	}
	for i, hr := range r.Hosts {
		if hr.ServeCompleted == 0 || hr.ServeDeaths == 0 {
			t.Errorf("host %d: vacuous serving window (served=%d deaths=%d)",
				i, hr.ServeCompleted, hr.ServeDeaths)
		}
	}
}

// The app's direct accessors (used by the churn accounting above via
// Results) stay consistent with the reported counters.
func TestServingAppAccessors(t *testing.T) {
	h, err := New(servingConfig(core.FNS, 0.3, 1, 11))
	if err != nil {
		t.Fatal(err)
	}
	r := h.Run(sim.Millisecond, 2*sim.Millisecond)
	app := h.serve
	if app == nil {
		t.Fatal("serving app not installed")
	}
	if app.Fleet().Cohort() != 1 {
		t.Fatalf("Fleet().Cohort() = %d, want 1", app.Fleet().Cohort())
	}
	// The fleet counts deaths since time zero; Results only the
	// measured window after warmup.
	if app.Fleet().Deaths() < r.ServeDeaths || r.ServeDeaths == 0 {
		t.Fatalf("Fleet().Deaths() = %d, Results.ServeDeaths = %d",
			app.Fleet().Deaths(), r.ServeDeaths)
	}
	if app.Latency() == nil || app.Latency().Count() == 0 {
		t.Fatal("latency histogram empty after a measured run")
	}
}
