package host

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/fault"
	"fastsafe/internal/sim"
)

// switchSeeds is the transition gauntlet's sweep width: FAULT_SEEDS (CI
// 64, nightly 1024) divided by div with a floor — each seed here costs
// audited runs with mid-run transitions, so the sweep scales down from
// the raw fault-gauntlet directive the same way the cluster campaign
// does.
func switchSeeds(t *testing.T, div, floor int) int {
	n := 32 // local default
	if v := os.Getenv("FAULT_SEEDS"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i < 1 {
			t.Fatalf("FAULT_SEEDS=%q: want a positive integer", v)
		}
		n = i
	}
	if n = n / div; n < floor {
		n = floor
	}
	return n
}

// forceSwitch schedules a mode switch on every NIC domain of h at
// virtual time at, bypassing the controller: the transition protocol
// itself is under test, so the switch must happen regardless of what
// any rule would decide.
func forceSwitch(t *testing.T, h *Host, at sim.Time, to core.Mode) {
	t.Helper()
	h.eng.At(at, func() {
		for _, n := range h.nets {
			k := n.dom.Knobs()
			k.Mode = to
			if _, err := n.dom.SetKnobs(k); err != nil {
				t.Errorf("forced switch to %v at %v failed: %v", to, at, err)
			}
		}
	})
}

// TestSwitchCampaignSingleEngine drives the fault campaign across a
// seed sweep with forced mid-run mode switches in both directions —
// odd seeds run fns -> strict -> fns, even seeds strict -> fns ->
// strict — and requires the transition protocol's core guarantees on
// the single-engine path: zero stale-served DMAs across every
// transition (aggregate and per device domain), byte-identical replay
// under the same (seed, fault seed), and a non-vacuous sweep (faults
// injected, auditor active).
func TestSwitchCampaignSingleEngine(t *testing.T) {
	const (
		warmup  = 1 * sim.Millisecond
		measure = 4 * sim.Millisecond
	)
	plan := fault.Campaign(0.5)
	run := func(t *testing.T, seed int64, start, mid core.Mode) Results {
		h, err := New(Config{Mode: start, Seed: seed, Faults: plan, FaultSeed: seed, Audit: true})
		if err != nil {
			t.Fatal(err)
		}
		// Both transitions land inside the measurement window, with
		// in-flight audited traffic on both sides of each switch.
		forceSwitch(t, h, sim.Time(2*sim.Millisecond), mid)
		forceSwitch(t, h, sim.Time(3500*sim.Microsecond), start)
		r := h.Run(warmup, measure)
		if got := h.nets[0].dom.Mode(); got != start {
			t.Fatalf("domain ended in %v, want %v (forced switches did not run)", got, start)
		}
		return r
	}
	for i := 0; i < switchSeeds(t, 8, 4); i++ {
		seed := int64(i + 1)
		start, mid := core.FNS, core.Strict
		if seed%2 == 0 {
			start, mid = core.Strict, core.FNS
		}
		t.Run(fmt.Sprintf("seed%d_%v_to_%v", seed, start, mid), func(t *testing.T) {
			t.Parallel()
			a := run(t, seed, start, mid)
			b := run(t, seed, start, mid)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("faulted run with forced switches did not replay:\n%+v\nvs\n%+v", b, a)
			}
			if a.Safety == nil || a.Safety.Checked == 0 {
				t.Fatal("auditor checked nothing — the sweep is vacuous")
			}
			if v := a.Safety.Violations(); v != 0 {
				t.Fatalf("%d stale DMAs served across %v<->%v transitions", v, start, mid)
			}
			for _, d := range a.Devices {
				if d.Safety != nil && d.Safety.Violations() != 0 {
					t.Fatalf("device %s served %d stale DMAs", d.Name, d.Safety.Violations())
				}
			}
			if a.FaultsInjected == 0 {
				t.Fatal("campaign injected nothing — the sweep is vacuous")
			}
		})
	}
}

// TestSwitchCampaignShardedCluster repeats the forced-transition
// gauntlet on the sharded conservative-parallel path: 8 incast hosts on
// 2 shards, every host's NIC domains switched fns -> strict and back
// mid-run while the campaign injects faults. The sharded run must
// replay byte-identically, and neither the sharded nor the unsharded
// engine may serve a single stale DMA across the transitions.
func TestSwitchCampaignShardedCluster(t *testing.T) {
	const (
		hosts   = 8
		warmup  = 1 * sim.Millisecond
		measure = 2 * sim.Millisecond
	)
	plan := fault.Campaign(0.3)
	run := func(t *testing.T, seed int64, shards int) (string, ClusterResults) {
		c, err := NewCluster(ClusterConfig{
			Hosts:   hosts,
			Traffic: Incast,
			Shards:  shards,
			Host: Config{
				Mode:      core.FNS,
				Seed:      seed,
				Faults:    plan,
				FaultSeed: seed,
				Audit:     true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range c.hosts {
			forceSwitch(t, h, sim.Time(1500*sim.Microsecond), core.Strict)
			forceSwitch(t, h, sim.Time(2400*sim.Microsecond), core.FNS)
		}
		r := c.Run(warmup, measure)
		for i, h := range c.hosts {
			if got := h.nets[0].dom.Mode(); got != core.FNS {
				t.Fatalf("host %d ended in %v, want fns (forced switches did not run)", i, got)
			}
		}
		return clusterKey(r), r
	}
	for i := 0; i < switchSeeds(t, 16, 2); i++ {
		seed := int64(i + 1)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			key1, r1 := run(t, seed, 2)
			key2, _ := run(t, seed, 2)
			if key1 != key2 {
				t.Fatalf("sharded transition run diverged on replay (seed %d)", seed)
			}
			_, unsharded := run(t, seed, 1)
			for path, r := range map[string]ClusterResults{"sharded": r1, "unsharded": unsharded} {
				if v := r.Violations(); v != 0 {
					t.Fatalf("%s cluster served %d stale DMAs across transitions (seed %d)", path, v, seed)
				}
				var injected, checked int64
				for _, h := range r.Hosts {
					injected += h.FaultsInjected
					if h.Safety != nil {
						checked += h.Safety.Checked
					}
				}
				if injected == 0 || checked == 0 {
					t.Fatalf("%s sweep is vacuous (seed %d): injected=%d checked=%d", path, seed, injected, checked)
				}
			}
		})
	}
}
