package host

import (
	"fmt"
	"strings"

	"fastsafe/internal/ats"
	"fastsafe/internal/control"
	"fastsafe/internal/core"
	"fastsafe/internal/device"
	"fastsafe/internal/fault"
	"fastsafe/internal/iommu"
	"fastsafe/internal/iova"
	"fastsafe/internal/nic"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// Results is the measurement of one experiment window, normalised the way
// the paper reports: cache misses per 4KB page worth of delivered data,
// drop rates as a fraction of arrivals, throughput as application-level
// goodput. The top-level fields describe the primary NIC — the measured
// datapath — exactly as they did before the device layer existed;
// Devices carries the per-device breakdown across every attached DMA
// device.
type Results struct {
	Mode    core.Mode
	Measure sim.Duration

	RxGbps    float64 // bulk + message payload delivered into the local host
	TxGbps    float64 // bulk data delivered from the local host to the remote
	DropRate  float64 // NIC input-buffer drops / arrivals
	MarkRate  float64 // ECN marks / arrivals
	PagesRxed float64 // delivered data in 4KB pages (the normaliser)

	IOTLBPerPage float64
	L1PerPage    float64
	L2PerPage    float64
	L3PerPage    float64
	ReadsPerPage float64
	AcksPerPage  float64
	// RxReadsPerDMA is page-table reads per Rx DMA, measured at the Rx
	// PCIe link — the M that enters the paper's per-packet latency model.
	RxReadsPerDMA float64

	CPUUtil    []float64
	MaxCPUUtil float64
	PCIeRxUtil float64
	MemUtil    float64 // smoothed memory-bus utilisation at window end

	StaleIOTLB  int64
	StalePT     int64
	InvRequests int64
	Timeouts    int64
	Retransmits int64

	// Capability-family accounting over the window: DMA validations
	// against a capability table, grants killed (revokes plus
	// overwriting re-grants), and DMAs denied for want of a grant. All
	// zero outside the cap/cap-lazyrevoke modes.
	CapChecks      int64
	CapRevocations int64
	CapDenied      int64

	// Request/response workload outputs.
	Completed  int64
	MsgGbps    float64 // completed-exchange payload rate
	MsgRetries int64
	Latency    *stats.Histogram // exchange latency (ns), nil without messages or serving

	// Serving-fleet workload outputs (all zero/nil unless Config.Serve).
	ServeCompleted int64
	ServeGbps      float64 // request+response payload of completed requests
	ServeDeaths    int64   // connection deaths (churn events) in the window
	ServeExpired   int64   // requests abandoned after NIC drops (open loop, no retry)
	ServeLatency   *stats.Histogram

	// IOVA is the primary NIC domain's allocator activity over the
	// window: tree vs magazine traffic, depot moves, and the depot-full
	// overflow path that marks where the rcache stops absorbing churn.
	IOVA iova.Stats

	// Latencies groups every latency distribution the telemetry layer
	// collects over the measurement window (all reset at its start).
	Latencies Latencies

	// Timeline is the sampled per-interval series restricted to the
	// measurement window, in probe-registration order; nil unless
	// Telemetry.SampleEvery was configured.
	Timeline []stats.Series

	// Devices is the per-device breakdown, in attach order (primary NIC
	// first). Summing each device's share of the shared-IOMMU counters
	// reproduces the global counters exactly.
	Devices []DeviceResults

	// Control is the control plane's applied-switch decision log over
	// the whole run (warmup included — each decision carries its
	// virtual time); nil unless Config.Control installed a controller.
	Control []control.Decision

	// Safety is the window's aggregate translation audit; nil unless the
	// auditor ran (Config.Audit or an enabled fault plan). The paper's
	// claim is Safety.Violations() == 0 for every strict-safety mode.
	Safety *fault.SafetyReport
	// FaultsInjected totals the window's injected faults (0 without a
	// plan).
	FaultsInjected int64

	Trace *stats.ReuseTrace // PTcache-L3 locality trace, nil unless enabled
}

// Latencies is the latency section of Results: the paper's distributional
// evidence, one histogram per collection point.
type Latencies struct {
	RPC   *stats.Histogram // request/response exchange latency (ns), nil without messages
	RxDMA *stats.Histogram // primary NIC Rx PCIe DMA completion latency (ns)
	TxDMA *stats.Histogram // primary NIC Tx PCIe DMA completion latency (ns)
}

// DeviceResults is one attached device's share of the measurement
// window: its own goodput and its slice of the shared IOMMU's work,
// attributed by protection domain.
type DeviceResults struct {
	Name string
	Kind string // "nic", "storage", ...
	Mode core.Mode

	GoodputGbps   float64 // payload the device moved in the window
	MissesPerPage float64 // shared-IOTLB misses per 4KB page of that payload
	WalkReads     int64   // page-table memory reads its translations caused
	Invalidations int64   // invalidation requests its domain submitted

	// Device-side ATS cache activity over the window; all zero when the
	// device has no ATC attached.
	ATSLookups       int64
	ATSHitRate       float64 // ATC hits / lookups
	ATSRequests      int64   // translation requests the misses sent to the IOMMU
	ATCInvalidations int64   // ATC shoot-down requests the host issued
	StaleATSHits     int64   // hits served while the host mapping was gone

	// Capability-table activity for the device's domain; zero outside
	// the capability modes.
	CapChecks      int64
	CapRevocations int64
	CapDenied      int64

	// Safety is the device domain's translation audit for the window;
	// nil unless the auditor ran.
	Safety *fault.SafetyReport
}

// Percentiles returns P50/P90/P99/P99.9/P99.99 exchange latencies in ns.
func (r Results) Percentiles() [5]int64 {
	if r.Latency == nil {
		return [5]int64{}
	}
	return r.Latency.Percentiles()
}

func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s rx=%6.1fGbps tx=%6.1fGbps drop=%6.3f%% iotlb/pg=%5.2f l1=%5.3f l2=%5.3f l3=%5.3f reads/pg=%5.2f acks/pg=%5.3f cpu=%4.0f%%",
		r.Mode, r.RxGbps, r.TxGbps, r.DropRate*100,
		r.IOTLBPerPage, r.L1PerPage, r.L2PerPage, r.L3PerPage,
		r.ReadsPerPage, r.AcksPerPage, r.MaxCPUUtil*100)
	if r.Latency != nil && r.Latency.Count() > 0 {
		p := r.Percentiles()
		fmt.Fprintf(&b, " p50=%.1fus p99=%.1fus p999=%.1fus",
			float64(p[0])/1000, float64(p[2])/1000, float64(p[3])/1000)
	}
	return b.String()
}

// DeviceTable renders the per-device breakdown, one line per device.
func (r Results) DeviceTable() string {
	var b strings.Builder
	for i, d := range r.Devices {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-10s %-8s %-14s goodput=%6.1fGbps miss/pg=%6.2f walk_reads=%9d inv=%9d",
			d.Name, d.Kind, d.Mode, d.GoodputGbps, d.MissesPerPage,
			d.WalkReads, d.Invalidations)
	}
	return b.String()
}

// devSnap is one device's slice of the counters at a window boundary.
type devSnap struct {
	mmu iommu.Counters // the device domain's share of the shared IOMMU
	st  device.Stats
	ats ats.Counters // device-side ATS cache (zero without an ATC)
}

// snapshot captures every counter the measurement window diffs.
type snapshot struct {
	at      sim.Time
	mmu     iommu.Counters
	dom     core.Counters
	nicSt   nic.Stats
	hostC   hostCounters
	devs    []devSnap
	aud     fault.SafetyReport
	audDev  []fault.SafetyReport
	faultC  fault.Counters
	coreBsy []sim.Duration
	rxBusy  sim.Duration
	rxReads int64
	rxDMAs  int64
	sndRtx  int64
	sndTo   int64
	msgDone int64
	msgByte int64
	msgRtry int64
	srvDone int64
	srvByte int64
	srvDead int64
	srvExp  int64
	iovaSt  iova.Stats
}

func (h *Host) snap() snapshot {
	s := snapshot{
		at:    h.eng.Now(),
		mmu:   h.mmu.Counters(),
		dom:   h.net.dom.Counters(),
		nicSt: h.net.dev.Stats(),
		hostC: h.net.c,
	}
	for _, d := range h.devices {
		ds := devSnap{
			mmu: h.mmu.CountersOf(d.Domain().ID()),
			st:  d.Stats(),
		}
		if atc := d.Domain().ATC(); atc != nil {
			ds.ats = atc.Counters()
		}
		s.devs = append(s.devs, ds)
	}
	if h.aud != nil {
		s.aud = h.aud.Report()
		for _, d := range h.devices {
			s.audDev = append(s.audDev, h.aud.ReportOf(d.Domain().ID()))
		}
	}
	s.faultC = h.inj.Counters()
	for _, c := range h.cores {
		s.coreBsy = append(s.coreBsy, c.BusyTime())
	}
	s.rxBusy = h.net.rx.Stats().BusyTime
	s.rxReads = h.net.rx.Stats().MemReads
	s.rxDMAs = h.net.rx.Stats().DMAs
	for _, f := range h.net.rxFlows {
		s.sndRtx += f.snd.Stats().Retransmits
		s.sndTo += f.snd.Stats().Timeouts
	}
	for _, f := range h.net.txFlows {
		s.sndRtx += f.snd.Stats().Retransmits
		s.sndTo += f.snd.Stats().Timeouts
	}
	for _, f := range h.net.peerTx {
		s.sndRtx += f.snd.Stats().Retransmits
		s.sndTo += f.snd.Stats().Timeouts
	}
	for _, f := range h.net.rdmaTx {
		s.sndRtx += f.snd.Stats().Retransmits
		s.sndTo += f.snd.Stats().Timeouts
	}
	if h.msgs != nil {
		s.msgDone = h.msgs.completed
		s.msgByte = h.msgs.completedBytes
		s.msgRtry = h.msgs.retries
	}
	if h.serve != nil {
		s.srvDone = h.serve.completed
		s.srvByte = h.serve.completedBytes
		s.srvDead = h.serve.fleet.Deaths()
		s.srvExp = h.serve.expired
	}
	s.iovaSt = h.net.dom.AllocatorStats()
	return s
}

// Run starts the workloads, runs a warmup window, then measures for the
// given duration and returns normalised Results.
func (h *Host) Run(warmup, measure sim.Duration) Results {
	h.Start()
	h.eng.Run(warmup)
	if h.msgs != nil {
		h.msgs.latency.Reset()
	}
	if h.serve != nil {
		h.serve.latency.Reset()
	}
	// Latency histograms measure the window only; counters are diffed via
	// snapshots instead, so only the sample sinks reset here.
	h.net.rx.Latency().Reset()
	h.net.tx.Latency().Reset()
	before := h.snap()
	h.eng.Run(warmup + measure)
	after := h.snap()
	return h.results(before, after)
}

func (h *Host) results(before, after snapshot) Results {
	dt := after.at - before.at
	r := Results{Mode: h.cfg.Mode, Measure: dt}
	if h.ctl != nil {
		r.Control = h.ctl.Decisions()
	}
	if dt <= 0 {
		return r
	}

	rxBytes := after.hostC.rxDeliveredBytes - before.hostC.rxDeliveredBytes
	txBytes := after.hostC.txDeliveredBytes - before.hostC.txDeliveredBytes
	msgBytes := after.msgByte - before.msgByte
	srvBytes := after.srvByte - before.srvByte

	r.RxGbps = stats.Gbps(rxBytes, int64(dt))
	r.TxGbps = stats.Gbps(txBytes, int64(dt))
	r.MsgGbps = stats.Gbps(msgBytes, int64(dt))
	r.ServeGbps = stats.Gbps(srvBytes, int64(dt))
	if h.msgs != nil {
		// Message payload travels the Rx path in both patterns' bulk
		// direction measurements; fold it into RxGbps for the LocalClient
		// pattern (bulk inbound) and leave Redis-style accounting to
		// MsgGbps.
		if h.msgs.cfg.Pattern == LocalClient {
			r.RxGbps += r.MsgGbps
		}
	}

	arrived := after.nicSt.Arrived - before.nicSt.Arrived
	dropped := after.nicSt.Dropped - before.nicSt.Dropped
	marked := after.nicSt.Marked - before.nicSt.Marked
	if arrived > 0 {
		r.DropRate = float64(dropped) / float64(arrived)
		r.MarkRate = float64(marked) / float64(arrived)
	}

	pages := float64(rxBytes+txBytes+msgBytes+srvBytes) / 4096
	if pages <= 0 {
		pages = 1
	}
	r.PagesRxed = pages

	dm := func(a, b int64) float64 { return float64(a-b) / pages }
	r.IOTLBPerPage = dm(after.mmu.IOTLBMisses, before.mmu.IOTLBMisses)
	r.L1PerPage = dm(after.mmu.L1Misses, before.mmu.L1Misses)
	r.L2PerPage = dm(after.mmu.L2Misses, before.mmu.L2Misses)
	r.L3PerPage = dm(after.mmu.L3Misses, before.mmu.L3Misses)
	r.ReadsPerPage = dm(after.mmu.MemReads, before.mmu.MemReads)
	r.AcksPerPage = dm(after.hostC.acksSent, before.hostC.acksSent)
	if d := after.rxDMAs - before.rxDMAs; d > 0 {
		r.RxReadsPerDMA = float64(after.rxReads-before.rxReads) / float64(d)
	}

	for i, c := range h.cores {
		var prev sim.Duration
		if i < len(before.coreBsy) {
			prev = before.coreBsy[i]
		}
		u := float64(c.BusyTime()-prev) / float64(dt)
		r.CPUUtil = append(r.CPUUtil, u)
		if u > r.MaxCPUUtil {
			r.MaxCPUUtil = u
		}
	}
	r.PCIeRxUtil = float64(h.net.rx.Stats().BusyTime-before.rxBusy) / float64(dt)
	r.MemUtil = h.bus.Utilization()

	r.StaleIOTLB = after.mmu.StaleIOTLBUses - before.mmu.StaleIOTLBUses
	r.StalePT = after.mmu.StalePTUses - before.mmu.StalePTUses
	r.InvRequests = after.mmu.InvRequests - before.mmu.InvRequests
	r.CapChecks = after.mmu.CapChecks - before.mmu.CapChecks
	r.CapRevocations = after.mmu.CapRevocations - before.mmu.CapRevocations
	r.CapDenied = after.mmu.CapDenied - before.mmu.CapDenied
	r.Retransmits = after.sndRtx - before.sndRtx
	r.Timeouts = after.sndTo - before.sndTo
	r.Completed = after.msgDone - before.msgDone
	r.MsgRetries = after.msgRtry - before.msgRtry
	r.ServeCompleted = after.srvDone - before.srvDone
	r.ServeDeaths = after.srvDead - before.srvDead
	r.ServeExpired = after.srvExp - before.srvExp
	r.IOVA = after.iovaSt.Sub(before.iovaSt)
	if h.msgs != nil {
		r.Latency = &h.msgs.latency
	}
	r.Latencies = Latencies{
		RPC:   r.Latency,
		RxDMA: h.net.rx.Latency(),
		TxDMA: h.net.tx.Latency(),
	}
	if h.serve != nil {
		r.ServeLatency = &h.serve.latency
		if r.Latency == nil {
			r.Latency = r.ServeLatency
		}
	}
	if h.tele != nil && h.tele.sampler != nil {
		r.Timeline = h.tele.sampler.SeriesWindow(before.at, after.at)
	}

	for i, d := range h.devices {
		var b devSnap
		if i < len(before.devs) {
			b = before.devs[i]
		}
		a := after.devs[i]
		bytes := a.st.Bytes - b.st.Bytes
		dr := DeviceResults{
			Name:          d.Name(),
			Kind:          d.Kind(),
			Mode:          d.Domain().Mode(),
			GoodputGbps:   stats.Gbps(bytes, int64(dt)),
			MissesPerPage: stats.PerPage(a.mmu.IOTLBMisses-b.mmu.IOTLBMisses, bytes),
			WalkReads:     a.mmu.MemReads - b.mmu.MemReads,
			Invalidations: a.mmu.InvRequests - b.mmu.InvRequests,

			ATSLookups:       a.ats.Lookups - b.ats.Lookups,
			ATSRequests:      a.mmu.ATSRequests - b.mmu.ATSRequests,
			ATCInvalidations: a.mmu.ATCInvRequests - b.mmu.ATCInvRequests,
			StaleATSHits:     a.ats.StaleHits - b.ats.StaleHits,

			CapChecks:      a.mmu.CapChecks - b.mmu.CapChecks,
			CapRevocations: a.mmu.CapRevocations - b.mmu.CapRevocations,
			CapDenied:      a.mmu.CapDenied - b.mmu.CapDenied,
		}
		if dr.ATSLookups > 0 {
			dr.ATSHitRate = float64(a.ats.Hits-b.ats.Hits) / float64(dr.ATSLookups)
		}
		if h.aud != nil {
			var bs fault.SafetyReport
			if i < len(before.audDev) {
				bs = before.audDev[i]
			}
			sr := after.audDev[i].Sub(bs)
			dr.Safety = &sr
		}
		r.Devices = append(r.Devices, dr)
	}

	if h.aud != nil {
		sr := after.aud.Sub(before.aud)
		r.Safety = &sr
	}
	r.FaultsInjected = after.faultC.Total() - before.faultC.Total()

	r.Trace = h.net.dom.Trace()
	return r
}
