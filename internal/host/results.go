package host

import (
	"fmt"
	"strings"

	"fastsafe/internal/core"
	"fastsafe/internal/iommu"
	"fastsafe/internal/nic"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// Results is the measurement of one experiment window, normalised the way
// the paper reports: cache misses per 4KB page worth of delivered data,
// drop rates as a fraction of arrivals, throughput as application-level
// goodput.
type Results struct {
	Mode    core.Mode
	Measure sim.Duration

	RxGbps    float64 // bulk + message payload delivered into the local host
	TxGbps    float64 // bulk data delivered from the local host to the remote
	DropRate  float64 // NIC input-buffer drops / arrivals
	MarkRate  float64 // ECN marks / arrivals
	PagesRxed float64 // delivered data in 4KB pages (the normaliser)

	IOTLBPerPage float64
	L1PerPage    float64
	L2PerPage    float64
	L3PerPage    float64
	ReadsPerPage float64
	AcksPerPage  float64
	// RxReadsPerDMA is page-table reads per Rx DMA, measured at the Rx
	// PCIe link — the M that enters the paper's per-packet latency model.
	RxReadsPerDMA float64

	CPUUtil    []float64
	MaxCPUUtil float64
	PCIeRxUtil float64
	MemUtil    float64 // smoothed memory-bus utilisation at window end

	StaleIOTLB  int64
	StalePT     int64
	InvRequests int64
	Timeouts    int64
	Retransmits int64

	// Request/response workload outputs.
	Completed  int64
	MsgGbps    float64 // completed-exchange payload rate
	MsgRetries int64
	Latency    *stats.Histogram // exchange latency (ns), nil without messages

	Trace *stats.ReuseTrace // PTcache-L3 locality trace, nil unless enabled
}

// Percentiles returns P50/P90/P99/P99.9/P99.99 exchange latencies in ns.
func (r Results) Percentiles() [5]int64 {
	if r.Latency == nil {
		return [5]int64{}
	}
	return r.Latency.Percentiles()
}

func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s rx=%6.1fGbps tx=%6.1fGbps drop=%6.3f%% iotlb/pg=%5.2f l1=%5.3f l2=%5.3f l3=%5.3f reads/pg=%5.2f acks/pg=%5.3f cpu=%4.0f%%",
		r.Mode, r.RxGbps, r.TxGbps, r.DropRate*100,
		r.IOTLBPerPage, r.L1PerPage, r.L2PerPage, r.L3PerPage,
		r.ReadsPerPage, r.AcksPerPage, r.MaxCPUUtil*100)
	if r.Latency != nil && r.Latency.Count() > 0 {
		p := r.Percentiles()
		fmt.Fprintf(&b, " p50=%.1fus p99=%.1fus p999=%.1fus",
			float64(p[0])/1000, float64(p[2])/1000, float64(p[3])/1000)
	}
	return b.String()
}

// snapshot captures every counter the measurement window diffs.
type snapshot struct {
	at      sim.Time
	mmu     iommu.Counters
	dom     core.Counters
	nicSt   nic.Stats
	hostC   hostCounters
	coreBsy []sim.Duration
	rxBusy  sim.Duration
	rxReads int64
	rxDMAs  int64
	sndRtx  int64
	sndTo   int64
	msgDone int64
	msgByte int64
	msgRtry int64
}

func (h *Host) snap() snapshot {
	s := snapshot{
		at:    h.eng.Now(),
		mmu:   h.dom.IOMMU().Counters(),
		dom:   h.dom.Counters(),
		nicSt: h.dev.Stats(),
		hostC: h.c,
	}
	for _, c := range h.cores {
		s.coreBsy = append(s.coreBsy, c.BusyTime())
	}
	s.rxBusy = h.rx.Stats().BusyTime
	s.rxReads = h.rx.Stats().MemReads
	s.rxDMAs = h.rx.Stats().DMAs
	for _, f := range h.rxFlows {
		s.sndRtx += f.snd.Stats().Retransmits
		s.sndTo += f.snd.Stats().Timeouts
	}
	for _, f := range h.txFlows {
		s.sndRtx += f.snd.Stats().Retransmits
		s.sndTo += f.snd.Stats().Timeouts
	}
	if h.msgs != nil {
		s.msgDone = h.msgs.completed
		s.msgByte = h.msgs.completedBytes
		s.msgRtry = h.msgs.retries
	}
	return s
}

// Run starts the workloads, runs a warmup window, then measures for the
// given duration and returns normalised Results.
func (h *Host) Run(warmup, measure sim.Duration) Results {
	h.Start()
	h.eng.Run(warmup)
	if h.msgs != nil {
		h.msgs.latency.Reset()
	}
	before := h.snap()
	h.eng.Run(warmup + measure)
	after := h.snap()
	return h.results(before, after)
}

func (h *Host) results(before, after snapshot) Results {
	dt := after.at - before.at
	r := Results{Mode: h.cfg.Mode, Measure: dt}
	if dt <= 0 {
		return r
	}

	rxBytes := after.hostC.rxDeliveredBytes - before.hostC.rxDeliveredBytes
	txBytes := after.hostC.txDeliveredBytes - before.hostC.txDeliveredBytes
	msgBytes := after.msgByte - before.msgByte

	r.RxGbps = stats.Gbps(rxBytes, int64(dt))
	r.TxGbps = stats.Gbps(txBytes, int64(dt))
	r.MsgGbps = stats.Gbps(msgBytes, int64(dt))
	if h.msgs != nil {
		// Message payload travels the Rx path in both patterns' bulk
		// direction measurements; fold it into RxGbps for the LocalClient
		// pattern (bulk inbound) and leave Redis-style accounting to
		// MsgGbps.
		if h.msgs.cfg.Pattern == LocalClient {
			r.RxGbps += r.MsgGbps
		}
	}

	arrived := after.nicSt.Arrived - before.nicSt.Arrived
	dropped := after.nicSt.Dropped - before.nicSt.Dropped
	marked := after.nicSt.Marked - before.nicSt.Marked
	if arrived > 0 {
		r.DropRate = float64(dropped) / float64(arrived)
		r.MarkRate = float64(marked) / float64(arrived)
	}

	pages := float64(rxBytes+txBytes+msgBytes) / 4096
	if pages <= 0 {
		pages = 1
	}
	r.PagesRxed = pages

	dm := func(a, b int64) float64 { return float64(a-b) / pages }
	r.IOTLBPerPage = dm(after.mmu.IOTLBMisses, before.mmu.IOTLBMisses)
	r.L1PerPage = dm(after.mmu.L1Misses, before.mmu.L1Misses)
	r.L2PerPage = dm(after.mmu.L2Misses, before.mmu.L2Misses)
	r.L3PerPage = dm(after.mmu.L3Misses, before.mmu.L3Misses)
	r.ReadsPerPage = dm(after.mmu.MemReads, before.mmu.MemReads)
	r.AcksPerPage = dm(after.hostC.acksSent, before.hostC.acksSent)
	if d := after.rxDMAs - before.rxDMAs; d > 0 {
		r.RxReadsPerDMA = float64(after.rxReads-before.rxReads) / float64(d)
	}

	for i, c := range h.cores {
		var prev sim.Duration
		if i < len(before.coreBsy) {
			prev = before.coreBsy[i]
		}
		u := float64(c.BusyTime()-prev) / float64(dt)
		r.CPUUtil = append(r.CPUUtil, u)
		if u > r.MaxCPUUtil {
			r.MaxCPUUtil = u
		}
	}
	r.PCIeRxUtil = float64(h.rx.Stats().BusyTime-before.rxBusy) / float64(dt)
	r.MemUtil = h.bus.Utilization()

	r.StaleIOTLB = after.mmu.StaleIOTLBUses - before.mmu.StaleIOTLBUses
	r.StalePT = after.mmu.StalePTUses - before.mmu.StalePTUses
	r.InvRequests = after.mmu.InvRequests - before.mmu.InvRequests
	r.Retransmits = after.sndRtx - before.sndRtx
	r.Timeouts = after.sndTo - before.sndTo
	r.Completed = after.msgDone - before.msgDone
	r.MsgRetries = after.msgRtry - before.msgRtry
	if h.msgs != nil {
		r.Latency = &h.msgs.latency
	}
	r.Trace = h.dom.Trace()
	return r
}
