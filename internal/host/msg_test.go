package host

import (
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
)

func TestMsgSegmentation(t *testing.T) {
	if n := segCount(1, 4096); n != 1 {
		t.Fatalf("segCount(1) = %d", n)
	}
	if n := segCount(4096, 4096); n != 1 {
		t.Fatalf("segCount(4096) = %d", n)
	}
	if n := segCount(4097, 4096); n != 2 {
		t.Fatalf("segCount(4097) = %d", n)
	}
	if b := segBytes(4097, 4096, 1); b != 64 {
		t.Fatalf("tail segment = %d, want 64B minimum frame", b)
	}
	if b := segBytes(10000, 4096, 1); b != 4096 {
		t.Fatalf("middle segment = %d", b)
	}
}

func TestMsgAssembleDedupes(t *testing.T) {
	a := &msgApp{}
	seen := map[int64]map[int]bool{}
	seg := msgSeg{msg: 1, idx: 0, count: 2}
	if a.assemble(seen, seg) {
		t.Fatal("incomplete message reported complete")
	}
	// Duplicate of the same segment must not complete the message.
	if a.assemble(seen, seg) {
		t.Fatal("duplicate segment completed message")
	}
	seg.idx = 1
	if !a.assemble(seen, seg) {
		t.Fatal("complete message not detected")
	}
	// Assembly state pruned: a late duplicate restarts from scratch.
	if a.assemble(seen, msgSeg{msg: 1, idx: 1, count: 2}) {
		t.Fatal("stale duplicate completed pruned message")
	}
}

func TestMsgExchangeCountsAndLatency(t *testing.T) {
	h, err := New(Config{Mode: core.FNS, Cores: 2, RxFlows: -1})
	if err != nil {
		t.Fatal(err)
	}
	app := h.InstallMessages(MsgConfig{Pattern: LocalServes, Streams: 2, Depth: 2,
		ReqBytes: 8 << 10, RespBytes: 128, AppCPU: 500})
	r := h.Run(2*sim.Millisecond, 10*sim.Millisecond)
	if r.Completed == 0 || app.Completed() == 0 {
		t.Fatal("no exchanges completed")
	}
	if r.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	if r.MsgGbps <= 0 {
		t.Fatal("no message throughput")
	}
}

func TestMsgDepthBoundsOutstanding(t *testing.T) {
	h, err := New(Config{Mode: core.Off, Cores: 1, RxFlows: -1})
	if err != nil {
		t.Fatal(err)
	}
	h.InstallMessages(MsgConfig{Pattern: LocalClient, Streams: 1, Depth: 3,
		ReqBytes: 64, RespBytes: 4096, AppCPU: 100})
	h.Start()
	h.Engine().Run(5 * sim.Millisecond)
	// Depth 3 slots per stream: never more outstanding than that.
	s := h.msgs.streams[0]
	if len(s.slots) > 3 {
		t.Fatalf("outstanding slots = %d, want <= 3", len(s.slots))
	}
}

func TestMsgLocalClientRoundtrip(t *testing.T) {
	h, err := New(Config{Mode: core.Strict, Cores: 1, RxFlows: -1})
	if err != nil {
		t.Fatal(err)
	}
	h.InstallMessages(MsgConfig{Pattern: LocalClient, Streams: 1, Depth: 1,
		ReqBytes: 200, RespBytes: 64 << 10, AppCPU: 1000})
	r := h.Run(2*sim.Millisecond, 10*sim.Millisecond)
	if r.Completed == 0 {
		t.Fatal("no exchanges completed")
	}
	// The bulk direction (responses) flows through the local Rx path:
	// translations must have happened.
	if r.IOTLBPerPage < 0.5 {
		t.Fatalf("IOTLB/page = %.2f, want translation activity", r.IOTLBPerPage)
	}
}
