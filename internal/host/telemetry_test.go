package host

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/runner"
	"fastsafe/internal/sim"
)

func sampledConfig() Config {
	return Config{
		Mode:    core.FNS,
		Cores:   2,
		RxFlows: 2,
		Telemetry: TelemetryConfig{
			SampleEvery: 200 * sim.Microsecond,
		},
	}
}

// The telemetry layer must be provably observation-only: the same
// configuration with and without sampling produces identical simulation
// results in every non-telemetry field.
func TestSamplingIsSideEffectFree(t *testing.T) {
	cfg := sampledConfig()
	plain := cfg
	plain.Telemetry = TelemetryConfig{}

	hPlain, err := New(plain)
	if err != nil {
		t.Fatal(err)
	}
	rPlain := hPlain.Run(2*sim.Millisecond, 4*sim.Millisecond)

	hSampled, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rSampled := hSampled.Run(2*sim.Millisecond, 4*sim.Millisecond)

	if len(rSampled.Timeline) == 0 {
		t.Fatal("sampled run recorded no timeline")
	}
	// Strip the telemetry-only sections, then demand exact equality.
	rSampled.Timeline = nil
	rPlain.Timeline = nil
	rSampled.Latencies = Latencies{}
	rPlain.Latencies = Latencies{}
	if !reflect.DeepEqual(rPlain, rSampled) {
		t.Fatalf("sampling changed simulation results:\nplain:   %+v\nsampled: %+v", rPlain, rSampled)
	}
}

func TestTimelineRecorded(t *testing.T) {
	h, err := New(sampledConfig())
	if err != nil {
		t.Fatal(err)
	}
	warmup, measure := 2*sim.Millisecond, 4*sim.Millisecond
	r := h.Run(warmup, measure)

	wantOrder := []string{"rx_gbps", "tx_gbps", "iotlb_miss_per_pg", "ptcache_miss_per_pg",
		"walk_reads", "inv_reqs", "cwnd_mean", "core_util_max", "invq_depth", "mem_util"}
	if len(r.Timeline) != len(wantOrder) {
		t.Fatalf("timeline has %d series, want %d", len(r.Timeline), len(wantOrder))
	}
	for i, s := range r.Timeline {
		if s.Name != wantOrder[i] {
			t.Fatalf("series %d = %q, want %q", i, s.Name, wantOrder[i])
		}
		if len(s.Times) != 20 { // 4ms window / 200us interval
			t.Fatalf("series %q has %d points, want 20", s.Name, len(s.Times))
		}
		for _, at := range s.Times {
			if at <= warmup || at > warmup+measure {
				t.Fatalf("series %q sample at %v outside measure window", s.Name, at)
			}
		}
	}
	var rx float64
	for _, v := range r.Timeline[0].Values {
		rx += v
	}
	if rx/float64(len(r.Timeline[0].Values)) <= 0 {
		t.Fatal("rx_gbps series is all zeros under active flows")
	}
	// The full-run view includes warmup samples too.
	full := h.Telemetry().Series()
	if len(full[0].Times) <= len(r.Timeline[0].Times) {
		t.Fatal("Telemetry().Series() should include warmup samples")
	}
}

// Sampler output must be invariant under runner parallelism: N sampled
// simulations fanned across workers produce byte-identical series to a
// sequential run (this test doubles as the -race exercise for the
// engine-confined registry).
func TestSamplerParallelInvariance(t *testing.T) {
	render := func(r Results) string {
		out := ""
		for _, s := range r.Timeline {
			out += s.Name
			for i := range s.Times {
				out += fmt.Sprintf(" %d:%.9g", int64(s.Times[i]), s.Values[i])
			}
			out += "\n"
		}
		return out
	}
	runOne := func() Results {
		h, err := New(sampledConfig())
		if err != nil {
			t.Fatal(err)
		}
		return h.Run(sim.Millisecond, 3*sim.Millisecond)
	}
	want := render(runOne())
	if want == "" {
		t.Fatal("reference run recorded no timeline")
	}

	jobs := make([]runner.Job[string], 6)
	for i := range jobs {
		jobs[i] = func(context.Context) (string, error) { return render(runOne()), nil }
	}
	got, err := runner.Collect(context.Background(), runner.Config{Workers: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != want {
			t.Fatalf("parallel run %d diverged from sequential reference:\n%s\nvs\n%s", i, g, want)
		}
	}
}

func TestRegistryCoversLayers(t *testing.T) {
	h, err := New(Config{
		Mode:  core.Strict,
		Cores: 2,
		Topology: Topology{
			Storage: []StorageSpec{{ReadGBps: 4}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.InstallMessages(MsgConfig{Pattern: LocalServes, Streams: 1, Depth: 1, ReqBytes: 2048, RespBytes: 64, Cores: 1, CoreBase: 5})
	r := h.Run(sim.Millisecond, 2*sim.Millisecond)

	reg := h.Telemetry().Registry()
	for _, name := range []string{
		"engine.fired", "iommu.walks", "mem.util", "walker.reads",
		"nic0.pages_mapped", "nic0.iommu.iotlb_misses", "nic0.iova.cache_allocs",
		"nic0.ptable.live_pages", "nic0.flow0.cwnd", "nic0.rx_dmas",
		"storage0.bytes", "storage0.iommu.mem_reads",
	} {
		if _, ok := reg.Value(name); !ok {
			t.Errorf("registry missing %q", name)
		}
	}
	if reg.LookupHistogram("nic0.pcie.rx.latency_ns") == nil {
		t.Error("registry missing Rx DMA latency histogram")
	}
	if h.Telemetry().Histogram("rpc.latency_ns") == nil {
		t.Error("registry missing rpc.latency_ns")
	}
	// The registry shares the workload's histogram object: identical
	// quantiles by construction.
	if h.Telemetry().Histogram("rpc.latency_ns") != r.Latency {
		t.Error("rpc.latency_ns is not the workload's histogram object")
	}
	if r.Latencies.RxDMA == nil || r.Latencies.RxDMA.Count() == 0 {
		t.Error("Rx DMA latency histogram empty over the measure window")
	}
	if v, _ := reg.Value("nic0.iommu.iotlb_misses"); v <= 0 {
		t.Error("per-domain attribution gauge did not advance")
	}
}

func TestMemHogStartDelaysOnset(t *testing.T) {
	cfg := sampledConfig()
	cfg.MemHogGBps = 20
	cfg.MemHogStart = 4 * sim.Millisecond // mid-measure
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := h.Run(2*sim.Millisecond, 4*sim.Millisecond)
	var memUtil []float64
	for _, s := range r.Timeline {
		if s.Name == "mem_util" {
			memUtil = s.Values
		}
	}
	n := len(memUtil)
	if n < 4 {
		t.Fatalf("mem_util series too short: %d", n)
	}
	// The hog lands mid-window, so contention (and the knock-on workload
	// collapse) shows up only in the second half: its peak utilisation
	// must clearly exceed anything seen before onset.
	peak := func(v []float64) float64 {
		m := 0.0
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}
	before, after := peak(memUtil[:n/2]), peak(memUtil[n/2:])
	if after <= before+0.05 {
		t.Fatalf("mem_util did not rise after hog onset: peak before=%.3f after=%.3f", before, after)
	}
}
