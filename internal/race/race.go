// Package race reports whether the Go race detector is compiled in, so
// tests can skip work that is meaningless under it (e.g. wall-clock
// scaling measurements, which the detector slows by an order of
// magnitude without adding any interleaving coverage of its own).
package race
