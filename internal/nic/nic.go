// Package nic models the network interface card: per-core Rx descriptor
// rings with multi-page descriptors (64 pages on Mellanox CX-5), a finite
// input buffer with tail drop and DCTCP-style ECN marking, the Rx DMA
// engine that splits packets into PCIe transactions and translates each
// through the IOMMU, and the Tx DMA engine that reads packets (and ACKs)
// out of host memory.
//
// The NIC owns the Rx descriptor lifecycle (§2.1 steps 1–4): it consumes
// descriptor page slots as packets arrive, and when a descriptor's pages
// are exhausted and its DMAs complete it schedules the driver work —
// unmap + invalidate + replenish — on the owning core via the host's CPU
// executor.
package nic

import (
	"fmt"

	"fastsafe/internal/core"
	"fastsafe/internal/fault"
	"fastsafe/internal/pcie"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// Executor schedules driver work on a core: work runs when the core frees
// up and returns the CPU time it consumed; done (optional) fires once that
// time has elapsed.
type Executor interface {
	Do(cpu int, work func() sim.Duration, done func())
}

// Packet is one wire packet. Payload is opaque to the NIC.
type Packet struct {
	CPU     int // target core / ring (aRFS steering)
	Bytes   int
	ECN     bool // marked congestion-experienced
	Payload any
}

// Config sizes the NIC.
type Config struct {
	Cores       int
	MTU         int // max packet payload (default 4096)
	RingPackets int // Rx ring capacity in MTU-sized frames per core (default 256)
	BufferBytes int // shared input buffer (default 2MB)
	ECNKBytes   int // mark threshold; <0 disables marking (default 100KB).
	// Real NICs do not ECN-mark on host-side congestion — the host sets
	// this negative and relies on switch marking; PCIe backpressure is
	// invisible to DCTCP and surfaces as tail drops (the host-congestion
	// observation of [1, 2]).
	DirectECNKBytes int // mark threshold for one-sided DMA (DirectRx);
	// 0 falls back to ECNKBytes, <0 disables. One-sided traffic
	// terminates at the NIC, so the device buffer IS the congestion
	// point: RDMA NICs surface it as congestion notification (CNP /
	// PFC-fed switch marks), which this threshold stands in for.
	MPS         int // PCIe max payload size per transaction (default 512)
	HeaderBytes int // per-frame link+transport header overhead (default 66)
	StrideAlign int // frame placement alignment within a descriptor (default 256)
	// Faults, when non-nil, makes this NIC misbehave per the fault plan:
	// stray/wild DMA translations, duplicate descriptor fetches, delayed
	// completion writebacks. Nil (the default) is a guaranteed no-op.
	Faults *fault.Device
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.MTU <= 0 {
		c.MTU = 4096
	}
	if c.RingPackets <= 0 {
		c.RingPackets = 256
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 2 << 20
	}
	if c.ECNKBytes == 0 {
		c.ECNKBytes = 100 << 10
	}
	if c.MPS <= 0 {
		c.MPS = 512
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = 66
	}
	if c.StrideAlign <= 0 {
		c.StrideAlign = 256
	}
	return c
}

// Stats counts NIC-level events.
type Stats struct {
	Arrived      int64
	ArrivedBytes int64
	Dropped      int64
	DroppedBytes int64
	Marked       int64
	RxDMAs       int64
	RxBytes      int64
	TxDMAs       int64
	TxBytes      int64
	RingStalls   int64 // arrivals that found no descriptor slot free
}

// ring is one core's Rx descriptor ring. Frames are packed
// byte-contiguously into a descriptor's pages (Mellanox multi-packet RQ):
// a frame may span a page boundary and consecutive frames share pages,
// which is why IOTLB misses per page sit between 1 and 2 and grow with
// interference (§2.2).
type ring struct {
	cpu      int
	avail    []*core.Descriptor
	cur      *core.Descriptor
	curByte  int                      // next free byte in the current descriptor
	pending  map[*core.Descriptor]int // outstanding DMAs per descriptor
	done     map[*core.Descriptor]bool
	queue    []Packet // packets waiting for DMA on this ring
	ringIOVA ptable.IOVA
}

// NIC is the device model.
type NIC struct {
	eng  *sim.Engine
	cfg  Config
	dom  *core.Domain
	rx   *pcie.Link
	tx   *pcie.Link
	exec Executor

	rings       []*ring
	bufferBytes int
	nextRing    int // round-robin pump cursor

	txQueue []txEntry

	// OnDeliver fires when a packet's DMA into memory completes; the host
	// then charges per-packet stack work to the core.
	OnDeliver func(pkt Packet)
	// OnTxDone fires when a Tx DMA read completes (the packet is on the
	// wire); the host unmaps the Tx mapping.
	OnTxDone func(pkt Packet, m *core.TxMapping)
	// OnDrop fires when the input buffer tail-drops a packet.
	OnDrop func(pkt Packet)

	stats     Stats
	rxPumping bool
	txPumping bool
}

type txEntry struct {
	pkt Packet
	m   *core.TxMapping
	// iovas, for one-sided reads, names the registered memory window the
	// NIC streams from directly — no per-packet MapTx/UnmapTx (m is nil).
	iovas []ptable.IOVA
	start int // byte offset of the frame within iovas
}

// New wires a NIC to its PCIe links, protection domain and CPU executor.
func New(eng *sim.Engine, cfg Config, dom *core.Domain, rx, tx *pcie.Link, exec Executor) (*NIC, error) {
	cfg = cfg.withDefaults()
	n := &NIC{eng: eng, cfg: cfg, dom: dom, rx: rx, tx: tx, exec: exec}
	descPages := dom.DescriptorPages()
	descBytes := descPages * ptable.PageSize
	frame := cfg.MTU + cfg.HeaderBytes
	if frame > descBytes {
		return nil, fmt.Errorf("nic: MTU %d larger than a descriptor", cfg.MTU)
	}
	framesPerDesc := descBytes / frame
	// The NIC is given twice the ring's worth of pages (the paper's
	// footnote 2 observes this factor of two in practice).
	numDesc := 2 * ((cfg.RingPackets + framesPerDesc - 1) / framesPerDesc)
	for c := 0; c < cfg.Cores; c++ {
		r := &ring{cpu: c, pending: map[*core.Descriptor]int{}, done: map[*core.Descriptor]bool{}}
		// The ring table itself is coherent DMA memory, mapped once.
		iovas, err := dom.MapPersistentPages(c, 1)
		if err != nil {
			return nil, err
		}
		r.ringIOVA = iovas[0]
		for d := 0; d < numDesc; d++ {
			desc, _, err := dom.MapRxDescriptor(c)
			if err != nil {
				return nil, err
			}
			r.avail = append(r.avail, desc)
		}
		n.rings = append(n.rings, r)
	}
	return n, nil
}

// Stats returns NIC counters.
func (n *NIC) Stats() Stats { return n.stats }

// BufferOccupancy returns the current input-buffer fill in bytes.
func (n *NIC) BufferOccupancy() int { return n.bufferBytes }

// frameBytes returns the DMA size of a packet: payload plus headers.
func (n *NIC) frameBytes(pkt Packet) int { return pkt.Bytes + n.cfg.HeaderBytes }

// align rounds b up to the frame placement alignment.
func (n *NIC) align(b int) int {
	a := n.cfg.StrideAlign
	return (b + a - 1) / a * a
}

// FrameStride returns the aligned byte stride one frame of the given
// payload occupies in a registered memory window — the same packing the
// Rx rings use, so window capacity math matches ring capacity math.
func (n *NIC) FrameStride(payload int) int { return n.align(payload + n.cfg.HeaderBytes) }

// Arrive delivers a wire packet into the NIC input buffer (§2.1 step 2).
// It applies ECN marking above the K threshold and tail-drops when the
// buffer is full.
func (n *NIC) Arrive(pkt Packet) {
	n.stats.Arrived++
	n.stats.ArrivedBytes += int64(pkt.Bytes)
	if n.bufferBytes+pkt.Bytes > n.cfg.BufferBytes {
		n.stats.Dropped++
		n.stats.DroppedBytes += int64(pkt.Bytes)
		if n.OnDrop != nil {
			n.OnDrop(pkt)
		}
		return
	}
	if n.cfg.ECNKBytes > 0 && n.bufferBytes > n.cfg.ECNKBytes {
		pkt.ECN = true
		n.stats.Marked++
	}
	n.bufferBytes += pkt.Bytes
	r := n.rings[pkt.CPU%len(n.rings)]
	r.queue = append(r.queue, pkt)
	n.pumpRx()
}

// DirectRx ingests a one-sided packet (an RDMA WRITE arriving from the
// fabric, or READ response data): input-buffer accounting and ECN as in
// Arrive, but the frame lands in a registered memory window (page-sized
// IOVAs, starting at byte offset start) that the NIC resolves itself —
// through its ATS cache when one is attached — with no ring descriptor
// consumed and no receive CPU involved.
func (n *NIC) DirectRx(pkt Packet, iovas []ptable.IOVA, start int) {
	n.stats.Arrived++
	n.stats.ArrivedBytes += int64(pkt.Bytes)
	if n.bufferBytes+pkt.Bytes > n.cfg.BufferBytes {
		n.stats.Dropped++
		n.stats.DroppedBytes += int64(pkt.Bytes)
		if n.OnDrop != nil {
			n.OnDrop(pkt)
		}
		return
	}
	if k := n.directECNK(); k > 0 && n.bufferBytes > k {
		pkt.ECN = true
		n.stats.Marked++
	}
	n.bufferBytes += pkt.Bytes
	reads := 0
	if n.dom.Mode().Translated() {
		n.cfg.Faults.Observe(iovas[start/ptable.PageSize] + ptable.IOVA(start%ptable.PageSize))
		reads = n.translateWindow(iovas, start, n.frameBytes(pkt))
		reads += n.cfg.Faults.MaybeMisbehave()
	}
	n.stats.RxDMAs++
	n.stats.RxBytes += int64(pkt.Bytes)
	n.rx.Submit(pkt.Bytes, reads, func() {
		n.bufferBytes -= pkt.Bytes
		if n.OnDeliver != nil {
			n.OnDeliver(pkt)
		}
		n.pumpRx()
	})
}

func (n *NIC) directECNK() int {
	if n.cfg.DirectECNKBytes != 0 {
		return n.cfg.DirectECNKBytes
	}
	return n.cfg.ECNKBytes
}

// translateWindow translates one frame's PCIe transactions against a
// window of page-sized IOVAs, returning the page-table reads performed.
func (n *NIC) translateWindow(iovas []ptable.IOVA, start, bytes int) int {
	reads := 0
	for off := 0; off < bytes; off += n.cfg.MPS {
		b := start + off
		page := b / ptable.PageSize
		if page >= len(iovas) {
			page = len(iovas) - 1
		}
		v := iovas[page] + ptable.IOVA(b%ptable.PageSize)
		tr := n.dom.Translate(v)
		reads += tr.MemReads
	}
	return reads
}

// pumpRx starts the next Rx DMA if the PCIe link is free and some ring has
// both a queued packet and descriptor pages available.
func (n *NIC) pumpRx() {
	if n.rxPumping {
		return
	}
	n.rxPumping = true
	defer func() { n.rxPumping = false }()

	// Keep a few DMAs in flight: the root complex pipelines translations
	// of queued transactions, so translation streams from different rings
	// interleave at PCIe-transaction granularity — this is what lets
	// concurrent DMAs contend for the IOTLB and PTcaches (§2.2).
	for n.rx.Outstanding() < rxPipeline {
		type pending struct {
			r     *ring
			pkt   Packet
			desc  *core.Descriptor
			start int // byte offset within the descriptor
		}
		var batch []pending
		for n.rx.Outstanding()+len(batch) < rxPipeline {
			r := n.pickRing()
			if r == nil {
				break
			}
			pkt := r.queue[0]
			r.queue = r.queue[1:]
			desc := r.cur
			start := n.align(r.curByte)
			r.curByte = start + n.frameBytes(pkt)
			r.pending[desc]++
			batch = append(batch, pending{r, pkt, desc, start})
		}
		if len(batch) == 0 {
			return
		}
		// Translate the batch's transactions round-robin, the way they
		// interleave on the wire, then submit each DMA.
		reads := make([]int, len(batch))
		if n.dom.Mode().Translated() {
			for t := 0; ; t++ {
				progress := false
				for i, p := range batch {
					off := t * n.cfg.MPS
					if off >= n.frameBytes(p.pkt) {
						continue
					}
					progress = true
					b := p.start + off
					page := b / ptable.PageSize
					v := p.desc.IOVAs[page] + ptable.IOVA(b%ptable.PageSize)
					if t == 0 {
						n.cfg.Faults.Observe(v)
					}
					tr := n.dom.Translate(v)
					reads[i] += tr.MemReads
				}
				if !progress {
					break
				}
			}
			for i := range batch {
				reads[i] += n.cfg.Faults.MaybeMisbehave()
			}
		}
		for i, p := range batch {
			n.submitRxDMA(p.r, p.pkt, p.desc, reads[i])
		}
	}
}

// rxPipeline bounds in-flight Rx DMAs (about 100 cachelines of RC-side
// buffering, i.e. roughly two 4KB packets, plus headroom for small ones).
const rxPipeline = 4

// pickRing round-robins over rings that can make progress.
func (n *NIC) pickRing() *ring {
	for i := 0; i < len(n.rings); i++ {
		r := n.rings[(n.nextRing+i)%len(n.rings)]
		if len(r.queue) == 0 {
			continue
		}
		if !n.ensureDescriptor(r) {
			n.stats.RingStalls++
			continue
		}
		n.nextRing = (n.nextRing + i + 1) % len(n.rings)
		return r
	}
	return nil
}

// ensureDescriptor makes r.cur usable, fetching the next descriptor from
// the available list when the current one is exhausted. Fetching a
// descriptor costs one translated read of the ring page.
func (n *NIC) ensureDescriptor(r *ring) bool {
	// A descriptor is usable only if a maximum-size frame fits after the
	// current fill point; the partial tail is wasted, as on real hardware.
	if r.cur != nil && n.align(r.curByte)+n.cfg.MTU+n.cfg.HeaderBytes <= len(r.cur.IOVAs)*ptable.PageSize {
		return true
	}
	if len(r.avail) == 0 {
		return false
	}
	r.cur = r.avail[0]
	r.avail = r.avail[1:]
	r.curByte = 0
	if n.dom.Mode().Translated() {
		n.dom.Translate(r.ringIOVA) // descriptor fetch
		if n.cfg.Faults.DupDescRead() {
			n.dom.Translate(r.ringIOVA) // injected out-of-window duplicate
		}
	}
	return true
}

// submitRxDMA submits one translated stride DMA (slot accounting was done
// when the batch claimed the stride).
func (n *NIC) submitRxDMA(r *ring, pkt Packet, desc *core.Descriptor, reads int) {
	n.stats.RxDMAs++
	n.stats.RxBytes += int64(pkt.Bytes)
	n.rx.Submit(pkt.Bytes, reads, func() {
		n.bufferBytes -= pkt.Bytes
		r.pending[desc]--
		n.maybeRecycle(r, desc)
		if n.OnDeliver != nil {
			n.OnDeliver(pkt)
		}
		n.pumpRx()
	})
}

// maybeRecycle retires a fully-consumed, fully-DMAed descriptor: the
// driver unmaps it (strict safety: the NIC loses access now) and maps a
// fresh descriptor, all as CPU work on the owning core.
func (n *NIC) maybeRecycle(r *ring, desc *core.Descriptor) {
	if desc == r.cur && n.align(r.curByte)+n.cfg.MTU+n.cfg.HeaderBytes <= len(desc.IOVAs)*ptable.PageSize {
		return // still being filled
	}
	if r.pending[desc] != 0 || r.done[desc] {
		return
	}
	r.done[desc] = true
	if r.cur == desc {
		r.cur = nil
		r.curByte = 0
	}
	recycle := func() {
		n.exec.Do(r.cpu, func() sim.Duration {
			unmapCost, err := n.dom.UnmapRxDescriptor(desc)
			if err != nil {
				panic(fmt.Sprintf("nic: unmap descriptor: %v", err))
			}
			fresh, mapCost, err := n.dom.MapRxDescriptor(r.cpu)
			if err != nil {
				panic(fmt.Sprintf("nic: replenish descriptor: %v", err))
			}
			delete(r.pending, desc)
			delete(r.done, desc)
			r.avail = append(r.avail, fresh)
			return unmapCost + mapCost
		}, func() {
			n.pumpRx()
		})
	}
	// An injected late completion writeback delays the driver seeing the
	// descriptor as done — the unmap happens later, never earlier, so
	// this widens timing windows without ever weakening safety itself.
	if delay := n.cfg.Faults.DelayWriteback(); delay > 0 {
		n.eng.After(delay, recycle)
	} else {
		recycle()
	}
}

// SendTx enqueues a Tx DMA: the NIC reads the packet out of host memory
// through m's IOVAs. The host must have charged MapTx CPU cost already.
func (n *NIC) SendTx(pkt Packet, m *core.TxMapping) {
	n.txQueue = append(n.txQueue, txEntry{pkt: pkt, m: m})
	n.pumpTx()
}

// SendTxDirect enqueues a one-sided Tx DMA: the NIC streams the frame
// out of a registered memory window (page-sized IOVAs, frame starting at
// byte offset start) through its own translation path — no per-packet
// MapTx, and OnTxDone fires with a nil mapping so nothing is unmapped.
func (n *NIC) SendTxDirect(pkt Packet, iovas []ptable.IOVA, start int) {
	n.txQueue = append(n.txQueue, txEntry{pkt: pkt, iovas: iovas, start: start})
	n.pumpTx()
}

func (n *NIC) pumpTx() {
	if n.txPumping {
		return
	}
	n.txPumping = true
	defer func() { n.txPumping = false }()

	for !n.tx.Busy() && len(n.txQueue) > 0 {
		e := n.txQueue[0]
		n.txQueue = n.txQueue[1:]
		reads := 0
		if n.dom.Mode().Translated() && e.m != nil {
			n.cfg.Faults.Observe(e.m.IOVAs[0])
			for off := 0; off < e.pkt.Bytes+n.cfg.HeaderBytes; off += n.cfg.MPS {
				page := off / ptable.PageSize
				if page >= len(e.m.IOVAs) {
					page = len(e.m.IOVAs) - 1
				}
				v := e.m.IOVAs[page] + ptable.IOVA(off%ptable.PageSize)
				tr := n.dom.Translate(v)
				reads += tr.MemReads
			}
			reads += n.cfg.Faults.MaybeMisbehave()
		} else if n.dom.Mode().Translated() && len(e.iovas) > 0 {
			n.cfg.Faults.Observe(e.iovas[e.start/ptable.PageSize])
			reads = n.translateWindow(e.iovas, e.start, e.pkt.Bytes+n.cfg.HeaderBytes)
			reads += n.cfg.Faults.MaybeMisbehave()
		}
		n.stats.TxDMAs++
		n.stats.TxBytes += int64(e.pkt.Bytes)
		n.tx.Submit(e.pkt.Bytes, reads, func() {
			if n.OnTxDone != nil {
				n.OnTxDone(e.pkt, e.m)
			}
			n.pumpTx()
		})
	}
}

// TxQueueLen reports packets waiting for a Tx DMA slot.
func (n *NIC) TxQueueLen() int { return len(n.txQueue) }
