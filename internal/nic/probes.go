package nic

import (
	"fastsafe/internal/stats"
)

// RegisterProbes exposes the NIC's datapath counters and queue state
// through the registry under prefix (e.g. "nic0."). All probes are
// read-only views over live state.
func (n *NIC) RegisterProbes(r *stats.Registry, prefix string) {
	probe := func(name string, fn func(Stats) int64) {
		r.GaugeFunc(prefix+name, func() float64 { return float64(fn(n.stats)) })
	}
	probe("arrived", func(s Stats) int64 { return s.Arrived })
	probe("arrived_bytes", func(s Stats) int64 { return s.ArrivedBytes })
	probe("dropped", func(s Stats) int64 { return s.Dropped })
	probe("dropped_bytes", func(s Stats) int64 { return s.DroppedBytes })
	probe("marked", func(s Stats) int64 { return s.Marked })
	probe("rx_dmas", func(s Stats) int64 { return s.RxDMAs })
	probe("rx_bytes", func(s Stats) int64 { return s.RxBytes })
	probe("tx_dmas", func(s Stats) int64 { return s.TxDMAs })
	probe("tx_bytes", func(s Stats) int64 { return s.TxBytes })
	probe("ring_stalls", func(s Stats) int64 { return s.RingStalls })
	r.GaugeFunc(prefix+"buffer_bytes", func() float64 { return float64(n.bufferBytes) })
	r.GaugeFunc(prefix+"tx_queue", func() float64 { return float64(len(n.txQueue)) })
}
