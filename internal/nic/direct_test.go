package nic

import (
	"testing"

	"fastsafe/internal/ats"
	"fastsafe/internal/core"
	"fastsafe/internal/pcie"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// newDirectHarness is newHarness with a device-side ATS cache on the
// domain, for exercising the one-sided (DirectRx/SendTxDirect) path.
func newDirectHarness(t *testing.T, mode core.Mode, atsEntries int, cfg Config) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine(1)}
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	dom, err := core.NewDomain(core.Config{
		Mode: mode, NumCPUs: cfg.Cores, DescriptorPages: 8,
		ATS: ats.Config{Entries: atsEntries},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.dom = dom
	h.rx = pcie.New(h.eng, 65, 197, 128)
	h.tx = pcie.New(h.eng, 65, 197, 128)
	n, err := New(h.eng, cfg, h.dom, h.rx, h.tx, &instantExec{h.eng})
	if err != nil {
		t.Fatal(err)
	}
	h.nic = n
	n.OnDeliver = func(p Packet) { h.delivered = append(h.delivered, p) }
	n.OnDrop = func(p Packet) { h.dropped = append(h.dropped, p) }
	n.OnTxDone = func(p Packet, m *core.TxMapping) {
		if m != nil {
			t.Fatalf("one-sided Tx completed with a mapping: %+v", m)
		}
		h.txDone = append(h.txDone, p)
	}
	return h
}

// window registers a fixed-IOVA memory window of one descriptor and
// returns its page-sized IOVAs.
func window(t *testing.T, h *harness) []ptable.IOVA {
	t.Helper()
	desc, _, err := h.dom.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	return desc.IOVAs
}

func TestFrameStride(t *testing.T) {
	h := newHarness(t, core.Off, Config{})
	// Default HeaderBytes 66, StrideAlign 256: 4096+66 rounds to 4352.
	if got := h.nic.FrameStride(4096); got != 4352 {
		t.Fatalf("FrameStride(4096) = %d, want 4352", got)
	}
	if got := h.nic.FrameStride(0); got%256 != 0 || got == 0 {
		t.Fatalf("FrameStride(0) = %d, want positive multiple of 256", got)
	}
}

func TestDirectRxDeliversThroughATC(t *testing.T) {
	h := newDirectHarness(t, core.FNS, 64, Config{})
	iovas := window(t, h)
	h.nic.DirectRx(Packet{Bytes: 4096, Payload: "w"}, iovas, 0)
	h.nic.DirectRx(Packet{Bytes: 4096, Payload: "w2"}, iovas, 0)
	h.eng.RunAll()
	if len(h.delivered) != 2 {
		t.Fatalf("delivered = %v", h.delivered)
	}
	if h.nic.BufferOccupancy() != 0 {
		t.Fatal("buffer not drained")
	}
	st := h.nic.Stats()
	if st.RxDMAs != 2 {
		t.Fatalf("RxDMAs = %d, want 2", st.RxDMAs)
	}
	ac := h.dom.ATC().Counters()
	if ac.Lookups == 0 {
		t.Fatal("one-sided DMA performed no ATC lookups")
	}
	// The second frame re-walks the same window: its transactions must
	// be device-TLB hits.
	if ac.Hits == 0 {
		t.Fatalf("repeat window access missed the device TLB: %+v", ac)
	}
}

func TestDirectRxWithoutATCUsesIOMMU(t *testing.T) {
	h := newDirectHarness(t, core.Strict, 0, Config{})
	iovas := window(t, h)
	h.nic.DirectRx(Packet{Bytes: 4096}, iovas, 0)
	h.eng.RunAll()
	if len(h.delivered) != 1 {
		t.Fatalf("delivered = %v", h.delivered)
	}
	if h.dom.ATC() != nil {
		t.Fatal("domain grew an ATC without entries")
	}
	if c := h.dom.IOMMU().Counters(); c.Translations == 0 {
		t.Fatal("no IOMMU translations on the direct path")
	}
}

func TestDirectRxMarksAtOwnThreshold(t *testing.T) {
	// Arrive-path marking disabled (the host default); the direct path
	// marks at its own threshold — one frame in flight is enough.
	h := newDirectHarness(t, core.Off, 0, Config{ECNKBytes: -1, DirectECNKBytes: 1000})
	iovas := window(t, h)
	for i := 0; i < 4; i++ {
		h.nic.DirectRx(Packet{Bytes: 4096}, iovas, 0)
	}
	h.eng.RunAll()
	if st := h.nic.Stats(); st.Marked == 0 {
		t.Fatalf("no ECN marks above DirectECNKBytes: %+v", st)
	}
	var ecn int
	for _, p := range h.delivered {
		if p.ECN {
			ecn++
		}
	}
	if ecn == 0 {
		t.Fatal("marked frames not delivered with ECN set")
	}
}

func TestDirectRxMarkFallbackAndDisable(t *testing.T) {
	// DirectECNKBytes 0 falls back to ECNKBytes.
	h := newDirectHarness(t, core.Off, 0, Config{ECNKBytes: 1000})
	iovas := window(t, h)
	for i := 0; i < 4; i++ {
		h.nic.DirectRx(Packet{Bytes: 4096}, iovas, 0)
	}
	h.eng.RunAll()
	if st := h.nic.Stats(); st.Marked == 0 {
		t.Fatalf("fallback threshold did not mark: %+v", st)
	}
	// Negative disables even when ECNKBytes would mark.
	h2 := newDirectHarness(t, core.Off, 0, Config{ECNKBytes: 1000, DirectECNKBytes: -1})
	iovas2 := window(t, h2)
	for i := 0; i < 4; i++ {
		h2.nic.DirectRx(Packet{Bytes: 4096}, iovas2, 0)
	}
	h2.eng.RunAll()
	if st := h2.nic.Stats(); st.Marked != 0 {
		t.Fatalf("disabled direct marking still marked: %+v", st)
	}
}

func TestDirectRxTailDrops(t *testing.T) {
	h := newDirectHarness(t, core.Off, 0, Config{BufferBytes: 5000})
	iovas := window(t, h)
	for i := 0; i < 3; i++ {
		h.nic.DirectRx(Packet{Bytes: 4096}, iovas, 0)
	}
	h.eng.RunAll()
	if len(h.dropped) == 0 {
		t.Fatal("overfull buffer dropped nothing")
	}
	if st := h.nic.Stats(); st.Dropped == 0 || st.DroppedBytes == 0 {
		t.Fatalf("drop stats not charged: %+v", st)
	}
}

func TestSendTxDirectStreamsWindow(t *testing.T) {
	h := newDirectHarness(t, core.FNS, 64, Config{})
	iovas := window(t, h)
	stride := h.nic.FrameStride(4096)
	h.nic.SendTxDirect(Packet{Bytes: 4096, Payload: "a"}, iovas, 0)
	h.nic.SendTxDirect(Packet{Bytes: 4096, Payload: "b"}, iovas, stride)
	h.eng.RunAll()
	if len(h.txDone) != 2 {
		t.Fatalf("txDone = %v", h.txDone)
	}
	st := h.nic.Stats()
	if st.TxDMAs != 2 || st.TxBytes != 2*4096 {
		t.Fatalf("Tx stats = %+v", st)
	}
	if ac := h.dom.ATC().Counters(); ac.Lookups == 0 {
		t.Fatal("one-sided Tx performed no ATC lookups")
	}
	// No MapTx happened: the domain must have allocated nothing beyond
	// the window registration.
	if c := h.dom.Counters(); c.TxPacketsMapped != 0 {
		t.Fatalf("one-sided Tx mapped packets: %+v", c)
	}
}
