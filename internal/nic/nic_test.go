package nic

import (
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/pcie"
	"fastsafe/internal/sim"
)

// instantExec runs driver work immediately with zero latency.
type instantExec struct{ eng *sim.Engine }

func (e *instantExec) Do(_ int, work func() sim.Duration, done func()) {
	d := work()
	if done != nil {
		e.eng.After(d, done)
	}
}

type harness struct {
	eng *sim.Engine
	dom *core.Domain
	nic *NIC
	rx  *pcie.Link
	tx  *pcie.Link

	delivered []Packet
	dropped   []Packet
	txDone    []Packet
}

func newHarness(t *testing.T, mode core.Mode, cfg Config) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine(1)}
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	dom, err := core.NewDomain(core.Config{Mode: mode, NumCPUs: cfg.Cores, DescriptorPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	h.dom = dom
	h.rx = pcie.New(h.eng, 65, 197, 128)
	h.tx = pcie.New(h.eng, 65, 197, 128)
	n, err := New(h.eng, cfg, h.dom, h.rx, h.tx, &instantExec{h.eng})
	if err != nil {
		t.Fatal(err)
	}
	h.nic = n
	n.OnDeliver = func(p Packet) { h.delivered = append(h.delivered, p) }
	n.OnDrop = func(p Packet) { h.dropped = append(h.dropped, p) }
	n.OnTxDone = func(p Packet, m *core.TxMapping) {
		h.txDone = append(h.txDone, p)
		if m != nil {
			if _, err := h.dom.UnmapTx(m); err != nil {
				t.Fatalf("UnmapTx: %v", err)
			}
		}
	}
	return h
}

func TestRxDeliversPacket(t *testing.T) {
	h := newHarness(t, core.Off, Config{})
	h.nic.Arrive(Packet{CPU: 0, Bytes: 4096, Payload: "p"})
	h.eng.RunAll()
	if len(h.delivered) != 1 || h.delivered[0].Payload != "p" {
		t.Fatalf("delivered = %v", h.delivered)
	}
	if h.nic.BufferOccupancy() != 0 {
		t.Fatal("buffer not drained")
	}
}

func TestRxTranslationCountsReads(t *testing.T) {
	h := newHarness(t, core.Strict, Config{})
	h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	h.eng.RunAll()
	c := h.dom.IOMMU().Counters()
	// 8 transactions of 512B: at least one IOTLB miss, seven hits.
	if c.Translations < 8 {
		t.Fatalf("Translations = %d, want >= 8", c.Translations)
	}
	if c.IOTLBMisses < 1 {
		t.Fatal("no IOTLB miss on first DMA")
	}
	if c.MemReads < 1 {
		t.Fatal("no page-table reads")
	}
}

func TestOffModeNoTranslations(t *testing.T) {
	h := newHarness(t, core.Off, Config{})
	h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	h.eng.RunAll()
	if h.dom.IOMMU().Counters().Translations != 0 {
		t.Fatal("Off mode performed translations")
	}
}

func TestBufferTailDrop(t *testing.T) {
	h := newHarness(t, core.Off, Config{BufferBytes: 8192})
	for i := 0; i < 4; i++ {
		h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	}
	// First packet may start its DMA immediately, freeing no buffer until
	// completion; at least one of the four must drop.
	if len(h.dropped) == 0 {
		t.Fatal("no tail drop with tiny buffer")
	}
	h.eng.RunAll()
	s := h.nic.Stats()
	if s.Dropped != int64(len(h.dropped)) {
		t.Fatalf("drop stats mismatch: %d vs %d", s.Dropped, len(h.dropped))
	}
}

func TestECNMarkingAboveThreshold(t *testing.T) {
	h := newHarness(t, core.Off, Config{BufferBytes: 1 << 20, ECNKBytes: 4096})
	for i := 0; i < 4; i++ {
		h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	}
	h.eng.RunAll()
	marked := 0
	for _, p := range h.delivered {
		if p.ECN {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no ECN marks above threshold")
	}
	if h.delivered[0].ECN {
		t.Fatal("first packet marked while buffer was empty")
	}
}

func TestDescriptorRecycling(t *testing.T) {
	// One descriptor = 64 pages = 64 packets at 4KB MTU. Sending 130
	// packets must recycle at least one descriptor.
	h := newHarness(t, core.FNS, Config{RingPackets: 128})
	for i := 0; i < 130; i++ {
		h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	}
	h.eng.RunAll()
	c := h.dom.Counters()
	if c.RxDescriptorsUnmapped == 0 {
		t.Fatal("no descriptor was recycled")
	}
	// All arrived packets eventually delivered (ring big enough).
	if len(h.delivered)+len(h.dropped) != 130 {
		t.Fatalf("delivered %d + dropped %d != 130", len(h.delivered), len(h.dropped))
	}
}

func TestRingStallWhenDescriptorsExhausted(t *testing.T) {
	// A stalled executor never replenishes descriptors: after the ring's
	// strides are consumed, packets pile up and eventually drop.
	h := newHarness(t, core.Strict, Config{RingPackets: 64, BufferBytes: 16 * 4096})
	// Replace executor behaviour: the default instantExec already ran in
	// New for initial descriptors; block future recycles by swapping exec.
	h.nic.exec = &neverExec{}
	for i := 0; i < 100; i++ {
		h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	}
	h.eng.RunAll()
	if len(h.delivered) > 64 {
		t.Fatalf("delivered %d, want <= 64 (one ring of descriptors)", len(h.delivered))
	}
	if h.nic.Stats().Dropped == 0 {
		t.Fatal("expected drops once the ring stalled")
	}
}

type neverExec struct{}

func (*neverExec) Do(int, func() sim.Duration, func()) {}

func TestMultiCoreSteering(t *testing.T) {
	h := newHarness(t, core.Off, Config{Cores: 2})
	h.nic.Arrive(Packet{CPU: 0, Bytes: 4096, Payload: 0})
	h.nic.Arrive(Packet{CPU: 1, Bytes: 4096, Payload: 1})
	h.eng.RunAll()
	if len(h.delivered) != 2 {
		t.Fatalf("delivered = %d, want 2", len(h.delivered))
	}
}

func TestTxDMAAndUnmap(t *testing.T) {
	h := newHarness(t, core.FNS, Config{})
	m, _, err := h.dom.MapTx(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.nic.SendTx(Packet{CPU: 0, Bytes: 64, Payload: "ack"}, m)
	h.eng.RunAll()
	if len(h.txDone) != 1 {
		t.Fatalf("txDone = %d, want 1", len(h.txDone))
	}
	if h.dom.Counters().TxPacketsUnmapped != 1 {
		t.Fatal("Tx mapping not unmapped after DMA")
	}
	if h.nic.Stats().TxDMAs != 1 {
		t.Fatal("Tx DMA not counted")
	}
}

func TestTxQueueSerializes(t *testing.T) {
	h := newHarness(t, core.Off, Config{})
	for i := 0; i < 3; i++ {
		h.nic.SendTx(Packet{CPU: 0, Bytes: 4096, Payload: i}, nil)
	}
	if h.nic.TxQueueLen() == 0 && h.tx.Busy() == false {
		t.Fatal("expected queued Tx work")
	}
	h.eng.RunAll()
	if len(h.txDone) != 3 {
		t.Fatalf("txDone = %d, want 3", len(h.txDone))
	}
	for i, p := range h.txDone {
		if p.Payload != i {
			t.Fatalf("Tx completion order = %v", h.txDone)
		}
	}
}

func TestJumboMTUConsumesMultiplePages(t *testing.T) {
	h := newHarness(t, core.Strict, Config{MTU: 9000, RingPackets: 32})
	h.nic.Arrive(Packet{CPU: 0, Bytes: 9000})
	h.eng.RunAll()
	if len(h.delivered) != 1 {
		t.Fatalf("delivered = %d, want 1", len(h.delivered))
	}
	// 9000B at 512B MPS = 18 transactions spanning 3 pages.
	if c := h.dom.IOMMU().Counters(); c.Translations < 18 {
		t.Fatalf("Translations = %d, want >= 18", c.Translations)
	}
}

func TestThroughputCloseToModelStrictVsOff(t *testing.T) {
	// Off mode drains 4KB packets at PCIe serialization (256ns each);
	// strict mode with cold caches is slower.
	run := func(mode core.Mode) sim.Time {
		h := newHarness(t, mode, Config{RingPackets: 512, BufferBytes: 8 << 20})
		for i := 0; i < 256; i++ {
			h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
		}
		h.eng.RunAll()
		if len(h.delivered) != 256 {
			t.Fatalf("mode %v delivered %d", mode, len(h.delivered))
		}
		return h.eng.Now()
	}
	off := run(core.Off)
	strict := run(core.Strict)
	if strict <= off {
		t.Fatalf("strict (%v) not slower than off (%v)", strict, off)
	}
}

func TestBytePackedFramesSharePages(t *testing.T) {
	// Two consecutive 4096B-payload frames (4162B with headers) share the
	// page the first frame's tail lands in: translating the second frame's
	// head must hit the IOTLB entry the first frame installed.
	h := newHarness(t, core.FNS, Config{})
	h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	h.eng.RunAll()
	missesAfterFirst := h.dom.IOMMU().Counters().IOTLBMisses
	h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	h.eng.RunAll()
	missesAfterSecond := h.dom.IOMMU().Counters().IOTLBMisses
	// First frame touches pages 0 and 1 (2 misses); the second starts in
	// page 1 (hit) and crosses into page 2 (1 miss).
	if d := missesAfterSecond - missesAfterFirst; d != 1 {
		t.Fatalf("second frame caused %d IOTLB misses, want 1 (page sharing)", d)
	}
}

func TestSmallFramesPackDensely(t *testing.T) {
	// 64B ACK frames pack at 256B alignment: ~30 of them fit in one page,
	// consuming descriptor bytes far slower than MTU frames.
	h := newHarness(t, core.FNS, Config{})
	for i := 0; i < 30; i++ {
		h.nic.Arrive(Packet{CPU: 0, Bytes: 64})
	}
	h.eng.RunAll()
	if len(h.delivered) != 30 {
		t.Fatalf("delivered %d", len(h.delivered))
	}
	// All 30 frames fit within the first couple of pages: at most a few
	// IOTLB misses, not one per frame.
	if c := h.dom.IOMMU().Counters(); c.IOTLBMisses > 3 {
		t.Fatalf("IOTLBMisses = %d for 30 packed small frames, want <= 3", c.IOTLBMisses)
	}
}

func TestDescriptorTailWasted(t *testing.T) {
	// When the remaining descriptor bytes cannot hold a max-size frame,
	// the NIC moves to the next descriptor; the ring still makes progress.
	h := newHarness(t, core.Strict, Config{RingPackets: 256})
	n := 200
	for i := 0; i < n; i++ {
		h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	}
	h.eng.RunAll()
	if len(h.delivered)+len(h.dropped) != n {
		t.Fatalf("accounted %d of %d", len(h.delivered)+len(h.dropped), n)
	}
	if h.dom.Counters().RxDescriptorsUnmapped == 0 {
		t.Fatal("no descriptor completed despite tail waste")
	}
}

func TestRingStallCounter(t *testing.T) {
	// The ring is provisioned with 2x its nominal packet capacity
	// (footnote 2), so exhaust well beyond that with a dead executor.
	h := newHarness(t, core.Strict, Config{RingPackets: 64, BufferBytes: 4 << 20})
	h.nic.exec = &neverExec{} // descriptors never replenished
	for i := 0; i < 400; i++ {
		h.nic.Arrive(Packet{CPU: 0, Bytes: 4096})
	}
	h.eng.RunAll()
	if h.nic.Stats().RingStalls == 0 {
		t.Fatal("expected ring stalls with a dead executor")
	}
}
