package iommu

import (
	"testing"

	"fastsafe/internal/ptable"
)

func TestDomainsHaveSeparateTables(t *testing.T) {
	m := New(Config{})
	d1 := m.CreateDomain()
	d2 := m.CreateDomain()
	if d1 == 0 || d2 == 0 || d1 == d2 {
		t.Fatalf("domain ids = %d, %d", d1, d2)
	}
	if m.TableOf(d1) == m.TableOf(d2) || m.TableOf(d1) == m.Table() {
		t.Fatal("domains share a page table")
	}
}

func TestCrossDomainIsolation(t *testing.T) {
	// The same IOVA in two domains maps to different physical pages, and a
	// domain with no mapping faults even when another domain's entry for
	// that address is hot in the shared caches.
	m := New(Config{})
	d1 := m.CreateDomain()
	d2 := m.CreateDomain()
	if err := m.TableOf(d1).Map(0x1000, 0xaaa000); err != nil {
		t.Fatal(err)
	}
	if err := m.TableOf(d2).Map(0x1000, 0xbbb000); err != nil {
		t.Fatal(err)
	}
	t1 := m.TranslateIn(d1, 0x1000)
	t2 := m.TranslateIn(d2, 0x1000)
	if !t1.OK || !t2.OK {
		t.Fatal("translations failed")
	}
	if t1.Phys == t2.Phys {
		t.Fatal("domains resolved the same IOVA to the same physical page")
	}
	// A third domain must fault despite both entries being cached.
	d3 := m.CreateDomain()
	if tr := m.TranslateIn(d3, 0x1000); tr.OK {
		t.Fatal("unmapped domain translated through another domain's cache entry")
	}
}

func TestDomainScopedInvalidation(t *testing.T) {
	// Invalidating d1's IOVA must not disturb d2's identical IOVA.
	m := New(Config{})
	d1 := m.CreateDomain()
	d2 := m.CreateDomain()
	if err := m.TableOf(d1).Map(0x2000, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.TableOf(d2).Map(0x2000, 2); err != nil {
		t.Fatal(err)
	}
	m.TranslateIn(d1, 0x2000)
	m.TranslateIn(d2, 0x2000)
	m.InvalidateIn(d1, 0x2000, 1, false)
	if tr := m.TranslateIn(d2, 0x2000); !tr.IOTLBHit {
		t.Fatal("d1's invalidation evicted d2's IOTLB entry")
	}
	// d1's entry must be gone and its PTcaches dropped (full walk).
	if tr := m.TranslateIn(d1, 0x2000); tr.IOTLBHit || tr.MemReads != 4 {
		t.Fatalf("d1 after invalidation: %+v", tr)
	}
}

func TestDomainsContendForCacheCapacity(t *testing.T) {
	// Domains are isolated but share capacity: a domain streaming many
	// distinct PT-L3 spans evicts another domain's PTcache entries.
	m := New(Config{L3Size: 4})
	d1 := m.CreateDomain()
	d2 := m.CreateDomain()
	if err := m.TableOf(d1).Map(0, 1); err != nil {
		t.Fatal(err)
	}
	m.TranslateIn(d1, 0) // d1's L3 entry cached
	// d2 streams through 8 distinct 2MB spans.
	for i := 0; i < 8; i++ {
		v := ptable.IOVA(uint64(i) * ptable.L4PageSpan)
		if err := m.TableOf(d2).Map(v, ptable.Phys(i+1)); err != nil {
			t.Fatal(err)
		}
		m.TranslateIn(d2, v)
	}
	// d1's IOTLB entry survives (different key space, enough IOTLB room),
	// but its PTcache-L3 entry was evicted: invalidate the IOTLB entry and
	// re-translate — the walk must read more than one level.
	m.InvalidateIn(d1, 0, 1, true)
	if tr := m.TranslateIn(d1, 0); tr.MemReads < 2 {
		t.Fatalf("d1 walk reads = %d, want >= 2 after capacity eviction", tr.MemReads)
	}
}

func TestDefaultDomainCompatibility(t *testing.T) {
	// The domain-less API operates on domain 0.
	m := New(Config{})
	if err := m.Table().Map(0x1000, 7); err != nil {
		t.Fatal(err)
	}
	if tr := m.Translate(0x1000); !tr.OK || tr.Phys != 7 {
		t.Fatalf("default-domain translation = %+v", tr)
	}
	m.Invalidate(0x1000, 1, false)
	if tr := m.Translate(0x1000); tr.IOTLBHit {
		t.Fatal("default-domain invalidation failed")
	}
}
