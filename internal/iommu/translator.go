package iommu

import "fastsafe/internal/ptable"

// Translator is the seam between a protection domain's driver operations
// and whatever performs (and caches) its DMA translations. The IOMMU's
// own pipeline is the base implementation; a device-side ATS translation
// cache wraps it, caching completed translations in the device and
// intercepting invalidations so the host can shoot down the device TLB.
// A domain built without ATS routes through the direct implementation,
// which forwards verbatim to the IOMMU — same calls, same counters, same
// event stream.
type Translator interface {
	// Translate resolves one PCIe transaction's IOVA.
	Translate(v ptable.IOVA) Translation
	// Invalidate services one invalidation-queue request covering
	// [base, base+pages*4KB); iotlbOnly preserves the PTcaches (F&S
	// idea A).
	Invalidate(base ptable.IOVA, pages int, iotlbOnly bool)
	// InvalidateAll is the global flush used at teardown.
	InvalidateAll()
}

// direct is the ATS-less Translator: the domain talks straight to the
// shared IOMMU, exactly as before the seam existed.
type direct struct {
	m *IOMMU
	d DomainID
}

func (t direct) Translate(v ptable.IOVA) Translation { return t.m.TranslateIn(t.d, v) }

func (t direct) Invalidate(base ptable.IOVA, pages int, iotlbOnly bool) {
	t.m.InvalidateIn(t.d, base, pages, iotlbOnly)
}

func (t direct) InvalidateAll() { t.m.FlushAll() }

// TranslatorOf returns domain d's direct (IOMMU-only) Translator.
func (m *IOMMU) TranslatorOf(d DomainID) Translator { return direct{m: m, d: d} }
