// Package iommu simulates the IO memory management unit: the IOTLB, the
// per-level IO page table caches (PTcache-L1/L2/L3 in the paper's
// terminology), the page-table walker, and the invalidation-queue
// interface, including its option to invalidate only the IOTLB while
// preserving the page-table caches — the hardware hook F&S uses (§3).
package iommu

// lru is a fully-associative LRU cache from uint64 keys to uint64 values.
// PTcache-L1/L2/L3 are modelled as LRU caches keyed by the IOVA prefix
// selecting a page-table page; the value is the identity of that page,
// used to detect stale (use-after-reclaim) entries.
type lru struct {
	cap   int
	items map[uint64]*lruNode
	head  *lruNode // most recently used
	tail  *lruNode // least recently used
}

type lruNode struct {
	key        uint64
	val        uint64
	prev, next *lruNode
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, items: make(map[uint64]*lruNode, capacity)}
}

func (c *lru) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lru) pushFront(n *lruNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// get returns the value for key and marks it most recently used.
func (c *lru) get(key uint64) (uint64, bool) {
	n, ok := c.items[key]
	if !ok {
		return 0, false
	}
	if c.head != n {
		c.unlink(n)
		c.pushFront(n)
	}
	return n.val, true
}

// put inserts or refreshes key, evicting the LRU entry at capacity.
func (c *lru) put(key, val uint64) {
	if n, ok := c.items[key]; ok {
		n.val = val
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		return
	}
	if len(c.items) >= c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.items, evict.key)
	}
	n := &lruNode{key: key, val: val}
	c.items[key] = n
	c.pushFront(n)
}

// invalidate removes key if present, reporting whether it was present.
func (c *lru) invalidate(key uint64) bool {
	n, ok := c.items[key]
	if !ok {
		return false
	}
	c.unlink(n)
	delete(c.items, key)
	return true
}

func (c *lru) len() int { return len(c.items) }

// setAssoc is a set-associative cache used for the IOTLB: pageNumber keys
// map to a set by their low bits, and each set is a tiny LRU of `ways`
// entries. Conflict misses under scattered (poorly localised) IOVAs and
// their absence under F&S-contiguous IOVAs emerge from the indexing.
type setAssoc struct {
	sets []*lru
	ways int
}

func newSetAssoc(nsets, ways int) *setAssoc {
	if nsets < 1 {
		nsets = 1
	}
	// Round sets to a power of two for mask indexing.
	n := 1
	for n < nsets {
		n <<= 1
	}
	s := &setAssoc{sets: make([]*lru, n), ways: ways}
	for i := range s.sets {
		s.sets[i] = newLRU(ways)
	}
	return s
}

func (s *setAssoc) set(key uint64) *lru { return s.sets[key&uint64(len(s.sets)-1)] }

func (s *setAssoc) get(key uint64) (uint64, bool) { return s.set(key).get(key) }
func (s *setAssoc) put(key, val uint64)           { s.set(key).put(key, val) }
func (s *setAssoc) invalidate(key uint64) bool    { return s.set(key).invalidate(key) }

func (s *setAssoc) len() int {
	n := 0
	for _, set := range s.sets {
		n += set.len()
	}
	return n
}
