package iommu

import (
	"math/rand"
	"reflect"
	"testing"

	"fastsafe/internal/ptable"
)

// Model-based property test: against any interleaving of map, unmap,
// strict/preserving invalidation and translation, the IOMMU must never
// return a *wrong* address. A translation is either (a) correct per the
// live page table, (b) explicitly flagged Stale (a cached entry for an
// unmapped IOVA — the deferred-mode hole, visible to the caller), or
// (c) a fault. Silent mistranslation — returning mapping X's bytes for
// mapping Y — must be impossible.
func TestPropertyNoSilentMistranslation(t *testing.T) {
	const pages = 64
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := New(Config{IOTLBSets: 4, IOTLBWays: 2, L1Size: 2, L2Size: 2, L3Size: 2})
		// Shadow model of the live mappings.
		shadow := map[ptable.IOVA]ptable.Phys{}
		nextPhys := ptable.Phys(1 << 20)

		for op := 0; op < 4000; op++ {
			v := ptable.IOVA(uint64(rng.Intn(pages)) * ptable.PageSize)
			switch rng.Intn(5) {
			case 0: // map
				if _, live := shadow[v]; !live {
					nextPhys += ptable.PageSize
					if err := m.Table().Map(v, nextPhys); err != nil {
						t.Fatalf("seed %d op %d: map: %v", seed, op, err)
					}
					shadow[v] = nextPhys
				}
			case 1: // unmap + strict invalidation
				if _, live := shadow[v]; live {
					if _, err := m.Table().Unmap(v, ptable.PageSize); err != nil {
						t.Fatalf("seed %d op %d: unmap: %v", seed, op, err)
					}
					m.Invalidate(v, 1, false)
					delete(shadow, v)
				}
			case 2: // unmap + IOTLB-only invalidation (F&S) + reclaim hook
				if _, live := shadow[v]; live {
					res, err := m.Table().Unmap(v, ptable.PageSize)
					if err != nil {
						t.Fatalf("seed %d op %d: unmap: %v", seed, op, err)
					}
					m.Invalidate(v, 1, true)
					m.InvalidateReclaimed(res.Reclaimed)
					delete(shadow, v)
				}
			default: // translate and check against the shadow model
				tr := m.Translate(v)
				want, live := shadow[v]
				switch {
				case tr.OK && !tr.Stale:
					if !live {
						t.Fatalf("seed %d op %d: %v translated OK while unmapped (unflagged stale)", seed, op, v)
					}
					if tr.Phys != want {
						t.Fatalf("seed %d op %d: %v -> %#x, want %#x (silent mistranslation)",
							seed, op, v, uint64(tr.Phys), uint64(want))
					}
				case tr.OK && tr.Stale:
					// Stale hits only possible without invalidation; both
					// unmap paths above invalidate the IOTLB entry, so this
					// must never happen here.
					t.Fatalf("seed %d op %d: stale hit despite strict invalidation", seed, op)
				default:
					if live {
						t.Fatalf("seed %d op %d: %v faulted while mapped", seed, op, v)
					}
				}
			}
		}
		if c := m.Counters(); c.StaleIOTLBUses != 0 || c.StalePTUses != 0 {
			t.Fatalf("seed %d: stale-use counters nonzero: %+v", seed, c)
		}
	}
}

// Same property across two domains sharing tiny caches: heavy cross-domain
// eviction pressure must never leak a translation between domains.
func TestPropertyCrossDomainNoLeak(t *testing.T) {
	const pages = 32
	rng := rand.New(rand.NewSource(99))
	m := New(Config{IOTLBSets: 2, IOTLBWays: 2, L1Size: 2, L2Size: 2, L3Size: 2})
	doms := []DomainID{m.CreateDomain(), m.CreateDomain()}
	shadow := map[DomainID]map[ptable.IOVA]ptable.Phys{doms[0]: {}, doms[1]: {}}
	nextPhys := ptable.Phys(1 << 24)

	for op := 0; op < 6000; op++ {
		d := doms[rng.Intn(2)]
		v := ptable.IOVA(uint64(rng.Intn(pages)) * ptable.PageSize)
		switch rng.Intn(4) {
		case 0:
			if _, live := shadow[d][v]; !live {
				nextPhys += ptable.PageSize
				if err := m.TableOf(d).Map(v, nextPhys); err != nil {
					t.Fatal(err)
				}
				shadow[d][v] = nextPhys
			}
		case 1:
			if _, live := shadow[d][v]; live {
				if _, err := m.TableOf(d).Unmap(v, ptable.PageSize); err != nil {
					t.Fatal(err)
				}
				m.InvalidateIn(d, v, 1, false)
				delete(shadow[d], v)
			}
		default:
			tr := m.TranslateIn(d, v)
			want, live := shadow[d][v]
			if tr.OK && !tr.Stale {
				if !live || tr.Phys != want {
					t.Fatalf("op %d: domain %d leaked/mistranslated %v", op, d, v)
				}
			} else if !tr.OK && live {
				t.Fatalf("op %d: domain %d faulted on live mapping %v", op, d, v)
			}
		}
	}
}

// Two device domains interleave map/unmap/translate over the shared
// hardware. Two properties the device layer depends on:
//
//  1. No cross-domain leakage (re-checked here under the F&S unmap path,
//     which TestPropertyCrossDomainNoLeak does not exercise).
//  2. Per-domain attribution is exact: summing CountersOf over Domains
//     reproduces Counters field-for-field. host/results.go derives the
//     per-device breakdown from CountersOf, so drift here would silently
//     misreport device interference.
//
// FlushAll is deliberately absent: a global flush belongs to no single
// domain, so the sum property only holds for the domain-scoped entry
// points (Strict/F&S-style operation — the modes the breakdown targets).
func TestPropertyPerDomainCountersSumToGlobal(t *testing.T) {
	const pages = 32
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := New(Config{IOTLBSets: 2, IOTLBWays: 2, L1Size: 2, L2Size: 2, L3Size: 2})
		doms := []DomainID{m.CreateDomain(), m.CreateDomain()}
		shadow := map[DomainID]map[ptable.IOVA]ptable.Phys{doms[0]: {}, doms[1]: {}}
		nextPhys := ptable.Phys(1 << 28)

		for op := 0; op < 5000; op++ {
			d := doms[rng.Intn(2)]
			v := ptable.IOVA(uint64(rng.Intn(pages)) * ptable.PageSize)
			switch rng.Intn(5) {
			case 0: // map
				if _, live := shadow[d][v]; !live {
					nextPhys += ptable.PageSize
					if err := m.TableOf(d).Map(v, nextPhys); err != nil {
						t.Fatal(err)
					}
					shadow[d][v] = nextPhys
				}
			case 1: // unmap + strict invalidation
				if _, live := shadow[d][v]; live {
					if _, err := m.TableOf(d).Unmap(v, ptable.PageSize); err != nil {
						t.Fatal(err)
					}
					m.InvalidateIn(d, v, 1, false)
					delete(shadow[d], v)
				}
			case 2: // unmap + IOTLB-only invalidation + reclaim hook (F&S)
				if _, live := shadow[d][v]; live {
					res, err := m.TableOf(d).Unmap(v, ptable.PageSize)
					if err != nil {
						t.Fatal(err)
					}
					m.InvalidateIn(d, v, 1, true)
					m.InvalidateReclaimedIn(d, res.Reclaimed)
					delete(shadow[d], v)
				}
			default: // translate, checked against the shadow model
				tr := m.TranslateIn(d, v)
				want, live := shadow[d][v]
				switch {
				case tr.OK && !tr.Stale:
					if !live || tr.Phys != want {
						t.Fatalf("seed %d op %d: domain %d leaked/mistranslated %v", seed, op, d, v)
					}
				case tr.OK && tr.Stale:
					t.Fatalf("seed %d op %d: stale hit despite invalidation", seed, op)
				default:
					if live {
						t.Fatalf("seed %d op %d: domain %d faulted on live mapping %v", seed, op, d, v)
					}
				}
			}
		}

		// The sum property, field-for-field via reflection so a counter
		// added later can't silently escape attribution.
		var sum Counters
		sv := reflect.ValueOf(&sum).Elem()
		for _, d := range m.Domains() {
			dc := reflect.ValueOf(m.CountersOf(d))
			for i := 0; i < sv.NumField(); i++ {
				sv.Field(i).SetInt(sv.Field(i).Int() + dc.Field(i).Int())
			}
		}
		if global := m.Counters(); sum != global {
			t.Fatalf("seed %d: per-domain counters don't sum to global:\n  sum:    %+v\n  global: %+v", seed, sum, global)
		}
		// The untouched default domain must have no charges.
		if c := m.CountersOf(0); c != (Counters{}) {
			t.Fatalf("seed %d: default domain charged without traffic: %+v", seed, c)
		}
	}
}
