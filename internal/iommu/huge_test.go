package iommu

import (
	"testing"

	"fastsafe/internal/ptable"
)

func TestHugeTranslationColdThenHot(t *testing.T) {
	m := New(Config{})
	if err := m.Table().MapHuge(0, 0x40000000); err != nil {
		t.Fatal(err)
	}
	// Cold: PTcache-L1/L2 miss, three reads (the PT-L3 entry is the leaf).
	tr := m.Translate(0x5000)
	if !tr.OK || tr.IOTLBHit {
		t.Fatalf("cold huge translation = %+v", tr)
	}
	if tr.MemReads != 3 {
		t.Fatalf("cold huge MemReads = %d, want 3", tr.MemReads)
	}
	if tr.Phys != 0x40000000+0x5000 {
		t.Fatalf("Phys = %#x", uint64(tr.Phys))
	}
	// Hot: any address in the same 2MB hits the single huge IOTLB entry.
	tr = m.Translate(0x1ff000)
	if !tr.IOTLBHit || tr.MemReads != 0 {
		t.Fatalf("hot huge translation = %+v", tr)
	}
	if tr.Phys != 0x40000000+0x1ff000 {
		t.Fatalf("hot Phys = %#x", uint64(tr.Phys))
	}
}

func TestHugeWalkWithWarmPTCacheL2(t *testing.T) {
	m := New(Config{})
	if err := m.Table().MapHuge(0, 1<<30); err != nil {
		t.Fatal(err)
	}
	if err := m.Table().MapHuge(ptable.IOVA(ptable.HugeSize), 1<<31); err != nil {
		t.Fatal(err)
	}
	m.Translate(0) // warms PTcache-L1/L2
	tr := m.Translate(ptable.IOVA(ptable.HugeSize))
	if tr.MemReads != 1 {
		t.Fatalf("warm huge walk MemReads = %d, want 1 (PTcache-L2 hit)", tr.MemReads)
	}
	// Reads identity holds for huge walks too.
	c := m.Counters()
	if c.MemReads != c.IOTLBMisses+c.L3Misses+c.L2Misses+c.L1Misses {
		t.Fatalf("identity violated: %+v", c)
	}
}

func TestHugeIOTLBReach(t *testing.T) {
	// 512 pages, one IOTLB entry: translating every page costs exactly one
	// IOTLB miss.
	m := New(Config{})
	if err := m.Table().MapHuge(0, 1<<30); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 512; p++ {
		m.Translate(ptable.IOVA(p * ptable.PageSize))
	}
	if c := m.Counters(); c.IOTLBMisses != 1 {
		t.Fatalf("IOTLBMisses = %d, want 1 for a whole hugepage", c.IOTLBMisses)
	}
}

func TestHugeInvalidation(t *testing.T) {
	m := New(Config{})
	if err := m.Table().MapHuge(0, 1<<30); err != nil {
		t.Fatal(err)
	}
	m.Translate(0)
	if err := m.Table().UnmapHuge(0); err != nil {
		t.Fatal(err)
	}
	m.Invalidate(0, 512, true)
	tr := m.Translate(0)
	if tr.OK {
		t.Fatal("huge mapping reachable after unmap+invalidate")
	}
	if m.Counters().StaleIOTLBUses != 0 {
		t.Fatal("stale use after proper invalidation")
	}
}

func TestHugeStaleUseDetected(t *testing.T) {
	// Unmap without invalidation: the huge IOTLB entry is stale.
	m := New(Config{})
	if err := m.Table().MapHuge(0, 1<<30); err != nil {
		t.Fatal(err)
	}
	m.Translate(0)
	if err := m.Table().UnmapHuge(0); err != nil {
		t.Fatal(err)
	}
	tr := m.Translate(0x1000)
	if !tr.OK || !tr.Stale {
		t.Fatalf("translation = %+v, want stale huge hit", tr)
	}
	if m.Counters().StaleIOTLBUses != 1 {
		t.Fatal("stale huge use not counted")
	}
}
