package iommu

import (
	"testing"

	"fastsafe/internal/ptable"
)

func benchIOMMU(b *testing.B, pages int) *IOMMU {
	b.Helper()
	m := New(Config{})
	for i := 0; i < pages; i++ {
		if err := m.Table().Map(ptable.IOVA(uint64(i)*ptable.PageSize), ptable.Phys(i)); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

func BenchmarkTranslateIOTLBHit(b *testing.B) {
	m := benchIOMMU(b, 1)
	m.Translate(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Translate(0)
	}
}

func BenchmarkTranslateWalkPTCacheHit(b *testing.B) {
	m := benchIOMMU(b, 2)
	m.Translate(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Invalidate(ptable.PageSize, 1, true)
		m.Translate(ptable.PageSize)
	}
}

func BenchmarkTranslateColdWalk(b *testing.B) {
	m := benchIOMMU(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Invalidate(0, 2, false)
		m.Translate(0)
	}
}

func BenchmarkInvalidateRange(b *testing.B) {
	m := benchIOMMU(b, 64)
	for i := 0; i < 64; i++ {
		m.Translate(ptable.IOVA(uint64(i) * ptable.PageSize))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Invalidate(0, 64, true)
	}
}
