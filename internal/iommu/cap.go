package iommu

import (
	"fastsafe/internal/ptable"
)

// CapTable is a per-domain capability table in the CAPIO style: the
// driver grants the device a capability per page at map time, and every
// DMA is validated against the table in O(1) — no IOTLB, no page-table
// walk, no memory reads on the guarded path. Revocation is a table
// update, not an invalidation-queue round trip, which is the family's
// whole bargain: per-page grant/revoke cost in exchange for never
// paying shootdown latency.
//
// The table is the device's *only* translation source once attached:
// the IOMMU short-circuits the walk pipeline for capability domains, so
// safety reduces to "is the grant current", which the fault auditor
// cross-checks against the live page table.
type CapTable struct {
	m      *IOMMU
	dom    DomainID
	grants map[uint64]ptable.Phys // IOVA page number -> granted frame
}

// AttachCapTable registers (or returns) domain d's capability table and
// routes d's translations through it. Counters reset does not clear the
// grants — capabilities are driver state, not cache state.
func (m *IOMMU) AttachCapTable(d DomainID) *CapTable {
	if m.capTables == nil {
		m.capTables = make(map[DomainID]*CapTable)
	}
	ct, ok := m.capTables[d]
	if !ok {
		ct = &CapTable{m: m, dom: d, grants: make(map[uint64]ptable.Phys)}
		m.capTables[d] = ct
	}
	return ct
}

// CapTableOf returns domain d's capability table, nil when the domain
// does not use capability protection.
func (m *IOMMU) CapTableOf(d DomainID) *CapTable { return m.capTables[d] }

// Grant installs (or overwrites) the capability for v. An overwrite
// counts as a revocation of the previous grant — the re-grant path that
// replaces ATC shootdown on window remaps.
func (ct *CapTable) Grant(v ptable.IOVA, p ptable.Phys) (replaced bool) {
	pn := v.PageNumber()
	if _, ok := ct.grants[pn]; ok {
		replaced = true
		ct.m.c.CapRevocations++
		ct.m.domCounters(ct.dom).CapRevocations++
	}
	ct.grants[pn] = p
	return replaced
}

// Revoke kills the capability for v. Reports whether a grant existed.
func (ct *CapTable) Revoke(v ptable.IOVA) bool {
	pn := v.PageNumber()
	if _, ok := ct.grants[pn]; !ok {
		return false
	}
	delete(ct.grants, pn)
	ct.m.c.CapRevocations++
	ct.m.domCounters(ct.dom).CapRevocations++
	return true
}

// Granted reports whether v currently holds a capability.
func (ct *CapTable) Granted(v ptable.IOVA) bool {
	_, ok := ct.grants[v.PageNumber()]
	return ok
}

// Len reports the number of live grants.
func (ct *CapTable) Len() int { return len(ct.grants) }

// check validates one DMA transaction against the table. O(1), zero
// memory reads: the table stands in for dedicated capability hardware
// beside the translation agent. A miss is a blocked DMA (the analogue
// of a remapping fault).
func (ct *CapTable) check(v ptable.IOVA) Translation {
	ct.m.c.Translations++
	ct.m.c.CapChecks++
	p, ok := ct.grants[v.PageNumber()]
	if !ok {
		ct.m.c.CapDenied++
		ct.m.c.Faults++
		return Translation{Cap: true}
	}
	// Like the walk path, the result is the page frame (Lookup aligns
	// down): the auditor compares frames, not byte addresses.
	return Translation{Phys: p, OK: true, Cap: true}
}
