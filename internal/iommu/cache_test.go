package iommu

import (
	"testing"
	"testing/quick"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU(2)
	c.put(1, 10)
	c.put(2, 20)
	if v, ok := c.get(1); !ok || v != 10 {
		t.Fatalf("get(1) = %d,%v", v, ok)
	}
	// 2 is now LRU; inserting 3 evicts it.
	c.put(3, 30)
	if _, ok := c.get(2); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.get(3); !ok {
		t.Fatal("new entry missing")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(2)
	c.put(1, 10)
	c.put(1, 11)
	if v, _ := c.get(1); v != 11 {
		t.Fatalf("value not updated: %d", v)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestLRUInvalidate(t *testing.T) {
	c := newLRU(4)
	c.put(1, 10)
	if !c.invalidate(1) {
		t.Fatal("invalidate of present key returned false")
	}
	if c.invalidate(1) {
		t.Fatal("invalidate of absent key returned true")
	}
	if _, ok := c.get(1); ok {
		t.Fatal("invalidated key still present")
	}
}

func TestLRUInvalidateMiddleAndTail(t *testing.T) {
	c := newLRU(4)
	for k := uint64(1); k <= 4; k++ {
		c.put(k, k)
	}
	c.invalidate(2) // middle
	c.invalidate(1) // tail (LRU)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	c.put(5, 5)
	c.put(6, 6)
	// 3 was LRU among survivors; adding two entries must evict nothing
	// until capacity, then 3 first.
	c.put(7, 7)
	if _, ok := c.get(3); ok {
		t.Fatal("expected 3 evicted first")
	}
}

func TestLRUCapacityOne(t *testing.T) {
	c := newLRU(1)
	c.put(1, 1)
	c.put(2, 2)
	if _, ok := c.get(1); ok {
		t.Fatal("capacity-1 cache kept two entries")
	}
	if v, ok := c.get(2); !ok || v != 2 {
		t.Fatal("latest entry missing")
	}
}

func TestLRUZeroCapacityClamped(t *testing.T) {
	c := newLRU(0)
	c.put(1, 1)
	if _, ok := c.get(1); !ok {
		t.Fatal("clamped capacity should hold one entry")
	}
}

// Property: an LRU of capacity k, fed any access stream, never exceeds k
// entries and always contains the k most recently used distinct keys.
func TestPropertyLRUContents(t *testing.T) {
	const k = 4
	f := func(stream []uint8) bool {
		c := newLRU(k)
		var recent []uint64 // distinct keys, most recent first
		touch := func(key uint64) {
			for i, r := range recent {
				if r == key {
					recent = append(recent[:i], recent[i+1:]...)
					break
				}
			}
			recent = append([]uint64{key}, recent...)
		}
		for _, b := range stream {
			key := uint64(b % 10)
			if b%2 == 0 {
				c.put(key, key)
				touch(key)
			} else if _, ok := c.get(key); ok {
				touch(key)
			}
			if c.len() > k {
				return false
			}
		}
		// The min(k, len(recent)) most recent put/get-hit keys must be in
		// the cache.
		n := k
		if len(recent) < n {
			n = len(recent)
		}
		for _, key := range recent[:n] {
			if _, ok := c.get(key); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAssocDistributesSets(t *testing.T) {
	s := newSetAssoc(4, 1)
	// Keys 0..3 land in distinct sets: no evictions despite ways=1.
	for k := uint64(0); k < 4; k++ {
		s.put(k, k)
	}
	for k := uint64(0); k < 4; k++ {
		if _, ok := s.get(k); !ok {
			t.Fatalf("key %d missing (should be in its own set)", k)
		}
	}
}

func TestSetAssocConflictMiss(t *testing.T) {
	s := newSetAssoc(4, 1)
	// Keys 0 and 4 share set 0 with 1 way: second insert evicts first.
	s.put(0, 0)
	s.put(4, 4)
	if _, ok := s.get(0); ok {
		t.Fatal("conflicting key survived in 1-way set")
	}
	if _, ok := s.get(4); !ok {
		t.Fatal("newest key missing")
	}
}

func TestSetAssocRoundsToPowerOfTwo(t *testing.T) {
	s := newSetAssoc(5, 2) // rounds to 8 sets
	if len(s.sets) != 8 {
		t.Fatalf("sets = %d, want 8", len(s.sets))
	}
}

func TestSetAssocInvalidateAndLen(t *testing.T) {
	s := newSetAssoc(4, 2)
	s.put(1, 1)
	s.put(2, 2)
	if s.len() != 2 {
		t.Fatalf("len = %d, want 2", s.len())
	}
	if !s.invalidate(1) {
		t.Fatal("invalidate failed")
	}
	if s.len() != 1 {
		t.Fatalf("len = %d, want 1", s.len())
	}
}
