package iommu

import (
	"fastsafe/internal/ptable"
)

// Config sizes the IOMMU caches. Zero fields take defaults.
//
// Intel does not publish the IO page-table cache sizes; the paper's
// footnote 3 estimates 64–128 entries for PTcache-L3 from measurements,
// and §4.1's working-set arithmetic assumes 32 entries for PTcache-L1/L2.
// The defaults here (L1/L2 = 32, L3 = 32) are calibrated so the simulated
// Linux-strict miss rates land on the paper's measured values.
type Config struct {
	IOTLBSets int // number of IOTLB sets (default 16)
	IOTLBWays int // associativity (default 4; 16x4 = 64 entries)
	L1Size    int // PTcache-L1 entries (default 32)
	L2Size    int // PTcache-L2 entries (default 32)
	L3Size    int // PTcache-L3 entries (default 32)
}

func (c Config) withDefaults() Config {
	if c.IOTLBSets == 0 {
		c.IOTLBSets = 16
	}
	if c.IOTLBWays == 0 {
		c.IOTLBWays = 4
	}
	if c.L1Size == 0 {
		c.L1Size = 32
	}
	if c.L2Size == 0 {
		c.L2Size = 32
	}
	if c.L3Size == 0 {
		c.L3Size = 32
	}
	return c
}

// Counters is the simulator's analogue of the PCM counters the paper
// samples. Miss counters follow the paper's accounting (§2.2): L3Misses
// counts walks where PTcache-L3 missed; L2Misses counts walks where both
// PTcache-L2 and L3 missed; L1Misses counts walks where all three levels
// missed. MemReads is then IOTLBMisses + L3Misses + L2Misses + L1Misses.
type Counters struct {
	Translations int64
	IOTLBHits    int64
	IOTLBMisses  int64
	Walks        int64
	MemReads     int64
	L3Misses     int64
	L2Misses     int64
	L1Misses     int64
	Faults       int64 // translation failed: no mapping and no cached entry

	// Safety accounting. StaleIOTLBUses counts translations served from an
	// IOTLB entry whose mapping has been unmapped (possible only in
	// deferred-style modes). StalePTUses counts walks that consulted a
	// PTcache entry pointing to a reclaimed page-table page (must be zero
	// in every mode — F&S invalidates on reclamation precisely for this).
	StaleIOTLBUses int64
	StalePTUses    int64

	InvRequests      int64 // invalidation-queue requests submitted
	IOTLBInvalidated int64 // IOTLB entries actually removed
	PTInvalidated    int64 // PTcache entries actually removed

	// PCIe ATS accounting. ATSRequests counts translation requests the
	// device's ATC sent to the IOMMU's translation agent (one per ATC
	// miss). ATCInvRequests counts ATC-invalidate messages on the
	// invalidation queue (a distinct message class from IOTLB/PTcache
	// invalidations); ATCInvalidated counts the device-TLB entries they
	// removed. All three stay zero when no device has an ATC.
	ATSRequests    int64
	ATCInvRequests int64
	ATCInvalidated int64

	// Capability-family accounting. CapChecks counts DMA validations
	// against a per-domain capability table (each replaces an IOTLB
	// lookup + walk); CapRevocations counts grants killed — by explicit
	// revoke or by an overwriting re-grant; CapDenied counts DMAs
	// blocked because no capability covered the address. All three stay
	// zero outside the cap/cap-lazyrevoke modes.
	CapChecks      int64
	CapRevocations int64
	CapDenied      int64
}

// Translation is the outcome of translating one PCIe transaction's IOVA.
type Translation struct {
	Phys     ptable.Phys
	OK       bool // translation produced an address
	IOTLBHit bool
	MemReads int  // page-table reads performed (0 on IOTLB hit)
	Stale    bool // served by a stale IOTLB entry (safety violation)
	ATC      bool // served by a device-side ATS translation cache
	Cap      bool // validated against a capability table, not a walk
}

// DomainID names one protection domain: one device's IOVA space and IO
// page table. All domains share the IOMMU's caches and walkers — entries
// are tagged by domain, exactly as VT-d tags IOTLB/PTcache entries with
// the domain identifier — so devices contend for capacity but can never
// use each other's translations.
type DomainID uint32

// IOMMU couples the shared translation caches with per-domain IO page
// tables.
type IOMMU struct {
	cfg     Config
	tables  map[DomainID]*ptable.Table
	nextDom DomainID
	iotlb   *setAssoc
	l1      *lru // (domain, L1Key) -> PT-L2 page id
	l2      *lru // (domain, L2Key) -> PT-L3 page id
	l3      *lru // (domain, L3Key) -> PT-L4 page id
	c       Counters
	// perDom shadows c per originating domain, the breakdown the
	// device layer reports. Every counter increment lands in both, so
	// summing CountersOf over Domains always reproduces Counters.
	perDom map[DomainID]*Counters
	// capTables routes capability domains' translations: when a domain
	// has one, its DMAs validate against it and never touch the caches
	// or walkers. Grants are driver state — ResetCounters keeps them.
	capTables map[DomainID]*CapTable
	// audit, when set, observes every completed translation after the
	// counters are charged. The hook must not mutate IOMMU or table
	// state — it is a ground-truth check, not part of the pipeline.
	audit func(DomainID, ptable.IOVA, Translation)
}

// SetAuditHook installs fn to observe every TranslateIn result (nil
// uninstalls). The fault layer's safety auditor uses this to cross-check
// translations against the live page table.
func (m *IOMMU) SetAuditHook(fn func(DomainID, ptable.IOVA, Translation)) {
	m.audit = fn
}

// New returns an IOMMU with a single default domain (id 0).
func New(cfg Config) *IOMMU {
	cfg = cfg.withDefaults()
	m := &IOMMU{
		cfg:    cfg,
		tables: map[DomainID]*ptable.Table{0: ptable.New()},
		iotlb:  newSetAssoc(cfg.IOTLBSets, cfg.IOTLBWays),
		l1:     newLRU(cfg.L1Size),
		l2:     newLRU(cfg.L2Size),
		l3:     newLRU(cfg.L3Size),
	}
	m.nextDom = 1
	return m
}

// CreateDomain allocates a fresh protection domain with its own IO page
// table (one per device, as the kernel does for non-virtualised hosts).
func (m *IOMMU) CreateDomain() DomainID {
	id := m.nextDom
	m.nextDom++
	m.tables[id] = ptable.New()
	return id
}

// TableOf exposes a domain's IO page table.
func (m *IOMMU) TableOf(d DomainID) *ptable.Table { return m.tables[d] }

// Table exposes the default domain's page table.
func (m *IOMMU) Table() *ptable.Table { return m.tables[0] }

// domKey namespaces a cache key by domain: every key fits in 44 bits
// (page numbers are at most 2^36), leaving the domain tag and the
// huge-entry bit disjoint.
func domKey(d DomainID, key uint64) uint64 { return uint64(d)<<44 | key }

// Counters returns a snapshot of the hardware counters.
func (m *IOMMU) Counters() Counters { return m.c }

// CountersOf returns the slice of the hardware counters attributable to
// domain d: the translations, walks, reads, invalidations and safety
// events d's device caused. Summing CountersOf over Domains reproduces
// Counters exactly (the device layer's per-device breakdown relies on
// this; internal/iommu's property tests enforce it).
func (m *IOMMU) CountersOf(d DomainID) Counters {
	if c, ok := m.perDom[d]; ok {
		return *c
	}
	return Counters{}
}

// Domains lists the existing domain ids in ascending order (domain 0,
// the default, is always present).
func (m *IOMMU) Domains() []DomainID {
	out := make([]DomainID, 0, len(m.tables))
	for d := DomainID(0); d < m.nextDom; d++ {
		if _, ok := m.tables[d]; ok {
			out = append(out, d)
		}
	}
	return out
}

// ResetCounters zeroes the counters (e.g. after warmup).
func (m *IOMMU) ResetCounters() {
	m.c = Counters{}
	m.perDom = nil
}

// domCounters returns domain d's counter slab, creating it on first use.
func (m *IOMMU) domCounters(d DomainID) *Counters {
	if m.perDom == nil {
		m.perDom = make(map[DomainID]*Counters)
	}
	c, ok := m.perDom[d]
	if !ok {
		c = &Counters{}
		m.perDom[d] = c
	}
	return c
}

// chargeDomain attributes every global-counter increment since before to
// domain d. Wrapping each domain-scoped operation this way keeps the
// per-domain breakdown exactly consistent with the global counters
// without duplicating the counting sites.
func (m *IOMMU) chargeDomain(d DomainID, before Counters) {
	dc := m.domCounters(d)
	after := m.c
	dc.Translations += after.Translations - before.Translations
	dc.IOTLBHits += after.IOTLBHits - before.IOTLBHits
	dc.IOTLBMisses += after.IOTLBMisses - before.IOTLBMisses
	dc.Walks += after.Walks - before.Walks
	dc.MemReads += after.MemReads - before.MemReads
	dc.L3Misses += after.L3Misses - before.L3Misses
	dc.L2Misses += after.L2Misses - before.L2Misses
	dc.L1Misses += after.L1Misses - before.L1Misses
	dc.Faults += after.Faults - before.Faults
	dc.StaleIOTLBUses += after.StaleIOTLBUses - before.StaleIOTLBUses
	dc.StalePTUses += after.StalePTUses - before.StalePTUses
	dc.InvRequests += after.InvRequests - before.InvRequests
	dc.IOTLBInvalidated += after.IOTLBInvalidated - before.IOTLBInvalidated
	dc.PTInvalidated += after.PTInvalidated - before.PTInvalidated
	dc.ATSRequests += after.ATSRequests - before.ATSRequests
	dc.ATCInvRequests += after.ATCInvRequests - before.ATCInvRequests
	dc.ATCInvalidated += after.ATCInvalidated - before.ATCInvalidated
	dc.CapChecks += after.CapChecks - before.CapChecks
	dc.CapDenied += after.CapDenied - before.CapDenied
	// CapRevocations is charged directly at the grant/revoke sites (they
	// are driver-initiated, not translation-pipeline events).
}

// ChargeATSRequest accounts one ATS translation request from domain d's
// device (the ATC-miss round trip to the translation agent). The request
// itself is charged here; the walk it triggers is charged by TranslateIn
// as usual.
func (m *IOMMU) ChargeATSRequest(d DomainID) {
	m.c.ATSRequests++
	m.domCounters(d).ATSRequests++
}

// ChargeATCInvalidation accounts one ATC-invalidate message sent to
// domain d's device, which removed `dropped` device-TLB entries.
func (m *IOMMU) ChargeATCInvalidation(d DomainID, dropped int64) {
	m.c.ATCInvRequests++
	m.c.ATCInvalidated += dropped
	dc := m.domCounters(d)
	dc.ATCInvRequests++
	dc.ATCInvalidated += dropped
}

// iotlbVal packs a physical page frame into the cache value. The low bit
// flags nothing; staleness is detected against the live table.
func iotlbVal(p ptable.Phys) uint64 { return uint64(p) }

// hugeTag distinguishes 2MB-entry IOTLB keys from 4KB-entry keys: real
// IOTLBs tag entries with their page size and look both up associatively.
const hugeTag = uint64(1) << 63

func hugeKey(v ptable.IOVA) uint64 { return v.L3Key() | hugeTag }

// Translate performs the address translation in the default domain.
func (m *IOMMU) Translate(v ptable.IOVA) Translation { return m.TranslateIn(0, v) }

// TranslateIn performs the address translation for one PCIe transaction
// from domain d targeting v, updating caches and counters exactly as the
// hardware pipeline in §2.1 step 3: IOTLB lookup, then a page-table walk
// that first probes the three page-table caches (in parallel) and starts
// the walk at the deepest level that hits.
func (m *IOMMU) TranslateIn(d DomainID, v ptable.IOVA) Translation {
	before := m.c
	t := m.translateIn(d, v)
	m.chargeDomain(d, before)
	if m.audit != nil {
		m.audit(d, v, t)
	}
	return t
}

func (m *IOMMU) translateIn(d DomainID, v ptable.IOVA) Translation {
	// Capability domains bypass the walk pipeline entirely: one O(1)
	// table check, no cache state, no memory reads.
	if ct := m.capTables[d]; ct != nil {
		return ct.check(v)
	}
	table := m.tables[d]
	m.c.Translations++
	pn := domKey(d, v.PageNumber())
	if val, ok := m.iotlb.get(pn); ok {
		m.c.IOTLBHits++
		t := Translation{Phys: ptable.Phys(val), OK: true, IOTLBHit: true}
		// A hit for an unmapped IOVA means the device retained access
		// after unmap — the deferred-mode safety hole.
		if !table.Mapped(v) {
			m.c.StaleIOTLBUses++
			t.Stale = true
		}
		return t
	}
	if val, ok := m.iotlb.get(domKey(d, hugeKey(v))); ok {
		// A 2MB IOTLB entry covers this address.
		m.c.IOTLBHits++
		phys := ptable.Phys(val + uint64(v)%ptable.HugeSize)
		t := Translation{Phys: phys, OK: true, IOTLBHit: true}
		if !table.HugeMapped(v) {
			m.c.StaleIOTLBUses++
			t.Stale = true
		}
		return t
	}
	m.c.IOTLBMisses++
	m.c.Walks++

	// Huge-leaf walk: the PT-L3 entry is the leaf, so PTcache-L3 is not
	// involved — best case (PTcache-L2 hit) is one read of the leaf.
	if w, huge, ok := table.LookupHugeAware(v); ok && huge {
		_, l2hit := m.l2.get(domKey(d, v.L2Key()))
		_, l1hit := m.l1.get(domKey(d, v.L1Key()))
		reads := 0
		switch {
		case l2hit:
			reads = 1
		case l1hit:
			reads = 2
			m.c.L2Misses++
		default:
			reads = 3
			m.c.L2Misses++
			m.c.L1Misses++
		}
		m.c.MemReads += int64(reads)
		m.l1.put(domKey(d, v.L1Key()), w.PageID[1])
		m.l2.put(domKey(d, v.L2Key()), w.PageID[2])
		m.iotlb.put(domKey(d, hugeKey(v)), uint64(w.Phys)-uint64(v)%ptable.HugeSize)
		return Translation{Phys: w.Phys, OK: true, MemReads: reads}
	}

	// Probe the page-table caches. Hardware probes all three in parallel;
	// the deepest hit determines how many page-table reads remain.
	l3id, l3hit := m.l3.get(domKey(d, v.L3Key()))
	l2id, l2hit := m.l2.get(domKey(d, v.L2Key()))
	l1id, l1hit := m.l1.get(domKey(d, v.L1Key()))

	reads := 0
	switch {
	case l3hit:
		reads = 1 // read the PT-L4 entry only
	case l2hit:
		reads = 2 // PT-L4 page address from PT-L3, then PT-L4
		m.c.L3Misses++
	case l1hit:
		reads = 3
		m.c.L3Misses++
		m.c.L2Misses++
	default:
		reads = 4
		m.c.L3Misses++
		m.c.L2Misses++
		m.c.L1Misses++
	}
	// Per the paper's accounting (§2.2), an upper-level miss is only
	// counted when every deeper level also missed — the switch above
	// already encodes that.
	m.c.MemReads += int64(reads)

	w, mapped := table.Lookup(v)
	if !mapped {
		// Hardware would take a DMA remapping fault. If a stale PTcache
		// entry was consulted, account the unsafe read of freed memory.
		m.checkStalePT(table, v, l3hit, l3id, l2hit, l2id, l1hit, l1id, ptable.Walk{})
		m.c.Faults++
		return Translation{OK: false, MemReads: reads}
	}
	m.checkStalePT(table, v, l3hit, l3id, l2hit, l2id, l1hit, l1id, w)

	// Fill caches with the walk results.
	m.l1.put(domKey(d, v.L1Key()), w.PageID[1])
	m.l2.put(domKey(d, v.L2Key()), w.PageID[2])
	m.l3.put(domKey(d, v.L3Key()), w.PageID[3])
	m.iotlb.put(pn, iotlbVal(w.Phys))
	return Translation{Phys: w.Phys, OK: true, MemReads: reads}
}

// checkStalePT detects PTcache entries that point to page-table pages no
// longer on v's translation path (reclaimed or replaced). Any such use is
// a memory-safety violation in real hardware; every protection mode in
// this repository must keep this counter at zero.
func (m *IOMMU) checkStalePT(table *ptable.Table, v ptable.IOVA, l3hit bool, l3id uint64, l2hit bool, l2id uint64, l1hit bool, l1id uint64, w ptable.Walk) {
	ids := w.PageID
	if ids == (ptable.Walk{}).PageID {
		ids = table.PageIDs(v)
	}
	if l1hit && l1id != ids[1] {
		m.c.StalePTUses++
	}
	if l2hit && l2id != ids[2] {
		m.c.StalePTUses++
	}
	if l3hit && l3id != ids[3] {
		m.c.StalePTUses++
	}
}

// Invalidate services one invalidation-queue request covering
// [base, base+pages*4KB): the IOTLB entries in the range are always
// dropped; unless iotlbOnly is set, the PTcache-L1/L2/L3 entries whose
// spans overlap the range are dropped too — this is exactly Linux's
// behaviour on IOVA unmap, and the iotlbOnly flag is the invalidation-
// queue option F&S sets to preserve the page-table caches (§3).
func (m *IOMMU) Invalidate(base ptable.IOVA, pages int, iotlbOnly bool) {
	m.InvalidateIn(0, base, pages, iotlbOnly)
}

// InvalidateIn is Invalidate scoped to domain d: only d's cache entries
// are affected (VT-d invalidations carry the domain id).
func (m *IOMMU) InvalidateIn(d DomainID, base ptable.IOVA, pages int, iotlbOnly bool) {
	before := m.c
	defer func() { m.chargeDomain(d, before) }()
	m.c.InvRequests++
	for i := 0; i < pages; i++ {
		v := base + ptable.IOVA(i*ptable.PageSize)
		if m.iotlb.invalidate(domKey(d, v.PageNumber())) {
			m.c.IOTLBInvalidated++
		}
		// Also drop any 2MB entry covering this address (once per span:
		// at the range start and at each 2MB boundary).
		if i == 0 || v.L4Index() == 0 {
			if m.iotlb.invalidate(domKey(d, hugeKey(v))) {
				m.c.IOTLBInvalidated++
			}
		}
		if iotlbOnly {
			continue
		}
		if m.l3.invalidate(domKey(d, v.L3Key())) {
			m.c.PTInvalidated++
		}
		if m.l2.invalidate(domKey(d, v.L2Key())) {
			m.c.PTInvalidated++
		}
		if m.l1.invalidate(domKey(d, v.L1Key())) {
			m.c.PTInvalidated++
		}
	}
}

// InvalidateReclaimed drops the PTcache entries that point at reclaimed
// page-table pages. F&S calls this when (and only when) an unmap operation
// reclaims pages, keeping stale-entry use impossible while preserving the
// caches in the common case.
func (m *IOMMU) InvalidateReclaimed(reclaimed []ptable.ReclaimedPage) {
	m.InvalidateReclaimedIn(0, reclaimed)
}

// InvalidateReclaimedIn drops domain d's PTcache entries pointing at
// reclaimed page-table pages.
func (m *IOMMU) InvalidateReclaimedIn(d DomainID, reclaimed []ptable.ReclaimedPage) {
	before := m.c
	defer func() { m.chargeDomain(d, before) }()
	for _, r := range reclaimed {
		switch r.Level {
		case 4: // a PT-L4 page is pointed to by a PTcache-L3 entry
			if m.l3.invalidate(domKey(d, r.Key)) {
				m.c.PTInvalidated++
			}
		case 3:
			if m.l2.invalidate(domKey(d, r.Key)) {
				m.c.PTInvalidated++
			}
		case 2:
			if m.l1.invalidate(domKey(d, r.Key)) {
				m.c.PTInvalidated++
			}
		}
	}
}

// FlushAll empties every cache (global invalidation, used at domain
// teardown and by tests).
func (m *IOMMU) FlushAll() {
	cfg := m.cfg
	m.iotlb = newSetAssoc(cfg.IOTLBSets, cfg.IOTLBWays)
	m.l1 = newLRU(cfg.L1Size)
	m.l2 = newLRU(cfg.L2Size)
	m.l3 = newLRU(cfg.L3Size)
}

// CacheOccupancy reports live entries per cache: IOTLB, L1, L2, L3.
func (m *IOMMU) CacheOccupancy() (int, int, int, int) {
	return m.iotlb.len(), m.l1.len(), m.l2.len(), m.l3.len()
}
