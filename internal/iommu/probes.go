package iommu

import (
	"fastsafe/internal/stats"
)

// registerCounterProbes installs function-backed gauges over one Counters
// view (global or per-domain). The closures read live state on every
// sample, so the registry always reports current values without copying.
func registerCounterProbes(r *stats.Registry, prefix string, src func() Counters) {
	probe := func(name string, fn func(Counters) int64) {
		r.GaugeFunc(prefix+name, func() float64 { return float64(fn(src())) })
	}
	probe("translations", func(c Counters) int64 { return c.Translations })
	probe("iotlb_hits", func(c Counters) int64 { return c.IOTLBHits })
	probe("iotlb_misses", func(c Counters) int64 { return c.IOTLBMisses })
	probe("walks", func(c Counters) int64 { return c.Walks })
	probe("mem_reads", func(c Counters) int64 { return c.MemReads })
	probe("l3_misses", func(c Counters) int64 { return c.L3Misses })
	probe("l2_misses", func(c Counters) int64 { return c.L2Misses })
	probe("l1_misses", func(c Counters) int64 { return c.L1Misses })
	probe("faults", func(c Counters) int64 { return c.Faults })
	probe("stale_iotlb_uses", func(c Counters) int64 { return c.StaleIOTLBUses })
	probe("stale_pt_uses", func(c Counters) int64 { return c.StalePTUses })
	probe("inv_requests", func(c Counters) int64 { return c.InvRequests })
	probe("iotlb_invalidated", func(c Counters) int64 { return c.IOTLBInvalidated })
	probe("pt_invalidated", func(c Counters) int64 { return c.PTInvalidated })
	probe("ats_requests", func(c Counters) int64 { return c.ATSRequests })
	probe("atc_inv_requests", func(c Counters) int64 { return c.ATCInvRequests })
	probe("atc_invalidated", func(c Counters) int64 { return c.ATCInvalidated })
}

// RegisterProbes exposes the shared IOMMU's hardware counters and cache
// occupancies through the registry under prefix (e.g. "iommu."). All
// probes are read-only views over live state.
func (m *IOMMU) RegisterProbes(r *stats.Registry, prefix string) {
	registerCounterProbes(r, prefix, m.Counters)
	r.GaugeFunc(prefix+"iotlb_occupancy", func() float64 {
		n, _, _, _ := m.CacheOccupancy()
		return float64(n)
	})
	r.GaugeFunc(prefix+"l1_occupancy", func() float64 {
		_, n, _, _ := m.CacheOccupancy()
		return float64(n)
	})
	r.GaugeFunc(prefix+"l2_occupancy", func() float64 {
		_, _, n, _ := m.CacheOccupancy()
		return float64(n)
	})
	r.GaugeFunc(prefix+"l3_occupancy", func() float64 {
		_, _, _, n := m.CacheOccupancy()
		return float64(n)
	})
}

// RegisterDomainProbes exposes the counter slice attributable to one
// protection domain — the per-device breakdown from the shared caches.
func (m *IOMMU) RegisterDomainProbes(r *stats.Registry, prefix string, d DomainID) {
	registerCounterProbes(r, prefix, func() Counters { return m.CountersOf(d) })
}
