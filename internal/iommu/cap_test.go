package iommu

import (
	"testing"

	"fastsafe/internal/ptable"
)

func TestCapTableGrantCheckRevoke(t *testing.T) {
	m := New(Config{})
	ct := m.AttachCapTable(0)
	if m.AttachCapTable(0) != ct {
		t.Fatal("re-attach returned a different table")
	}
	if m.CapTableOf(0) != ct {
		t.Fatal("CapTableOf does not resolve the attached table")
	}
	v, p := ptable.IOVA(ptable.PageSize), ptable.Phys(0x200000)
	if ct.Grant(v, p) {
		t.Fatal("fresh grant reported an overwrite")
	}
	if !ct.Granted(v) || ct.Len() != 1 {
		t.Fatalf("grant not installed: granted=%v len=%d", ct.Granted(v), ct.Len())
	}
	tr := m.TranslateIn(0, v)
	if !tr.OK || !tr.Cap || tr.Phys != p {
		t.Fatalf("capability check = %+v, want grant for %v", tr, p)
	}
	if tr.MemReads != 0 {
		t.Fatalf("capability check read memory: %+v", tr)
	}
	// In-page offsets validate against the same page-granular grant and
	// resolve to the page frame, the walk path's convention.
	if tr := m.TranslateIn(0, v+57); !tr.OK || tr.Phys != p {
		t.Fatalf("offset check = %+v", tr)
	}
	if !ct.Revoke(v) {
		t.Fatal("revoke of a live grant reported no-op")
	}
	if ct.Revoke(v) {
		t.Fatal("double revoke reported a kill")
	}
	if tr := m.TranslateIn(0, v); tr.OK || !tr.Cap {
		t.Fatalf("revoked check = %+v, want blocked capability miss", tr)
	}
	c := m.Counters()
	if c.CapChecks != 3 || c.CapDenied != 1 || c.CapRevocations != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Faults != 1 {
		t.Fatalf("denied DMA not counted as a fault: %+v", c)
	}
}

func TestCapGrantOverwriteCountsRevocation(t *testing.T) {
	m := New(Config{})
	ct := m.AttachCapTable(0)
	v := ptable.IOVA(0)
	ct.Grant(v, 0x1000)
	if !ct.Grant(v, 0x2000) {
		t.Fatal("overwrite not reported")
	}
	if got := m.Counters().CapRevocations; got != 1 {
		t.Fatalf("CapRevocations = %d, want 1 (the re-grant killed the old grant)", got)
	}
	if tr := m.TranslateIn(0, v); tr.Phys != 0x2000 {
		t.Fatalf("check served %+v, want the new grant", tr)
	}
}

func TestCapCountersChargePerDomain(t *testing.T) {
	m := New(Config{})
	d1 := m.CreateDomain()
	ct0, ct1 := m.AttachCapTable(0), m.AttachCapTable(d1)
	ct0.Grant(0, 0x1000)
	ct1.Grant(0, 0x2000)
	m.TranslateIn(0, 0)
	m.TranslateIn(d1, 0)
	m.TranslateIn(d1, ptable.IOVA(ptable.PageSize)) // denied: no grant
	ct1.Revoke(0)
	c0, c1 := m.CountersOf(0), m.CountersOf(d1)
	if c0.CapChecks != 1 || c0.CapDenied != 0 || c0.CapRevocations != 0 {
		t.Fatalf("domain 0 counters = %+v", c0)
	}
	if c1.CapChecks != 2 || c1.CapDenied != 1 || c1.CapRevocations != 1 {
		t.Fatalf("domain %d counters = %+v", d1, c1)
	}
	if g := m.Counters(); g.CapChecks != 3 || g.CapDenied != 1 || g.CapRevocations != 1 {
		t.Fatalf("global counters = %+v", g)
	}
}

func TestCapTableSurvivesCounterReset(t *testing.T) {
	m := New(Config{})
	ct := m.AttachCapTable(0)
	ct.Grant(0, 0x1000)
	m.TranslateIn(0, 0)
	m.ResetCounters()
	if got := m.Counters().CapChecks; got != 0 {
		t.Fatalf("CapChecks after reset = %d", got)
	}
	if !ct.Granted(0) {
		t.Fatal("reset cleared the grants — capabilities are driver state, not cache state")
	}
	if tr := m.TranslateIn(0, 0); !tr.OK {
		t.Fatalf("post-reset check = %+v", tr)
	}
}

// TestCapDomainSkipsWalkPipeline: attaching a capability table must
// short-circuit the whole walk pipeline — no IOTLB fills, no PTcache
// traffic, no memory reads — even when the same IOVA is mapped in the
// domain's page table; a sibling domain without a table still walks.
func TestCapDomainSkipsWalkPipeline(t *testing.T) {
	m := newMapped(t, Config{}, 1)
	d1 := m.CreateDomain()
	ct := m.AttachCapTable(0)
	ct.Grant(0, 0x999000)
	if err := m.TableOf(d1).Map(0, 0x100000); err != nil {
		t.Fatal(err)
	}
	tr := m.TranslateIn(0, 0)
	if !tr.OK || !tr.Cap || tr.Phys != 0x999000 {
		t.Fatalf("cap domain translation = %+v, want the grant (not the table mapping)", tr)
	}
	c := m.Counters()
	if c.IOTLBMisses != 0 || c.IOTLBHits != 0 || c.MemReads != 0 {
		t.Fatalf("cap check entered the walk pipeline: %+v", c)
	}
	if tr := m.TranslateIn(d1, 0); !tr.OK || tr.Cap {
		t.Fatalf("walk-domain translation = %+v, want a plain walk", tr)
	}
	if m.Counters().MemReads == 0 {
		t.Fatal("sibling walk domain read no memory")
	}
}
