package iommu

import (
	"testing"

	"fastsafe/internal/ptable"
)

func newMapped(t *testing.T, cfg Config, pages int) *IOMMU {
	t.Helper()
	m := New(cfg)
	for i := 0; i < pages; i++ {
		v := ptable.IOVA(uint64(i) * ptable.PageSize)
		if err := m.Table().Map(v, ptable.Phys(0x100000+uint64(i)*ptable.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestColdTranslationWalksFourLevels(t *testing.T) {
	m := newMapped(t, Config{}, 1)
	tr := m.Translate(0)
	if !tr.OK || tr.IOTLBHit {
		t.Fatalf("translation = %+v, want cold walk", tr)
	}
	if tr.MemReads != 4 {
		t.Fatalf("MemReads = %d, want 4 (all caches cold)", tr.MemReads)
	}
	c := m.Counters()
	if c.IOTLBMisses != 1 || c.L3Misses != 1 || c.L2Misses != 1 || c.L1Misses != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestWarmTranslationHitsIOTLB(t *testing.T) {
	m := newMapped(t, Config{}, 1)
	m.Translate(0)
	tr := m.Translate(0)
	if !tr.IOTLBHit || tr.MemReads != 0 {
		t.Fatalf("second translation = %+v, want IOTLB hit", tr)
	}
	if got := m.Counters().IOTLBHits; got != 1 {
		t.Fatalf("IOTLBHits = %d, want 1", got)
	}
}

func TestPTCacheReducesWalkToOneRead(t *testing.T) {
	m := newMapped(t, Config{}, 2)
	m.Translate(0) // cold: 4 reads, fills PTcaches
	// Neighbouring page shares all PTcache entries: 1 read (PT-L4 entry).
	tr := m.Translate(ptable.PageSize)
	if tr.IOTLBHit {
		t.Fatal("distinct page should miss IOTLB")
	}
	if tr.MemReads != 1 {
		t.Fatalf("MemReads = %d, want 1 (PTcache-L3 hit)", tr.MemReads)
	}
	c := m.Counters()
	if c.MemReads != 5 {
		t.Fatalf("total MemReads = %d, want 5", c.MemReads)
	}
}

func TestPartialPTCacheHitL2(t *testing.T) {
	m := New(Config{})
	// Two pages in different 2MB spans but the same 1GB span: after
	// translating the first and invalidating only its L3 entry, the second
	// gets an L2 hit -> 2 reads.
	a := ptable.IOVA(0)
	b := ptable.IOVA(ptable.L4PageSpan)
	if err := m.Table().Map(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Table().Map(b, 2); err != nil {
		t.Fatal(err)
	}
	m.Translate(a)
	tr := m.Translate(b)
	if tr.MemReads != 2 {
		t.Fatalf("MemReads = %d, want 2 (L2 hit, L3 miss)", tr.MemReads)
	}
	c := m.Counters()
	if c.L3Misses != 2 || c.L2Misses != 1 || c.L1Misses != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPartialPTCacheHitL1(t *testing.T) {
	m := New(Config{})
	a := ptable.IOVA(0)
	b := ptable.IOVA(ptable.L3PageSpan) // different 1GB span, same 512GB
	if err := m.Table().Map(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Table().Map(b, 2); err != nil {
		t.Fatal(err)
	}
	m.Translate(a)
	tr := m.Translate(b)
	if tr.MemReads != 3 {
		t.Fatalf("MemReads = %d, want 3 (L1 hit only)", tr.MemReads)
	}
}

func TestMemReadsArithmetic(t *testing.T) {
	// The paper's identity: MemReads = IOTLBMisses + L3 + L2 + L1 misses.
	m := newMapped(t, Config{}, 64)
	for i := 0; i < 64; i++ {
		m.Translate(ptable.IOVA(uint64(i) * ptable.PageSize))
	}
	c := m.Counters()
	if c.MemReads != c.IOTLBMisses+c.L3Misses+c.L2Misses+c.L1Misses {
		t.Fatalf("identity violated: %+v", c)
	}
}

func TestTranslateUnmappedFaults(t *testing.T) {
	m := New(Config{})
	tr := m.Translate(0x5000)
	if tr.OK {
		t.Fatal("translation of unmapped IOVA succeeded")
	}
	if m.Counters().Faults != 1 {
		t.Fatalf("Faults = %d, want 1", m.Counters().Faults)
	}
}

func TestInvalidateIOTLBOnlyPreservesPTCaches(t *testing.T) {
	m := newMapped(t, Config{}, 2)
	m.Translate(0)
	// F&S-style: IOTLB-only invalidation.
	m.Invalidate(0, 1, true)
	tr := m.Translate(0)
	if tr.IOTLBHit {
		t.Fatal("IOTLB entry survived invalidation")
	}
	if tr.MemReads != 1 {
		t.Fatalf("MemReads = %d, want 1 (PTcaches preserved)", tr.MemReads)
	}
	c := m.Counters()
	if c.PTInvalidated != 0 {
		t.Fatalf("PTInvalidated = %d, want 0", c.PTInvalidated)
	}
}

func TestInvalidateFullDropsPTCaches(t *testing.T) {
	m := newMapped(t, Config{}, 2)
	m.Translate(0)
	// Linux-style: invalidate IOTLB and all PTcache levels for the IOVA.
	m.Invalidate(0, 1, false)
	tr := m.Translate(0)
	if tr.MemReads != 4 {
		t.Fatalf("MemReads = %d, want 4 (PTcaches dropped)", tr.MemReads)
	}
	c := m.Counters()
	if c.PTInvalidated != 3 {
		t.Fatalf("PTInvalidated = %d, want 3", c.PTInvalidated)
	}
}

func TestInvalidationCrossIOVAInterference(t *testing.T) {
	// The §2.2 phenomenon: invalidating one IOVA's PTcache entries hurts
	// *other* IOVAs sharing those entries (Tx ACKs hurting Rx).
	m := newMapped(t, Config{}, 2)
	m.Translate(0) // fills shared PTcache entries
	m.Invalidate(ptable.PageSize, 1, false)
	// Page 0's own IOTLB entry survives a neighbour's invalidation.
	if tr := m.Translate(0); !tr.IOTLBHit {
		t.Fatal("unrelated invalidation dropped a live IOTLB entry")
	}
	// But a *different* page sharing the PTcache entries pays full walks.
	m2 := newMapped(t, Config{}, 3)
	m2.Translate(0)
	m2.Invalidate(ptable.PageSize, 1, false) // invalidates shared L1/L2/L3 keys
	tr2 := m2.Translate(2 * ptable.PageSize)
	if tr2.MemReads != 4 {
		t.Fatalf("MemReads = %d, want 4: invalidation killed shared entries", tr2.MemReads)
	}
}

func TestStaleIOTLBUseDetected(t *testing.T) {
	// Deferred-mode hole: unmap without invalidation leaves a usable
	// IOTLB entry.
	m := newMapped(t, Config{}, 1)
	m.Translate(0)
	if _, err := m.Table().Unmap(0, ptable.PageSize); err != nil {
		t.Fatal(err)
	}
	tr := m.Translate(0)
	if !tr.OK || !tr.Stale {
		t.Fatalf("translation = %+v, want stale hit", tr)
	}
	if m.Counters().StaleIOTLBUses != 1 {
		t.Fatalf("StaleIOTLBUses = %d, want 1", m.Counters().StaleIOTLBUses)
	}
}

func TestStrictInvalidationPreventsStaleUse(t *testing.T) {
	m := newMapped(t, Config{}, 1)
	m.Translate(0)
	if _, err := m.Table().Unmap(0, ptable.PageSize); err != nil {
		t.Fatal(err)
	}
	m.Invalidate(0, 1, false)
	tr := m.Translate(0)
	if tr.OK {
		t.Fatal("translation succeeded after strict unmap+invalidate")
	}
	if m.Counters().StaleIOTLBUses != 0 {
		t.Fatal("stale use counted after strict invalidation")
	}
}

func TestStalePTUseDetectedWithoutReclaimInvalidation(t *testing.T) {
	// Map a full 2MB span, translate (fills PTcache-L3), unmap the whole
	// span in one call (reclaims the PT-L4 page), do NOT invalidate
	// PTcaches, remap, translate: the PTcache-L3 entry points to the dead
	// page and must be flagged.
	m := New(Config{})
	for i := 0; i < 512; i++ {
		if err := m.Table().Map(ptable.IOVA(uint64(i)*ptable.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	m.Translate(0)
	res, err := m.Table().Unmap(0, ptable.L4PageSpan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reclaimed) == 0 {
		t.Fatal("expected reclamation")
	}
	m.Invalidate(0, 1, true) // drop the IOTLB entry but keep PTcaches
	if err := m.Table().Map(0, 2); err != nil {
		t.Fatal(err)
	}
	m.Translate(0)
	if m.Counters().StalePTUses == 0 {
		t.Fatal("stale PTcache use not detected after reclamation")
	}
}

func TestInvalidateReclaimedPreventsStalePTUse(t *testing.T) {
	// Same as above, but with the F&S reclamation hook: no stale use.
	m := New(Config{})
	for i := 0; i < 512; i++ {
		if err := m.Table().Map(ptable.IOVA(uint64(i)*ptable.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	m.Translate(0)
	res, err := m.Table().Unmap(0, ptable.L4PageSpan)
	if err != nil {
		t.Fatal(err)
	}
	m.Invalidate(0, 1, true)
	m.InvalidateReclaimed(res.Reclaimed)
	if err := m.Table().Map(0, 2); err != nil {
		t.Fatal(err)
	}
	m.Translate(0)
	if m.Counters().StalePTUses != 0 {
		t.Fatalf("StalePTUses = %d, want 0 with reclamation invalidation", m.Counters().StalePTUses)
	}
}

func TestRangedInvalidationCoversAllPages(t *testing.T) {
	m := newMapped(t, Config{}, 8)
	for i := 0; i < 8; i++ {
		m.Translate(ptable.IOVA(uint64(i) * ptable.PageSize))
	}
	m.Invalidate(0, 8, true)
	c := m.Counters()
	if c.IOTLBInvalidated != 8 {
		t.Fatalf("IOTLBInvalidated = %d, want 8", c.IOTLBInvalidated)
	}
	if c.InvRequests != 1 {
		t.Fatalf("InvRequests = %d, want 1 (single ranged request)", c.InvRequests)
	}
}

func TestFlushAll(t *testing.T) {
	m := newMapped(t, Config{}, 4)
	for i := 0; i < 4; i++ {
		m.Translate(ptable.IOVA(uint64(i) * ptable.PageSize))
	}
	m.FlushAll()
	tlb, l1, l2, l3 := m.CacheOccupancy()
	if tlb+l1+l2+l3 != 0 {
		t.Fatalf("occupancy after flush = %d %d %d %d", tlb, l1, l2, l3)
	}
}

func TestResetCounters(t *testing.T) {
	m := newMapped(t, Config{}, 1)
	m.Translate(0)
	m.ResetCounters()
	if m.Counters() != (Counters{}) {
		t.Fatalf("counters not zeroed: %+v", m.Counters())
	}
}

func TestIOTLBCapacityEviction(t *testing.T) {
	// Tiny IOTLB: translating more distinct pages than capacity evicts.
	m := newMapped(t, Config{IOTLBSets: 2, IOTLBWays: 1}, 8)
	for i := 0; i < 8; i++ {
		m.Translate(ptable.IOVA(uint64(i) * ptable.PageSize))
	}
	// Re-translate the first page: must miss (evicted by conflicts).
	before := m.Counters().IOTLBMisses
	m.Translate(0)
	if m.Counters().IOTLBMisses != before+1 {
		t.Fatal("expected capacity/conflict miss in tiny IOTLB")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.IOTLBSets != 16 || cfg.IOTLBWays != 4 || cfg.L1Size != 32 || cfg.L2Size != 32 || cfg.L3Size != 32 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
