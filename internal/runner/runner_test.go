package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderingUnderShuffledCompletion forces jobs to complete in exactly
// reverse submission order (each job waits for the next-indexed job to
// finish first) and asserts results still land at their job's index.
func TestOrderingUnderShuffledCompletion(t *testing.T) {
	const n = 8
	gates := make([]chan struct{}, n)
	for i := range gates {
		gates[i] = make(chan struct{})
	}
	var completions []int
	cfg := Config{
		Workers: n, // all jobs in flight at once
		// OnProgress runs after the result is recorded, so closing the
		// gate here guarantees job i-1 sees job i fully completed.
		OnProgress: func(p Progress) {
			completions = append(completions, p.Index)
			close(gates[p.Index])
		},
	}
	jobs := make([]Job[string], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(context.Context) (string, error) {
			if i < n-1 {
				<-gates[i+1] // block until the higher-indexed job completed
			}
			return fmt.Sprintf("job-%d", i), nil
		}
	}
	results := All(context.Background(), cfg, jobs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if want := fmt.Sprintf("job-%d", i); r.Value != want {
			t.Fatalf("results[%d] = %q, want %q", i, r.Value, want)
		}
	}
	for k, idx := range completions {
		if want := n - 1 - k; idx != want {
			t.Fatalf("completion order %v, want strictly reversed", completions)
		}
	}
}

func TestAllRunsEveryJob(t *testing.T) {
	var ran atomic.Int64
	jobs := make([]Job[int], 20)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { ran.Add(1); return i * i, nil }
	}
	results := All(context.Background(), Config{Workers: 4}, jobs)
	if ran.Load() != 20 {
		t.Fatalf("ran %d jobs, want 20", ran.Load())
	}
	for i, r := range results {
		if r.Value != i*i {
			t.Fatalf("results[%d] = %d", i, r.Value)
		}
	}
}

// TestCancellationMidSweep cancels from inside job 1 with a single worker
// and checks the remaining jobs are reported, not run.
func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	jobs := make([]Job[int], 6)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			ran.Add(1)
			if i == 1 {
				cancel()
			}
			return i, nil
		}
	}
	results := All(ctx, Config{Workers: 1}, jobs)
	if ran.Load() != 2 {
		t.Fatalf("ran %d jobs, want 2 (0 and 1)", ran.Load())
	}
	for i := 0; i < 2; i++ {
		if results[i].Err != nil || results[i].Value != i {
			t.Fatalf("results[%d] = %+v", i, results[i])
		}
	}
	for i := 2; i < len(jobs); i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Fatalf("results[%d].Err = %v, want context.Canceled", i, results[i].Err)
		}
	}
}

// TestPanicIsolation: a panicking job must fail its own slot with a
// PanicError and leave every other job untouched.
func TestPanicIsolation(t *testing.T) {
	jobs := make([]Job[int], 5)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			if i == 2 {
				panic("simulated simulation bug")
			}
			return i, nil
		}
	}
	results := All(context.Background(), Config{Workers: 2}, jobs)
	var pe *PanicError
	if !errors.As(results[2].Err, &pe) {
		t.Fatalf("results[2].Err = %v, want *PanicError", results[2].Err)
	}
	if pe.Index != 2 || pe.Value != "simulated simulation bug" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	for i, r := range results {
		if i != 2 && (r.Err != nil || r.Value != i) {
			t.Fatalf("results[%d] = %+v, want clean %d", i, r, i)
		}
	}
}

// TestPerJobTimeout: a job that observes its context is released by the
// per-job deadline without affecting its siblings.
func TestPerJobTimeout(t *testing.T) {
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 0, nil },
		func(ctx context.Context) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(30 * time.Second):
				return 0, errors.New("timeout never fired")
			}
		},
		func(context.Context) (int, error) { return 2, nil },
	}
	results := All(context.Background(), Config{Workers: 3, Timeout: 10 * time.Millisecond}, jobs)
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Fatalf("results[1].Err = %v, want DeadlineExceeded", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil || results[2].Value != 2 {
		t.Fatalf("siblings disturbed: %+v", results)
	}
}

// TestProgressSerialised: Done must increment by exactly one per callback
// and every index must be reported once.
func TestProgressSerialised(t *testing.T) {
	const n = 32
	seen := make(map[int]bool)
	lastDone := 0
	cfg := Config{Workers: 8, OnProgress: func(p Progress) {
		if p.Done != lastDone+1 || p.Total != n {
			t.Errorf("progress %+v after done=%d", p, lastDone)
		}
		lastDone = p.Done
		if seen[p.Index] {
			t.Errorf("index %d reported twice", p.Index)
		}
		seen[p.Index] = true
	}}
	jobs := make([]Job[struct{}], n)
	for i := range jobs {
		jobs[i] = func(context.Context) (struct{}, error) { return struct{}{}, nil }
	}
	All(context.Background(), cfg, jobs)
	if len(seen) != n {
		t.Fatalf("reported %d indices, want %d", len(seen), n)
	}
}

// TestCollectFailFast: the first failure is returned, and with one worker
// the jobs after the failing one never run.
func TestCollectFailFast(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	jobs := make([]Job[int], 5)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			ran.Add(1)
			if i == 1 {
				return 0, boom
			}
			return i + 10, nil
		}
	}
	vals, err := Collect(context.Background(), Config{Workers: 1}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() != 2 {
		t.Fatalf("ran %d jobs, want 2", ran.Load())
	}
	if vals[0] != 10 || vals[1] != 0 {
		t.Fatalf("vals = %v", vals)
	}
}

// TestCollectSuccess returns the values in job order with a nil error.
func TestCollectSuccess(t *testing.T) {
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i * 3, nil }
	}
	vals, err := Collect(context.Background(), Config{Workers: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*3 {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
}

// TestCollectPanicBecomesError: Collect surfaces a job panic as its
// returned error rather than crashing or hiding it.
func TestCollectPanicBecomesError(t *testing.T) {
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { panic("kaboom") },
	}
	_, err := Collect(context.Background(), Config{Workers: 1}, jobs)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("err = %v, want PanicError{Index: 1}", err)
	}
}

// TestEmptyAndDefaults: zero jobs and the zero Config must both be safe.
func TestEmptyAndDefaults(t *testing.T) {
	if got := All[int](nil, Config{}, nil); len(got) != 0 {
		t.Fatalf("All(nil) = %v", got)
	}
	vals, err := Collect(nil, Config{}, []Job[int]{
		func(context.Context) (int, error) { return 7, nil },
	})
	if err != nil || len(vals) != 1 || vals[0] != 7 {
		t.Fatalf("Collect = %v, %v", vals, err)
	}
}
