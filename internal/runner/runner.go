// Package runner is the concurrency backbone for experiment sweeps: a
// context-aware worker pool that fans independent simulation jobs across
// CPUs while keeping everything callers rely on deterministic.
//
// Each simulation is a self-contained deterministic event loop (its own
// engine, domain, RNG), so a sweep over modes, flow counts, or seeds is
// embarrassingly parallel — the only thing concurrency must not change is
// the *results*. The pool therefore guarantees:
//
//   - results are indexed by job, independent of completion order;
//   - a panicking job fails that job (with its stack), not the process;
//   - cancelling the context stops handing out work, and jobs never
//     started report the context's error;
//   - an optional per-job timeout context and a serialised progress
//     callback for long sweeps.
//
// Jobs receive a context but are not preempted by it: a pure-CPU
// simulation that ignores ctx runs to completion, and the timeout/cancel
// takes effect at the next job boundary. That is the right trade for this
// codebase — simulations are short (seconds) and deterministic, and
// injecting cancellation checks into the event loop would cost more than
// it saves.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job computes one result. The context carries pool cancellation and the
// per-job timeout; long-running jobs may observe it, short simulations
// typically ignore it.
type Job[R any] func(ctx context.Context) (R, error)

// Result is one job's outcome.
type Result[R any] struct {
	Value R
	Err   error
}

// Progress describes one finished (or skipped) job. Callbacks are invoked
// serially under the pool's lock, so they need no synchronisation of
// their own.
type Progress struct {
	Index int   // index of the job that just finished
	Done  int   // jobs finished so far, including this one
	Total int   // total jobs in this run
	Err   error // nil on success
}

// Config controls one pool run. The zero value is ready to use.
type Config struct {
	// Workers bounds concurrency; <= 0 means GOMAXPROCS(0).
	Workers int
	// Timeout, when positive, bounds each job's context. Jobs that do not
	// observe their context are not preempted (see the package comment).
	Timeout time.Duration
	// OnProgress, when non-nil, is called once per job as it completes,
	// serially and in completion order.
	OnProgress func(Progress)
}

// PanicError is the failure recorded for a job that panicked. The
// panicking goroutine is the worker's, so the process survives and the
// remaining jobs keep running.
type PanicError struct {
	Index int    // job index
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Index, e.Value)
}

// All runs every job on a bounded worker pool and returns one Result per
// job, with results[i] holding job i's outcome regardless of completion
// order. Job failures do not stop the run; cancellation does — jobs not
// yet started when ctx is cancelled are recorded with Err = ctx.Err()
// (and reported through OnProgress) without being executed.
func All[R any](ctx context.Context, cfg Config, jobs []Job[R]) []Result[R] {
	n := len(jobs)
	out := make([]Result[R], n)
	if n == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var mu sync.Mutex // guards next, done, out writes, OnProgress
	next, done := 0, 0
	finish := func(i int, r Result[R]) {
		mu.Lock()
		defer mu.Unlock()
		out[i] = r
		done++
		if cfg.OnProgress != nil {
			cfg.OnProgress(Progress{Index: i, Done: done, Total: n, Err: r.Err})
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					finish(i, Result[R]{Err: err})
					continue
				}
				finish(i, runOne(ctx, cfg.Timeout, i, jobs[i]))
			}
		}()
	}
	wg.Wait()
	return out
}

// runOne executes one job with panic capture and the per-job timeout.
func runOne[R any](ctx context.Context, timeout time.Duration, i int, job Job[R]) (res Result[R]) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			res = Result[R]{Err: &PanicError{Index: i, Value: v, Stack: debug.Stack()}}
		}
	}()
	v, err := job(ctx)
	return Result[R]{Value: v, Err: err}
}

// Collect is the fail-fast variant sweeps use: it runs every job, cancels
// the jobs not yet started when one fails, and returns the values in job
// order alongside the first failure observed (nil when all succeed).
// Values of failed or skipped jobs are zero.
func Collect[R any](ctx context.Context, cfg Config, jobs []Job[R]) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var first error
	userProgress := cfg.OnProgress
	// OnProgress runs under the pool lock, so recording the first error
	// here needs no extra synchronisation.
	cfg.OnProgress = func(p Progress) {
		if p.Err != nil && first == nil {
			first = p.Err
			cancel()
		}
		if userProgress != nil {
			userProgress(p)
		}
	}
	results := All(cctx, cfg, jobs)
	out := make([]R, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	if first == nil {
		// All jobs succeeded from the pool's perspective, but the parent
		// context may have been cancelled before any job started.
		first = ctx.Err()
	}
	return out, first
}
