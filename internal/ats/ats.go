// Package ats models a PCIe Address Translation Services device-side
// translation cache (an ATC, "device TLB"): the endpoint asks the IOMMU's
// translation agent for completed translations, caches them by 4KB page,
// and serves later DMAs locally. The host must explicitly shoot the
// cached entries down — an ATC-invalidate is its own invalidation-queue
// message class — and a DMA whose translation misses the ATC and faults
// at the IOMMU falls back to a PRI page request.
//
// Cache implements iommu.Translator by wrapping an inner Translator
// (normally the domain's direct IOMMU path), so a protection domain with
// ATS enabled is the same domain with one more cache level in front of
// it. The safety-relevant consequence is the StaleATS window: after the
// host unmaps an IOVA, a cached ATC entry keeps serving the old physical
// page until the ATC-invalidate lands. Modes that order the shootdown
// before IOVA reuse (strict, F&S) close the window; the
// defer-noshootdown strawman never sends one and is caught by the fault
// auditor's device-cache re-walk.
package ats

import (
	"fastsafe/internal/iommu"
	"fastsafe/internal/ptable"
	"fastsafe/internal/stats"
)

// Config sizes one device's ATC.
type Config struct {
	// Entries is the device-TLB capacity (4KB translations, true LRU).
	// Zero disables ATS for the domain entirely.
	Entries int
	// ReqReads is the memory-read-equivalent cost of one ATS translation
	// request round trip, charged on top of the walk the request
	// triggers (default 1: the translation-agent completion message).
	ReqReads int
	// PRIReads is the additional cost of a PRI page request when the
	// translation request faults (default 5: page-request, IOMMU fault
	// handling, and the group-response round trip).
	PRIReads int
}

func (c Config) withDefaults() Config {
	if c.ReqReads == 0 {
		c.ReqReads = 1
	}
	if c.PRIReads == 0 {
		c.PRIReads = 5
	}
	return c
}

// Counters is the ATC's hardware-counter view.
type Counters struct {
	Lookups     int64 // translations requested through the ATC
	Hits        int64 // served from the device TLB
	Misses      int64 // forwarded to the IOMMU as ATS requests
	PRIRequests int64 // misses that faulted and fell back to PRI
	InvMessages int64 // ATC-invalidate messages received from the host
	Invalidated int64 // entries those messages removed
	Evictions   int64 // capacity evictions (LRU)
	StaleHits   int64 // hits whose mapping is gone or re-pointed (unsafe)
}

type entry struct {
	page       ptable.IOVA // 4KB-aligned IOVA
	phys       ptable.Phys // physical base of the cached 4KB page
	huge       bool        // translation came from a 2MB leaf
	prev, next *entry
}

// Cache is one device's ATC over one protection domain.
type Cache struct {
	mmu   *iommu.IOMMU
	dom   iommu.DomainID
	inner iommu.Translator
	cfg   Config

	entries    map[ptable.IOVA]*entry
	head, tail *entry // LRU list, head = most recent
	c          Counters

	// audit, when set, observes every ATC *hit* (misses reach the
	// IOMMU's own audit hook through inner.Translate). It must not
	// mutate cache or table state.
	audit func(v ptable.IOVA, t iommu.Translation)
}

// New builds an ATC of cfg.Entries translations for domain d, layered in
// front of inner. cfg.Entries must be positive.
func New(m *iommu.IOMMU, d iommu.DomainID, inner iommu.Translator, cfg Config) *Cache {
	return &Cache{
		mmu:     m,
		dom:     d,
		inner:   inner,
		cfg:     cfg.withDefaults(),
		entries: make(map[ptable.IOVA]*entry),
	}
}

// SetAuditHook installs fn to observe every ATC hit (nil uninstalls).
func (a *Cache) SetAuditHook(fn func(ptable.IOVA, iommu.Translation)) { a.audit = fn }

// Counters returns a snapshot of the ATC counters.
func (a *Cache) Counters() Counters { return a.c }

// Len reports the live entry count.
func (a *Cache) Len() int { return len(a.entries) }

// Translate implements iommu.Translator: serve from the device TLB when
// possible, otherwise send an ATS translation request (the inner
// pipeline) and cache the completion. A faulting request costs an extra
// PRI round trip on top.
func (a *Cache) Translate(v ptable.IOVA) iommu.Translation {
	a.c.Lookups++
	page := v.AlignDown()
	if e, ok := a.entries[page]; ok {
		a.c.Hits++
		a.touch(e)
		// 4KB translations are page-granular in this model; 2MB leaves
		// resolve the full offset (matching the IOMMU's own convention).
		phys := e.phys
		if e.huge {
			phys += ptable.Phys(v - page)
		}
		t := iommu.Translation{Phys: phys, OK: true, ATC: true}
		// Ground truth: a hit for an IOVA that is no longer mapped (or
		// now maps elsewhere) is the ATS stale window in action.
		if w, _, ok := a.mmu.TableOf(a.dom).LookupHugeAware(v); !ok || w.Phys != t.Phys {
			a.c.StaleHits++
			t.Stale = true
		}
		if a.audit != nil {
			a.audit(v, t)
		}
		return t
	}
	a.c.Misses++
	a.mmu.ChargeATSRequest(a.dom)
	t := a.inner.Translate(v)
	t.MemReads += a.cfg.ReqReads
	if !t.OK {
		a.c.PRIRequests++
		t.MemReads += a.cfg.PRIReads
		return t
	}
	base, huge := t.Phys, a.mmu.TableOf(a.dom).HugeMapped(v)
	if huge {
		base -= ptable.Phys(v - page)
	}
	a.insert(page, base, huge)
	return t
}

// Invalidate implements iommu.Translator: the host's unmap path sends
// one ATC-invalidate message for the range (dropping the covered device
// entries) and then forwards the request to the inner translator so the
// IOMMU caches are shot down too.
func (a *Cache) Invalidate(base ptable.IOVA, pages int, iotlbOnly bool) {
	a.c.InvMessages++
	var dropped int64
	for i := 0; i < pages; i++ {
		p := base.AlignDown() + ptable.IOVA(i*ptable.PageSize)
		if e, ok := a.entries[p]; ok {
			a.remove(e)
			dropped++
		}
	}
	a.c.Invalidated += dropped
	a.mmu.ChargeATCInvalidation(a.dom, dropped)
	a.inner.Invalidate(base, pages, iotlbOnly)
}

// InvalidateAll implements iommu.Translator: global flush (one message).
func (a *Cache) InvalidateAll() {
	a.c.InvMessages++
	dropped := int64(len(a.entries))
	a.entries = make(map[ptable.IOVA]*entry)
	a.head, a.tail = nil, nil
	a.c.Invalidated += dropped
	a.mmu.ChargeATCInvalidation(a.dom, dropped)
	a.inner.InvalidateAll()
}

// RegisterProbes exposes the ATC counters under prefix (e.g. "nic0.ats.").
func (a *Cache) RegisterProbes(r *stats.Registry, prefix string) {
	probe := func(name string, fn func(Counters) int64) {
		r.GaugeFunc(prefix+name, func() float64 { return float64(fn(a.c)) })
	}
	probe("lookups", func(c Counters) int64 { return c.Lookups })
	probe("hits", func(c Counters) int64 { return c.Hits })
	probe("misses", func(c Counters) int64 { return c.Misses })
	probe("pri_requests", func(c Counters) int64 { return c.PRIRequests })
	probe("inv_messages", func(c Counters) int64 { return c.InvMessages })
	probe("invalidated", func(c Counters) int64 { return c.Invalidated })
	probe("evictions", func(c Counters) int64 { return c.Evictions })
	probe("stale_hits", func(c Counters) int64 { return c.StaleHits })
	r.GaugeFunc(prefix+"occupancy", func() float64 { return float64(len(a.entries)) })
}

func (a *Cache) insert(page ptable.IOVA, phys ptable.Phys, huge bool) {
	if len(a.entries) >= a.cfg.Entries {
		a.c.Evictions++
		a.remove(a.tail)
	}
	e := &entry{page: page, phys: phys, huge: huge}
	a.entries[page] = e
	a.pushFront(e)
}

func (a *Cache) touch(e *entry) {
	if a.head == e {
		return
	}
	a.unlink(e)
	a.pushFront(e)
}

func (a *Cache) remove(e *entry) {
	a.unlink(e)
	delete(a.entries, e.page)
}

func (a *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		a.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		a.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (a *Cache) pushFront(e *entry) {
	e.next = a.head
	e.prev = nil
	if a.head != nil {
		a.head.prev = e
	}
	a.head = e
	if a.tail == nil {
		a.tail = e
	}
}
