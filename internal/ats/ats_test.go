package ats

import (
	"testing"

	"fastsafe/internal/iommu"
	"fastsafe/internal/ptable"
	"fastsafe/internal/stats"
)

func newCache(t *testing.T, entries int) (*iommu.IOMMU, iommu.DomainID, *Cache) {
	t.Helper()
	m := iommu.New(iommu.Config{})
	d := m.CreateDomain()
	return m, d, New(m, d, m.TranslatorOf(d), Config{Entries: entries})
}

func mustMap(t *testing.T, m *iommu.IOMMU, d iommu.DomainID, v ptable.IOVA, p ptable.Phys) {
	t.Helper()
	if err := m.TableOf(d).Map(v, p); err != nil {
		t.Fatal(err)
	}
}

func TestMissFillsThenHits(t *testing.T) {
	m, d, a := newCache(t, 8)
	v := ptable.IOVA(0x5000)
	mustMap(t, m, d, v, 0x9000)

	tr := a.Translate(v + 0x10)
	if !tr.OK || tr.ATC || tr.Phys != 0x9000 {
		t.Fatalf("miss path: %+v", tr)
	}
	// The ATS request costs one read beyond the walk itself.
	if want := 4 + 1; tr.MemReads != want {
		t.Fatalf("miss MemReads = %d, want %d", tr.MemReads, want)
	}
	tr = a.Translate(v + 0x20)
	if !tr.OK || !tr.ATC || tr.Phys != 0x9000 || tr.MemReads != 0 || tr.Stale {
		t.Fatalf("hit path: %+v", tr)
	}
	c := a.Counters()
	if c.Lookups != 2 || c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters: %+v", c)
	}
	// The request landed in both the global and per-domain IOMMU views.
	if g := m.Counters(); g.ATSRequests != 1 {
		t.Fatalf("global ATSRequests = %d", g.ATSRequests)
	}
	if pd := m.CountersOf(d); pd.ATSRequests != 1 {
		t.Fatalf("per-domain ATSRequests = %d", pd.ATSRequests)
	}
}

func TestStaleHitAfterSilentUnmap(t *testing.T) {
	m, d, a := newCache(t, 8)
	v := ptable.IOVA(0x5000)
	mustMap(t, m, d, v, 0x9000)
	a.Translate(v)
	// Unmap WITHOUT invalidating the ATC: the defer-noshootdown pattern.
	if _, err := m.TableOf(d).Unmap(v, ptable.PageSize); err != nil {
		t.Fatal(err)
	}
	tr := a.Translate(v)
	if !tr.ATC || !tr.Stale {
		t.Fatalf("unmapped page must be a stale ATC hit: %+v", tr)
	}
	// Remap the IOVA to a new physical page: still stale (re-pointed).
	mustMap(t, m, d, v, 0xa000)
	tr = a.Translate(v)
	if !tr.ATC || !tr.Stale || tr.Phys != 0x9000 {
		t.Fatalf("re-pointed page must be a stale ATC hit serving the old phys: %+v", tr)
	}
	if c := a.Counters(); c.StaleHits != 2 {
		t.Fatalf("StaleHits = %d, want 2", c.StaleHits)
	}
}

func TestInvalidateDropsAndForwards(t *testing.T) {
	m, d, a := newCache(t, 8)
	for i := 0; i < 4; i++ {
		v := ptable.IOVA(i * ptable.PageSize)
		mustMap(t, m, d, v, ptable.Phys(0x100000+i*ptable.PageSize))
		a.Translate(v)
	}
	before := m.CountersOf(d)
	a.Invalidate(0, 2, false)
	if a.Len() != 2 {
		t.Fatalf("Len = %d after invalidating 2 of 4", a.Len())
	}
	c := a.Counters()
	if c.InvMessages != 1 || c.Invalidated != 2 {
		t.Fatalf("counters: %+v", c)
	}
	pd := m.CountersOf(d)
	if pd.ATCInvRequests-before.ATCInvRequests != 1 || pd.ATCInvalidated-before.ATCInvalidated != 2 {
		t.Fatalf("per-domain ATC inv accounting: %+v -> %+v", before, pd)
	}
	// The request was forwarded to the IOMMU too.
	if pd.InvRequests-before.InvRequests != 1 {
		t.Fatalf("inner invalidation not forwarded")
	}
	// Invalidated entries miss again.
	if tr := a.Translate(0); tr.ATC {
		t.Fatal("entry survived its invalidation")
	}
}

func TestInvalidateAllFlushes(t *testing.T) {
	m, d, a := newCache(t, 8)
	for i := 0; i < 3; i++ {
		v := ptable.IOVA(i * ptable.PageSize)
		mustMap(t, m, d, v, ptable.Phys(0x100000+i*ptable.PageSize))
		a.Translate(v)
	}
	a.InvalidateAll()
	if a.Len() != 0 {
		t.Fatalf("Len = %d after flush", a.Len())
	}
	if c := a.Counters(); c.Invalidated != 3 {
		t.Fatalf("Invalidated = %d, want 3", c.Invalidated)
	}
	if pd := m.CountersOf(d); pd.ATCInvalidated != 3 {
		t.Fatalf("per-domain ATCInvalidated = %d", pd.ATCInvalidated)
	}
}

func TestLRUEviction(t *testing.T) {
	m, d, a := newCache(t, 2)
	for i := 0; i < 3; i++ {
		v := ptable.IOVA(i * ptable.PageSize)
		mustMap(t, m, d, v, ptable.Phys(0x100000+i*ptable.PageSize))
	}
	a.Translate(0)                            // cache {0}
	a.Translate(ptable.IOVA(ptable.PageSize)) // cache {0, 1}
	a.Translate(0)                            // touch 0: LRU order 0, 1
	a.Translate(ptable.IOVA(2 * ptable.PageSize))
	// Page 1 was least recent and must have been evicted; the
	// recently-touched page 0 must have survived (probe it first — the
	// page-1 probe re-inserts page 1 and evicts again).
	if tr := a.Translate(0); !tr.ATC {
		t.Fatal("recently-touched entry evicted")
	}
	if tr := a.Translate(ptable.IOVA(ptable.PageSize)); tr.ATC {
		t.Fatal("LRU victim survived")
	}
	if c := a.Counters(); c.Evictions < 1 {
		t.Fatalf("Evictions = %d", c.Evictions)
	}
}

func TestPRIFallbackOnFault(t *testing.T) {
	_, _, a := newCache(t, 8)
	tr := a.Translate(ptable.IOVA(0x7000)) // never mapped
	if tr.OK || tr.ATC {
		t.Fatalf("unmapped translation: %+v", tr)
	}
	// Walk (4 reads) + ATS request (1) + PRI round trip (5).
	if want := 4 + 1 + 5; tr.MemReads != want {
		t.Fatalf("PRI MemReads = %d, want %d", tr.MemReads, want)
	}
	if c := a.Counters(); c.PRIRequests != 1 {
		t.Fatalf("PRIRequests = %d", c.PRIRequests)
	}
	if a.Len() != 0 {
		t.Fatal("faulting translation cached")
	}
}

func TestAuditHookFiresOnHitsOnly(t *testing.T) {
	m, d, a := newCache(t, 8)
	var hits int
	a.SetAuditHook(func(v ptable.IOVA, tr iommu.Translation) {
		if !tr.ATC {
			t.Errorf("hook fired on a non-ATC translation: %+v", tr)
		}
		hits++
	})
	v := ptable.IOVA(0x5000)
	mustMap(t, m, d, v, 0x9000)
	a.Translate(v) // miss: no hook
	a.Translate(v) // hit
	a.Translate(v) // hit
	if hits != 2 {
		t.Fatalf("hook fired %d times, want 2", hits)
	}
}

func TestRegisterProbes(t *testing.T) {
	m, d, a := newCache(t, 8)
	v := ptable.IOVA(0x5000)
	mustMap(t, m, d, v, 0x9000)
	a.Translate(v)
	a.Translate(v)
	r := stats.NewRegistry()
	a.RegisterProbes(r, "nic0.ats.")
	for name, want := range map[string]float64{
		"nic0.ats.lookups":   2,
		"nic0.ats.hits":      1,
		"nic0.ats.misses":    1,
		"nic0.ats.occupancy": 1,
	} {
		got, ok := r.Value(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
}
