// Package core implements the memory-protection datapaths the paper
// studies: the Linux strict and deferred modes, the F&S design (§3), the
// two F&S ablations from §4.3, and a persistent-mapping baseline standing
// in for the DAMN [34] / hugepage [16] family of weaker-safety designs.
//
// A Domain is the IOMMU-driver view the NIC driver programs against:
// prepare (map) descriptors, complete (unmap) descriptors, map and unmap
// Tx packets. Every operation returns the CPU time it cost, so the host
// simulation can charge it to a core.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Mode selects the protection datapath.
type Mode int

const (
	// Off disables the IOMMU: devices use physical addresses. Fastest,
	// no protection (the paper's "IOMMU disabled" baseline).
	Off Mode = iota
	// Strict is Linux's strict mode: per-page IOVAs from the rcache
	// allocator; on every descriptor completion each page is unmapped and
	// a per-page invalidation drops its IOTLB entry and the PTcache
	// entries covering it. Strongest safety, worst performance.
	Strict
	// Deferred is Linux's deferred (lazy) mode: unmaps happen immediately
	// but invalidations are batched until a threshold and then flushed
	// globally. Weaker safety: the device can reach unmapped pages until
	// the flush.
	Deferred
	// StrictPreserve is ablation "Linux + A" from §4.3: strict mode, but
	// invalidations preserve the page-table caches (invalidating them only
	// when an unmap reclaims a page-table page).
	StrictPreserve
	// StrictContig is ablation "Linux + B" from §4.3: descriptor-sized
	// contiguous IOVA allocation plus a single ranged (batched)
	// invalidation per descriptor, but the invalidation still drops the
	// page-table caches as in default Linux.
	StrictContig
	// FNS is the paper's Fast & Safe design: contiguous descriptor-sized
	// IOVAs (B), IOTLB-only invalidations that preserve the page-table
	// caches (A), PTcache invalidation only on page-table page
	// reclamation, and one ranged invalidation-queue request per
	// descriptor. Same safety as Strict.
	FNS
	// Persistent keeps IOVA-to-page mappings alive forever and recycles
	// pre-mapped descriptors, in the spirit of DAMN [34] and the hugepage
	// pinning of [16]. No unmap or invalidation cost, but the device
	// retains access to recycled buffers: weaker safety.
	Persistent
	// FNSHuge is the paper's §5 future-work direction: F&S combined with
	// hugepages to also reduce the IOTLB miss *count*. Rx descriptors are
	// carved from 2MB huge mappings (one IOTLB entry per 512 pages);
	// unmap + invalidation happen when a whole 2MB chunk's descriptors
	// have completed. Safety is at hugepage granularity — stronger than
	// deferred/persistent, weaker than strict's per-descriptor guarantee.
	// The Tx datapath is unchanged from FNS.
	FNSHuge
	// DeferNoShootdown is a deliberately unsafe strawman for the fault
	// layer's audit campaigns: contiguous unmaps like FNS, but no
	// invalidation is ever submitted — "deferred without the shootdown".
	// IOVAs recycle immediately while IOTLB/PTcache entries survive, so
	// the safety auditor must flag stale-served DMAs. It exists to prove
	// the auditor has teeth and is deliberately excluded from Modes().
	DeferNoShootdown
	// Cap is the CAPIO-style capability family: the domain grants the
	// device a per-buffer capability at map time, every DMA is validated
	// against the per-domain capability table in O(1) (no page-table walk
	// on the guarded path), and unmap synchronously revokes the
	// capability instead of queueing an IOTLB invalidation. Strict-
	// equivalent safety: the device provably loses access the moment the
	// descriptor completes. Kept out of Modes() — the capability figure
	// compares it explicitly rather than riding every mode sweep.
	Cap
	// CapLazyRevoke is the weaker capability variant: unmaps only queue
	// the revocation, and a threshold (or timer) flush kills the batch —
	// the capability analogue of Deferred. The device can keep using a
	// granted capability until the flush, so the safety auditor must
	// classify those serves as stale-capability violations.
	CapLazyRevoke
)

var modeNames = map[Mode]string{
	Off:              "off",
	Strict:           "strict",
	Deferred:         "deferred",
	StrictPreserve:   "strict+preserve",
	StrictContig:     "strict+contig",
	FNS:              "fns",
	Persistent:       "persistent",
	FNSHuge:          "fns+huge",
	DeferNoShootdown: "defer-noshootdown",
	Cap:              "cap",
	CapLazyRevoke:    "cap-lazyrevoke",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ValidModeNames is the one shared name table: every parseable mode
// name, Modes() presentation order first, then the modes deliberately
// kept out of Modes() (strawmen and the capability family) sorted by
// name. internal/modespec delegates here so the two parsers reject an
// unknown mode with the same vocabulary.
func ValidModeNames() []string {
	listed := Modes()
	out := make([]string, 0, len(modeNames))
	seen := make(map[Mode]bool, len(listed))
	for _, m := range listed {
		out = append(out, m.String())
		seen[m] = true
	}
	var extra []string
	for m, name := range modeNames {
		if !seen[m] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// ParseMode maps a name (as printed by String) back to a Mode.
func ParseMode(s string) (Mode, error) {
	for m, name := range modeNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q (valid: %s)",
		s, strings.Join(ValidModeNames(), ", "))
}

// Translated reports whether DMA addresses pass through the IOMMU's
// protection check (address translation or capability validation) in
// this mode. Delegates to the registered policy; the pre-seam fallback
// covers unregistered Mode values.
func (m Mode) Translated() bool {
	if p, ok := policies[m]; ok {
		return p.Translated()
	}
	return m != Off
}

// StrictSafety reports whether the mode guarantees the device cannot
// access a buffer after its descriptor completes (the paper's strict
// safety property).
func (m Mode) StrictSafety() bool {
	if p, ok := policies[m]; ok {
		return p.StrictSafety()
	}
	return false
}

// Contiguous reports whether the mode allocates descriptor-sized (or
// larger) contiguous IOVA chunks.
func (m Mode) Contiguous() bool {
	if p, ok := policies[m]; ok {
		return p.Contiguous()
	}
	return false
}

// PreservesPTCaches reports whether invalidations keep the page-table
// caches (F&S idea A).
func (m Mode) PreservesPTCaches() bool {
	if p, ok := policies[m]; ok {
		return p.PreservesPTCaches()
	}
	return false
}

// Modes lists all implemented modes in presentation order.
// DeferNoShootdown is deliberately absent: it is a fault-campaign
// strawman, not a design point the figures compare.
func Modes() []Mode {
	return []Mode{Off, Strict, Deferred, StrictPreserve, StrictContig, FNS, Persistent, FNSHuge}
}
