package core

import (
	"fmt"

	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// Tx datapath. Unlike Rx descriptors, Tx packets arrive one at a time from
// the stack and each packet needs its own page-sized mappings (§3). Under
// F&S, per-CPU descriptor-sized IOVA chunks are filled *across* packets in
// transmission order, so invalidations can still be ranged.

// txPool is the per-CPU freelist of persistent pre-mapped Tx pages.
type txPool struct {
	free []ptable.IOVA
}

// MapTx maps a Tx packet occupying the given number of pages on cpu.
func (d *Domain) MapTx(cpu, pages int) (*TxMapping, sim.Duration, error) {
	if pages <= 0 {
		pages = 1
	}
	m := &TxMapping{cpu: cpu}
	var cost sim.Duration

	switch d.cfg.Mode {
	case Off:
		for i := 0; i < pages; i++ {
			m.IOVAs = append(m.IOVAs, ptable.IOVA(d.newPhys()))
		}
		return m, 0, nil

	case Persistent:
		for i := 0; i < pages; i++ {
			if p := d.txPools(cpu); len(p.free) > 0 {
				v := p.free[len(p.free)-1]
				p.free = p.free[:len(p.free)-1]
				m.IOVAs = append(m.IOVAs, v)
				continue
			}
			v, c, err := d.allocIOVA(cpu, 1)
			if err != nil {
				return nil, 0, err
			}
			cost += c
			if err := d.table.Map(v, d.newPhys()); err != nil {
				return nil, 0, err
			}
			d.traceAccess(v)
			cost += d.cfg.Costs.MapPage
			d.c.PagesMapped++
			m.IOVAs = append(m.IOVAs, v)
		}

	case Strict, Deferred, StrictPreserve:
		for i := 0; i < pages; i++ {
			v, c, err := d.allocIOVA(cpu, 1)
			if err != nil {
				return nil, 0, err
			}
			cost += c
			if err := d.table.Map(v, d.newPhys()); err != nil {
				return nil, 0, err
			}
			d.traceAccess(v)
			cost += d.cfg.Costs.MapPage
			d.c.PagesMapped++
			m.IOVAs = append(m.IOVAs, v)
		}

	case StrictContig, FNS, FNSHuge, DeferNoShootdown:
		for i := 0; i < pages; i++ {
			ch := d.txChunks[cpu]
			if ch == nil || ch.next == ch.pages {
				base, c, err := d.allocIOVA(cpu, d.cfg.DescriptorPages)
				if err != nil {
					return nil, 0, err
				}
				cost += c
				ch = &txChunk{base: base, pages: d.cfg.DescriptorPages}
				d.txChunks[cpu] = ch
			}
			v := ch.base + ptable.IOVA(ch.next*ptable.PageSize)
			ch.next++
			if err := d.table.Map(v, d.newPhys()); err != nil {
				return nil, 0, err
			}
			d.traceAccess(v)
			cost += d.cfg.Costs.MapPage
			d.c.PagesMapped++
			m.IOVAs = append(m.IOVAs, v)
			m.chunks = append(m.chunks, ch)
		}

	default:
		return nil, 0, fmt.Errorf("core: unhandled mode %v", d.cfg.Mode)
	}

	d.c.TxPacketsMapped++
	d.c.CPUTime += cost
	return m, cost, nil
}

func (d *Domain) txPools(cpu int) *txPool {
	if d.txPool == nil {
		d.txPool = make([]*txPool, d.cfg.NumCPUs)
	}
	if d.txPool[cpu] == nil {
		d.txPool[cpu] = &txPool{}
	}
	return d.txPool[cpu]
}

// UnmapTx completes a Tx packet: unmap its pages and invalidate per the
// mode's policy. Strict safety requires the device to lose access as soon
// as the packet completes, so even F&S invalidates here — but ranged over
// each contiguous run the packet occupies within its chunks.
func (d *Domain) UnmapTx(m *TxMapping) (sim.Duration, error) {
	var cost sim.Duration
	switch d.cfg.Mode {
	case Off:
		return 0, nil

	case Persistent:
		p := d.txPools(m.cpu)
		p.free = append(p.free, m.IOVAs...)
		d.c.TxPacketsUnmapped++
		return 0, nil

	case Strict, StrictPreserve:
		iotlbOnly := d.cfg.Mode.PreservesPTCaches()
		for _, v := range m.IOVAs {
			res, err := d.table.Unmap(v, ptable.PageSize)
			if err != nil {
				return cost, err
			}
			cost += d.cfg.Costs.UnmapPage
			d.c.PagesUnmapped++
			cost += d.invalidate(v, 1, iotlbOnly)
			if iotlbOnly && len(res.Reclaimed) > 0 {
				d.mmu.InvalidateReclaimedIn(d.domID, res.Reclaimed)
				d.c.Reclaims += int64(len(res.Reclaimed))
			}
			cost += d.freeIOVA(d.txFreeCPU(m.cpu), v, 1)
		}

	case Deferred:
		for _, v := range m.IOVAs {
			if _, err := d.table.Unmap(v, ptable.PageSize); err != nil {
				return cost, err
			}
			cost += d.cfg.Costs.UnmapPage
			d.c.PagesUnmapped++
			d.deferredPending = append(d.deferredPending, pendingFree{v, 1, d.txFreeCPU(m.cpu)})
		}
		cost += d.maybeFlushDeferred()

	case StrictContig, FNS, FNSHuge:
		iotlbOnly := d.cfg.Mode.PreservesPTCaches()
		// Group the packet's pages into contiguous runs (they are
		// contiguous except across a chunk boundary).
		i := 0
		for i < len(m.IOVAs) {
			j := i + 1
			for j < len(m.IOVAs) &&
				m.IOVAs[j] == m.IOVAs[j-1]+ptable.PageSize &&
				m.chunks[j] == m.chunks[i] {
				j++
			}
			run := j - i
			res, err := d.table.Unmap(m.IOVAs[i], uint64(run)*ptable.PageSize)
			if err != nil {
				return cost, err
			}
			cost += d.cfg.Costs.UnmapPage * sim.Duration(run)
			d.c.PagesUnmapped += int64(run)
			cost += d.invalidate(m.IOVAs[i], run, iotlbOnly)
			if iotlbOnly && len(res.Reclaimed) > 0 {
				d.mmu.InvalidateReclaimedIn(d.domID, res.Reclaimed)
				d.c.Reclaims += int64(len(res.Reclaimed))
			}
			// Release chunk slots; free the chunk once fully released.
			ch := m.chunks[i]
			ch.released += run
			if ch.released == ch.pages {
				cost += d.freeIOVA(d.txFreeCPU(m.cpu), ch.base, ch.pages)
				if d.txChunks[m.cpu] == ch {
					d.txChunks[m.cpu] = nil
				}
			}
			i = j
		}

	case DeferNoShootdown:
		// The unsafe strawman: ranged unmaps like FNS but no invalidation
		// requests, chunk slots recycle immediately.
		i := 0
		for i < len(m.IOVAs) {
			j := i + 1
			for j < len(m.IOVAs) &&
				m.IOVAs[j] == m.IOVAs[j-1]+ptable.PageSize &&
				m.chunks[j] == m.chunks[i] {
				j++
			}
			run := j - i
			if _, err := d.table.Unmap(m.IOVAs[i], uint64(run)*ptable.PageSize); err != nil {
				return cost, err
			}
			cost += d.cfg.Costs.UnmapPage * sim.Duration(run)
			d.c.PagesUnmapped += int64(run)
			ch := m.chunks[i]
			ch.released += run
			if ch.released == ch.pages {
				cost += d.freeIOVA(d.txFreeCPU(m.cpu), ch.base, ch.pages)
				if d.txChunks[m.cpu] == ch {
					d.txChunks[m.cpu] = nil
				}
			}
			i = j
		}

	default:
		return 0, fmt.Errorf("core: unhandled mode %v", d.cfg.Mode)
	}

	d.c.TxPacketsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}
