package core

import (
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// Tx datapath. Unlike Rx descriptors, Tx packets arrive one at a time from
// the stack and each packet needs its own page-sized mappings (§3). Under
// F&S, per-CPU descriptor-sized IOVA chunks are filled *across* packets in
// transmission order, so invalidations can still be ranged. The per-mode
// bodies live with their policies (policy.go, cap.go).

// txPool is the per-CPU freelist of persistent pre-mapped Tx pages.
type txPool struct {
	free []ptable.IOVA
}

// MapTx maps a Tx packet occupying the given number of pages on cpu.
func (d *Domain) MapTx(cpu, pages int) (*TxMapping, sim.Duration, error) {
	if pages <= 0 {
		pages = 1
	}
	m, cost, err := d.pol.mapTx(d, cpu, pages)
	if m != nil {
		m.pol = d.pol
	}
	return m, cost, err
}

func (d *Domain) txPools(cpu int) *txPool {
	if d.txPool == nil {
		d.txPool = make([]*txPool, d.cfg.NumCPUs)
	}
	if d.txPool[cpu] == nil {
		d.txPool[cpu] = &txPool{}
	}
	return d.txPool[cpu]
}

// UnmapTx completes a Tx packet: unmap its pages and invalidate (or
// revoke) per the policy that mapped it — a packet in flight across a
// runtime mode switch completes under the rules that laid it out.
// Strict safety requires the device to lose access as soon as the
// packet completes, so even F&S invalidates here — but ranged over each
// contiguous run the packet occupies within its chunks.
func (d *Domain) UnmapTx(m *TxMapping) (sim.Duration, error) {
	pol := m.pol
	if pol == nil {
		pol = d.pol
	}
	return pol.unmapTx(d, m)
}
