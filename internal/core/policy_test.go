package core

import (
	"strings"
	"testing"
)

// TestPolicyPredicatesMatchPreRefactorTable locks the policy seam to the
// predicate tables the Mode methods hardcoded before the refactor: for
// every registered mode, the policy's (Translated, StrictSafety,
// Contiguous, PreservesPTCaches) tuple — and the Mode methods that now
// delegate to it — must reproduce the old switch statements exactly.
// The capability rows state the family's contract: eager cap is
// strict-equivalent, lazy revocation gives that up the way deferred
// gives up strict's.
func TestPolicyPredicatesMatchPreRefactorTable(t *testing.T) {
	table := []struct {
		mode                                  Mode
		translated, strict, contig, preserves bool
	}{
		{Off, false, false, false, false},
		{Strict, true, true, false, false},
		{Deferred, true, false, false, false},
		{StrictPreserve, true, true, false, true},
		{StrictContig, true, true, true, false},
		{FNS, true, true, true, true},
		{Persistent, true, false, false, false},
		{FNSHuge, true, false, true, true},
		{DeferNoShootdown, true, false, true, false},
		{Cap, true, true, true, true},
		{CapLazyRevoke, true, false, true, true},
	}
	if len(table) != len(policies) {
		t.Fatalf("predicate table covers %d modes, registry has %d", len(table), len(policies))
	}
	for _, row := range table {
		pol, ok := PolicyFor(row.mode)
		if !ok {
			t.Fatalf("%v: no registered policy", row.mode)
		}
		if pol.Mode() != row.mode {
			t.Fatalf("%v: policy reports mode %v", row.mode, pol.Mode())
		}
		got := [4]bool{pol.Translated(), pol.StrictSafety(), pol.Contiguous(), pol.PreservesPTCaches()}
		viaMode := [4]bool{row.mode.Translated(), row.mode.StrictSafety(), row.mode.Contiguous(), row.mode.PreservesPTCaches()}
		want := [4]bool{row.translated, row.strict, row.contig, row.preserves}
		if got != want {
			t.Fatalf("%v: policy predicates %v, want %v", row.mode, got, want)
		}
		if viaMode != want {
			t.Fatalf("%v: Mode-method predicates %v, want %v", row.mode, viaMode, want)
		}
	}
}

// TestEveryModeConstructs is the registry regression: every presentation
// mode, both strawmen, and the capability family must construct a Domain
// through the policy lookup; an unregistered mode must fail at
// construction time with an error naming the valid modes.
func TestEveryModeConstructs(t *testing.T) {
	all := append(Modes(), DeferNoShootdown, Cap, CapLazyRevoke)
	for _, m := range all {
		if _, err := NewDomain(Config{Mode: m, NumCPUs: 1, DescriptorPages: 4}); err != nil {
			t.Fatalf("%v: NewDomain: %v", m, err)
		}
	}
	_, err := NewDomain(Config{Mode: Mode(97), NumCPUs: 1, DescriptorPages: 4})
	if err == nil {
		t.Fatal("unregistered mode constructed a domain")
	}
	for _, name := range []string{"strict", "fns", "cap", "cap-lazyrevoke"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("construction error %q does not name valid mode %q", err, name)
		}
	}
}

// TestParseModeRejectionNamesCapabilityModes: both new modes must parse,
// and a rejected spec's error must list them among the valid names so a
// user who typos "cap" discovers the family exists.
func TestParseModeRejectionNamesCapabilityModes(t *testing.T) {
	for s, want := range map[string]Mode{"cap": Cap, "cap-lazyrevoke": CapLazyRevoke} {
		m, err := ParseMode(s)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", s, err)
		}
		if m != want || m.String() != s {
			t.Fatalf("ParseMode(%q) = %v (String %q)", s, m, m.String())
		}
	}
	_, err := ParseMode("capability")
	if err == nil {
		t.Fatal("ParseMode accepted junk")
	}
	for _, name := range []string{"cap", "cap-lazyrevoke"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("rejection %q does not name %q", err, name)
		}
	}
}

// TestValidModeNamesCoversRegistry: the shared name table both parsers
// print must cover exactly the registered policies, lead with the
// presentation modes in Modes() order, and round-trip through ParseMode.
func TestValidModeNamesCoversRegistry(t *testing.T) {
	names := ValidModeNames()
	if len(names) != len(policies) {
		t.Fatalf("ValidModeNames lists %d names, registry has %d policies", len(names), len(policies))
	}
	for i, m := range Modes() {
		if names[i] != m.String() {
			t.Fatalf("name %d = %q, want presentation mode %q", i, names[i], m.String())
		}
	}
	for _, s := range names {
		m, err := ParseMode(s)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", s, err)
		}
		if _, ok := PolicyFor(m); !ok {
			t.Fatalf("%q parses to %v with no policy", s, m)
		}
	}
}
