package core

import (
	"fmt"
	"math/rand"
	"strings"

	"fastsafe/internal/ats"
	"fastsafe/internal/fault"
	"fastsafe/internal/iommu"
	"fastsafe/internal/iova"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// CostModel gives the CPU time charged for each driver-side protection
// operation. The values matter relative to the per-packet network-stack
// cost: strict mode submits one invalidation request per page and waits
// for completion [39], F&S submits one per descriptor (§3, Figure 6).
type CostModel struct {
	CacheAlloc sim.Duration // IOVA alloc/free served by a magazine
	TreeAlloc  sim.Duration // IOVA alloc/free hitting the red-black tree
	// TreeNodeVisit is charged per tree node touched while searching for a
	// gap — the worst-case linear scans Peleg et al. [39] measured.
	TreeNodeVisit sim.Duration
	MapPage       sim.Duration // installing one 4KB page-table entry
	UnmapPage     sim.Duration // clearing one 4KB page-table entry
	InvRequest    sim.Duration // submitting one invalidation request and
	// waiting for the IOMMU to complete it
	// ATCInvRequest is the additional completion latency of the ATC-
	// invalidate message class: the shootdown round-trips over PCIe to
	// the device and back before the invalidation completes. Charged
	// only when the domain has a device-side ATS cache attached.
	ATCInvRequest sim.Duration
	// CapGrant/CapRevoke are the capability family's per-page costs:
	// installing (or overwriting) one entry in the per-domain capability
	// table, and killing one. Both are O(1) table updates with no
	// invalidation-queue round trip — that asymmetry against InvRequest
	// is the whole point of the CAPIO-style design.
	CapGrant  sim.Duration
	CapRevoke sim.Duration
}

// DefaultCosts are calibrated so that, with the default per-packet stack
// cost in internal/host, five cores saturate 100Gbps with the IOMMU off
// (as in §2.2's setup) while strict-mode per-page operations add visible
// but non-bottleneck CPU load — matching the paper's observation that CPU
// was far from saturated when the IOMMU throttled throughput.
func DefaultCosts() CostModel {
	return CostModel{
		CacheAlloc:    25,
		TreeAlloc:     400,
		TreeNodeVisit: 15,
		MapPage:       60,
		UnmapPage:     60,
		InvRequest:    250,
		ATCInvRequest: 450,
		CapGrant:      90,
		CapRevoke:     90,
	}
}

// Config configures a protection Domain.
type Config struct {
	Mode            Mode
	NumCPUs         int // per-CPU IOVA caches and Tx chunks
	DescriptorPages int // pages per Rx descriptor (64 on CX-5)
	DeferredLimit   int // deferred mode: pending unmaps before a global flush (Linux: 256)
	// TxFreeCPUShift models Tx-completion interrupt steering: Tx buffers
	// are unmapped (and their IOVAs freed) on a core offset from the one
	// that allocated them. This is the cross-CPU magazine migration that
	// degrades IOVA locality over time (§2.2, citing [32]). 0 disables.
	TxFreeCPUShift int
	// FreePoolSize models out-of-order application buffer consumption:
	// unmapped IOVAs enter a bounded pool and are released to the
	// allocator in random order, interleaving descriptors and cores the
	// way real page consumption does. This is the "poor locality between
	// allocated IOVAs" root cause of §2.2 — without it, the simulator's
	// recycling is unrealistically tidy. 0 disables (frees are
	// immediate); the host wiring enables it for realism.
	FreePoolSize int
	// Seed drives the free pool's deterministic shuffle.
	Seed  int64
	Costs CostModel    // zero value takes DefaultCosts
	IOMMU iommu.Config // cache geometry (ignored when SharedIOMMU is set)
	// SharedIOMMU attaches this domain to an existing IOMMU instead of
	// creating a private one: the domain gets its own IOVA space and IO
	// page table but shares the IOTLB, page-table caches and walkers —
	// how multiple devices coexist on one root complex.
	SharedIOMMU *iommu.IOMMU
	// DefaultDomain, with SharedIOMMU set, attaches as the IOMMU's
	// pre-existing default domain 0 instead of creating a fresh one. The
	// host gives the primary device domain 0 so a host-owned IOMMU is
	// indistinguishable (same domain tags, same cache indexing) from the
	// legacy layout where the primary device's domain created the IOMMU.
	DefaultDomain bool
	TraceL3       bool // record PTcache-L3 reuse-distance trace at allocation
	TraceLimit    int  // max trace points (0 = unlimited)
	// Faults, when non-nil, injects invalidation-queue and allocator
	// faults into this domain's datapaths (see internal/fault). Nil — the
	// default — leaves every datapath byte-identical to the pre-fault
	// code: all fault hooks sit behind nil checks and consume no
	// randomness.
	Faults *fault.Injector
	// ATS, with Entries > 0, fronts the domain's translations with a
	// device-side ATS translation cache (see internal/ats): DMAs
	// translate through the device TLB, invalidations send an extra
	// ATC-invalidate message (Costs.ATCInvRequest), and misses pay an
	// ATS request with PRI fallback. Zero Entries — the default —
	// routes straight to the IOMMU, byte-identical to the pre-seam code.
	ATS ats.Config
}

func (c Config) withDefaults() Config {
	if c.NumCPUs <= 0 {
		c.NumCPUs = 1
	}
	if c.DescriptorPages <= 0 {
		c.DescriptorPages = 64
	}
	if c.DeferredLimit <= 0 {
		c.DeferredLimit = 256
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	return c
}

// Descriptor is a prepared Rx descriptor: page-sized IOVAs in the order
// the NIC will DMA into them.
type Descriptor struct {
	IOVAs []ptable.IOVA
	cpu   int
	// contiguous base/pages when the mode allocates one chunk
	base   ptable.IOVA
	contig bool
	// persistent mode: descriptor is recycled, never unmapped
	persistent bool
	// FNSHuge: the 2MB chunk this descriptor was carved from
	huge *hugeChunk
	// pol is the policy that mapped this descriptor. Unmap and remap
	// dispatch through it, so a descriptor in flight across a runtime
	// mode switch completes under the rules that laid it out.
	pol Policy
}

// TxMapping is a mapped Tx packet: one IOVA per page.
type TxMapping struct {
	IOVAs []ptable.IOVA
	cpu   int
	// chunk slots used (FNS/StrictContig/FNSHuge Tx)
	chunks []*txChunk
	// pol is the policy that mapped this packet (see Descriptor.pol).
	pol Policy
}

// txChunk is a per-CPU descriptor-sized IOVA chunk filled across Tx
// packets (§3's Tx generalisation).
type txChunk struct {
	base     ptable.IOVA
	pages    int
	next     int // next unmapped slot
	released int // slots unmapped so far
}

// Counters aggregates driver-side work.
type Counters struct {
	RxDescriptorsMapped   int64
	RxDescriptorsUnmapped int64
	TxPacketsMapped       int64
	TxPacketsUnmapped     int64
	PagesMapped           int64
	PagesUnmapped         int64
	IOVAAllocs            int64
	IOVAFrees             int64
	InvRequests           int64
	DeferredFlushes       int64
	Reclaims              int64
	CPUTime               sim.Duration // total protection CPU time charged
}

// Domain is a protection domain: the coupling of an IOMMU, an IOVA
// allocator and a protection-mode datapath.
type Domain struct {
	cfg   Config
	knobs Knobs
	pol   Policy
	mmu   *iommu.IOMMU
	domID iommu.DomainID
	table *ptable.Table
	alloc *iova.CachedAllocator
	c     Counters

	// trans is the translation seam: the direct IOMMU path, or an
	// ats.Cache wrapping it when Config.ATS is enabled.
	trans iommu.Translator
	atc   *ats.Cache // non-nil iff ATS is enabled

	physNext uint64 // bump allocator for distinct fake physical pages

	txChunks []*txChunk   // per CPU
	txPool   []*txPool    // per CPU, persistent mode
	hugeRx   []*hugeChunk // per CPU, FNSHuge mode

	// deferred mode state
	deferredPending []pendingFree
	// capability family state: the per-domain grant table registered
	// with the IOMMU, plus the lazy-revoke batches (see cap.go)
	caps            *iommu.CapTable
	capRevokes      []pendingFree // granted ranges whose caps die at the next flush
	capFrees        []pendingFree // IOVA ranges released only at the flush
	capRegrants     []capRegrant  // window re-grants deferred to the flush
	capPendingPages int
	// persistent mode descriptor pool, per CPU
	pool [][]*Descriptor
	// out-of-order consumption pool (see Config.FreePoolSize)
	freePool []pendingFree
	rng      *rand.Rand

	trace *stats.ReuseTrace
}

type pendingFree struct {
	base  ptable.IOVA
	pages int
	cpu   int
}

// NewDomain builds a protection domain. A mode with no registered
// policy is a construction-time error — the datapaths carry no
// "unhandled mode" branches.
func NewDomain(cfg Config) (*Domain, error) {
	cfg = cfg.withDefaults()
	pol, ok := PolicyFor(cfg.Mode)
	if !ok {
		return nil, fmt.Errorf("core: mode %v has no registered policy (valid: %s)",
			cfg.Mode, strings.Join(ValidModeNames(), ", "))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	mmu := cfg.SharedIOMMU
	var domID iommu.DomainID
	if mmu == nil {
		mmu = iommu.New(cfg.IOMMU)
	} else if !cfg.DefaultDomain {
		domID = mmu.CreateDomain()
	}
	d := &Domain{
		cfg:      cfg,
		knobs:    Knobs{Mode: cfg.Mode, DeferredLimit: cfg.DeferredLimit, FlushInterval: DefaultFlushInterval},
		pol:      pol,
		mmu:      mmu,
		domID:    domID,
		table:    mmu.TableOf(domID),
		alloc:    iova.NewCached(cfg.NumCPUs),
		txChunks: make([]*txChunk, cfg.NumCPUs),
		hugeRx:   make([]*hugeChunk, cfg.NumCPUs),
		pool:     make([][]*Descriptor, cfg.NumCPUs),
		// Fake physical pages: distinct per domain so cross-domain tests
		// can verify isolation by comparing resolved addresses.
		physNext: 1<<30 + uint64(domID)<<40,
		rng:      rand.New(rand.NewSource(seed)),
	}
	d.trans = mmu.TranslatorOf(domID)
	if capabilityMode(cfg.Mode) {
		// Capability domains validate DMAs against the grant table, not
		// the walked page tables, so a device-side ATS cache would hold
		// translations no revocation could reach. The family forbids it.
		d.caps = mmu.AttachCapTable(domID)
	} else if cfg.ATS.Entries > 0 {
		d.atc = ats.New(mmu, domID, d.trans, cfg.ATS)
		d.trans = d.atc
	}
	if cfg.TraceL3 {
		d.trace = stats.NewReuseTrace(cfg.TraceLimit)
	}
	if cfg.Faults != nil {
		// Forced rcache flushes (allocator pressure) target every domain
		// attached to the plan.
		cfg.Faults.AttachFlusher(d.alloc.FlushRCaches)
	}
	return d, nil
}

// Mode returns the domain's current protection mode (live: a runtime
// knob switch changes it).
func (d *Domain) Mode() Mode { return d.knobs.Mode }

// DescriptorPages returns the configured pages per Rx descriptor.
func (d *Domain) DescriptorPages() int { return d.cfg.DescriptorPages }

// IOMMU returns the (possibly shared) IOMMU.
func (d *Domain) IOMMU() *iommu.IOMMU { return d.mmu }

// ID returns the domain's identifier within the IOMMU.
func (d *Domain) ID() iommu.DomainID { return d.domID }

// Translate performs one PCIe-transaction translation in this domain,
// through the device's ATS cache when one is attached.
func (d *Domain) Translate(v ptable.IOVA) iommu.Translation {
	return d.trans.Translate(v)
}

// ATC returns the domain's device-side ATS cache (nil when disabled).
func (d *Domain) ATC() *ats.Cache { return d.atc }

// Counters returns driver-side counters.
func (d *Domain) Counters() Counters { return d.c }

// AllocatorStats returns the IOVA allocator counters.
func (d *Domain) AllocatorStats() iova.Stats { return d.alloc.Stats() }

// Trace returns the PTcache-L3 reuse-distance trace (nil unless TraceL3).
func (d *Domain) Trace() *stats.ReuseTrace { return d.trace }

func (d *Domain) newPhys() ptable.Phys {
	p := ptable.Phys(d.physNext << ptable.PageShift)
	d.physNext++
	return p
}

// allocIOVA allocates a range and returns its base plus the CPU cost,
// recording the locality trace per 4KB page in NIC access order.
func (d *Domain) allocIOVA(cpu, pages int) (ptable.IOVA, sim.Duration, error) {
	var fcost sim.Duration
	if inj := d.cfg.Faults; inj != nil && inj.FailAlloc(d.domID) {
		// Transient allocator failure: the driver backs off and retries
		// through the slow tree path before succeeding below.
		fcost = d.cfg.Costs.TreeAlloc
	}
	before := d.alloc.Stats()
	base, ok := d.alloc.Alloc(cpu, pages)
	if !ok {
		return 0, 0, fmt.Errorf("core: IOVA space exhausted (%d pages)", pages)
	}
	after := d.alloc.Stats()
	cost := d.cfg.Costs.CacheAlloc
	if after.TreeAllocs > before.TreeAllocs {
		cost = d.cfg.Costs.TreeAlloc +
			d.cfg.Costs.TreeNodeVisit*sim.Duration(after.NodesVisited-before.NodesVisited)
	}
	d.c.IOVAAllocs++
	return base, cost + fcost, nil
}

// invalidate submits one invalidation-queue request covering
// [base, base+pages*4KB) and models the driver waiting for its
// completion, including injected faults: a delayed completion stalls the
// driver, a lost one stalls until the driver's timeout fires and the
// request is resubmitted. The cache effects are applied regardless — a
// lost *completion* does not un-invalidate anything — so every mode that
// waits for completion stays safe and the injection surfaces only as
// extra CPU time plus a benign retry in the audit report.
func (d *Domain) invalidate(base ptable.IOVA, pages int, iotlbOnly bool) sim.Duration {
	d.trans.Invalidate(base, pages, iotlbOnly)
	cost := d.invRequestCost()
	d.c.InvRequests++
	if inj := d.cfg.Faults; inj != nil {
		cost += inj.DelayInv(d.domID)
		if inj.DropInv(d.domID) {
			d.trans.Invalidate(base, pages, iotlbOnly)
			cost += inj.Plan().InvTimeout + d.invRequestCost()
			d.c.InvRequests++
		}
	}
	return cost
}

// invRequestCost is the completion wait per invalidation-queue request:
// the base request, plus the ATC-invalidate message round trip when the
// domain's device caches translations.
func (d *Domain) invRequestCost() sim.Duration {
	cost := d.cfg.Costs.InvRequest
	if d.atc != nil {
		cost += d.cfg.Costs.ATCInvRequest
	}
	return cost
}

// flushInvalidate is invalidate's analogue for the deferred-mode global
// flush (one flush-all invalidation-queue request).
func (d *Domain) flushInvalidate() sim.Duration {
	d.trans.InvalidateAll()
	cost := d.invRequestCost()
	d.c.InvRequests++
	if inj := d.cfg.Faults; inj != nil {
		cost += inj.DelayInv(d.domID)
		if inj.DropInv(d.domID) {
			d.trans.InvalidateAll()
			cost += inj.Plan().InvTimeout + d.invRequestCost()
			d.c.InvRequests++
		}
	}
	return cost
}

// freeIOVA releases a range back to the allocator. With a free pool
// configured, the release is deferred and reordered: the range joins the
// pool and a random pooled range is released instead once the pool is
// full — modelling application threads consuming (and thus releasing)
// buffers out of descriptor order.
func (d *Domain) freeIOVA(cpu int, base ptable.IOVA, pages int) sim.Duration {
	if d.cfg.FreePoolSize > 0 {
		d.freePool = append(d.freePool, pendingFree{base, pages, cpu})
		if len(d.freePool) <= d.cfg.FreePoolSize {
			return d.cfg.Costs.CacheAlloc
		}
		i := d.rng.Intn(len(d.freePool))
		p := d.freePool[i]
		d.freePool[i] = d.freePool[len(d.freePool)-1]
		d.freePool = d.freePool[:len(d.freePool)-1]
		base, pages, cpu = p.base, p.pages, p.cpu
	}
	d.alloc.Free(cpu, base, pages)
	d.c.IOVAFrees++
	return d.cfg.Costs.CacheAlloc
}

// txFreeCPU returns the core a Tx completion's IOVA frees on.
func (d *Domain) txFreeCPU(cpu int) int {
	if d.cfg.TxFreeCPUShift == 0 {
		return cpu
	}
	return (cpu + d.cfg.TxFreeCPUShift) % d.cfg.NumCPUs
}

// traceAccess records the PTcache-L3 key of an allocated page-sized IOVA.
func (d *Domain) traceAccess(v ptable.IOVA) {
	if d.trace != nil {
		d.trace.Access(v.L3Key())
	}
}

// MapRxDescriptor prepares an Rx descriptor of the configured page count
// on cpu's ring (§2.1 step 1). It returns the descriptor and the CPU time
// spent. In Off mode IOVAs are identities for fresh physical pages.
func (d *Domain) MapRxDescriptor(cpu int) (*Descriptor, sim.Duration, error) {
	desc, cost, err := d.pol.mapRx(d, cpu)
	if desc != nil {
		desc.pol = d.pol
	}
	return desc, cost, err
}

// descPolicy resolves the policy a descriptor completes under: the one
// that mapped it, falling back to the bound policy for descriptors
// built outside MapRxDescriptor (tests constructing bare values).
func (d *Domain) descPolicy(desc *Descriptor) Policy {
	if desc.pol != nil {
		return desc.pol
	}
	return d.pol
}

// UnmapRxDescriptor completes an Rx descriptor (§2.1 step 4): unmap every
// page, invalidate (or revoke) per the policy that mapped it, free the
// IOVAs.
func (d *Domain) UnmapRxDescriptor(desc *Descriptor) (sim.Duration, error) {
	return d.descPolicy(desc).unmapRx(d, desc)
}

// RemapRxDescriptor rotates the buffers behind a registered descriptor:
// one-sided RDMA peers address a memory window by fixed offsets for the
// life of the registration, so the IOVA layout is preserved while every
// page is unmapped — paying the mode's invalidation policy, including
// the ATC shoot-down when a device cache is attached — and remapped to
// fresh physical pages. This is exactly where an unsafe mode shows:
// DeferNoShootdown re-points the pages with no invalidation at all, so
// the IOTLB and any device-side ATC keep serving the old physical
// addresses for IOVAs that are still mapped — just not there.
func (d *Domain) RemapRxDescriptor(desc *Descriptor) (sim.Duration, error) {
	return d.descPolicy(desc).remapRx(d, desc)
}

// maybeFlushDeferred performs the deferred-mode global flush once enough
// unmaps are pending (Linux lazy mode flushes the whole IOTLB).
func (d *Domain) maybeFlushDeferred() sim.Duration {
	if len(d.deferredPending) < d.knobs.DeferredLimit {
		return 0
	}
	cost := d.flushInvalidate()
	d.c.DeferredFlushes++
	for _, p := range d.deferredPending {
		cost += d.freeIOVA(p.cpu, p.base, p.pages)
	}
	d.deferredPending = d.deferredPending[:0]
	return cost
}

// PendingDeferred reports unmapped-but-not-invalidated pages (deferred
// mode's unsafe window) — or, for cap-lazyrevoke, unmapped-but-not-
// revoked pages (the capability analogue).
func (d *Domain) PendingDeferred() int {
	return len(d.deferredPending) + d.capPendingPages
}

// FlushDeferred forces the batch flush regardless of the pending count
// — the timer path of Linux's lazy mode, reused by cap-lazyrevoke for
// the revocation batch. It drains both batch kinds unconditionally (a
// mode switch can leave the foreign batch non-empty until in-flight
// mappings complete), so it is a no-op exactly when nothing is pending.
// Returns the CPU cost, already charged to the domain.
func (d *Domain) FlushDeferred() sim.Duration {
	cost := d.drainDeferred()
	if c := d.capFlush(); c > 0 {
		d.c.CPUTime += c
		cost += c
	}
	return cost
}

// drainDeferred flushes the deferred-invalidation batch: one flush-all
// invalidation, then the batched IOVA frees. Self-charging.
func (d *Domain) drainDeferred() sim.Duration {
	if len(d.deferredPending) == 0 {
		return 0
	}
	cost := d.flushInvalidate()
	d.c.DeferredFlushes++
	for _, p := range d.deferredPending {
		cost += d.freeIOVA(p.cpu, p.base, p.pages)
	}
	d.deferredPending = d.deferredPending[:0]
	d.c.CPUTime += cost
	return cost
}

// MapPersistentPages maps pages 4KB pages that live for the domain's whole
// lifetime, as dma_alloc_coherent does for descriptor rings: mapped once
// at driver init and never unmapped, in every protection mode. In Off mode
// the returned IOVAs are physical identities.
func (d *Domain) MapPersistentPages(cpu, pages int) ([]ptable.IOVA, error) {
	out := make([]ptable.IOVA, 0, pages)
	if d.knobs.Mode == Off {
		for i := 0; i < pages; i++ {
			out = append(out, ptable.IOVA(d.newPhys()))
		}
		return out, nil
	}
	base, _, err := d.allocIOVA(cpu, pages)
	if err != nil {
		return nil, err
	}
	for i := 0; i < pages; i++ {
		v := base + ptable.IOVA(i*ptable.PageSize)
		p := d.newPhys()
		if err := d.table.Map(v, p); err != nil {
			return nil, err
		}
		if d.caps != nil {
			// Capability domains reach persistent pages (descriptor
			// rings) through standing grants installed at driver init.
			d.caps.Grant(v, p)
		}
		out = append(out, v)
	}
	return out, nil
}
