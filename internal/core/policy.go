package core

import (
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// The protection-policy seam. Every Mode resolves to a Policy when the
// Domain is constructed, and the Domain's public datapath methods
// (MapRxDescriptor, UnmapRxDescriptor, RemapRxDescriptor, MapTx, UnmapTx,
// FlushDeferred) dispatch through it — the mode switches that used to
// live in domain.go and tx.go became the method sets below. Mode stays
// the stable parse/print surface; adding a protection design means
// registering a new Policy, not editing the hottest file in the tree.

// Policy is one protection design's datapath: how Rx descriptors are
// prepared, completed and remapped, how Tx packets are mapped and
// unmapped, and what the design guarantees (the predicate methods, which
// the corresponding Mode methods delegate to). The hooks are unexported:
// policies manipulate Domain internals and live in this package; outside
// callers select one by Mode and drive it through the Domain methods.
type Policy interface {
	// Mode returns the mode this policy is registered under.
	Mode() Mode
	// Translated reports whether DMA addresses pass through the IOMMU's
	// protection check (address translation or capability validation).
	Translated() bool
	// StrictSafety reports whether the device provably loses access to a
	// buffer as soon as its descriptor (or Tx packet) completes.
	StrictSafety() bool
	// Contiguous reports whether descriptor-sized (or larger) contiguous
	// IOVA chunks are allocated.
	Contiguous() bool
	// PreservesPTCaches reports whether invalidations keep the IOMMU's
	// page-table caches (F&S idea A).
	PreservesPTCaches() bool

	mapRx(d *Domain, cpu int) (*Descriptor, sim.Duration, error)
	unmapRx(d *Domain, desc *Descriptor) (sim.Duration, error)
	remapRx(d *Domain, desc *Descriptor) (sim.Duration, error)
	mapTx(d *Domain, cpu, pages int) (*TxMapping, sim.Duration, error)
	unmapTx(d *Domain, m *TxMapping) (sim.Duration, error)
}

// predicates carries a policy's identity and guarantee tuple.
type predicates struct {
	mode                          Mode
	translated, strict            bool
	contiguous, preservesPTCaches bool
}

func (p predicates) Mode() Mode              { return p.mode }
func (p predicates) Translated() bool        { return p.translated }
func (p predicates) StrictSafety() bool      { return p.strict }
func (p predicates) Contiguous() bool        { return p.contiguous }
func (p predicates) PreservesPTCaches() bool { return p.preservesPTCaches }

// policies is the registry the Mode surface resolves through. An
// unregistered mode is a construction-time error in NewDomain — the
// runtime `unhandled mode` branches are gone.
var policies = map[Mode]Policy{
	Off:              offPolicy{predicates: predicates{mode: Off}},
	Strict:           pagedPolicy{predicates: predicates{mode: Strict, translated: true, strict: true}},
	Deferred:         deferredPolicy{predicates: predicates{mode: Deferred, translated: true}},
	StrictPreserve:   pagedPolicy{predicates: predicates{mode: StrictPreserve, translated: true, strict: true, preservesPTCaches: true}},
	StrictContig:     contigPolicy{predicates: predicates{mode: StrictContig, translated: true, strict: true, contiguous: true}},
	FNS:              contigPolicy{predicates: predicates{mode: FNS, translated: true, strict: true, contiguous: true, preservesPTCaches: true}},
	Persistent:       persistentPolicy{predicates: predicates{mode: Persistent, translated: true}},
	FNSHuge:          hugePolicy{predicates: predicates{mode: FNSHuge, translated: true, contiguous: true, preservesPTCaches: true}},
	DeferNoShootdown: noShootdownPolicy{predicates: predicates{mode: DeferNoShootdown, translated: true, contiguous: true}},
	Cap:              capPolicy{predicates: predicates{mode: Cap, translated: true, strict: true, contiguous: true, preservesPTCaches: true}},
	CapLazyRevoke:    capPolicy{predicates: predicates{mode: CapLazyRevoke, translated: true, contiguous: true, preservesPTCaches: true}, lazy: true},
}

// PolicyFor resolves a mode to its registered policy.
func PolicyFor(m Mode) (Policy, bool) {
	p, ok := policies[m]
	return p, ok
}

// ---------------------------------------------------------------------------
// Off: no IOMMU, IOVAs are physical identities.

type offPolicy struct {
	predicates
}

func (offPolicy) mapRx(d *Domain, cpu int) (*Descriptor, sim.Duration, error) {
	pages := d.cfg.DescriptorPages
	desc := &Descriptor{cpu: cpu}
	for i := 0; i < pages; i++ {
		desc.IOVAs = append(desc.IOVAs, ptable.IOVA(d.newPhys()))
	}
	return desc, 0, nil
}

func (offPolicy) unmapRx(*Domain, *Descriptor) (sim.Duration, error) { return 0, nil }

func (offPolicy) remapRx(*Domain, *Descriptor) (sim.Duration, error) { return 0, nil }

func (offPolicy) mapTx(d *Domain, cpu, pages int) (*TxMapping, sim.Duration, error) {
	m := &TxMapping{cpu: cpu}
	for i := 0; i < pages; i++ {
		m.IOVAs = append(m.IOVAs, ptable.IOVA(d.newPhys()))
	}
	return m, 0, nil
}

func (offPolicy) unmapTx(*Domain, *TxMapping) (sim.Duration, error) { return 0, nil }

// ---------------------------------------------------------------------------
// Strict / StrictPreserve: default Linux — per-page IOVAs, per-page
// invalidation requests (Figure 6a). StrictPreserve is ablation A:
// invalidations keep the page-table caches.

type pagedPolicy struct {
	predicates
}

func (pagedPolicy) mapRx(d *Domain, cpu int) (*Descriptor, sim.Duration, error) {
	return d.mapRxPaged(cpu)
}

func (p pagedPolicy) unmapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	// Per-page unmap, per-page invalidation request (Figure 6a).
	var cost sim.Duration
	iotlbOnly := p.PreservesPTCaches()
	for _, v := range desc.IOVAs {
		res, err := d.table.Unmap(v, ptable.PageSize)
		if err != nil {
			return cost, err
		}
		cost += d.cfg.Costs.UnmapPage
		d.c.PagesUnmapped++
		cost += d.invalidate(v, 1, iotlbOnly)
		if iotlbOnly && len(res.Reclaimed) > 0 {
			d.mmu.InvalidateReclaimedIn(d.domID, res.Reclaimed)
			d.c.Reclaims += int64(len(res.Reclaimed))
		}
		cost += d.freeIOVA(desc.cpu, v, 1)
	}
	d.c.RxDescriptorsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}

func (p pagedPolicy) remapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	return d.remapRxPaged(desc, p.PreservesPTCaches())
}

func (pagedPolicy) mapTx(d *Domain, cpu, pages int) (*TxMapping, sim.Duration, error) {
	return d.mapTxPaged(cpu, pages)
}

func (p pagedPolicy) unmapTx(d *Domain, m *TxMapping) (sim.Duration, error) {
	var cost sim.Duration
	iotlbOnly := p.PreservesPTCaches()
	for _, v := range m.IOVAs {
		res, err := d.table.Unmap(v, ptable.PageSize)
		if err != nil {
			return cost, err
		}
		cost += d.cfg.Costs.UnmapPage
		d.c.PagesUnmapped++
		cost += d.invalidate(v, 1, iotlbOnly)
		if iotlbOnly && len(res.Reclaimed) > 0 {
			d.mmu.InvalidateReclaimedIn(d.domID, res.Reclaimed)
			d.c.Reclaims += int64(len(res.Reclaimed))
		}
		cost += d.freeIOVA(d.txFreeCPU(m.cpu), v, 1)
	}
	d.c.TxPacketsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}

// ---------------------------------------------------------------------------
// Deferred: Linux lazy mode — unmap now, batch invalidations and IOVA
// frees until a threshold (or timer) flush.

type deferredPolicy struct {
	predicates
}

func (deferredPolicy) mapRx(d *Domain, cpu int) (*Descriptor, sim.Duration, error) {
	return d.mapRxPaged(cpu)
}

func (deferredPolicy) unmapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	// Unmap now; batch the invalidation and the IOVA free until the
	// global flush.
	var cost sim.Duration
	for _, v := range desc.IOVAs {
		if _, err := d.table.Unmap(v, ptable.PageSize); err != nil {
			return cost, err
		}
		cost += d.cfg.Costs.UnmapPage
		d.c.PagesUnmapped++
		d.deferredPending = append(d.deferredPending, pendingFree{v, 1, desc.cpu})
	}
	cost += d.maybeFlushDeferred()
	d.c.RxDescriptorsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}

func (p deferredPolicy) remapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	// Deferred degenerates to the strict remap: a registered window's
	// IOVAs are reused immediately, so their invalidation cannot sit in
	// the deferred batch.
	return d.remapRxPaged(desc, p.PreservesPTCaches())
}

func (deferredPolicy) mapTx(d *Domain, cpu, pages int) (*TxMapping, sim.Duration, error) {
	return d.mapTxPaged(cpu, pages)
}

func (deferredPolicy) unmapTx(d *Domain, m *TxMapping) (sim.Duration, error) {
	var cost sim.Duration
	for _, v := range m.IOVAs {
		if _, err := d.table.Unmap(v, ptable.PageSize); err != nil {
			return cost, err
		}
		cost += d.cfg.Costs.UnmapPage
		d.c.PagesUnmapped++
		d.deferredPending = append(d.deferredPending, pendingFree{v, 1, d.txFreeCPU(m.cpu)})
	}
	cost += d.maybeFlushDeferred()
	d.c.TxPacketsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}

// ---------------------------------------------------------------------------
// StrictContig / FNS: descriptor-sized contiguous IOVA chunks with one
// ranged invalidation per descriptor (Figure 6b). FNS additionally keeps
// the page-table caches (idea A).

type contigPolicy struct {
	predicates
}

func (contigPolicy) mapRx(d *Domain, cpu int) (*Descriptor, sim.Duration, error) {
	return d.mapRxContig(cpu)
}

func (p contigPolicy) unmapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	return d.unmapRxContig(desc, true, p.PreservesPTCaches())
}

func (p contigPolicy) remapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	return d.remapRxContig(desc, true, p.PreservesPTCaches())
}

func (contigPolicy) mapTx(d *Domain, cpu, pages int) (*TxMapping, sim.Duration, error) {
	return d.mapTxChunked(cpu, pages)
}

func (p contigPolicy) unmapTx(d *Domain, m *TxMapping) (sim.Duration, error) {
	return d.unmapTxChunked(m, true, p.PreservesPTCaches())
}

// ---------------------------------------------------------------------------
// Persistent: mappings live forever, descriptors and Tx pages recycle —
// the DAMN [34] / hugepage-pinning [16] family. No unmap, no
// invalidation, weaker safety.

type persistentPolicy struct {
	predicates
}

func (persistentPolicy) mapRx(d *Domain, cpu int) (*Descriptor, sim.Duration, error) {
	pages := d.cfg.DescriptorPages
	// Recycle a pre-mapped descriptor when available.
	if n := len(d.pool[cpu]); n > 0 {
		desc := d.pool[cpu][n-1]
		d.pool[cpu] = d.pool[cpu][:n-1]
		d.c.RxDescriptorsMapped++
		return desc, 0, nil
	}
	// First use: build a contiguous chunk and map it permanently.
	desc := &Descriptor{cpu: cpu}
	base, cost, err := d.allocIOVA(cpu, pages)
	if err != nil {
		return nil, 0, err
	}
	desc.base, desc.contig, desc.persistent = base, true, true
	for i := 0; i < pages; i++ {
		v := base + ptable.IOVA(i*ptable.PageSize)
		if err := d.table.Map(v, d.newPhys()); err != nil {
			return nil, 0, err
		}
		d.traceAccess(v)
		desc.IOVAs = append(desc.IOVAs, v)
		cost += d.cfg.Costs.MapPage
		d.c.PagesMapped++
	}
	d.c.RxDescriptorsMapped++
	d.c.CPUTime += cost
	return desc, cost, nil
}

func (persistentPolicy) unmapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	// No unmap, no invalidation: recycle. The device retains access —
	// the weaker safety property.
	d.pool[desc.cpu] = append(d.pool[desc.cpu], desc)
	d.c.RxDescriptorsUnmapped++
	return 0, nil
}

func (persistentPolicy) remapRx(*Domain, *Descriptor) (sim.Duration, error) {
	// Persistent retains device access by design: remap is a free no-op.
	return 0, nil
}

func (persistentPolicy) mapTx(d *Domain, cpu, pages int) (*TxMapping, sim.Duration, error) {
	m := &TxMapping{cpu: cpu}
	var cost sim.Duration
	for i := 0; i < pages; i++ {
		if p := d.txPools(cpu); len(p.free) > 0 {
			v := p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			m.IOVAs = append(m.IOVAs, v)
			continue
		}
		v, c, err := d.allocIOVA(cpu, 1)
		if err != nil {
			return nil, 0, err
		}
		cost += c
		if err := d.table.Map(v, d.newPhys()); err != nil {
			return nil, 0, err
		}
		d.traceAccess(v)
		cost += d.cfg.Costs.MapPage
		d.c.PagesMapped++
		m.IOVAs = append(m.IOVAs, v)
	}
	d.c.TxPacketsMapped++
	d.c.CPUTime += cost
	return m, cost, nil
}

func (persistentPolicy) unmapTx(d *Domain, m *TxMapping) (sim.Duration, error) {
	p := d.txPools(m.cpu)
	p.free = append(p.free, m.IOVAs...)
	d.c.TxPacketsUnmapped++
	return 0, nil
}

// ---------------------------------------------------------------------------
// FNSHuge: Rx descriptors carved from 2MB huge mappings (§5 future
// work); the Tx datapath is unchanged from FNS.

type hugePolicy struct {
	predicates
}

func (hugePolicy) mapRx(d *Domain, cpu int) (*Descriptor, sim.Duration, error) {
	return d.mapRxDescriptorHuge(cpu)
}

func (hugePolicy) unmapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	return d.unmapRxDescriptorHuge(desc)
}

func (hugePolicy) remapRx(*Domain, *Descriptor) (sim.Duration, error) {
	// FNSHuge revokes at 2MB granularity only — rotating one descriptor
	// inside a shared huge chunk is impossible, so the window behaves
	// persistently (the §5 trade-off at its extreme).
	return 0, nil
}

func (hugePolicy) mapTx(d *Domain, cpu, pages int) (*TxMapping, sim.Duration, error) {
	return d.mapTxChunked(cpu, pages)
}

func (p hugePolicy) unmapTx(d *Domain, m *TxMapping) (sim.Duration, error) {
	return d.unmapTxChunked(m, true, p.PreservesPTCaches())
}

// ---------------------------------------------------------------------------
// DeferNoShootdown: the deliberately unsafe strawman — contiguous unmaps
// like FNS, but no invalidation is ever submitted.

type noShootdownPolicy struct {
	predicates
}

func (noShootdownPolicy) mapRx(d *Domain, cpu int) (*Descriptor, sim.Duration, error) {
	// The strawman maps identically to FNS; it only differs on the unmap
	// side (no shootdown).
	return d.mapRxContig(cpu)
}

func (p noShootdownPolicy) unmapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	// Ranged unmap like FNS, but no invalidation is ever submitted and
	// the IOVAs recycle immediately. Cached IOTLB/PTcache entries survive
	// past the unmap, so a later DMA — stray or legitimate after
	// recycling — can be served stale. The safety auditor exists to catch
	// exactly this.
	return d.unmapRxContig(desc, false, p.PreservesPTCaches())
}

func (p noShootdownPolicy) remapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	// The strawman: re-point the pages, never tell the caches.
	return d.remapRxContig(desc, false, p.PreservesPTCaches())
}

func (noShootdownPolicy) mapTx(d *Domain, cpu, pages int) (*TxMapping, sim.Duration, error) {
	return d.mapTxChunked(cpu, pages)
}

func (p noShootdownPolicy) unmapTx(d *Domain, m *TxMapping) (sim.Duration, error) {
	// Ranged unmaps like FNS but no invalidation requests; chunk slots
	// recycle immediately.
	return d.unmapTxChunked(m, false, p.PreservesPTCaches())
}

// ---------------------------------------------------------------------------
// Shared datapath bodies. Each is the verbatim case body of the
// pre-seam switch, used by more than one policy.

// mapRxPaged is default Linux Rx preparation: one page-sized IOVA per
// page, no contiguity (Strict, Deferred, StrictPreserve).
func (d *Domain) mapRxPaged(cpu int) (*Descriptor, sim.Duration, error) {
	pages := d.cfg.DescriptorPages
	desc := &Descriptor{cpu: cpu}
	var cost sim.Duration
	for i := 0; i < pages; i++ {
		v, c, err := d.allocIOVA(cpu, 1)
		if err != nil {
			return nil, 0, err
		}
		cost += c
		if err := d.table.Map(v, d.newPhys()); err != nil {
			return nil, 0, err
		}
		d.traceAccess(v)
		desc.IOVAs = append(desc.IOVAs, v)
		cost += d.cfg.Costs.MapPage
		d.c.PagesMapped++
	}
	d.c.RxDescriptorsMapped++
	d.c.CPUTime += cost
	return desc, cost, nil
}

// mapRxContig is F&S idea B: one descriptor-sized contiguous chunk,
// mapped page by page (Figure 4b) — no hardware or allocator changes
// (StrictContig, FNS, DeferNoShootdown).
func (d *Domain) mapRxContig(cpu int) (*Descriptor, sim.Duration, error) {
	pages := d.cfg.DescriptorPages
	desc := &Descriptor{cpu: cpu}
	base, cost, err := d.allocIOVA(cpu, pages)
	if err != nil {
		return nil, 0, err
	}
	desc.base, desc.contig = base, true
	for i := 0; i < pages; i++ {
		v := base + ptable.IOVA(i*ptable.PageSize)
		if err := d.table.Map(v, d.newPhys()); err != nil {
			return nil, 0, err
		}
		d.traceAccess(v)
		desc.IOVAs = append(desc.IOVAs, v)
		cost += d.cfg.Costs.MapPage
		d.c.PagesMapped++
	}
	d.c.RxDescriptorsMapped++
	d.c.CPUTime += cost
	return desc, cost, nil
}

// unmapRxContig completes a contiguous descriptor: one ranged unmap and
// — when inv is set — a single batched invalidation request for the
// whole descriptor (Figure 6b); iotlbOnly is the calling policy's
// PTcache-preservation predicate. The strawman passes inv=false.
func (d *Domain) unmapRxContig(desc *Descriptor, inv, iotlbOnly bool) (sim.Duration, error) {
	var cost sim.Duration
	pages := len(desc.IOVAs)
	res, err := d.table.Unmap(desc.base, uint64(pages)*ptable.PageSize)
	if err != nil {
		return cost, err
	}
	cost += d.cfg.Costs.UnmapPage * sim.Duration(pages)
	d.c.PagesUnmapped += int64(pages)
	if inv {
		cost += d.invalidate(desc.base, pages, iotlbOnly)
		if iotlbOnly && len(res.Reclaimed) > 0 {
			d.mmu.InvalidateReclaimedIn(d.domID, res.Reclaimed)
			d.c.Reclaims += int64(len(res.Reclaimed))
		}
	}
	cost += d.freeIOVA(desc.cpu, desc.base, pages)
	d.c.RxDescriptorsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}

// remapRxPaged rotates a registered window per page: unmap + eager
// per-page invalidation, then remap in place (Strict, StrictPreserve,
// Deferred); iotlbOnly is the calling policy's PTcache-preservation
// predicate.
func (d *Domain) remapRxPaged(desc *Descriptor, iotlbOnly bool) (sim.Duration, error) {
	var cost sim.Duration
	for _, v := range desc.IOVAs {
		res, err := d.table.Unmap(v, ptable.PageSize)
		if err != nil {
			return cost, err
		}
		cost += d.cfg.Costs.UnmapPage
		d.c.PagesUnmapped++
		cost += d.invalidate(v, 1, iotlbOnly)
		if iotlbOnly && len(res.Reclaimed) > 0 {
			d.mmu.InvalidateReclaimedIn(d.domID, res.Reclaimed)
			d.c.Reclaims += int64(len(res.Reclaimed))
		}
		if err := d.table.Map(v, d.newPhys()); err != nil {
			return cost, err
		}
		cost += d.cfg.Costs.MapPage
		d.c.PagesMapped++
	}
	d.c.RxDescriptorsUnmapped++
	d.c.RxDescriptorsMapped++
	d.c.CPUTime += cost
	return cost, nil
}

// remapRxContig rotates a registered window with a ranged unmap, one
// batched invalidation (when inv is set — the strawman re-points the
// pages without telling the caches), then remaps page by page;
// iotlbOnly is the calling policy's PTcache-preservation predicate.
func (d *Domain) remapRxContig(desc *Descriptor, inv, iotlbOnly bool) (sim.Duration, error) {
	var cost sim.Duration
	pages := len(desc.IOVAs)
	res, err := d.table.Unmap(desc.base, uint64(pages)*ptable.PageSize)
	if err != nil {
		return cost, err
	}
	cost += d.cfg.Costs.UnmapPage * sim.Duration(pages)
	d.c.PagesUnmapped += int64(pages)
	if inv {
		cost += d.invalidate(desc.base, pages, iotlbOnly)
		if iotlbOnly && len(res.Reclaimed) > 0 {
			d.mmu.InvalidateReclaimedIn(d.domID, res.Reclaimed)
			d.c.Reclaims += int64(len(res.Reclaimed))
		}
	}
	for _, v := range desc.IOVAs {
		if err := d.table.Map(v, d.newPhys()); err != nil {
			return cost, err
		}
		cost += d.cfg.Costs.MapPage
		d.c.PagesMapped++
	}
	d.c.RxDescriptorsUnmapped++
	d.c.RxDescriptorsMapped++
	d.c.CPUTime += cost
	return cost, nil
}

// mapTxPaged maps a Tx packet with one page-sized IOVA per page (Strict,
// Deferred, StrictPreserve).
func (d *Domain) mapTxPaged(cpu, pages int) (*TxMapping, sim.Duration, error) {
	m := &TxMapping{cpu: cpu}
	var cost sim.Duration
	for i := 0; i < pages; i++ {
		v, c, err := d.allocIOVA(cpu, 1)
		if err != nil {
			return nil, 0, err
		}
		cost += c
		if err := d.table.Map(v, d.newPhys()); err != nil {
			return nil, 0, err
		}
		d.traceAccess(v)
		cost += d.cfg.Costs.MapPage
		d.c.PagesMapped++
		m.IOVAs = append(m.IOVAs, v)
	}
	d.c.TxPacketsMapped++
	d.c.CPUTime += cost
	return m, cost, nil
}

// mapTxChunked fills per-CPU descriptor-sized IOVA chunks across packets
// in transmission order (§3's Tx generalisation: StrictContig, FNS,
// FNSHuge, DeferNoShootdown).
func (d *Domain) mapTxChunked(cpu, pages int) (*TxMapping, sim.Duration, error) {
	m := &TxMapping{cpu: cpu}
	var cost sim.Duration
	for i := 0; i < pages; i++ {
		ch := d.txChunks[cpu]
		if ch == nil || ch.next == ch.pages {
			base, c, err := d.allocIOVA(cpu, d.cfg.DescriptorPages)
			if err != nil {
				return nil, 0, err
			}
			cost += c
			ch = &txChunk{base: base, pages: d.cfg.DescriptorPages}
			d.txChunks[cpu] = ch
		}
		v := ch.base + ptable.IOVA(ch.next*ptable.PageSize)
		ch.next++
		if err := d.table.Map(v, d.newPhys()); err != nil {
			return nil, 0, err
		}
		d.traceAccess(v)
		cost += d.cfg.Costs.MapPage
		d.c.PagesMapped++
		m.IOVAs = append(m.IOVAs, v)
		m.chunks = append(m.chunks, ch)
	}
	d.c.TxPacketsMapped++
	d.c.CPUTime += cost
	return m, cost, nil
}

// unmapTxChunked completes a chunk-mapped Tx packet: the packet's pages
// are grouped into contiguous runs (they are contiguous except across a
// chunk boundary), each run is unmapped — and, when inv is set, covered
// by one ranged invalidation — and chunk slots are released, freeing the
// chunk once fully released; iotlbOnly is the calling policy's
// PTcache-preservation predicate.
func (d *Domain) unmapTxChunked(m *TxMapping, inv, iotlbOnly bool) (sim.Duration, error) {
	var cost sim.Duration
	i := 0
	for i < len(m.IOVAs) {
		j := i + 1
		for j < len(m.IOVAs) &&
			m.IOVAs[j] == m.IOVAs[j-1]+ptable.PageSize &&
			m.chunks[j] == m.chunks[i] {
			j++
		}
		run := j - i
		res, err := d.table.Unmap(m.IOVAs[i], uint64(run)*ptable.PageSize)
		if err != nil {
			return cost, err
		}
		cost += d.cfg.Costs.UnmapPage * sim.Duration(run)
		d.c.PagesUnmapped += int64(run)
		if inv {
			cost += d.invalidate(m.IOVAs[i], run, iotlbOnly)
			if iotlbOnly && len(res.Reclaimed) > 0 {
				d.mmu.InvalidateReclaimedIn(d.domID, res.Reclaimed)
				d.c.Reclaims += int64(len(res.Reclaimed))
			}
		}
		// Release chunk slots; free the chunk once fully released.
		ch := m.chunks[i]
		ch.released += run
		if ch.released == ch.pages {
			cost += d.freeIOVA(d.txFreeCPU(m.cpu), ch.base, ch.pages)
			if d.txChunks[m.cpu] == ch {
				d.txChunks[m.cpu] = nil
			}
		}
		i = j
	}
	d.c.TxPacketsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}
