package core

import (
	"fastsafe/internal/iommu"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// The CAPIO-style capability family. The domain grants the device one
// capability per page at map time and the IOMMU validates every DMA
// against the per-domain capability table in O(1) — no IOTLB, no
// page-table walk, no memory reads on the guarded path. Unmap revokes
// the capability instead of queueing an IOTLB invalidation: an O(1)
// table update with no completion round trip. The shadow IO page table
// is still maintained — it is the safety auditor's ground truth — but
// the device never reads it, so the protection costs on the datapath
// are CapGrant/CapRevoke, not MapPage/UnmapPage/InvRequest.
//
// Two variants share the policy body:
//
//	cap            — synchronous revocation on unmap. Strict-equivalent
//	                 safety: the device provably loses access the moment
//	                 a descriptor (or Tx packet) completes.
//	cap-lazyrevoke — unmaps only queue the revocation; a threshold (or
//	                 the 10ms timer) flush kills the batch, the
//	                 capability analogue of Linux's deferred mode. IOVA
//	                 frees ride the same batch so no address can be
//	                 re-granted while an old capability still covers it.

// capabilityMode reports whether m belongs to the capability family.
func capabilityMode(m Mode) bool { return m == Cap || m == CapLazyRevoke }

// capRegrant is a window re-grant deferred to the lazy flush: the
// grant-table overwrite that replaces ATC shootdown on remaps.
type capRegrant struct {
	v    ptable.IOVA
	phys ptable.Phys
}

type capPolicy struct {
	predicates
	lazy bool
}

func (p capPolicy) mapRx(d *Domain, cpu int) (*Descriptor, sim.Duration, error) {
	pages := d.cfg.DescriptorPages
	desc := &Descriptor{cpu: cpu}
	base, cost, err := d.allocIOVA(cpu, pages)
	if err != nil {
		return nil, 0, err
	}
	desc.base, desc.contig = base, true
	for i := 0; i < pages; i++ {
		v := base + ptable.IOVA(i*ptable.PageSize)
		phys := d.newPhys()
		if err := d.table.Map(v, phys); err != nil {
			return nil, 0, err
		}
		d.traceAccess(v)
		desc.IOVAs = append(desc.IOVAs, v)
		d.caps.Grant(v, phys)
		cost += d.cfg.Costs.CapGrant
		d.c.PagesMapped++
	}
	d.c.RxDescriptorsMapped++
	d.c.CPUTime += cost
	return desc, cost, nil
}

func (p capPolicy) unmapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	var cost sim.Duration
	pages := len(desc.IOVAs)
	if _, err := d.table.Unmap(desc.base, uint64(pages)*ptable.PageSize); err != nil {
		return cost, err
	}
	d.c.PagesUnmapped += int64(pages)
	if p.lazy {
		// Queue the revocation and the IOVA free; one bookkeeping charge
		// for the batch append. Until the flush the device's capability
		// still stands — the window the auditor must catch.
		d.capRevokes = append(d.capRevokes, pendingFree{desc.base, pages, desc.cpu})
		d.capFrees = append(d.capFrees, pendingFree{desc.base, pages, desc.cpu})
		d.capPendingPages += pages
		cost += d.cfg.Costs.CacheAlloc
		cost += d.maybeFlushCaps()
	} else {
		// Synchronous revocation: O(1) per page, no completion wait.
		for _, v := range desc.IOVAs {
			d.caps.Revoke(v)
			cost += d.cfg.Costs.CapRevoke
		}
		cost += d.freeIOVA(desc.cpu, desc.base, pages)
	}
	d.c.RxDescriptorsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}

func (p capPolicy) remapRx(d *Domain, desc *Descriptor) (sim.Duration, error) {
	// Window rotation: re-granting the capability at the new frame is
	// the synchronization point — the device's access is gated solely by
	// the grant table, so no shootdown round-trip (and no ATC message)
	// is needed. The shadow table is re-pointed for the auditor.
	var cost sim.Duration
	pages := len(desc.IOVAs)
	if _, err := d.table.Unmap(desc.base, uint64(pages)*ptable.PageSize); err != nil {
		return cost, err
	}
	d.c.PagesUnmapped += int64(pages)
	for _, v := range desc.IOVAs {
		phys := d.newPhys()
		if err := d.table.Map(v, phys); err != nil {
			return cost, err
		}
		d.c.PagesMapped++
		if p.lazy {
			// Defer the re-grant: until the flush, the old capability
			// keeps serving the old frame — a stale-capability window.
			d.capRegrants = append(d.capRegrants, capRegrant{v, phys})
			d.capPendingPages++
		} else {
			// Overwrite in place; the overwrite counts as revocation.
			d.caps.Grant(v, phys)
			cost += d.cfg.Costs.CapGrant
		}
	}
	if p.lazy {
		cost += d.cfg.Costs.CacheAlloc
		cost += d.maybeFlushCaps()
	}
	d.c.RxDescriptorsUnmapped++
	d.c.RxDescriptorsMapped++
	d.c.CPUTime += cost
	return cost, nil
}

func (p capPolicy) mapTx(d *Domain, cpu, pages int) (*TxMapping, sim.Duration, error) {
	// Chunked like FNS — per-CPU descriptor-sized IOVA chunks filled
	// across packets — but each page's protection cost is the grant.
	m := &TxMapping{cpu: cpu}
	var cost sim.Duration
	for i := 0; i < pages; i++ {
		ch := d.txChunks[cpu]
		if ch == nil || ch.next == ch.pages {
			base, c, err := d.allocIOVA(cpu, d.cfg.DescriptorPages)
			if err != nil {
				return nil, 0, err
			}
			cost += c
			ch = &txChunk{base: base, pages: d.cfg.DescriptorPages}
			d.txChunks[cpu] = ch
		}
		v := ch.base + ptable.IOVA(ch.next*ptable.PageSize)
		ch.next++
		phys := d.newPhys()
		if err := d.table.Map(v, phys); err != nil {
			return nil, 0, err
		}
		d.traceAccess(v)
		d.caps.Grant(v, phys)
		cost += d.cfg.Costs.CapGrant
		d.c.PagesMapped++
		m.IOVAs = append(m.IOVAs, v)
		m.chunks = append(m.chunks, ch)
	}
	d.c.TxPacketsMapped++
	d.c.CPUTime += cost
	return m, cost, nil
}

func (p capPolicy) unmapTx(d *Domain, m *TxMapping) (sim.Duration, error) {
	var cost sim.Duration
	i := 0
	for i < len(m.IOVAs) {
		j := i + 1
		for j < len(m.IOVAs) &&
			m.IOVAs[j] == m.IOVAs[j-1]+ptable.PageSize &&
			m.chunks[j] == m.chunks[i] {
			j++
		}
		run := j - i
		if _, err := d.table.Unmap(m.IOVAs[i], uint64(run)*ptable.PageSize); err != nil {
			return cost, err
		}
		d.c.PagesUnmapped += int64(run)
		if p.lazy {
			d.capRevokes = append(d.capRevokes, pendingFree{m.IOVAs[i], run, m.cpu})
			d.capPendingPages += run
			cost += d.cfg.Costs.CacheAlloc
		} else {
			for k := 0; k < run; k++ {
				d.caps.Revoke(m.IOVAs[i] + ptable.IOVA(k*ptable.PageSize))
				cost += d.cfg.Costs.CapRevoke
			}
		}
		// Release chunk slots; free the chunk once fully released (the
		// lazy variant pends the free behind its revocations).
		ch := m.chunks[i]
		ch.released += run
		if ch.released == ch.pages {
			if p.lazy {
				d.capFrees = append(d.capFrees, pendingFree{ch.base, ch.pages, d.txFreeCPU(m.cpu)})
			} else {
				cost += d.freeIOVA(d.txFreeCPU(m.cpu), ch.base, ch.pages)
			}
			if d.txChunks[m.cpu] == ch {
				d.txChunks[m.cpu] = nil
			}
		}
		i = j
	}
	if p.lazy {
		cost += d.maybeFlushCaps()
	}
	d.c.TxPacketsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}

// maybeFlushCaps runs the lazy-revoke flush once enough pages are
// pending (the threshold path; the caller's cost tail charges it).
func (d *Domain) maybeFlushCaps() sim.Duration {
	if d.capPendingPages < d.knobs.DeferredLimit {
		return 0
	}
	return d.capFlush()
}

// capFlush drains the lazy batches: a single sweep kills the pending
// grants (amortized per-entry table update, cheaper than an eager
// revoke), the queued IOVA ranges are released, and deferred window
// re-grants are installed. Order matters — revocations before frees
// keeps any address from being re-granted while an old capability
// covers it.
func (d *Domain) capFlush() sim.Duration {
	if len(d.capRevokes) == 0 && len(d.capFrees) == 0 && len(d.capRegrants) == 0 {
		return 0
	}
	var cost sim.Duration
	for _, p := range d.capRevokes {
		for i := 0; i < p.pages; i++ {
			d.caps.Revoke(p.base + ptable.IOVA(i*ptable.PageSize))
			cost += d.cfg.Costs.CacheAlloc
		}
	}
	d.capRevokes = d.capRevokes[:0]
	for _, p := range d.capFrees {
		cost += d.freeIOVA(p.cpu, p.base, p.pages)
	}
	d.capFrees = d.capFrees[:0]
	for _, rg := range d.capRegrants {
		d.caps.Grant(rg.v, rg.phys)
		cost += d.cfg.Costs.CapGrant
	}
	d.capRegrants = d.capRegrants[:0]
	d.capPendingPages = 0
	d.c.DeferredFlushes++
	return cost
}

// CapTable exposes the domain's capability table (nil outside the
// capability family).
func (d *Domain) CapTable() *iommu.CapTable { return d.caps }
