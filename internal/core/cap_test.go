package core

import (
	"testing"

	"fastsafe/internal/ats"
	"fastsafe/internal/ptable"
)

// TestCapMapGrantsUnmapRevokes exercises the eager capability datapath
// end to end: map grants one capability per page and every DMA validates
// in O(1) with zero page-table reads; unmap revokes synchronously, so
// the very next access is denied — with no invalidation-queue traffic at
// any point.
func TestCapMapGrantsUnmapRevokes(t *testing.T) {
	d := newDomain(t, Cap)
	desc, cost, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("cap map should cost CPU time (grants are not free)")
	}
	ct := d.CapTable()
	if ct == nil {
		t.Fatal("cap domain has no capability table")
	}
	if ct.Len() != 64 {
		t.Fatalf("grants = %d, want 64", ct.Len())
	}
	for _, v := range desc.IOVAs {
		tr := d.Translate(v)
		if !tr.OK || !tr.Cap {
			t.Fatalf("granted page %v: %+v", v, tr)
		}
	}
	c := d.IOMMU().Counters()
	if c.CapChecks != 64 {
		t.Fatalf("CapChecks = %d, want 64", c.CapChecks)
	}
	if c.MemReads != 0 {
		t.Fatalf("capability checks read memory: %d reads", c.MemReads)
	}
	ucost, err := d.UnmapRxDescriptor(desc)
	if err != nil {
		t.Fatal(err)
	}
	if ucost <= 0 {
		t.Fatal("eager revocation should cost CPU time")
	}
	if ct.Len() != 0 {
		t.Fatalf("grants after unmap = %d, want 0", ct.Len())
	}
	if tr := d.Translate(desc.IOVAs[0]); tr.OK {
		t.Fatalf("revoked page still translates: %+v", tr)
	}
	c = d.IOMMU().Counters()
	if c.CapDenied == 0 {
		t.Fatal("denied access not counted")
	}
	if c.CapRevocations != 64 {
		t.Fatalf("CapRevocations = %d, want 64", c.CapRevocations)
	}
	if c.InvRequests != 0 || c.ATCInvRequests != 0 {
		t.Fatalf("capability datapath used the invalidation queue: %+v", c)
	}
	dc := d.Counters()
	if dc.RxDescriptorsMapped != 1 || dc.RxDescriptorsUnmapped != 1 {
		t.Fatalf("descriptor counters: %+v", dc)
	}
}

// TestCapRemapRegrantsWithoutShootdown: window recycling under cap is a
// grant overwrite — physical pages rotate under fixed IOVAs with zero
// invalidation-queue or ATC-shootdown traffic, and every overwrite
// counts as a revocation of the prior grant.
func TestCapRemapRegrantsWithoutShootdown(t *testing.T) {
	d := newDomain(t, Cap)
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]ptable.Phys, len(desc.IOVAs))
	for i, v := range desc.IOVAs {
		before[i] = d.Translate(v).Phys
	}
	cost, err := d.RemapRxDescriptor(desc)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("remap should cost CPU time")
	}
	for i, v := range desc.IOVAs {
		tr := d.Translate(v)
		if !tr.OK {
			t.Fatalf("post-remap translate failed at %v", v)
		}
		if tr.Phys == before[i] {
			t.Fatalf("page %d not rotated", i)
		}
	}
	c := d.IOMMU().Counters()
	if c.InvRequests != 0 || c.ATCInvRequests != 0 {
		t.Fatalf("cap remap issued shootdowns: %+v", c)
	}
	if c.CapRevocations != 64 {
		t.Fatalf("re-grant overwrites counted %d revocations, want 64", c.CapRevocations)
	}
}

// TestCapLazyRevokeWindowAndFlush drives the stale-capability window the
// auditor exists to catch: after a lazy unmap the grants still serve,
// until the forced flush sweeps the batch and the next access is denied.
// IOVA frees ride the same batch, so the flush is also what returns the
// addresses to the allocator.
func TestCapLazyRevokeWindowAndFlush(t *testing.T) {
	d := newDomain(t, CapLazyRevoke)
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.UnmapRxDescriptor(desc); err != nil {
		t.Fatal(err)
	}
	if d.PendingDeferred() == 0 {
		t.Fatal("lazy unmap queued nothing")
	}
	// The unsafe window: the grant outlives the mapping.
	if tr := d.Translate(desc.IOVAs[0]); !tr.OK || !tr.Cap {
		t.Fatalf("stale window closed early: %+v", tr)
	}
	if cost := d.FlushDeferred(); cost <= 0 {
		t.Fatalf("forced revocation flush should cost CPU time")
	}
	if d.PendingDeferred() != 0 {
		t.Fatal("flush left pending revocations")
	}
	if d.CapTable().Len() != 0 {
		t.Fatalf("grants after flush = %d, want 0", d.CapTable().Len())
	}
	if tr := d.Translate(desc.IOVAs[0]); tr.OK {
		t.Fatalf("revoked grant still serves: %+v", tr)
	}
	if d.Counters().DeferredFlushes != 1 {
		t.Fatalf("DeferredFlushes = %d, want 1", d.Counters().DeferredFlushes)
	}
	if d.FlushDeferred() != 0 {
		t.Fatal("empty flush should be free")
	}
}

// TestCapLazyRemapDefersRegrant: a lazy remap re-points the shadow table
// immediately but batches the grant overwrite, so the device keeps
// reaching the old physical page until the flush installs the re-grant —
// the capability analogue of skipping the ATC shootdown.
func TestCapLazyRemapDefersRegrant(t *testing.T) {
	d := newDomain(t, CapLazyRevoke)
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	v := desc.IOVAs[0]
	old := d.Translate(v).Phys
	if _, err := d.RemapRxDescriptor(desc); err != nil {
		t.Fatal(err)
	}
	if d.PendingDeferred() == 0 {
		t.Fatal("lazy remap deferred nothing")
	}
	if tr := d.Translate(v); tr.Phys != old {
		t.Fatalf("stale grant already re-pointed: %+v", tr)
	}
	if d.FlushDeferred() <= 0 {
		t.Fatal("re-grant flush should cost CPU time")
	}
	tr := d.Translate(v)
	if !tr.OK || tr.Phys == old {
		t.Fatalf("flush did not install the re-grant: %+v", tr)
	}
}

// TestCapTxPath covers the chunked Tx datapath for both variants: grants
// per packet page, eager revocation (or a batched one) on completion.
func TestCapTxPath(t *testing.T) {
	for _, mode := range []Mode{Cap, CapLazyRevoke} {
		d := newDomain(t, mode)
		m, cost, err := d.MapTx(0, 3)
		if err != nil {
			t.Fatalf("%v: MapTx: %v", mode, err)
		}
		if cost <= 0 || len(m.IOVAs) != 3 {
			t.Fatalf("%v: MapTx cost %v, iovas %v", mode, cost, m.IOVAs)
		}
		for _, v := range m.IOVAs {
			if tr := d.Translate(v); !tr.OK || !tr.Cap {
				t.Fatalf("%v: Tx page %v: %+v", mode, v, tr)
			}
		}
		if _, err := d.UnmapTx(m); err != nil {
			t.Fatalf("%v: UnmapTx: %v", mode, err)
		}
		if mode == Cap {
			if tr := d.Translate(m.IOVAs[0]); tr.OK {
				t.Fatalf("eager Tx revoke left a live grant: %+v", tr)
			}
		} else {
			if tr := d.Translate(m.IOVAs[0]); !tr.OK {
				t.Fatalf("lazy Tx revoke closed the window early: %+v", tr)
			}
			d.FlushDeferred()
			if tr := d.Translate(m.IOVAs[0]); tr.OK {
				t.Fatalf("flushed Tx grant still serves: %+v", tr)
			}
		}
		if c := d.IOMMU().Counters(); c.InvRequests != 0 {
			t.Fatalf("%v: Tx path used the invalidation queue", mode)
		}
	}
}

// TestCapDomainsNeverAttachATC: a device-side translation cache would
// hold translations no capability revoke can reach, so the family
// refuses one even when the config asks — the IOMMU-resident table is
// the only translation source.
func TestCapDomainsNeverAttachATC(t *testing.T) {
	for _, mode := range []Mode{Cap, CapLazyRevoke} {
		d := mustDomain(t, Config{
			Mode: mode, NumCPUs: 1, DescriptorPages: 8,
			ATS: ats.Config{Entries: 64},
		})
		if d.ATC() != nil {
			t.Fatalf("%v: capability domain attached an ATC", mode)
		}
		if d.CapTable() == nil {
			t.Fatalf("%v: capability domain missing its table", mode)
		}
	}
}

// TestCapPersistentPagesGranted: ring and window registrations map
// through MapPersistentPages; on a capability domain they must come with
// grants or the device could never DMA descriptors at all.
func TestCapPersistentPagesGranted(t *testing.T) {
	d := newDomain(t, Cap)
	iovas, err := d.MapPersistentPages(0, 4)
	if err != nil || len(iovas) != 4 {
		t.Fatalf("MapPersistentPages = %v, %v", iovas, err)
	}
	for _, v := range iovas {
		if !d.CapTable().Granted(v) {
			t.Fatalf("persistent page %v not granted", v)
		}
		if tr := d.Translate(v); !tr.OK || !tr.Cap {
			t.Fatalf("persistent page %v: %+v", v, tr)
		}
	}
}
