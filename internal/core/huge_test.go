package core

import (
	"testing"

	"fastsafe/internal/ptable"
)

func TestHugeDescriptorsCarvedFromOneChunk(t *testing.T) {
	d := newDomain(t, FNSHuge)
	var descs []*Descriptor
	for i := 0; i < 8; i++ { // 8 x 64 pages = one 2MB chunk
		desc, _, err := d.MapRxDescriptor(0)
		if err != nil {
			t.Fatal(err)
		}
		descs = append(descs, desc)
	}
	// One IOVA allocation, one huge mapping for all eight descriptors.
	if got := d.Counters().IOVAAllocs; got != 1 {
		t.Fatalf("IOVAAllocs = %d, want 1", got)
	}
	// Contiguity across the whole chunk.
	for i := 1; i < 8; i++ {
		if descs[i].IOVAs[0] != descs[i-1].IOVAs[63]+ptable.PageSize {
			t.Fatalf("descriptor %d not adjacent to previous", i)
		}
	}
	// The ninth descriptor opens a new chunk.
	if _, _, err := d.MapRxDescriptor(0); err != nil {
		t.Fatal(err)
	}
	if got := d.Counters().IOVAAllocs; got != 2 {
		t.Fatalf("IOVAAllocs = %d, want 2", got)
	}
}

func TestHugeSingleIOTLBMissPerChunk(t *testing.T) {
	d := newDomain(t, FNSHuge)
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range desc.IOVAs {
		d.IOMMU().Translate(v)
	}
	if c := d.IOMMU().Counters(); c.IOTLBMisses != 1 {
		t.Fatalf("IOTLBMisses = %d, want 1 for 64 pages under a hugepage", c.IOTLBMisses)
	}
}

func TestHugeRevocationAtChunkGranularity(t *testing.T) {
	d := newDomain(t, FNSHuge)
	var descs []*Descriptor
	for i := 0; i < 8; i++ {
		desc, _, err := d.MapRxDescriptor(0)
		if err != nil {
			t.Fatal(err)
		}
		descs = append(descs, desc)
	}
	// Completing seven of eight descriptors must NOT revoke access (the
	// 2MB mapping is still live) — this is the documented safety
	// relaxation versus strict.
	for i := 0; i < 7; i++ {
		if _, err := d.UnmapRxDescriptor(descs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if tr := d.IOMMU().Translate(descs[0].IOVAs[0]); !tr.OK {
		t.Fatal("chunk revoked before all descriptors completed")
	}
	// Completing the last one revokes the whole chunk with one request.
	before := d.IOMMU().Counters().InvRequests
	if _, err := d.UnmapRxDescriptor(descs[7]); err != nil {
		t.Fatal(err)
	}
	if got := d.IOMMU().Counters().InvRequests - before; got != 1 {
		t.Fatalf("invalidation requests for chunk = %d, want 1", got)
	}
	for _, desc := range descs {
		if tr := d.IOMMU().Translate(desc.IOVAs[0]); tr.OK {
			t.Fatal("access survived chunk completion")
		}
	}
	if c := d.IOMMU().Counters(); c.StaleIOTLBUses != 0 || c.StalePTUses != 0 {
		t.Fatalf("stale uses: %+v", c)
	}
}

func TestHugeChunkIOVAFreedOnceComplete(t *testing.T) {
	d := newDomain(t, FNSHuge)
	var descs []*Descriptor
	for i := 0; i < 8; i++ {
		desc, _, err := d.MapRxDescriptor(0)
		if err != nil {
			t.Fatal(err)
		}
		descs = append(descs, desc)
	}
	for _, desc := range descs {
		if _, err := d.UnmapRxDescriptor(desc); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Counters().IOVAFrees; got != 1 {
		t.Fatalf("IOVAFrees = %d, want 1 (whole chunk at once)", got)
	}
	// A fresh chunk can be carved again.
	if _, _, err := d.MapRxDescriptor(0); err != nil {
		t.Fatal(err)
	}
}

func TestHugeTxUsesFNSPath(t *testing.T) {
	d := newDomain(t, FNSHuge)
	m1, _, err := d.MapTx(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := d.MapTx(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m2.IOVAs[0] != m1.IOVAs[0]+ptable.PageSize {
		t.Fatal("Tx chunking not active under fns+huge")
	}
	d.IOMMU().Translate(m1.IOVAs[0])
	if _, err := d.UnmapTx(m1); err != nil {
		t.Fatal(err)
	}
	if tr := d.IOMMU().Translate(m1.IOVAs[0]); tr.OK {
		t.Fatal("Tx packet reachable after completion")
	}
}

func TestHugeModePredicates(t *testing.T) {
	if FNSHuge.StrictSafety() {
		t.Fatal("fns+huge must not claim strict safety (2MB revocation granularity)")
	}
	if !FNSHuge.Contiguous() || !FNSHuge.PreservesPTCaches() || !FNSHuge.Translated() {
		t.Fatal("fns+huge predicates wrong")
	}
	m, err := ParseMode("fns+huge")
	if err != nil || m != FNSHuge {
		t.Fatalf("ParseMode = %v, %v", m, err)
	}
}
