package core

import (
	"testing"

	"fastsafe/internal/ptable"
)

func newDomain(t *testing.T, mode Mode) *Domain {
	t.Helper()
	return mustDomain(t, Config{Mode: mode, NumCPUs: 2, DescriptorPages: 64})
}

func mustDomain(t *testing.T, cfg Config) *Domain {
	t.Helper()
	d, err := NewDomain(cfg)
	if err != nil {
		t.Fatalf("NewDomain: %v", err)
	}
	return d
}

func TestModeStringRoundtrip(t *testing.T) {
	for _, m := range Modes() {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("roundtrip %v -> %v", m, got)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Fatal("ParseMode accepted junk")
	}
}

func TestModePredicates(t *testing.T) {
	if Off.Translated() {
		t.Fatal("Off should not translate")
	}
	for _, m := range []Mode{Strict, StrictPreserve, StrictContig, FNS} {
		if !m.StrictSafety() {
			t.Fatalf("%v should have strict safety", m)
		}
	}
	for _, m := range []Mode{Off, Deferred, Persistent} {
		if m.StrictSafety() {
			t.Fatalf("%v should not have strict safety", m)
		}
	}
	if !FNS.Contiguous() || !StrictContig.Contiguous() || Strict.Contiguous() {
		t.Fatal("Contiguous predicate wrong")
	}
	if !FNS.PreservesPTCaches() || !StrictPreserve.PreservesPTCaches() || StrictContig.PreservesPTCaches() {
		t.Fatal("PreservesPTCaches predicate wrong")
	}
}

func TestOffModeNoIOMMUWork(t *testing.T) {
	d := newDomain(t, Off)
	desc, cost, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("Off map cost = %v, want 0", cost)
	}
	if len(desc.IOVAs) != 64 {
		t.Fatalf("descriptor pages = %d, want 64", len(desc.IOVAs))
	}
	if _, err := d.UnmapRxDescriptor(desc); err != nil {
		t.Fatal(err)
	}
	if d.IOMMU().Table().Mappings() != 0 {
		t.Fatal("Off mode touched the page table")
	}
}

func TestStrictRxMapsEveryPage(t *testing.T) {
	d := newDomain(t, Strict)
	desc, cost, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("strict map should cost CPU time")
	}
	if d.IOMMU().Table().Mappings() != 64 {
		t.Fatalf("mappings = %d, want 64", d.IOMMU().Table().Mappings())
	}
	for _, v := range desc.IOVAs {
		if !d.IOMMU().Table().Mapped(v) {
			t.Fatalf("%v not mapped", v)
		}
	}
}

func TestStrictSafetyAfterUnmap(t *testing.T) {
	// The strict property: after descriptor completion, every translation
	// of its IOVAs must fault with zero stale uses.
	for _, mode := range []Mode{Strict, StrictPreserve, StrictContig, FNS} {
		d := newDomain(t, mode)
		desc, _, err := d.MapRxDescriptor(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range desc.IOVAs {
			d.IOMMU().Translate(v)
		}
		if _, err := d.UnmapRxDescriptor(desc); err != nil {
			t.Fatal(err)
		}
		for _, v := range desc.IOVAs {
			tr := d.IOMMU().Translate(v)
			if tr.OK {
				t.Fatalf("mode %v: device still reaches %v after unmap", mode, v)
			}
		}
		c := d.IOMMU().Counters()
		if c.StaleIOTLBUses != 0 || c.StalePTUses != 0 {
			t.Fatalf("mode %v: stale uses: %+v", mode, c)
		}
	}
}

func TestDeferredLeavesUnsafeWindow(t *testing.T) {
	d := mustDomain(t, Config{Mode: Deferred, NumCPUs: 1, DescriptorPages: 8, DeferredLimit: 1 << 20})
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range desc.IOVAs {
		d.IOMMU().Translate(v)
	}
	if _, err := d.UnmapRxDescriptor(desc); err != nil {
		t.Fatal(err)
	}
	// Before the flush threshold, the device can still use the stale
	// IOTLB entries: the deferred-mode safety hole.
	stale := 0
	for _, v := range desc.IOVAs {
		if tr := d.IOMMU().Translate(v); tr.OK && tr.Stale {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("deferred mode unexpectedly revoked access before flush")
	}
	if d.PendingDeferred() != 8 {
		t.Fatalf("PendingDeferred = %d, want 8", d.PendingDeferred())
	}
}

func TestDeferredFlushRevokesAccess(t *testing.T) {
	d := mustDomain(t, Config{Mode: Deferred, NumCPUs: 1, DescriptorPages: 8, DeferredLimit: 8})
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range desc.IOVAs {
		d.IOMMU().Translate(v)
	}
	if _, err := d.UnmapRxDescriptor(desc); err != nil {
		t.Fatal(err)
	}
	// Threshold reached: flush happened, access revoked, IOVAs freed.
	if d.PendingDeferred() != 0 {
		t.Fatalf("PendingDeferred = %d, want 0 after flush", d.PendingDeferred())
	}
	for _, v := range desc.IOVAs {
		if tr := d.IOMMU().Translate(v); tr.OK {
			t.Fatalf("access to %v survived the deferred flush", v)
		}
	}
	if d.Counters().DeferredFlushes != 1 {
		t.Fatalf("DeferredFlushes = %d, want 1", d.Counters().DeferredFlushes)
	}
}

func TestFNSDescriptorContiguity(t *testing.T) {
	d := newDomain(t, FNS)
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(desc.IOVAs); i++ {
		if desc.IOVAs[i] != desc.IOVAs[i-1]+ptable.PageSize {
			t.Fatalf("IOVAs not contiguous at %d", i)
		}
	}
	// At most 2 distinct PTcache-L3 keys per descriptor (§3).
	keys := map[uint64]bool{}
	for _, v := range desc.IOVAs {
		keys[v.L3Key()] = true
	}
	if len(keys) > 2 {
		t.Fatalf("descriptor spans %d L3 keys, want <= 2", len(keys))
	}
}

func TestFNSBatchedInvalidation(t *testing.T) {
	dStrict := newDomain(t, Strict)
	dFNS := newDomain(t, FNS)
	for _, d := range []*Domain{dStrict, dFNS} {
		desc, _, err := d.MapRxDescriptor(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.UnmapRxDescriptor(desc); err != nil {
			t.Fatal(err)
		}
	}
	if got := dStrict.Counters().InvRequests; got != 64 {
		t.Fatalf("strict InvRequests = %d, want 64 (Figure 6a)", got)
	}
	if got := dFNS.Counters().InvRequests; got != 1 {
		t.Fatalf("FNS InvRequests = %d, want 1 (Figure 6b)", got)
	}
}

func TestFNSCheaperCPUThanStrict(t *testing.T) {
	dStrict := newDomain(t, Strict)
	dFNS := newDomain(t, FNS)
	costOf := func(d *Domain) (total int64) {
		for i := 0; i < 10; i++ {
			desc, c1, err := d.MapRxDescriptor(0)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := d.UnmapRxDescriptor(desc)
			if err != nil {
				t.Fatal(err)
			}
			total += int64(c1 + c2)
		}
		return total
	}
	s, f := costOf(dStrict), costOf(dFNS)
	if f >= s {
		t.Fatalf("FNS CPU cost %d >= strict %d", f, s)
	}
}

func TestFNSPreservesPTCachesUnderTxInterference(t *testing.T) {
	// The §2.2 mechanism: Tx (ACK) unmaps invalidate PTcache entries the
	// Rx datapath shares, inflating Rx walk costs. FNS's IOTLB-only
	// invalidations keep the walk at ~1 memory read; Strict pays extra
	// upper-level reads after every interleaved Tx completion.
	run := func(mode Mode) float64 {
		d := newDomain(t, mode)
		for cycle := 0; cycle < 20; cycle++ {
			desc, _, err := d.MapRxDescriptor(0)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range desc.IOVAs {
				d.IOMMU().Translate(v)
				if i%8 == 7 { // an ACK per 8 received pages
					m, _, err := d.MapTx(0, 1)
					if err != nil {
						t.Fatal(err)
					}
					d.IOMMU().Translate(m.IOVAs[0])
					if _, err := d.UnmapTx(m); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := d.UnmapRxDescriptor(desc); err != nil {
				t.Fatal(err)
			}
		}
		c := d.IOMMU().Counters()
		return float64(c.MemReads) / float64(c.Walks)
	}
	fns := run(FNS)
	strict := run(Strict)
	if fns > 1.15 {
		t.Fatalf("FNS reads per walk = %.2f, want ~1", fns)
	}
	if strict < 1.25 {
		t.Fatalf("strict reads per walk = %.2f, want inflated by Tx interference", strict)
	}
	if strict <= fns {
		t.Fatalf("strict (%.2f) should cost more reads per walk than FNS (%.2f)", strict, fns)
	}
}

func TestStrictPreserveOnlyFixesInvalidationsNotLocality(t *testing.T) {
	// Ablation A: PTcaches survive invalidations, so with a single ring
	// the walk cost drops — the §4.3 point is that under *contention*
	// (many scattered IOVAs) locality still hurts; here we just verify
	// the preserve behaviour is active.
	d := newDomain(t, StrictPreserve)
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range desc.IOVAs {
		d.IOMMU().Translate(v)
	}
	if _, err := d.UnmapRxDescriptor(desc); err != nil {
		t.Fatal(err)
	}
	if got := d.IOMMU().Counters().PTInvalidated; got != 0 {
		t.Fatalf("PTInvalidated = %d, want 0 under preserve", got)
	}
}

func TestPersistentModeRecyclesDescriptors(t *testing.T) {
	d := newDomain(t, Persistent)
	desc1, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	base1 := desc1.IOVAs[0]
	if _, err := d.UnmapRxDescriptor(desc1); err != nil {
		t.Fatal(err)
	}
	desc2, cost, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	if desc2.IOVAs[0] != base1 {
		t.Fatal("persistent mode did not recycle the descriptor")
	}
	if cost != 0 {
		t.Fatalf("recycled descriptor cost = %v, want 0", cost)
	}
	// Mappings stay alive: the device retains access (weaker safety).
	if !d.IOMMU().Table().Mapped(base1) {
		t.Fatal("persistent mapping was dropped")
	}
}

func TestTxStrictPerPacket(t *testing.T) {
	d := newDomain(t, Strict)
	m, _, err := d.MapTx(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.IOMMU().Translate(m.IOVAs[0])
	if _, err := d.UnmapTx(m); err != nil {
		t.Fatal(err)
	}
	if tr := d.IOMMU().Translate(m.IOVAs[0]); tr.OK {
		t.Fatal("Tx buffer reachable after completion")
	}
	if d.Counters().TxPacketsUnmapped != 1 {
		t.Fatal("Tx counters wrong")
	}
}

func TestTxFNSChunkFillsAcrossPackets(t *testing.T) {
	d := newDomain(t, FNS)
	var all []ptable.IOVA
	var ms []*TxMapping
	for i := 0; i < 64; i++ {
		m, _, err := d.MapTx(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, m.IOVAs...)
		ms = append(ms, m)
	}
	// The 64 single-page packets must be contiguous (one chunk).
	for i := 1; i < len(all); i++ {
		if all[i] != all[i-1]+ptable.PageSize {
			t.Fatalf("Tx chunk not contiguous at %d", i)
		}
	}
	// Allocator was hit once for the chunk, not 64 times.
	if got := d.Counters().IOVAAllocs; got != 1 {
		t.Fatalf("IOVAAllocs = %d, want 1", got)
	}
	// Unmap all: strict safety per packet, chunk freed at the end.
	for _, m := range ms {
		if _, err := d.UnmapTx(m); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Counters().IOVAFrees; got != 1 {
		t.Fatalf("IOVAFrees = %d, want 1 (chunk freed once)", got)
	}
	// A 65th packet opens a fresh chunk.
	if _, _, err := d.MapTx(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := d.Counters().IOVAAllocs; got != 2 {
		t.Fatalf("IOVAAllocs = %d, want 2", got)
	}
}

func TestTxFNSSafetyPerPacket(t *testing.T) {
	// Even though the chunk lives on, a completed packet's pages must be
	// unreachable immediately (strict safety at packet granularity).
	d := newDomain(t, FNS)
	m1, _, err := d.MapTx(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := d.MapTx(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.IOMMU().Translate(m1.IOVAs[0])
	d.IOMMU().Translate(m2.IOVAs[0])
	if _, err := d.UnmapTx(m1); err != nil {
		t.Fatal(err)
	}
	if tr := d.IOMMU().Translate(m1.IOVAs[0]); tr.OK {
		t.Fatal("completed Tx packet still reachable")
	}
	if tr := d.IOMMU().Translate(m2.IOVAs[0]); !tr.OK {
		t.Fatal("in-flight Tx packet lost its mapping")
	}
}

func TestTxMultiPagePacket(t *testing.T) {
	for _, mode := range []Mode{Strict, FNS, Persistent, Deferred} {
		d := newDomain(t, mode)
		m, _, err := d.MapTx(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.IOVAs) != 3 {
			t.Fatalf("mode %v: pages = %d, want 3", mode, len(m.IOVAs))
		}
		if _, err := d.UnmapTx(m); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestTxPersistentPoolRecycles(t *testing.T) {
	d := newDomain(t, Persistent)
	m1, _, _ := d.MapTx(0, 1)
	v := m1.IOVAs[0]
	if _, err := d.UnmapTx(m1); err != nil {
		t.Fatal(err)
	}
	m2, cost, _ := d.MapTx(0, 1)
	if m2.IOVAs[0] != v {
		t.Fatal("persistent Tx pool did not recycle")
	}
	if cost != 0 {
		t.Fatal("recycled Tx page cost CPU time")
	}
}

func TestTraceRecordsL3Keys(t *testing.T) {
	d := mustDomain(t, Config{Mode: FNS, NumCPUs: 1, DescriptorPages: 64, TraceL3: true})
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = desc
	if d.Trace() == nil || len(d.Trace().Dists) != 64 {
		t.Fatalf("trace length = %d, want 64", len(d.Trace().Dists))
	}
	// Contiguous chunk: after the first key, nearly all accesses are
	// repeats at distance 0.
	zero := 0
	for _, dist := range d.Trace().Dists {
		if dist == 0 {
			zero++
		}
	}
	if zero < 60 {
		t.Fatalf("only %d zero-distance accesses in a contiguous chunk", zero)
	}
}

func TestDescriptorPagesDefault(t *testing.T) {
	d := mustDomain(t, Config{Mode: Strict})
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.IOVAs) != 64 {
		t.Fatalf("default descriptor pages = %d, want 64", len(desc.IOVAs))
	}
}

func TestCountersAccumulate(t *testing.T) {
	d := newDomain(t, Strict)
	desc, _, _ := d.MapRxDescriptor(0)
	if _, err := d.UnmapRxDescriptor(desc); err != nil {
		t.Fatal(err)
	}
	c := d.Counters()
	if c.RxDescriptorsMapped != 1 || c.RxDescriptorsUnmapped != 1 {
		t.Fatalf("descriptor counters: %+v", c)
	}
	if c.PagesMapped != 64 || c.PagesUnmapped != 64 {
		t.Fatalf("page counters: %+v", c)
	}
	if c.CPUTime <= 0 {
		t.Fatal("CPUTime not charged")
	}
}

func TestSharedIOMMUDomains(t *testing.T) {
	// Two driver domains over one IOMMU: separate IOVA spaces and page
	// tables, shared caches, independent safety.
	nicDom := mustDomain(t, Config{Mode: FNS, NumCPUs: 1})
	stDom := mustDomain(t, Config{Mode: FNS, NumCPUs: 1, SharedIOMMU: nicDom.IOMMU()})
	if nicDom.IOMMU() != stDom.IOMMU() {
		t.Fatal("domains do not share the IOMMU")
	}
	if nicDom.ID() == stDom.ID() {
		t.Fatal("domains share an id")
	}
	d1, _, err := nicDom.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := stDom.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	// Same top-down allocator start: the IOVAs collide numerically but
	// resolve independently.
	if d1.IOVAs[0] != d2.IOVAs[0] {
		t.Fatalf("expected identical IOVA bases, got %v vs %v", d1.IOVAs[0], d2.IOVAs[0])
	}
	t1 := nicDom.Translate(d1.IOVAs[0])
	t2 := stDom.Translate(d2.IOVAs[0])
	if !t1.OK || !t2.OK || t1.Phys == t2.Phys {
		t.Fatalf("cross-domain resolution broken: %+v vs %+v", t1, t2)
	}
	// Unmapping one domain's descriptor leaves the other's intact.
	if _, err := nicDom.UnmapRxDescriptor(d1); err != nil {
		t.Fatal(err)
	}
	if tr := nicDom.Translate(d1.IOVAs[0]); tr.OK {
		t.Fatal("nic domain retained access after unmap")
	}
	if tr := stDom.Translate(d2.IOVAs[0]); !tr.OK {
		t.Fatal("storage domain lost access to its own descriptor")
	}
	if c := nicDom.IOMMU().Counters(); c.StaleIOTLBUses != 0 || c.StalePTUses != 0 {
		t.Fatalf("stale uses across domains: %+v", c)
	}
}
