package core

import (
	"fmt"

	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// FNSHuge Rx datapath (§5 future work: integrating hugepages with F&S).
//
// Rx descriptors are carved out of 2MB huge IOVA mappings: one page-table
// entry and one IOTLB entry cover eight 64-page descriptors, so the
// per-page IOTLB miss floor drops from 1 to ~1/512. The price is revocation
// granularity: the huge mapping can only be unmapped once every descriptor
// inside it has completed, so safety holds at 2MB rather than descriptor
// granularity (still a bounded window, unlike deferred/persistent modes).

// hugeChunk is one in-flight 2MB huge mapping.
type hugeChunk struct {
	rawBase  ptable.IOVA // allocator range start (2x size for alignment)
	rawPages int
	base     ptable.IOVA // 2MB-aligned mapping base
	descs    int         // descriptors per chunk
	carved   int
	done     int
}

// hugePages is a 2MB chunk in 4KB pages.
const hugePages = int(ptable.HugeSize / ptable.PageSize)

// newPhysHuge returns a fresh 2MB-aligned fake physical address.
func (d *Domain) newPhysHuge() ptable.Phys {
	d.physNext = (d.physNext + uint64(hugePages) - 1) &^ (uint64(hugePages) - 1)
	p := ptable.Phys(d.physNext << ptable.PageShift)
	d.physNext += uint64(hugePages)
	return p
}

// mapRxDescriptorHuge carves the next descriptor from the CPU's current
// huge chunk, opening a new chunk when needed.
func (d *Domain) mapRxDescriptorHuge(cpu int) (*Descriptor, sim.Duration, error) {
	pages := d.cfg.DescriptorPages
	descBytes := uint64(pages) * ptable.PageSize
	descsPer := int(ptable.HugeSize / descBytes)
	if descsPer < 1 {
		return nil, 0, fmt.Errorf("core: descriptor (%d pages) larger than a hugepage", pages)
	}
	var cost sim.Duration
	hc := d.hugeRx[cpu]
	if hc == nil || hc.carved == hc.descs {
		// Allocate twice the span so a 2MB-aligned base always fits (the
		// allocator hands out page-aligned ranges only).
		raw, c, err := d.allocIOVA(cpu, 2*hugePages)
		if err != nil {
			return nil, 0, err
		}
		cost += c
		base := ptable.IOVA((uint64(raw) + ptable.HugeSize - 1) &^ (ptable.HugeSize - 1))
		if err := d.table.MapHuge(base, d.newPhysHuge()); err != nil {
			return nil, 0, err
		}
		cost += d.cfg.Costs.MapPage // a single page-table entry
		d.c.PagesMapped += int64(hugePages)
		hc = &hugeChunk{rawBase: raw, rawPages: 2 * hugePages, base: base, descs: descsPer}
		d.hugeRx[cpu] = hc
	}
	desc := &Descriptor{cpu: cpu, contig: true, huge: hc}
	start := hc.base + ptable.IOVA(uint64(hc.carved)*descBytes)
	hc.carved++
	desc.base = start
	for i := 0; i < pages; i++ {
		v := start + ptable.IOVA(i*ptable.PageSize)
		d.traceAccess(v)
		desc.IOVAs = append(desc.IOVAs, v)
	}
	d.c.RxDescriptorsMapped++
	d.c.CPUTime += cost
	return desc, cost, nil
}

// unmapRxDescriptorHuge completes a descriptor; when the whole 2MB chunk
// has completed, the huge mapping is unmapped and its (single) IOTLB entry
// invalidated with one request.
func (d *Domain) unmapRxDescriptorHuge(desc *Descriptor) (sim.Duration, error) {
	hc := desc.huge
	if hc == nil {
		return 0, fmt.Errorf("core: descriptor has no huge chunk")
	}
	var cost sim.Duration
	hc.done++
	if hc.done == hc.descs {
		if err := d.table.UnmapHuge(hc.base); err != nil {
			return cost, err
		}
		cost += d.cfg.Costs.UnmapPage // a single page-table entry
		d.c.PagesUnmapped += int64(hugePages)
		cost += d.invalidate(hc.base, hugePages, true)
		cost += d.freeIOVA(desc.cpu, hc.rawBase, hc.rawPages)
		if d.hugeRx[desc.cpu] == hc {
			d.hugeRx[desc.cpu] = nil
		}
	}
	d.c.RxDescriptorsUnmapped++
	d.c.CPUTime += cost
	return cost, nil
}
