package core

import (
	"fastsafe/internal/iova"
	"fastsafe/internal/stats"
)

// RegisterProbes exposes one protection domain's software-side counters
// through the registry under prefix (e.g. "dev0."), together with its
// allocator, IO page table, and per-domain slice of the shared IOMMU's
// hardware counters — the full per-device attribution in one namespace.
// All probes are read-only views over live state.
func (d *Domain) RegisterProbes(r *stats.Registry, prefix string) {
	probe := func(name string, fn func(Counters) int64) {
		r.GaugeFunc(prefix+name, func() float64 { return float64(fn(d.c)) })
	}
	probe("rx_descs_mapped", func(c Counters) int64 { return c.RxDescriptorsMapped })
	probe("rx_descs_unmapped", func(c Counters) int64 { return c.RxDescriptorsUnmapped })
	probe("tx_pkts_mapped", func(c Counters) int64 { return c.TxPacketsMapped })
	probe("tx_pkts_unmapped", func(c Counters) int64 { return c.TxPacketsUnmapped })
	probe("pages_mapped", func(c Counters) int64 { return c.PagesMapped })
	probe("pages_unmapped", func(c Counters) int64 { return c.PagesUnmapped })
	probe("iova_allocs", func(c Counters) int64 { return c.IOVAAllocs })
	probe("iova_frees", func(c Counters) int64 { return c.IOVAFrees })
	probe("inv_requests", func(c Counters) int64 { return c.InvRequests })
	probe("deferred_flushes", func(c Counters) int64 { return c.DeferredFlushes })
	probe("reclaims", func(c Counters) int64 { return c.Reclaims })
	r.GaugeFunc(prefix+"cpu_ns", func() float64 { return float64(d.c.CPUTime) })
	r.GaugeFunc(prefix+"pending_deferred", func() float64 { return float64(d.PendingDeferred()) })
	iova.RegisterProbes(r, prefix+"iova.", d.AllocatorStats)
	d.mmu.TableOf(d.domID).RegisterProbes(r, prefix+"ptable.")
	d.mmu.RegisterDomainProbes(r, prefix+"iommu.", d.domID)
}
