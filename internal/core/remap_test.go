package core

import (
	"testing"

	"fastsafe/internal/ats"
	"fastsafe/internal/ptable"
	"fastsafe/internal/stats"
)

func newATSDomain(t *testing.T, mode Mode, entries int) *Domain {
	t.Helper()
	return mustDomain(t, Config{
		Mode: mode, NumCPUs: 2, DescriptorPages: 8,
		ATS: ats.Config{Entries: entries},
	})
}

// RemapRxDescriptor must preserve the IOVA layout — one-sided peers
// address the window by fixed offsets — while re-pointing every page at
// fresh physical memory.
func TestRemapPreservesIOVAsRotatesPhys(t *testing.T) {
	for _, mode := range []Mode{Strict, StrictPreserve, StrictContig, FNS, Deferred} {
		d := newDomain(t, mode)
		desc, _, err := d.MapRxDescriptor(0)
		if err != nil {
			t.Fatalf("%v: MapRxDescriptor: %v", mode, err)
		}
		before := make([]ptable.Phys, len(desc.IOVAs))
		for i, v := range desc.IOVAs {
			tr := d.Translate(v)
			if !tr.OK {
				t.Fatalf("%v: pre-remap translate failed", mode)
			}
			before[i] = tr.Phys
		}
		cost, err := d.RemapRxDescriptor(desc)
		if err != nil {
			t.Fatalf("%v: RemapRxDescriptor: %v", mode, err)
		}
		if cost <= 0 {
			t.Fatalf("%v: remap cost = %v, want > 0", mode, cost)
		}
		for i, v := range desc.IOVAs {
			tr := d.Translate(v)
			if !tr.OK {
				t.Fatalf("%v: post-remap translate failed", mode)
			}
			if tr.Stale {
				t.Fatalf("%v: post-remap translation served stale", mode)
			}
			if tr.Phys == before[i] {
				t.Fatalf("%v: page %d not rotated", mode, i)
			}
		}
	}
}

// Off, Persistent and FNSHuge treat a registered window as persistent:
// remap is a free no-op and the physical pages stay put.
func TestRemapNoOpModes(t *testing.T) {
	for _, mode := range []Mode{Off, Persistent, FNSHuge} {
		d := newDomain(t, mode)
		desc, _, err := d.MapRxDescriptor(0)
		if err != nil {
			t.Fatalf("%v: MapRxDescriptor: %v", mode, err)
		}
		cost, err := d.RemapRxDescriptor(desc)
		if err != nil {
			t.Fatalf("%v: RemapRxDescriptor: %v", mode, err)
		}
		if cost != 0 {
			t.Fatalf("%v: no-op remap cost = %v", mode, cost)
		}
	}
}

// With a device TLB attached, the safe modes' remap must shoot the ATC
// down (the host-initiated ATC-invalidate message class) before the
// IOVAs point at new memory; subsequent device translations are fresh.
func TestRemapShootsDownATC(t *testing.T) {
	for _, mode := range []Mode{Strict, FNS} {
		d := newATSDomain(t, mode, 64)
		desc, _, err := d.MapRxDescriptor(0)
		if err != nil {
			t.Fatalf("%v: MapRxDescriptor: %v", mode, err)
		}
		for _, v := range desc.IOVAs { // warm the device TLB
			d.Translate(v)
		}
		if got := d.ATC().Counters().Hits; got != 0 {
			// First touches are misses; re-touch to confirm hits.
			t.Fatalf("%v: unexpected warm hits %d", mode, got)
		}
		for _, v := range desc.IOVAs {
			if tr := d.Translate(v); !tr.ATC {
				t.Fatalf("%v: warm lookup of %v missed the ATC", mode, v)
			}
		}
		if _, err := d.RemapRxDescriptor(desc); err != nil {
			t.Fatalf("%v: RemapRxDescriptor: %v", mode, err)
		}
		ac := d.ATC().Counters()
		if ac.InvMessages == 0 || ac.Invalidated == 0 {
			t.Fatalf("%v: remap sent no ATC invalidations: %+v", mode, ac)
		}
		mc := d.IOMMU().Counters()
		if mc.ATCInvRequests == 0 {
			t.Fatalf("%v: ATC-invalidate requests not charged to the IOMMU", mode)
		}
		for _, v := range desc.IOVAs {
			tr := d.Translate(v)
			if tr.Stale {
				t.Fatalf("%v: post-remap device translation stale", mode)
			}
		}
		if d.ATC().Counters().StaleHits != 0 {
			t.Fatalf("%v: device cache recorded stale hits", mode)
		}
	}
}

// The defer-noshootdown strawman re-points the window without telling
// the device cache: every warm entry keeps serving the old physical
// page, and the ATC's own stale counter catches it.
func TestRemapStrawmanLeavesATCStale(t *testing.T) {
	d := newATSDomain(t, DeferNoShootdown, 64)
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatalf("MapRxDescriptor: %v", err)
	}
	for _, v := range desc.IOVAs {
		d.Translate(v)
	}
	if _, err := d.RemapRxDescriptor(desc); err != nil {
		t.Fatalf("RemapRxDescriptor: %v", err)
	}
	var stale int
	for _, v := range desc.IOVAs {
		tr := d.Translate(v)
		if tr.ATC && tr.Stale {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("strawman remap left no stale ATC service")
	}
	ac := d.ATC().Counters()
	if ac.StaleHits == 0 {
		t.Fatalf("ATC stale counter missed the violations: %+v", ac)
	}
	if ac.InvMessages != 0 {
		t.Fatalf("strawman sent %d ATC invalidations, want 0", ac.InvMessages)
	}
}

func TestDomainAccessors(t *testing.T) {
	d := newATSDomain(t, FNS, 32)
	if d.Mode() != FNS {
		t.Fatalf("Mode() = %v", d.Mode())
	}
	if d.DescriptorPages() != 8 {
		t.Fatalf("DescriptorPages() = %d", d.DescriptorPages())
	}
	if d.ATC() == nil {
		t.Fatal("ATC() nil with entries configured")
	}
	if newDomain(t, FNS).ATC() != nil {
		t.Fatal("ATC() non-nil without entries")
	}
	if _, _, err := d.MapRxDescriptor(0); err != nil {
		t.Fatal(err)
	}
	if s := d.AllocatorStats(); s.TreeAllocs+s.CacheAllocs == 0 {
		t.Fatal("AllocatorStats() recorded no allocations")
	}
}

func TestRegisterProbesExposesDomainCounters(t *testing.T) {
	d := newATSDomain(t, FNS, 32)
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range desc.IOVAs {
		d.Translate(v)
	}
	if _, err := d.RemapRxDescriptor(desc); err != nil {
		t.Fatal(err)
	}
	r := stats.NewRegistry()
	d.RegisterProbes(r, "dev0.")
	for name, positive := range map[string]bool{
		"dev0.pages_mapped":           true,
		"dev0.inv_requests":           true,
		"dev0.cpu_ns":                 true,
		"dev0.iommu.ats_requests":     true,
		"dev0.iommu.atc_inv_requests": true,
		"dev0.iommu.atc_invalidated":  true,
		"dev0.tx_pkts_mapped":         false,
		"dev0.pending_deferred":       false,
	} {
		v, ok := r.Value(name)
		if !ok {
			t.Fatalf("probe %q not registered", name)
		}
		if positive && v <= 0 {
			t.Fatalf("probe %q = %v, want > 0", name, v)
		}
	}
}

func TestFlushDeferredForcesTimerPath(t *testing.T) {
	d := newDomain(t, Deferred)
	desc, _, err := d.MapRxDescriptor(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.UnmapRxDescriptor(desc); err != nil {
		t.Fatal(err)
	}
	if d.PendingDeferred() == 0 {
		t.Fatal("deferred unmap queued nothing")
	}
	if cost := d.FlushDeferred(); cost <= 0 {
		t.Fatalf("forced flush cost = %v, want > 0", cost)
	}
	if d.PendingDeferred() != 0 {
		t.Fatal("forced flush left pending frees")
	}
	if d.FlushDeferred() != 0 {
		t.Fatal("empty flush should be free")
	}
	if newDomain(t, Strict).FlushDeferred() != 0 {
		t.Fatal("non-deferred flush should be a no-op")
	}
}

func TestMapPersistentPages(t *testing.T) {
	d := newDomain(t, FNS)
	iovas, err := d.MapPersistentPages(0, 4)
	if err != nil || len(iovas) != 4 {
		t.Fatalf("MapPersistentPages = %v, %v", iovas, err)
	}
	for _, v := range iovas {
		if tr := d.Translate(v); !tr.OK || tr.Stale {
			t.Fatalf("persistent page %v: %+v", v, tr)
		}
	}
	off := newDomain(t, Off)
	ids, err := off.MapPersistentPages(0, 2)
	if err != nil || len(ids) != 2 {
		t.Fatalf("off-mode MapPersistentPages = %v, %v", ids, err)
	}
}
