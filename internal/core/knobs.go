package core

import (
	"fmt"
	"strings"

	"fastsafe/internal/sim"
)

// Runtime-tunable protection knobs. Construction (Config) decides the
// frozen shape of a domain — IOMMU geometry, CPU count, capability-table
// attachment — while Knobs carries the parameters a control plane may
// retune while traffic is in flight: the bound protection mode, the
// deferred/lazy-revoke batch threshold, and the timer-flush period.
// NewDomain seeds them from Config; SetKnobs is the only writer.

// DefaultFlushInterval is the timer-flush period for batched
// invalidations (Linux's 10ms lazy-mode timer), seeded into every
// domain's knobs and consumed by the host's housekeeping loop.
const DefaultFlushInterval = 10 * sim.Millisecond

// Knobs are the runtime-tunable parameters of one protection domain.
type Knobs struct {
	// Mode is the protection mode the datapath currently runs.
	Mode Mode
	// DeferredLimit is the pending-page threshold that triggers a batch
	// flush in deferred and cap-lazyrevoke modes.
	DeferredLimit int
	// FlushInterval is the timer-flush period for the same batches.
	FlushInterval sim.Duration
}

// Knobs returns the domain's current runtime knobs.
func (d *Domain) Knobs() Knobs { return d.knobs }

// switchable lists the modes a domain may transition between at
// runtime. The excluded modes pin state no transition protocol can
// drain: Off never built page tables (IOVAs are physical identities),
// Persistent's recycled descriptor pools and FNSHuge's shared 2MB
// chunks hold live mappings with no per-descriptor completion point.
var switchable = map[Mode]bool{
	Strict:           true,
	Deferred:         true,
	StrictPreserve:   true,
	StrictContig:     true,
	FNS:              true,
	DeferNoShootdown: true,
	Cap:              true,
	CapLazyRevoke:    true,
}

// CanSwitch reports whether a runtime transition from mode `from` to
// mode `to` is supported, with the same error SetKnobs would return.
// Control planes validate their rules against it at construction so a
// mis-specced rule fails loudly before traffic flows.
func CanSwitch(from, to Mode) error {
	if from == to {
		return nil
	}
	if _, ok := PolicyFor(to); !ok {
		return fmt.Errorf("core: mode %v has no registered policy (valid: %s)",
			to, strings.Join(ValidModeNames(), ", "))
	}
	if !switchable[from] || !switchable[to] {
		return fmt.Errorf("core: cannot switch %v -> %v at runtime (off, persistent and fns+huge pin identity mappings, recycled pools or shared 2MB chunks that no transition can drain)",
			from, to)
	}
	if capabilityMode(from) != capabilityMode(to) {
		return fmt.Errorf("core: cannot switch %v -> %v at runtime (the capability table attaches at construction; switch within the page-table family or within the capability family)",
			from, to)
	}
	return nil
}

// SetKnobs retunes the domain's runtime knobs, switching protection
// mode when k.Mode differs from the current one. A mode switch runs the
// transition protocol — drain every batch the old policy accumulated,
// retire partially filled Tx chunks, and shoot down every cached
// translation — before rebinding the policy, so nothing the old mode
// left behind can be served under the new one (the auditor stays
// zero-stale across the switch). In-flight descriptors and Tx packets
// keep the policy that mapped them and complete through it. Returns the
// CPU time the transition cost (already charged to the domain).
func (d *Domain) SetKnobs(k Knobs) (sim.Duration, error) {
	if k.DeferredLimit <= 0 {
		return 0, fmt.Errorf("core: knobs deferred limit must be > 0, got %d", k.DeferredLimit)
	}
	if k.FlushInterval <= 0 {
		return 0, fmt.Errorf("core: knobs flush interval must be > 0, got %s", k.FlushInterval)
	}
	if k.Mode == d.knobs.Mode {
		d.knobs = k
		return 0, nil
	}
	if err := CanSwitch(d.knobs.Mode, k.Mode); err != nil {
		return 0, err
	}
	pol, _ := PolicyFor(k.Mode)
	// Drain the deferred-invalidation and lazy-revoke batches (self-
	// charging), so no unmap the old policy queued outlives its policy.
	cost := d.FlushDeferred()
	var extra sim.Duration
	// Retire partially filled Tx chunks: slots already handed to
	// in-flight packets were mapped by the old policy and complete
	// through it (each mapping carries its origin); the unfilled tail
	// was never mapped. Capping the chunk keeps any new-mode packet out
	// of an old-mode chunk, and the IOVA range frees as usual once the
	// last in-flight slot completes.
	for cpu, ch := range d.txChunks {
		if ch == nil {
			continue
		}
		ch.released += ch.pages - ch.next
		ch.next = ch.pages
		if ch.released == ch.pages {
			extra += d.freeIOVA(d.txFreeCPU(cpu), ch.base, ch.pages)
		}
		d.txChunks[cpu] = nil
	}
	// Quiesce cached translation state: one flush-all invalidation
	// covers the IOTLB, the page-table caches, and — because the
	// domain's translator is the ATC when one is attached — the
	// device-side ATS cache. Capability domains have no translation
	// caches to quiesce; their grant table is already exact.
	if d.caps == nil {
		extra += d.flushInvalidate()
	}
	d.pol = pol
	d.knobs = k
	d.c.CPUTime += extra
	return cost + extra, nil
}
