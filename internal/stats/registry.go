package stats

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Gauge is an instantaneous value: queue depths, utilisations, window
// sizes. Like Counter it is engine-confined and deliberately not atomic —
// every Gauge belongs to one simulation's single-threaded event loop.
//
// A Gauge is either stored (Set/Add mutate a float) or function-backed
// (its value is computed on every read from a probe closure installed via
// Registry.GaugeFunc). Function-backed gauges are how the simulator layers
// expose their existing typed counters without copying them: the closure
// reads live state, so the registry always reports the current value.
type Gauge struct {
	v  float64
	fn func() float64
}

// Set replaces the gauge's value. Panics on a function-backed gauge.
func (g *Gauge) Set(v float64) {
	if g.fn != nil {
		panic("stats: Set on function-backed Gauge")
	}
	g.v = v
}

// Add adjusts the gauge by d (negative deltas are fine for gauges).
// Panics on a function-backed gauge.
func (g *Gauge) Add(d float64) {
	if g.fn != nil {
		panic("stats: Add on function-backed Gauge")
	}
	g.v += d
}

// Value returns the gauge's current value, invoking the probe closure for
// function-backed gauges.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v
}

// Registry is a named collection of instruments — the telemetry spine every
// simulator layer reports through. Three instrument kinds are supported:
//
//   - Counter: monotonically increasing event counts
//   - Gauge: instantaneous values, stored or function-backed
//   - Histogram: log-bucketed sample distributions with quantile readout
//
// A name identifies exactly one instrument of one kind; reusing a name for
// a different kind panics, surfacing wiring bugs at construction time.
// All dump orders are sorted by name, so registry output is deterministic
// regardless of registration order.
//
// Like every type in this package the Registry is engine-confined: one
// registry per simulation, touched only from that simulation's event loop.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// kindOf reports the kind holding name, or "" when the name is free.
func (r *Registry) kindOf(name string) string {
	switch {
	case r.counters[name] != nil:
		return "counter"
	case r.gauges[name] != nil:
		return "gauge"
	case r.hists[name] != nil:
		return "histogram"
	}
	return ""
}

func (r *Registry) mustBe(name, kind string) {
	if k := r.kindOf(name); k != "" && k != kind {
		panic(fmt.Sprintf("stats: instrument %q already registered as a %s", name, k))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mustBe(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named stored gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mustBe(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a function-backed gauge whose value is computed by fn
// on every read. Re-registering an existing name replaces its probe, which
// lets a layer rebind after reconfiguration. The rebind mutates the
// existing Gauge in place rather than replacing the object, so holders
// of the prior *Gauge — an Adopt-merged registry, or a reader that
// grabbed it via Gauge() before the probe existed — see the new probe
// instead of a detached zero.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	g := r.Gauge(name)
	g.v = 0
	g.fn = fn
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mustBe(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddHistogram registers an existing histogram under name, so a layer that
// already owns its sample sink (e.g. an RPC latency histogram) can expose
// the same object through the registry without double-observing.
func (r *Registry) AddHistogram(name string, h *Histogram) {
	r.mustBe(name, "histogram")
	r.hists[name] = h
}

// Adopt merges every instrument of src into r by reference: the merged
// registry reads the same live Counter/Gauge/Histogram objects the source
// layers mutate, so it always reports current values without copying.
// A name already present in r panics — shard registries keep disjoint
// namespaces (hostN.*, fabric.portN.*, fabric.core.*), and a collision
// means the shard wiring double-registered an instrument.
//
// The merged view inherits the engine-confinement rules of every adopted
// source: read it only at synchronization barriers (or after the run),
// never while shard event loops are executing in parallel.
func (r *Registry) Adopt(src *Registry) {
	for n, c := range src.counters {
		if r.kindOf(n) != "" {
			panic(fmt.Sprintf("stats: Adopt collision on %q", n))
		}
		r.counters[n] = c
	}
	for n, g := range src.gauges {
		if r.kindOf(n) != "" {
			panic(fmt.Sprintf("stats: Adopt collision on %q", n))
		}
		r.gauges[n] = g
	}
	for n, h := range src.hists {
		if r.kindOf(n) != "" {
			panic(fmt.Sprintf("stats: Adopt collision on %q", n))
		}
		r.hists[n] = h
	}
}

// LookupHistogram returns the named histogram, or nil when absent. Unlike
// Histogram it never creates, so readers cannot typo a new empty series.
func (r *Registry) LookupHistogram(name string) *Histogram {
	return r.hists[name]
}

// Value returns the named counter or gauge value as a float64. The second
// result is false when the name is unregistered or names a histogram.
func (r *Registry) Value(name string) (float64, bool) {
	if c, ok := r.counters[name]; ok {
		return float64(c.Value()), true
	}
	if g, ok := r.gauges[name]; ok {
		return g.Value(), true
	}
	return 0, false
}

// Names returns every registered instrument name across all three kinds,
// sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the current value of every counter and gauge (histograms
// are distributions, not scalars, and are read via LookupHistogram).
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for n, c := range r.counters {
		out[n] = float64(c.Value())
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	return out
}

// String renders every instrument, one per line, in sorted name order —
// the deterministic dump format the registry tests lock down.
func (r *Registry) String() string {
	var b strings.Builder
	for i, n := range r.Names() {
		if i > 0 {
			b.WriteByte('\n')
		}
		switch {
		case r.counters[n] != nil:
			fmt.Fprintf(&b, "%s=%d", n, r.counters[n].Value())
		case r.gauges[n] != nil:
			b.WriteString(n)
			b.WriteByte('=')
			b.WriteString(strconv.FormatFloat(r.gauges[n].Value(), 'g', -1, 64))
		default:
			fmt.Fprintf(&b, "%s={%s}", n, r.hists[n])
		}
	}
	return b.String()
}
