package stats

import (
	"fastsafe/internal/sim"
)

// Series is one sampled time series: a probe's value at each sampler tick.
// Times holds the virtual timestamps (shared across all of one sampler's
// series) and Values the probe readings, index-aligned.
type Series struct {
	Name   string
	Times  []sim.Time
	Values []float64
}

// Window returns the sub-series with sample times in (from, to]. The
// returned slices alias the original backing arrays.
func (s Series) Window(from, to sim.Time) Series {
	lo := 0
	for lo < len(s.Times) && s.Times[lo] <= from {
		lo++
	}
	hi := lo
	for hi < len(s.Times) && s.Times[hi] <= to {
		hi++
	}
	return Series{Name: s.Name, Times: s.Times[lo:hi], Values: s.Values[lo:hi]}
}

// Sampler records per-interval time series in virtual time. It is driven
// by the simulation engine: once started, it schedules one self-renewing
// tick event every interval, reads every registered probe, and appends the
// readings to per-probe series.
//
// Probes must be strictly observational — read-only closures over live
// simulator state that never schedule events, mutate state, or consume
// engine randomness. Under that contract the sampler cannot perturb the
// relative order of simulation events: its ticks only interleave extra
// read-only callbacks into the event stream.
type Sampler struct {
	eng     *sim.Engine
	every   sim.Duration
	names   []string
	probes  []func(dt sim.Duration) float64
	times   []sim.Time
	values  [][]float64
	started bool
}

// NewSampler returns a sampler ticking every interval once started.
// Panics if every is not positive.
func NewSampler(eng *sim.Engine, every sim.Duration) *Sampler {
	if every <= 0 {
		panic("stats: sampler interval must be positive")
	}
	return &Sampler{eng: eng, every: every}
}

// Interval returns the sampling interval.
func (s *Sampler) Interval() sim.Duration { return s.every }

// Probe registers a named probe. fn receives the interval covered by this
// tick and returns the series value for it. Probes appear in Series() in
// registration order, which is fixed by the wiring code and therefore
// deterministic. Registering after Start panics: the series would be
// misaligned with the ticks already recorded.
func (s *Sampler) Probe(name string, fn func(dt sim.Duration) float64) {
	if s.started {
		panic("stats: Probe after sampler Start")
	}
	s.names = append(s.names, name)
	s.probes = append(s.probes, fn)
	s.values = append(s.values, nil)
}

// GaugeProbe registers a probe that samples an instantaneous value,
// ignoring the interval.
func (s *Sampler) GaugeProbe(name string, fn func() float64) {
	s.Probe(name, func(sim.Duration) float64 { return fn() })
}

// Start schedules the first tick one interval from now. Starting twice
// panics.
func (s *Sampler) Start() {
	if s.started {
		panic("stats: sampler started twice")
	}
	s.started = true
	s.eng.After(s.every, s.tick)
}

func (s *Sampler) tick() {
	s.times = append(s.times, s.eng.Now())
	for i, p := range s.probes {
		s.values[i] = append(s.values[i], p(s.every))
	}
	s.eng.After(s.every, s.tick)
}

// Series returns every recorded series in probe-registration order. The
// slices alias the sampler's backing arrays.
func (s *Sampler) Series() []Series {
	out := make([]Series, len(s.names))
	for i, n := range s.names {
		out[i] = Series{Name: n, Times: s.times, Values: s.values[i]}
	}
	return out
}

// SeriesWindow returns every series restricted to sample times in
// (from, to] — the measurement-window view of the timeline.
func (s *Sampler) SeriesWindow(from, to sim.Time) []Series {
	out := s.Series()
	for i := range out {
		out[i] = out[i].Window(from, to)
	}
	return out
}

// DeltaProbe adapts a cumulative int64 reader into a per-interval delta
// probe: each tick reports the growth since the previous tick.
func DeltaProbe(cum func() int64) func(sim.Duration) float64 {
	var prev int64
	return func(sim.Duration) float64 {
		now := cum()
		d := now - prev
		prev = now
		return float64(d)
	}
}

// GbpsProbe adapts a cumulative byte-count reader into a per-interval
// throughput probe in decimal gigabits per second.
func GbpsProbe(cumBytes func() int64) func(sim.Duration) float64 {
	var prev int64
	return func(dt sim.Duration) float64 {
		now := cumBytes()
		d := now - prev
		prev = now
		return Gbps(d, int64(dt))
	}
}

// PerPageProbe adapts two cumulative readers — an event count and a byte
// count — into a per-interval "events per 4KB page of data" probe, the
// paper's normalisation for cache-miss rates.
func PerPageProbe(count, bytes func() int64) func(sim.Duration) float64 {
	var prevC, prevB int64
	return func(sim.Duration) float64 {
		c, b := count(), bytes()
		dc, db := c-prevC, b-prevB
		prevC, prevB = c, b
		return PerPage(dc, db)
	}
}
