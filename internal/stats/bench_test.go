package stats

import "testing"

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i%100000 + 1))
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 100000; i++ {
		h.Observe(int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.999)
	}
}

func BenchmarkReuseDistanceTightLoop(b *testing.B) {
	r := NewReuseDistance()
	for i := 0; i < b.N; i++ {
		r.Access(uint64(i % 64))
	}
}
