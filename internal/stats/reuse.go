package stats

// ReuseDistance computes stack distances (also called reuse distances) over
// a stream of keys. For each access it reports the number of *unique* keys
// touched since the previous access to the same key, or -1 for a key's first
// access (a cold access).
//
// The paper plots, for each IOVA allocation, the number of unique PTcache-L3
// entries used before that entry recurs (Figures 2e/3e/7e/8e); a distance
// above the cache size predicts a miss under LRU.
//
// The implementation keeps an ordered list of keys in recency order with a
// balanced-tree-free scheme: a slice ordered by last access plus an index
// map with lazy compaction. Amortised cost per access is O(distance) in the
// worst case but O(1) for the tight-locality streams this repository
// generates; a correctness-first structure is appropriate here because the
// calculator runs offline over recorded traces.
type ReuseDistance struct {
	// stack holds keys from most recent (end) to least recent (start);
	// holes from promotions are marked with tombstones and compacted.
	stack []reuseEntry
	pos   map[uint64]int // key -> index in stack, -1 when absent
	live  int
}

type reuseEntry struct {
	key  uint64
	dead bool
}

// NewReuseDistance returns an empty calculator.
func NewReuseDistance() *ReuseDistance {
	return &ReuseDistance{pos: make(map[uint64]int)}
}

// Access records an access to key and returns its stack distance:
// the number of distinct other keys accessed since key's previous access,
// or -1 if key has not been seen before.
func (r *ReuseDistance) Access(key uint64) int {
	dist := -1
	if idx, ok := r.pos[key]; ok {
		// Count live entries above idx (more recent than key's last use).
		dist = 0
		for i := idx + 1; i < len(r.stack); i++ {
			if !r.stack[i].dead {
				dist++
			}
		}
		r.stack[idx].dead = true
		r.live--
	}
	r.stack = append(r.stack, reuseEntry{key: key})
	r.pos[key] = len(r.stack) - 1
	r.live++
	if len(r.stack) > 4*r.live+64 {
		r.compact()
	}
	return dist
}

func (r *ReuseDistance) compact() {
	out := r.stack[:0]
	for _, e := range r.stack {
		if !e.dead {
			out = append(out, e)
		}
	}
	r.stack = out
	for i, e := range r.stack {
		r.pos[e.key] = i
	}
}

// Unique returns the number of distinct keys seen so far.
func (r *ReuseDistance) Unique() int { return r.live }

// ReuseTrace records a bounded trace of stack distances, used to emit the
// per-allocation locality series in the figures.
type ReuseTrace struct {
	calc  *ReuseDistance
	Dists []int // -1 denotes a cold access
	limit int
}

// NewReuseTrace returns a trace that records at most limit distances
// (0 means unlimited).
func NewReuseTrace(limit int) *ReuseTrace {
	return &ReuseTrace{calc: NewReuseDistance(), limit: limit}
}

// Access records an access and appends its distance to the trace.
func (t *ReuseTrace) Access(key uint64) int {
	d := t.calc.Access(key)
	if t.limit == 0 || len(t.Dists) < t.limit {
		t.Dists = append(t.Dists, d)
	}
	return d
}

// FractionAbove reports the fraction of warm (non-cold) accesses whose
// distance is ≥ threshold — i.e. the fraction that would miss in an LRU
// cache of size threshold.
func (t *ReuseTrace) FractionAbove(threshold int) float64 {
	warm, above := 0, 0
	for _, d := range t.Dists {
		if d < 0 {
			continue
		}
		warm++
		if d >= threshold {
			above++
		}
	}
	if warm == 0 {
		return 0
	}
	return float64(above) / float64(warm)
}
