package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
//
// Counters are engine-confined, not atomic: every Counter (and Set)
// belongs to exactly one simulation's single-threaded event loop, and the
// sweep runner keeps whole simulations on single goroutines. Audited for
// the concurrent runner: nothing in this package is shared across hosts,
// so the hot-path increments stay plain int64 (go test -race enforces
// this in CI via the parallel-sweep tests).
type Counter struct{ n int64 }

// Add increments the counter by d (d may be zero; negative deltas are
// programming errors and panic to surface them early).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("stats: negative Counter delta")
	}
	c.n += d
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Set is a named collection of counters, the simulator's analogue of the
// PCM hardware counters the paper reads. Names are created on first use.
type Set struct {
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// C returns the counter with the given name, creating it if needed.
func (s *Set) C(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Value returns the value of the named counter (0 if never touched).
func (s *Set) Value(name string) int64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns all counter names in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counter values.
func (s *Set) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(s.counters))
	for n, c := range s.counters {
		out[n] = c.Value()
	}
	return out
}

// Reset zeroes every counter, keeping the names registered.
func (s *Set) Reset() {
	for _, c := range s.counters {
		c.Reset()
	}
}

func (s *Set) String() string {
	var b strings.Builder
	for i, n := range s.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, s.counters[n].Value())
	}
	return b.String()
}

// Ratio returns a/b as float64, or 0 when b is 0. It is the helper used to
// normalise miss counters "per page worth of data" the way the paper does.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Gbps converts a byte count over a duration in nanoseconds into gigabits
// per second (decimal gigabits, as in "100Gbps NIC").
func Gbps(bytes int64, ns int64) float64 {
	if ns == 0 {
		return 0
	}
	return float64(bytes) * 8 / float64(ns)
}

// PerPage normalises an event count by the number of 4KB pages a byte
// count spans — the paper's "misses per page worth of delivered data"
// unit, used for both the host-wide and the per-device breakdowns.
// Returns 0 when no bytes moved.
func PerPage(count, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(count) / (float64(bytes) / 4096)
}
