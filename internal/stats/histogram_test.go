package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(42)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("Min/Max = %d/%d, want 42/42", h.Min(), h.Max())
	}
	if h.Mean() != 42 {
		t.Fatalf("Mean = %v, want 42", h.Mean())
	}
	if got := h.Quantile(0.5); got != 42 {
		t.Fatalf("Quantile(0.5) = %d, want 42", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative sample should clamp to 0, got min %d", h.Min())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	samples := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1_000_000)
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		// Bucketed estimate must be within ~3.2% relative error of exact.
		lo := float64(exact) * 0.968
		hi := float64(exact) * 1.032
		if float64(got) < lo-64 || float64(got) > hi+64 {
			t.Errorf("Quantile(%v) = %d, exact %d (out of tolerance)", q, got, exact)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %d, want min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("Quantile(1) = %d, want max 100", got)
	}
	if got := h.Quantile(-0.5); got != 1 {
		t.Fatalf("Quantile(-0.5) = %d, want min", got)
	}
	if got := h.Quantile(2); got != 100 {
		t.Fatalf("Quantile(2) = %d, want max", got)
	}
}

func TestHistogramPercentilesMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Observe(rng.Int63n(100000))
	}
	p := h.Percentiles()
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1] {
			t.Fatalf("percentiles not monotonic: %v", p)
		}
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
	h.Observe(7)
	if h.Min() != 7 {
		t.Fatalf("Min after reset+observe = %d, want 7", h.Min())
	}
}

func TestBucketKeySmallValuesExact(t *testing.T) {
	for v := int64(0); v < subBuckets; v++ {
		if bucketKey(v) != v {
			t.Fatalf("bucketKey(%d) = %d, want exact", v, bucketKey(v))
		}
	}
}

func TestPropertyBucketKeyBounds(t *testing.T) {
	// Bucket lower bound never exceeds the value and is within ~1/64 of it.
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		k := bucketKey(v)
		if k > v {
			return false
		}
		return float64(v-k) <= float64(v)/32+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(10)
	if s := h.String(); s == "" {
		t.Fatal("String() returned empty")
	}
}
