// Package stats provides the measurement primitives used across the
// simulator: counters, latency histograms with percentile queries, and the
// stack-distance (reuse-distance) calculator used to reproduce the IOVA
// locality plots (Figures 2e, 3e, 7e, 8e of the paper).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram records int64 samples (typically latencies in nanoseconds) in
// logarithmically-spaced buckets with bounded relative error, similar in
// spirit to HDR histograms. The zero value is ready to use.
type Histogram struct {
	buckets map[int64]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// subBuckets controls relative precision: each power-of-two range is split
// into this many linear sub-buckets, bounding relative error to ~1/subBuckets.
const subBuckets = 64

// bucketKey maps a value to its bucket's lower bound.
func bucketKey(v int64) int64 {
	if v < subBuckets {
		return v
	}
	// Find the highest set bit.
	shift := 63 - leadingZeros(uint64(v))
	// Keep the top log2(subBuckets)+1 bits.
	drop := shift - 6 // log2(64) = 6
	if drop <= 0 {
		return v
	}
	return (v >> drop) << drop
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.buckets == nil {
		h.buckets = make(map[int64]int64)
		h.min = math.MaxInt64
	}
	h.buckets[bucketKey(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observed sample, or 0 with no samples.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample, or 0 with no samples.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1). The estimate
// is the lower bound of the bucket containing the quantile, so the relative
// error is bounded by the bucket width (~1.6%).
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	keys := make([]int64, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	rank := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for _, k := range keys {
		cum += h.buckets[k]
		if cum >= rank {
			return k
		}
	}
	return h.max
}

// Percentiles returns the standard tail-latency percentiles used in the
// paper's Figure 9: P50, P90, P99, P99.9, P99.99.
func (h *Histogram) Percentiles() [5]int64 {
	return [5]int64{
		h.Quantile(0.50),
		h.Quantile(0.90),
		h.Quantile(0.99),
		h.Quantile(0.999),
		h.Quantile(0.9999),
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.buckets = nil
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

func (h *Histogram) String() string {
	p := h.Percentiles()
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p90=%d p99=%d p999=%d p9999=%d max=%d",
		h.count, h.Mean(), p[0], p[1], p[2], p[3], p[4], h.max)
}
