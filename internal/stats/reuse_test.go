package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReuseColdAccess(t *testing.T) {
	r := NewReuseDistance()
	if d := r.Access(1); d != -1 {
		t.Fatalf("first access distance = %d, want -1", d)
	}
	if d := r.Access(2); d != -1 {
		t.Fatalf("first access of new key = %d, want -1", d)
	}
	if r.Unique() != 2 {
		t.Fatalf("Unique = %d, want 2", r.Unique())
	}
}

func TestReuseImmediateRepeat(t *testing.T) {
	r := NewReuseDistance()
	r.Access(1)
	if d := r.Access(1); d != 0 {
		t.Fatalf("immediate repeat distance = %d, want 0", d)
	}
}

func TestReuseKnownSequence(t *testing.T) {
	// Sequence a b c a: distance of the final a is 2 (b and c intervened).
	r := NewReuseDistance()
	r.Access('a')
	r.Access('b')
	r.Access('c')
	if d := r.Access('a'); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
	// Now b: since b's last access we saw c and a -> 2.
	if d := r.Access('b'); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
}

func TestReuseDuplicatesNotDoubleCounted(t *testing.T) {
	// a b b b a: unique keys between the two a's is 1.
	r := NewReuseDistance()
	r.Access('a')
	r.Access('b')
	r.Access('b')
	r.Access('b')
	if d := r.Access('a'); d != 1 {
		t.Fatalf("distance = %d, want 1 (b counted once)", d)
	}
}

func TestReuseCompactionPreservesDistances(t *testing.T) {
	// Hammer two keys to force many tombstones and compactions, then check
	// a long-dormant key still gets the right distance.
	r := NewReuseDistance()
	r.Access(100)
	for i := 0; i < 1000; i++ {
		r.Access(1)
		r.Access(2)
	}
	if d := r.Access(100); d != 2 {
		t.Fatalf("distance = %d, want 2 after compactions", d)
	}
}

// Reference implementation: brute-force scan of the access history.
func bruteForceDistances(keys []uint64) []int {
	out := make([]int, len(keys))
	for i, k := range keys {
		last := -1
		for j := i - 1; j >= 0; j-- {
			if keys[j] == k {
				last = j
				break
			}
		}
		if last < 0 {
			out[i] = -1
			continue
		}
		uniq := map[uint64]bool{}
		for j := last + 1; j < i; j++ {
			uniq[keys[j]] = true
		}
		out[i] = len(uniq)
	}
	return out
}

func TestPropertyReuseMatchesBruteForce(t *testing.T) {
	f := func(raw []uint8) bool {
		keys := make([]uint64, len(raw))
		for i, b := range raw {
			keys[i] = uint64(b % 16) // small key space forces reuse
		}
		want := bruteForceDistances(keys)
		r := NewReuseDistance()
		for i, k := range keys {
			if got := r.Access(k); got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReuseRandomLargeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(50))
	}
	want := bruteForceDistances(keys)
	r := NewReuseDistance()
	for i, k := range keys {
		if got := r.Access(k); got != want[i] {
			t.Fatalf("access %d key %d: got %d want %d", i, k, got, want[i])
		}
	}
}

func TestReuseTraceLimit(t *testing.T) {
	tr := NewReuseTrace(3)
	for i := 0; i < 10; i++ {
		tr.Access(uint64(i))
	}
	if len(tr.Dists) != 3 {
		t.Fatalf("trace length = %d, want 3", len(tr.Dists))
	}
}

func TestReuseTraceFractionAbove(t *testing.T) {
	tr := NewReuseTrace(0)
	// Pattern: keys 0..4 repeated twice gives 5 warm accesses at distance 4.
	for rep := 0; rep < 2; rep++ {
		for k := uint64(0); k < 5; k++ {
			tr.Access(k)
		}
	}
	if got := tr.FractionAbove(5); got != 0 {
		t.Fatalf("FractionAbove(5) = %v, want 0", got)
	}
	if got := tr.FractionAbove(4); got != 1 {
		t.Fatalf("FractionAbove(4) = %v, want 1", got)
	}
}

func TestReuseTraceFractionAboveNoWarm(t *testing.T) {
	tr := NewReuseTrace(0)
	tr.Access(1)
	tr.Access(2)
	if got := tr.FractionAbove(1); got != 0 {
		t.Fatalf("FractionAbove with only cold accesses = %v, want 0", got)
	}
}
