package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"fastsafe/internal/sim"
)

func TestRegistryCreateOnFirstUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("walks")
	c.Add(3)
	if r.Counter("walks") != c {
		t.Fatal("Counter did not return the existing instrument")
	}
	if v, ok := r.Value("walks"); !ok || v != 3 {
		t.Fatalf("Value(walks) = %v,%v, want 3,true", v, ok)
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-0.5)
	if v, ok := r.Value("depth"); !ok || v != 2 {
		t.Fatalf("Value(depth) = %v,%v, want 2,true", v, ok)
	}

	h := r.Histogram("lat")
	h.Observe(10)
	if r.LookupHistogram("lat") != h {
		t.Fatal("LookupHistogram did not return the registered histogram")
	}
	if r.LookupHistogram("absent") != nil {
		t.Fatal("LookupHistogram invented a histogram")
	}
	if _, ok := r.Value("lat"); ok {
		t.Fatal("Value must not report histograms as scalars")
	}
}

func TestRegistryGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := int64(7)
	r.GaugeFunc("live", func() float64 { return float64(n) })
	if v, _ := r.Value("live"); v != 7 {
		t.Fatalf("Value = %v, want 7", v)
	}
	n = 9
	if v, _ := r.Value("live"); v != 9 {
		t.Fatalf("Value = %v, want live read 9", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set on function-backed gauge did not panic")
		}
	}()
	r.gauges["live"].Set(1)
}

// A GaugeFunc registered after the gauge object already escaped — via
// Gauge() or an Adopt merge into another registry — must rebind the
// existing object, not replace it: every holder of the old pointer
// would otherwise keep reading a detached zero.
func TestRegistryGaugeFuncRebindsInPlace(t *testing.T) {
	r := NewRegistry()
	held := r.Gauge("live") // escapes before the probe exists
	merged := NewRegistry()
	merged.Adopt(r)
	r.GaugeFunc("live", func() float64 { return 42 })
	if v := held.Value(); v != 42 {
		t.Fatalf("held gauge = %v, want 42 (probe rebound in place)", v)
	}
	if v, ok := merged.Value("live"); !ok || v != 42 {
		t.Fatalf("adopted Value(live) = %v,%v, want 42,true", v, ok)
	}
	if v := merged.Snapshot()["live"]; v != 42 {
		t.Fatalf("adopted Snapshot[live] = %v, want 42", v)
	}
	// Replacing one probe with another keeps the same object too.
	r.GaugeFunc("live", func() float64 { return 43 })
	if v, _ := merged.Value("live"); v != 43 {
		t.Fatalf("adopted Value(live) after rebind = %v, want 43", v)
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind reuse did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistryAdoptedHistogramIsShared(t *testing.T) {
	r := NewRegistry()
	var h Histogram
	h.Observe(5)
	r.AddHistogram("rpc", &h)
	h.Observe(6)
	if got := r.LookupHistogram("rpc").Count(); got != 2 {
		t.Fatalf("adopted histogram count = %d, want 2 (shared object)", got)
	}
}

// Registry dumps must be deterministic: sorted by name regardless of
// registration order or Go's map iteration order.
func TestRegistryDumpOrderDeterministic(t *testing.T) {
	names := []string{"nic.rx", "iommu.walks", "mem.util", "a", "zz", "pcie.lat"}
	build := func(perm []int) *Registry {
		r := NewRegistry()
		for _, i := range perm {
			n := names[i]
			switch i % 3 {
			case 0:
				r.Counter(n).Add(int64(i))
			case 1:
				r.Gauge(n).Set(float64(i) / 2)
			default:
				r.Histogram(n).Observe(int64(i))
			}
		}
		return r
	}
	perm := rand.New(rand.NewSource(1)).Perm(len(names))
	ref := build([]int{0, 1, 2, 3, 4, 5})
	got := build(perm)
	if ref.String() != got.String() {
		t.Fatalf("dump depends on registration order:\n%s\nvs\n%s", ref, got)
	}
	if !sort.StringsAreSorted(got.Names()) {
		t.Fatalf("Names() not sorted: %v", got.Names())
	}
	for i := 0; i < 10; i++ {
		if got.String() != ref.String() {
			t.Fatal("String() not stable across repeated calls")
		}
	}
	if !strings.Contains(ref.String(), "iommu.walks=0.5") {
		t.Fatalf("unexpected dump contents:\n%s", ref)
	}
}

// Set dumps (the pre-registry counter collection) must also iterate
// deterministically.
func TestSetDumpOrderDeterministic(t *testing.T) {
	names := []string{"m", "c", "x", "a", "k"}
	build := func(perm []int) *Set {
		s := NewSet()
		for _, i := range perm {
			s.C(names[i]).Add(int64(i + 1))
		}
		return s
	}
	ref := build([]int{0, 1, 2, 3, 4})
	got := build(rand.New(rand.NewSource(2)).Perm(len(names)))
	if ref.String() != got.String() {
		t.Fatalf("Set dump depends on insertion order:\n%s\nvs\n%s", ref, got)
	}
	if !sort.StringsAreSorted(got.Names()) {
		t.Fatalf("Set.Names() not sorted: %v", got.Names())
	}
}

// Histogram quantiles must agree exactly with a sorted-slice oracle after
// both are pushed through the bucket quantisation: the histogram's
// Quantile(q) is the bucket lower bound of the sample at rank ceil(q*n).
func TestHistogramQuantileMatchesSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		var v int64
		switch i % 3 {
		case 0:
			v = rng.Int63n(100) // dense small values, below bucket quantisation
		case 1:
			v = rng.Int63n(1 << 20)
		default:
			v = rng.Int63n(1 << 40)
		}
		h.Observe(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999} {
		rank := int64(math.Ceil(q * float64(len(samples))))
		oracle := bucketKey(samples[rank-1])
		if got := h.Quantile(q); got != oracle {
			t.Fatalf("Quantile(%g) = %d, oracle (rank %d) = %d", q, got, rank, oracle)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("extreme quantiles must return min/max")
	}
}

func TestSamplerSeriesAndWindow(t *testing.T) {
	e := sim.NewEngine(1)
	s := NewSampler(e, 10)
	var ticks int64
	s.Probe("dt", func(dt sim.Duration) float64 { ticks++; return float64(dt) })
	s.GaugeProbe("now", func() float64 { return float64(e.Now()) })
	s.Probe("delta", DeltaProbe(func() int64 { return 3 * ticks }))
	s.Start()
	e.Run(45)

	series := s.Series()
	if len(series) != 3 {
		t.Fatalf("got %d series, want 3", len(series))
	}
	if got := series[0]; got.Name != "dt" || len(got.Times) != 4 {
		t.Fatalf("series[0] = %+v, want 4 ticks of dt", got)
	}
	for i, at := range []sim.Time{10, 20, 30, 40} {
		if series[1].Times[i] != at || series[1].Values[i] != float64(at) {
			t.Fatalf("tick %d: got t=%v v=%v, want %v", i, series[1].Times[i], series[1].Values[i], at)
		}
	}
	// DeltaProbe: first tick sees the full cumulative value, then +3 each.
	if series[2].Values[0] != 3 || series[2].Values[3] != 3 {
		t.Fatalf("delta series = %v, want all 3s", series[2].Values)
	}

	w := s.SeriesWindow(10, 30)
	if len(w[1].Times) != 2 || w[1].Times[0] != 20 || w[1].Times[1] != 30 {
		t.Fatalf("window (10,30] times = %v, want [20 30]", w[1].Times)
	}
}

func TestSamplerProbeAfterStartPanics(t *testing.T) {
	e := sim.NewEngine(1)
	s := NewSampler(e, 5)
	s.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("Probe after Start did not panic")
		}
	}()
	s.Probe("late", func(sim.Duration) float64 { return 0 })
}

func TestProbeAdapters(t *testing.T) {
	var bytes int64
	gp := GbpsProbe(func() int64 { return bytes })
	bytes = 1250 // 1250 B over 100 ns = 100 Gbps
	if got := gp(100); got != 100 {
		t.Fatalf("GbpsProbe = %v, want 100", got)
	}
	bytes += 2500
	if got := gp(100); got != 200 {
		t.Fatalf("GbpsProbe second interval = %v, want 200", got)
	}

	var misses, moved int64
	pp := PerPageProbe(func() int64 { return misses }, func() int64 { return moved })
	misses, moved = 8, 4*4096
	if got := pp(0); got != 2 {
		t.Fatalf("PerPageProbe = %v, want 2", got)
	}
	if got := pp(0); got != 0 {
		t.Fatalf("PerPageProbe with no growth = %v, want 0", got)
	}
}

// TestAdoptMergesByReferenceAndPanicsOnCollision covers the sharded
// cluster's merged read-only view: adopted instruments stay live (the
// controller's Value reads see source mutations), and a namespace
// collision — shard wiring double-registering a name — panics.
func TestAdoptMergesByReferenceAndPanicsOnCollision(t *testing.T) {
	src := NewRegistry()
	c := src.Counter("host0.ticks")
	g := src.Gauge("host0.depth")
	src.Histogram("host0.lat")
	merged := NewRegistry()
	merged.Counter("fabric.drops")
	merged.Adopt(src)
	c.Add(3)
	g.Set(7)
	if v, ok := merged.Value("host0.ticks"); !ok || v != 3 {
		t.Fatalf("adopted counter = %v, %v; want live value 3", v, ok)
	}
	if v, ok := merged.Value("host0.depth"); !ok || v != 7 {
		t.Fatalf("adopted gauge = %v, %v; want live value 7", v, ok)
	}
	if merged.LookupHistogram("host0.lat") == nil {
		t.Fatal("adopted histogram absent from merged view")
	}
	for _, dup := range []string{"counter", "gauge", "hist"} {
		other := NewRegistry()
		switch dup {
		case "counter":
			other.Counter("host0.ticks")
		case "gauge":
			other.Gauge("host0.depth")
		case "hist":
			other.Histogram("host0.lat")
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Adopt with duplicate %s did not panic", dup)
				}
			}()
			merged.Adopt(other)
		}()
	}
}
