package stats

import (
	"strings"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero counter")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestSetCreatesOnFirstUse(t *testing.T) {
	s := NewSet()
	s.C("iotlb_miss").Inc()
	s.C("iotlb_miss").Inc()
	if got := s.Value("iotlb_miss"); got != 2 {
		t.Fatalf("Value = %d, want 2", got)
	}
	if got := s.Value("never"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet()
	s.C("z").Inc()
	s.C("a").Inc()
	s.C("m").Inc()
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("Names = %v, want sorted [a m z]", names)
	}
}

func TestSetSnapshotIsCopy(t *testing.T) {
	s := NewSet()
	s.C("x").Add(7)
	snap := s.Snapshot()
	s.C("x").Inc()
	if snap["x"] != 7 {
		t.Fatalf("snapshot mutated: %d", snap["x"])
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet()
	s.C("x").Add(3)
	s.Reset()
	if s.Value("x") != 0 {
		t.Fatal("Reset did not zero counters")
	}
	// Name should still be registered.
	if len(s.Names()) != 1 {
		t.Fatal("Reset dropped counter names")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.C("b").Add(2)
	s.C("a").Add(1)
	if got := s.String(); !strings.Contains(got, "a=1") || !strings.Contains(got, "b=2") {
		t.Fatalf("String = %q", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 4); got != 0.75 {
		t.Fatalf("Ratio = %v, want 0.75", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Fatalf("Ratio by zero = %v, want 0", got)
	}
}

func TestGbps(t *testing.T) {
	// 12.5 GB transferred in 1 second = 100 Gbps.
	if got := Gbps(12_500_000_000, 1_000_000_000); got != 100 {
		t.Fatalf("Gbps = %v, want 100", got)
	}
	if got := Gbps(100, 0); got != 0 {
		t.Fatalf("Gbps with zero time = %v, want 0", got)
	}
}
