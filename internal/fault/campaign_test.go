// Campaign tests drive whole-host simulations through the fault layer, so
// they live outside the package (internal/host imports internal/fault).
package fault_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/fault"
	"fastsafe/internal/host"
	"fastsafe/internal/sim"
)

// runFaulted executes one short faulted simulation and returns everything
// replay determinism is judged on.
type outcome struct {
	rxGbps   float64
	injected fault.Counters
	safety   fault.SafetyReport
}

func runFaulted(t *testing.T, mode core.Mode, plan fault.Plan, seed, fseed int64) outcome {
	t.Helper()
	h, err := host.New(host.Config{
		Mode:      mode,
		Seed:      seed,
		Faults:    plan,
		FaultSeed: fseed,
		Audit:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := h.Run(2*sim.Millisecond, 5*sim.Millisecond)
	return outcome{rxGbps: r.RxGbps, injected: h.Faults().Counters(), safety: h.Auditor().Report()}
}

// faultSeeds is the replay-sweep width: FAULT_SEEDS overrides the local
// default (CI runs 64, the nightly schedule 1024).
func faultSeeds(t *testing.T) int {
	if v := os.Getenv("FAULT_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("FAULT_SEEDS=%q: want a positive integer", v)
		}
		return n
	}
	return 8
}

// TestReplayDeterminism is the core contract: the same (plan, seed,
// fault-seed) triple must replay to the identical fault sequence and the
// identical safety report, for every seed in the sweep.
func TestReplayDeterminism(t *testing.T) {
	plan := fault.Campaign(1)
	for i := 0; i < faultSeeds(t); i++ {
		seed := int64(i + 1)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			a := runFaulted(t, core.FNS, plan, seed, seed)
			b := runFaulted(t, core.FNS, plan, seed, seed)
			if a != b {
				t.Fatalf("replay diverged:\n  first  %+v\n  second %+v", a, b)
			}
			if a.injected.Total() == 0 {
				t.Fatal("campaign injected nothing — the sweep is vacuous")
			}
			if a.safety.Checked == 0 {
				t.Fatal("auditor checked nothing — the sweep is vacuous")
			}
		})
	}
}

// TestFaultSeedVariesSequence: different fault seeds under the same
// simulation seed must produce different fault sequences — otherwise the
// sweep above explores a single point.
func TestFaultSeedVariesSequence(t *testing.T) {
	plan := fault.Campaign(1)
	a := runFaulted(t, core.FNS, plan, 1, 1)
	b := runFaulted(t, core.FNS, plan, 1, 2)
	if a.injected == b.injected {
		t.Fatalf("fault seeds 1 and 2 injected identical sequences: %+v", a.injected)
	}
}

// randomPlan draws a plan with every fault class active at a random rate,
// bounded so a 7ms simulation still terminates quickly.
func randomPlan(rng *rand.Rand) fault.Plan {
	period := func(lo sim.Duration) sim.Duration {
		return lo + sim.Duration(rng.Int63n(int64(2*sim.Millisecond)))
	}
	return fault.Plan{
		InvDrop:          rng.Float64() * 0.1,
		InvDelay:         rng.Float64() * 0.1,
		WritebackDelay:   rng.Float64() * 0.05,
		StrayDMA:         rng.Float64() * 0.05,
		WildDMA:          rng.Float64() * 0.02,
		DupDescRead:      rng.Float64() * 0.1,
		AllocFail:        rng.Float64() * 0.02,
		RcacheFlushEvery: period(500 * sim.Microsecond),
		LinkFlapEvery:    period(300 * sim.Microsecond),
		MemSpikeEvery:    period(400 * sim.Microsecond),
	}
}

// TestStrictSafetyModesNeverServeStale is the property the whole layer
// exists to check: for ANY generated plan, the strict-safety modes audit
// zero stale-served DMAs. The plans are random but the seed is fixed, so
// a failure replays.
func TestStrictSafetyModesNeverServeStale(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		plan := randomPlan(rng)
		for _, mode := range []core.Mode{core.Strict, core.FNS} {
			mode, plan := mode, plan
			t.Run(fmt.Sprintf("trial%d/%s", trial, mode), func(t *testing.T) {
				t.Parallel()
				o := runFaulted(t, mode, plan, 1, int64(trial+1))
				if v := o.safety.Violations(); v != 0 {
					t.Fatalf("%s served %d stale DMAs under plan %+v\nreport: %+v",
						mode, v, plan, o.safety)
				}
			})
		}
	}
}

// TestStrawmanCaughtWithinOneWindow: the defer-noshootdown strawman skips
// IOTLB shootdowns, so under the canonical campaign the auditor must
// catch stale-served DMAs within a single measurement window — the
// regression that proves the auditor can actually see violations.
func TestStrawmanCaughtWithinOneWindow(t *testing.T) {
	o := runFaulted(t, core.DeferNoShootdown, fault.Campaign(1), 1, 1)
	if v := o.safety.Violations(); v == 0 {
		t.Fatalf("defer-noshootdown audited zero violations: %+v", o.safety)
	}
}

// TestCapabilityFamilySafetyOrdering is the capability-family analogue
// of the strict-vs-strawman pair above, swept across FAULT_SEEDS replay
// schedules: eager cap revokes grants inside the unmap, so like strict
// it must audit zero stale-served DMAs under every fault schedule, while
// cap-lazyrevoke batches revocations and must be caught serving through
// the stale-capability window somewhere in the sweep — and every one of
// its violations must classify as StaleCapability (the capability family
// has no IOTLB or ATC to serve stale from).
func TestCapabilityFamilySafetyOrdering(t *testing.T) {
	plan := fault.Campaign(1)
	var lazyStale atomic.Int64
	t.Run("sweep", func(t *testing.T) {
		for i := 0; i < faultSeeds(t); i++ {
			fseed := int64(i + 1)
			t.Run(fmt.Sprintf("fseed%d", fseed), func(t *testing.T) {
				t.Parallel()
				eager := runFaulted(t, core.Cap, plan, 1, fseed)
				if v := eager.safety.Violations(); v != 0 {
					t.Fatalf("cap served %d stale DMAs under fseed %d: %+v", v, fseed, eager.safety)
				}
				if eager.safety.Checked == 0 {
					t.Fatal("auditor checked nothing under cap — the sweep is vacuous")
				}
				lazy := runFaulted(t, core.CapLazyRevoke, plan, 1, fseed)
				if got, cap := lazy.safety.Violations(), lazy.safety.StaleCapability; got != cap {
					t.Fatalf("cap-lazyrevoke violations %d not all stale-capability (%d): %+v",
						got, cap, lazy.safety)
				}
				lazyStale.Add(lazy.safety.StaleCapability)
			})
		}
	})
	if lazyStale.Load() == 0 {
		t.Fatal("cap-lazyrevoke audited zero stale-capability serves across the sweep — the lazy window is invisible to the auditor")
	}
}

// TestFNSRetainsGoodputUnderCampaign locks the paper-extension headline:
// F&S keeps >=95%% of its fault-free goodput under the full gauntlet.
func TestFNSRetainsGoodputUnderCampaign(t *testing.T) {
	clean := runFaulted(t, core.FNS, fault.Plan{}, 1, 1)
	hot := runFaulted(t, core.FNS, fault.Campaign(1), 1, 1)
	if hot.rxGbps < 0.95*clean.rxGbps {
		t.Fatalf("FNS goodput under campaign = %.1f Gbps, clean = %.1f Gbps (< 95%%)",
			hot.rxGbps, clean.rxGbps)
	}
}

// TestAuditorAloneIsFree: auditing a fault-free run observes without
// perturbing — identical goodput, zero faults, zero violations.
func TestAuditorAloneIsFree(t *testing.T) {
	plain, err := host.New(host.Config{Mode: core.FNS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pr := plain.Run(2*sim.Millisecond, 5*sim.Millisecond)
	audited := runFaulted(t, core.FNS, fault.Plan{}, 1, 0)
	if audited.rxGbps != pr.RxGbps {
		t.Fatalf("auditor changed goodput: %.3f vs %.3f", audited.rxGbps, pr.RxGbps)
	}
	if audited.injected.Total() != 0 || audited.safety.Violations() != 0 {
		t.Fatalf("fault-free audited run not clean: %+v / %+v", audited.injected, audited.safety)
	}
	if audited.safety.Checked == 0 {
		t.Fatal("auditor checked nothing")
	}
}
