package fault

import (
	"math/rand"

	"fastsafe/internal/iommu"
	"fastsafe/internal/mem"
	"fastsafe/internal/pcie"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// Counters tallies every injected fault by class. They count injections,
// not their consequences — the consequences are the auditor's job.
type Counters struct {
	InvDrops        int64 // invalidation completions lost (resubmitted by safe modes)
	InvDelays       int64 // invalidation completions delayed
	WritebackDelays int64 // NIC descriptor writebacks delayed
	StrayDMAs       int64 // device replays of previously used IOVAs
	WildDMAs        int64 // device accesses to never-mapped, unaligned IOVAs
	DupDescReads    int64 // duplicate out-of-window descriptor fetches
	AllocFails      int64 // transient IOVA allocation failures
	RcacheFlushes   int64 // forced full rcache flushes
	LinkFlaps       int64 // transient PCIe link stalls
	MemSpikes       int64 // memory-bus antagonist bursts
	Retries         int64 // benign driver retries the injections provoked
}

// Total sums every injection class (retries excluded: they are a
// consequence, not an injection).
func (c Counters) Total() int64 {
	return c.InvDrops + c.InvDelays + c.WritebackDelays + c.StrayDMAs +
		c.WildDMAs + c.DupDescReads + c.AllocFails + c.RcacheFlushes +
		c.LinkFlaps + c.MemSpikes
}

// Injector executes a Plan against one host. Every decision method is
// nil-safe and answers "no fault" on a nil receiver, so call sites stay
// unconditional; a zero plan simply never constructs an Injector.
type Injector struct {
	eng      *sim.Engine
	plan     Plan
	rng      *rand.Rand
	aud      *Auditor
	c        Counters
	links    []*pcie.Link
	buses    []*mem.Bus
	flushers []func() int
	started  bool
}

// NewInjector builds an injector for plan, or nil when the plan is
// disabled. The RNG is private to the injector: fault decisions must not
// perturb the workload's or allocator's random streams.
func NewInjector(eng *sim.Engine, plan Plan, seed int64) *Injector {
	if !plan.Enabled() {
		return nil
	}
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		eng:  eng,
		plan: plan.withDefaults(),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Plan returns the effective (default-filled) plan; zero on nil.
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// Counters returns the injection tallies so far; zero on nil.
func (i *Injector) Counters() Counters {
	if i == nil {
		return Counters{}
	}
	return i.c
}

// SetAuditor routes benign-retry attribution into the auditor's
// per-domain safety reports.
func (i *Injector) SetAuditor(a *Auditor) {
	if i != nil {
		i.aud = a
	}
}

// AttachLink registers a PCIe link as a flap target.
func (i *Injector) AttachLink(l *pcie.Link) {
	if i != nil && l != nil {
		i.links = append(i.links, l)
	}
}

// AttachBus registers a memory bus as a spike target.
func (i *Injector) AttachBus(b *mem.Bus) {
	if i != nil && b != nil {
		i.buses = append(i.buses, b)
	}
}

// AttachFlusher registers an rcache flush callback (one per domain).
func (i *Injector) AttachFlusher(fn func() int) {
	if i != nil && fn != nil {
		i.flushers = append(i.flushers, fn)
	}
}

// Start schedules the plan's periodic disturbances. Idempotent; a nil
// injector starts nothing.
func (i *Injector) Start() {
	if i == nil || i.started {
		return
	}
	i.started = true
	// Periodic disturbances honour the plan's activity window: the
	// first tick lands one period after the window opens, and a tick
	// firing past the window's end neither acts nor reschedules. With
	// the zero window (Start and For both 0) the schedule is exactly
	// the pre-window one.
	if p := i.plan.LinkFlapEvery; p > 0 {
		i.eng.After(i.plan.Start+p, i.flapTick)
	}
	if p := i.plan.MemSpikeEvery; p > 0 {
		i.eng.After(i.plan.Start+p, i.spikeTick)
	}
	if p := i.plan.RcacheFlushEvery; p > 0 {
		i.eng.After(i.plan.Start+p, i.rcacheTick)
	}
}

// active reports whether the virtual clock sits inside the plan's
// injection window [Start, Start+For).
func (i *Injector) active() bool {
	now := i.eng.Now()
	if now < sim.Time(i.plan.Start) {
		return false
	}
	return i.plan.For == 0 || now < sim.Time(i.plan.Start+i.plan.For)
}

func (i *Injector) flapTick() {
	if !i.active() {
		return
	}
	i.c.LinkFlaps++
	until := i.eng.Now() + i.plan.LinkFlapFor
	for _, l := range i.links {
		l.Stall(until)
	}
	i.eng.After(i.plan.LinkFlapEvery, i.flapTick)
}

// spikeTick pushes an antagonist burst through every attached bus:
// MemSpikeGBps worth of 64KB chunk arrivals spread over MemSpikeFor,
// the same shape as the workload-level memory hog.
func (i *Injector) spikeTick() {
	if !i.active() {
		return
	}
	i.c.MemSpikes++
	const chunk = 64 << 10
	bytes := i.plan.MemSpikeGBps * float64(i.plan.MemSpikeFor) // GB/s × ns = bytes
	n := int(bytes / chunk)
	if n < 1 {
		n = 1
	}
	interval := i.plan.MemSpikeFor / sim.Duration(n)
	for k := 0; k < n; k++ {
		i.eng.After(sim.Duration(k)*interval, func() {
			for _, b := range i.buses {
				b.Consume(chunk)
			}
		})
	}
	i.eng.After(i.plan.MemSpikeEvery, i.spikeTick)
}

func (i *Injector) rcacheTick() {
	if !i.active() {
		return
	}
	i.c.RcacheFlushes++
	for _, fn := range i.flushers {
		fn()
	}
	i.eng.After(i.plan.RcacheFlushEvery, i.rcacheTick)
}

// roll is the one probability gate: every per-opportunity fault class
// decides through it, so the activity window uniformly gates them all.
// Outside the window no randomness is consumed — the in-window decision
// stream is therefore identical whether or not quiet phases precede it.
func (i *Injector) roll(p float64) bool {
	return p > 0 && i.active() && i.rng.Float64() < p
}

func (i *Injector) noteRetry(d iommu.DomainID) {
	i.c.Retries++
	if i.aud != nil {
		i.aud.noteRetry(d)
	}
}

// DropInv reports whether this invalidation completion is lost. The
// caller models the driver's timeout-and-resubmit; the drop itself is a
// benign retry in every mode that waits for completion.
func (i *Injector) DropInv(d iommu.DomainID) bool {
	if i == nil || !i.roll(i.plan.InvDrop) {
		return false
	}
	i.c.InvDrops++
	i.noteRetry(d)
	return true
}

// DelayInv returns the extra latency of a delayed invalidation
// completion (0 = not delayed).
func (i *Injector) DelayInv(d iommu.DomainID) sim.Duration {
	if i == nil || !i.roll(i.plan.InvDelay) {
		return 0
	}
	i.c.InvDelays++
	_ = d
	return i.plan.InvDelayBy
}

// DelayWriteback returns the extra latency of a delayed descriptor
// writeback (0 = not delayed).
func (i *Injector) DelayWriteback() sim.Duration {
	if i == nil || !i.roll(i.plan.WritebackDelay) {
		return 0
	}
	i.c.WritebackDelays++
	return i.plan.WritebackDelayBy
}

// FailAlloc reports whether this IOVA allocation transiently fails; the
// caller charges the driver's back-off-and-retry cost.
func (i *Injector) FailAlloc(d iommu.DomainID) bool {
	if i == nil || !i.roll(i.plan.AllocFail) {
		return false
	}
	i.c.AllocFails++
	i.noteRetry(d)
	return true
}

// RegisterProbes exposes the injection counters under prefix
// (e.g. "fault.").
func (i *Injector) RegisterProbes(r *stats.Registry, prefix string) {
	if i == nil {
		return
	}
	probe := func(name string, fn func(Counters) int64) {
		r.GaugeFunc(prefix+name, func() float64 { return float64(fn(i.c)) })
	}
	probe("inv_drops", func(c Counters) int64 { return c.InvDrops })
	probe("inv_delays", func(c Counters) int64 { return c.InvDelays })
	probe("writeback_delays", func(c Counters) int64 { return c.WritebackDelays })
	probe("stray_dmas", func(c Counters) int64 { return c.StrayDMAs })
	probe("wild_dmas", func(c Counters) int64 { return c.WildDMAs })
	probe("dup_desc_reads", func(c Counters) int64 { return c.DupDescReads })
	probe("alloc_fails", func(c Counters) int64 { return c.AllocFails })
	probe("rcache_flushes", func(c Counters) int64 { return c.RcacheFlushes })
	probe("link_flaps", func(c Counters) int64 { return c.LinkFlaps })
	probe("mem_spikes", func(c Counters) int64 { return c.MemSpikes })
	probe("retries", func(c Counters) int64 { return c.Retries })
	probe("total", func(c Counters) int64 { return c.Total() })
}
