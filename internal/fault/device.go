package fault

import (
	"fastsafe/internal/iommu"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// Translator is the slice of a protection domain a misbehaving device
// needs: the ability to issue translations. *core.Domain satisfies it.
type Translator interface {
	Translate(v ptable.IOVA) iommu.Translation
}

// strayWindow is how many recently used IOVAs a misbehaving device
// remembers. Replays come from this ring, so most hit addresses the
// driver has already unmapped and recycled — exactly the window a
// stale-TLB safety hole needs.
const strayWindow = 256

// Device injects device-side misbehaviour for one attached device: DMA
// replays of previously used (likely freed) IOVAs, accesses to
// never-mapped unaligned addresses, and duplicate out-of-window
// descriptor reads. All methods are nil-safe no-ops so devices hold an
// unconditional pointer.
type Device struct {
	inj    *Injector
	dom    Translator
	window []ptable.IOVA
	next   int
	wild   uint64
}

// Device builds the misbehaviour hook for one device's domain; nil on a
// nil injector (no plan).
func (i *Injector) Device(dom Translator) *Device {
	if i == nil || dom == nil {
		return nil
	}
	return &Device{inj: i, dom: dom}
}

// Observe records an IOVA the device legitimately used; stray replays
// draw from this ring. Cheap enough to call per DMA batch.
func (d *Device) Observe(v ptable.IOVA) {
	if d == nil || d.inj.plan.StrayDMA <= 0 {
		return
	}
	if len(d.window) < strayWindow {
		d.window = append(d.window, v)
		return
	}
	d.window[d.next] = v
	d.next = (d.next + 1) % strayWindow
}

// MaybeMisbehave rolls the device-misbehaviour dice once and issues any
// resulting adversarial translations against the domain. It returns the
// extra page-table memory reads the misbehaviour cost, which the caller
// charges to the in-flight DMA; the translations themselves flow through
// the shared IOMMU and are classified by the auditor like any other.
func (d *Device) MaybeMisbehave() int {
	if d == nil {
		return 0
	}
	reads := 0
	if len(d.window) > 0 && d.inj.roll(d.inj.plan.StrayDMA) {
		d.inj.c.StrayDMAs++
		v := d.window[d.inj.rng.Intn(len(d.window))]
		reads += d.dom.Translate(v).MemReads
	}
	if d.inj.roll(d.inj.plan.WildDMA) {
		d.inj.c.WildDMAs++
		// March through low, unaligned addresses: the allocator hands
		// out IOVAs top-down, so these are never mapped and must fault.
		d.wild++
		v := ptable.IOVA(d.wild*0x5000 + 0x13)
		reads += d.dom.Translate(v).MemReads
	}
	return reads
}

// DupDescRead reports whether to issue a duplicate descriptor fetch;
// the injection itself (a second ring translation) is the caller's.
func (d *Device) DupDescRead() bool {
	if d == nil || !d.inj.roll(d.inj.plan.DupDescRead) {
		return false
	}
	d.inj.c.DupDescReads++
	return true
}

// DelayWriteback forwards to the injector's writeback-delay roll.
func (d *Device) DelayWriteback() sim.Duration {
	if d == nil {
		return 0
	}
	return d.inj.DelayWriteback()
}
