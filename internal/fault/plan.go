// Package fault is the adversarial half of the simulator: a deterministic,
// seed-replayable fault plan injected at named sites across the stack
// (invalidation queue, descriptor engine, devices, PCIe links, the memory
// bus, the IOVA allocator) plus a safety auditor that cross-checks every
// completed translation against the live IO page table.
//
// Determinism contract: all fault decisions draw from one private
// rand.Rand seeded from the plan seed, and all periodic disturbances are
// scheduled on the sim engine's virtual clock — no wall-clock, no global
// rand. The same (plan, seed, workload) triple therefore replays to a
// byte-identical SafetyReport. The zero Plan constructs no injector,
// consumes no randomness and schedules no events, so a disabled fault
// layer is provably inert.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"fastsafe/internal/sim"
)

// Plan describes what to inject and how hard. All probabilities are per
// opportunity (per invalidation request, per DMA, per descriptor fetch,
// per IOVA allocation); all periods are virtual-time intervals with 0
// meaning "never". The zero value disables the layer entirely.
type Plan struct {
	// Invalidation-queue faults, applied where internal/core submits
	// invalidation requests. In the safe modes a lost completion stalls
	// the driver until its timeout fires and the request is resubmitted
	// (a benign retry); only the defer-noshootdown strawman ever skips
	// the shootdown itself.
	InvDrop    float64      // P(completion lost; driver resubmits after InvTimeout)
	InvDelay   float64      // P(completion delayed by InvDelayBy)
	InvDelayBy sim.Duration // stall per delayed completion (default 2us)
	InvTimeout sim.Duration // driver wait before resubmitting a lost request (default 10us)

	// Descriptor-writeback faults (internal/nic): the NIC's completion
	// writeback lands late, delaying descriptor recycling.
	WritebackDelay   float64      // P(a recycle writeback is delayed)
	WritebackDelayBy sim.Duration // delay per late writeback (default 2us)

	// Device misbehaviour, exercised through the internal/device
	// interface on every DMA issued by a NIC or storage device.
	StrayDMA    float64 // P(device replays a previously used — likely freed — IOVA)
	WildDMA     float64 // P(device touches a never-mapped, unaligned IOVA)
	DupDescRead float64 // P(an extra out-of-window duplicate descriptor fetch)

	// IOVA allocator pressure (internal/iova through internal/core).
	AllocFail        float64      // P(transient allocation failure + driver retry)
	RcacheFlushEvery sim.Duration // forced full rcache flush period

	// Transient PCIe link flaps: every flap stalls all attached links.
	LinkFlapEvery sim.Duration
	LinkFlapFor   sim.Duration // stall length per flap (default 3us)

	// Memory-bus latency spikes: an antagonist burst of MemSpikeGBps
	// is pushed through every attached bus for MemSpikeFor.
	MemSpikeEvery sim.Duration
	MemSpikeFor   sim.Duration // spike length (default 20us)
	MemSpikeGBps  float64      // antagonist bandwidth during a spike (default 24)

	// Activity window: injections only fire in virtual-time
	// [Start, Start+For), so a campaign can model a bounded burst of
	// misbehaviour mid-run (the adaptive figure's fault phase). Zero
	// Start begins at construction; zero For never ends — both zero is
	// byte-identical to the pre-window injector. The window gates
	// injection decisions, not their aftermath: a delay or stall granted
	// inside the window still plays out past its end.
	Start sim.Duration
	For   sim.Duration
}

// Enabled reports whether the plan injects anything at all. The auditor
// may still run on a disabled plan (host.Config.Audit).
func (p Plan) Enabled() bool { return p != Plan{} }

// withDefaults fills the magnitude knobs that only matter once the
// corresponding probability or period is nonzero.
func (p Plan) withDefaults() Plan {
	if p.InvDelayBy == 0 {
		p.InvDelayBy = 2 * sim.Microsecond
	}
	if p.InvTimeout == 0 {
		p.InvTimeout = 10 * sim.Microsecond
	}
	if p.WritebackDelayBy == 0 {
		p.WritebackDelayBy = 2 * sim.Microsecond
	}
	if p.LinkFlapFor == 0 {
		p.LinkFlapFor = 3 * sim.Microsecond
	}
	if p.MemSpikeFor == 0 {
		p.MemSpikeFor = 20 * sim.Microsecond
	}
	if p.MemSpikeGBps == 0 {
		p.MemSpikeGBps = 24
	}
	return p
}

// Campaign is the canonical intensity-scaled plan used by the faults
// experiment figure and CI campaigns. intensity 0 is the zero plan;
// 1 is the full gauntlet: every fault class active at rates chosen so a
// correct design keeps ≥95% of its fault-free goodput while an unsafe
// one cannot hide (thousands of adversarial events per simulated ms).
func Campaign(intensity float64) Plan {
	if intensity <= 0 {
		return Plan{}
	}
	x := intensity
	period := func(base sim.Duration) sim.Duration {
		return sim.Duration(float64(base) / x)
	}
	return Plan{
		InvDrop:          0.02 * x,
		InvDelay:         0.05 * x,
		WritebackDelay:   0.02 * x,
		StrayDMA:         0.02 * x,
		WildDMA:          0.01 * x,
		DupDescRead:      0.05 * x,
		AllocFail:        0.01 * x,
		RcacheFlushEvery: period(4 * sim.Millisecond),
		LinkFlapEvery:    period(3 * sim.Millisecond),
		MemSpikeEvery:    period(2 * sim.Millisecond),
	}
}

// Parse turns a command-line fault spec into a Plan. A bare number is a
// campaign intensity ("0.5" ⇒ Campaign(0.5)); otherwise the spec is a
// comma-separated key=value list, e.g.
//
//	"invdrop=0.1,straydma=0.05,linkflap=500us,memspike=1ms"
//	"campaign=0.6,start=4ms,for=3ms"
//
// Probabilities are floats in [0,1]; periods/durations use Go duration
// syntax ("300us", "2ms"). "campaign=x" overlays the canonical
// intensity-x plan so later keys can window or tweak it; "start"/"for"
// bound the activity window ([start, start+for), zero for = forever).
func Parse(spec string) (Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Plan{}, nil
	}
	if x, err := strconv.ParseFloat(spec, 64); err == nil {
		if x < 0 {
			return Plan{}, fmt.Errorf("fault intensity %q is negative", spec)
		}
		return Campaign(x), nil
	}
	var p Plan
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault spec field %q: want key=value", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		prob := func(dst *float64) error {
			x, err := strconv.ParseFloat(val, 64)
			if err != nil || x < 0 || x > 1 {
				return fmt.Errorf("fault spec %s=%q: want probability in [0,1]", key, val)
			}
			*dst = x
			return nil
		}
		dur := func(dst *sim.Duration) error {
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("fault spec %s=%q: want duration like 300us", key, val)
			}
			*dst = sim.Duration(d.Nanoseconds())
			return nil
		}
		var err error
		switch key {
		case "campaign":
			x, perr := strconv.ParseFloat(val, 64)
			if perr != nil || x < 0 {
				err = fmt.Errorf("fault spec %s=%q: want intensity >= 0", key, val)
			} else {
				start, dur := p.Start, p.For
				p = Campaign(x)
				p.Start, p.For = start, dur
			}
		case "start":
			err = dur(&p.Start)
		case "for":
			err = dur(&p.For)
		case "invdrop":
			err = prob(&p.InvDrop)
		case "invdelay":
			err = prob(&p.InvDelay)
		case "invdelayby":
			err = dur(&p.InvDelayBy)
		case "invtimeout":
			err = dur(&p.InvTimeout)
		case "writeback":
			err = prob(&p.WritebackDelay)
		case "writebackby":
			err = dur(&p.WritebackDelayBy)
		case "straydma":
			err = prob(&p.StrayDMA)
		case "wilddma":
			err = prob(&p.WildDMA)
		case "dupdesc":
			err = prob(&p.DupDescRead)
		case "allocfail":
			err = prob(&p.AllocFail)
		case "rcacheflush":
			err = dur(&p.RcacheFlushEvery)
		case "linkflap":
			err = dur(&p.LinkFlapEvery)
		case "linkflapfor":
			err = dur(&p.LinkFlapFor)
		case "memspike":
			err = dur(&p.MemSpikeEvery)
		case "memspikefor":
			err = dur(&p.MemSpikeFor)
		case "memspikegbps":
			x, perr := strconv.ParseFloat(val, 64)
			if perr != nil || x <= 0 {
				err = fmt.Errorf("fault spec %s=%q: want GB/s > 0", key, val)
			} else {
				p.MemSpikeGBps = x
			}
		default:
			err = fmt.Errorf("fault spec: unknown key %q", key)
		}
		if err != nil {
			return Plan{}, err
		}
	}
	return p, nil
}
