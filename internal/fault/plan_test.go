package fault

import (
	"testing"

	"fastsafe/internal/sim"
)

func TestParseBareIntensityIsCampaign(t *testing.T) {
	got, err := Parse("0.5")
	if err != nil {
		t.Fatal(err)
	}
	if want := Campaign(0.5); got != want {
		t.Fatalf("Parse(\"0.5\") = %+v, want Campaign(0.5) = %+v", got, want)
	}
	if p, err := Parse(""); err != nil || p.Enabled() {
		t.Fatalf("Parse(\"\") = %+v, %v; want zero plan", p, err)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := Parse("invdrop=0.1, straydma=0.05,linkflap=500us,memspike=1ms,memspikegbps=32")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		InvDrop:       0.1,
		StrayDMA:      0.05,
		LinkFlapEvery: 500 * sim.Microsecond,
		MemSpikeEvery: sim.Millisecond,
		MemSpikeGBps:  32,
	}
	if p != want {
		t.Fatalf("Parse = %+v, want %+v", p, want)
	}
	if !p.Enabled() {
		t.Fatal("parsed plan not Enabled")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"-1",              // negative intensity
		"invdrop=2",       // probability out of range
		"invdrop",         // not key=value
		"linkflap=xyz",    // not a duration
		"linkflap=-1ms",   // negative duration
		"memspikegbps=0",  // rate must be positive
		"nosuchknob=0.5",  // unknown key
		"straydma=banana", // not a float
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestDefaultsOnlyFillMagnitudes(t *testing.T) {
	d := Plan{InvDrop: 0.1}.withDefaults()
	if d.InvDelayBy == 0 || d.InvTimeout == 0 || d.WritebackDelayBy == 0 ||
		d.LinkFlapFor == 0 || d.MemSpikeFor == 0 || d.MemSpikeGBps == 0 {
		t.Fatalf("withDefaults left magnitude knobs zero: %+v", d)
	}
	if d.InvDrop != 0.1 || d.StrayDMA != 0 || d.LinkFlapEvery != 0 {
		t.Fatalf("withDefaults changed rate/period knobs: %+v", d)
	}
}

func TestZeroPlanBuildsNoInjector(t *testing.T) {
	if Campaign(0).Enabled() {
		t.Fatal("Campaign(0) is enabled")
	}
	eng := sim.NewEngine(1)
	if inj := NewInjector(eng, Plan{}, 1); inj != nil {
		t.Fatal("NewInjector built an injector for the zero plan")
	}
	// Every decision surface on a nil injector must be a safe no-op.
	var inj *Injector
	inj.Start()
	inj.SetAuditor(nil)
	if inj.DropInv(0) || inj.DelayInv(0) != 0 || inj.DelayWriteback() != 0 || inj.FailAlloc(0) {
		t.Fatal("nil injector injected something")
	}
	if c := inj.Counters(); c != (Counters{}) {
		t.Fatalf("nil injector counters = %+v", c)
	}
	if dev := inj.Device(nil); dev != nil {
		t.Fatal("nil injector built a device")
	}
	var dev *Device
	dev.Observe(0)
	if dev.MaybeMisbehave() != 0 || dev.DupDescRead() || dev.DelayWriteback() != 0 {
		t.Fatal("nil device injected something")
	}
}

func TestSafetyReportArithmetic(t *testing.T) {
	a := SafetyReport{Checked: 10, Blocked: 2, StaleUnmapped: 1, StaleRemapped: 1, Retries: 3}
	b := SafetyReport{Checked: 4, Blocked: 1, Retries: 2}
	d := a.Sub(b)
	if d.Checked != 6 || d.Blocked != 1 || d.Retries != 1 {
		t.Fatalf("Sub = %+v", d)
	}
	if a.Violations() != 2 || d.Violations() != 2 {
		t.Fatalf("Violations = %d / %d, want 2 / 2", a.Violations(), d.Violations())
	}
}
