package fault

import (
	"testing"

	"fastsafe/internal/sim"
)

func TestParseBareIntensityIsCampaign(t *testing.T) {
	got, err := Parse("0.5")
	if err != nil {
		t.Fatal(err)
	}
	if want := Campaign(0.5); got != want {
		t.Fatalf("Parse(\"0.5\") = %+v, want Campaign(0.5) = %+v", got, want)
	}
	if p, err := Parse(""); err != nil || p.Enabled() {
		t.Fatalf("Parse(\"\") = %+v, %v; want zero plan", p, err)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := Parse("invdrop=0.1, straydma=0.05,linkflap=500us,memspike=1ms,memspikegbps=32")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		InvDrop:       0.1,
		StrayDMA:      0.05,
		LinkFlapEvery: 500 * sim.Microsecond,
		MemSpikeEvery: sim.Millisecond,
		MemSpikeGBps:  32,
	}
	if p != want {
		t.Fatalf("Parse = %+v, want %+v", p, want)
	}
	if !p.Enabled() {
		t.Fatal("parsed plan not Enabled")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"-1",              // negative intensity
		"invdrop=2",       // probability out of range
		"invdrop",         // not key=value
		"linkflap=xyz",    // not a duration
		"linkflap=-1ms",   // negative duration
		"memspikegbps=0",  // rate must be positive
		"nosuchknob=0.5",  // unknown key
		"straydma=banana", // not a float
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestDefaultsOnlyFillMagnitudes(t *testing.T) {
	d := Plan{InvDrop: 0.1}.withDefaults()
	if d.InvDelayBy == 0 || d.InvTimeout == 0 || d.WritebackDelayBy == 0 ||
		d.LinkFlapFor == 0 || d.MemSpikeFor == 0 || d.MemSpikeGBps == 0 {
		t.Fatalf("withDefaults left magnitude knobs zero: %+v", d)
	}
	if d.InvDrop != 0.1 || d.StrayDMA != 0 || d.LinkFlapEvery != 0 {
		t.Fatalf("withDefaults changed rate/period knobs: %+v", d)
	}
}

func TestZeroPlanBuildsNoInjector(t *testing.T) {
	if Campaign(0).Enabled() {
		t.Fatal("Campaign(0) is enabled")
	}
	eng := sim.NewEngine(1)
	if inj := NewInjector(eng, Plan{}, 1); inj != nil {
		t.Fatal("NewInjector built an injector for the zero plan")
	}
	// Every decision surface on a nil injector must be a safe no-op.
	var inj *Injector
	inj.Start()
	inj.SetAuditor(nil)
	if inj.DropInv(0) || inj.DelayInv(0) != 0 || inj.DelayWriteback() != 0 || inj.FailAlloc(0) {
		t.Fatal("nil injector injected something")
	}
	if c := inj.Counters(); c != (Counters{}) {
		t.Fatalf("nil injector counters = %+v", c)
	}
	if dev := inj.Device(nil); dev != nil {
		t.Fatal("nil injector built a device")
	}
	var dev *Device
	dev.Observe(0)
	if dev.MaybeMisbehave() != 0 || dev.DupDescRead() || dev.DelayWriteback() != 0 {
		t.Fatal("nil device injected something")
	}
}

func TestSafetyReportArithmetic(t *testing.T) {
	a := SafetyReport{Checked: 10, Blocked: 2, StaleUnmapped: 1, StaleRemapped: 1, Retries: 3}
	b := SafetyReport{Checked: 4, Blocked: 1, Retries: 2}
	d := a.Sub(b)
	if d.Checked != 6 || d.Blocked != 1 || d.Retries != 1 {
		t.Fatalf("Sub = %+v", d)
	}
	if a.Violations() != 2 || d.Violations() != 2 {
		t.Fatalf("Violations = %d / %d, want 2 / 2", a.Violations(), d.Violations())
	}
}

// TestParseSpecAllKeys exercises every key the spec grammar accepts in
// one plan — the adaptive control-plane experiments build windowed
// campaigns from exactly these fields, so the whole surface stays
// parseable.
func TestParseSpecAllKeys(t *testing.T) {
	p, err := Parse("campaign=1,start=4ms,for=2ms,invdelay=0.2,invdelayby=3us," +
		"invtimeout=10us,writeback=0.1,writebackby=2us,wilddma=0.03,dupdesc=0.04," +
		"allocfail=0.01,rcacheflush=700us,linkflapfor=20us,memspikefor=80us")
	if err != nil {
		t.Fatal(err)
	}
	want := Campaign(1)
	want.Start, want.For = 4*sim.Millisecond, 2*sim.Millisecond
	want.InvDelay, want.InvDelayBy = 0.2, 3*sim.Microsecond
	want.InvTimeout = 10 * sim.Microsecond
	want.WritebackDelay, want.WritebackDelayBy = 0.1, 2*sim.Microsecond
	want.WildDMA, want.DupDescRead, want.AllocFail = 0.03, 0.04, 0.01
	want.RcacheFlushEvery = 700 * sim.Microsecond
	want.LinkFlapFor, want.MemSpikeFor = 20*sim.Microsecond, 80*sim.Microsecond
	if p != want {
		t.Fatalf("Parse = %+v, want %+v", p, want)
	}
	// The windowed-campaign ordering contract: start=/for= survive a
	// later campaign= field resetting the rates.
	p2, err := Parse("start=1ms,for=2ms,campaign=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Start != sim.Millisecond || p2.For != 2*sim.Millisecond || p2.StrayDMA == 0 {
		t.Fatalf("campaign= clobbered the fault window: %+v", p2)
	}
	if _, err := Parse("campaign=-1"); err == nil {
		t.Error("Parse(campaign=-1): want error, got nil")
	}
	if _, err := Parse("start=bogus"); err == nil {
		t.Error("Parse(start=bogus): want error, got nil")
	}
}

// TestSafetyReportString pins the audit line format the fault figures
// print alongside the per-phase goodput columns.
func TestSafetyReportString(t *testing.T) {
	r := SafetyReport{Checked: 10, Blocked: 2, StaleUnmapped: 1, Retries: 3}
	want := "checked=10 blocked=2 stale_unmapped=1 stale_remapped=0 stale_ats=0 stale_cap=0 retries=3 violations=1"
	if got := r.String(); got != want {
		t.Fatalf("SafetyReport.String() = %q, want %q", got, want)
	}
}
