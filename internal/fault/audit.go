package fault

import (
	"fmt"

	"fastsafe/internal/ats"
	"fastsafe/internal/iommu"
	"fastsafe/internal/ptable"
	"fastsafe/internal/stats"
)

// SafetyReport classifies every audited translation. The paper's safety
// claim is exactly Violations() == 0: the hardware may block a bad DMA
// (a fault, visible and recoverable) and the driver may retry around an
// injected fault (benign), but no DMA may ever be served from a stale
// mapping.
type SafetyReport struct {
	Checked       int64 // translations audited
	Blocked       int64 // translation faulted — hardware blocked the access
	StaleUnmapped int64 // served from a cached entry for an unmapped IOVA
	StaleRemapped int64 // served a stale physical page for a since-remapped IOVA
	// StaleATS counts DMAs served from a device-side ATS cache entry
	// that outlived its host mapping — the entry was still valid in the
	// device TLB after the host unmapped (or remapped) the IOVA because
	// no ATC-invalidate was ordered before reuse. Strict and F&S close
	// this window by shooting the ATC down inside the unmap; the
	// defer-noshootdown strawman provably does not.
	StaleATS int64
	// StaleCapability counts DMAs validated by a capability whose grant
	// outlived the mapping it covered — the cap-lazyrevoke window between
	// unmap (or window re-point) and the revocation flush. The eager cap
	// mode kills the grant inside the unmap, so it must stay at zero the
	// way strict/F&S keep the IOTLB counters at zero.
	StaleCapability int64
	Retries         int64 // benign driver retries provoked by injected faults
}

// Violations counts true safety violations: DMAs the IOMMU let through
// to memory the current page table does not map them to.
func (r SafetyReport) Violations() int64 {
	return r.StaleUnmapped + r.StaleRemapped + r.StaleATS + r.StaleCapability
}

// Sub returns the window delta r−b (both taken from the same auditor).
func (r SafetyReport) Sub(b SafetyReport) SafetyReport {
	return SafetyReport{
		Checked:         r.Checked - b.Checked,
		Blocked:         r.Blocked - b.Blocked,
		StaleUnmapped:   r.StaleUnmapped - b.StaleUnmapped,
		StaleRemapped:   r.StaleRemapped - b.StaleRemapped,
		StaleATS:        r.StaleATS - b.StaleATS,
		StaleCapability: r.StaleCapability - b.StaleCapability,
		Retries:         r.Retries - b.Retries,
	}
}

func (r SafetyReport) String() string {
	return fmt.Sprintf("checked=%d blocked=%d stale_unmapped=%d stale_remapped=%d stale_ats=%d stale_cap=%d retries=%d violations=%d",
		r.Checked, r.Blocked, r.StaleUnmapped, r.StaleRemapped, r.StaleATS, r.StaleCapability, r.Retries, r.Violations())
}

// Auditor cross-checks every completed translation against the live IO
// page table, the simulator's ground truth. It sees three signals:
//
//   - !OK: the IOMMU faulted — the access never reached memory (Blocked).
//   - Stale: the IOMMU served a cached entry whose IOVA is no longer
//     mapped — a freed-memory DMA (StaleUnmapped).
//   - neither, but the physical page the translation returned differs
//     from what the live table maps the IOVA to — the IOVA was recycled
//     and remapped while a cached entry survived, so the DMA landed in
//     another buffer's memory (StaleRemapped). This is the violation the
//     IOMMU itself cannot see: the IOVA looks mapped, just not there.
//
// The audit is a pure read of the page table (Lookup/LookupHugeAware
// mutate nothing), so enabling it perturbs no counters, costs, or cache
// state — audited and unaudited runs are byte-identical.
type Auditor struct {
	mmu    *iommu.IOMMU
	global SafetyReport
	perDom map[iommu.DomainID]*SafetyReport
}

// NewAuditor installs the audit hook on the shared IOMMU and returns the
// auditor owning the resulting reports.
func NewAuditor(mmu *iommu.IOMMU) *Auditor {
	a := &Auditor{mmu: mmu, perDom: make(map[iommu.DomainID]*SafetyReport)}
	mmu.SetAuditHook(a.check)
	return a
}

func (a *Auditor) domReport(d iommu.DomainID) *SafetyReport {
	r, ok := a.perDom[d]
	if !ok {
		r = &SafetyReport{}
		a.perDom[d] = r
	}
	return r
}

func (a *Auditor) check(d iommu.DomainID, v ptable.IOVA, t iommu.Translation) {
	g, pd := &a.global, a.domReport(d)
	g.Checked++
	pd.Checked++
	switch {
	case !t.OK:
		g.Blocked++
		pd.Blocked++
	case t.Stale:
		g.StaleUnmapped++
		pd.StaleUnmapped++
	default:
		// The IOMMU says this translation is fine. Verify against the
		// live table: same physical page for both 4KB and huge leaves
		// (LookupHugeAware returns the offset-adjusted huge phys, the
		// same convention Translation.Phys uses). A mismatch under a
		// capability check means the grant outlived its mapping — the
		// lazy-revoke hole — and is classified separately so campaigns
		// can pin it on the capability family the way stale-IOTLB serves
		// pin deferred modes.
		if w, _, ok := a.mmu.TableOf(d).LookupHugeAware(v); !ok || w.Phys != t.Phys {
			if t.Cap {
				g.StaleCapability++
				pd.StaleCapability++
			} else {
				g.StaleRemapped++
				pd.StaleRemapped++
			}
		}
	}
}

// AttachATC re-walks domain d's device-side ATS cache hits too: the
// auditor installs a hook on the ATC that fires only on hits (misses
// flow through the inner translator into the IOMMU's own audit hook, so
// nothing is double-counted) and classifies served-while-stale hits as
// StaleATS. Like the IOMMU-side check, the hook is a pure page-table
// read. Nil-safe on both sides.
func (a *Auditor) AttachATC(d iommu.DomainID, c *ats.Cache) {
	if a == nil || c == nil {
		return
	}
	c.SetAuditHook(func(v ptable.IOVA, t iommu.Translation) { a.checkATC(d, v, t) })
}

func (a *Auditor) checkATC(d iommu.DomainID, v ptable.IOVA, t iommu.Translation) {
	g, pd := &a.global, a.domReport(d)
	g.Checked++
	pd.Checked++
	// An ATC hit always produces an address; verify it against the live
	// table. Unmapped or re-pointed both mean the device TLB served a
	// translation the host had revoked.
	if w, _, ok := a.mmu.TableOf(d).LookupHugeAware(v); !ok || w.Phys != t.Phys {
		g.StaleATS++
		pd.StaleATS++
	}
}

// noteRetry attributes one benign driver retry to domain d.
func (a *Auditor) noteRetry(d iommu.DomainID) {
	if a == nil {
		return
	}
	a.global.Retries++
	a.domReport(d).Retries++
}

// Report returns the aggregate safety report; zero on nil.
func (a *Auditor) Report() SafetyReport {
	if a == nil {
		return SafetyReport{}
	}
	return a.global
}

// ReportOf returns domain d's safety report; zero on nil or unknown d.
func (a *Auditor) ReportOf(d iommu.DomainID) SafetyReport {
	if a == nil {
		return SafetyReport{}
	}
	if r, ok := a.perDom[d]; ok {
		return *r
	}
	return SafetyReport{}
}

// RegisterProbes exposes the aggregate report under prefix
// (e.g. "audit.").
func (a *Auditor) RegisterProbes(r *stats.Registry, prefix string) {
	if a == nil {
		return
	}
	probe := func(name string, fn func(SafetyReport) int64) {
		r.GaugeFunc(prefix+name, func() float64 { return float64(fn(a.global)) })
	}
	probe("checked", func(s SafetyReport) int64 { return s.Checked })
	probe("blocked", func(s SafetyReport) int64 { return s.Blocked })
	probe("stale_unmapped", func(s SafetyReport) int64 { return s.StaleUnmapped })
	probe("stale_remapped", func(s SafetyReport) int64 { return s.StaleRemapped })
	probe("stale_ats", func(s SafetyReport) int64 { return s.StaleATS })
	probe("stale_cap", func(s SafetyReport) int64 { return s.StaleCapability })
	probe("retries", func(s SafetyReport) int64 { return s.Retries })
	probe("violations", func(s SafetyReport) int64 { return s.Violations() })
}
