// Package workload defines the application scenarios the paper evaluates,
// mapping each to a host configuration:
//
//   - Iperf: the §2.2 microbenchmark — bulk DCTCP flows into the receiver.
//   - Bidirectional: the §4.1 extreme Rx/Tx interference experiment.
//   - RPC: the netperf-style latency-sensitive app colocated with iperf
//     (Figure 9).
//   - Redis: SET-workload key-value server (Figure 11a) — bulk values
//     inbound, small replies outbound.
//   - Nginx: wrk-style web workload (Figure 11b), measured at the
//     bulk-receiving side — small requests out, pages in.
//   - SPDK: remote-storage client (Figure 11c) — small read requests out,
//     block payloads in.
package workload

import (
	"fastsafe/internal/core"
	"fastsafe/internal/host"
	"fastsafe/internal/sim"
)

// Spec is one runnable experiment cell.
type Spec struct {
	Name    string
	Host    host.Config
	Msg     *host.MsgConfig
	Warmup  sim.Duration
	Measure sim.Duration
}

// Run executes the cell and returns its measured results.
func (s Spec) Run() (host.Results, error) {
	h, err := host.New(s.Host)
	if err != nil {
		return host.Results{}, err
	}
	if s.Msg != nil {
		h.InstallMessages(*s.Msg)
	}
	warm, meas := s.Warmup, s.Measure
	if warm == 0 {
		warm = 5 * sim.Millisecond
	}
	if meas == 0 {
		meas = 20 * sim.Millisecond
	}
	return h.Run(warm, meas), nil
}

// Iperf is the default microbenchmark: `flows` bulk flows over five cores,
// 4KB MTU, ring 256 (§2.2 defaults). ring <= 0 keeps the default.
func Iperf(mode core.Mode, flows, ring int) Spec {
	return Spec{
		Name: "iperf",
		Host: host.Config{Mode: mode, RxFlows: flows, RingPackets: ring},
	}
}

// IperfTrace is Iperf with the PTcache-L3 locality trace enabled
// (Figures 2e/3e/7e/8e).
func IperfTrace(mode core.Mode, flows, ring, limit int) Spec {
	s := Iperf(mode, flows, ring)
	s.Host.Telemetry.TraceL3 = true
	s.Host.Telemetry.TraceLimit = limit
	return s
}

// Bidirectional runs `pairs` Rx flows and `pairs` Tx flows, each on its own
// core (Figure 10's per-core flow placement).
func Bidirectional(mode core.Mode, pairs int) Spec {
	return Spec{
		Name: "bidirectional",
		Host: host.Config{Mode: mode, Cores: pairs, RxFlows: pairs, TxFlows: pairs},
	}
}

// RPC colocates a closed-loop request/response stream of the given size
// with the default five-flow iperf load, on a dedicated core (Figure 9).
func RPC(mode core.Mode, rpcBytes int) Spec {
	return Spec{
		Name: "rpc",
		Host: host.Config{Mode: mode},
		Msg: &host.MsgConfig{
			Pattern:   host.LocalServes,
			Streams:   1,
			Depth:     1,
			ReqBytes:  rpcBytes,
			RespBytes: rpcBytes,
			AppCPU:    2 * sim.Microsecond,
			Cores:     1,
			CoreBase:  5, // separate core from the iperf flows
		},
		Measure: 100 * sim.Millisecond,
	}
}

// boundedDepth caps per-stream pipelining so the aggregate in-flight
// payload stays within a few NIC buffers. The message layer has no
// congestion window (the paper's apps run over TCP), so unbounded depth at
// large payloads would collapse into timeout storms even with the IOMMU
// off.
func boundedDepth(want, streams, payload int) int {
	const budget = 3 << 20
	d := budget / (streams * payload)
	if d > want {
		d = want
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Redis models the Figure 11a SET workload: one server instance per core
// (8 cores, 9K MTU), clients pipelining up to 32 requests per connection,
// value payloads inbound and 64B replies outbound.
func Redis(mode core.Mode, valueBytes int) Spec {
	return Spec{
		Name: "redis",
		Host: host.Config{Mode: mode, Cores: 8, RxFlows: -1, MTU: 9000},
		Msg: &host.MsgConfig{
			Pattern:   host.LocalServes,
			Streams:   16,
			Depth:     boundedDepth(32, 16, valueBytes),
			ReqBytes:  valueBytes + 4, // 4B key + value
			RespBytes: 64,
			AppCPU:    1500,
		},
	}
}

// Nginx models the Figure 11b web workload from the bulk-receiving side:
// small HTTP requests out, page-sized responses in, 8 cores, 9K MTU.
func Nginx(mode core.Mode, pageBytes int) Spec {
	return Spec{
		Name: "nginx",
		Host: host.Config{Mode: mode, Cores: 8, RxFlows: -1, MTU: 9000},
		Msg: &host.MsgConfig{
			Pattern:   host.LocalClient,
			Streams:   16,
			Depth:     boundedDepth(8, 16, pageBytes),
			ReqBytes:  200,
			RespBytes: pageBytes,
			AppCPU:    2 * sim.Microsecond,
		},
	}
}

// SPDK models the Figure 11c remote-storage client: read requests out,
// block payloads in, IO depth 8 per stream, 8 cores, 9K MTU.
func SPDK(mode core.Mode, blockBytes int) Spec {
	return Spec{
		Name: "spdk",
		Host: host.Config{Mode: mode, Cores: 8, RxFlows: -1, MTU: 9000},
		Msg: &host.MsgConfig{
			Pattern:   host.LocalClient,
			Streams:   8,
			Depth:     boundedDepth(8, 8, blockBytes),
			ReqBytes:  128,
			RespBytes: blockBytes,
			AppCPU:    1 * sim.Microsecond,
		},
	}
}

// RedisAblation is the Figure 12 configuration: the Redis workload with
// 8KB values, run across the four ablation modes.
func RedisAblation(mode core.Mode) Spec {
	return Redis(mode, 8<<10)
}

// Serving is the serving-fleet churn scenario: an open-loop fleet of
// `conns` heavy-tailed request/response connections, each dying with
// probability `churn` per request and being reborn with a fresh DMA
// buffer (so (un)map and IOVA alloc/free rates scale with churn).
// cohortSize > 1 aggregates connections into flow cohorts that share one
// simulated latency model; 1 simulates every connection exactly.
func Serving(mode core.Mode, conns int, churn float64, cohortSize int) Spec {
	return Spec{
		Name: "serving",
		Host: host.Config{
			Mode:    mode,
			RxFlows: -1, // the open-loop fleet is the workload; no bulk flows
			Serve:   &host.ServeConfig{Conns: conns, Churn: churn, Cohort: cohortSize},
		},
	}
}
