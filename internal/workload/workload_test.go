package workload

import (
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
)

func quick(s Spec) Spec {
	s.Warmup = 2 * sim.Millisecond
	s.Measure = 6 * sim.Millisecond
	return s
}

func TestIperfSpecRuns(t *testing.T) {
	r, err := quick(Iperf(core.FNS, 5, 0)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.RxGbps < 50 {
		t.Fatalf("iperf throughput = %.1f", r.RxGbps)
	}
	if r.Mode != core.FNS {
		t.Fatalf("mode = %v", r.Mode)
	}
}

func TestIperfTraceRecords(t *testing.T) {
	r, err := quick(IperfTrace(core.Strict, 5, 0, 10000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace == nil || len(r.Trace.Dists) == 0 {
		t.Fatal("no locality trace")
	}
}

func TestBidirectionalSpecRuns(t *testing.T) {
	r, err := quick(Bidirectional(core.Off, 2)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.RxGbps < 50 || r.TxGbps < 50 {
		t.Fatalf("bidirectional = %.1f/%.1f", r.RxGbps, r.TxGbps)
	}
}

func TestRPCSpecRuns(t *testing.T) {
	s := RPC(core.FNS, 4096)
	s.Warmup = 2 * sim.Millisecond
	s.Measure = 10 * sim.Millisecond
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("no RPCs completed")
	}
	if r.Latency == nil || r.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
}

func TestRedisSpecRuns(t *testing.T) {
	r, err := quick(Redis(core.FNS, 64<<10)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("no SETs completed")
	}
	if r.MsgGbps < 20 {
		t.Fatalf("redis throughput = %.1f", r.MsgGbps)
	}
}

func TestNginxSpecRuns(t *testing.T) {
	r, err := quick(Nginx(core.FNS, 512<<10)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("no pages fetched")
	}
}

func TestSPDKSpecRuns(t *testing.T) {
	r, err := quick(SPDK(core.FNS, 128<<10)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("no blocks read")
	}
}

func TestServingSpecRuns(t *testing.T) {
	s := Serving(core.FNS, 24, 0.3, 4)
	s.Host.Audit = true
	s.Warmup = 1 * sim.Millisecond
	s.Measure = 2 * sim.Millisecond
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.ServeCompleted == 0 || r.ServeDeaths == 0 {
		t.Fatalf("vacuous serving window (served=%d deaths=%d)", r.ServeCompleted, r.ServeDeaths)
	}
	if r.Safety == nil || r.Safety.Violations() != 0 {
		t.Fatalf("serving safety audit: %+v", r.Safety)
	}
	if r.Latency == nil || r.Latency.Count() == 0 {
		t.Fatal("no serving latency samples")
	}
}

func TestServingSpecRejectsBadChurn(t *testing.T) {
	for _, s := range []Spec{
		Serving(core.FNS, 0, 0.3, 1),
		Serving(core.FNS, 8, 0, 1),
		Serving(core.FNS, 8, 1.5, 1),
		Serving(core.FNS, 8, 0.3, 0),
	} {
		if _, err := s.Run(); err == nil {
			t.Errorf("Serving spec %+v accepted", s.Host.Serve)
		}
	}
}

func TestRedisStrictSlowerThanFNS(t *testing.T) {
	// Figure 11a's headline: enabling default protection costs throughput;
	// F&S recovers it.
	strict, err := quick(Redis(core.Strict, 64<<10)).Run()
	if err != nil {
		t.Fatal(err)
	}
	fns, err := quick(Redis(core.FNS, 64<<10)).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Short windows make throughput noisy (closed-loop completions bunch);
	// assert it is in the same league and that the translation cost — the
	// quantity Figure 11a's gap comes from — is strictly lower.
	if fns.MsgGbps < strict.MsgGbps*0.9 {
		t.Fatalf("FNS redis (%.1f) far below strict (%.1f)", fns.MsgGbps, strict.MsgGbps)
	}
	if fns.ReadsPerPage >= strict.ReadsPerPage {
		t.Fatalf("FNS reads (%.2f) not below strict (%.2f)", fns.ReadsPerPage, strict.ReadsPerPage)
	}
}

func TestDefaultsAppliedOnZeroDurations(t *testing.T) {
	s := Iperf(core.Off, 2, 0)
	if s.Warmup != 0 || s.Measure != 0 {
		t.Fatal("constructor should leave durations zero")
	}
	r, err := s.Run() // defaults kick in
	if err != nil {
		t.Fatal(err)
	}
	if r.Measure != 20*sim.Millisecond {
		t.Fatalf("default measure window = %v", r.Measure)
	}
}
