package pcie

import (
	"testing"

	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

func TestServiceTimeSerializationFloor(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, 65, 197, 128)
	// 4KB with no reads: 4096*8/128 = 256ns > 65ns.
	if got := l.ServiceTime(4096, 0); got != 256 {
		t.Fatalf("ServiceTime = %v, want 256", got)
	}
}

func TestServiceTimeTranslationDominates(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, 65, 197, 128)
	// 65 + 2*197 = 459 > 256.
	if got := l.ServiceTime(4096, 2); got != 459 {
		t.Fatalf("ServiceTime = %v, want 459", got)
	}
}

func TestSubmitCompletesAfterService(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, 65, 197, 128)
	var doneAt sim.Time = -1
	l.Submit(4096, 0, func() { doneAt = e.Now() })
	e.RunAll()
	if doneAt != 256 {
		t.Fatalf("completed at %v, want 256", doneAt)
	}
}

func TestFIFOQueueing(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, 65, 197, 128)
	var order []int
	l.Submit(4096, 0, func() { order = append(order, 1) }) // 256ns
	l.Submit(4096, 0, func() { order = append(order, 2) }) // 256ns more
	if !l.Busy() {
		t.Fatal("link should be busy")
	}
	e.RunAll()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 512 {
		t.Fatalf("second completion at %v, want 512", e.Now())
	}
	s := l.Stats()
	if s.DMAs != 2 || s.Bytes != 8192 {
		t.Fatalf("stats = %+v", s)
	}
	if s.QueueTime != 256 {
		t.Fatalf("QueueTime = %v, want 256", s.QueueTime)
	}
}

func TestThroughputMatchesModel(t *testing.T) {
	// Back-to-back 4KB DMAs with 1.76 avg reads: the paper's ~79.5Gbps.
	e := sim.NewEngine(1)
	l := New(e, 65, 197, 128)
	n := 1000
	for i := 0; i < n; i++ {
		reads := 1
		if i%100 < 76 {
			reads = 2
		}
		l.Submit(4096, reads, func() {})
	}
	e.RunAll()
	gbps := float64(n*4096*8) / float64(e.Now())
	if gbps < 77 || gbps > 82 {
		t.Fatalf("throughput = %.1f Gbps, want ~79.5", gbps)
	}
}

func TestUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, 65, 197, 128)
	l.Submit(4096, 0, func() {})
	e.RunAll()
	// Engine time equals busy time here.
	if u := l.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1", u)
	}
}

func TestOutstandingTracksQueue(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, 65, 197, 128)
	l.Submit(4096, 0, func() {})
	l.Submit(64, 0, func() {})
	if l.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d, want 2", l.Outstanding())
	}
	e.RunAll()
	if l.Outstanding() != 0 || l.Busy() {
		t.Fatal("link did not drain")
	}
	// Small DMA: 65ns base dominates 4ns serialisation.
	if e.Now() != 256+65 {
		t.Fatalf("drained at %v, want 321", e.Now())
	}
}

func TestSharedWalkerCouplesDirections(t *testing.T) {
	// Two links sharing a walker: the second link's translation waits for
	// the first link's reads.
	e := sim.NewEngine(1)
	rx := New(e, 65, 197, 128)
	tx := New(e, 65, 197, 128)
	w := NewWalkerN(e, 197, 1)
	rx.AttachWalker(w)
	tx.AttachWalker(w)
	var rxDone, txDone sim.Time
	rx.Submit(4096, 4, func() { rxDone = e.Now() }) // walker: 4*197 = 788
	tx.Submit(64, 1, func() { txDone = e.Now() })   // queued behind: +197
	e.RunAll()
	if rxDone != 65+788 {
		t.Fatalf("rx done at %v, want 853", rxDone)
	}
	// tx translation completes at 788+197 = 985, plus its l0 = 65.
	if txDone != 985+65 {
		t.Fatalf("tx done at %v, want 1050 (walker contention)", txDone)
	}
	if w.Reads() != 5 {
		t.Fatalf("walker reads = %d, want 5", w.Reads())
	}
}

func TestPrivateWalkersIndependent(t *testing.T) {
	e := sim.NewEngine(1)
	rx := New(e, 65, 197, 128)
	tx := New(e, 65, 197, 128)
	var rxDone, txDone sim.Time
	rx.Submit(4096, 4, func() { rxDone = e.Now() })
	tx.Submit(64, 1, func() { txDone = e.Now() })
	e.RunAll()
	if rxDone != 65+788 {
		t.Fatalf("rx done at %v, want 853", rxDone)
	}
	if txDone != 65+197 {
		t.Fatalf("tx done at %v, want 262 (no contention)", txDone)
	}
}

// A stalled link holds queued DMAs until the stall passes; shortening
// an earlier stall is ignored.
func TestStallHoldsQueuedDMAs(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, 65, 197, 128)
	l.Stall(1000)
	l.Stall(500) // shortening is a no-op
	var doneAt sim.Time = -1
	l.Submit(4096, 0, func() { doneAt = e.Now() })
	e.RunAll()
	// Held until 1000, then 4096*8/128 = 256ns of serialisation.
	if doneAt != 1256 {
		t.Fatalf("completed at %v, want 1256", doneAt)
	}
	if q := l.Stats().QueueTime; q != 1000 {
		t.Fatalf("QueueTime = %v, want 1000", q)
	}
}

// The latency factor scales per-read walk latency (memory-bandwidth
// contention), and a single-engine walker floors n at 1.
func TestWalkerLatencyFactor(t *testing.T) {
	e := sim.NewEngine(1)
	w := NewWalkerN(e, 100, 0) // n < 1 floors to one engine
	w.SetLatencyFactor(func() float64 { return 2 })
	if got := w.Reserve(1); got != 200 {
		t.Fatalf("Reserve(1) with 2x factor = %v, want 200", got)
	}
	if w.Reads() != 1 {
		t.Fatalf("Reads = %d, want 1", w.Reads())
	}
}

func TestProbesAndLatencyHistogram(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, 65, 197, 128)
	l.Submit(4096, 2, func() {})
	e.RunAll()
	if l.Latency().Count() != 1 {
		t.Fatalf("latency count = %d, want 1", l.Latency().Count())
	}
	reg := stats.NewRegistry()
	l.RegisterProbes(reg, "pcie.rx.")
	for _, name := range []string{"pcie.rx.dmas", "pcie.rx.bytes", "pcie.rx.mem_reads",
		"pcie.rx.busy_ns", "pcie.rx.queue_ns", "pcie.rx.outstanding"} {
		v, ok := reg.Value(name)
		if !ok {
			t.Fatalf("probe %s not registered", name)
		}
		_ = v
	}
	w := NewWalker(e, 197)
	w.Reserve(3)
	w.RegisterProbes(reg, "walker.")
	if v, ok := reg.Value("walker.reads"); !ok || v != 3 {
		t.Fatalf("walker.reads = %v, %v; want 3, true", v, ok)
	}
}
