// Package pcie models one direction of the PCIe path between the NIC and
// host memory, including the address-translation latency the IOMMU adds.
//
// The model is the paper's own (§2.2): serving a DMA of a packet costs
//
//	service = max(l0 + walk, bytes·8/linkGbps)
//
// where l0 (65ns) is the fitted no-protection per-packet DMA latency with
// all DMA/walker parallelism folded in, walk is the time the IOMMU's
// page-table walkers spend on the packet's translation reads (lm = 197ns
// per read, fitted), and the second term is the PCIe serialisation floor.
// Because only ~100 cachelines can be buffered at the root-complex side,
// the paper treats the PCIe stage as serialised per packet — hence a
// single-server queue per direction.
//
// The walkers and the memory reads they issue are shared between the two
// directions: a Walker can be attached to both links so that Tx (ACK)
// translations delay Rx translations, the Rx/Tx interference of §2.2 and
// Figure 10.
package pcie

import (
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// Walker models the IOMMU's page-table walkers and their memory reads as
// a shared resource with a configurable number of parallel walk engines
// (VT-d implements several); it is shared by both PCIe directions when
// attached to both links.
type Walker struct {
	eng     *sim.Engine
	lm      sim.Duration
	engines []sim.Time // per-engine busy-until
	reads   int64
	// latFactor, when set, scales the per-read latency — the hook the
	// memory-bus model uses to inflate walks under bandwidth contention.
	latFactor func() float64
}

// NewWalker returns a walker with per-read latency lm and two parallel
// walk engines.
func NewWalker(eng *sim.Engine, lm sim.Duration) *Walker {
	return NewWalkerN(eng, lm, 2)
}

// NewWalkerN returns a walker with n parallel walk engines.
func NewWalkerN(eng *sim.Engine, lm sim.Duration, n int) *Walker {
	if n < 1 {
		n = 1
	}
	return &Walker{eng: eng, lm: lm, engines: make([]sim.Time, n)}
}

// SetLatencyFactor installs a dynamic multiplier on the per-read latency
// (memory-bandwidth contention).
func (w *Walker) SetLatencyFactor(f func() float64) { w.latFactor = f }

// Reserve queues reads page-table reads on the least-loaded walk engine
// and returns their completion time.
func (w *Walker) Reserve(reads int) sim.Time {
	now := w.eng.Now()
	best := 0
	for i, b := range w.engines {
		if b < w.engines[best] {
			best = i
		}
	}
	if w.engines[best] < now {
		w.engines[best] = now
	}
	lm := w.lm
	if w.latFactor != nil {
		lm = sim.Duration(float64(lm) * w.latFactor())
	}
	w.engines[best] += sim.Duration(reads) * lm
	w.reads += int64(reads)
	return w.engines[best]
}

// Reads returns the total page-table reads served.
func (w *Walker) Reads() int64 { return w.reads }

// Stats counts link activity.
type Stats struct {
	DMAs      int64
	Bytes     int64
	MemReads  int64
	BusyTime  sim.Duration // total time the server was busy
	QueueTime sim.Duration // total time DMAs waited before service
}

type dma struct {
	bytes  int
	reads  int
	submit sim.Time
	done   func()
}

// Link is a single-server FIFO queue with the paper's service-time model.
// The walker (private by default, shareable via AttachWalker) is reserved
// when a DMA reaches the head of the queue, so cross-direction walker
// contention shows up as inflated translation latency.
type Link struct {
	eng    *sim.Engine
	l0     sim.Duration
	gbps   float64
	walker *Walker

	queue       []dma
	serving     bool
	outstanding int
	stallUntil  sim.Time
	stats       Stats
	// lat records per-DMA completion latency (queue wait + service) in
	// nanoseconds, feeding the telemetry registry's latency section.
	lat stats.Histogram
}

// New returns a link with a private walker. gbps is the serialisation cap
// (128 for PCIe 3.0 x16 in the paper's testbed).
func New(eng *sim.Engine, l0, lm sim.Duration, gbps float64) *Link {
	return &Link{eng: eng, l0: l0, gbps: gbps, walker: NewWalker(eng, lm)}
}

// AttachWalker replaces the link's private walker, typically with one
// shared with the opposite direction.
func (l *Link) AttachWalker(w *Walker) { l.walker = w }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() Stats { return l.stats }

// ServiceTime returns the uncontended service time for a DMA.
func (l *Link) ServiceTime(bytes, memReads int) sim.Duration {
	translate := l.l0 + sim.Duration(memReads)*l.walker.lm
	ser := sim.Duration(float64(bytes) * 8 / l.gbps) // bits at gbps = ns
	if translate > ser {
		return translate
	}
	return ser
}

// Stall pauses service until the given virtual time: queued DMAs wait
// and new submissions enqueue behind them — a transient link flap
// (retraining, replay storms). In-flight service completes normally;
// extending an earlier stall is allowed, shortening it is not.
func (l *Link) Stall(until sim.Time) {
	if until > l.stallUntil {
		l.stallUntil = until
	}
}

// Busy reports whether the server is occupied.
func (l *Link) Busy() bool { return l.outstanding > 0 }

// Outstanding returns the number of submitted-but-incomplete DMAs.
func (l *Link) Outstanding() int { return l.outstanding }

// Submit enqueues a DMA; done fires when its service completes. DMAs are
// served FIFO in submission order.
func (l *Link) Submit(bytes, memReads int, done func()) {
	l.outstanding++
	l.queue = append(l.queue, dma{bytes: bytes, reads: memReads, submit: l.eng.Now(), done: done})
	if !l.serving {
		l.serving = true
		l.serve()
	}
}

func (l *Link) serve() {
	if len(l.queue) == 0 {
		l.serving = false
		return
	}
	// A flapped link holds the head of the queue until the stall passes;
	// serving stays true so Submit cannot double-enter the server.
	if now := l.eng.Now(); now < l.stallUntil {
		l.eng.At(l.stallUntil, l.serve)
		return
	}
	d := l.queue[0]
	l.queue = l.queue[1:]
	now := l.eng.Now()

	translate := l.l0
	if d.reads > 0 {
		translate += l.walker.Reserve(d.reads) - now
	}
	ser := sim.Duration(float64(d.bytes) * 8 / l.gbps)
	svc := translate
	if ser > svc {
		svc = ser
	}

	l.stats.DMAs++
	l.stats.Bytes += int64(d.bytes)
	l.stats.MemReads += int64(d.reads)
	l.stats.BusyTime += svc
	l.stats.QueueTime += now - d.submit
	l.lat.Observe(int64(now - d.submit + svc))
	l.eng.After(svc, func() {
		l.outstanding--
		d.done()
		l.serve()
	})
}

// Latency returns the link's per-DMA completion-latency histogram
// (nanoseconds from Submit to completion, i.e. queue wait plus service).
func (l *Link) Latency() *stats.Histogram { return &l.lat }

// RegisterProbes exposes the link's counters through the registry under
// prefix (e.g. "pcie.rx."), plus its latency histogram as prefix+
// "latency_ns". All probes are read-only views over live state.
func (l *Link) RegisterProbes(r *stats.Registry, prefix string) {
	r.GaugeFunc(prefix+"dmas", func() float64 { return float64(l.stats.DMAs) })
	r.GaugeFunc(prefix+"bytes", func() float64 { return float64(l.stats.Bytes) })
	r.GaugeFunc(prefix+"mem_reads", func() float64 { return float64(l.stats.MemReads) })
	r.GaugeFunc(prefix+"busy_ns", func() float64 { return float64(l.stats.BusyTime) })
	r.GaugeFunc(prefix+"queue_ns", func() float64 { return float64(l.stats.QueueTime) })
	r.GaugeFunc(prefix+"outstanding", func() float64 { return float64(l.outstanding) })
	r.AddHistogram(prefix+"latency_ns", &l.lat)
}

// RegisterProbes exposes the walker's cumulative page-table reads under
// prefix (e.g. "walker.").
func (w *Walker) RegisterProbes(r *stats.Registry, prefix string) {
	r.GaugeFunc(prefix+"reads", func() float64 { return float64(w.reads) })
}

// Utilization returns the fraction of elapsed time the link was busy.
func (l *Link) Utilization() float64 {
	now := l.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(l.stats.BusyTime) / float64(now)
}
