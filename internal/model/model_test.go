package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThroughputMatchesPaperExamples(t *testing.T) {
	// §2.2: with l0=65ns, lm=197ns and 1.76 reads per 4KB packet the
	// model predicts ~79.5Gbps; with 4.36 reads ~35.6Gbps.
	got := ThroughputGbps(4096, 1.76, L0Ns, LmNs, 100)
	if math.Abs(got-79.5) > 1.0 {
		t.Fatalf("5-flow estimate = %.1f, want ~79.5", got)
	}
	got = ThroughputGbps(4096, 4.36, L0Ns, LmNs, 100)
	if math.Abs(got-35.5) > 1.0 {
		t.Fatalf("40-flow estimate = %.1f, want ~35.5", got)
	}
}

func TestThroughputCappedByLink(t *testing.T) {
	// Zero reads: 4096*8/65 = 504Gbps, capped at the 100Gbps line rate.
	if got := ThroughputGbps(4096, 0, L0Ns, LmNs, 100); got != 100 {
		t.Fatalf("uncapped estimate = %v, want 100", got)
	}
}

func TestThroughputDegenerate(t *testing.T) {
	if ThroughputGbps(0, 1, L0Ns, LmNs, 100) != 0 {
		t.Fatal("zero packet size should yield 0")
	}
	if ThroughputGbps(4096, 0, 0, 0, 100) != 100 {
		t.Fatal("zero latency should clamp to link rate")
	}
}

func TestFitRecoversConstants(t *testing.T) {
	// Generate two points from known constants and re-fit them.
	t1 := ThroughputGbps(4096, 1.76, L0Ns, LmNs, 1e9)
	t2 := ThroughputGbps(4096, 3.10, L0Ns, LmNs, 1e9)
	l0, lm, ok := FitL0Lm(4096, 1.76, t1, 3.10, t2)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(l0-L0Ns) > 0.01 || math.Abs(lm-LmNs) > 0.01 {
		t.Fatalf("fit = (%.2f, %.2f), want (65, 197)", l0, lm)
	}
}

func TestFitDegenerateCases(t *testing.T) {
	if _, _, ok := FitL0Lm(4096, 1, 10, 1, 20); ok {
		t.Fatal("fit with equal M accepted")
	}
	if _, _, ok := FitL0Lm(4096, 1, 0, 2, 20); ok {
		t.Fatal("fit with zero throughput accepted")
	}
}

func TestPropertyFitRoundtrip(t *testing.T) {
	f := func(m1q, m2q uint8) bool {
		m1 := 0.5 + float64(m1q)/32
		m2 := m1 + 0.5 + float64(m2q)/32
		t1 := ThroughputGbps(4096, m1, L0Ns, LmNs, 1e9)
		t2 := ThroughputGbps(4096, m2, L0Ns, LmNs, 1e9)
		l0, lm, ok := FitL0Lm(4096, m1, t1, m2, t2)
		return ok && math.Abs(l0-L0Ns) < 0.1 && math.Abs(lm-LmNs) < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v, want 0.1", got)
	}
	if got := RelativeError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v, want 0.1", got)
	}
	if RelativeError(5, 0) != 0 {
		t.Fatal("zero measured should yield 0")
	}
}

func TestMonotonicInReads(t *testing.T) {
	prev := math.Inf(1)
	for m := 0.0; m < 10; m += 0.5 {
		cur := ThroughputGbps(4096, m, L0Ns, LmNs, 100)
		if cur > prev {
			t.Fatalf("throughput not monotonically decreasing at M=%v", m)
		}
		prev = cur
	}
}
