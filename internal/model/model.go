// Package model implements the paper's analytic throughput model (§2.2):
//
//	T = p / (l0 + M·lm)
//
// where p is the packet size, l0 the average no-protection DMA latency per
// packet, M the average number of page-table memory reads per packet, and
// lm the average IOMMU-to-memory read latency. The paper fits l0 = 65ns
// and lm = 197ns from its 5- and 10-flow experiments and reports the model
// tracks measured throughput within 10%.
package model

// Paper-fitted constants (§2.2).
const (
	L0Ns = 65.0
	LmNs = 197.0
)

// ThroughputGbps returns the PCIe-limited application throughput estimate
// in Gbps for packetBytes-sized packets incurring memReads page-table
// reads per packet, capped by linkGbps (the NIC line rate).
func ThroughputGbps(packetBytes, memReads, l0Ns, lmNs, linkGbps float64) float64 {
	if packetBytes <= 0 {
		return 0
	}
	lat := l0Ns + memReads*lmNs
	if lat <= 0 {
		return linkGbps
	}
	t := packetBytes * 8 / lat // bits per ns == Gbps
	if t > linkGbps {
		return linkGbps
	}
	return t
}

// FitL0Lm solves for (l0, lm) from two measured operating points, exactly
// as the paper does with its 5-flow and 10-flow experiments. Each point is
// (memReads per packet, measured throughput in Gbps) for packets of
// packetBytes. It returns ok=false when the two points are degenerate.
func FitL0Lm(packetBytes float64, m1, t1, m2, t2 float64) (l0, lm float64, ok bool) {
	if t1 <= 0 || t2 <= 0 || m1 == m2 {
		return 0, 0, false
	}
	// t = 8p/(l0 + m·lm)  =>  l0 + m·lm = 8p/t
	a := packetBytes * 8 / t1
	b := packetBytes * 8 / t2
	lm = (b - a) / (m2 - m1)
	l0 = a - m1*lm
	return l0, lm, true
}

// RelativeError returns |estimate-measured|/measured, or 0 when measured
// is zero. Used to assert the model's ±10% accuracy claim against the
// simulator.
func RelativeError(estimate, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	d := estimate - measured
	if d < 0 {
		d = -d
	}
	return d / measured
}
