// Package transport implements a DCTCP-flavoured reliable transport
// (Alizadeh et al. [5], the protocol the paper's testbed runs): AIMD
// window control driven by the fraction of ECN-marked packets, delayed
// cumulative ACKs with immediate duplicate ACKs on out-of-order arrival,
// fast retransmit on three duplicate ACKs, and a retransmission timeout.
//
// The state machines are pure (no timers or I/O): the host simulation
// drives them with virtual time. Sequence numbers count MTU-sized
// segments, matching the simulator's packet granularity.
package transport

import "fastsafe/internal/sim"

// Params tunes the transport. Zero fields take defaults.
type Params struct {
	InitCwnd     float64      // initial window, segments (default 10)
	MinCwnd      float64      // floor (default 1)
	MaxCwnd      float64      // cap, segments (default 512)
	Gain         float64      // DCTCP alpha EWMA gain g (default 1/16)
	AckEvery     int          // in-order segments per delayed ACK (default 8)
	DupAckThresh int          // duplicate ACKs triggering fast rtx (default 3)
	RTOMin       sim.Duration // minimum retransmission timeout (default 5ms)
}

func (p Params) withDefaults() Params {
	if p.InitCwnd == 0 {
		p.InitCwnd = 10
	}
	if p.MinCwnd == 0 {
		p.MinCwnd = 2 // TCP's two-segment floor
	}
	if p.MaxCwnd == 0 {
		p.MaxCwnd = 512
	}
	if p.Gain == 0 {
		p.Gain = 1.0 / 16
	}
	if p.AckEvery == 0 {
		p.AckEvery = 8
	}
	if p.DupAckThresh == 0 {
		p.DupAckThresh = 3
	}
	if p.RTOMin == 0 {
		p.RTOMin = 5 * sim.Millisecond
	}
	return p
}

// Ack is the feedback a receiver produces for the sender.
type Ack struct {
	CumAck  int64 // next expected segment
	ECNEcho bool  // congestion experienced since last ACK
	Dup     bool  // duplicate (out-of-order trigger)
}

// SenderStats counts sender-side events.
type SenderStats struct {
	Sent        int64
	Retransmits int64
	FastRtx     int64
	Timeouts    int64
	AckedECN    int64 // segments acked under ECN echo
}

// Sender is one flow's congestion-controlled sender.
type Sender struct {
	p Params

	next int64 // next new segment to send
	una  int64 // oldest unacked segment

	cwnd     float64
	ssthresh float64

	dupAcks int
	rtxSeq  int64 // segment to retransmit next, -1 if none
	recover int64 // fast-recovery end marker

	// DCTCP state.
	alpha     float64
	ecnSeen   int64
	ackedWin  int64
	windowEnd int64
	cutEnd    int64 // no further multiplicative cut until una passes this

	lastProgress sim.Time // last time una advanced (RTO reference)
	stats        SenderStats
	ep           Endpoint // (host, peer) pair this sender is bound to
}

// NewSender returns a sender starting at segment 0.
func NewSender(p Params) *Sender {
	p = p.withDefaults()
	return &Sender{
		p:        p,
		cwnd:     p.InitCwnd,
		ssthresh: p.MaxCwnd,
		rtxSeq:   -1,
		recover:  -1,
	}
}

// Stats returns the sender's counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Cwnd returns the current congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Alpha returns the current DCTCP congestion estimate.
func (s *Sender) Alpha() float64 { return s.alpha }

// Una returns the oldest unacknowledged segment.
func (s *Sender) Una() int64 { return s.una }

// Inflight returns the number of outstanding segments.
func (s *Sender) Inflight() int64 { return s.next - s.una }

// CanSend reports whether the window permits transmitting a segment.
func (s *Sender) CanSend() bool {
	if s.rtxSeq >= 0 {
		return true
	}
	return float64(s.next-s.una) < s.cwnd
}

// NextSend returns the segment to transmit and whether it is a
// retransmission. Call only when CanSend is true; the caller must then
// actually transmit and call OnSent.
func (s *Sender) NextSend() (seq int64, retransmit bool) {
	if s.rtxSeq >= 0 {
		return s.rtxSeq, true
	}
	return s.next, false
}

// OnSent records the transmission of seq at virtual time now.
func (s *Sender) OnSent(seq int64, now sim.Time) {
	s.stats.Sent++
	if seq == s.rtxSeq {
		s.rtxSeq = -1
		s.stats.Retransmits++
		return
	}
	if seq == s.next {
		if s.next == s.una {
			s.lastProgress = now
		}
		s.next++
	}
}

// OnAck processes receiver feedback, returning the number of segments
// newly acknowledged.
func (s *Sender) OnAck(a Ack, now sim.Time) int64 {
	if a.CumAck <= s.una {
		if a.Dup {
			s.dupAcks++
			if s.dupAcks == s.p.DupAckThresh && s.una > s.recover {
				// Fast retransmit + multiplicative decrease.
				s.rtxSeq = s.una
				s.recover = s.next
				s.ssthresh = maxf(s.cwnd/2, s.p.MinCwnd)
				s.cwnd = s.ssthresh
				s.stats.FastRtx++
			}
		}
		return 0
	}
	acked := a.CumAck - s.una
	s.una = a.CumAck
	s.dupAcks = 0
	s.rtxSeq = -1
	s.lastProgress = now

	// NewReno partial-ACK recovery: while inside fast recovery, a
	// cumulative ACK that does not reach the recovery point means the next
	// unacked segment was also lost — retransmit it immediately instead of
	// waiting for three more duplicate ACKs (or an RTO). Tail drops
	// cluster, so this is what keeps clustered losses from stalling flows.
	if s.una < s.recover {
		s.rtxSeq = s.una
	}

	// DCTCP: account ECN feedback over roughly one window of ACKed data.
	s.ackedWin += acked
	if a.ECNEcho {
		s.ecnSeen += acked
		s.stats.AckedECN += acked
	}
	if s.una >= s.windowEnd {
		f := 0.0
		if s.ackedWin > 0 {
			f = float64(s.ecnSeen) / float64(s.ackedWin)
		}
		s.alpha = (1-s.p.Gain)*s.alpha + s.p.Gain*f
		s.ecnSeen, s.ackedWin = 0, 0
		s.windowEnd = s.una + int64(s.cwnd) + 1
	}
	if a.ECNEcho && s.una > s.cutEnd {
		// One multiplicative cut per window, scaled by alpha. The cut also
		// ends slow start, as in DCTCP/TCP: ssthresh tracks the reduced
		// window so growth continues additively.
		s.cwnd = maxf(s.cwnd*(1-s.alpha/2), s.p.MinCwnd)
		s.ssthresh = s.cwnd
		s.cutEnd = s.next
	}

	// Window growth: slow start below ssthresh, else one segment per RTT.
	for i := int64(0); i < acked; i++ {
		if s.cwnd < s.ssthresh {
			s.cwnd++
		} else {
			s.cwnd += 1 / s.cwnd
		}
	}
	s.cwnd = minf(s.cwnd, s.p.MaxCwnd)
	return acked
}

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() sim.Duration { return s.p.RTOMin }

// MaybeTimeout fires the retransmission timeout if no progress has been
// made for an RTO while data is outstanding. On timeout the window
// collapses and the sender goes back to una.
func (s *Sender) MaybeTimeout(now sim.Time) bool {
	if s.next == s.una {
		return false
	}
	if now-s.lastProgress < s.RTO() {
		return false
	}
	s.stats.Timeouts++
	s.ssthresh = maxf(s.cwnd/2, s.p.MinCwnd)
	s.cwnd = s.p.MinCwnd
	s.next = s.una // go-back-N
	s.rtxSeq = -1
	s.dupAcks = 0
	s.recover = -1
	s.lastProgress = now
	return true
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ReceiverStats counts receiver-side events.
type ReceiverStats struct {
	Received   int64
	OutOfOrder int64
	Duplicates int64
	AcksSent   int64
}

// Receiver is one flow's receive-side reassembly and ACK generation.
type Receiver struct {
	p       Params
	rcvNxt  int64
	ooo     map[int64]bool
	pending int  // in-order segments since last ACK
	ecn     bool // congestion seen since last ACK
	stats   ReceiverStats
	ep      Endpoint // (host, peer) pair this receiver is bound to
}

// NewReceiver returns a receiver expecting segment 0.
func NewReceiver(p Params) *Receiver {
	return &Receiver{p: p.withDefaults(), ooo: make(map[int64]bool)}
}

// Stats returns the receiver's counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// RcvNxt returns the next expected segment.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// OnData processes an arriving segment, returning how many segments were
// newly delivered in order and the ACK to send, if any. Out-of-order and
// duplicate arrivals generate an immediate (duplicate) ACK — this is the
// mechanism that inflates the Tx ACK rate as drops increase (§2.2).
func (r *Receiver) OnData(seq int64, ecnMarked bool) (delivered int64, ack *Ack) {
	r.stats.Received++
	if ecnMarked {
		r.ecn = true
	}
	switch {
	case seq == r.rcvNxt:
		r.rcvNxt++
		delivered++
		for r.ooo[r.rcvNxt] {
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt++
			delivered++
		}
		r.pending += int(delivered)
		// ACK immediately when filling a gap (we had OOO data) or at the
		// delayed-ACK threshold.
		if r.pending >= r.p.AckEvery || len(r.ooo) > 0 || delivered > 1 {
			return delivered, r.makeAck(false)
		}
		return delivered, nil
	case seq > r.rcvNxt:
		r.stats.OutOfOrder++
		r.ooo[seq] = true
		return 0, r.makeAck(true)
	default:
		// Duplicate of already-delivered data (spurious retransmit).
		r.stats.Duplicates++
		return 0, r.makeAck(true)
	}
}

func (r *Receiver) makeAck(dup bool) *Ack {
	r.stats.AcksSent++
	r.pending = 0
	a := &Ack{CumAck: r.rcvNxt, ECNEcho: r.ecn, Dup: dup}
	r.ecn = false
	return a
}

// FlushAck forces a delayed ACK out (host calls this on a delayed-ACK
// timer when traffic pauses).
func (r *Receiver) FlushAck() *Ack {
	if r.pending == 0 {
		return nil
	}
	return r.makeAck(false)
}
