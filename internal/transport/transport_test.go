package transport

import (
	"testing"
	"testing/quick"

	"fastsafe/internal/sim"
)

func TestSenderInitialWindow(t *testing.T) {
	s := NewSender(Params{})
	if s.Cwnd() != 10 {
		t.Fatalf("initial cwnd = %v, want 10", s.Cwnd())
	}
	if !s.CanSend() {
		t.Fatal("fresh sender cannot send")
	}
}

func TestSenderWindowLimitsInflight(t *testing.T) {
	s := NewSender(Params{InitCwnd: 3})
	for i := 0; i < 3; i++ {
		if !s.CanSend() {
			t.Fatalf("cannot send segment %d within window", i)
		}
		seq, rtx := s.NextSend()
		if rtx || seq != int64(i) {
			t.Fatalf("NextSend = %d,%v", seq, rtx)
		}
		s.OnSent(seq, 0)
	}
	if s.CanSend() {
		t.Fatal("window exceeded")
	}
	if s.Inflight() != 3 {
		t.Fatalf("inflight = %d, want 3", s.Inflight())
	}
}

func TestSlowStartGrowth(t *testing.T) {
	s := NewSender(Params{InitCwnd: 2})
	s.OnSent(0, 0)
	s.OnSent(1, 0)
	before := s.Cwnd()
	s.OnAck(Ack{CumAck: 2}, 100)
	if s.Cwnd() != before+2 {
		t.Fatalf("cwnd = %v, want slow-start growth to %v", s.Cwnd(), before+2)
	}
}

func TestCongestionAvoidanceGrowth(t *testing.T) {
	s := NewSender(Params{InitCwnd: 10})
	s.ssthresh = 5 // below cwnd: congestion avoidance
	s.OnSent(0, 0)
	before := s.Cwnd()
	s.OnAck(Ack{CumAck: 1}, 100)
	growth := s.Cwnd() - before
	if growth <= 0 || growth > 0.2 {
		t.Fatalf("CA growth = %v, want ~1/cwnd", growth)
	}
}

func TestFastRetransmitOnThreeDupAcks(t *testing.T) {
	s := NewSender(Params{InitCwnd: 10})
	for i := int64(0); i < 5; i++ {
		s.OnSent(i, 0)
	}
	before := s.Cwnd()
	for i := 0; i < 3; i++ {
		s.OnAck(Ack{CumAck: 0, Dup: true}, 100)
	}
	if s.Stats().FastRtx != 1 {
		t.Fatalf("FastRtx = %d, want 1", s.Stats().FastRtx)
	}
	seq, rtx := s.NextSend()
	if !rtx || seq != 0 {
		t.Fatalf("NextSend = %d,%v, want retransmit of 0", seq, rtx)
	}
	if s.Cwnd() >= before {
		t.Fatal("no multiplicative decrease on fast retransmit")
	}
	// Sending the retransmission clears the pending flag.
	s.OnSent(seq, 200)
	if s.Stats().Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", s.Stats().Retransmits)
	}
}

func TestNoSecondFastRtxInSameWindow(t *testing.T) {
	s := NewSender(Params{InitCwnd: 10})
	for i := int64(0); i < 5; i++ {
		s.OnSent(i, 0)
	}
	for i := 0; i < 6; i++ {
		s.OnAck(Ack{CumAck: 0, Dup: true}, 100)
	}
	if s.Stats().FastRtx != 1 {
		t.Fatalf("FastRtx = %d, want 1 (once per window)", s.Stats().FastRtx)
	}
}

func TestTimeoutCollapsesWindow(t *testing.T) {
	s := NewSender(Params{InitCwnd: 10, RTOMin: sim.Millisecond})
	for i := int64(0); i < 5; i++ {
		s.OnSent(i, 0)
	}
	if s.MaybeTimeout(sim.Microsecond) {
		t.Fatal("timeout fired before RTO")
	}
	if !s.MaybeTimeout(2 * sim.Millisecond) {
		t.Fatal("timeout did not fire after RTO")
	}
	if s.Cwnd() != 2 {
		t.Fatalf("cwnd after timeout = %v, want the MinCwnd floor (2)", s.Cwnd())
	}
	// Go-back-N: next send is the oldest unacked.
	seq, _ := s.NextSend()
	if seq != 0 {
		t.Fatalf("next send after timeout = %d, want 0", seq)
	}
}

func TestNoTimeoutWhenIdle(t *testing.T) {
	s := NewSender(Params{RTOMin: sim.Millisecond})
	if s.MaybeTimeout(10 * sim.Millisecond) {
		t.Fatal("timeout fired with nothing outstanding")
	}
}

func TestDCTCPAlphaTracksMarks(t *testing.T) {
	s := NewSender(Params{InitCwnd: 10})
	// Several windows of fully-marked ACKs push alpha toward 1.
	var seq int64
	for w := 0; w < 200; w++ {
		for i := 0; i < 10 && s.CanSend(); i++ {
			q, _ := s.NextSend()
			s.OnSent(q, sim.Time(w*1000+i))
			seq = q
		}
		s.OnAck(Ack{CumAck: seq + 1, ECNEcho: true}, sim.Time(w*1000+999))
	}
	if s.Alpha() < 0.5 {
		t.Fatalf("alpha = %v, want pushed toward 1 under persistent marking", s.Alpha())
	}
	// Cwnd must be cut relative to unmarked operation.
	u := NewSender(Params{InitCwnd: 10})
	seq = 0
	for w := 0; w < 200; w++ {
		for i := 0; i < 10 && u.CanSend(); i++ {
			q, _ := u.NextSend()
			u.OnSent(q, sim.Time(w*1000+i))
			seq = q
		}
		u.OnAck(Ack{CumAck: seq + 1}, sim.Time(w*1000+999))
	}
	if s.Cwnd() >= u.Cwnd() {
		t.Fatalf("marked cwnd %v >= unmarked %v", s.Cwnd(), u.Cwnd())
	}
}

func TestReceiverInOrderDelivery(t *testing.T) {
	r := NewReceiver(Params{AckEvery: 4})
	var acks int
	for i := int64(0); i < 8; i++ {
		d, ack := r.OnData(i, false)
		if d != 1 {
			t.Fatalf("delivered = %d, want 1", d)
		}
		if ack != nil {
			acks++
			if ack.CumAck != i+1 || ack.Dup {
				t.Fatalf("ack = %+v", ack)
			}
		}
	}
	if acks != 2 {
		t.Fatalf("acks = %d, want 2 (one per 4 segments)", acks)
	}
}

func TestReceiverOutOfOrderDupAck(t *testing.T) {
	r := NewReceiver(Params{AckEvery: 100})
	r.OnData(0, false)
	d, ack := r.OnData(2, false) // gap at 1
	if d != 0 {
		t.Fatal("out-of-order segment delivered")
	}
	if ack == nil || !ack.Dup || ack.CumAck != 1 {
		t.Fatalf("ack = %+v, want dup ack for 1", ack)
	}
	// Filling the gap delivers both and acks immediately.
	d, ack = r.OnData(1, false)
	if d != 2 {
		t.Fatalf("delivered = %d, want 2", d)
	}
	if ack == nil || ack.CumAck != 3 {
		t.Fatalf("ack = %+v, want cumack 3", ack)
	}
}

func TestReceiverDuplicateSegment(t *testing.T) {
	r := NewReceiver(Params{AckEvery: 100})
	r.OnData(0, false)
	d, ack := r.OnData(0, false)
	if d != 0 || ack == nil || !ack.Dup {
		t.Fatalf("duplicate handling: d=%d ack=%+v", d, ack)
	}
	if r.Stats().Duplicates != 1 {
		t.Fatal("duplicate not counted")
	}
}

func TestReceiverECNEcho(t *testing.T) {
	r := NewReceiver(Params{AckEvery: 2})
	r.OnData(0, true) // marked, no ack yet
	_, ack := r.OnData(1, false)
	if ack == nil || !ack.ECNEcho {
		t.Fatalf("ack = %+v, want ECN echo", ack)
	}
	// Echo is cleared after being sent.
	r.OnData(2, false)
	_, ack = r.OnData(3, false)
	if ack == nil || ack.ECNEcho {
		t.Fatalf("ack = %+v, want echo cleared", ack)
	}
}

func TestReceiverFlushAck(t *testing.T) {
	r := NewReceiver(Params{AckEvery: 100})
	if r.FlushAck() != nil {
		t.Fatal("flush with nothing pending returned an ack")
	}
	r.OnData(0, false)
	ack := r.FlushAck()
	if ack == nil || ack.CumAck != 1 {
		t.Fatalf("flush ack = %+v", ack)
	}
	if r.FlushAck() != nil {
		t.Fatal("second flush returned an ack")
	}
}

// End-to-end property: over a lossy reordered channel, the receiver
// eventually delivers a prefix 0..n without gaps, and rcvNxt never
// decreases.
func TestPropertyReliableDelivery(t *testing.T) {
	f := func(dropPattern []bool) bool {
		s := NewSender(Params{InitCwnd: 8, RTOMin: sim.Millisecond, MaxCwnd: 64})
		r := NewReceiver(Params{AckEvery: 4})
		now := sim.Time(0)
		drop := func(i int64) bool {
			if len(dropPattern) == 0 {
				return false
			}
			return dropPattern[int(i)%len(dropPattern)] && i%7 == 3
		}
		var sent int64
		for step := 0; step < 20000 && r.RcvNxt() < 200; step++ {
			now += 1000
			s.MaybeTimeout(now)
			for s.CanSend() && sent < 100000 {
				seq, _ := s.NextSend()
				s.OnSent(seq, now)
				sent++
				if drop(seq + sent) {
					continue
				}
				prev := r.RcvNxt()
				_, ack := r.OnData(seq, false)
				if r.RcvNxt() < prev {
					return false
				}
				if ack != nil {
					s.OnAck(*ack, now)
				}
			}
		}
		return r.RcvNxt() >= 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
