package transport

import "fmt"

// Op selects the verb a peer flow uses. SendRecv (the zero value) is the
// two-sided shape: the remote CPU posts receive buffers and runs the
// stack per packet. Read and Write are one-sided RDMA verbs: the remote
// NIC resolves the target memory itself — through its device-side ATS
// cache when one is attached — and no remote core touches the data path.
type Op int

const (
	SendRecv Op = iota
	Read
	Write
)

var opNames = map[Op]string{
	SendRecv: "sendrecv",
	Read:     "read",
	Write:    "write",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ParseOp maps a name (as printed by String) back to an Op.
func ParseOp(s string) (Op, error) {
	for o, name := range opNames {
		if s == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("transport: unknown op %q", s)
}

// OneSided reports whether the verb bypasses the remote CPU.
func (o Op) OneSided() bool { return o != SendRecv }
