package transport

import "testing"

func BenchmarkSenderReceiverLoop(b *testing.B) {
	s := NewSender(Params{InitCwnd: 32, MaxCwnd: 64})
	r := NewReceiver(Params{AckEvery: 8})
	for i := 0; i < b.N; i++ {
		// One window's worth of segment+ACK processing per iteration
		// (instant ACKs keep the window open, so bound the inner loop).
		for j := 0; j < 64 && s.CanSend(); j++ {
			seq, _ := s.NextSend()
			s.OnSent(seq, 0)
			if _, ack := r.OnData(seq, false); ack != nil {
				s.OnAck(*ack, 0)
			}
		}
		if ack := r.FlushAck(); ack != nil {
			s.OnAck(*ack, 0)
		}
	}
}

func BenchmarkReceiverOutOfOrder(b *testing.B) {
	r := NewReceiver(Params{AckEvery: 8})
	var seq int64
	for i := 0; i < b.N; i++ {
		// Deliver 2 then 1 of every 3-segment group: one gap per group.
		r.OnData(seq, false)
		r.OnData(seq+2, false)
		r.OnData(seq+1, false)
		seq += 3
	}
}
