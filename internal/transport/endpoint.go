package transport

import "fmt"

// Endpoint names one side of a flow in a cluster: the host the state
// machine runs on and the peer host at the far end. Before the fabric
// layer existed the wire was an implicit singleton — every sender talked
// to "the" remote host — so endpoints carried no address. With N hosts
// on a switched fabric every Sender/Receiver binds to a (host, peer)
// pair; AbstractPeer marks the legacy single-host topology's modelless
// remote end.
type Endpoint struct {
	Host int // host this state machine runs on
	Peer int // far-end host, or AbstractPeer
}

// AbstractPeer is the Peer of a flow terminating at the abstract remote
// host of the single-host experiments (infinitely fast CPU, no IOMMU).
const AbstractPeer = -1

// Abstract reports whether the far end is the abstract remote host.
func (e Endpoint) Abstract() bool { return e.Peer == AbstractPeer }

func (e Endpoint) String() string {
	if e.Abstract() {
		return fmt.Sprintf("host%d->remote", e.Host)
	}
	return fmt.Sprintf("host%d->host%d", e.Host, e.Peer)
}

// Bind attaches the sender to a (host, peer) pair. The zero endpoint
// ({0, 0}) means unbound; single-host flows bind {0, AbstractPeer}.
func (s *Sender) Bind(ep Endpoint) { s.ep = ep }

// Endpoint returns the sender's bound (host, peer) pair.
func (s *Sender) Endpoint() Endpoint { return s.ep }

// Bind attaches the receiver to a (host, peer) pair.
func (r *Receiver) Bind(ep Endpoint) { r.ep = ep }

// Endpoint returns the receiver's bound (host, peer) pair.
func (r *Receiver) Endpoint() Endpoint { return r.ep }
