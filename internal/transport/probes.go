package transport

import (
	"fastsafe/internal/stats"
)

// RegisterProbes exposes one sender's congestion state and counters
// through the registry under prefix (e.g. "flow0."). All probes are
// read-only views over live state.
func (s *Sender) RegisterProbes(r *stats.Registry, prefix string) {
	r.GaugeFunc(prefix+"cwnd", s.Cwnd)
	r.GaugeFunc(prefix+"alpha", s.Alpha)
	r.GaugeFunc(prefix+"inflight", func() float64 { return float64(s.Inflight()) })
	r.GaugeFunc(prefix+"sent", func() float64 { return float64(s.stats.Sent) })
	r.GaugeFunc(prefix+"retransmits", func() float64 { return float64(s.stats.Retransmits) })
	r.GaugeFunc(prefix+"timeouts", func() float64 { return float64(s.stats.Timeouts) })
}

// RegisterProbes exposes one receiver's counters through the registry
// under prefix.
func (r *Receiver) RegisterProbes(reg *stats.Registry, prefix string) {
	reg.GaugeFunc(prefix+"received", func() float64 { return float64(r.stats.Received) })
	reg.GaugeFunc(prefix+"out_of_order", func() float64 { return float64(r.stats.OutOfOrder) })
	reg.GaugeFunc(prefix+"acks_sent", func() float64 { return float64(r.stats.AcksSent) })
}
