package control

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
)

// Parse turns a command-line control spec into a Config. The spec is
// ';'-separated: each segment is either a rule — its kind followed by
// comma-separated key=value fields — or the standalone evaluation
// period "every=<duration>", e.g.
//
//	"every=500us;guard,metric=audit.blocked,high=1,low=0,safe=strict,fast=fns,cooldown=2ms"
//
// Rule keys: metric (registry instrument name), high/low (thresholds,
// high fires and low releases), safe/fast (the two modes arbitrated),
// cooldown (minimum virtual time between switches on one domain), and
// domain (restrict to one device; default all). An empty spec returns
// a nil Config — the disabled control plane.
func Parse(spec string) (*Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	cfg := &Config{}
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if val, ok := strings.CutPrefix(seg, "every="); ok {
			d, err := parseDur(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("control spec every=%q: want a positive duration like 500us", val)
			}
			cfg.Every = d
			continue
		}
		r, err := parseRule(seg)
		if err != nil {
			return nil, err
		}
		cfg.Rules = append(cfg.Rules, r)
	}
	if len(cfg.Rules) == 0 {
		return nil, fmt.Errorf("control spec %q has no rules (want at least one %q or %q segment)", spec, Guard, Pressure)
	}
	// Run the rule-level semantic checks (threshold ordering, switchable
	// mode pairs) here too, so front ends reject a bad spec at parse
	// time rather than at host construction. Domain names can only be
	// checked once targets exist, at New.
	if err := cfg.check(nil); err != nil {
		return nil, err
	}
	return cfg, nil
}

func parseRule(seg string) (Rule, error) {
	fields := strings.Split(seg, ",")
	kind := strings.TrimSpace(fields[0])
	if kind != Guard && kind != Pressure {
		return Rule{}, fmt.Errorf("control spec: unknown rule kind %q (valid: %s, %s; or the standalone every=<duration>)", kind, Guard, Pressure)
	}
	r := Rule{Kind: kind}
	for _, field := range fields[1:] {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Rule{}, fmt.Errorf("control spec field %q: want key=value", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "metric":
			r.Metric = val
		case "high":
			r.High, err = parseNum(key, val)
		case "low":
			r.Low, err = parseNum(key, val)
		case "safe":
			r.Safe, err = parseMode(key, val)
		case "fast":
			r.Fast, err = parseMode(key, val)
		case "cooldown":
			r.Cooldown, err = parseDur(val)
			if err != nil {
				err = fmt.Errorf("control spec cooldown=%q: want a duration like 2ms", val)
			}
		case "domain":
			r.Domain = val
		default:
			err = fmt.Errorf("control spec: unknown key %q (valid: metric, high, low, safe, fast, cooldown, domain)", key)
		}
		if err != nil {
			return Rule{}, err
		}
	}
	if r.Metric == "" {
		return Rule{}, fmt.Errorf("control spec rule %q: metric must not be empty", seg)
	}
	return r, nil
}

func parseNum(key, val string) (float64, error) {
	x, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("control spec %s=%q: want a number", key, val)
	}
	return x, nil
}

func parseMode(key, val string) (core.Mode, error) {
	m, err := core.ParseMode(val)
	if err != nil {
		return 0, fmt.Errorf("control spec %s=%q: unknown mode (valid: %s)", key, val, strings.Join(core.ValidModeNames(), ", "))
	}
	return m, nil
}

func parseDur(val string) (sim.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("control: bad duration %q", val)
	}
	return sim.Duration(d.Nanoseconds()), nil
}
