// Package control is the simulator's adaptive protection-mode control
// plane: a deterministic rule engine running on the virtual clock that
// watches the telemetry registry and retunes per-domain runtime knobs
// (core.Knobs) through the SetKnobs transition protocol.
//
// Determinism contract: the controller consumes no randomness, reads
// the registry only at its own tick events, and schedules nothing but
// its next tick — so a run with a nil Config is byte-identical to a
// build without the package, and a run with rules replays decision-
// for-decision from the same seed regardless of runner pools or
// GOMAXPROCS (the property tests lock both down).
package control

import (
	"fmt"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

// DefaultEvery is the rule-evaluation period when Config.Every is zero:
// coarse enough that control-plane work is noise next to the datapath,
// fine enough to catch a fault burst within a phase.
const DefaultEvery = 500 * sim.Microsecond

// Rule kinds. A guard watches a cumulative safety counter and compares
// its per-tick delta; a pressure rule watches an instantaneous level.
const (
	// Guard escalates to the rule's Safe mode while the watched
	// counter's per-tick delta is at or above High, and relaxes back to
	// Fast once the domain sits in Safe and the delta has fallen to Low
	// or below (hysteresis: High fires, Low releases).
	Guard = "guard"
	// Pressure escalates to Fast while the watched level is at or
	// above High (e.g. memory-bus utilisation — misses got expensive,
	// shed protection CPU work), and relaxes to Safe once it falls to
	// Low or below.
	Pressure = "pressure"
)

// Rule is one deterministic mode-selection policy. Safe and Fast name
// the two modes the rule arbitrates between; both directions of the
// switch must be legal per core.CanSwitch (validated at New).
type Rule struct {
	Kind   string  // Guard or Pressure
	Metric string  // registry instrument name (host prefix applied on lookup)
	High   float64 // escalation threshold (fires at >= High)
	Low    float64 // release threshold (releases at <= Low); hysteresis gap
	Safe   core.Mode
	Fast   core.Mode
	// Cooldown is the minimum virtual time between switches on one
	// domain, so a metric hovering at a threshold cannot thrash the
	// transition protocol.
	Cooldown sim.Duration
	// Domain restricts the rule to the named target ("" = every target).
	Domain string
}

// Config enables the controller: at least one rule, evaluated every
// Every of virtual time (DefaultEvery when zero). The nil *Config is
// the disabled control plane.
type Config struct {
	Rules []Rule
	Every sim.Duration
}

// Target is one controllable protection domain. Exec charges the
// transition's CPU cost to the core that owns the domain's datapath, so
// a mode switch contends with the traffic it is reacting to.
type Target struct {
	Name   string
	Domain *core.Domain
	Exec   func(cost sim.Duration)
}

// Decision is one applied mode switch, recorded for the run's decision
// log (host.Results.Control).
type Decision struct {
	At     sim.Time
	Domain string
	Rule   string // rule kind
	Metric string
	Value  float64 // the delta (guard) or level (pressure) that fired
	From   core.Mode
	To     core.Mode
}

func (d Decision) String() string {
	return fmt.Sprintf("%v %s %s %s=%g %v->%v",
		d.At, d.Domain, d.Rule, d.Metric, d.Value, d.From, d.To)
}

// Controller evaluates the configured rules against the registry on
// virtual-clock ticks and applies mode switches through SetKnobs.
type Controller struct {
	eng     *sim.Engine
	reg     *stats.Registry
	prefix  string
	cfg     Config
	targets []Target

	last     []float64  // per rule×target: previous cumulative value (guards)
	cooldown []sim.Time // per target: no switches before this time
	log      []Decision

	ticks    *stats.Counter
	switches *stats.Counter
	rejected *stats.Counter
}

// New validates cfg against the targets and builds a controller wired
// to the engine and registry. The prefix is the host's instrument-name
// prefix ("host3." in a cluster): metric lookups try the prefixed name
// first, and the control.* counters register under it.
func New(eng *sim.Engine, reg *stats.Registry, prefix string, cfg Config, targets []Target) (*Controller, error) {
	names := make(map[string]bool, len(targets))
	for _, t := range targets {
		names[t.Name] = true
	}
	if err := cfg.check(names); err != nil {
		return nil, err
	}
	if cfg.Every == 0 {
		cfg.Every = DefaultEvery
	}
	c := &Controller{
		eng:      eng,
		reg:      reg,
		prefix:   prefix,
		cfg:      cfg,
		targets:  targets,
		last:     make([]float64, len(cfg.Rules)*len(targets)),
		cooldown: make([]sim.Time, len(targets)),
		ticks:    reg.Counter(prefix + "control.ticks"),
		switches: reg.Counter(prefix + "control.switches"),
		rejected: reg.Counter(prefix + "control.rejected"),
	}
	return c, nil
}

// check validates the configuration's rules. names holds the
// controllable target names a rule's Domain may reference; a nil map
// skips the domain-existence check (the parser runs before targets
// exist, New runs with them).
func (cfg Config) check(names map[string]bool) error {
	if len(cfg.Rules) == 0 {
		return fmt.Errorf("control: config has no rules (nil Config disables the control plane)")
	}
	if cfg.Every < 0 {
		return fmt.Errorf("control: evaluation period must be >= 0, got %s", cfg.Every)
	}
	for i, r := range cfg.Rules {
		if r.Kind != Guard && r.Kind != Pressure {
			return fmt.Errorf("control: rule %d: unknown kind %q (valid: %s, %s)", i, r.Kind, Guard, Pressure)
		}
		if r.Metric == "" {
			return fmt.Errorf("control: rule %d: metric must not be empty", i)
		}
		if r.High < r.Low {
			return fmt.Errorf("control: rule %d: high threshold %g below low %g (high fires, low releases)", i, r.High, r.Low)
		}
		if r.Safe == r.Fast {
			return fmt.Errorf("control: rule %d: safe and fast modes are both %v (nothing to arbitrate)", i, r.Safe)
		}
		if err := core.CanSwitch(r.Fast, r.Safe); err != nil {
			return fmt.Errorf("control: rule %d: %w", i, err)
		}
		if err := core.CanSwitch(r.Safe, r.Fast); err != nil {
			return fmt.Errorf("control: rule %d: %w", i, err)
		}
		if r.Cooldown < 0 {
			return fmt.Errorf("control: rule %d: cooldown must be >= 0, got %s", i, r.Cooldown)
		}
		if r.Domain != "" && names != nil && !names[r.Domain] {
			return fmt.Errorf("control: rule %d: domain %q matches no controllable device", i, r.Domain)
		}
	}
	return nil
}

// Start schedules the first evaluation tick; each tick reschedules the
// next, so the controller runs for the whole simulation.
func (c *Controller) Start() {
	c.eng.After(c.cfg.Every, c.tick)
}

// value resolves a metric name, preferring the host-prefixed
// registration (cluster hosts) over the bare name.
func (c *Controller) value(metric string) (float64, bool) {
	if c.prefix != "" {
		if v, ok := c.reg.Value(c.prefix + metric); ok {
			return v, true
		}
	}
	return c.reg.Value(metric)
}

func (c *Controller) tick() {
	c.ticks.Add(1)
	now := c.eng.Now()
	for ri, r := range c.cfg.Rules {
		v, ok := c.value(r.Metric)
		if !ok {
			// Unregistered metric: the layer it watches is absent from
			// this build (e.g. audit.* without -audit). Inert, not fatal.
			continue
		}
		for ti := range c.targets {
			t := &c.targets[ti]
			if r.Domain != "" && r.Domain != t.Name {
				continue
			}
			obs := v
			if r.Kind == Guard {
				slot := ri*len(c.targets) + ti
				obs = v - c.last[slot]
				c.last[slot] = v
			}
			cur := t.Domain.Mode()
			want, fired := cur, false
			switch r.Kind {
			case Guard:
				if obs >= r.High && cur != r.Safe {
					want, fired = r.Safe, true
				} else if obs <= r.Low && cur == r.Safe {
					want, fired = r.Fast, true
				}
			case Pressure:
				if obs >= r.High && cur != r.Fast {
					want, fired = r.Fast, true
				} else if obs <= r.Low && cur == r.Fast {
					want, fired = r.Safe, true
				}
			}
			if !fired || want == cur || now < c.cooldown[ti] {
				continue
			}
			knobs := t.Domain.Knobs()
			knobs.Mode = want
			cost, err := t.Domain.SetKnobs(knobs)
			if err != nil {
				// Another rule left the domain in a mode this pair cannot
				// reach (validated pairs never fail from their own modes).
				c.rejected.Add(1)
				continue
			}
			if t.Exec != nil {
				t.Exec(cost)
			}
			c.cooldown[ti] = now + r.Cooldown
			c.switches.Add(1)
			c.log = append(c.log, Decision{
				At: now, Domain: t.Name, Rule: r.Kind, Metric: r.Metric,
				Value: obs, From: cur, To: want,
			})
		}
	}
	c.eng.After(c.cfg.Every, c.tick)
}

// Decisions returns the applied-switch log in virtual-time order.
func (c *Controller) Decisions() []Decision { return c.log }
