package control

import (
	"strings"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
)

func testDomain(t *testing.T, mode core.Mode) *core.Domain {
	t.Helper()
	d, err := core.NewDomain(core.Config{Mode: mode, NumCPUs: 2, DescriptorPages: 16})
	if err != nil {
		t.Fatalf("NewDomain: %v", err)
	}
	return d
}

func guardRule() Rule {
	return Rule{Kind: Guard, Metric: "blocked", High: 1, Low: 0,
		Safe: core.Strict, Fast: core.FNS}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := stats.NewRegistry()
	tgt := []Target{{Name: "nic0", Domain: testDomain(t, core.FNS)}}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no rules", Config{}, "no rules"},
		{"bad kind", Config{Rules: []Rule{{Kind: "vibes", Metric: "m", Safe: core.Strict, Fast: core.FNS}}}, `unknown kind "vibes"`},
		{"empty metric", Config{Rules: []Rule{{Kind: Guard, Safe: core.Strict, Fast: core.FNS}}}, "metric must not be empty"},
		{"high below low", Config{Rules: []Rule{{Kind: Guard, Metric: "m", High: 1, Low: 2, Safe: core.Strict, Fast: core.FNS}}}, "high threshold"},
		{"same modes", Config{Rules: []Rule{{Kind: Guard, Metric: "m", Safe: core.FNS, Fast: core.FNS}}}, "nothing to arbitrate"},
		{"unswitchable pair", Config{Rules: []Rule{{Kind: Guard, Metric: "m", High: 1, Safe: core.Strict, Fast: core.Persistent}}}, "cannot switch"},
		{"cross family", Config{Rules: []Rule{{Kind: Guard, Metric: "m", High: 1, Safe: core.Cap, Fast: core.FNS}}}, "capability table"},
		{"unknown domain", Config{Rules: []Rule{{Kind: Guard, Metric: "m", High: 1, Safe: core.Strict, Fast: core.FNS, Domain: "nic9"}}}, `domain "nic9"`},
		{"negative cooldown", Config{Rules: []Rule{{Kind: Guard, Metric: "m", High: 1, Safe: core.Strict, Fast: core.FNS, Cooldown: -1}}}, "cooldown"},
	}
	for _, tc := range cases {
		_, err := New(eng, reg, "", tc.cfg, tgt)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// A guard rule must escalate to Safe when the watched counter's
// per-tick delta crosses High, hold while it keeps moving, and relax
// back to Fast only after the delta falls to Low (hysteresis) — each
// applied switch logged and counted, with the transition cost charged
// through Exec.
func TestGuardHysteresis(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := stats.NewRegistry()
	blocked := reg.Counter("blocked")
	dom := testDomain(t, core.FNS)
	var charged int
	c, err := New(eng, reg, "", Config{Every: 100, Rules: []Rule{guardRule()}},
		[]Target{{Name: "nic0", Domain: dom, Exec: func(sim.Duration) { charged++ }}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()

	eng.Run(150) // tick at 100: delta 0, stay fast
	if dom.Mode() != core.FNS {
		t.Fatalf("mode after quiet tick = %v, want fns", dom.Mode())
	}
	blocked.Add(3)
	eng.Run(250) // tick at 200: delta 3 >= 1 -> strict
	if dom.Mode() != core.Strict {
		t.Fatalf("mode after burst tick = %v, want strict", dom.Mode())
	}
	blocked.Add(2)
	eng.Run(350) // tick at 300: delta 2, still bursting -> hold strict
	if dom.Mode() != core.Strict {
		t.Fatalf("mode mid-burst = %v, want strict held", dom.Mode())
	}
	eng.Run(450) // tick at 400: delta 0 <= 0 -> release to fns
	if dom.Mode() != core.FNS {
		t.Fatalf("mode after burst = %v, want fns restored", dom.Mode())
	}

	dec := c.Decisions()
	if len(dec) != 2 {
		t.Fatalf("decision log = %v, want escalate+release", dec)
	}
	if dec[0].From != core.FNS || dec[0].To != core.Strict || dec[0].Value != 3 {
		t.Fatalf("escalation decision = %+v", dec[0])
	}
	if dec[1].From != core.Strict || dec[1].To != core.FNS {
		t.Fatalf("release decision = %+v", dec[1])
	}
	if dec[1].At <= dec[0].At {
		t.Fatalf("decisions out of order: %v then %v", dec[0].At, dec[1].At)
	}
	if charged != 2 {
		t.Fatalf("Exec charged %d times, want 2", charged)
	}
	if v, _ := reg.Value("control.switches"); v != 2 {
		t.Fatalf("control.switches = %v, want 2", v)
	}
	if v, _ := reg.Value("control.ticks"); v != 4 {
		t.Fatalf("control.ticks = %v, want 4", v)
	}
}

// Cooldown pins the domain's mode for the configured virtual time after
// a switch, so a metric oscillating across both thresholds every tick
// cannot thrash the transition protocol.
func TestCooldownSuppressesThrash(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := stats.NewRegistry()
	blocked := reg.Counter("blocked")
	dom := testDomain(t, core.FNS)
	r := guardRule()
	r.Cooldown = 500
	c, err := New(eng, reg, "", Config{Every: 100, Rules: []Rule{r}},
		[]Target{{Name: "nic0", Domain: dom}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	// Delta alternates 2,0,2,0,... across ticks: without cooldown that
	// is a switch per tick; with 500ns cooldown only the first lands
	// before 600.
	next := int64(2)
	for at := sim.Time(100); at <= 500; at += 100 {
		eng.Run(at + 50)
		blocked.Add(next)
		next = 2 - next
	}
	if got := len(c.Decisions()); got != 1 {
		t.Fatalf("decisions under cooldown = %d, want 1:\n%v", got, c.Decisions())
	}
	eng.Run(1200) // cooldown expired; quiet deltas release to fns
	if dom.Mode() != core.FNS {
		t.Fatalf("mode after cooldown = %v, want fns", dom.Mode())
	}
}

// A pressure rule watches a level, not a delta: escalate to Fast while
// the level holds at High, release to Safe at Low.
func TestPressureRule(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := stats.NewRegistry()
	util := reg.Gauge("util")
	dom := testDomain(t, core.Strict)
	c, err := New(eng, reg, "", Config{Every: 100, Rules: []Rule{{
		Kind: Pressure, Metric: "util", High: 0.8, Low: 0.2,
		Safe: core.Strict, Fast: core.FNS,
	}}}, []Target{{Name: "nic0", Domain: dom}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	util.Set(0.9)
	eng.Run(150)
	if dom.Mode() != core.FNS {
		t.Fatalf("mode under pressure = %v, want fns", dom.Mode())
	}
	util.Set(0.5) // inside the hysteresis band: hold
	eng.Run(250)
	if dom.Mode() != core.FNS {
		t.Fatalf("mode in hysteresis band = %v, want fns held", dom.Mode())
	}
	util.Set(0.1)
	eng.Run(350)
	if dom.Mode() != core.Strict {
		t.Fatalf("mode after pressure = %v, want strict restored", dom.Mode())
	}
}

// Cluster hosts register instruments under a "hostN." prefix; the
// controller must prefer the prefixed metric and fall back to the bare
// name. An entirely unregistered metric leaves the rule inert.
func TestMetricLookupPrefixAndFallback(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := stats.NewRegistry()
	reg.Gauge("util").Set(0.0)       // bare name: calm
	reg.Gauge("host1.util").Set(1.0) // prefixed: pressure
	dom := testDomain(t, core.Strict)
	mk := func(metric string) *Controller {
		c, err := New(eng, reg, "host1.", Config{Every: 100, Rules: []Rule{{
			Kind: Pressure, Metric: metric, High: 0.8, Low: 0.2,
			Safe: core.Strict, Fast: core.FNS,
		}}}, []Target{{Name: "nic0", Domain: dom}})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return c
	}
	c := mk("util")
	c.Start()
	eng.Run(150)
	if dom.Mode() != core.FNS {
		t.Fatalf("prefixed lookup: mode = %v, want fns (host1.util=1.0)", dom.Mode())
	}
	if ghost := mk("missing"); ghost != nil {
		ghost.Start()
		eng.Run(250)
		if n := len(ghost.Decisions()); n != 0 {
			t.Fatalf("unregistered metric made %d decisions, want 0", n)
		}
	}
}

// A rule scoped to one domain must leave the others alone.
func TestDomainScope(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := stats.NewRegistry()
	reg.Counter("blocked").Add(10)
	d0, d1 := testDomain(t, core.FNS), testDomain(t, core.FNS)
	r := guardRule()
	r.Domain = "nic1"
	c, err := New(eng, reg, "", Config{Every: 100, Rules: []Rule{r}},
		[]Target{{Name: "nic0", Domain: d0}, {Name: "nic1", Domain: d1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	eng.Run(150)
	if d0.Mode() != core.FNS || d1.Mode() != core.Strict {
		t.Fatalf("modes = %v/%v, want fns/strict (rule scoped to nic1)", d0.Mode(), d1.Mode())
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := Parse("every=500us; guard,metric=audit.blocked,high=1,low=0,safe=strict,fast=fns,cooldown=2ms,domain=nic0; pressure,metric=mem.util,high=0.8,low=0.3,safe=strict,fast=fns")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Every != 500*sim.Microsecond {
		t.Fatalf("Every = %v, want 500us", cfg.Every)
	}
	if len(cfg.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(cfg.Rules))
	}
	g := cfg.Rules[0]
	if g.Kind != Guard || g.Metric != "audit.blocked" || g.High != 1 || g.Low != 0 ||
		g.Safe != core.Strict || g.Fast != core.FNS || g.Cooldown != 2*sim.Millisecond || g.Domain != "nic0" {
		t.Fatalf("guard rule = %+v", g)
	}
	if p := cfg.Rules[1]; p.Kind != Pressure || p.Metric != "mem.util" || p.High != 0.8 {
		t.Fatalf("pressure rule = %+v", p)
	}
	if cfg, err := Parse(""); cfg != nil || err != nil {
		t.Fatalf("empty spec = %v,%v, want nil,nil (disabled)", cfg, err)
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"vibes,metric=m", `unknown rule kind "vibes"`},
		{"guard,metric=m,color=red", `unknown key "color"`},
		{"guard,metric=m,high=lots", `high="lots": want a number`},
		{"guard,metric=m,safe=warp9", `unknown mode`},
		{"guard,metric=m,cooldown=fast", `cooldown="fast"`},
		{"guard,high=1", "metric must not be empty"},
		{"guard,metric", "want key=value"},
		{"every=1ms", "no rules"},
		{"every=backwards;guard,metric=m", `every="backwards"`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", tc.spec, err, tc.want)
		}
	}
	// Mode rejections must name the full valid-mode vocabulary, like
	// modespec's.
	_, err := Parse("guard,metric=m,fast=warp9")
	if err == nil || !strings.Contains(err.Error(), "fns+huge") {
		t.Errorf("mode rejection %v does not list valid modes", err)
	}
}

// TestDecisionString pins the decision-log line format the adaptive
// experiments and fssim print.
func TestDecisionString(t *testing.T) {
	d := Decision{
		At: sim.Time(1594 * sim.Microsecond), Domain: "nic0", Rule: Guard,
		Metric: "audit.blocked", Value: 17, From: core.FNS, To: core.Strict,
	}
	if got, want := d.String(), "1.594ms nic0 guard audit.blocked=17 fns->strict"; got != want {
		t.Fatalf("Decision.String() = %q, want %q", got, want)
	}
}
