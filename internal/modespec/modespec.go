// Package modespec is the one place protection-mode specs coming in
// from the outside world — CLI flags, the public facade's Options —
// are parsed and validated. Both front ends used to duplicate the
// parse-and-wrap dance around core.ParseMode with slightly different
// error text; this package gives them identical, descriptive errors
// that name every accepted mode.
package modespec

import (
	"fmt"
	"strconv"
	"strings"

	"fastsafe/internal/control"
	"fastsafe/internal/core"
	"fastsafe/internal/transport"
)

// Valid returns the accepted mode names: the presentation modes in
// core.Modes() order, then the modes kept out of sweeps (strawmen and
// the capability family), sorted. Delegates to the one shared name
// table in core so the two parsers can never drift.
func Valid() []string {
	return core.ValidModeNames()
}

func parse(s, what string) (core.Mode, error) {
	if s == "" {
		return 0, fmt.Errorf("modespec: %s must not be empty (valid: %s)",
			what, strings.Join(Valid(), ", "))
	}
	m, err := core.ParseMode(s)
	if err != nil {
		return 0, fmt.Errorf("modespec: unknown %s %q (valid: %s)",
			what, s, strings.Join(Valid(), ", "))
	}
	return m, nil
}

// Host parses a required host protection mode. The error names the
// offending input and lists every valid mode.
func Host(s string) (core.Mode, error) {
	return parse(s, "protection mode")
}

// Device parses an optional per-device mode override: "" means inherit
// the host mode and returns nil.
func Device(s string) (*core.Mode, error) {
	if s == "" {
		return nil, nil
	}
	m, err := parse(s, "device protection mode")
	if err != nil {
		return nil, err
	}
	return &m, nil
}

// Control parses an adaptive control-plane spec: "" disables the
// control plane and returns nil, nil (runs stay byte-identical to
// builds without the controller); otherwise ';'-separated rule
// segments plus an optional "every=<duration>" (see
// internal/control.Parse). Both front ends get the same descriptive
// rejections, which name the valid kinds, keys and modes.
func Control(s string) (*control.Config, error) {
	cfg, err := control.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("modespec: %w", err)
	}
	return cfg, nil
}

// ValidOps returns the accepted peer-flow verb names, two-sided first.
func ValidOps() []string {
	return []string{transport.SendRecv.String(), transport.Read.String(), transport.Write.String()}
}

// RDMA parses a peer-flow verb spec: "" keeps the two-sided default
// (send/recv), "read"/"write" select the one-sided shapes that bypass
// the remote CPU. The error names the offending input and lists every
// accepted verb.
func RDMA(s string) (transport.Op, error) {
	if s == "" {
		return transport.SendRecv, nil
	}
	op, err := transport.ParseOp(s)
	if err != nil {
		return 0, fmt.Errorf("modespec: unknown rdma op %q (valid: %s)",
			s, strings.Join(ValidOps(), ", "))
	}
	return op, nil
}

// Churn parses a serving-fleet churn-rate spec: the per-request
// probability a connection dies and is reborn with a fresh DMA buffer.
// Must lie in (0, 1] — a zero or negative rate would mean no churn, and
// the scenario exists to exercise the (un)map path.
func Churn(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("modespec: churn rate %q is not a number (the per-request connection death probability, in (0, 1])", s)
	}
	if f <= 0 || f > 1 {
		return 0, fmt.Errorf("modespec: churn rate must be in (0, 1], got %g (the per-request connection death probability)", f)
	}
	return f, nil
}

// Conns parses a serving-fleet size spec: the number of open-loop
// connections, at least 1.
func Conns(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("modespec: conns %q is not an integer (the serving-fleet connection count, >= 1)", s)
	}
	if n < 1 {
		return 0, fmt.Errorf("modespec: conns must be >= 1, got %d", n)
	}
	return n, nil
}

// CohortSize parses a flow-aggregation spec: how many identical
// connections share one simulated cohort. 1 simulates every connection
// exactly; larger sizes aggregate latency attribution without changing
// any counter (the cohort package's grouping-invariance contract).
func CohortSize(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("modespec: cohort size %q is not an integer (1 simulates every connection exactly)", s)
	}
	if n < 1 {
		return 0, fmt.Errorf("modespec: cohort size must be >= 1, got %d (1 simulates every connection exactly)", n)
	}
	return n, nil
}

// ATSEntries parses a device-TLB capacity spec: "" and "0" leave the
// device cache disabled (translations resolve at the IOMMU and results
// stay byte-identical to builds without ATS); a positive integer sizes
// each device's ATS translation cache in 4KB entries.
func ATSEntries(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("modespec: ats entries %q is not an integer (0 disables the device TLB; a positive count sizes it)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("modespec: ats entries must be >= 0, got %d (0 disables the device TLB)", n)
	}
	return n, nil
}
