package modespec

import (
	"strings"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/transport"
)

func TestHostParsesEveryValidMode(t *testing.T) {
	for _, name := range Valid() {
		m, err := Host(name)
		if err != nil {
			t.Fatalf("Host(%q): %v", name, err)
		}
		if m.String() != name {
			t.Fatalf("Host(%q) = %v", name, m)
		}
	}
}

func TestHostRejectionMessage(t *testing.T) {
	_, err := Host("fast")
	if err == nil {
		t.Fatal("Host(\"fast\") accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		`unknown protection mode "fast"`,
		"valid:",
		"strict",
		"fns+huge",
		"defer-noshootdown", // the strawman parses even though sweeps skip it
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestHostRejectsEmpty(t *testing.T) {
	_, err := Host("")
	if err == nil {
		t.Fatal("empty mode accepted")
	}
	if !strings.Contains(err.Error(), "must not be empty") {
		t.Fatalf("error %q does not explain the empty input", err)
	}
}

func TestDeviceInheritsOnEmpty(t *testing.T) {
	m, err := Device("")
	if err != nil || m != nil {
		t.Fatalf("Device(\"\") = %v, %v; want nil, nil", m, err)
	}
	m, err = Device("strict")
	if err != nil || m == nil || *m != core.Strict {
		t.Fatalf("Device(\"strict\") = %v, %v", m, err)
	}
}

func TestDeviceRejectionMessage(t *testing.T) {
	_, err := Device("turbo")
	if err == nil {
		t.Fatal("Device(\"turbo\") accepted")
	}
	if want := `unknown device protection mode "turbo"`; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q missing %q", err, want)
	}
}

func TestRDMAParsesEveryOp(t *testing.T) {
	op, err := RDMA("")
	if err != nil || op != transport.SendRecv {
		t.Fatalf("RDMA(\"\") = %v, %v; want sendrecv", op, err)
	}
	for _, name := range ValidOps() {
		op, err := RDMA(name)
		if err != nil {
			t.Fatalf("RDMA(%q): %v", name, err)
		}
		if op.String() != name {
			t.Fatalf("RDMA(%q) = %v", name, op)
		}
	}
}

func TestRDMARejectionMessage(t *testing.T) {
	_, err := RDMA("fetch")
	if err == nil {
		t.Fatal("RDMA(\"fetch\") accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		`unknown rdma op "fetch"`,
		"valid:",
		"sendrecv",
		"read",
		"write",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestATSEntriesParses(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{{"", 0}, {"0", 0}, {"64", 64}, {"4096", 4096}} {
		n, err := ATSEntries(tc.in)
		if err != nil || n != tc.want {
			t.Fatalf("ATSEntries(%q) = %d, %v; want %d", tc.in, n, err, tc.want)
		}
	}
}

func TestATSEntriesRejectionMessages(t *testing.T) {
	_, err := ATSEntries("lots")
	if err == nil {
		t.Fatal("ATSEntries(\"lots\") accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, `ats entries "lots" is not an integer`) ||
		!strings.Contains(msg, "0 disables the device TLB") {
		t.Fatalf("non-integer error %q lacks the knob explanation", msg)
	}
	_, err = ATSEntries("-8")
	if err == nil {
		t.Fatal("ATSEntries(\"-8\") accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, "must be >= 0, got -8") {
		t.Fatalf("negative error %q lacks the bound", msg)
	}
}

func TestChurnParses(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{{"0.05", 0.05}, {"0.3", 0.3}, {"1", 1}} {
		f, err := Churn(tc.in)
		if err != nil || f != tc.want {
			t.Fatalf("Churn(%q) = %g, %v; want %g", tc.in, f, err, tc.want)
		}
	}
}

func TestChurnRejectionMessages(t *testing.T) {
	_, err := Churn("often")
	if err == nil {
		t.Fatal("Churn(\"often\") accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, `churn rate "often" is not a number`) ||
		!strings.Contains(msg, "death probability") {
		t.Fatalf("non-number error %q lacks the knob explanation", msg)
	}
	for _, bad := range []string{"0", "-0.2", "1.5"} {
		_, err := Churn(bad)
		if err == nil {
			t.Fatalf("Churn(%q) accepted", bad)
		}
		if msg := err.Error(); !strings.Contains(msg, "must be in (0, 1], got") {
			t.Fatalf("out-of-range error %q lacks the bound", msg)
		}
	}
}

func TestConnsParses(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{{"1", 1}, {"48", 48}, {"1024", 1024}} {
		n, err := Conns(tc.in)
		if err != nil || n != tc.want {
			t.Fatalf("Conns(%q) = %d, %v; want %d", tc.in, n, err, tc.want)
		}
	}
}

func TestConnsRejectionMessages(t *testing.T) {
	_, err := Conns("many")
	if err == nil {
		t.Fatal("Conns(\"many\") accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, `conns "many" is not an integer`) {
		t.Fatalf("non-integer error %q lacks the knob explanation", msg)
	}
	for _, bad := range []string{"0", "-4"} {
		_, err := Conns(bad)
		if err == nil {
			t.Fatalf("Conns(%q) accepted", bad)
		}
		if msg := err.Error(); !strings.Contains(msg, "must be >= 1, got") {
			t.Fatalf("bound error %q lacks the bound", msg)
		}
	}
}

func TestCohortSizeParses(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{{"1", 1}, {"4", 4}, {"64", 64}} {
		n, err := CohortSize(tc.in)
		if err != nil || n != tc.want {
			t.Fatalf("CohortSize(%q) = %d, %v; want %d", tc.in, n, err, tc.want)
		}
	}
}

func TestCohortSizeRejectionMessages(t *testing.T) {
	_, err := CohortSize("big")
	if err == nil {
		t.Fatal("CohortSize(\"big\") accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, `cohort size "big" is not an integer`) ||
		!strings.Contains(msg, "1 simulates every connection exactly") {
		t.Fatalf("non-integer error %q lacks the knob explanation", msg)
	}
	for _, bad := range []string{"0", "-3"} {
		_, err := CohortSize(bad)
		if err == nil {
			t.Fatalf("CohortSize(%q) accepted", bad)
		}
		if msg := err.Error(); !strings.Contains(msg, "must be >= 1, got") ||
			!strings.Contains(msg, "1 simulates every connection exactly") {
			t.Fatalf("bound error %q lacks the bound or explanation", msg)
		}
	}
}

func TestValidCoversModesAndStrawmen(t *testing.T) {
	valid := Valid()
	index := map[string]int{}
	for i, name := range valid {
		if _, dup := index[name]; dup {
			t.Fatalf("duplicate mode name %q", name)
		}
		index[name] = i
	}
	for i, m := range core.Modes() {
		at, ok := index[m.String()]
		if !ok {
			t.Fatalf("presentation mode %v missing from Valid()", m)
		}
		if at != i {
			t.Fatalf("presentation mode %v at %d, want core.Modes() order", m, at)
		}
	}
	if _, ok := index[core.DeferNoShootdown.String()]; !ok {
		t.Fatal("strawman mode missing from Valid()")
	}
	for _, m := range []core.Mode{core.Cap, core.CapLazyRevoke} {
		if _, ok := index[m.String()]; !ok {
			t.Fatalf("capability mode %v missing from Valid()", m)
		}
	}
}

// TestCapabilityModesParseInBothRoles: the capability family must parse
// as a host mode and as a per-device override, even though Modes()
// sweeps exclude it.
func TestCapabilityModesParseInBothRoles(t *testing.T) {
	for name, want := range map[string]core.Mode{
		"cap": core.Cap, "cap-lazyrevoke": core.CapLazyRevoke,
	} {
		m, err := Host(name)
		if err != nil || m != want {
			t.Fatalf("Host(%q) = %v, %v; want %v", name, m, err, want)
		}
		dm, err := Device(name)
		if err != nil || dm == nil || *dm != want {
			t.Fatalf("Device(%q) = %v, %v; want %v", name, dm, err, want)
		}
	}
}

// TestRejectionNamesCapabilityModes: both parsers' rejection messages
// must list the capability modes among the valid names, so the family is
// discoverable from a typo.
func TestRejectionNamesCapabilityModes(t *testing.T) {
	for _, junk := range []string{"capability", "cap-lazy"} {
		_, err := Host(junk)
		if err == nil {
			t.Fatalf("Host(%q) accepted", junk)
		}
		for _, want := range []string{"cap", "cap-lazyrevoke"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("Host(%q) error %q does not name %q", junk, err, want)
			}
		}
		_, err = Device(junk)
		if err == nil {
			t.Fatalf("Device(%q) accepted", junk)
		}
		if !strings.Contains(err.Error(), "cap-lazyrevoke") {
			t.Fatalf("Device(%q) error %q does not name the capability modes", junk, err)
		}
	}
}

func TestControlEmptyDisables(t *testing.T) {
	cfg, err := Control("")
	if err != nil || cfg != nil {
		t.Fatalf("Control(\"\") = %v, %v; want nil, nil", cfg, err)
	}
}

func TestControlParsesSpec(t *testing.T) {
	cfg, err := Control("every=250us;guard,metric=audit.blocked,high=1,low=0,safe=strict,fast=fns,cooldown=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(cfg.Rules))
	}
	r := cfg.Rules[0]
	if r.Metric != "audit.blocked" || r.Safe != core.Strict || r.Fast != core.FNS {
		t.Fatalf("rule = %+v", r)
	}
}

func TestControlRejectionMessages(t *testing.T) {
	cases := []struct {
		name, spec string
		want       []string // substrings the error must carry
	}{
		{"unknown kind", "governor,metric=mem.util",
			[]string{`unknown rule kind "governor"`, "guard, pressure"}},
		{"missing metric", "guard,high=1,low=0,safe=strict,fast=fns",
			[]string{"metric must not be empty"}},
		{"unknown key", "guard,metric=x,ceiling=2",
			[]string{`unknown key "ceiling"`, "metric"}},
		{"bad threshold", "guard,metric=x,high=lots",
			[]string{`high="lots"`}},
		{"bad mode", "guard,metric=x,high=1,low=0,safe=turbo,fast=fns",
			[]string{`safe="turbo"`, "fns+huge"}},
		{"bad cooldown", "guard,metric=x,high=1,low=0,safe=strict,fast=fns,cooldown=soon",
			[]string{`cooldown="soon"`, "duration"}},
		{"bad every", "every=never",
			[]string{`every="never"`}},
		{"inverted thresholds", "guard,metric=x,high=1,low=5,safe=strict,fast=fns",
			[]string{"high", "low"}},
		{"unswitchable mode", "guard,metric=x,high=1,low=0,safe=strict,fast=persistent",
			[]string{"persistent"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Control(c.spec)
			if err == nil {
				t.Fatalf("Control(%q) accepted", c.spec)
			}
			msg := err.Error()
			if !strings.HasPrefix(msg, "modespec:") {
				t.Fatalf("error %q not namespaced", msg)
			}
			for _, want := range c.want {
				if !strings.Contains(msg, want) {
					t.Fatalf("error %q missing %q", msg, want)
				}
			}
		})
	}
}
