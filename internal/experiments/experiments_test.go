package experiments

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"fastsafe/internal/host"
)

// tiny returns extremely short windows so the whole figure set can be
// exercised in the unit-test budget.
func tiny() Options {
	o := Quick()
	o.Warmup /= 3
	o.Measure /= 3
	o.RPCMeasure /= 3
	return o
}

func TestIDsAllResolvable(t *testing.T) {
	for _, id := range IDs() {
		if _, err := ByID(id, Options{}); id == "" || err != nil && !strings.Contains(err.Error(), "unknown") {
			// We don't run them here (expensive); just check registration
			// below with one cheap figure.
			break
		}
	}
	if _, err := ByID("nope", tiny()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig12Shape(t *testing.T) {
	tab := Fig12(tiny())
	if len(tab.Rows) != 4 {
		t.Fatalf("fig12 rows = %d, want 4 configurations", len(tab.Rows))
	}
	if tab.Rows[0][0] != "Linux" || tab.Rows[3][0] != "F&S" {
		t.Fatalf("fig12 labels = %v", tab.Rows)
	}
	out := tab.String()
	if !strings.Contains(out, "fig12") || !strings.Contains(out, "app_gbps") {
		t.Fatalf("table formatting: %q", out)
	}
}

func TestFig10Shape(t *testing.T) {
	tab := Fig10(tiny())
	if len(tab.Rows) != 9 {
		t.Fatalf("fig10 rows = %d, want 3 modes x 3 core counts", len(tab.Rows))
	}
}

func TestFig2eLocality(t *testing.T) {
	tab := Fig2e(tiny())
	if len(tab.Rows) != 4 {
		t.Fatalf("fig2e rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[0] != "strict" {
			t.Fatalf("fig2e mode = %q", row[0])
		}
	}
}

func TestModelTableIncludesFit(t *testing.T) {
	tab := Model(tiny())
	found := false
	for _, row := range tab.Rows {
		if row[0] == "fit" {
			found = true
		}
	}
	if !found {
		t.Fatal("model table missing the (l0, lm) re-fit row")
	}
}

func TestTableStringAligned(t *testing.T) {
	tab := Table{ID: "x", Title: "t", Header: []string{"a", "bbbb"},
		Rows: [][]string{{"lonnng", "1"}}}
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "lonnng") {
		t.Fatalf("row line = %q", lines[2])
	}
}

func TestByIDRunsOneFigure(t *testing.T) {
	tab, err := ByID("modes", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("modes rows = %d, want 8", len(tab.Rows))
	}
}

func TestExtensionTablesShape(t *testing.T) {
	o := tiny()
	if tab := Hugepages(o); len(tab.Rows) != 6 {
		t.Fatalf("huge rows = %d", len(tab.Rows))
	}
	if tab := CPUCost(o); len(tab.Rows) != 8 {
		t.Fatalf("cpucost rows = %d", len(tab.Rows))
	}
	if tab := Storage(o); len(tab.Rows) != 6 {
		t.Fatalf("storage rows = %d", len(tab.Rows))
	}
	if tab := MemoryHog(o); len(tab.Rows) != 9 {
		t.Fatalf("memhog rows = %d", len(tab.Rows))
	}
	if tab := Seeds(o); len(tab.Rows) != 8 {
		t.Fatalf("seeds rows = %d", len(tab.Rows))
	}
}

// TestClusterTrends locks the cluster figure's headline claims: F&S's
// aggregate goodput never drops as hosts are added, strict mode's
// degrades past its peak, F&S beats strict at every size, and no host
// ever serves a stale DMA.
func TestClusterTrends(t *testing.T) {
	tab := Cluster(tiny())
	agg := map[string][]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("agg_gbps %q: %v", row[2], err)
		}
		agg[row[0]] = append(agg[row[0]], v)
		for _, s := range strings.Split(row[5], "/") {
			if s != "0" {
				t.Errorf("%s hosts=%s: stale-served DMAs %q", row[0], row[1], row[5])
			}
		}
	}
	fns, strict := agg["fns"], agg["strict"]
	if len(fns) != 4 || len(strict) != 4 {
		t.Fatalf("rows per mode: fns=%d strict=%d, want 4", len(fns), len(strict))
	}
	for i := 1; i < len(fns); i++ {
		if fns[i] < fns[i-1] {
			t.Errorf("fns aggregate degrades with hosts: %v", fns)
		}
	}
	peak := strict[0]
	for _, v := range strict {
		if v > peak {
			peak = v
		}
	}
	if last := strict[len(strict)-1]; last >= peak {
		t.Errorf("strict aggregate should degrade past its peak: %v", strict)
	}
	for i := range fns {
		if fns[i] <= strict[i] {
			t.Errorf("fns %v not above strict %v at index %d", fns[i], strict[i], i)
		}
	}
}

// TestRdmaTrends locks the rdma figure's two claims: one-sided WRITE
// through a warm device TLB beats CPU-paced send/recv at equal flow
// count, and the safe modes audit zero stale DMAs at every device-TLB
// capacity while the no-shootdown strawman serves stale ATC entries as
// soon as the cache can hold its window.
func TestRdmaTrends(t *testing.T) {
	tab := Rdma(tiny())
	type cell struct {
		agg      float64
		staleATS int64
	}
	grid := map[string]map[string]cell{} // mode -> "op@ats" -> cell
	for _, row := range tab.Rows {
		agg, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("agg_gbps %q: %v", row[3], err)
		}
		stale, err := strconv.ParseInt(row[7], 10, 64)
		if err != nil {
			t.Fatalf("stale_ats %q: %v", row[7], err)
		}
		if grid[row[0]] == nil {
			grid[row[0]] = map[string]cell{}
		}
		grid[row[0]][row[1]+"@"+row[2]] = cell{agg, stale}
		if safe := row[0] == "strict" || row[0] == "fns"; safe && (row[7] != "0" || row[8] != "0") {
			t.Errorf("%s %s@%s: stale_ats=%s stale_total=%s, want 0/0", row[0], row[1], row[2], row[7], row[8])
		}
	}
	for _, mode := range []string{"strict", "fns"} {
		cells := grid[mode]
		if len(cells) != 4 {
			t.Fatalf("%s rows: %d, want 4", mode, len(cells))
		}
		if w, s := cells["write@1024"].agg, cells["sendrecv@0"].agg; w <= s {
			t.Errorf("%s one-sided write@1024 %.1fGbps not above sendrecv %.1fGbps", mode, w, s)
		}
	}
	var strawmanStale int64
	for _, c := range grid["defer-noshootdown"] {
		strawmanStale += c.staleATS
	}
	if strawmanStale == 0 {
		t.Error("defer-noshootdown audited zero stale ATS hits; the strawman should serve stale translations")
	}
}

// TestServingTrends locks the serving figure's headline claims: zero
// stale-served DMAs in every row at every churn rate; strict's IOVA
// tree-allocation count an order of magnitude above F&S's at every
// churn level (the preserved-cache story under churn); strict's p99
// above F&S's in every matching row; and the cohort8 rows' counter
// columns identical to the exact churn-0.20 host rows (the grouping-
// invariance contract surfaced in the published table).
func TestServingTrends(t *testing.T) {
	tab := Serving(tiny())
	type row struct {
		served, deaths, allocs, checked string
		p99                             float64
	}
	rows := map[string]row{} // "mode/scope/churn"
	for _, r := range tab.Rows {
		if r[len(r)-1] != "0" {
			t.Errorf("%s %s churn=%s: stale_served=%s, want 0", r[0], r[1], r[2], r[len(r)-1])
		}
		p99, err := strconv.ParseFloat(r[5], 64)
		if err != nil {
			t.Fatalf("p99_us %q: %v", r[5], err)
		}
		if r[3] == "0" || r[7] == "0" {
			t.Errorf("%s %s churn=%s: vacuous cell (served=%s deaths=%s)", r[0], r[1], r[2], r[3], r[7])
		}
		rows[r[0]+"/"+r[1]+"/"+r[2]] = row{served: r[3], deaths: r[7], allocs: r[8], checked: r[10], p99: p99}
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	for _, churn := range []string{"0.05", "0.20", "0.50"} {
		strict, fns := rows["strict/host/"+churn], rows["fns/host/"+churn]
		sa, _ := strconv.ParseInt(strict.allocs, 10, 64)
		fa, _ := strconv.ParseInt(fns.allocs, 10, 64)
		if sa < 5*fa {
			t.Errorf("churn %s: strict iova_allocs %d not well above fns %d", churn, sa, fa)
		}
		if strict.p99 <= fns.p99 {
			t.Errorf("churn %s: strict p99 %.1f not above fns %.1f", churn, strict.p99, fns.p99)
		}
	}
	for _, mode := range []string{"strict", "fns", "cap"} {
		exact, agg := rows[mode+"/host/0.20"], rows[mode+"/cohort8/0.20"]
		if exact.served != agg.served || exact.deaths != agg.deaths ||
			exact.allocs != agg.allocs || exact.checked != agg.checked {
			t.Errorf("%s: cohort8 counters diverged from exact row: %+v vs %+v", mode, exact, agg)
		}
	}
}

// TestClusterScaleShape runs the clusterscale machinery on a reduced
// grid: deterministic columns in Rows, wall-clock and speedup in Notes
// (JSON only — the golden-locked rendering must exclude them).
func TestClusterScaleShape(t *testing.T) {
	cells := []clusterScaleCell{
		{host.Pairs, 8, 1}, {host.Pairs, 8, 2},
	}
	tab := clusterScaleTable(cells, tiny())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	if tab.Rows[0][2] != "1" || tab.Rows[1][2] != "2" {
		t.Fatalf("shards column = %v", tab.Rows)
	}
	if tab.Rows[0][3] != tab.Rows[1][3] {
		t.Fatalf("sharded goodput %s != unsharded %s", tab.Rows[1][3], tab.Rows[0][3])
	}
	if tab.Rows[0][4] != "0" {
		t.Fatalf("unsharded rounds = %s, want 0", tab.Rows[0][4])
	}
	if tab.Rows[1][4] == "0" {
		t.Fatal("sharded run reported zero coordinator rounds")
	}
	if len(tab.Notes) != 3 { // one wall-clock note per cell + one speedup
		t.Fatalf("notes = %v", tab.Notes)
	}
	if !strings.Contains(tab.Notes[2], "speedup_shards2=") {
		t.Fatalf("missing speedup note: %v", tab.Notes)
	}
	if !strings.Contains(tab.JSON(), "\"notes\"") {
		t.Fatal("JSON rendering dropped the notes")
	}
	if out := tab.String(); strings.Contains(out, "wall_ms") {
		t.Fatalf("golden-locked rendering leaked wall-clock notes:\n%s", out)
	}
	if out := tab.CSV(); strings.Contains(out, "wall_ms") {
		t.Fatalf("CSV rendering leaked wall-clock notes:\n%s", out)
	}
}

// TestParallelFigureMatchesSerial regenerates the same figure with one
// worker and with eight and requires identical tables: the runner fan-out
// must never change a figure's contents, only its wall-clock time.
func TestParallelFigureMatchesSerial(t *testing.T) {
	serialOpts := tiny()
	serialOpts.Parallel = 1
	parOpts := tiny()
	parOpts.Parallel = 8
	serial := Deferred(serialOpts)
	par := Deferred(parOpts)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel table diverges from serial:\n%s\nvs\n%s", par, serial)
	}
}

func TestCSVFormat(t *testing.T) {
	tab := Table{ID: "x", Title: "t", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}, {"3", "4"}}}
	got := tab.CSV()
	want := "a,b\n1,2\n3,4\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
