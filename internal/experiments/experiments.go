// Package experiments regenerates every table and figure in the paper's
// evaluation (§2.2 and §4) as printable tables, one function per figure.
// The per-experiment index in DESIGN.md maps each figure to the modules
// and workloads used here.
//
// Every figure is a grid of independent deterministic simulations, so
// each function builds its grid of workload.Specs first and fans them out
// through internal/runner (Options.Parallel workers), then formats the
// rows in grid order — parallelism never changes a table's contents.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"fastsafe/internal/control"
	"fastsafe/internal/core"
	"fastsafe/internal/fault"
	"fastsafe/internal/host"
	"fastsafe/internal/model"
	"fastsafe/internal/runner"
	"fastsafe/internal/sim"
	"fastsafe/internal/stats"
	"fastsafe/internal/transport"
	"fastsafe/internal/workload"
)

// Options control experiment durations and fan-out. Quick() is used by
// the benchmark harness and tests; Default() by cmd/fsbench.
type Options struct {
	Warmup  sim.Duration
	Measure sim.Duration
	// RPCMeasure lengthens latency experiments so tail percentiles have
	// enough samples.
	RPCMeasure sim.Duration
	// Parallel bounds how many simulation cells of one figure run
	// concurrently; <= 0 means GOMAXPROCS.
	Parallel int
}

// Default returns full-length windows.
func Default() Options {
	return Options{
		Warmup:     10 * sim.Millisecond,
		Measure:    40 * sim.Millisecond,
		RPCMeasure: 200 * sim.Millisecond,
	}
}

// Quick returns short windows for benchmarks and smoke tests.
func Quick() Options {
	return Options{
		Warmup:     3 * sim.Millisecond,
		Measure:    10 * sim.Millisecond,
		RPCMeasure: 30 * sim.Millisecond,
	}
}

// Table is one figure's regenerated data.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries non-deterministic side information (wall-clock
	// timings, environment remarks). It is published in JSON() for CI
	// artifacts but excluded from String() and CSV(), so golden files —
	// which lock the rendered table — stay byte-stable across machines.
	Notes []string
}

// JSON renders the table as an indented JSON object — the machine-
// readable form CI publishes as benchmark artifacts.
func (t Table) JSON() string {
	out, err := json.MarshalIndent(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes}, "", "  ")
	if err != nil { // unreachable: plain strings always marshal
		return fmt.Sprintf("{\"id\":%q,\"error\":%q}", t.ID, err)
	}
	return string(out)
}

// CSV renders the table as comma-separated values (header row first).
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// runSpecsRaw fans specs (windows already set) across the worker pool and
// returns results indexed by spec. A failing or panicking cell aborts the
// figure, as the sequential code did.
func runSpecsRaw(specs []workload.Spec, parallel int) []host.Results {
	jobs := make([]runner.Job[host.Results], len(specs))
	for i, s := range specs {
		s := s
		jobs[i] = func(context.Context) (host.Results, error) {
			r, err := s.Run()
			if err != nil {
				return host.Results{}, fmt.Errorf("%s: %w", s.Name, err)
			}
			return r, nil
		}
	}
	rs, err := runner.Collect(context.Background(), runner.Config{Workers: parallel}, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return rs
}

// runSpecs applies o's measurement windows to every spec and runs them
// concurrently.
func runSpecs(specs []workload.Spec, o Options) []host.Results {
	for i := range specs {
		specs[i].Warmup = o.Warmup
		specs[i].Measure = o.Measure
	}
	return runSpecsRaw(specs, o.Parallel)
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.3f%%", v*100) }

// counterHeader is shared by the microbenchmark figures (panels a–e).
var counterHeader = []string{
	"mode", "flows/ring", "rx_gbps", "drop", "iotlb/pg", "ptL1/pg", "ptL2/pg", "ptL3/pg", "reads/pg", "acks/pg",
}

func counterRow(label string, r host.Results) []string {
	return []string{
		r.Mode.String(), label, f1(r.RxGbps), pct(r.DropRate),
		f2(r.IOTLBPerPage), f3(r.L1PerPage), f3(r.L2PerPage), f3(r.L3PerPage),
		f2(r.ReadsPerPage), f3(r.AcksPerPage),
	}
}

var flowSweep = []int{5, 10, 20, 40}
var ringSweep = []int{256, 512, 1024, 2048}

// counterTable runs a mode × parameter iperf grid and formats it with the
// shared microbenchmark header.
func counterTable(id, title string, modes []core.Mode, params []int,
	mk func(core.Mode, int) workload.Spec, label func(int) string, o Options) Table {
	t := Table{ID: id, Title: title, Header: counterHeader}
	var specs []workload.Spec
	var labels []string
	for _, mode := range modes {
		for _, p := range params {
			specs = append(specs, mk(mode, p))
			labels = append(labels, label(p))
		}
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, counterRow(labels[i], r))
	}
	return t
}

func flowLabel(f int) string { return fmt.Sprintf("%d flows", f) }
func ringLabel(r int) string { return fmt.Sprintf("ring %d", r) }

// Fig2 regenerates Figure 2 (panels a–d): Linux strict vs IOMMU off with
// increasing flow counts. Panel e's locality trace is Fig2e.
func Fig2(o Options) Table {
	return counterTable("fig2", "Linux strict vs IOMMU off, flow sweep (§2.2)",
		[]core.Mode{core.Off, core.Strict}, flowSweep,
		func(m core.Mode, flows int) workload.Spec { return workload.Iperf(m, flows, 0) },
		flowLabel, o)
}

// localityTable summarises a reuse-distance trace the way Figures 2e/3e/
// 7e/8e plot it: distribution of PTcache-L3 stack distances at allocation.
func localityTable(id, title string, specs []workload.Spec, labels []string, o Options) Table {
	t := Table{ID: id, Title: title,
		Header: []string{"mode", "case", "allocs", "mean_dist", "frac>=32", "frac>=64", "frac>=128"}}
	for i, r := range runSpecs(specs, o) {
		tr := r.Trace
		if tr == nil {
			continue
		}
		warm, sum := 0, 0
		for _, d := range tr.Dists {
			if d >= 0 {
				warm++
				sum += d
			}
		}
		mean := 0.0
		if warm > 0 {
			mean = float64(sum) / float64(warm)
		}
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), labels[i], fmt.Sprintf("%d", len(tr.Dists)), f2(mean),
			f3(tr.FractionAbove(32)), f3(tr.FractionAbove(64)), f3(tr.FractionAbove(128)),
		})
	}
	return t
}

// Fig2e regenerates the Figure 2e IOVA locality panel.
func Fig2e(o Options) Table {
	var specs []workload.Spec
	var labels []string
	for _, flows := range flowSweep {
		specs = append(specs, workload.IperfTrace(core.Strict, flows, 0, 200000))
		labels = append(labels, flowLabel(flows))
	}
	return localityTable("fig2e", "PTcache-L3 locality, Linux strict, flow sweep", specs, labels, o)
}

// Fig3 regenerates Figure 3 (a–d): ring-buffer-size sweep.
func Fig3(o Options) Table {
	return counterTable("fig3", "Linux strict vs IOMMU off, ring-size sweep (§2.2)",
		[]core.Mode{core.Off, core.Strict}, ringSweep,
		func(m core.Mode, ring int) workload.Spec { return workload.Iperf(m, 0, ring) },
		ringLabel, o)
}

// Fig3e regenerates the Figure 3e locality panel.
func Fig3e(o Options) Table {
	var specs []workload.Spec
	var labels []string
	for _, ring := range ringSweep {
		specs = append(specs, workload.IperfTrace(core.Strict, 0, ring, 200000))
		labels = append(labels, ringLabel(ring))
	}
	return localityTable("fig3e", "PTcache-L3 locality, Linux strict, ring sweep", specs, labels, o)
}

// Fig7 regenerates Figure 7 (a–d): F&S vs strict vs off, flow sweep.
func Fig7(o Options) Table {
	return counterTable("fig7", "F&S eliminates protection overheads, flow sweep (§4.1)",
		[]core.Mode{core.Off, core.Strict, core.FNS}, flowSweep,
		func(m core.Mode, flows int) workload.Spec { return workload.Iperf(m, flows, 0) },
		flowLabel, o)
}

// Fig7e regenerates the Figure 7e locality panel (F&S).
func Fig7e(o Options) Table {
	var specs []workload.Spec
	var labels []string
	for _, flows := range flowSweep {
		specs = append(specs, workload.IperfTrace(core.FNS, flows, 0, 200000))
		labels = append(labels, flowLabel(flows))
	}
	return localityTable("fig7e", "PTcache-L3 locality, F&S, flow sweep", specs, labels, o)
}

// Fig8 regenerates Figure 8 (a–d): F&S ring-size sweep.
func Fig8(o Options) Table {
	return counterTable("fig8", "F&S under growing IO working sets, ring sweep (§4.1)",
		[]core.Mode{core.Off, core.Strict, core.FNS}, ringSweep,
		func(m core.Mode, ring int) workload.Spec { return workload.Iperf(m, 0, ring) },
		ringLabel, o)
}

// Fig8e regenerates the Figure 8e locality panel.
func Fig8e(o Options) Table {
	var specs []workload.Spec
	var labels []string
	for _, ring := range ringSweep {
		specs = append(specs, workload.IperfTrace(core.FNS, 0, ring, 200000))
		labels = append(labels, ringLabel(ring))
	}
	return localityTable("fig8e", "PTcache-L3 locality, F&S, ring sweep", specs, labels, o)
}

// Fig9 regenerates Figure 9: RPC tail latency colocated with iperf.
func Fig9(o Options) Table {
	t := Table{ID: "fig9", Title: "RPC tail latency under colocated iperf (§4.1)",
		Header: []string{"mode", "rpc_size", "p50_us", "p90_us", "p99_us", "p99.9_us", "p99.99_us", "rpcs"}}
	sizes := []int{128, 4096, 32768}
	var specs []workload.Spec
	var labels []string
	for _, mode := range []core.Mode{core.Off, core.Strict, core.FNS} {
		for _, size := range sizes {
			s := workload.RPC(mode, size)
			s.Warmup = o.Warmup
			s.Measure = o.RPCMeasure
			specs = append(specs, s)
			labels = append(labels, fmt.Sprintf("%dB", size))
		}
	}
	for i, r := range runSpecsRaw(specs, o.Parallel) {
		p := r.Percentiles()
		us := func(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1000) }
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), labels[i],
			us(p[0]), us(p[1]), us(p[2]), us(p[3]), us(p[4]),
			fmt.Sprintf("%d", r.Completed),
		})
	}
	return t
}

// Fig10 regenerates Figure 10: concurrent Rx and Tx bulk traffic.
func Fig10(o Options) Table {
	t := Table{ID: "fig10", Title: "Extreme Rx/Tx interference (§4.1)",
		Header: []string{"mode", "core_pairs", "rx_gbps", "tx_gbps", "drop", "reads/pg"}}
	var specs []workload.Spec
	var pairsOf []int
	for _, mode := range []core.Mode{core.Off, core.Strict, core.FNS} {
		for _, pairs := range []int{1, 2, 4} {
			specs = append(specs, workload.Bidirectional(mode, pairs))
			pairsOf = append(pairsOf, pairs)
		}
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), fmt.Sprintf("%d", pairsOf[i]),
			f1(r.RxGbps), f1(r.TxGbps), pct(r.DropRate), f2(r.ReadsPerPage),
		})
	}
	return t
}

// appTable runs a Figure 11 application sweep.
func appTable(id, title string, mk func(core.Mode, int) workload.Spec, sizes []int, o Options) Table {
	t := Table{ID: id, Title: title,
		Header: []string{"mode", "size", "app_gbps", "drop", "iotlb/pg", "reads/pg", "p99_us"}}
	var specs []workload.Spec
	var sizeOf []int
	for _, mode := range []core.Mode{core.Off, core.Strict, core.FNS} {
		for _, size := range sizes {
			specs = append(specs, mk(mode, size))
			sizeOf = append(sizeOf, size)
		}
	}
	for i, r := range runSpecs(specs, o) {
		p99 := float64(r.Percentiles()[2]) / 1000
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), fmt.Sprintf("%dKB", sizeOf[i]>>10),
			f1(r.MsgGbps), pct(r.DropRate), f2(r.IOTLBPerPage), f2(r.ReadsPerPage),
			f1(p99),
		})
	}
	return t
}

// Fig11a regenerates the Redis experiment.
func Fig11a(o Options) Table {
	return appTable("fig11a", "Redis SET throughput vs value size (§4.2)",
		workload.Redis, []int{4 << 10, 16 << 10, 64 << 10, 128 << 10}, o)
}

// Fig11b regenerates the Nginx experiment.
func Fig11b(o Options) Table {
	return appTable("fig11b", "Nginx page throughput vs page size (§4.2)",
		workload.Nginx, []int{128 << 10, 512 << 10, 2 << 20}, o)
}

// Fig11c regenerates the SPDK experiment.
func Fig11c(o Options) Table {
	return appTable("fig11c", "SPDK read throughput vs block size (§4.2)",
		workload.SPDK, []int{32 << 10, 64 << 10, 128 << 10, 256 << 10}, o)
}

// Fig12 regenerates the Figure 12 ablation: Linux, Linux+A (preserve),
// Linux+B (contiguous+batched), F&S on the Redis 8KB-value workload.
func Fig12(o Options) Table {
	t := Table{ID: "fig12", Title: "Contribution of each F&S idea, Redis 8KB values (§4.3)",
		Header: []string{"config", "app_gbps", "iotlb/pg", "ptL1/pg", "ptL3/pg", "reads/pg", "inv_reqs"}}
	labels := []string{
		"Linux",
		"Linux+A (preserve PTcaches)",
		"Linux+B (contig+batch)",
		"F&S",
	}
	var specs []workload.Spec
	for _, mode := range []core.Mode{core.Strict, core.StrictPreserve, core.StrictContig, core.FNS} {
		specs = append(specs, workload.RedisAblation(mode))
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, []string{
			labels[i], f1(r.MsgGbps), f2(r.IOTLBPerPage), f3(r.L1PerPage), f3(r.L3PerPage),
			f2(r.ReadsPerPage), fmt.Sprintf("%d", r.InvRequests),
		})
	}
	return t
}

// Model validates the §2.2 analytic model against the simulator and
// re-fits (l0, lm) from two operating points, as the paper does.
func Model(o Options) Table {
	t := Table{ID: "model", Title: "Analytic model T = p/(l0 + M*lm) vs simulation (§2.2)",
		Header: []string{"mode", "flows", "sim_gbps", "model_gbps", "rel_err", "rx_reads/dma"}}
	var specs []workload.Spec
	for _, flows := range flowSweep {
		specs = append(specs, workload.Iperf(core.Strict, flows, 0))
	}
	type pt struct {
		m, thr float64
	}
	var pts []pt
	for i, r := range runSpecs(specs, o) {
		frame := float64(4096 + 66)
		ser := frame * 8 / 128
		svc := model.L0Ns + r.RxReadsPerDMA*model.LmNs
		if ser > svc {
			svc = ser
		}
		est := 4096 * 8 / svc
		if est > 100 {
			est = 100
		}
		t.Rows = append(t.Rows, []string{
			"strict", fmt.Sprintf("%d", flowSweep[i]), f1(r.RxGbps), f1(est),
			pct(model.RelativeError(est, r.RxGbps)), f2(r.RxReadsPerDMA),
		})
		pts = append(pts, pt{r.RxReadsPerDMA, r.RxGbps})
	}
	if len(pts) >= 2 && pts[0].m != pts[len(pts)-1].m {
		l0, lm, ok := model.FitL0Lm(4096, pts[0].m, pts[0].thr, pts[len(pts)-1].m, pts[len(pts)-1].thr)
		if ok {
			t.Rows = append(t.Rows, []string{
				"fit", "-", "-", "-", fmt.Sprintf("l0=%.0fns", l0), fmt.Sprintf("lm=%.0fns", lm),
			})
		}
	}
	return t
}

// Deferred compares the safety/performance trade-off across all modes —
// an extension table beyond the paper's figures.
func Deferred(o Options) Table {
	t := Table{ID: "modes", Title: "All protection modes, default iperf (extension)",
		Header: []string{"mode", "strict_safety", "rx_gbps", "reads/pg", "inv_reqs", "stale_uses"}}
	modes := core.Modes()
	var specs []workload.Spec
	for _, mode := range modes {
		specs = append(specs, workload.Iperf(mode, 0, 0))
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), fmt.Sprintf("%v", modes[i].StrictSafety()),
			f1(r.RxGbps), f2(r.ReadsPerPage),
			fmt.Sprintf("%d", r.InvRequests), fmt.Sprintf("%d", r.StaleIOTLB+r.StalePT),
		})
	}
	return t
}

// DescriptorSizes explores F&S on devices with smaller descriptors,
// including the single-page-descriptor case (§3 "Generality").
func DescriptorSizes(o Options) Table {
	t := Table{ID: "descsize", Title: "F&S vs strict across descriptor sizes (§3 generality)",
		Header: []string{"mode", "desc_pages", "rx_gbps", "reads/pg", "inv_reqs"}}
	var specs []workload.Spec
	var pagesOf []int
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		for _, pages := range []int{1, 4, 16, 64} {
			s := workload.Iperf(mode, 0, 0)
			s.Host.DescriptorPages = pages
			if pages == 1 {
				// A single-page descriptor (Intel ICE, §3 generality) can
				// only hold standard-MTU frames.
				s.Host.MTU = 1500
				s.Host.RingPackets = 512
			}
			specs = append(specs, s)
			pagesOf = append(pagesOf, pages)
		}
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), fmt.Sprintf("%d", pagesOf[i]),
			f1(r.RxGbps), f2(r.ReadsPerPage), fmt.Sprintf("%d", r.InvRequests),
		})
	}
	return t
}

// CacheSizes sweeps the PTcache-L3 size — the footnote-3 sensitivity
// study (extension).
func CacheSizes(o Options) Table {
	t := Table{ID: "ptcache", Title: "PTcache-L3 size sensitivity, Linux strict (extension)",
		Header: []string{"mode", "l3_entries", "rx_gbps", "ptL3/pg", "reads/pg"}}
	var specs []workload.Spec
	var sizeOf []int
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		for _, size := range []int{16, 32, 64, 128} {
			s := workload.Iperf(mode, 0, 0)
			s.Host.IOMMU.L3Size = size
			specs = append(specs, s)
			sizeOf = append(sizeOf, size)
		}
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), fmt.Sprintf("%d", sizeOf[i]),
			f1(r.RxGbps), f3(r.L3PerPage), f2(r.ReadsPerPage),
		})
	}
	return t
}

// Hugepages explores the paper's §5 future-work direction: F&S combined
// with 2MB hugepage-backed descriptors, cutting the IOTLB miss count
// itself (at 2MB revocation granularity).
func Hugepages(o Options) Table {
	t := Table{ID: "huge", Title: "F&S + hugepages: reducing the miss count too (§5 extension)",
		Header: []string{"mode", "flows", "rx_gbps", "iotlb/pg", "reads/pg", "inv_reqs"}}
	var specs []workload.Spec
	var flowsOf []int
	for _, mode := range []core.Mode{core.Strict, core.FNS, core.FNSHuge} {
		for _, flows := range []int{5, 40} {
			specs = append(specs, workload.Iperf(mode, flows, 0))
			flowsOf = append(flowsOf, flows)
		}
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), fmt.Sprintf("%d", flowsOf[i]),
			f1(r.RxGbps), f2(r.IOTLBPerPage), f2(r.ReadsPerPage),
			fmt.Sprintf("%d", r.InvRequests),
		})
	}
	return t
}

// MemoryLatency sweeps the IOMMU-to-memory read latency l_m, the §2.2
// memory-contention observation: higher memory access latency inflates the
// per-walk cost, and F&S's ~1-read walks make it far less sensitive than
// Linux strict's multi-read walks (extension).
func MemoryLatency(o Options) Table {
	t := Table{ID: "memlat", Title: "Sensitivity to memory read latency l_m (§2.2 contention, extension)",
		Header: []string{"mode", "lm_ns", "rx_gbps", "reads/pg"}}
	var specs []workload.Spec
	var lmOf []sim.Duration
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		for _, lm := range []sim.Duration{197, 300, 400} {
			s := workload.Iperf(mode, 0, 0)
			s.Host.Lm = lm
			specs = append(specs, s)
			lmOf = append(lmOf, lm)
		}
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), fmt.Sprintf("%d", int64(lmOf[i])),
			f1(r.RxGbps), f2(r.ReadsPerPage),
		})
	}
	return t
}

// Seeds reports run-to-run variance across simulation seeds (extension:
// the paper reports single-testbed numbers; the simulator can quantify
// sensitivity).
func Seeds(o Options) Table {
	t := Table{ID: "seeds", Title: "Throughput across simulation seeds (extension)",
		Header: []string{"mode", "seed", "rx_gbps", "reads/pg", "drop"}}
	var specs []workload.Spec
	var seedOf []int64
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		for seed := int64(1); seed <= 4; seed++ {
			s := workload.Iperf(mode, 0, 0)
			s.Host.Seed = seed
			specs = append(specs, s)
			seedOf = append(seedOf, seed)
		}
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), fmt.Sprintf("%d", seedOf[i]),
			f1(r.RxGbps), f2(r.ReadsPerPage), pct(r.DropRate),
		})
	}
	return t
}

// Storage explores cross-device IOMMU contention (extension): an
// NVMe-style storage device shares the IOMMU with the NIC; under strict
// mode its per-block map/unmap/invalidate traffic pollutes the caches the
// network datapath depends on.
func Storage(o Options) Table {
	t := Table{ID: "storage", Title: "Cross-device IOMMU contention: NIC + storage (extension)",
		Header: []string{"mode", "storage_GBps", "rx_gbps", "iotlb/pg", "reads/pg", "blocks"}}
	type cell struct {
		r      host.Results
		blocks int64
	}
	type cfg struct {
		mode core.Mode
		gbps float64
	}
	var cfgs []cfg
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		for _, gbps := range []float64{0, 4, 8} {
			cfgs = append(cfgs, cfg{mode, gbps})
		}
	}
	jobs := make([]runner.Job[cell], len(cfgs))
	for i, c := range cfgs {
		c := c
		jobs[i] = func(context.Context) (cell, error) {
			h, err := host.New(host.Config{Mode: c.mode})
			if err != nil {
				return cell{}, err
			}
			var dev interface{ Blocks() int64 }
			if c.gbps > 0 {
				dev = h.InstallStorage(host.StorageConfig{ReadGBps: c.gbps})
			}
			r := h.Run(o.Warmup, o.Measure)
			out := cell{r: r}
			if dev != nil {
				out.blocks = dev.Blocks()
			}
			return out, nil
		}
	}
	cells, err := runner.Collect(context.Background(), runner.Config{Workers: o.Parallel}, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: storage: %v", err))
	}
	for i, c := range cells {
		t.Rows = append(t.Rows, []string{
			cfgs[i].mode.String(), fmt.Sprintf("%.0f", cfgs[i].gbps),
			f1(c.r.RxGbps), f2(c.r.IOTLBPerPage), f2(c.r.ReadsPerPage),
			fmt.Sprintf("%d", c.blocks),
		})
	}
	return t
}

// Multidev sweeps the number of co-tenant storage devices sharing the
// IOMMU with the NIC (extension over the storage figure's single
// device): the paper's §1 point that one IOMMU serves every DMA device
// on the host, so strict-mode invalidation traffic scales with device
// count while F&S's contiguous mappings and IOTLB-only invalidations
// keep the network datapath's goodput flat.
func Multidev(o Options) Table {
	t := Table{ID: "multidev", Title: "Multi-device interference: NIC vs N storage co-tenants (extension)",
		Header: []string{"mode", "devices", "nic_gbps", "iotlb/pg", "reads/pg", "inv_total", "blocks"}}
	type cell struct {
		r      host.Results
		blocks int64
	}
	type cfg struct {
		mode core.Mode
		devs int
	}
	var cfgs []cfg
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		for _, devs := range []int{0, 1, 2, 4} {
			cfgs = append(cfgs, cfg{mode, devs})
		}
	}
	jobs := make([]runner.Job[cell], len(cfgs))
	for i, c := range cfgs {
		c := c
		jobs[i] = func(context.Context) (cell, error) {
			topo := host.Topology{}
			for d := 0; d < c.devs; d++ {
				// 1.5GB/s per device: enough aggregate DMA to collapse
				// strict mode at four co-tenants while staying under the
				// point where raw memory-bus and shared-IOTLB capacity
				// pressure drags F&S down too (that regime is mode-
				// independent and says nothing about protection cost).
				topo.Storage = append(topo.Storage, host.StorageSpec{ReadGBps: 1.5})
			}
			h, err := host.New(host.Config{Mode: c.mode, Topology: topo})
			if err != nil {
				return cell{}, err
			}
			r := h.Run(o.Warmup, o.Measure)
			out := cell{r: r}
			for _, d := range h.Devices() {
				if d.Kind() == "storage" {
					out.blocks += d.Stats().Ops
				}
			}
			return out, nil
		}
	}
	cells, err := runner.Collect(context.Background(), runner.Config{Workers: o.Parallel}, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: multidev: %v", err))
	}
	for i, c := range cells {
		t.Rows = append(t.Rows, []string{
			cfgs[i].mode.String(), fmt.Sprintf("%d", cfgs[i].devs),
			f1(c.r.RxGbps), f2(c.r.IOTLBPerPage), f2(c.r.ReadsPerPage),
			fmt.Sprintf("%d", c.r.InvRequests), fmt.Sprintf("%d", c.blocks),
		})
	}
	return t
}

// MemoryHog runs the network workloads against a co-tenant memory
// antagonist: past the bus's calibration point, every page-table read
// slows down, and strict mode's multi-read walks amplify the damage
// (§2.2's memory-contention observation, emergent rather than swept).
func MemoryHog(o Options) Table {
	t := Table{ID: "memhog", Title: "Memory-bandwidth antagonist (§2.2 contention, extension)",
		Header: []string{"mode", "hog_GBps", "rx_gbps", "mem_util", "reads/pg"}}
	var specs []workload.Spec
	var hogOf []float64
	for _, mode := range []core.Mode{core.Off, core.Strict, core.FNS} {
		for _, hog := range []float64{0, 6, 12} {
			s := workload.Iperf(mode, 0, 0)
			s.Host.MemHogGBps = hog
			specs = append(specs, s)
			hogOf = append(hogOf, hog)
		}
	}
	for i, r := range runSpecs(specs, o) {
		t.Rows = append(t.Rows, []string{
			r.Mode.String(), fmt.Sprintf("%.0f", hogOf[i]),
			f1(r.RxGbps), f2(r.MemUtil), f2(r.ReadsPerPage),
		})
	}
	return t
}

// Timeline renders the telemetry sampler's per-interval series for strict
// vs F&S under a memory antagonist that switches on mid-measurement — the
// dynamics behind the steady-state MemoryHog table: F&S's ~1-read walks
// shrug off the bus contention that collapses strict mode's goodput.
// Every row is one sampling interval of one mode's run.
func Timeline(o Options) Table {
	t := Table{ID: "timeline", Title: "Goodput and miss-rate dynamics under mid-run memory contention (extension)",
		Header: []string{"mode", "t_ms", "rx_gbps", "iotlb/pg", "walk_reads", "mem_util"}}
	var specs []workload.Spec
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		s := workload.Iperf(mode, 0, 0)
		s.Host.MemHogGBps = 12
		s.Host.MemHogStart = o.Warmup + o.Measure/2
		s.Host.Telemetry.SampleEvery = o.Measure / 8
		s.Warmup = o.Warmup
		s.Measure = o.Measure
		specs = append(specs, s)
	}
	for _, r := range runSpecsRaw(specs, o.Parallel) {
		series := map[string]stats.Series{}
		for _, s := range r.Timeline {
			series[s.Name] = s
		}
		rx := series["rx_gbps"]
		for i := range rx.Times {
			t.Rows = append(t.Rows, []string{
				r.Mode.String(),
				f1(float64(rx.Times[i]) / 1e6),
				f1(rx.Values[i]),
				f2(series["iotlb_miss_per_pg"].Values[i]),
				fmt.Sprintf("%.0f", series["walk_reads"].Values[i]),
				f2(series["mem_util"].Values[i]),
			})
		}
	}
	return t
}

// CPUCost reports the driver-side protection CPU time per gigabyte moved —
// the per-core efficiency angle of [39, 42] that motivates F&S's batched
// invalidations (extension).
func CPUCost(o Options) Table {
	t := Table{ID: "cpucost", Title: "Protection CPU cost per GB (extension, cf. [39, 42])",
		Header: []string{"mode", "rx_gbps", "cpu_ms_per_GB", "inv_reqs"}}
	type cell struct {
		r   host.Results
		cpu sim.Duration
	}
	modes := core.Modes()
	jobs := make([]runner.Job[cell], len(modes))
	for i, mode := range modes {
		mode := mode
		jobs[i] = func(context.Context) (cell, error) {
			s := workload.Iperf(mode, 0, 0)
			h, err := host.New(s.Host)
			if err != nil {
				return cell{}, err
			}
			before := h.Domain().Counters().CPUTime
			r := h.Run(o.Warmup, o.Measure)
			return cell{r: r, cpu: h.Domain().Counters().CPUTime - before}, nil
		}
	}
	cells, err := runner.Collect(context.Background(), runner.Config{Workers: o.Parallel}, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: cpucost: %v", err))
	}
	for _, c := range cells {
		gb := c.r.RxGbps * float64(c.r.Measure) / 8e9 // GB moved in the window
		ms := 0.0
		if gb > 0 {
			ms = float64(c.cpu) / 1e6 / gb
		}
		t.Rows = append(t.Rows, []string{
			c.r.Mode.String(), f1(c.r.RxGbps), f2(ms), fmt.Sprintf("%d", c.r.InvRequests),
		})
	}
	return t
}

// Faults is the adversarial safety campaign: the canonical fault plan
// (internal/fault.Campaign) swept over intensity for Linux strict, F&S,
// and the deliberately unsafe defer-noshootdown strawman, with the
// translation auditor cross-checking every DMA against the live page
// table. The paper's safety claim is the strict and fns rows: zero
// stale-served DMAs at every intensity, while F&S retains ≥95% of its
// fault-free goodput. The strawman rows must show nonzero stale_served —
// the proof the auditor can actually see violations.
func Faults(o Options) Table {
	t := Table{ID: "faults", Title: "Fault-injection safety campaign: stale-served DMAs under the audit layer (extension)",
		Header: []string{"mode", "intensity", "rx_gbps", "goodput_vs_clean", "injected", "checked", "blocked", "stale_served", "retries"}}
	type cfg struct {
		mode core.Mode
		x    float64
	}
	var cfgs []cfg
	for _, mode := range []core.Mode{core.Strict, core.FNS, core.DeferNoShootdown} {
		for _, x := range []float64{0, 0.5, 1} {
			cfgs = append(cfgs, cfg{mode, x})
		}
	}
	jobs := make([]runner.Job[host.Results], len(cfgs))
	for i, c := range cfgs {
		c := c
		jobs[i] = func(context.Context) (host.Results, error) {
			s := workload.Iperf(c.mode, 0, 0)
			s.Host.Faults = fault.Campaign(c.x)
			s.Host.FaultSeed = 1
			s.Host.Audit = true
			h, err := host.New(s.Host)
			if err != nil {
				return host.Results{}, err
			}
			return h.Run(o.Warmup, o.Measure), nil
		}
	}
	cells, err := runner.Collect(context.Background(), runner.Config{Workers: o.Parallel}, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: faults: %v", err))
	}
	// Each mode's intensity-0 cell is its fault-free baseline.
	clean := map[core.Mode]float64{}
	for i, c := range cells {
		if cfgs[i].x == 0 {
			clean[cfgs[i].mode] = c.RxGbps
		}
	}
	for i, c := range cells {
		ratio := 0.0
		if base := clean[cfgs[i].mode]; base > 0 {
			ratio = c.RxGbps / base
		}
		var s fault.SafetyReport
		if c.Safety != nil {
			s = *c.Safety
		}
		t.Rows = append(t.Rows, []string{
			cfgs[i].mode.String(), f2(cfgs[i].x),
			f1(c.RxGbps), f2(ratio),
			fmt.Sprintf("%d", c.FaultsInjected),
			fmt.Sprintf("%d", s.Checked), fmt.Sprintf("%d", s.Blocked),
			fmt.Sprintf("%d", s.Violations()), fmt.Sprintf("%d", s.Retries),
		})
	}
	return t
}

// Cluster scales the incast out to N full hosts on the switched fabric
// (extension): every sender pays its own Tx protection costs and the
// receiver its Rx costs, so aggregate goodput tracks how fast each
// side's IOMMU path lets it move pages. F&S saturates the receiver's
// downlink and stays there as senders are added; strict mode's
// multi-read walks first starve the senders (low host counts) and then
// the receiver (large ones), so its aggregate degrades past its peak.
// Every host runs the translation auditor; the stale_per_host column is
// the per-host count of stale-served DMAs (all zeros for safe modes).
func Cluster(o Options) Table {
	t := Table{ID: "cluster", Title: "Cluster incast: N full hosts on a switched fabric (extension)",
		Header: []string{"mode", "hosts", "agg_gbps", "recv_drop", "recv_reads/pg", "stale_per_host"}}
	type cfg struct {
		mode  core.Mode
		hosts int
	}
	var cfgs []cfg
	for _, mode := range []core.Mode{core.Strict, core.FNS} {
		for _, n := range []int{2, 4, 8, 12} {
			cfgs = append(cfgs, cfg{mode, n})
		}
	}
	jobs := make([]runner.Job[host.ClusterResults], len(cfgs))
	for i, c := range cfgs {
		c := c
		jobs[i] = func(context.Context) (host.ClusterResults, error) {
			cl, err := host.NewCluster(host.ClusterConfig{
				Hosts:   c.hosts,
				Traffic: host.Incast,
				Host:    host.Config{Mode: c.mode, Audit: true},
			})
			if err != nil {
				return host.ClusterResults{}, err
			}
			return cl.Run(o.Warmup, o.Measure), nil
		}
	}
	cells, err := runner.Collect(context.Background(), runner.Config{Workers: o.Parallel}, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: cluster: %v", err))
	}
	for i, r := range cells {
		recv := r.Hosts[0]
		stale := make([]string, len(r.Hosts))
		for j, h := range r.Hosts {
			var v int64
			if h.Safety != nil {
				v = h.Safety.Violations()
			}
			stale[j] = fmt.Sprintf("%d", v)
		}
		t.Rows = append(t.Rows, []string{
			cfgs[i].mode.String(), fmt.Sprintf("%d", cfgs[i].hosts),
			f1(r.AggRxGbps), pct(recv.DropRate), f2(recv.ReadsPerPage),
			strings.Join(stale, "/"),
		})
	}
	return t
}

// Rdma compares the two peer-flow shapes — two-sided send/recv and
// one-sided WRITE — across protection modes as the device-side ATS
// cache sweeps from undersized to window-covering (extension). Eight
// hosts run the balanced pairs pattern so every flow has a dedicated
// sink; the sink columns are the first pair's receiver. The table holds
// the paper's two claims at once: one-sided flows beat the CPU-paced
// send/recv shape at equal flow count (the sink core count drops out of
// the datapath — see sink_cpu), and the safety argument survives the
// device TLB — strict and F&S shoot the ATC down inside window
// recycling and audit zero stale DMAs at every capacity, while
// defer-noshootdown re-points window pages without any invalidate and
// turns every resident translation stale (stale_ats) the moment the
// cache is big enough to keep them (its goodput *rises* as it serves
// memory it no longer owns — the shoot-down cost it skips is exactly
// what the safe modes pay).
func Rdma(o Options) Table {
	t := Table{ID: "rdma", Title: "One-sided RDMA through a device-side ATS cache: goodput and audited safety (extension)",
		Header: []string{"mode", "op", "ats_entries", "agg_gbps", "sink_cpu", "atc_hit_rate", "atc_invalidated", "stale_ats", "stale_total"}}
	type cfg struct {
		mode core.Mode
		op   transport.Op
		ats  int
	}
	var cfgs []cfg
	for _, mode := range []core.Mode{core.Strict, core.FNS, core.DeferNoShootdown} {
		cfgs = append(cfgs, cfg{mode, transport.SendRecv, 0})
		for _, ats := range []int{64, 1024, 8192} {
			cfgs = append(cfgs, cfg{mode, transport.Write, ats})
		}
	}
	jobs := make([]runner.Job[host.ClusterResults], len(cfgs))
	for i, c := range cfgs {
		c := c
		jobs[i] = func(context.Context) (host.ClusterResults, error) {
			cl, err := host.NewCluster(host.ClusterConfig{
				Hosts:   8,
				Traffic: host.Pairs,
				Op:      c.op,
				Host:    host.Config{Mode: c.mode, Audit: true, ATSEntries: c.ats},
			})
			if err != nil {
				return host.ClusterResults{}, err
			}
			return cl.Run(o.Warmup, o.Measure), nil
		}
	}
	cells, err := runner.Collect(context.Background(), runner.Config{Workers: o.Parallel}, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: rdma: %v", err))
	}
	for i, r := range cells {
		sink := r.Hosts[1]
		var staleATS int64
		for _, h := range r.Hosts {
			if h.Safety != nil {
				staleATS += h.Safety.StaleATS
			}
		}
		var dev host.DeviceResults // zero-valued under a zero-length window
		if len(sink.Devices) > 0 {
			dev = sink.Devices[0]
		}
		t.Rows = append(t.Rows, []string{
			cfgs[i].mode.String(), cfgs[i].op.String(), fmt.Sprintf("%d", cfgs[i].ats),
			f1(r.AggRxGbps), f2(sink.MaxCPUUtil), f3(dev.ATSHitRate),
			fmt.Sprintf("%d", dev.ATCInvalidations),
			fmt.Sprintf("%d", staleATS), fmt.Sprintf("%d", r.Violations()),
		})
	}
	return t
}

// Capability compares the page-table protection family against the
// CAPIO-style capability family across buffer lifetimes, an adversarial
// fault campaign, and one-sided RDMA window recycling (extension). Four
// workloads isolate the trade. shortlived maps one-page descriptors at
// 1500-byte MTU, so per-buffer overhead dominates and cap's O(1)
// grant/revoke beats the page-table map-walk-shootdown sequence. bulk
// streams the full 64-page descriptors on two cores, so per-page costs
// dominate and F&S's contiguous mappings with batched invalidations
// amortise what cap pays as a grant per page. faults replays the full
// intensity-1 campaign under the audit layer. rdma recycles one-sided
// WRITE windows across eight hosts through a device-side ATS cache —
// the page-table modes pay an ATC shoot-down per recycle, while cap
// domains never attach an ATC and the re-grant is the whole revocation.
// The audit columns carry the safety ordering: cap is strict-equivalent
// (zero stale-served on every workload), while cap-lazyrevoke batches
// revocations the way deferred batches IOTLB flushes and exposes the
// same bounded stale window, restated in capability terms.
func Capability(o Options) Table {
	t := Table{ID: "capability", Title: "Capability-table protection: page-table family vs capability family on goodput and audited safety (extension)",
		Header: []string{"mode", "workload", "gbps", "reads/pg", "inv_reqs", "cap_checks", "cap_revocations", "checked", "stale_served"}}
	type cell struct {
		gbps, readsPg                               float64
		invReqs, capChecks, capRevs, checked, stale int64
	}
	type cfg struct {
		mode core.Mode
		kind string
	}
	var cfgs []cfg
	for _, m := range []core.Mode{core.Strict, core.FNS, core.Cap, core.CapLazyRevoke} {
		for _, k := range []string{"shortlived", "bulk", "faults", "rdma"} {
			cfgs = append(cfgs, cfg{m, k})
		}
	}
	jobs := make([]runner.Job[cell], len(cfgs))
	for i, c := range cfgs {
		c := c
		jobs[i] = func(context.Context) (cell, error) {
			if c.kind == "rdma" {
				cl, err := host.NewCluster(host.ClusterConfig{
					Hosts: 8, Traffic: host.Pairs, Op: transport.Write,
					Host: host.Config{Mode: c.mode, Audit: true, ATSEntries: 1024},
				})
				if err != nil {
					return cell{}, err
				}
				r := cl.Run(o.Warmup, o.Measure)
				out := cell{gbps: r.AggRxGbps, readsPg: r.Hosts[1].ReadsPerPage, stale: r.Violations()}
				for _, h := range r.Hosts {
					out.invReqs += h.InvRequests
					out.capChecks += h.CapChecks
					out.capRevs += h.CapRevocations
					if h.Safety != nil {
						out.checked += h.Safety.Checked
					}
				}
				return out, nil
			}
			hc := host.Config{Mode: c.mode, Audit: true}
			switch c.kind {
			case "shortlived":
				hc.DescriptorPages, hc.MTU, hc.RingPackets = 1, 1500, 512
			case "bulk":
				hc.Cores = 2
			case "faults":
				hc.Faults, hc.FaultSeed = fault.Campaign(1), 1
			}
			h, err := host.New(hc)
			if err != nil {
				return cell{}, err
			}
			r := h.Run(o.Warmup, o.Measure)
			var s fault.SafetyReport
			if r.Safety != nil {
				s = *r.Safety
			}
			return cell{gbps: r.RxGbps, readsPg: r.ReadsPerPage, invReqs: r.InvRequests,
				capChecks: r.CapChecks, capRevs: r.CapRevocations,
				checked: s.Checked, stale: s.Violations()}, nil
		}
	}
	cells, err := runner.Collect(context.Background(), runner.Config{Workers: o.Parallel}, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: capability: %v", err))
	}
	for i, c := range cells {
		t.Rows = append(t.Rows, []string{
			cfgs[i].mode.String(), cfgs[i].kind,
			f1(c.gbps), f2(c.readsPg),
			fmt.Sprintf("%d", c.invReqs), fmt.Sprintf("%d", c.capChecks),
			fmt.Sprintf("%d", c.capRevs),
			fmt.Sprintf("%d", c.checked), fmt.Sprintf("%d", c.stale),
		})
	}
	return t
}

// Serving regenerates the serving-fleet churn scenario (extension): an
// open-loop fleet of 48 heavy-tailed request/response connections per
// host, each dying with the row's probability per request and reborn
// with a fresh DMA buffer, so map/unmap and IOVA alloc/free rates scale
// with churn. The iova_allocs and overflow columns carry the paper's
// allocator story at production churn: strict's per-buffer alloc/free
// falls off the rcache fast path into tree allocations (and, at high
// churn, the depot-overflow flush), inflating its tail latency, while
// F&S's preserved caches keep the fast path hot and the tails flat; cap
// pays no page-table walk at all. The cohort8 rows run the same churn
// 0.2 fleet aggregated 8 connections per flow cohort — every counter
// column is identical to the exact host row by the cohort package's
// grouping-invariance contract (only latency attribution is shared).
// The 8-host rows run the fleet on every host of a pairs cluster next
// to the pattern's peer flows; tails are the worst host, counts are
// summed. stale_served must be zero in every row — churn is exactly
// where a missed invalidation would let a recycled connection buffer be
// read through a stale translation.
func Serving(o Options) Table {
	t := Table{ID: "serving", Title: "Serving-fleet churn: open-loop heavy tails, connection churn, flow cohorts (extension)",
		Header: []string{"mode", "scope", "churn", "served", "gbps", "p99_us", "p999_us", "deaths", "iova_allocs", "overflow", "checked", "stale_served"}}
	type cfg struct {
		mode   core.Mode
		scope  string // "host", "cohort8", "8-host"
		churn  float64
		cohort int
		hosts  int // 0: single host
	}
	var cfgs []cfg
	for _, mode := range []core.Mode{core.Strict, core.FNS, core.Cap} {
		for _, ch := range []float64{0.05, 0.2, 0.5} {
			cfgs = append(cfgs, cfg{mode, "host", ch, 1, 0})
		}
		cfgs = append(cfgs, cfg{mode, "cohort8", 0.2, 8, 0})
	}
	for _, mode := range []core.Mode{core.Strict, core.FNS, core.Cap} {
		cfgs = append(cfgs, cfg{mode, "8-host", 0.2, 1, 8})
	}
	type cell struct {
		served, deaths, allocs, overflow, checked, stale int64
		gbps, p99, p999                                  float64
	}
	fold := func(out *cell, r host.Results) {
		out.served += r.ServeCompleted
		out.deaths += r.ServeDeaths
		out.allocs += r.IOVA.TreeAllocs
		out.overflow += r.IOVA.OverflowFrees
		out.gbps += r.ServeGbps
		if r.Safety != nil {
			out.checked += r.Safety.Checked
			out.stale += r.Safety.Violations()
		}
		if r.ServeLatency == nil { // degenerate zero-length window
			return
		}
		us := func(q float64) float64 { return float64(r.ServeLatency.Quantile(q)) / 1e3 }
		if p := us(0.99); p > out.p99 {
			out.p99 = p
		}
		if p := us(0.999); p > out.p999 {
			out.p999 = p
		}
	}
	jobs := make([]runner.Job[cell], len(cfgs))
	for i, c := range cfgs {
		c := c
		jobs[i] = func(context.Context) (cell, error) {
			serve := &host.ServeConfig{Conns: 48, Churn: c.churn, Cohort: c.cohort}
			var out cell
			if c.hosts == 0 {
				h, err := host.New(host.Config{Mode: c.mode, RxFlows: -1, Audit: true, Serve: serve})
				if err != nil {
					return cell{}, err
				}
				fold(&out, h.Run(o.Warmup, o.RPCMeasure))
				return out, nil
			}
			cl, err := host.NewCluster(host.ClusterConfig{
				Hosts:   c.hosts,
				Traffic: host.Pairs,
				Host:    host.Config{Mode: c.mode, Audit: true, Serve: serve},
			})
			if err != nil {
				return cell{}, err
			}
			r := cl.Run(o.Warmup, o.Measure)
			for _, hr := range r.Hosts {
				fold(&out, hr)
			}
			return out, nil
		}
	}
	cells, err := runner.Collect(context.Background(), runner.Config{Workers: o.Parallel}, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: serving: %v", err))
	}
	for i, c := range cells {
		t.Rows = append(t.Rows, []string{
			cfgs[i].mode.String(), cfgs[i].scope, f2(cfgs[i].churn),
			fmt.Sprintf("%d", c.served), f1(c.gbps), f1(c.p99), f1(c.p999),
			fmt.Sprintf("%d", c.deaths),
			fmt.Sprintf("%d", c.allocs), fmt.Sprintf("%d", c.overflow),
			fmt.Sprintf("%d", c.checked), fmt.Sprintf("%d", c.stale),
		})
	}
	return t
}

// adaptivePhases runs the adaptive scenario's three cells — static
// strict, static F&S, and F&S with the control plane attached — through
// a three-phase run derived from o.Measure: a clean phase, a bounded
// burst of injected device misbehaviour (fault.Plan's activity window),
// and a memory-antagonist phase. It returns the per-cell Results plus
// the phase geometry (everything is a multiple of the sampling interval
// e, so phase boundaries land exactly on sampler ticks). The controller
// cell arms one guard rule on the audited blocked-DMA counter: any
// blocked DMA in an evaluation tick is evidence of a misbehaving device
// and drops the domain to strict until a full tick passes clean.
func adaptivePhases(o Options) (rs []host.Results, warmup, e sim.Duration) {
	e = o.Measure / 8
	if e <= 0 {
		e = 1
	}
	warmup = 2 * e
	ctl := &control.Config{
		Every: e / 4,
		Rules: []control.Rule{{
			Kind:     control.Guard,
			Metric:   "audit.blocked",
			High:     1,
			Low:      0,
			Safe:     core.Strict,
			Fast:     core.FNS,
			Cooldown: 2 * e,
		}},
	}
	// The burst doubles the canonical campaign's device-misbehaviour
	// rates so the audit signal rises within a fraction of one sampling
	// interval of the window opening.
	plan := fault.Campaign(1)
	plan.StrayDMA, plan.WildDMA = 0.05, 0.03
	plan.Start, plan.For = warmup+2*e, 2*e
	var specs []workload.Spec
	for _, cell := range []struct {
		mode core.Mode
		ctl  *control.Config
	}{{core.Strict, nil}, {core.FNS, nil}, {core.FNS, ctl}} {
		s := workload.Iperf(cell.mode, 0, 0)
		s.Host.Faults = plan
		s.Host.FaultSeed = 1
		s.Host.Audit = true
		s.Host.MemHogGBps = 12
		s.Host.MemHogStart = warmup + 4*e
		s.Host.Telemetry.SampleEvery = e
		s.Host.Control = cell.ctl
		s.Warmup = warmup
		s.Measure = 8 * e
		specs = append(specs, s)
	}
	return runSpecsRaw(specs, o.Parallel), warmup, e
}

// adaptiveGoodput buckets one run's sampled goodput into the three
// phases (clean, burst, memhog) by sample end time. The first sample of
// every phase is a transition interval — it straddles the controller's
// reaction latency (at most a few evaluation ticks) — and is excluded
// from the phase mean, uniformly for every cell.
func adaptiveGoodput(r host.Results, warmup, e sim.Duration) [3]float64 {
	var rx stats.Series
	for _, s := range r.Timeline {
		if s.Name == "rx_gbps" {
			rx = s
		}
	}
	cleanEnd := sim.Time(warmup + 2*e)
	burstEnd := sim.Time(warmup + 4*e)
	var phases [3][]float64
	for i, t := range rx.Times {
		switch {
		case t <= cleanEnd:
			phases[0] = append(phases[0], rx.Values[i])
		case t <= burstEnd:
			phases[1] = append(phases[1], rx.Values[i])
		default:
			phases[2] = append(phases[2], rx.Values[i])
		}
	}
	var out [3]float64
	for p, vals := range phases {
		if len(vals) > 1 {
			vals = vals[1:]
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if len(vals) > 0 {
			out[p] = sum / float64(len(vals))
		}
	}
	return out
}

// Adaptive runs the control plane against the static modes it arbitrates
// between (extension; ROADMAP item 4). Three cells share one three-phase
// scenario: clean traffic, then a bounded burst of injected device
// misbehaviour (stray/wild DMAs under the audit layer), then a memory-
// bandwidth antagonist. Static strict pays for its per-buffer
// invalidations exactly when the burst's completion drops stall them;
// static F&S holds its goodput everywhere but keeps serving through its
// relaxed window while devices misbehave. The adaptive cell starts from
// F&S with one guard rule on the audited blocked-DMA counter: the burst
// drops it to strict within a fraction of a sampling interval — new
// mappings pay strict's map/invalidate sequence while mappings stamped
// under F&S retire on their origin policy, which is why the fallback
// costs a few percent rather than static strict's burst dip — and one
// clean evaluation tick after the burst ends it returns to F&S. The
// vs_ref columns divide each cell's phase goodput by the best static
// goodput of that phase; the acceptance claim is the adaptive row's
// three ratios ≥ 0.95 with at least two switches and zero stale-served
// DMAs in every cell.
func Adaptive(o Options) Table {
	t := Table{ID: "adaptive", Title: "Adaptive control plane vs static modes across clean/burst/antagonist phases (extension)",
		Header: []string{"mode", "clean_gbps", "burst_gbps", "memhog_gbps", "vs_ref_clean", "vs_ref_burst", "vs_ref_memhog", "switches", "checked", "blocked", "stale_served"}}
	rs, warmup, e := adaptivePhases(o)
	labels := []string{"strict", "fns", "adaptive"}
	var goodput [3][3]float64
	for i, r := range rs {
		goodput[i] = adaptiveGoodput(r, warmup, e)
	}
	// The per-phase reference is the better static mode's goodput.
	var ref [3]float64
	for p := 0; p < 3; p++ {
		ref[p] = goodput[0][p]
		if goodput[1][p] > ref[p] {
			ref[p] = goodput[1][p]
		}
	}
	for i, r := range rs {
		var s fault.SafetyReport
		if r.Safety != nil {
			s = *r.Safety
		}
		row := []string{labels[i]}
		for p := 0; p < 3; p++ {
			row = append(row, f1(goodput[i][p]))
		}
		for p := 0; p < 3; p++ {
			ratio := 0.0
			if ref[p] > 0 {
				ratio = goodput[i][p] / ref[p]
			}
			row = append(row, f2(ratio))
		}
		row = append(row,
			fmt.Sprintf("%d", len(r.Control)),
			fmt.Sprintf("%d", s.Checked), fmt.Sprintf("%d", s.Blocked),
			fmt.Sprintf("%d", s.Violations()))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// clusterScaleCell is one (traffic, hosts, shards) configuration of the
// clusterscale figure.
type clusterScaleCell struct {
	traffic host.TrafficPattern
	hosts   int
	shards  int
}

// clusterScaleGrid is the published grid: the paper's incast and the
// balanced pairs pattern, 64-256 hosts, single-engine vs four shards.
func clusterScaleGrid() []clusterScaleCell {
	var cells []clusterScaleCell
	for _, traffic := range []host.TrafficPattern{host.Incast, host.Pairs} {
		for _, hosts := range []int{64, 128, 256} {
			for _, shards := range []int{1, 4} {
				cells = append(cells, clusterScaleCell{traffic, hosts, shards})
			}
		}
	}
	return cells
}

// clusterScaleTable runs the cells strictly sequentially — never through
// the runner pool — so each cell's wall-clock measurement is honest. The
// deterministic columns (goodput, rounds, safety) land in Rows and are
// golden-locked; per-cell wall-clock and the derived sharded-vs-single
// speedups land in Notes, which the JSON artifact publishes but the
// golden rendering excludes.
func clusterScaleTable(cells []clusterScaleCell, o Options) Table {
	t := Table{ID: "clusterscale",
		Title:  "Sharded conservative-parallel engine at cluster scale (extension)",
		Header: []string{"traffic", "hosts", "shards", "agg_gbps", "rounds", "stale_total"}}
	type cfgKey struct {
		traffic host.TrafficPattern
		hosts   int
	}
	wall := map[clusterScaleCell]time.Duration{}
	maxShards := map[cfgKey]int{}
	for _, c := range cells {
		cl, err := host.NewCluster(host.ClusterConfig{
			Hosts:   c.hosts,
			Traffic: c.traffic,
			Shards:  c.shards,
			Host:    host.Config{Mode: core.FNS, Audit: true},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: clusterscale: %v", err))
		}
		start := time.Now()
		r := cl.Run(o.Warmup, o.Measure)
		elapsed := time.Since(start)
		wall[c] = elapsed
		k := cfgKey{c.traffic, c.hosts}
		if c.shards > maxShards[k] {
			maxShards[k] = c.shards
		}
		var stale int64
		for _, h := range r.Hosts {
			if h.Safety != nil {
				stale += h.Safety.Violations()
			}
		}
		t.Rows = append(t.Rows, []string{
			string(c.traffic), fmt.Sprintf("%d", c.hosts), fmt.Sprintf("%d", c.shards),
			f1(r.AggRxGbps), fmt.Sprintf("%d", cl.Rounds()), fmt.Sprintf("%d", stale),
		})
		t.Notes = append(t.Notes, fmt.Sprintf("%s hosts=%d shards=%d wall_ms=%d",
			c.traffic, c.hosts, c.shards, elapsed.Milliseconds()))
	}
	for _, c := range cells {
		k := cfgKey{c.traffic, c.hosts}
		if c.shards != 1 || maxShards[k] <= 1 {
			continue
		}
		base, sharded := wall[c], wall[clusterScaleCell{c.traffic, c.hosts, maxShards[k]}]
		if sharded > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s hosts=%d speedup_shards%d=%.2f",
				c.traffic, c.hosts, maxShards[k], float64(base)/float64(sharded)))
		}
	}
	return t
}

// ClusterScale exercises the sharded conservative-parallel engine at the
// paper's target cluster sizes. Its scaling story is pattern-dependent,
// and deliberately so: the balanced pairs pattern spreads simulation
// events almost evenly across shards (within a few percent), so its
// wall-clock drops near-linearly with shards on a multi-core machine;
// incast concentrates roughly two thirds of all events on the receiver's
// shard, so conservative parallelism cannot speed it up much — the
// classic hot-LP bound in parallel DES. Both are published: pairs
// demonstrates the engine scales, incast demonstrates the fidelity
// columns (goodput, zero stale-served DMAs) are preserved at 64-256
// hosts either way.
func ClusterScale(o Options) Table {
	return clusterScaleTable(clusterScaleGrid(), o)
}

// All runs every figure and extension table. Each figure fans its own
// cells across the worker pool; cmd/fsbench additionally runs whole
// figures concurrently.
func All(o Options) []Table {
	return []Table{
		Fig2(o), Fig2e(o), Fig3(o), Fig3e(o),
		Fig7(o), Fig7e(o), Fig8(o), Fig8e(o),
		Fig9(o), Fig10(o),
		Fig11a(o), Fig11b(o), Fig11c(o),
		Fig12(o), Model(o), Deferred(o), DescriptorSizes(o), CacheSizes(o),
		Hugepages(o), MemoryLatency(o), Seeds(o), Storage(o), MemoryHog(o),
		Timeline(o), CPUCost(o), Faults(o), Cluster(o), ClusterScale(o),
		Rdma(o), Capability(o), Serving(o), Adaptive(o),
	}
}

// ByID returns one table by its figure id.
func ByID(id string, o Options) (Table, error) {
	fns := map[string]func(Options) Table{
		"fig2": Fig2, "fig2e": Fig2e, "fig3": Fig3, "fig3e": Fig3e,
		"fig7": Fig7, "fig7e": Fig7e, "fig8": Fig8, "fig8e": Fig8e,
		"fig9": Fig9, "fig10": Fig10,
		"fig11a": Fig11a, "fig11b": Fig11b, "fig11c": Fig11c,
		"fig12": Fig12, "model": Model, "modes": Deferred,
		"descsize": DescriptorSizes, "ptcache": CacheSizes, "huge": Hugepages,
		"memlat": MemoryLatency, "seeds": Seeds, "storage": Storage,
		"multidev": Multidev, "memhog": MemoryHog, "timeline": Timeline,
		"cpucost": CPUCost, "faults": Faults, "cluster": Cluster,
		"clusterscale": ClusterScale, "rdma": Rdma, "capability": Capability,
		"serving": Serving, "adaptive": Adaptive,
	}
	f, ok := fns[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown figure %q (see IDs())", id)
	}
	return f(o), nil
}

// IDs lists the available figure ids in presentation order.
func IDs() []string {
	return []string{
		"fig2", "fig2e", "fig3", "fig3e", "fig7", "fig7e", "fig8", "fig8e",
		"fig9", "fig10", "fig11a", "fig11b", "fig11c", "fig12",
		"model", "modes", "descsize", "ptcache", "huge", "memlat", "seeds",
		"storage", "multidev", "memhog", "timeline", "cpucost", "faults",
		"cluster", "clusterscale", "rdma", "capability", "serving",
		"adaptive",
	}
}
