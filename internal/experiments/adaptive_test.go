package experiments

import (
	"reflect"
	"strconv"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/sim"
)

// TestAdaptiveTrends locks the adaptive figure's headline claims: the
// controller switches at least twice (into strict within one sampling
// interval of the misbehaviour burst opening, back to F&S within one
// interval of it closing), the adaptive cell tracks the best static
// mode's goodput within 5% in every phase, the burst actually audits
// blocked DMAs in every cell, and no cell ever serves a stale DMA.
func TestAdaptiveTrends(t *testing.T) {
	o := tiny()
	tab := Adaptive(o)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	f := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	rows := map[string][]string{}
	for _, r := range tab.Rows {
		rows[r[0]] = r
		if r[10] != "0" {
			t.Errorf("%s: stale_served=%s, want 0", r[0], r[10])
		}
		if r[8] == "0" || r[9] == "0" {
			t.Errorf("%s: vacuous audit (checked=%s blocked=%s)", r[0], r[8], r[9])
		}
	}
	for _, mode := range []string{"strict", "fns"} {
		if rows[mode][7] != "0" {
			t.Errorf("static %s reports %s switches", mode, rows[mode][7])
		}
	}
	if n := f(rows["adaptive"][7]); n < 2 {
		t.Errorf("adaptive switches = %g, want >= 2", n)
	}
	for p, col := range map[string]int{"clean": 4, "burst": 5, "memhog": 6} {
		if ratio := f(rows["adaptive"][col]); ratio < 0.95 {
			t.Errorf("adaptive %s phase tracks best static at %.2f, want >= 0.95", p, ratio)
		}
	}
	// The burst is where the static trade-off lives: strict's per-buffer
	// invalidations are exactly what the campaign's completion drops
	// stall, so static strict dips well below F&S there.
	if s, fn := f(rows["strict"][2]), f(rows["fns"][2]); s > 0.9*fn {
		t.Errorf("static strict burst goodput %.1f not below 0.9x fns %.1f", s, fn)
	}

	// The decision log pins the transition timing and directions.
	rs, warmup, e := adaptivePhases(o)
	dec := rs[2].Control
	if len(dec) < 2 {
		t.Fatalf("adaptive decisions = %d, want >= 2", len(dec))
	}
	burstStart := sim.Time(warmup + 2*e)
	burstEnd := sim.Time(warmup + 4*e)
	first, last := dec[0], dec[len(dec)-1]
	if first.From != core.FNS || first.To != core.Strict {
		t.Errorf("first decision %v, want fns->strict", first)
	}
	if first.At < burstStart || first.At > burstStart+sim.Time(e) {
		t.Errorf("fallback at %v, want within one interval of burst open %v", first.At, burstStart)
	}
	if last.From != core.Strict || last.To != core.FNS {
		t.Errorf("last decision %v, want strict->fns", last)
	}
	if last.At < burstEnd || last.At > burstEnd+sim.Time(e) {
		t.Errorf("recovery at %v, want within one interval of burst close %v", last.At, burstEnd)
	}
	for _, r := range rs {
		if r.Safety == nil || r.Safety.Violations() != 0 {
			t.Errorf("per-domain safety report: %+v, want zero violations", r.Safety)
		}
	}
}

// TestAdaptiveReplayableAcrossRunnerPools locks the second half of the
// controller determinism contract: the adaptive figure's table and its
// decision log are identical whether the cells run on one worker or
// eight — the runner pool only changes wall-clock time, never which
// switches fire or when.
func TestAdaptiveReplayableAcrossRunnerPools(t *testing.T) {
	serialOpts := tiny()
	serialOpts.Parallel = 1
	parOpts := tiny()
	parOpts.Parallel = 8
	serial := Adaptive(serialOpts)
	par := Adaptive(parOpts)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("adaptive table diverges across runner pools:\n%s\nvs\n%s", par, serial)
	}
	srs, _, _ := adaptivePhases(serialOpts)
	prs, _, _ := adaptivePhases(parOpts)
	if !reflect.DeepEqual(srs[2].Control, prs[2].Control) {
		t.Fatalf("decision log diverges across runner pools:\n%v\nvs\n%v", prs[2].Control, srs[2].Control)
	}
}
