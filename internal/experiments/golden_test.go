package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"fastsafe/internal/race"
	"fastsafe/internal/sim"
)

// goldenOpts are the fixed windows the golden files were generated with.
// They must never change: the files under testdata/golden lock the exact
// table bytes the seed configurations produce, so any refactor of the
// host/device construction path that perturbs event ordering — and hence
// results — fails this test.
func goldenOpts() Options {
	return Options{
		Warmup:     1 * sim.Millisecond,
		Measure:    3 * sim.Millisecond,
		RPCMeasure: 9 * sim.Millisecond,
		Parallel:   4,
	}
}

// goldenFigs cover the construction paths worth locking: the flow sweep
// (fig2, fig7), the all-modes table (every protection datapath), the
// storage co-tenant figure (shared-IOMMU multi-device path), the cluster
// figure (N hosts on the shared engine and fabric), the clusterscale
// figure (the sharded conservative-parallel engine at 64-256 hosts; its
// rendered rows are deterministic — wall-clock lives in the JSON-only
// Notes), the rdma figure (one-sided peer flows through the device-side
// ATS cache, including the strawman's audited stale hits), and the
// capability figure (the capability-table protection family next to the
// page-table family, with the lazy-revoke stale window audited), and the
// serving figure (the open-loop churn fleet — including the cohort8 rows,
// whose counter columns must stay identical to the exact churn-0.20 host
// rows by the cohort grouping-invariance contract), and the adaptive
// figure (the control plane's two mid-run mode switches under the
// windowed fault burst, with the per-phase tracking ratios and the
// zero-stale audit columns locked byte-for-byte).
var goldenFigs = []string{"fig2", "fig7", "modes", "storage", "cluster", "clusterscale", "rdma", "capability", "serving", "adaptive"}

// TestGoldenFiguresByteIdentical regenerates each golden figure and
// requires byte-for-byte identity with the committed file. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/experiments -run Golden —
// but only when a results-changing modification is intentional.
func TestGoldenFiguresByteIdentical(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, id := range goldenFigs {
		if id == "clusterscale" && race.Enabled {
			// The figure times sequential 64-256-host cells; under the
			// race detector that is ~10x slower and the wall-clock notes
			// are meaningless. The sharded engine's race coverage comes
			// from the host equivalence tests instead.
			continue
		}
		tab, err := ByID(id, goldenOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got := tab.String()
		path := filepath.Join("testdata", "golden", id+".txt")
		if update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with UPDATE_GOLDEN=1)", id, err)
		}
		if got != string(want) {
			t.Errorf("%s diverged from golden file %s:\ngot:\n%s\nwant:\n%s",
				id, path, got, string(want))
		}
	}
}
