package device_test

import (
	"strings"
	"testing"

	"fastsafe/internal/core"
	"fastsafe/internal/device"
	"fastsafe/internal/host"
	"fastsafe/internal/sim"
)

// runStorage attaches one storage co-tenant to a default host and runs a
// short window, returning the device for inspection.
func runStorage(t *testing.T, mode core.Mode, gbps float64) *device.Storage {
	t.Helper()
	h, err := host.New(host.Config{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	s := h.InstallStorage(host.StorageConfig{ReadGBps: gbps})
	h.Run(1*sim.Millisecond, 4*sim.Millisecond)
	return s
}

func TestStorageDatapath(t *testing.T) {
	s := runStorage(t, core.Strict, 8)
	if s.Name() != "storage0" || s.Kind() != "storage" {
		t.Fatalf("identity = %s/%s", s.Name(), s.Kind())
	}
	if s.Domain() == nil {
		t.Fatal("no protection domain after Attach")
	}
	st := s.Stats()
	if st.Ops == 0 || st.Ops != s.Blocks() {
		t.Fatalf("ops = %d, blocks = %d", st.Ops, s.Blocks())
	}
	// Default block size: every completed DMA moves 128KB.
	if want := st.Ops * (128 << 10); st.Bytes != want {
		t.Fatalf("bytes = %d, want %d (128KB blocks)", st.Bytes, want)
	}
}

// TestStorageUntranslatedSkipsWalks: with the IOMMU off the device still
// moves blocks but performs no translations, so its domain never touches
// the shared walker.
func TestStorageUntranslatedSkipsWalks(t *testing.T) {
	s := runStorage(t, core.Off, 8)
	if s.Blocks() == 0 {
		t.Fatal("untranslated storage issued no blocks")
	}
}

func TestStorageAttachRejectsZeroRate(t *testing.T) {
	h, err := host.New(host.Config{Mode: core.FNS})
	if err != nil {
		t.Fatal(err)
	}
	s := device.NewStorage(device.StorageConfig{Name: "bad"})
	if err := h.AttachDevice(s); err == nil || !strings.Contains(err.Error(), "ReadGBps") {
		t.Fatalf("Attach with zero ReadGBps: err = %v", err)
	}
}

func TestNewStorageDefaults(t *testing.T) {
	s := device.NewStorage(device.StorageConfig{ReadGBps: 1})
	if s.Name() != "storage" {
		t.Fatalf("default name = %q", s.Name())
	}
	if s.Domain() != nil {
		t.Fatal("domain must be nil before Attach")
	}
}
