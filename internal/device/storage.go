package device

import (
	"fmt"

	"fastsafe/internal/core"
	"fastsafe/internal/fault"
	"fastsafe/internal/pcie"
	"fastsafe/internal/ptable"
	"fastsafe/internal/sim"
)

// Storage is an NVMe-style storage controller: it issues BlockBytes-sized
// read DMAs at a fixed rate through its own PCIe link, with translations
// through the host's shared IOMMU — same IOTLB, same page-table caches,
// same walkers as every other attached device. Its block DMAs are mapped
// and unmapped through its domain's protection mode, so under strict mode
// its per-block invalidations pollute the caches the network datapath
// depends on — the cross-device interference production deployments
// observe (the "violation of isolation guarantees" motivation in §1).
// Under F&S the storage traffic uses contiguous chunks and IOTLB-only
// invalidations, so the pollution collapses.
type Storage struct {
	cfg      StorageConfig
	h        Host
	dom      *core.Domain // own protection domain, shared IOMMU
	link     *pcie.Link
	faults   *fault.Device
	interval sim.Duration
	blocks   int64
	bytes    int64
}

// StorageConfig configures one storage device. The host chooses CPU and
// SeedOffset when it attaches the device.
type StorageConfig struct {
	Name       string
	ReadGBps   float64   // target block-read bandwidth (decimal GB/s)
	BlockBytes int       // per-DMA block size (default 128KB)
	Mode       core.Mode // protection mode of the device's domain
	CPU        int       // host core the driver work runs on
	SeedOffset int64     // domain seed offset from the host seed
}

// NewStorage builds a storage device; Attach wires it to a host.
func NewStorage(cfg StorageConfig) *Storage {
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 128 << 10
	}
	if cfg.Name == "" {
		cfg.Name = "storage"
	}
	return &Storage{
		cfg:      cfg,
		interval: sim.Duration(float64(cfg.BlockBytes) / cfg.ReadGBps),
	}
}

// Name implements Device.
func (s *Storage) Name() string { return s.cfg.Name }

// Kind implements Device.
func (s *Storage) Kind() string { return "storage" }

// Domain implements Device.
func (s *Storage) Domain() *core.Domain { return s.dom }

// Stats implements Device.
func (s *Storage) Stats() Stats { return Stats{Ops: s.blocks, Bytes: s.bytes} }

// Blocks returns completed block DMAs.
func (s *Storage) Blocks() int64 { return s.blocks }

// Attach implements Device: own link, own domain, shared IOMMU.
func (s *Storage) Attach(h Host) error {
	if s.cfg.ReadGBps <= 0 {
		return fmt.Errorf("device: storage %s: ReadGBps must be positive, got %g",
			s.cfg.Name, s.cfg.ReadGBps)
	}
	s.h = h
	s.link = h.NewLink()
	dom, err := h.NewDomain(core.Config{
		Mode:    s.cfg.Mode,
		NumCPUs: 1,
	}, s.cfg.SeedOffset)
	if err != nil {
		return fmt.Errorf("device: storage %s: %w", s.cfg.Name, err)
	}
	s.dom = dom
	s.faults = h.Faults().Device(s.dom)
	return nil
}

// Start begins the periodic block stream.
func (s *Storage) Start() {
	s.h.Engine().After(s.interval, s.issue)
}

// issue maps one block, translates and DMAs it, and unmaps on completion —
// the storage driver's strict-safety datapath, sharing every IOMMU
// structure with the other devices.
func (s *Storage) issue() {
	pages := (s.cfg.BlockBytes + 4095) / 4096
	var m *core.TxMapping
	s.h.Exec(s.cfg.CPU, func() sim.Duration {
		tm, mc, err := s.dom.MapTx(0, pages)
		if err != nil {
			panic(fmt.Sprintf("device: storage MapTx: %v", err))
		}
		m = tm
		return mc
	}, func() {
		reads := 0
		if s.dom.Mode().Translated() {
			s.faults.Observe(m.IOVAs[0])
			for off := 0; off < s.cfg.BlockBytes; off += 512 {
				page := off / 4096
				v := m.IOVAs[page] + ptable.IOVA(off%4096)
				tr := s.dom.Translate(v)
				reads += tr.MemReads
			}
			reads += s.faults.MaybeMisbehave()
		}
		s.link.Submit(s.cfg.BlockBytes, reads, func() {
			s.blocks++
			s.bytes += int64(s.cfg.BlockBytes)
			s.h.Exec(s.cfg.CPU, func() sim.Duration {
				cost, err := s.dom.UnmapTx(m)
				if err != nil {
					panic(fmt.Sprintf("device: storage UnmapTx: %v", err))
				}
				return cost
			}, nil)
		})
	})
	s.h.Engine().After(s.interval, s.issue)
}
