// Package device defines the pluggable DMA-device layer: any model that
// attaches to a simulated host, owns a protection domain over the host's
// shared IOMMU, drives DMAs through a PCIe link and reports per-device
// counters. The paper's §1 motivation is that every DMA device on a host
// shares one IOMMU — one IOTLB, one set of page-table caches, shared
// walkers — so one device's invalidation traffic degrades another's
// datapath. This package is the seam that lets experiments attach N such
// devices (NICs, storage controllers, future RDMA/GPU models) to one
// host instead of the NIC-plus-hardwired-storage pair the simulator
// started with.
//
// internal/host provides the Host implementation and the NIC reference
// device; Storage in this package is the second reference device.
package device

import (
	"fastsafe/internal/core"
	"fastsafe/internal/fault"
	"fastsafe/internal/iommu"
	"fastsafe/internal/pcie"
	"fastsafe/internal/sim"
)

// Host is the attachment surface a device sees: the event engine for
// time, the shared IOMMU, and factories that wire new links and domains
// into the host's walker and seed space. Implemented by *host.Host.
type Host interface {
	// Engine returns the discrete-event engine driving the simulation.
	Engine() *sim.Engine
	// SharedIOMMU returns the host's single IOMMU. All attached devices'
	// domains translate through it — that sharing is the point.
	SharedIOMMU() *iommu.IOMMU
	// NewLink creates a PCIe link with the host's fitted latency
	// parameters, attached to the host's shared page walkers.
	NewLink() *pcie.Link
	// NewDomain creates a protection domain over the shared IOMMU. The
	// host fills in SharedIOMMU and derives the domain's RNG seed from
	// its own seed plus seedOffset, so distinct devices get distinct but
	// deterministic free-pool shuffles. Errors on a mode with no
	// registered protection policy.
	NewDomain(cfg core.Config, seedOffset int64) (*core.Domain, error)
	// Exec schedules driver work on the host core cpu: work runs when
	// the core drains to it and returns the CPU time to charge; done (if
	// non-nil) runs after the work completes.
	Exec(cpu int, work func() sim.Duration, done func())
	// Faults returns the host's fault injector, nil when no fault plan
	// is active. Devices derive their misbehaviour hooks from it
	// (injector.Device(dom)); every derived hook is nil-safe, so devices
	// need no further guards.
	Faults() *fault.Injector
}

// Device is one DMA device attached to a host.
type Device interface {
	// Name identifies the device in per-device result breakdowns
	// ("nic0", "storage1").
	Name() string
	// Kind is the device class ("nic", "storage").
	Kind() string
	// Attach wires the device to the host: create its domain and links.
	// Called exactly once, before Start.
	Attach(h Host) error
	// Start begins the device's traffic: the host grants engine time by
	// calling this once at simulation start.
	Start()
	// Domain returns the device's protection domain (nil before Attach).
	// Per-device IOMMU counters are keyed by Domain().ID().
	Domain() *core.Domain
	// Stats reports the device's cumulative work.
	Stats() Stats
}

// Stats is the device-generic view of progress: completed DMA
// operations (packets delivered, blocks read) and the payload bytes
// they moved. Per-device translation behaviour (misses, walk reads,
// invalidations) comes from the shared IOMMU's per-domain counters, not
// from here.
type Stats struct {
	Ops   int64 // completed DMA operations
	Bytes int64 // payload bytes moved
}
