package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.RunAll()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want ascending schedule order", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(100, func() {
		e.At(10, func() { at = e.Now() }) // in the past
	})
	e.RunAll()
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	id := e.At(10, func() { fired = true })
	e.Cancel(id)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling again must not panic.
	e.Cancel(id)
	e.Cancel(EventID{})
}

func TestRunStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run(25)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("fired = %v, want [10 20]", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want 25 (advanced to deadline)", e.Now())
	}
	e.Run(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v, want all 4 after second Run", fired)
	}
}

func TestRunFiresEventExactlyAtDeadline(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(25, func() { fired = true })
	e.Run(25)
	if !fired {
		t.Fatal("event at deadline did not fire")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.RunAll()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(50, func() {
		e.After(-10, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 50 {
		t.Fatalf("negative After fired at %v, want 50", at)
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the clock never goes backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var last Time = -1
		ok := true
		for _, d := range delays {
			e.At(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.RunAll()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5, "5ns"},
		{2500, "2.500us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Fatalf("Seconds() = %v, want 0.5", got)
	}
	if got := (2 * Microsecond).Micros(); got != 2 {
		t.Fatalf("Micros() = %v, want 2", got)
	}
}

func TestCancelAfterFireIsInert(t *testing.T) {
	// Regression test for the pooled free list: an EventID retained past
	// its event's firing must not cancel the event that reuses the struct.
	e := NewEngine(1)
	stale := e.At(5, func() {})
	e.RunAll() // fires and recycles the event struct

	fired := false
	fresh := e.At(7, func() { fired = true })
	if fresh.ev != stale.ev {
		t.Skip("free list did not reuse the struct; nothing to regress")
	}
	e.Cancel(stale) // stale generation: must be a no-op
	e.RunAll()
	if !fired {
		t.Fatal("stale Cancel killed a later event reusing the pooled struct")
	}
}

func TestCancelAfterCancelIsInert(t *testing.T) {
	// Same property for the cancel path: a cancelled (never fired) event is
	// recycled when popped, and its old ID must then be inert.
	e := NewEngine(1)
	stale := e.At(5, func() {})
	e.Cancel(stale)
	e.RunAll() // pops the dead event and recycles it

	fired := false
	fresh := e.At(7, func() { fired = true })
	if fresh.ev != stale.ev {
		t.Skip("free list did not reuse the struct; nothing to regress")
	}
	e.Cancel(stale)
	e.RunAll()
	if !fired {
		t.Fatal("doubly-cancelled ID killed a later event reusing the struct")
	}
}

func TestPopClearsHeapIndex(t *testing.T) {
	// eventQueue.Pop must reset idx so a popped event no longer claims a
	// position inside the live heap.
	e := NewEngine(1)
	e.At(10, func() {})
	e.At(20, func() {})
	var popped *event
	e.queue[0].fn = func() {}
	popped = e.queue[0]
	e.Step()
	if popped.idx != -1 {
		t.Fatalf("popped event idx = %d, want -1", popped.idx)
	}
}

func TestFreeListReusesStructs(t *testing.T) {
	e := NewEngine(1)
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			e.After(Duration(i), func() {})
		}
		e.RunAll()
	}
	if len(e.free) != 100 {
		t.Fatalf("free list holds %d structs, want 100", len(e.free))
	}
}
