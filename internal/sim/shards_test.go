package sim

import (
	"fmt"
	"runtime"
	"testing"
)

func TestPeekTimeAndRunBefore(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime on an empty engine reported an event")
	}
	var fired []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	if at, ok := e.PeekTime(); !ok || at != 10 {
		t.Fatalf("PeekTime = (%v, %v), want (10, true)", at, ok)
	}
	e.RunBefore(20)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("RunBefore(20) fired %v, want [10] only (bound is exclusive)", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("RunBefore advanced the clock to %v, want 10 (no alignment to bound)", e.Now())
	}
	e.RunBefore(31)
	if len(fired) != 3 {
		t.Fatalf("RunBefore(31) left %d events unfired", 3-len(fired))
	}
}

func TestPeekTimeSeesCancelledEvents(t *testing.T) {
	// A cancelled event still bounds PeekTime until popped — a conservative
	// (earlier-than-real) answer, which the shard coordinator tolerates as a
	// wasted round, never an unsafe one.
	e := NewEngine(1)
	id := e.At(5, func() { t.Fatal("cancelled event fired") })
	e.Cancel(id)
	if at, ok := e.PeekTime(); !ok || at != 5 {
		t.Fatalf("PeekTime = (%v, %v), want (5, true) for a cancelled head", at, ok)
	}
	e.RunBefore(6)
	if _, ok := e.PeekTime(); ok {
		t.Fatal("RunBefore did not drain the cancelled event")
	}
}

func TestShardsValidation(t *testing.T) {
	for _, tc := range []struct {
		n  int
		la Duration
	}{{0, 1}, {1, 0}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewShards(%d, la=%d) did not panic", tc.n, tc.la)
				}
			}()
			NewShards(tc.n, 1, tc.la)
		}()
	}
}

func TestShardsConservativeDelivery(t *testing.T) {
	// Two shards ping-pong a message with delivery timestamps exactly one
	// lookahead ahead — the tightest legal conservative schedule. The trace
	// must interleave in timestamp order despite parallel rounds.
	const la = 10
	s := NewShards(2, 1, la)
	var trace []string
	hops := 0
	var hop func(src int)
	hop = func(src int) {
		me := src
		eng := s.Engine(me)
		trace = append(trace, fmt.Sprintf("%d@%d", me, eng.Now()))
		hops++
		if hops >= 8 {
			return
		}
		now := eng.Now()
		s.Post(me, 1-me, now, now+la, func() { hop(1 - me) })
	}
	s.Engine(0).At(0, func() { hop(0) })
	s.Run(1000)
	want := "[0@0 1@10 0@20 1@30 0@40 1@50 0@60 1@70]"
	if got := fmt.Sprintf("%v", trace); got != want {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	if s.Rounds() == 0 {
		t.Fatal("coordinator reported zero rounds")
	}
	for i := 0; i < s.N(); i++ {
		if now := s.Engine(i).Now(); now != 1000 {
			t.Fatalf("shard %d clock = %v after Run(1000), want aligned to 1000", i, now)
		}
	}
}

func TestShardsSameShardPostIsDirect(t *testing.T) {
	s := NewShards(2, 1, 5)
	ran := false
	s.Post(0, 0, 0, 3, func() { ran = true })
	if pend := s.Engine(0).Pending(); pend != 1 {
		t.Fatalf("same-shard post did not schedule directly (pending=%d)", pend)
	}
	s.Run(10)
	if !ran {
		t.Fatal("same-shard post never ran")
	}
}

func TestShardsRelaxedPostClampsToNow(t *testing.T) {
	// A commutative bookkeeping post with a timestamp behind the receiver
	// must still apply (clamped to the receiver's clock), not fire in the
	// past or get lost.
	s := NewShards(2, 1, 5)
	var appliedAt Time = -1
	s.Engine(1).At(50, func() {}) // receiver is ahead of the post's timestamp
	s.Engine(0).At(60, func() {
		s.Post(0, 1, 60, 0, func() { appliedAt = s.Engine(1).Now() })
	})
	s.Run(100)
	if appliedAt < 0 {
		t.Fatal("relaxed post never applied")
	}
	if appliedAt < 50 {
		t.Fatalf("relaxed post applied at %v, before the receiver's clock", appliedAt)
	}
}

// shardTrace runs a deterministic 4-shard workload where every shard
// floods every other with conservatively timestamped messages, and
// returns the merged event trace.
func shardTrace(seed int64) string {
	const (
		n  = 4
		la = Duration(7)
	)
	s := NewShards(n, seed, la)
	traces := make([][]string, n)
	var step func(me, from, depth int)
	step = func(me, from, depth int) {
		eng := s.Engine(me)
		traces[me] = append(traces[me], fmt.Sprintf("%d<-%d@%d#%d", me, from, eng.Now(), depth))
		if depth >= 5 {
			return
		}
		now := eng.Now()
		for dst := 0; dst < n; dst++ {
			if dst == me {
				continue
			}
			dst := dst
			// Vary delivery offsets so timestamps collide across sources:
			// the deterministic (at, gen, src, seq) barrier order is what
			// keeps the trace stable.
			off := la + Duration((me+dst+depth)%3)
			s.Post(me, dst, now, now+off, func() { step(dst, me, depth+1) })
		}
	}
	for i := 0; i < n; i++ {
		i := i
		s.Engine(i).At(Time(i%2), func() { step(i, i, 0) })
	}
	s.Run(60)
	return fmt.Sprintf("%v rounds>0=%v", traces, s.Rounds() > 0)
}

func TestShardsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	want := ""
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			got := shardTrace(42)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("GOMAXPROCS=%d rep=%d: trace diverged\n got %s\nwant %s", procs, rep, got, want)
			}
		}
	}
}

func TestShardsRepeatedRunWindows(t *testing.T) {
	// Run in two windows (warm-up then measure) and compare against one
	// continuous run: the barrier at the window boundary must not change
	// the event schedule.
	one := shardTrace(7)

	// Same workload, split manually: shardTrace uses Run(60); replicate it
	// with the library under two Run calls by re-running and splitting.
	const (
		n  = 4
		la = Duration(7)
	)
	s := NewShards(n, 7, la)
	traces := make([][]string, n)
	var step func(me, from, depth int)
	step = func(me, from, depth int) {
		eng := s.Engine(me)
		traces[me] = append(traces[me], fmt.Sprintf("%d<-%d@%d#%d", me, from, eng.Now(), depth))
		if depth >= 5 {
			return
		}
		now := eng.Now()
		for dst := 0; dst < n; dst++ {
			if dst == me {
				continue
			}
			dst := dst
			off := la + Duration((me+dst+depth)%3)
			s.Post(me, dst, now, now+off, func() { step(dst, me, depth+1) })
		}
	}
	for i := 0; i < n; i++ {
		i := i
		s.Engine(i).At(Time(i%2), func() { step(i, i, 0) })
	}
	s.Run(13)
	for i := 0; i < n; i++ {
		if now := s.Engine(i).Now(); now != 13 {
			t.Fatalf("shard %d clock %v after first window, want 13", i, now)
		}
	}
	s.Run(60)
	got := fmt.Sprintf("%v rounds>0=%v", traces, s.Rounds() > 0)
	if got != one {
		t.Fatalf("split windows diverged from continuous run\n got %s\nwant %s", got, one)
	}
}
