package sim

import "testing"

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%1000), func() {})
		if e.Pending() > 1024 {
			e.Run(e.Now() + 1000)
		}
	}
	e.RunAll()
}

func BenchmarkNestedEvents(b *testing.B) {
	e := NewEngine(1)
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			e.After(10, fire)
		}
	}
	e.After(10, fire)
	b.ResetTimer()
	e.RunAll()
}

// BenchmarkEngineSchedule measures the steady-state cost of scheduling and
// firing one event. With the free-list pool the event structs are reused,
// so allocs/op drops from 1 (one heap-allocated event per At) to ~0.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%64), func() {})
		if e.Pending() >= 512 {
			e.Run(e.Now() + 64)
		}
	}
	e.RunAll()
}
