package sim

import "testing"

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%1000), func() {})
		if e.Pending() > 1024 {
			e.Run(e.Now() + 1000)
		}
	}
	e.RunAll()
}

func BenchmarkNestedEvents(b *testing.B) {
	e := NewEngine(1)
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			e.After(10, fire)
		}
	}
	e.After(10, fire)
	b.ResetTimer()
	e.RunAll()
}

// BenchmarkEngineSchedule measures the steady-state cost of scheduling and
// firing one event. With the free-list pool the event structs are reused,
// so allocs/op drops from 1 (one heap-allocated event per At) to ~0.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%64), func() {})
		if e.Pending() >= 512 {
			e.Run(e.Now() + 64)
		}
	}
	e.RunAll()
}

// BenchmarkScheduleCancel measures cancel-heavy workloads: half of every
// scheduled batch is cancelled before it can fire, the pattern transport
// retransmit timers and shard inboxes produce. Cancelled events ride the
// queue as tombstones until popped, so this exercises the dead-event skip
// path and pool recycling together.
func BenchmarkScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	ids := make([]EventID, 0, 512)
	for i := 0; i < b.N; i++ {
		ids = append(ids, e.After(Duration(i%256), func() {}))
		if len(ids) == 512 {
			for j, id := range ids {
				if j%2 == 0 {
					e.Cancel(id)
				}
			}
			e.Run(e.Now() + 256)
			ids = ids[:0]
		}
	}
	e.RunAll()
}

// BenchmarkEventPoolChurn stresses the free list under shard-inbox-style
// churn: bursts of same-timestamp events (a barrier flush) of which a
// fraction are cancelled, drained window by window. A pooling regression
// shows up as allocs/op climbing toward 1.
func BenchmarkEventPoolChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	const burst = 64
	ids := make([]EventID, burst)
	i := 0
	for i < b.N {
		at := e.Now() + 10
		n := burst
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			ids[j] = e.At(at, func() {})
		}
		for j := 0; j < n; j += 3 {
			e.Cancel(ids[j])
		}
		e.Run(at)
		i += n
	}
	e.RunAll()
}

// BenchmarkShardsPingPong measures the per-round overhead of the
// conservative coordinator: two shards exchanging one tightly-timed
// message per lookahead window, the worst case for barrier cost (no
// local work to amortise it against).
func BenchmarkShardsPingPong(b *testing.B) {
	b.ReportAllocs()
	const la = 10
	s := NewShards(2, 1, la)
	n := 0
	var hop func(me int)
	hop = func(me int) {
		n++
		if n >= b.N {
			return
		}
		now := s.Engine(me).Now()
		s.Post(me, 1-me, now, now+la, func() { hop(1 - me) })
	}
	s.Engine(0).At(0, func() { hop(0) })
	b.ResetTimer()
	s.Run(Time(b.N+1) * la)
}
