// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in nanoseconds and a priority queue
// of scheduled events. Events that share a timestamp fire in the order they
// were scheduled, which makes every simulation in this repository fully
// deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. Fired and cancelled events are recycled
// through the engine's free list; gen distinguishes the current tenancy of
// the struct from EventIDs issued for earlier tenancies.
//
// sched records the virtual time the event was scheduled at, and events
// sharing a timestamp fire in (sched, seq) order. For a single engine
// that refinement is vacuous — scheduling calls happen in nondecreasing
// virtual time, so seq order already is sched order — but it lets the
// shard coordinator insert cross-shard messages stamped with their true
// generation time at a barrier, reproducing the order a single shared
// engine would have fired the same-timestamp events in.
type event struct {
	at    Time
	sched Time
	seq   uint64
	fn    func()
	dead  bool
	idx   int
	gen   uint64
}

// EventID identifies a scheduled event so it can be cancelled. It pins the
// event's generation, so an ID kept past the event's firing (or past its
// cancellation) goes inert instead of cancelling whatever event later
// reuses the same pooled struct.
type EventID struct {
	ev  *event
	gen uint64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].sched != q[j].sched {
		return q[i].sched < q[j].sched
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand
	// Fired counts events executed; useful for run-away detection in tests.
	fired uint64
	// free pools fired/cancelled event structs for reuse by At.
	free []*event
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// alloc takes an event struct from the free list, or heap-allocates when
// the list is empty.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return new(event)
}

// recycle returns a popped event to the free list. Bumping gen first makes
// any EventID still pointing at the struct inert.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.dead = false
	ev.idx = -1
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the caller; the engine clamps it to "now" to keep time monotonic.
func (e *Engine) At(t Time, fn func()) EventID {
	return e.AtStamped(t, e.now, fn)
}

// AtStamped schedules fn at absolute time t carrying an explicit schedule
// stamp: among events sharing a timestamp, earlier stamps fire first. At
// uses the current time as the stamp; the shard coordinator passes a
// cross-shard message's generation time instead, so barrier-delivered
// events sort against locally-scheduled ones exactly as they would have
// on one shared engine. Stamps are clamped into [0, t]; t is clamped to
// now like At.
func (e *Engine) AtStamped(t, stamp Time, fn func()) EventID {
	if t < e.now {
		t = e.now
	}
	if stamp > t {
		stamp = t
	}
	if stamp < 0 {
		stamp = 0
	}
	ev := e.alloc()
	ev.at, ev.sched, ev.seq, ev.fn = t, stamp, e.seq, fn
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev, ev.gen}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op: the generation check rejects IDs
// whose event struct has been recycled for a later scheduling.
func (e *Engine) Cancel(id EventID) {
	if id.ev != nil && id.ev.gen == id.gen {
		id.ev.dead = true
	}
}

// Step executes the next pending event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		fn := ev.fn
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// PeekTime returns the timestamp of the earliest pending event and true,
// or (0, false) when the queue is empty. Cancelled events still occupy
// queue slots until popped, so the reported time may belong to an event
// that will never fire; callers using it as a lower bound (the shard
// coordinator) only ever get a conservative answer from that.
func (e *Engine) PeekTime() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// RunBefore executes pending events with timestamps strictly below bound.
// Unlike Run it does not advance the clock to the bound afterwards: the
// shard coordinator calls it once per synchronization window and only
// aligns clocks (via Run) when the whole simulation drains.
func (e *Engine) RunBefore(bound Time) {
	for len(e.queue) > 0 && e.queue[0].at < bound {
		e.Step()
	}
}

// Run executes events until the queue is empty or the clock passes deadline.
// Events scheduled exactly at the deadline still fire.
func (e *Engine) Run(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunAll executes events until none remain. Use only in tests with bounded
// event graphs.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}
