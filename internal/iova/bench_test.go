package iova

import "testing"

func BenchmarkTreeAllocFree(b *testing.B) {
	a := NewTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok := a.Alloc(0, 1)
		if !ok {
			b.Fatal("alloc failed")
		}
		a.Free(0, v, 1)
	}
}

func BenchmarkCachedAllocFreeHot(b *testing.B) {
	a := NewCached(1)
	v, _ := a.Alloc(0, 1)
	a.Free(0, v, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := a.Alloc(0, 1)
		a.Free(0, v, 1)
	}
}

func BenchmarkCachedDescriptorChurn(b *testing.B) {
	// The F&S pattern: order-6 chunk alloc/free per descriptor.
	a := NewCached(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok := a.Alloc(i%4, 64)
		if !ok {
			b.Fatal("alloc failed")
		}
		a.Free(i%4, v, 64)
	}
}

func BenchmarkCachedCrossCPUMigration(b *testing.B) {
	// Alloc on one CPU, free on the next: the depot-churn pattern.
	a := NewCached(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu := i % 4
		v, ok := a.Alloc(cpu, 1)
		if !ok {
			b.Fatal("alloc failed")
		}
		a.Free((cpu+1)%4, v, 1)
	}
}
