package iova

import (
	"math/rand"
	"sort"
	"testing"
)

// checkRB validates the red-black invariants and BST ordering, returning
// the tree's black height.
func checkRB(t *testing.T, tr *rbtree) {
	t.Helper()
	if tr.root != nil && tr.root.c != black {
		t.Fatal("root is not black")
	}
	var walk func(n *node, lo, hi uint64) int
	walk = func(n *node, lo, hi uint64) int {
		if n == nil {
			return 1
		}
		if n.start < lo || n.start >= hi {
			t.Fatalf("BST order violated at %d (bounds %d..%d)", n.start, lo, hi)
		}
		if n.c == red {
			if tr.isRed(n.left) || tr.isRed(n.right) {
				t.Fatal("red node has red child")
			}
		}
		if n.left != nil && n.left.parent != n {
			t.Fatal("broken parent pointer (left)")
		}
		if n.right != nil && n.right.parent != n {
			t.Fatal("broken parent pointer (right)")
		}
		lb := walk(n.left, lo, n.start)
		rb := walk(n.right, n.start+1, hi)
		if lb != rb {
			t.Fatalf("black height mismatch at %d: %d vs %d", n.start, lb, rb)
		}
		if n.c == black {
			return lb + 1
		}
		return lb
	}
	walk(tr.root, 0, ^uint64(0))
}

func TestRBInsertRemoveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &rbtree{}
	nodes := map[uint64]*node{}
	for i := 0; i < 2000; i++ {
		if rng.Intn(3) != 0 || len(nodes) == 0 {
			start := uint64(rng.Intn(100000))
			if _, dup := nodes[start]; dup {
				continue
			}
			n := &node{start: start, npages: 1}
			nodes[start] = n
			tr.insert(n)
		} else {
			// Remove a random existing node.
			for s, n := range nodes {
				tr.remove(n)
				delete(nodes, s)
				break
			}
		}
		if i%100 == 0 {
			checkRB(t, tr)
		}
	}
	checkRB(t, tr)
	if tr.size != len(nodes) {
		t.Fatalf("size = %d, want %d", tr.size, len(nodes))
	}
}

func TestRBInOrderTraversal(t *testing.T) {
	tr := &rbtree{}
	starts := []uint64{50, 10, 90, 30, 70, 20, 80}
	for _, s := range starts {
		tr.insert(&node{start: s, npages: 1})
	}
	var got []uint64
	for n := tr.minimum(tr.root); n != nil; n = tr.successor(n) {
		got = append(got, n.start)
	}
	want := append([]uint64(nil), starts...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("traversal length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("traversal = %v, want %v", got, want)
		}
	}
	// Backward traversal via predecessor.
	var back []uint64
	for n := tr.maximum(tr.root); n != nil; n = tr.predecessor(n) {
		back = append(back, n.start)
	}
	for i := range want {
		if back[len(back)-1-i] != want[i] {
			t.Fatalf("backward traversal = %v", back)
		}
	}
}

func TestRBFind(t *testing.T) {
	tr := &rbtree{}
	tr.insert(&node{start: 100, npages: 10})
	tr.insert(&node{start: 200, npages: 5})
	if n := tr.find(105); n == nil || n.start != 100 {
		t.Fatal("find inside range failed")
	}
	if n := tr.find(110); n != nil {
		t.Fatal("find just past range succeeded")
	}
	if n := tr.find(99); n != nil {
		t.Fatal("find below range succeeded")
	}
	if n := tr.find(204); n == nil || n.start != 200 {
		t.Fatal("find in second range failed")
	}
}

func TestRBRemoveAll(t *testing.T) {
	tr := &rbtree{}
	var ns []*node
	for i := uint64(0); i < 100; i++ {
		n := &node{start: i * 10, npages: 1}
		ns = append(ns, n)
		tr.insert(n)
	}
	for _, n := range ns {
		tr.remove(n)
		checkRB(t, tr)
	}
	if tr.root != nil || tr.size != 0 {
		t.Fatal("tree not empty after removing all")
	}
}
