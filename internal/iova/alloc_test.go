package iova

import (
	"testing"
	"testing/quick"

	"fastsafe/internal/ptable"
)

func TestTreeAllocTopDown(t *testing.T) {
	a := NewTree()
	v1, ok := a.Alloc(0, 1)
	if !ok {
		t.Fatal("alloc failed")
	}
	if v1 != ptable.TopIOVA {
		t.Fatalf("first alloc = %v, want top page %v", v1, ptable.TopIOVA)
	}
	v2, _ := a.Alloc(0, 1)
	if v2 != v1-ptable.PageSize {
		t.Fatalf("second alloc = %v, want just below first", v2)
	}
}

func TestTreeAllocMultiPage(t *testing.T) {
	a := NewTree()
	v, ok := a.Alloc(0, 64)
	if !ok {
		t.Fatal("alloc failed")
	}
	if uint64(v)+64*ptable.PageSize != ptable.AddrSpace {
		t.Fatalf("64-page alloc = %#x, want flush against top", uint64(v))
	}
	if uint64(v)%ptable.PageSize != 0 {
		t.Fatal("allocation not page aligned")
	}
}

func TestTreeFreeAndReuse(t *testing.T) {
	a := NewTree()
	v1, _ := a.Alloc(0, 1)
	v2, _ := a.Alloc(0, 1)
	v3, _ := a.Alloc(0, 1)
	_ = v3
	a.Free(0, v1, 1)
	a.Free(0, v2, 1)
	// A 2-page allocation should fit in the freed gap at the top.
	v4, ok := a.Alloc(0, 2)
	if !ok {
		t.Fatal("alloc failed")
	}
	if v4 != v2 {
		t.Fatalf("alloc after free = %v, want reuse of top gap %v", v4, v2)
	}
}

func TestTreeCompactness(t *testing.T) {
	// Allocate many, free none: ranges must be contiguous from the top
	// (the compactness property §2.2 relies on).
	a := NewTree()
	lowest := ptable.IOVA(ptable.AddrSpace)
	for i := 0; i < 1000; i++ {
		v, ok := a.Alloc(0, 1)
		if !ok {
			t.Fatal("alloc failed")
		}
		if v < lowest {
			lowest = v
		}
	}
	if uint64(lowest) != ptable.AddrSpace-1000*ptable.PageSize {
		t.Fatalf("active set not compact: lowest = %#x", uint64(lowest))
	}
}

func TestTreeFreeMismatchPanics(t *testing.T) {
	a := NewTree()
	v, _ := a.Alloc(0, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Free did not panic")
		}
	}()
	a.Free(0, v, 2) // wrong size
}

func TestTreeFreeUnknownPanics(t *testing.T) {
	a := NewTree()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown Free did not panic")
		}
	}()
	a.Free(0, 0x1000, 1)
}

func TestTreeAllocZeroPages(t *testing.T) {
	a := NewTree()
	if _, ok := a.Alloc(0, 0); ok {
		t.Fatal("zero-page alloc succeeded")
	}
}

func TestTreeHintSkipsOverLowGaps(t *testing.T) {
	// After freeing a high range, a retry from the top must find it even
	// if the hint has moved far below.
	a := NewTree()
	var vs []ptable.IOVA
	for i := 0; i < 10; i++ {
		v, _ := a.Alloc(0, 1)
		vs = append(vs, v)
	}
	a.Free(0, vs[0], 1) // topmost page now free
	got, ok := a.Alloc(0, 1)
	if !ok {
		t.Fatal("alloc failed")
	}
	if got != vs[0] {
		t.Fatalf("alloc = %v, want reclaimed top page %v", got, vs[0])
	}
}

func TestPropertyTreeNoOverlap(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewTree()
		type alloc struct {
			v     ptable.IOVA
			pages int
		}
		var live []alloc
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				a.Free(0, live[i].v, live[i].pages)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			pages := int(op%8) + 1
			v, ok := a.Alloc(0, pages)
			if !ok {
				return false
			}
			// Overlap check against all live allocations.
			for _, l := range live {
				if uint64(v) < uint64(l.v)+uint64(l.pages)*ptable.PageSize &&
					uint64(l.v) < uint64(v)+uint64(pages)*ptable.PageSize {
					return false
				}
			}
			live = append(live, alloc{v, pages})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundPages(t *testing.T) {
	cases := [][2]int{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128}}
	for _, c := range cases {
		if got := roundPages(c[0]); got != c[1] {
			t.Errorf("roundPages(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestOrderClasses(t *testing.T) {
	if order(1) != 0 || order(2) != 1 || order(64) != 6 {
		t.Fatalf("order classes wrong: %d %d %d", order(1), order(2), order(64))
	}
	if order(128) != -1 {
		t.Fatal("order above MaxCachedOrder should be -1")
	}
	if order(0) != -1 {
		t.Fatal("order(0) should be -1")
	}
}

func TestCachedAllocRecyclesLIFO(t *testing.T) {
	a := NewCached(2)
	v1, _ := a.Alloc(0, 1)
	a.Free(0, v1, 1)
	v2, ok := a.Alloc(0, 1)
	if !ok {
		t.Fatal("alloc failed")
	}
	if v2 != v1 {
		t.Fatalf("magazine did not recycle LIFO: got %v, want %v", v2, v1)
	}
	s := a.Stats()
	if s.CacheAllocs != 1 || s.CacheFrees != 1 {
		t.Fatalf("stats = %+v, want one cache alloc and one cache free", s)
	}
}

func TestCachedPerCPUIsolation(t *testing.T) {
	a := NewCached(2)
	v, _ := a.Alloc(0, 1)
	a.Free(0, v, 1) // lands in CPU 0's magazine
	// CPU 1 cannot see CPU 0's magazine: it goes to the tree.
	v1, _ := a.Alloc(1, 1)
	if v1 == v {
		t.Fatal("CPU 1 alloc stole CPU 0's cached IOVA")
	}
	// CPU 0 still gets its cached one back.
	v0, _ := a.Alloc(0, 1)
	if v0 != v {
		t.Fatalf("CPU 0 did not get its cached IOVA: got %v want %v", v0, v)
	}
}

func TestCachedPrevMagazineSwap(t *testing.T) {
	a := NewCached(1)
	// Fill loaded (MagSize) plus one more: the overflow swaps to prev.
	var vs []ptable.IOVA
	for i := 0; i < MagSize+1; i++ {
		v, ok := a.Alloc(0, 1)
		if !ok {
			t.Fatal("alloc failed")
		}
		vs = append(vs, v)
	}
	for _, v := range vs {
		a.Free(0, v, 1)
	}
	// All must be reallocatable from magazines without touching the tree.
	treeBefore := a.Stats().TreeAllocs
	for i := 0; i < MagSize+1; i++ {
		if _, ok := a.Alloc(0, 1); !ok {
			t.Fatal("alloc failed")
		}
	}
	if a.Stats().TreeAllocs != treeBefore {
		t.Fatal("magazine+prev should have served all allocations")
	}
}

func TestCachedDepotSpill(t *testing.T) {
	a := NewCached(1)
	// Free 3 magazines' worth: loaded fills, swaps with prev, fills again,
	// spills to depot, fills again.
	n := 3 * MagSize
	var vs []ptable.IOVA
	for i := 0; i < n; i++ {
		v, ok := a.Alloc(0, 1)
		if !ok {
			t.Fatal("alloc failed")
		}
		vs = append(vs, v)
	}
	for _, v := range vs {
		a.Free(0, v, 1)
	}
	if a.Stats().DepotMoves == 0 {
		t.Fatal("expected a depot spill")
	}
	// Everything still allocatable from caches.
	treeBefore := a.Stats().TreeAllocs
	for i := 0; i < n; i++ {
		if _, ok := a.Alloc(0, 1); !ok {
			t.Fatal("alloc failed")
		}
	}
	if a.Stats().TreeAllocs != treeBefore {
		t.Fatal("depot should have served the overflow")
	}
}

func TestCachedDepotFullFlushesToTree(t *testing.T) {
	a := NewCached(1)
	// Enough frees to overflow depot capacity: (MaxGlobalMags+3) magazines.
	n := (MaxGlobalMags + 3) * MagSize
	var vs []ptable.IOVA
	for i := 0; i < n; i++ {
		v, ok := a.Alloc(0, 1)
		if !ok {
			t.Fatal("alloc failed")
		}
		vs = append(vs, v)
	}
	for _, v := range vs {
		a.Free(0, v, 1)
	}
	if a.Stats().TreeFrees == 0 {
		t.Fatal("full depot should flush magazines back to the tree")
	}
}

func TestOverflowCountersTrackDepotFullFlushes(t *testing.T) {
	a := NewCached(1)
	// Capacity before overflow: loaded + prev + MaxGlobalMags magazines.
	n := (MaxGlobalMags + 4) * MagSize
	var vs []ptable.IOVA
	for i := 0; i < n; i++ {
		v, ok := a.Alloc(0, 1)
		if !ok {
			t.Fatal("alloc failed")
		}
		vs = append(vs, v)
	}
	for _, v := range vs[:2*MagSize] {
		a.Free(0, v, 1)
	}
	if s := a.Stats(); s.OverflowFlushes != 0 || s.OverflowFrees != 0 {
		t.Fatalf("overflow counters moved before the depot filled: %+v", s)
	}
	for _, v := range vs[2*MagSize:] {
		a.Free(0, v, 1)
	}
	s := a.Stats()
	if s.OverflowFlushes == 0 {
		t.Fatal("depot-full flushes not counted")
	}
	if want := s.OverflowFlushes * MagSize; s.OverflowFrees != want {
		t.Fatalf("OverflowFrees = %d, want %d (MagSize per flushed magazine)", s.OverflowFrees, want)
	}
	if s.TreeFrees != s.OverflowFrees {
		t.Fatalf("every overflow free must hit the tree: tree %d vs overflow %d", s.TreeFrees, s.OverflowFrees)
	}
	// Sub diffs field-wise, including the new counters.
	d := s.Sub(Stats{OverflowFlushes: 1, OverflowFrees: MagSize, CacheFrees: 10})
	if d.OverflowFlushes != s.OverflowFlushes-1 || d.OverflowFrees != s.OverflowFrees-MagSize || d.CacheFrees != s.CacheFrees-10 {
		t.Fatalf("Stats.Sub wrong: %+v", d)
	}
}

func TestCachedLargeSizesBypassCache(t *testing.T) {
	a := NewCached(1)
	v, ok := a.Alloc(0, 128) // order 7, above MaxCachedOrder
	if !ok {
		t.Fatal("alloc failed")
	}
	a.Free(0, v, 128)
	s := a.Stats()
	if s.CacheAllocs != 0 || s.CacheFrees != 0 {
		t.Fatal("large allocation went through the magazine cache")
	}
	if s.TreeAllocs != 1 || s.TreeFrees != 1 {
		t.Fatalf("stats = %+v, want tree alloc+free", s)
	}
}

func TestCachedRoundsUp(t *testing.T) {
	a := NewCached(1)
	v, _ := a.Alloc(0, 3) // rounds to 4 pages
	a.Free(0, v, 3)       // also rounds to 4: must match
	v2, _ := a.Alloc(0, 4)
	if v2 != v {
		t.Fatalf("rounded free did not recycle: got %v want %v", v2, v)
	}
}

func TestCachedOutOfRangeCPUFallsBack(t *testing.T) {
	a := NewCached(1)
	v, ok := a.Alloc(5, 1) // cpu out of range
	if !ok {
		t.Fatal("alloc failed")
	}
	a.Free(5, v, 1)
	if a.Stats().TreeAllocs != 1 {
		t.Fatal("out-of-range cpu should use tree")
	}
}

func TestCachedCrossDatapathMigrationDegradesLocality(t *testing.T) {
	// Demonstration of the §2.2 locality failure: two logical datapaths
	// (Rx and Tx) alloc/free on the same CPU. IOVAs freed by one are
	// recycled by the other, interleaving address ranges over time.
	a := NewCached(1)
	rx := make([]ptable.IOVA, 0, 64)
	for i := 0; i < 64; i++ {
		v, _ := a.Alloc(0, 1)
		rx = append(rx, v)
	}
	// Free half of Rx, then Tx allocates: Tx receives Rx's addresses.
	for i := 0; i < 32; i++ {
		a.Free(0, rx[i], 1)
	}
	stolen := 0
	rxSet := map[ptable.IOVA]bool{}
	for _, v := range rx[:32] {
		rxSet[v] = true
	}
	for i := 0; i < 32; i++ {
		v, _ := a.Alloc(0, 1)
		if rxSet[v] {
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("expected Tx to recycle Rx IOVAs through the shared magazine")
	}
}

func TestFlushRCachesReturnsEverythingToTree(t *testing.T) {
	a := NewCached(2)
	// Populate magazines on both CPUs and push one full magazine into the
	// depot (MagSize+1 frees swap loaded->prev, more frees keep filling).
	var vs []ptable.IOVA
	for i := 0; i < 3*MagSize; i++ {
		v, ok := a.Alloc(i%2, 1)
		if !ok {
			t.Fatal("alloc failed")
		}
		vs = append(vs, v)
	}
	for i, v := range vs {
		a.Free(i%2, v, 1)
	}
	cached := a.Stats().CacheFrees
	if cached == 0 {
		t.Fatal("setup cached nothing")
	}
	treeFreesBefore := a.Base().Stats().TreeFrees
	released := a.FlushRCaches()
	if released != len(vs) {
		t.Fatalf("FlushRCaches released %d ranges, want %d", released, len(vs))
	}
	if got := a.Base().Stats().TreeFrees - treeFreesBefore; got != int64(len(vs)) {
		t.Fatalf("tree absorbed %d frees, want %d", got, len(vs))
	}
	// Flushed magazines are empty: the next alloc must come from the tree.
	tb := a.Base().Stats().TreeAllocs
	if _, ok := a.Alloc(0, 1); !ok {
		t.Fatal("alloc failed")
	}
	if a.Base().Stats().TreeAllocs != tb+1 {
		t.Fatal("alloc after flush did not hit the tree")
	}
	// A second flush with empty caches is a no-op.
	if n := a.FlushRCaches(); n != 0 {
		t.Fatalf("second FlushRCaches released %d, want 0", n)
	}
}
