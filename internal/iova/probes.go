package iova

import (
	"fastsafe/internal/stats"
)

// RegisterProbes exposes one allocator's work counters through the
// registry under prefix (e.g. "dev0.iova."). src is the live Stats view —
// typically the Stats method of a TreeAllocator or CachedAllocator, or a
// domain's AllocatorStats. All probes are read-only.
func RegisterProbes(r *stats.Registry, prefix string, src func() Stats) {
	probe := func(name string, fn func(Stats) int64) {
		r.GaugeFunc(prefix+name, func() float64 { return float64(fn(src())) })
	}
	probe("tree_allocs", func(s Stats) int64 { return s.TreeAllocs })
	probe("tree_frees", func(s Stats) int64 { return s.TreeFrees })
	probe("nodes_visited", func(s Stats) int64 { return s.NodesVisited })
	probe("cache_allocs", func(s Stats) int64 { return s.CacheAllocs })
	probe("cache_frees", func(s Stats) int64 { return s.CacheFrees })
	probe("depot_moves", func(s Stats) int64 { return s.DepotMoves })
	probe("overflow_flushes", func(s Stats) int64 { return s.OverflowFlushes })
	probe("overflow_frees", func(s Stats) int64 { return s.OverflowFrees })
}
