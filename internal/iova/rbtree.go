// Package iova implements the IO virtual address allocators described in
// §2.1 and §2.2 of the paper:
//
//   - TreeAllocator: the base allocator — allocated ranges live in a
//     red-black tree ordered by address and new ranges are carved top-down
//     from the top of the 48-bit space, keeping the active set compact
//     (the property §2.2 relies on when sizing PTcache working sets).
//   - CachedAllocator: the Linux "rcache" front-end — per-CPU pairs of
//     LIFO magazines plus a global depot of full magazines. It gives O(1)
//     alloc/free in the common case but lets IOVAs migrate between CPUs
//     and between the Rx and Tx datapaths, which is the root cause of the
//     poor PTcache-L3 locality shown in Figures 2e/3e.
//
// The F&S contiguous allocation policy (§3) is deliberately *not* an
// allocator change: the paper keeps the allocator interface intact and
// instead has the IOMMU-driver datapath allocate descriptor-sized ranges.
// That logic lives in internal/core.
package iova

// Red-black tree of allocated IOVA ranges, keyed by range start. The
// implementation follows the classic CLRS algorithms; it exists (rather
// than a sorted slice) because the paper and Peleg et al. [39] discuss the
// tree's behaviour — worst-case linear scans for gap-finding and the CPU
// cost of rebalancing — and the simulator charges CPU cost per tree
// operation.

type color bool

const (
	red   color = true
	black color = false
)

// node is an allocated range [start, start+npages) in 4KB pages.
type node struct {
	start  uint64 // page frame number (IOVA >> 12)
	npages uint64
	c      color
	parent *node
	left   *node
	right  *node
}

func (n *node) end() uint64 { return n.start + n.npages }

// rbtree is an intrusive red-black tree of non-overlapping ranges.
type rbtree struct {
	root *node
	size int
}

func (t *rbtree) isRed(n *node) bool { return n != nil && n.c == red }

func (t *rbtree) rotateLeft(x *node) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *rbtree) rotateRight(x *node) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// insert adds n to the tree. Ranges must not overlap existing ones; the
// allocator guarantees this by construction.
func (t *rbtree) insert(n *node) {
	var parent *node
	cur := t.root
	for cur != nil {
		parent = cur
		if n.start < cur.start {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	n.parent = parent
	n.left, n.right = nil, nil
	n.c = red
	switch {
	case parent == nil:
		t.root = n
	case n.start < parent.start:
		parent.left = n
	default:
		parent.right = n
	}
	t.size++
	t.insertFixup(n)
}

func (t *rbtree) insertFixup(z *node) {
	for t.isRed(z.parent) {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if t.isRed(u) {
				z.parent.c = black
				u.c = black
				gp.c = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.c = black
			gp.c = red
			t.rotateRight(gp)
		} else {
			u := gp.left
			if t.isRed(u) {
				z.parent.c = black
				u.c = black
				gp.c = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.c = black
			gp.c = red
			t.rotateLeft(gp)
		}
	}
	t.root.c = black
}

func (t *rbtree) minimum(n *node) *node {
	for n.left != nil {
		n = n.left
	}
	return n
}

func (t *rbtree) maximum(n *node) *node {
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n
}

// successor returns the node with the smallest start greater than n's.
func (t *rbtree) successor(n *node) *node {
	if n.right != nil {
		return t.minimum(n.right)
	}
	p := n.parent
	for p != nil && n == p.right {
		n = p
		p = p.parent
	}
	return p
}

// predecessor returns the node with the largest start smaller than n's.
func (t *rbtree) predecessor(n *node) *node {
	if n.left != nil {
		return t.maximum(n.left)
	}
	p := n.parent
	for p != nil && n == p.left {
		n = p
		p = p.parent
	}
	return p
}

// find returns the node whose range contains pfn, or nil.
func (t *rbtree) find(pfn uint64) *node {
	cur := t.root
	for cur != nil {
		switch {
		case pfn < cur.start:
			cur = cur.left
		case pfn >= cur.end():
			cur = cur.right
		default:
			return cur
		}
	}
	return nil
}

func (t *rbtree) transplant(u, v *node) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

// remove deletes n from the tree (CLRS RB-DELETE).
func (t *rbtree) remove(z *node) {
	t.size--
	y := z
	yOrig := y.c
	var x *node
	var xParent *node
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yOrig = y.c
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.c = z.c
	}
	if yOrig == black {
		t.deleteFixup(x, xParent)
	}
	z.parent, z.left, z.right = nil, nil, nil
}

func (t *rbtree) deleteFixup(x *node, parent *node) {
	for x != t.root && !t.isRed(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if t.isRed(w) {
				w.c = black
				parent.c = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if !t.isRed(w.left) && !t.isRed(w.right) {
				w.c = red
				x = parent
				parent = x.parent
			} else {
				if !t.isRed(w.right) {
					if w.left != nil {
						w.left.c = black
					}
					w.c = red
					t.rotateRight(w)
					w = parent.right
				}
				w.c = parent.c
				parent.c = black
				if w.right != nil {
					w.right.c = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if t.isRed(w) {
				w.c = black
				parent.c = red
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if !t.isRed(w.left) && !t.isRed(w.right) {
				w.c = red
				x = parent
				parent = x.parent
			} else {
				if !t.isRed(w.left) {
					if w.right != nil {
						w.right.c = black
					}
					w.c = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.c = parent.c
				parent.c = black
				if w.left != nil {
					w.left.c = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.c = black
	}
}
