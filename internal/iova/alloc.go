package iova

import (
	"fmt"
	"math/bits"

	"fastsafe/internal/ptable"
)

// Allocator is the interface the IOMMU driver uses. Alloc returns the base
// IOVA of a free, page-aligned range of the given number of 4KB pages, and
// ok=false on exhaustion. The cpu argument selects the per-CPU cache (the
// TreeAllocator ignores it). Free returns a range; freeing a range that was
// not allocated is a programming error and panics.
type Allocator interface {
	Alloc(cpu, pages int) (ptable.IOVA, bool)
	Free(cpu int, base ptable.IOVA, pages int)
}

// Stats counts allocator work, split so the simulator can charge different
// CPU costs to tree operations (expensive: locking plus rebalancing plus
// worst-case linear gap scans) and magazine operations (cheap).
type Stats struct {
	TreeAllocs   int64 // allocations served by the red-black tree
	TreeFrees    int64 // frees returned to the red-black tree
	NodesVisited int64 // tree nodes touched while searching for gaps
	CacheAllocs  int64 // allocations served by a per-CPU magazine
	CacheFrees   int64 // frees absorbed by a per-CPU magazine
	DepotMoves   int64 // magazines moved to/from the global depot
	// The depot-full overflow path: when a CPU's magazines and the global
	// depot are all full, the loaded magazine is flushed back to the tree
	// — the rcache has stopped absorbing the free rate and every flushed
	// range pays tree cost again. OverflowFlushes counts magazine flushes,
	// OverflowFrees the individual ranges they returned to the tree.
	OverflowFlushes int64
	OverflowFrees   int64
}

// Sub returns the per-field difference s - b (for measurement windows).
func (s Stats) Sub(b Stats) Stats {
	return Stats{
		TreeAllocs:      s.TreeAllocs - b.TreeAllocs,
		TreeFrees:       s.TreeFrees - b.TreeFrees,
		NodesVisited:    s.NodesVisited - b.NodesVisited,
		CacheAllocs:     s.CacheAllocs - b.CacheAllocs,
		CacheFrees:      s.CacheFrees - b.CacheFrees,
		DepotMoves:      s.DepotMoves - b.DepotMoves,
		OverflowFlushes: s.OverflowFlushes - b.OverflowFlushes,
		OverflowFrees:   s.OverflowFrees - b.OverflowFrees,
	}
}

// TreeAllocator allocates IOVA ranges top-down from the top of the 48-bit
// space, keeping allocated ranges in a red-black tree. This mirrors the
// base Linux allocator: the active IOVA set stays compact at the top of the
// address space (§2.2 uses this to bound PTcache-L1/L2 working sets).
type TreeAllocator struct {
	tree   rbtree
	topPFN uint64 // first PFN above the allocatable space
	hint   *node  // last allocation, search cursor (Linux cached node)
	stats  Stats
}

// NewTree returns a TreeAllocator covering the full 48-bit IOVA space.
func NewTree() *TreeAllocator {
	return &TreeAllocator{topPFN: ptable.AddrSpace >> ptable.PageShift}
}

// Stats returns a snapshot of the allocator's work counters.
func (a *TreeAllocator) Stats() Stats { return a.stats }

// Alloc carves a range of pages 4KB-pages from the highest free gap at or
// below the allocation hint, falling back to a full top-down scan. cpu is
// ignored.
func (a *TreeAllocator) Alloc(_, pages int) (ptable.IOVA, bool) {
	if pages <= 0 {
		return 0, false
	}
	n := a.allocRange(uint64(pages))
	if n == nil {
		return 0, false
	}
	a.stats.TreeAllocs++
	return ptable.IOVA(n.start << ptable.PageShift), true
}

func (a *TreeAllocator) allocRange(npages uint64) *node {
	try := func(from *node) *node {
		// Candidate gap is immediately below `from` (or below the top of
		// space when from is nil), walking toward lower addresses.
		limit := a.topPFN
		cur := from
		if cur == nil {
			cur = a.tree.maximum(a.tree.root)
		} else {
			limit = cur.start
			cur = a.tree.predecessor(cur)
		}
		for {
			a.stats.NodesVisited++
			var gapLo uint64
			if cur != nil {
				gapLo = cur.end()
				limitStart := limit
				if limitStart >= gapLo+npages {
					n := &node{start: limitStart - npages, npages: npages}
					a.tree.insert(n)
					return n
				}
				limit = cur.start
				cur = a.tree.predecessor(cur)
				continue
			}
			// Below the lowest allocated range.
			if limit >= gapLo+npages {
				n := &node{start: limit - npages, npages: npages}
				a.tree.insert(n)
				return n
			}
			return nil
		}
	}
	// Fast path: search below the hint (Linux's cached node). On failure
	// retry from the very top, where frees above the hint opened gaps.
	if n := try(a.hint); n != nil {
		a.hint = n
		return n
	}
	if a.hint != nil {
		if n := try(nil); n != nil {
			a.hint = n
			return n
		}
	}
	return nil
}

// Free returns a previously allocated range to the tree.
func (a *TreeAllocator) Free(_ int, base ptable.IOVA, pages int) {
	pfn := uint64(base) >> ptable.PageShift
	n := a.tree.find(pfn)
	if n == nil || n.start != pfn || n.npages != uint64(pages) {
		panic(fmt.Sprintf("iova: Free(%v, %d pages) does not match an allocation", base, pages))
	}
	// Linux's __cached_rbnode_delete_update: freeing at or above the
	// cached hint moves the hint to the freed node's successor so the
	// next allocation rediscovers the gap.
	if a.hint == nil || n.start >= a.hint.start {
		a.hint = a.tree.successor(n)
	}
	a.tree.remove(n)
	a.stats.TreeFrees++
}

// Allocated returns the number of live allocated ranges.
func (a *TreeAllocator) Allocated() int { return a.tree.size }

// Magazine geometry, matching the Linux iova rcache.
const (
	// MagSize is the number of IOVAs per magazine (IOVA_MAG_SIZE).
	MagSize = 127
	// MaxGlobalMags bounds the global depot (MAX_GLOBAL_MAGS).
	MaxGlobalMags = 32
	// MaxCachedOrder is the largest power-of-two size class cached: order 6
	// = 64 pages = 256KB, covering both 4KB page allocations and F&S
	// descriptor-sized chunks.
	MaxCachedOrder = 6
)

// magazine is a LIFO stack of IOVA range bases of one size class.
type magazine struct {
	pfns [MagSize]uint64
	n    int
}

func (m *magazine) full() bool  { return m.n == MagSize }
func (m *magazine) empty() bool { return m.n == 0 }
func (m *magazine) push(pfn uint64) {
	m.pfns[m.n] = pfn
	m.n++
}
func (m *magazine) pop() uint64 {
	m.n--
	return m.pfns[m.n]
}

// cpuRCache is one CPU's pair of magazines for one size class.
type cpuRCache struct {
	loaded *magazine
	prev   *magazine
}

// rcache is the per-size-class cache: per-CPU magazine pairs plus the
// global depot of full magazines.
type rcache struct {
	percpu []*cpuRCache
	depot  []*magazine
}

// CachedAllocator is the Linux allocator with the per-CPU rcache front-end
// (§2.1 "IOVA Allocator"). Allocation sizes are rounded up to a power of
// two; classes up to MaxCachedOrder go through the magazines, larger sizes
// go straight to the tree.
type CachedAllocator struct {
	base    *TreeAllocator
	caches  [MaxCachedOrder + 1]*rcache
	numCPUs int
	stats   Stats
}

// NewCached returns a cached allocator with per-CPU magazines for numCPUs
// CPUs over a fresh top-down tree allocator.
func NewCached(numCPUs int) *CachedAllocator {
	if numCPUs <= 0 {
		numCPUs = 1
	}
	a := &CachedAllocator{base: NewTree(), numCPUs: numCPUs}
	for o := range a.caches {
		rc := &rcache{percpu: make([]*cpuRCache, numCPUs)}
		for c := range rc.percpu {
			rc.percpu[c] = &cpuRCache{loaded: new(magazine), prev: new(magazine)}
		}
		a.caches[o] = rc
	}
	return a
}

// Stats returns combined counters: magazine activity from the front-end
// plus tree activity from the base allocator.
func (a *CachedAllocator) Stats() Stats {
	s := a.stats
	bs := a.base.Stats()
	s.TreeAllocs = bs.TreeAllocs
	s.TreeFrees = bs.TreeFrees
	s.NodesVisited = bs.NodesVisited
	return s
}

// order returns the size class for pages, or -1 if not cacheable.
func order(pages int) int {
	if pages <= 0 {
		return -1
	}
	o := bits.Len(uint(pages) - 1) // ceil(log2(pages))
	if o > MaxCachedOrder {
		return -1
	}
	return o
}

// roundPages rounds a page count up to the next power of two, as
// alloc_iova_fast does.
func roundPages(pages int) int {
	if pages <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(pages)-1)
}

// Alloc allocates a power-of-two-rounded range of pages for cpu.
func (a *CachedAllocator) Alloc(cpu, pages int) (ptable.IOVA, bool) {
	if pages <= 0 {
		return 0, false
	}
	pages = roundPages(pages)
	o := order(pages)
	if o < 0 || cpu < 0 || cpu >= a.numCPUs {
		return a.base.Alloc(cpu, pages)
	}
	rc := a.caches[o]
	pc := rc.percpu[cpu]
	switch {
	case !pc.loaded.empty():
	case !pc.prev.empty():
		pc.loaded, pc.prev = pc.prev, pc.loaded
	case len(rc.depot) > 0:
		pc.loaded = rc.depot[len(rc.depot)-1]
		rc.depot = rc.depot[:len(rc.depot)-1]
		a.stats.DepotMoves++
	default:
		return a.base.Alloc(cpu, pages)
	}
	a.stats.CacheAllocs++
	return ptable.IOVA(pc.loaded.pop() << ptable.PageShift), true
}

// Free returns a range to cpu's magazine, spilling full magazines to the
// depot and, when the depot is full, back to the tree.
func (a *CachedAllocator) Free(cpu int, base ptable.IOVA, pages int) {
	pages = roundPages(pages)
	o := order(pages)
	if o < 0 || cpu < 0 || cpu >= a.numCPUs {
		a.base.Free(cpu, base, pages)
		return
	}
	rc := a.caches[o]
	pc := rc.percpu[cpu]
	switch {
	case !pc.loaded.full():
	case !pc.prev.full():
		pc.loaded, pc.prev = pc.prev, pc.loaded
	default:
		if len(rc.depot) < MaxGlobalMags {
			rc.depot = append(rc.depot, pc.loaded)
			pc.loaded = new(magazine)
			a.stats.DepotMoves++
		} else {
			// Depot full: flush the loaded magazine back to the tree.
			a.stats.OverflowFlushes++
			for !pc.loaded.empty() {
				pfn := pc.loaded.pop()
				a.base.Free(cpu, ptable.IOVA(pfn<<ptable.PageShift), pages)
				a.stats.OverflowFrees++
			}
		}
	}
	pc.loaded.push(uint64(base) >> ptable.PageShift)
	a.stats.CacheFrees++
}

// Base exposes the underlying tree allocator (for tests and diagnostics).
func (a *CachedAllocator) Base() *TreeAllocator { return a.base }

// FlushRCaches empties every per-CPU magazine and the global depots back
// into the tree, returning the number of IOVA ranges released. This is
// Linux's free_cpu_cached_iovas/free_global_cached_iovas path, run on CPU
// hotplug and under allocation pressure; the fault layer triggers it to
// model rcache-defeating pressure spikes.
func (a *CachedAllocator) FlushRCaches() int {
	released := 0
	for o, rc := range a.caches {
		pages := 1 << o
		drain := func(m *magazine) {
			for !m.empty() {
				pfn := m.pop()
				a.base.Free(0, ptable.IOVA(pfn<<ptable.PageShift), pages)
				released++
			}
		}
		for _, pc := range rc.percpu {
			drain(pc.loaded)
			drain(pc.prev)
		}
		for _, m := range rc.depot {
			drain(m)
		}
		rc.depot = rc.depot[:0]
	}
	return released
}

var (
	_ Allocator = (*TreeAllocator)(nil)
	_ Allocator = (*CachedAllocator)(nil)
)
