package ptable

import (
	"errors"
	"testing"
)

func TestMapHugeLookup(t *testing.T) {
	tb := New()
	if err := tb.MapHuge(0, 0x40000000); err != nil {
		t.Fatal(err)
	}
	// Any address inside the 2MB span translates with the right offset.
	w, huge, ok := tb.LookupHugeAware(IOVA(5*PageSize + 123))
	if !ok || !huge {
		t.Fatalf("lookup = huge=%v ok=%v", huge, ok)
	}
	if w.Phys != 0x40000000+5*PageSize+123 {
		t.Fatalf("Phys = %#x", uint64(w.Phys))
	}
	if w.PageID[3] != 0 {
		t.Fatal("huge walk should have no PT-L4 page")
	}
	if !tb.HugeMapped(PageSize) {
		t.Fatal("HugeMapped false inside span")
	}
	// Mappings accounting: 512 pages worth.
	if tb.Mappings() != EntriesPerPage {
		t.Fatalf("Mappings = %d, want 512", tb.Mappings())
	}
}

func TestMapHugeValidation(t *testing.T) {
	tb := New()
	if err := tb.MapHuge(PageSize, 1); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned huge map err = %v", err)
	}
	if err := tb.MapHuge(IOVA(AddrSpace), 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
	if err := tb.MapHuge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.MapHuge(0, 2); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("double huge map err = %v", err)
	}
}

func TestHuge4KOverlapRejected(t *testing.T) {
	tb := New()
	if err := tb.Map(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	// Huge mapping over a span with 4KB mappings must fail.
	if err := tb.MapHuge(0, 2); !errors.Is(err, ErrHugeOverlap) {
		t.Fatalf("huge-over-4K err = %v", err)
	}
	// And the reverse: 4KB map inside a live huge span must fail.
	if err := tb.MapHuge(IOVA(HugeSize), 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(IOVA(HugeSize+PageSize), 1); !errors.Is(err, ErrHugeOverlap) {
		t.Fatalf("4K-inside-huge err = %v", err)
	}
}

func TestUnmapHuge(t *testing.T) {
	tb := New()
	if err := tb.MapHuge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.UnmapHuge(0); err != nil {
		t.Fatal(err)
	}
	if tb.HugeMapped(0) || tb.Mappings() != 0 {
		t.Fatal("huge mapping survived unmap")
	}
	if err := tb.UnmapHuge(0); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("double unmap err = %v", err)
	}
	// Remap works after unmap.
	if err := tb.MapHuge(0, 7); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapHugeRejectsNonHuge(t *testing.T) {
	tb := New()
	if err := tb.Map(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.UnmapHuge(0); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("UnmapHuge over 4K mapping err = %v", err)
	}
}

func TestLookupHugeAware4K(t *testing.T) {
	tb := New()
	if err := tb.Map(0x3000, 0x99000); err != nil {
		t.Fatal(err)
	}
	w, huge, ok := tb.LookupHugeAware(0x3000)
	if !ok || huge {
		t.Fatalf("4K lookup: huge=%v ok=%v", huge, ok)
	}
	if w.Phys != 0x99000 || w.PageID[3] == 0 {
		t.Fatalf("walk = %+v", w)
	}
}

func TestHugeAndRegularCoexist(t *testing.T) {
	tb := New()
	if err := tb.MapHuge(0, 0x100000); err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(IOVA(HugeSize), 0x55000); err != nil {
		t.Fatal(err)
	}
	if !tb.HugeMapped(0x1000) {
		t.Fatal("huge span lost")
	}
	if _, huge, ok := tb.LookupHugeAware(IOVA(HugeSize)); !ok || huge {
		t.Fatal("4K neighbour broken")
	}
}
