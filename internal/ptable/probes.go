package ptable

import (
	"fastsafe/internal/stats"
)

// RegisterProbes exposes one IO page table's size through the registry
// under prefix (e.g. "dev0.ptable."): live page-table pages and installed
// mappings. Both are read-only views over live state.
func (t *Table) RegisterProbes(r *stats.Registry, prefix string) {
	r.GaugeFunc(prefix+"live_pages", func() float64 { return float64(t.live) })
	r.GaugeFunc(prefix+"mappings", func() float64 { return float64(t.maps) })
}
