package ptable

import "testing"

func BenchmarkMapUnmapPage(b *testing.B) {
	t := New()
	for i := 0; i < b.N; i++ {
		if err := t.Map(0x1000, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := t.Unmap(0x1000, PageSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	t := New()
	if err := t.Map(0x1000, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(0x1000); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkUnmapDescriptorRange(b *testing.B) {
	// The F&S pattern: one ranged unmap per 64-page descriptor.
	t := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for p := 0; p < 64; p++ {
			if err := t.Map(IOVA(p*PageSize), Phys(p)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := t.Unmap(0, 64*PageSize); err != nil {
			b.Fatal(err)
		}
	}
}
