package ptable

import "fmt"

// Hugepage (2MB) mappings. A huge mapping occupies one PT-L3 entry as a
// leaf (the x86/VT-d PS-bit encoding): the walk ends one level early, so
// the worst case is three memory reads and the best case — with a
// PTcache-L2 hit — a single read of the PT-L3 leaf entry. One IOTLB entry
// covers the whole 2MB, multiplying IOTLB reach by 512.
//
// The paper's §5 discusses integrating hugepages with F&S to reduce the
// IOTLB miss *count* (its design only reduces the miss *cost*); the Huge
// protection mode in internal/core builds on this support.

// HugeSize is the hugepage size: the span of one PT-L3 entry.
const HugeSize = L4PageSpan // 2MB

// ErrHugeOverlap is returned when a huge mapping would overlap existing
// 4KB mappings (or vice versa).
var ErrHugeOverlap = fmt.Errorf("ptable: hugepage overlaps existing mappings")

func checkHuge(v IOVA) error {
	if uint64(v)%HugeSize != 0 {
		return ErrUnaligned
	}
	if uint64(v) >= AddrSpace {
		return ErrOutOfRange
	}
	return nil
}

// MapHuge installs a 2MB leaf mapping at v (2MB-aligned) to pa.
func (t *Table) MapHuge(v IOVA, pa Phys) error {
	if err := checkHuge(v); err != nil {
		return err
	}
	l2 := t.root.child[v.L1Index()]
	if l2 == nil {
		l2 = t.newPage(2)
		t.root.child[v.L1Index()] = l2
		t.root.count++
	}
	l3 := l2.child[v.L2Index()]
	if l3 == nil {
		l3 = t.newPage(3)
		l2.child[v.L2Index()] = l3
		l2.count++
	}
	i := v.L3Index()
	if l3.child[i] != nil {
		return fmt.Errorf("%w: %v has 4KB mappings", ErrHugeOverlap, v)
	}
	if l3.valid[i] {
		return fmt.Errorf("%w: %v", ErrAlreadyMapped, v)
	}
	l3.valid[i] = true
	l3.pte[i] = pa
	l3.count++
	t.maps += EntriesPerPage // a huge mapping counts as 512 4KB mappings
	return nil
}

// UnmapHuge removes the 2MB leaf at v. Because the single operation covers
// the leaf's entire span by definition, no additional page-table pages are
// freed (the leaf *is* the PT-L3 entry), so UnmapHuge never reclaims.
func (t *Table) UnmapHuge(v IOVA) error {
	if err := checkHuge(v); err != nil {
		return err
	}
	l2 := t.root.child[v.L1Index()]
	if l2 == nil {
		return fmt.Errorf("%w: %v", ErrNotMapped, v)
	}
	l3 := l2.child[v.L2Index()]
	if l3 == nil {
		return fmt.Errorf("%w: %v", ErrNotMapped, v)
	}
	i := v.L3Index()
	if !l3.valid[i] || l3.child[i] != nil {
		return fmt.Errorf("%w: %v is not a huge mapping", ErrNotMapped, v)
	}
	l3.valid[i] = false
	l3.pte[i] = 0
	l3.count--
	t.maps -= EntriesPerPage
	return nil
}

// LookupHugeAware walks the table for v, handling both 4KB and 2MB leaves.
// isHuge reports which kind served the translation; for a huge leaf the
// returned Walk has PageID[3] == 0 (there is no PT-L4 page).
func (t *Table) LookupHugeAware(v IOVA) (w Walk, isHuge, ok bool) {
	if uint64(v) >= AddrSpace {
		return Walk{}, false, false
	}
	w.PageID[0] = t.root.id
	l2 := t.root.child[v.L1Index()]
	if l2 == nil {
		return Walk{}, false, false
	}
	w.PageID[1] = l2.id
	l3 := l2.child[v.L2Index()]
	if l3 == nil {
		return Walk{}, false, false
	}
	w.PageID[2] = l3.id
	i := v.L3Index()
	if l3.child[i] == nil {
		// Possibly a huge leaf.
		if !l3.valid[i] {
			return Walk{}, false, false
		}
		w.Phys = l3.pte[i] + Phys(uint64(v)%HugeSize)
		return w, true, true
	}
	l4 := l3.child[i]
	w.PageID[3] = l4.id
	j := v.L4Index()
	if !l4.valid[j] {
		return Walk{}, false, false
	}
	w.Phys = l4.pte[j]
	return w, false, true
}

// HugeMapped reports whether v is covered by a live 2MB leaf.
func (t *Table) HugeMapped(v IOVA) bool {
	_, huge, ok := t.LookupHugeAware(v)
	return ok && huge
}
