package ptable

import (
	"errors"
	"testing"
	"testing/quick"
)

const mb = uint64(1) << 20

func TestIndexExtraction(t *testing.T) {
	// Construct an IOVA with known indices: L1=1, L2=2, L3=3, L4=4.
	v := IOVA(uint64(1)<<39 | uint64(2)<<30 | uint64(3)<<21 | uint64(4)<<12)
	if v.L1Index() != 1 || v.L2Index() != 2 || v.L3Index() != 3 || v.L4Index() != 4 {
		t.Fatalf("indices = %d %d %d %d", v.L1Index(), v.L2Index(), v.L3Index(), v.L4Index())
	}
}

func TestCacheKeyCoverage(t *testing.T) {
	// Two IOVAs 2MB-1 apart share an L3 key; 2MB apart do not (when aligned).
	a := IOVA(0)
	b := IOVA(L4PageSpan - PageSize)
	c := IOVA(L4PageSpan)
	if a.L3Key() != b.L3Key() {
		t.Fatal("IOVAs within one 2MB span must share L3 key")
	}
	if a.L3Key() == c.L3Key() {
		t.Fatal("IOVAs in different 2MB spans must differ in L3 key")
	}
	// L2 key covers 1GB, L1 key covers 512GB.
	if a.L2Key() != IOVA(L3PageSpan-PageSize).L2Key() {
		t.Fatal("L2 key must cover 1GB")
	}
	if a.L1Key() != IOVA(L2PageSpan-PageSize).L1Key() {
		t.Fatal("L1 key must cover 512GB")
	}
}

func TestMapLookupRoundtrip(t *testing.T) {
	tb := New()
	if err := tb.Map(0x1000, 0xabc000); err != nil {
		t.Fatal(err)
	}
	w, ok := tb.Lookup(0x1000)
	if !ok {
		t.Fatal("mapped IOVA not found")
	}
	if w.Phys != 0xabc000 {
		t.Fatalf("Phys = %#x, want 0xabc000", w.Phys)
	}
	for i, id := range w.PageID {
		if id == 0 {
			t.Fatalf("walk level %d has zero page id", i+1)
		}
	}
}

func TestLookupOffsetWithinPage(t *testing.T) {
	tb := New()
	if err := tb.Map(0x2000, 0x99000); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Lookup(0x2abc); !ok {
		t.Fatal("lookup within mapped page failed")
	}
}

func TestDoubleMapFails(t *testing.T) {
	tb := New()
	if err := tb.Map(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(0x1000, 2); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("err = %v, want ErrAlreadyMapped", err)
	}
}

func TestMapValidation(t *testing.T) {
	tb := New()
	if err := tb.Map(0x1001, 1); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned map err = %v", err)
	}
	if err := tb.Map(IOVA(AddrSpace), 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range map err = %v", err)
	}
}

func TestUnmapValidation(t *testing.T) {
	tb := New()
	if _, err := tb.Unmap(0x1000, 0); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("zero length err = %v", err)
	}
	if _, err := tb.Unmap(0x1000, 100); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned length err = %v", err)
	}
	if _, err := tb.Unmap(0x1000, PageSize); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("unmapped err = %v", err)
	}
}

func TestUnmapIsAtomic(t *testing.T) {
	tb := New()
	if err := tb.Map(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	// Range covers one mapped + one unmapped page: must fail without
	// removing the mapped one.
	if _, err := tb.Unmap(0x1000, 2*PageSize); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("err = %v, want ErrNotMapped", err)
	}
	if !tb.Mapped(0x1000) {
		t.Fatal("failed unmap removed a mapping")
	}
}

func TestUnmapRemovesMappings(t *testing.T) {
	tb := New()
	for i := uint64(0); i < 4; i++ {
		if err := tb.Map(IOVA(i*PageSize), Phys(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tb.Unmap(0, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unmapped != 4 {
		t.Fatalf("Unmapped = %d, want 4", res.Unmapped)
	}
	for i := uint64(0); i < 4; i++ {
		if tb.Mapped(IOVA(i * PageSize)) {
			t.Fatalf("page %d still mapped", i)
		}
	}
	if tb.Mappings() != 0 {
		t.Fatalf("Mappings = %d, want 0", tb.Mappings())
	}
}

// mapRange maps n consecutive pages starting at base.
func mapRange(t *testing.T, tb *Table, base IOVA, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tb.Map(base+IOVA(i*PageSize), Phys(0x100000+i*PageSize)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLargeUnmapReclaims(t *testing.T) {
	// Figure 5b: unmap of a full 2MB span in one call reclaims the PT-L4
	// page under it.
	tb := New()
	mapRange(t, tb, 0, 512) // exactly one full PT-L4 page
	before := tb.LivePages()
	res, err := tb.Unmap(0, 2*mb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reclaimed) == 0 {
		t.Fatal("full-span unmap did not reclaim the PT-L4 page")
	}
	found := false
	for _, r := range res.Reclaimed {
		if r.Level == 4 && r.Key == IOVA(0).L3Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("Reclaimed = %+v, want level-4 page with key 0", res.Reclaimed)
	}
	if tb.LivePages() >= before {
		t.Fatal("LivePages did not decrease after reclamation")
	}
}

func TestSmallUnmapsDoNotReclaim(t *testing.T) {
	// Figure 5c/5d: 256KB unmap calls never reclaim, even when the calls
	// together clear a full 2MB.
	tb := New()
	mapRange(t, tb, 0, 512)
	for off := uint64(0); off < 2*mb; off += 256 * 1024 {
		res, err := tb.Unmap(IOVA(off), 256*1024)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Reclaimed) != 0 {
			t.Fatalf("256KB unmap at %#x reclaimed %+v", off, res.Reclaimed)
		}
	}
	if tb.Mappings() != 0 {
		t.Fatal("range not fully unmapped")
	}
	// The empty PT-L4 page must still be allocated (only root+L2+L3+L4 = 4).
	if tb.LivePages() != 4 {
		t.Fatalf("LivePages = %d, want 4 (no reclamation)", tb.LivePages())
	}
}

func TestPartialSpanUnmapDoesNotReclaim(t *testing.T) {
	// Figure 5c: one 256KB unmap inside a 2MB page: no reclamation.
	tb := New()
	mapRange(t, tb, 0, 512)
	res, err := tb.Unmap(0, 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reclaimed) != 0 {
		t.Fatalf("partial unmap reclaimed %+v", res.Reclaimed)
	}
}

func TestFullSpanUnmapWithResidentNeighborReclaims(t *testing.T) {
	// 5MB mapped; unmap the full 5MB in one call: the two fully-covered
	// 2MB-aligned PT-L4 pages are reclaimed; the third (partially covered
	// by the tail, which is still full-span? no—5MB = 2.5 spans) — pages A
	// and B in Figure 5b.
	tb := New()
	mapRange(t, tb, 0, 1280) // 5MB
	res, err := tb.Unmap(0, 5*mb)
	if err != nil {
		t.Fatal(err)
	}
	l4 := 0
	for _, r := range res.Reclaimed {
		if r.Level == 4 {
			l4++
		}
	}
	if l4 != 2 {
		t.Fatalf("reclaimed %d PT-L4 pages, want 2 (Figure 5b)", l4)
	}
}

func TestReclaimCascadesUpLevels(t *testing.T) {
	// Unmapping a full 1GB span in one call reclaims all PT-L4 pages and
	// the PT-L3 page. Map one page per 2MB span to keep the test fast.
	tb := New()
	var n int
	for base := uint64(0); base < L3PageSpan; base += L4PageSpan {
		if err := tb.Map(IOVA(base), Phys(base)); err != nil {
			t.Fatal(err)
		}
		n++
	}
	// One unmap call covering the whole 1GB. Each 2MB span has only its
	// first page mapped, so unmap page-by-page coverage must be checked:
	// Unmap requires all pages mapped, so unmap each 2MB span's single
	// page via one big call is invalid. Instead unmap the single pages
	// individually — no reclamation — then verify; separately test the
	// full-range case with a dense 2MB.
	for base := uint64(0); base < L3PageSpan; base += L4PageSpan {
		res, err := tb.Unmap(IOVA(base), PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Reclaimed) != 0 {
			t.Fatal("single-page unmap must not reclaim")
		}
	}
	if tb.Mappings() != 0 {
		t.Fatal("mappings remain")
	}
}

func TestLookupUnmappedAtEachLevel(t *testing.T) {
	tb := New()
	if _, ok := tb.Lookup(0); ok {
		t.Fatal("empty table lookup succeeded")
	}
	// Map something far away so intermediate levels exist for one path.
	if err := tb.Map(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	// Same L4 page, different entry.
	if _, ok := tb.Lookup(0x3000); ok {
		t.Fatal("lookup of unmapped entry in live PT-L4 page succeeded")
	}
	// Different L3 entry.
	if _, ok := tb.Lookup(IOVA(L4PageSpan)); ok {
		t.Fatal("lookup across L4-page boundary succeeded")
	}
	// Out of range.
	if _, ok := tb.Lookup(IOVA(AddrSpace) + 5); ok {
		t.Fatal("out-of-range lookup succeeded")
	}
}

func TestPageIDsStableAcrossUnrelatedOps(t *testing.T) {
	tb := New()
	if err := tb.Map(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	before, _ := tb.Lookup(0x1000)
	if err := tb.Map(0x5000, 2); err != nil { // same PT-L4 page
		t.Fatal(err)
	}
	after, _ := tb.Lookup(0x1000)
	if before.PageID != after.PageID {
		t.Fatal("walk page IDs changed without reclamation")
	}
}

func TestRemapAfterReclaimGetsNewPageID(t *testing.T) {
	tb := New()
	mapRange(t, tb, 0, 512)
	w1, _ := tb.Lookup(0)
	if _, err := tb.Unmap(0, 2*mb); err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(0, 1); err != nil {
		t.Fatal(err)
	}
	w2, _ := tb.Lookup(0)
	if w1.PageID[3] == w2.PageID[3] {
		t.Fatal("reclaimed PT-L4 page identity was reused")
	}
}

func TestLivePageAccounting(t *testing.T) {
	tb := New()
	if tb.LivePages() != 1 {
		t.Fatalf("fresh table LivePages = %d, want 1 (root)", tb.LivePages())
	}
	if err := tb.Map(0, 1); err != nil {
		t.Fatal(err)
	}
	if tb.LivePages() != 4 {
		t.Fatalf("LivePages = %d, want 4", tb.LivePages())
	}
	// Second mapping in the same 2MB region allocates nothing new.
	if err := tb.Map(PageSize, 2); err != nil {
		t.Fatal(err)
	}
	if tb.LivePages() != 4 {
		t.Fatalf("LivePages = %d, want 4", tb.LivePages())
	}
}

func TestPropertyMapUnmapRoundtrip(t *testing.T) {
	// For arbitrary sets of distinct page numbers, map-then-unmap leaves
	// the table with zero mappings and lookups fail.
	f := func(pages []uint16) bool {
		tb := New()
		seen := map[uint16]bool{}
		var mapped []IOVA
		for _, p := range pages {
			if seen[p] {
				continue
			}
			seen[p] = true
			v := IOVA(uint64(p) * PageSize)
			if err := tb.Map(v, Phys(p)); err != nil {
				return false
			}
			mapped = append(mapped, v)
		}
		for _, v := range mapped {
			w, ok := tb.Lookup(v)
			if !ok || w.Phys != Phys(v.PageNumber()) {
				return false
			}
		}
		for _, v := range mapped {
			if _, err := tb.Unmap(v, PageSize); err != nil {
				return false
			}
		}
		if tb.Mappings() != 0 {
			return false
		}
		for _, v := range mapped {
			if tb.Mapped(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReclaimOnlyOnFullSpanUnmap(t *testing.T) {
	// For any contiguous run of pages unmapped in one call, a PT-L4 page is
	// reclaimed iff its whole 2MB span lies inside the unmap range.
	f := func(startPage, nPages uint8) bool {
		n := int(nPages%64) + 1
		base := IOVA(uint64(startPage) * PageSize)
		tb := New()
		for i := 0; i < n; i++ {
			if err := tb.Map(base+IOVA(i*PageSize), 1); err != nil {
				return false
			}
		}
		res, err := tb.Unmap(base, uint64(n)*PageSize)
		if err != nil {
			return false
		}
		// A span of <=64 pages (max 256KB+start offset) can cover a full
		// 2MB page only if n == 512, which cannot happen here.
		return len(res.Reclaimed) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIOVAString(t *testing.T) {
	if got := IOVA(0x1000).String(); got != "iova:0x1000" {
		t.Fatalf("String = %q", got)
	}
}

func TestAlignDown(t *testing.T) {
	if got := IOVA(0x1abc).AlignDown(); got != 0x1000 {
		t.Fatalf("AlignDown = %#x, want 0x1000", uint64(got))
	}
}
