// Package ptable implements the 4-level IO page table the IOMMU walks
// (PT-L1 .. PT-L4 in the paper's terminology, §2.1).
//
// Layout matches Intel VT-d second-level translation for 48-bit IO virtual
// addresses and 4KB pages: each page-table page holds 512 eight-byte
// entries; PT-L1 entries are indexed by IOVA bits 47:39, PT-L2 by 38:30,
// PT-L3 by 29:21 and PT-L4 by 20:12. PT-L4 entries hold the final physical
// address.
//
// The package also implements the Linux page-table page reclamation rule
// the paper's Figure 5 describes: a page-table page is reclaimed only when
// a single unmap operation covers the page's entire address span. Many
// small unmap calls that together clear a page never reclaim it — this
// rarity is what makes the F&S "preserve PTcaches on invalidation" idea
// safe in the common case.
package ptable

import (
	"errors"
	"fmt"
)

// IOVA is an IO virtual address handed to the device.
type IOVA uint64

// Phys is a host physical address.
type Phys uint64

// Address-space geometry.
const (
	PageShift      = 12
	PageSize       = 1 << PageShift // 4KB
	EntriesPerPage = 512
	AddressBits    = 48

	// Span of the address range covered by one page-table page at each
	// level: a PT-L4 page maps 512 * 4KB = 2MB, a PT-L3 page 1GB, a
	// PT-L2 page 512GB. (The single PT-L1 root covers the whole 2^48.)
	L4PageSpan = uint64(PageSize) * EntriesPerPage  // 2MB
	L3PageSpan = L4PageSpan * EntriesPerPage        // 1GB
	L2PageSpan = L3PageSpan * EntriesPerPage        // 512GB
	AddrSpace  = uint64(1) << AddressBits           // 256TB
	TopIOVA    = IOVA(AddrSpace - uint64(PageSize)) // highest page
)

// Geometry sanity: four 9-bit levels plus the page offset fill 48 bits.
var _ = [1]struct{}{}[AddressBits-(4*9+PageShift)]

// Index extraction. LnIndex returns the entry index within a PT-Ln page.
func (v IOVA) L1Index() int { return int(uint64(v) >> 39 & 0x1ff) }
func (v IOVA) L2Index() int { return int(uint64(v) >> 30 & 0x1ff) }
func (v IOVA) L3Index() int { return int(uint64(v) >> 21 & 0x1ff) }
func (v IOVA) L4Index() int { return int(uint64(v) >> 12 & 0x1ff) }

// Cache keys: the IOVA prefix that selects a PT page at each level. A
// PTcache-L1 entry covers 2^39 bytes of IOVA space, PTcache-L2 2^30,
// PTcache-L3 2^21 — exactly the coverage arithmetic in §2.2.
func (v IOVA) L1Key() uint64 { return uint64(v) >> 39 }
func (v IOVA) L2Key() uint64 { return uint64(v) >> 30 }
func (v IOVA) L3Key() uint64 { return uint64(v) >> 21 }

// PageNumber returns the 4KB-page number of v.
func (v IOVA) PageNumber() uint64 { return uint64(v) >> PageShift }

// AlignDown returns v rounded down to a page boundary.
func (v IOVA) AlignDown() IOVA { return v &^ (PageSize - 1) }

func (v IOVA) String() string { return fmt.Sprintf("iova:%#x", uint64(v)) }

// Errors returned by Table operations.
var (
	ErrAlreadyMapped = errors.New("ptable: iova already mapped")
	ErrNotMapped     = errors.New("ptable: iova not mapped")
	ErrUnaligned     = errors.New("ptable: unaligned address or length")
	ErrOutOfRange    = errors.New("ptable: iova outside 48-bit space")
)

// page is one page-table page. Level 1 is the root; level 4 pages hold
// physical addresses in pte rather than child pointers.
type page struct {
	id    uint64
	level int
	child [EntriesPerPage]*page
	pte   [EntriesPerPage]Phys
	valid [EntriesPerPage]bool
	count int // live entries
}

// ReclaimedPage describes a page-table page freed by an unmap operation.
// Level is the page's own level (2, 3 or 4 — the root is never freed), Key
// is the IOVA prefix that selects it (L1Key for a level-2 page, L2Key for
// level-3, L3Key for level-4), and ID is the unique page identity, which
// cache simulations use to detect stale (use-after-reclaim) entries.
type ReclaimedPage struct {
	Level int
	Key   uint64
	ID    uint64
}

// UnmapResult reports what one unmap call did.
type UnmapResult struct {
	Unmapped  int // number of 4KB mappings removed
	Reclaimed []ReclaimedPage
}

// Walk is the result of a full page-table walk for a mapped IOVA.
// PageID[i] is the identity of the PT-L(i+1) page the walk reads.
type Walk struct {
	Phys   Phys
	PageID [4]uint64
}

// Table is a 4-level IO page table. The zero value is not usable; construct
// with New.
type Table struct {
	root   *page
	nextID uint64
	live   int // live page-table pages, including the root
	maps   int // live 4KB mappings
}

// New returns an empty page table with an allocated root page.
func New() *Table {
	t := &Table{}
	t.root = t.newPage(1)
	return t
}

func (t *Table) newPage(level int) *page {
	t.nextID++
	t.live++
	return &page{id: t.nextID, level: level}
}

// LivePages returns the number of allocated page-table pages (≥1: the root).
func (t *Table) LivePages() int { return t.live }

// Mappings returns the number of live 4KB mappings.
func (t *Table) Mappings() int { return t.maps }

func checkPage(v IOVA) error {
	if uint64(v)&(PageSize-1) != 0 {
		return ErrUnaligned
	}
	if uint64(v) >= AddrSpace {
		return ErrOutOfRange
	}
	return nil
}

// Map installs a 4KB mapping from v to pa, creating intermediate pages as
// needed. Mapping an already-mapped IOVA is an error: the drivers in this
// repository never remap without an intervening unmap, and silently
// overwriting would mask bugs.
func (t *Table) Map(v IOVA, pa Phys) error {
	if err := checkPage(v); err != nil {
		return err
	}
	l2 := t.root.child[v.L1Index()]
	if l2 == nil {
		l2 = t.newPage(2)
		t.root.child[v.L1Index()] = l2
		t.root.count++
	}
	l3 := l2.child[v.L2Index()]
	if l3 == nil {
		l3 = t.newPage(3)
		l2.child[v.L2Index()] = l3
		l2.count++
	}
	if l3.valid[v.L3Index()] {
		return fmt.Errorf("%w: %v inside a huge mapping", ErrHugeOverlap, v)
	}
	l4 := l3.child[v.L3Index()]
	if l4 == nil {
		l4 = t.newPage(4)
		l3.child[v.L3Index()] = l4
		l3.count++
	}
	i := v.L4Index()
	if l4.valid[i] {
		return fmt.Errorf("%w: %v", ErrAlreadyMapped, v)
	}
	l4.valid[i] = true
	l4.pte[i] = pa
	l4.count++
	t.maps++
	return nil
}

// Lookup walks the table for v, returning the physical address and the
// identities of the four page-table pages the walk reads. ok is false when
// v is unmapped at any level.
func (t *Table) Lookup(v IOVA) (w Walk, ok bool) {
	if uint64(v) >= AddrSpace {
		return Walk{}, false
	}
	v = v.AlignDown()
	w.PageID[0] = t.root.id
	l2 := t.root.child[v.L1Index()]
	if l2 == nil {
		return Walk{}, false
	}
	w.PageID[1] = l2.id
	l3 := l2.child[v.L2Index()]
	if l3 == nil {
		return Walk{}, false
	}
	w.PageID[2] = l3.id
	l4 := l3.child[v.L3Index()]
	if l4 == nil {
		return Walk{}, false
	}
	w.PageID[3] = l4.id
	i := v.L4Index()
	if !l4.valid[i] {
		return Walk{}, false
	}
	w.Phys = l4.pte[i]
	return w, true
}

// Mapped reports whether v has a live mapping.
func (t *Table) Mapped(v IOVA) bool {
	_, ok := t.Lookup(v)
	return ok
}

// PageIDs returns the identities of the PT pages that currently serve v's
// translation path, for levels present. Used by cache-coherence checks.
func (t *Table) PageIDs(v IOVA) (ids [4]uint64) {
	ids[0] = t.root.id
	l2 := t.root.child[v.L1Index()]
	if l2 == nil {
		return ids
	}
	ids[1] = l2.id
	l3 := l2.child[v.L2Index()]
	if l3 == nil {
		return ids
	}
	ids[2] = l3.id
	l4 := l3.child[v.L3Index()]
	if l4 == nil {
		return ids
	}
	ids[3] = l4.id
	return ids
}

// Unmap removes every 4KB mapping in [start, start+length). Every page in
// the range must currently be mapped. It then applies the Linux reclamation
// rule: a PT page is freed only if this single call's range covers the
// page's entire span (and the page is consequently empty). Freed pages are
// reported so the caller can invalidate the page-table caches that point to
// them — the paper's F&S invalidates PTcaches only in that case.
func (t *Table) Unmap(start IOVA, length uint64) (UnmapResult, error) {
	if err := checkPage(start); err != nil {
		return UnmapResult{}, err
	}
	if length == 0 || length%PageSize != 0 {
		return UnmapResult{}, ErrUnaligned
	}
	if uint64(start)+length > AddrSpace {
		return UnmapResult{}, ErrOutOfRange
	}
	end := uint64(start) + length

	// First verify the whole range is mapped so the operation is atomic.
	for a := uint64(start); a < end; a += PageSize {
		if !t.Mapped(IOVA(a)) {
			return UnmapResult{}, fmt.Errorf("%w: %v", ErrNotMapped, IOVA(a))
		}
	}

	var res UnmapResult
	for a := uint64(start); a < end; a += PageSize {
		v := IOVA(a)
		l2 := t.root.child[v.L1Index()]
		l3 := l2.child[v.L2Index()]
		l4 := l3.child[v.L3Index()]
		i := v.L4Index()
		l4.valid[i] = false
		l4.pte[i] = 0
		l4.count--
		t.maps--
		res.Unmapped++
	}

	t.reclaim(start, end, &res)
	return res, nil
}

// reclaim frees page-table pages whose entire span lies within [start, end)
// and which are now empty, bottom-up (L4 pages, then L3, then L2).
func (t *Table) reclaim(start IOVA, end uint64, res *UnmapResult) {
	// Level 4 pages: span 2MB, keyed by L3Key.
	t.reclaimLevel(start, end, L4PageSpan, res, 4)
	// Level 3 pages: span 1GB.
	t.reclaimLevel(start, end, L3PageSpan, res, 3)
	// Level 2 pages: span 512GB.
	t.reclaimLevel(start, end, L2PageSpan, res, 2)
}

func (t *Table) reclaimLevel(start IOVA, end uint64, span uint64, res *UnmapResult, level int) {
	// First page-aligned span fully inside [start, end).
	first := (uint64(start) + span - 1) / span * span
	for base := first; base+span <= end; base += span {
		v := IOVA(base)
		l2 := t.root.child[v.L1Index()]
		if l2 == nil {
			continue
		}
		switch level {
		case 4:
			l3 := l2.child[v.L2Index()]
			if l3 == nil {
				continue
			}
			l4 := l3.child[v.L3Index()]
			if l4 == nil || l4.count != 0 {
				continue
			}
			l3.child[v.L3Index()] = nil
			l3.count--
			t.live--
			res.Reclaimed = append(res.Reclaimed, ReclaimedPage{Level: 4, Key: v.L3Key(), ID: l4.id})
		case 3:
			l3 := l2.child[v.L2Index()]
			if l3 == nil || l3.count != 0 {
				continue
			}
			l2.child[v.L2Index()] = nil
			l2.count--
			t.live--
			res.Reclaimed = append(res.Reclaimed, ReclaimedPage{Level: 3, Key: v.L2Key(), ID: l3.id})
		case 2:
			if l2.count != 0 {
				continue
			}
			t.root.child[v.L1Index()] = nil
			t.root.count--
			t.live--
			res.Reclaimed = append(res.Reclaimed, ReclaimedPage{Level: 2, Key: v.L1Key(), ID: l2.id})
		}
	}
}
